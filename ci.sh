#!/bin/bash
# CI entry point: plain tier-1 build + tests, then an ASan/UBSan build that
# re-runs the fast tests plus the fault-injection and renewal-simulation
# harnesses, the R1CS optimizer-equivalence tests and reduced-budget gadget
# audit, and a seeded ~200-scenario sweep of the scenario zoo, then a
# TSan build (NOPE_SANITIZE=thread) that runs the thread-pool,
# cross-thread-count determinism, and cancellation tests plus a small-fleet
# replay of the fleet simulator.
# Fails fast and names the failing stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "=== stage 1: plain build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)"

echo "=== stage 2: tier-1 tests ==="
(cd build && ctest --output-on-failure -j "$(nproc)")

echo "=== stage 3: ASan/UBSan build ==="
cmake -B build-san -S . -DNOPE_SANITIZE=address,undefined >/dev/null
# The sanitizer run covers the untrusted-input surface: every unit-test
# binary that feeds parsers, plus the fault-injection campaigns.
SAN_TARGETS=(biguint_test hash_test field_test fp_simd_test curve_test
             rsa_test ecdsa_test
             constraint_system_test groth16_test msm_kernel_test dns_test
             pki_test analysis_test fault_injection_test
             clock_test timer_wheel_test cancellation_test renewal_sim_test
             key_cache_test service_test scenario_test fleet_sim_test
             verifier_soundness_test batch_verify_test)
cmake --build build-san -j "$(nproc)" --target "${SAN_TARGETS[@]}" \
  r1cs_opt_test gadget_audit_test bench_scenario_sweep

echo "=== stage 4: sanitized tests ==="
for t in "${SAN_TARGETS[@]}"; do
  echo "--- $t (ASan/UBSan) ---"
  ./build-san/tests/"$t"
done

echo "=== stage 4a: R1CS optimizer equivalence + gadget audit (ASan/UBSan) ==="
# Optimizer unit + Map/Lift equivalence tests under the sanitizers; the
# OptimizerStatement.* suite (full-statement builds plus Groth16 proving) is
# minutes-long even unsanitized, so it runs in the plain tier-1 stage only.
./build-san/tests/r1cs_opt_test --gtest_filter='Optimizer.*'
# Full per-gadget mutation audit with a reduced per-gadget assignment budget
# (the plain ctest run uses the default 1000); still runs every registered
# gadget pre- and post-optimization and both broken fixtures.
NOPE_AUDIT_BUDGET=100 ./build-san/tests/gadget_audit_test

echo "=== stage 4b: seeded scenario sweep smoke (ASan/UBSan) ==="
# ~200 generated DNSSEC/PKI scenarios through the full issuance/renewal/
# verification lifecycle: any crash, sanitizer report, or per-class invariant
# abort fails CI. Run twice and require byte-identical outcome matrices — the
# sweep's replayability contract.
sweep_digest() {
  ./build-san/bench/bench_scenario_sweep --scenarios=200 --seed=6 \
    | grep '^matrix digest'
}
d1="$(sweep_digest)"
d2="$(sweep_digest)"
echo "sweep: $d1"
if [ "$d1" != "$d2" ]; then
  echo "FAILED: scenario sweep is not deterministic ($d1 vs $d2)" >&2
  exit 1
fi

echo "=== stage 4c: SIMD off/on digest identity ==="
# The determinism contract across SIMD backends is cross-PROCESS (the
# NOPE_SIMD env is read once per process), so it cannot live in a gtest:
# run the digest binary under every backend x thread-count combination and
# require bit-identical stdout. Covers MSM result bytes and full Groth16
# proof bytes.
cmake --build build -j "$(nproc)" --target simd_determinism_main >/dev/null
ref="$(NOPE_SIMD=off NOPE_THREADS=1 ./build/tests/simd_determinism_main 2>/dev/null)"
for simd in off on; do
  for threads in 1 2 7; do
    got="$(NOPE_SIMD=$simd NOPE_THREADS=$threads ./build/tests/simd_determinism_main 2>/dev/null)"
    if [ "$got" != "$ref" ]; then
      echo "FAILED: digest mismatch at NOPE_SIMD=$simd NOPE_THREADS=$threads" >&2
      echo "want: $ref" >&2
      echo "got:  $got" >&2
      exit 1
    fi
  done
done
echo "digests identical across NOPE_SIMD={off,on} x NOPE_THREADS={1,2,7}"

echo "=== stage 4d: NOPE_SIMD=off build ==="
# The scalar-only configuration must build and pass the field/MSM/Groth16
# tests on its own: hosts without AVX2/NEON compile no SIMD translation
# units at all, and this leg keeps that path honest.
cmake -B build-nosimd -S . -DNOPE_SIMD=OFF >/dev/null
NOSIMD_TARGETS=(field_test fp_simd_test msm_kernel_test groth16_test)
cmake --build build-nosimd -j "$(nproc)" --target "${NOSIMD_TARGETS[@]}" \
  simd_determinism_main
for t in "${NOSIMD_TARGETS[@]}"; do
  echo "--- $t (NOPE_SIMD=OFF) ---"
  ./build-nosimd/tests/"$t"
done
# Cross-BUILD digest identity: a binary with no SIMD kernels compiled in
# must produce the same proof bytes as the SIMD build.
got="$(./build-nosimd/tests/simd_determinism_main 2>/dev/null)"
if [ "$got" != "$ref" ]; then
  echo "FAILED: NOPE_SIMD=OFF build digest mismatch" >&2
  exit 1
fi
echo "NOPE_SIMD=OFF build digests match the SIMD build"

echo "=== stage 5: TSan build (parallel proving) ==="
cmake -B build-tsan -S . -DNOPE_SANITIZE=thread >/dev/null
TSAN_TARGETS=(threadpool_test fp_simd_test msm_kernel_test
              parallel_determinism_test
              cancellation_test renewal_sim_test key_cache_test service_test
              batch_verify_test)
cmake --build build-tsan -j "$(nproc)" --target "${TSAN_TARGETS[@]}" fleet_sim_test

echo "=== stage 6: TSan tests ==="
for t in "${TSAN_TARGETS[@]}"; do
  echo "--- $t (TSan) ---"
  ./build-tsan/tests/"$t"
done

echo "=== stage 6b: TSan small-fleet replay (10^3 domains, bursts on) ==="
# The fleet simulator's determinism contract, exercised with the race
# detector watching the prover worker / pump interactions: a 1000-domain,
# 20-day fleet with Poisson bursts must replay byte-identically.
./build-tsan/tests/fleet_sim_test \
  --gtest_filter='FleetSim.SmallFleetReplaysByteIdentically:FaultBurstDriver.*'

echo "CI OK"
