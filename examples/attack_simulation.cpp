// Attack scenarios from the paper's threat model (§3.1, §3.3), run concretely
// against the simulated infrastructure: a legacy-DNS attacker defeating
// ACME's domain validation, a rogue CA, proof theft, and CT-based detection.
// Ends with the full Figure 3 analysis matrix.
#include <cstdio>

#include "src/core/analysis.h"
#include "src/core/nope.h"

using namespace nope;

int main() {
  constexpr uint64_t kNow = 1750000000;
  Rng rng(21);
  CtLog log(1, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log}, &rng);
  DnssecHierarchy dns(CryptoSuite::Toy(), 22);
  dns.AddZone(DnsName::FromString("com"));
  DnsName victim = DnsName::FromString("victim.com");
  dns.AddZone(victim);
  EcdsaKeyPair victim_tls = GenerateEcdsaKey(&rng);
  EcdsaKeyPair attacker_tls = GenerateEcdsaKey(&rng);
  TrustStore trust{ca.root_public_key(), 1};

  printf("=== Scenario 1: legacy-DNS attacker vs ACME domain validation ===\n");
  // The attacker intercepts the CA's DNS queries and answers the challenge
  // itself — exactly the weakness DV inherits from unauthenticated DNS (§1).
  CertificateSigningRequest csr;
  csr.subject = victim;
  csr.public_key = attacker_tls.pub.Encode();
  AcmeOrder order = ca.NewOrder(csr);
  TxtResolver attacker_resolver = [&](const DnsName&) {
    return std::vector<std::string>{order.challenge_token};
  };
  auto rogue = ca.FinalizeOrder(order, csr, attacker_resolver, kNow);
  printf("  rogue certificate issued: %s\n", rogue ? "YES (DV defeated)" : "no");
  CertificateChain rogue_chain{*rogue, ca.intermediate()};
  printf("  legacy client accepts it: %s  <-- the status quo failure\n",
         LegacyVerifyChain(rogue_chain, trust, victim, kNow + 10, nullptr) == LegacyStatus::kOk
             ? "YES"
             : "no");

  printf("\n=== Scenario 2: the same attack against a NOPE-pinned client ===\n");
  printf("  [setup] trusted setup for %s ...\n", victim.ToString().c_str());
  NopeDeployment deployment = NopeTrustedSetup(&dns, victim, StatementOptions::Full(), &rng);
  NopeClientResult verdict =
      NopeClientVerify(deployment, rogue_chain, trust, victim, kNow + 10, nullptr);
  printf("  NOPE client verdict: %s  <-- no DNSSEC chain, no proof, no dice\n",
         NopeVerifyStatusName(verdict.status));

  printf("\n=== Scenario 3: attacker steals the victim's NOPE proof ===\n");
  auto legit = IssueCertificate(&deployment, &dns, &ca, victim, victim_tls.pub.Encode(), kNow,
                                &rng, true);
  CertificateSigningRequest theft;
  theft.subject = victim;
  theft.public_key = attacker_tls.pub.Encode();
  theft.sans = legit->chain.leaf.body.sans;  // copied proof SANs
  Certificate stolen = ca.IssueWithoutValidation(theft, kNow);
  CertificateChain stolen_chain{stolen, ca.intermediate()};
  NopeClientResult stolen_verdict =
      NopeClientVerify(deployment, stolen_chain, trust, victim, kNow + 10, nullptr);
  printf("  NOPE client verdict: %s  <-- proof is bound to the victim's TLS key\n",
         NopeVerifyStatusName(stolen_verdict.status));

  printf("\n=== Scenario 4: detection through Certificate Transparency ===\n");
  size_t checkpoint = 0;  // domain owner's last monitor position
  // Both the rogue and the stolen-proof certificates were logged.
  auto entries = log.EntriesSince(checkpoint);
  // The owner scans for certificates naming their domain with unknown keys.
  int suspicious = static_cast<int>(entries.size());
  printf("  monitor finds %d new log entries for audit; rogue certs are visible\n", suspicious);
  printf("  within the MMD of %llu h and can then be revoked (OCSP/CRL).\n",
         static_cast<unsigned long long>(kMaxMergeDelaySeconds / 3600));

  printf("\n=== Figure 3: the full analysis matrix ===\n\n%s",
         RenderFigure3(BuildFigure3Matrix()).c_str());
  return 0;
}
