// NOPE vs DCE (RFC 9102) side by side, as discussed in §2.2 and measured in
// §8: bandwidth, verification, and what happens under a DNSSEC attacker.
#include <cstdio>

#include "src/core/nope.h"

using namespace nope;

int main() {
  constexpr uint64_t kNow = 1750000000;
  Rng rng(31);
  CtLog log(1, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log}, &rng);

  // Real-suite hierarchy for DCE bandwidth (P-256 + RSA-2048 root).
  DnssecHierarchy real_dns(CryptoSuite::Real(), 32);
  real_dns.AddZone(DnsName::FromString("org"));
  DnsName domain = DnsName::FromString("nope-tools.org");
  real_dns.AddZone(domain);
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);

  DceBundle dce = BuildDceBundle(&real_dns, domain, tls_key.pub.Encode());
  DnskeyRdata anchor = real_dns.root().ZskRdata();
  printf("DCE bundle (real suite): %zu bytes shipped per TLS handshake\n",
         dce.Serialize().size());
  printf("DCE client validates the whole chain: %s\n",
         DceVerify(CryptoSuite::Real(), dce, domain, tls_key.pub.Encode(), anchor).ok() ? "ok"
                                                                                   : "FAILED");

  // NOPE pipeline at demo profile.
  DnssecHierarchy dns(CryptoSuite::Toy(), 33);
  dns.AddZone(DnsName::FromString("org"));
  dns.AddZone(domain);
  printf("\n[setup] NOPE trusted setup (demo profile)...\n");
  NopeDeployment deployment = NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);
  auto issued =
      IssueCertificate(&deployment, &dns, &ca, domain, tls_key.pub.Encode(), kNow, &rng, true);
  printf("NOPE certificate chain: %zu bytes (proof adds 128 raw / ~%zu encoded)\n",
         issued->chain.TotalSize(), issued->chain.leaf.SizeBreakdown()["nope_proof_encoded"]);

  printf("\nThe trade (paper §8.5): DCE ships kilobytes of DNSSEC records per\n");
  printf("handshake and gains nothing against a DNSSEC attacker, with no\n");
  printf("transparency or revocation. NOPE ships a 128-byte proof inside the\n");
  printf("legacy certificate, keeps CT and OCSP/CRL, and requires BOTH a\n");
  printf("certificate-side attacker and a DNSSEC attacker to fall.\n");

  // Concrete: a forged hierarchy (DNSSEC attacker) fools DCE...
  DnssecHierarchy forged(CryptoSuite::Real(), 666);
  forged.AddZone(DnsName::FromString("org"));
  forged.AddZone(domain);
  EcdsaKeyPair attacker_key = GenerateEcdsaKey(&rng);
  DceBundle forged_bundle = BuildDceBundle(&forged, domain, attacker_key.pub.Encode());
  printf("\nDNSSEC attacker forging a chain from a compromised root:\n");
  printf("  DCE client vs forged-root chain + real anchor: %s\n",
         DceVerify(CryptoSuite::Real(), forged_bundle, domain, attacker_key.pub.Encode(), anchor).ok()
             ? "ACCEPTED"
             : "rejected (anchor mismatch)");
  printf("  (With the real root key compromised, DCE falls silently and forever —\n");
  printf("   no log entry, no revocation. NOPE still demands a rogue certificate,\n");
  printf("   which lands in CT within 24h. See Figure 3.)\n");
  return 0;
}
