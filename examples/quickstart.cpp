// Quickstart: the smallest possible NOPE round trip.
//
//   1. Build a simulated DNSSEC hierarchy (root -> com -> example.com).
//   2. Run the one-time trusted setup for the statement shape.
//   3. Prove that a DNSSEC chain binds example.com's KSK — with the TLS key,
//      CA name, and timestamp bound in as public inputs.
//   4. Verify the 128-byte proof as a client would.
//
// Uses the demo ("toy") crypto suite so everything completes in about a
// minute on a laptop; the statement structure is identical to the
// paper-scale one (see DESIGN.md).
#include <cstdio>

#include "src/core/nope.h"

using namespace nope;

int main() {
  Rng rng(1);

  printf("== 1. Simulated DNSSEC hierarchy ==\n");
  DnssecHierarchy dns(CryptoSuite::Toy(), 2);
  dns.AddZone(DnsName::FromString("com"));
  DnsName domain = DnsName::FromString("example.com");
  dns.AddZone(domain);
  printf("   zones: . -> com. -> example.com. (root ZSK: RSA, zones: ECDSA)\n");

  printf("== 2. Trusted setup (one-time, per statement shape) ==\n");
  NopeDeployment deployment = NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);
  printf("   done.\n");

  printf("== 3. Prove the chain ==\n");
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);
  uint64_t now = 1750000000;
  NopeProofBundle bundle = GenerateNopeProof(deployment, &dns, domain, tls_key.pub.Encode(),
                                             "lets-encrypt-sim", now, &rng);
  Bytes proof_bytes = bundle.proof.ToBytes();
  printf("   proof: %zu bytes (raw), generated in %.1f s\n", proof_bytes.size(),
         bundle.proof_seconds);
  printf("   SAN encoding (%zu SAN(s)):\n", bundle.sans.size());
  for (const std::string& san : bundle.sans) {
    printf("     %s\n", san.c_str());
  }

  printf("== 4. Verify as a client ==\n");
  std::vector<Fr> pub = NopePublicInputs(deployment.params, domain,
                                         TlsKeyDigest(tls_key.pub.Encode()),
                                         CaNameDigest("lets-encrypt-sim"),
                                         TruncateTimestamp(now));
  bool ok = groth16::Verify(deployment.vk(), pub, bundle.proof);
  printf("   verification: %s\n", ok ? "ACCEPTED" : "REJECTED");

  // The proof binds the TLS key: a different key must fail.
  EcdsaKeyPair other = GenerateEcdsaKey(&rng);
  std::vector<Fr> wrong = NopePublicInputs(deployment.params, domain,
                                           TlsKeyDigest(other.pub.Encode()),
                                           CaNameDigest("lets-encrypt-sim"),
                                           TruncateTimestamp(now));
  printf("   verification with a different TLS key: %s (expected REJECTED)\n",
         groth16::Verify(deployment.vk(), wrong, bundle.proof) ? "ACCEPTED" : "REJECTED");
  return ok ? 0 : 1;
}
