// The full Figure 2 pipeline: a domain owner obtains a CA-signed certificate
// with an embedded NOPE proof via ACME DNS-01, the certificate is logged in
// CT, and both a legacy client and a NOPE-aware client verify it.
#include <cstdio>

#include "src/core/nope.h"

using namespace nope;

int main() {
  constexpr uint64_t kNow = 1750000000;
  Rng rng(11);

  // Infrastructure: two CT logs, one CA, and the DNSSEC hierarchy.
  CtLog log1(1, &rng), log2(2, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log1, &log2}, &rng);
  DnssecHierarchy dns(CryptoSuite::Toy(), 12);
  dns.AddZone(DnsName::FromString("org"));
  DnsName domain = DnsName::FromString("nope-tools.org");
  dns.AddZone(domain);
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);

  printf("[setup]  trusted setup for %s ...\n", domain.ToString().c_str());
  NopeDeployment deployment = NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);

  printf("[issue]  Fig. 2 steps 1-7: proof + ACME DNS-01 + CT logging ...\n");
  auto result = IssueCertificate(&deployment, &dns, &ca, domain, tls_key.pub.Encode(), kNow,
                                 &rng, /*with_nope=*/true);
  if (!result) {
    printf("issuance failed\n");
    return 1;
  }
  const IssuanceTimeline& t = result->timeline;
  printf("         proof generation  %6.1f s (measured)\n", t.proof_generation_s);
  printf("         ACME initiation   %6.1f s (modeled)\n", t.acme_initiation_s);
  printf("         DNS propagation   %6.1f s (modeled)\n", t.dns_propagation_s);
  printf("         ACME verification %6.1f s (modeled)\n", t.acme_verification_s);
  printf("         certificate serial %llu, chain %zu bytes, %zu SCTs\n",
         static_cast<unsigned long long>(result->chain.leaf.body.serial),
         result->chain.TotalSize(), result->chain.leaf.body.scts.size());

  // The certificate is publicly visible in the CT logs (transparency).
  Bytes precert = result->chain.leaf.body.Serialize(/*is_precert=*/true);
  auto inclusion = log1.ProveInclusion(precert);
  printf("[ct]     precert logged: %s (tree size %zu)\n",
         inclusion.has_value() ? "yes" : "NO", log1.TreeSize());
  if (inclusion.has_value()) {
    printf("[ct]     inclusion proof verifies: %s\n",
           CtLog::VerifyInclusion(log1.RootHash(), precert, *inclusion) ? "yes" : "NO");
  }

  TrustStore trust{ca.root_public_key(), 2};
  printf("[legacy] legacy client: %s\n",
         LegacyStatusName(LegacyVerifyChain(result->chain, trust, domain, kNow + 60, nullptr)));
  NopeClientResult verdict =
      NopeClientVerify(deployment, result->chain, trust, domain, kNow + 60, nullptr);
  printf("[nope]   NOPE-aware client: %s\n", NopeVerifyStatusName(verdict.status));

  // Revocation still works through the legacy machinery (§3.2).
  ca.Revoke(result->chain.leaf.body.serial);
  OcspResponse ocsp = ca.SignOcsp(result->chain.leaf.body.serial, kNow + 120);
  NopeClientResult revoked =
      NopeClientVerify(deployment, result->chain, trust, domain, kNow + 120, &ocsp);
  printf("[revoke] after OCSP revocation: %s / %s\n", NopeVerifyStatusName(revoked.status),
         LegacyStatusName(revoked.legacy));
  return verdict.status == NopeVerifyStatus::kOk ? 0 : 1;
}
