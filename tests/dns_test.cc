#include <gtest/gtest.h>

#include "src/base/sha256.h"
#include "src/dns/dnssec.h"

namespace nope {
namespace {

TEST(DnsName, ParseAndFormat) {
  DnsName n = DnsName::FromString("www.Example.COM");
  EXPECT_EQ(n.NumLabels(), 3u);
  EXPECT_EQ(n.ToString(), "www.Example.COM.");
  EXPECT_EQ(n.Canonical().ToString(), "www.example.com.");
  EXPECT_EQ(DnsName::FromString("example.com."), DnsName::FromString("EXAMPLE.com"));
  EXPECT_EQ(DnsName::Root().ToString(), ".");
  EXPECT_THROW(DnsName::FromString("a..b"), std::invalid_argument);
  EXPECT_THROW(DnsName::FromString(std::string(64, 'x') + ".com"), std::invalid_argument);
}

TEST(DnsName, WireRoundTrip) {
  DnsName n = DnsName::FromString("example.com");
  Bytes wire = n.ToWire();
  EXPECT_EQ(wire, (Bytes{7, 'e', 'x', 'a', 'm', 'p', 'l', 'e', 3, 'c', 'o', 'm', 0}));
  size_t pos = 0;
  EXPECT_EQ(DnsName::FromWire(wire, &pos), n);
  EXPECT_EQ(pos, wire.size());
  EXPECT_EQ(DnsName::Root().ToWire(), Bytes{0});
}

TEST(DnsName, HierarchyNavigation) {
  DnsName n = DnsName::FromString("www.example.com");
  EXPECT_EQ(n.Parent().ToString(), "example.com.");
  EXPECT_EQ(n.Parent().Parent().Parent(), DnsName::Root());
  EXPECT_THROW(DnsName::Root().Parent(), std::logic_error);
  EXPECT_EQ(DnsName::FromString("com").Child("example").ToString(), "example.com.");
  EXPECT_TRUE(n.IsSubdomainOf(DnsName::FromString("example.com")));
  EXPECT_TRUE(n.IsSubdomainOf(DnsName::Root()));
  EXPECT_FALSE(DnsName::FromString("example.org").IsSubdomainOf(DnsName::FromString("com")));
}

TEST(DnsName, Rfc1035LabelLimits) {
  // 63-byte labels are the RFC 1035 maximum; 64 is rejected.
  std::string max_label(DnsName::kMaxLabelBytes, 'x');
  DnsName ok = DnsName::FromString(max_label + ".com");
  EXPECT_EQ(ok.NumLabels(), 2u);
  size_t pos = 0;
  EXPECT_EQ(DnsName::FromWire(ok.ToWire(), &pos), ok);

  Result<DnsName> too_long = DnsName::TryFromString(max_label + "y.com");
  ASSERT_FALSE(too_long.ok());
  EXPECT_EQ(too_long.error().code, ErrorCode::kBadLength);

  Result<DnsName> empty_label = DnsName::TryFromString("a..b");
  ASSERT_FALSE(empty_label.ok());
  EXPECT_EQ(empty_label.error().code, ErrorCode::kBadEncoding);
}

TEST(DnsName, Rfc1035NameLimit) {
  // Four 62-byte labels: 4 * 63 + 1 = 253 wire bytes, inside the 255 cap.
  std::string label(62, 'x');
  std::string near = label + "." + label + "." + label + "." + label;
  DnsName ok = DnsName::FromString(near);
  EXPECT_EQ(ok.ToWire().size(), 253u);
  // Pushing past 255 wire bytes fails, both from text and via Child().
  Result<DnsName> over = DnsName::TryFromString(near + ".yy");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().code, ErrorCode::kBadLength);
  EXPECT_THROW(ok.Child("yy"), std::invalid_argument);
}

TEST(DnsName, WireParsingRejectsMalformedNames) {
  // Truncated: length byte promises more than the buffer holds.
  {
    Bytes wire{5, 'a', 'b'};
    size_t pos = 0;
    Result<DnsName> r = DnsName::TryFromWire(wire, &pos);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kTruncated);
  }
  // Missing terminator.
  {
    Bytes wire{3, 'c', 'o', 'm'};
    size_t pos = 0;
    Result<DnsName> r = DnsName::TryFromWire(wire, &pos);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kTruncated);
  }
  // Label length 64 is out of spec even if the bytes are present.
  {
    Bytes wire;
    wire.push_back(64);
    wire.insert(wire.end(), 64, 'a');
    wire.push_back(0);
    size_t pos = 0;
    Result<DnsName> r = DnsName::TryFromWire(wire, &pos);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kBadLength);
  }
  // A name over 255 wire bytes is rejected before its terminator.
  {
    Bytes wire;
    for (int i = 0; i < 5; ++i) {
      wire.push_back(62);
      wire.insert(wire.end(), 62, 'a' + i);
    }
    wire.push_back(0);
    size_t pos = 0;
    Result<DnsName> r = DnsName::TryFromWire(wire, &pos);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::kBadLength);
  }
}

TEST(DnsName, WireRoundTripPreservesCase) {
  // Wire parsing is byte-preserving (canonicalization is a separate, explicit
  // step), so parse-ok implies re-serialize == input.
  DnsName n = DnsName::FromString("WwW.ExAmPlE.CoM");
  Bytes wire = n.ToWire();
  size_t pos = 0;
  Result<DnsName> parsed = DnsName::TryFromWire(wire, &pos);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().ToWire(), wire);
  EXPECT_EQ(parsed.value().ToString(), "WwW.ExAmPlE.CoM.");
}

TEST(DnsName, CanonicalOrdering) {
  // RFC 4034 §6.1: sort by label from the right.
  EXPECT_TRUE(DnsName::FromString("example.com") < DnsName::FromString("a.example.com"));
  EXPECT_TRUE(DnsName::FromString("a.com") < DnsName::FromString("b.com"));
  EXPECT_TRUE(DnsName::FromString("z.a.com") < DnsName::FromString("a.b.com"));
}

TEST(Records, DnskeyRoundTrip) {
  DnskeyRdata key{kDnskeyFlagsKsk, kDnskeyProtocol, kAlgEcdsaP256Sha256, Bytes(64, 0xab)};
  Bytes encoded = key.Encode();
  EXPECT_EQ(encoded.size(), 4u + 64u);
  DnskeyRdata decoded = DnskeyRdata::Decode(encoded);
  EXPECT_EQ(decoded.flags, key.flags);
  EXPECT_EQ(decoded.algorithm, key.algorithm);
  EXPECT_EQ(decoded.public_key, key.public_key);
  EXPECT_TRUE(decoded.IsKsk());
  DnskeyRdata zsk{kDnskeyFlagsZsk, kDnskeyProtocol, kAlgEcdsaP256Sha256, Bytes(64, 1)};
  EXPECT_FALSE(zsk.IsKsk());
}

TEST(Records, RrsigRoundTripAndPrefix) {
  RrsigRdata sig;
  sig.type_covered = static_cast<uint16_t>(RrType::kDnskey);
  sig.algorithm = kAlgEcdsaP256Sha256;
  sig.labels = 2;
  sig.original_ttl = 3600;
  sig.expiration = 1800000000;
  sig.inception = 1700000000;
  sig.key_tag = 0xbeef;
  sig.signer = DnsName::FromString("example.com");
  sig.signature = Bytes(64, 0x11);

  Bytes encoded = sig.Encode();
  RrsigRdata decoded = RrsigRdata::Decode(encoded);
  EXPECT_EQ(decoded.type_covered, sig.type_covered);
  EXPECT_EQ(decoded.signer, sig.signer);
  EXPECT_EQ(decoded.signature, sig.signature);
  // Prefix is the encoding minus the signature.
  Bytes prefix = sig.EncodePrefix();
  EXPECT_EQ(Bytes(encoded.begin(), encoded.begin() + prefix.size()), prefix);
}

TEST(Records, KeyTagMatchesRfc4034Algorithm) {
  // The key tag folds 16-bit words; check basic structural properties.
  Bytes rdata = {0x01, 0x01, 0x03, 0x08, 0xab, 0xcd};
  uint32_t acc = 0x0101 + 0x0308 + 0xabcd;
  acc += acc >> 16;
  EXPECT_EQ(ComputeKeyTag(rdata), acc & 0xffff);
  // Odd-length rdata: final byte is a high byte.
  Bytes odd = {0x01, 0x01, 0xff};
  uint32_t acc2 = 0x0101 + 0xff00;
  acc2 += acc2 >> 16;
  EXPECT_EQ(ComputeKeyTag(odd), acc2 & 0xffff);
}

TEST(Records, CanonicalRrsetSortsRdata) {
  Rrset set{DnsName::FromString("EXAMPLE.com"), RrType::kTxt, 300, {{3}, {1}, {2}}};
  Rrset canonical = set.Canonical();
  EXPECT_EQ(canonical.name.ToString(), "example.com.");
  EXPECT_EQ(canonical.rdatas, (std::vector<Bytes>{{1}, {2}, {3}}));
}

TEST(Records, TxtRoundTrip) {
  Bytes rdata = TxtRdata("acme-challenge=xyz");
  EXPECT_EQ(TxtRdataToString(rdata), "acme-challenge=xyz");
  EXPECT_THROW(TxtRdata(std::string(300, 'a')), std::invalid_argument);
}

class SuiteTest : public ::testing::TestWithParam<CryptoSuite::Kind> {
 protected:
  const CryptoSuite& suite() const {
    return GetParam() == CryptoSuite::Kind::kReal ? CryptoSuite::Real() : CryptoSuite::Toy();
  }
};

TEST_P(SuiteTest, ZoneSignAndVerifyRoundTrip) {
  Rng rng(2001);
  Zone zone(DnsName::FromString("example.com"), suite(), &rng, /*rsa_zsk=*/false);
  Rrset txt{zone.name(), RrType::kTxt, 300, {TxtRdata("hello")}};
  SignedRrset signed_set = zone.Sign(txt, &rng);

  Bytes buffer = BuildSigningBuffer(signed_set.rrsig, signed_set.rrset);
  EXPECT_TRUE(VerifyWithDnskey(suite(), zone.ZskRdata(), buffer, signed_set.rrsig.signature));
  // Wrong key (KSK) fails.
  EXPECT_FALSE(VerifyWithDnskey(suite(), zone.KskRdata(), buffer, signed_set.rrsig.signature));
  // Tampered buffer fails.
  Bytes bad = buffer;
  bad.back() ^= 1;
  EXPECT_FALSE(VerifyWithDnskey(suite(), zone.ZskRdata(), bad, signed_set.rrsig.signature));
}

TEST_P(SuiteTest, DnskeyRrsetSignedByKsk) {
  Rng rng(2002);
  Zone zone(DnsName::FromString("com"), suite(), &rng, /*rsa_zsk=*/false);
  SignedRrset signed_keys = zone.Sign(zone.DnskeyRrset(), &rng);
  Bytes buffer = BuildSigningBuffer(signed_keys.rrsig, signed_keys.rrset);
  EXPECT_TRUE(VerifyWithDnskey(suite(), zone.KskRdata(), buffer, signed_keys.rrsig.signature));
  EXPECT_EQ(signed_keys.rrsig.key_tag, ComputeKeyTag(zone.KskRdata().Encode()));
}

TEST_P(SuiteTest, HierarchyChainValidates) {
  DnssecHierarchy hierarchy(suite(), 2003);
  hierarchy.AddZone(DnsName::FromString("com"));
  hierarchy.AddZone(DnsName::FromString("example.com"));

  ChainOfTrust chain = hierarchy.BuildChain(DnsName::FromString("example.com"));
  EXPECT_EQ(chain.levels.size(), 1u);  // just .com between example.com and root
  EXPECT_TRUE(ValidateChain(suite(), chain, chain.root_zsk).ok());

  // Wrong trust anchor rejected.
  Rng rng2(999);
  Zone other(DnsName::Root(), suite(), &rng2, /*rsa_zsk=*/true);
  EXPECT_FALSE(ValidateChain(suite(), chain, other.ZskRdata()).ok());
}

TEST_P(SuiteTest, TamperedChainRejected) {
  DnssecHierarchy hierarchy(suite(), 2004);
  hierarchy.AddZone(DnsName::FromString("org"));
  hierarchy.AddZone(DnsName::FromString("nope-tools.org"));
  ChainOfTrust chain = hierarchy.BuildChain(DnsName::FromString("nope-tools.org"));
  ASSERT_TRUE(ValidateChain(suite(), chain, chain.root_zsk).ok());

  // Swap the leaf KSK for an attacker key: the DS digest no longer matches.
  ChainOfTrust bad = chain;
  Rng rng(1234);
  Zone attacker(DnsName::FromString("nope-tools.org"), suite(), &rng, false);
  bad.leaf_ksk = attacker.KskRdata();
  EXPECT_FALSE(ValidateChain(suite(), bad, chain.root_zsk).ok());

  // Corrupt a DS signature byte.
  bad = chain;
  bad.leaf_ds.rrsig.signature[0] ^= 1;
  EXPECT_FALSE(ValidateChain(suite(), bad, chain.root_zsk).ok());

  // Corrupt the intermediate DNSKEY RRset.
  bad = chain;
  bad.levels[0].dnskey.rrset.rdatas[0][6] ^= 1;
  EXPECT_FALSE(ValidateChain(suite(), bad, chain.root_zsk).ok());
}

TEST_P(SuiteTest, DeeperHierarchy) {
  DnssecHierarchy hierarchy(suite(), 2005);
  hierarchy.AddZone(DnsName::FromString("uk"));
  hierarchy.AddZone(DnsName::FromString("co.uk"));
  hierarchy.AddZone(DnsName::FromString("example.co.uk"));
  ChainOfTrust chain = hierarchy.BuildChain(DnsName::FromString("example.co.uk"));
  EXPECT_EQ(chain.levels.size(), 2u);
  EXPECT_TRUE(ValidateChain(suite(), chain, chain.root_zsk).ok());
}

TEST_P(SuiteTest, DceChainSerializationSize) {
  DnssecHierarchy hierarchy(suite(), 2006);
  hierarchy.AddZone(DnsName::FromString("org"));
  hierarchy.AddZone(DnsName::FromString("nope-tools.org"));
  ChainOfTrust chain = hierarchy.BuildChain(DnsName::FromString("nope-tools.org"));
  Bytes serialized = SerializeDceChain(chain);
  EXPECT_GT(serialized.size(), 100u);
  if (suite().kind == CryptoSuite::Kind::kReal) {
    // Paper Fig. 7: a real DCE chain is several KB.
    EXPECT_GT(serialized.size(), 1000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Suites, SuiteTest,
                         ::testing::Values(CryptoSuite::Kind::kReal, CryptoSuite::Kind::kToy));

TEST(Hierarchy, TxtRecords) {
  DnssecHierarchy hierarchy(CryptoSuite::Toy(), 2007);
  hierarchy.AddZone(DnsName::FromString("com"));
  hierarchy.AddZone(DnsName::FromString("example.com"));
  DnsName challenge = DnsName::FromString("_acme-challenge.example.com");
  hierarchy.SetTxt(challenge, "token123");
  hierarchy.SetTxt(challenge, "token456");
  auto values = hierarchy.QueryTxt(challenge);
  EXPECT_EQ(values.size(), 2u);
  EXPECT_TRUE(hierarchy.QueryTxt(DnsName::FromString("other.com")).empty());

  hierarchy.SetTxt(DnsName::FromString("example.com"), "nope-binding=abc");
  SignedRrset signed_txt = hierarchy.SignedTxt(DnsName::FromString("example.com"));
  Zone* zone = hierarchy.Find(DnsName::FromString("example.com"));
  Bytes buffer = BuildSigningBuffer(signed_txt.rrsig, signed_txt.rrset);
  EXPECT_TRUE(VerifyWithDnskey(CryptoSuite::Toy(), zone->ZskRdata(), buffer,
                               signed_txt.rrsig.signature));
}

TEST(Hierarchy, RootZskIsRsa) {
  DnssecHierarchy hierarchy(CryptoSuite::Real(), 2008);
  EXPECT_EQ(hierarchy.root().ZskRdata().algorithm, kAlgRsaSha256);
  EXPECT_EQ(hierarchy.root().KskRdata().algorithm, kAlgEcdsaP256Sha256);
  // RSA-2048 public key wire: 1 + 3 + 256.
  EXPECT_EQ(hierarchy.root().ZskRdata().public_key.size(), 260u);
}

// RFC 4034 §3.1.5 boundary behavior at a re-signing (rollover) instant T:
// the outgoing RRSIGs expire exactly at T and the incoming ones begin
// exactly at T. Both windows are inclusive, so at exactly T either chain
// validates even with zero tolerance; one second to either side needs
// clock_skew_tolerance_s to absorb it.
TEST(ChainTimes, RolloverInstantBoundaries) {
  constexpr uint64_t kT = 1'750'000'000;
  const DnsName leaf = DnsName::FromString("example.com");

  DnssecHierarchy hierarchy(CryptoSuite::Toy(), 2010);
  ZoneConfig outgoing;
  outgoing.rrsig_inception = kT - 3600;
  outgoing.rrsig_expiration = kT;
  hierarchy.root().SetRrsigWindow(kT - 3600, kT);
  hierarchy.AddZone(DnsName::FromString("com"), outgoing);
  hierarchy.AddZone(leaf, outgoing);
  ChainOfTrust old_chain = hierarchy.BuildChain(leaf);

  // Inclusive at expiration: still valid at exactly T, strict tolerance.
  EXPECT_TRUE(ValidateChainTimes(old_chain, kT, 0).ok());
  Status late = ValidateChainTimes(old_chain, kT + 1, 0);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().code, ErrorCode::kOutOfRange);
  EXPECT_NE(late.error().context.find("expired"), std::string::npos);
  EXPECT_TRUE(ValidateChainTimes(old_chain, kT + 1, 1).ok());

  // Re-sign everything with the post-rollover window starting exactly at T.
  hierarchy.root().SetRrsigWindow(kT, kT + 3600);
  hierarchy.Find(DnsName::FromString("com"))->SetRrsigWindow(kT, kT + 3600);
  hierarchy.Find(leaf)->SetRrsigWindow(kT, kT + 3600);
  ChainOfTrust new_chain = hierarchy.BuildChain(leaf);

  // Inclusive at inception: already valid at exactly T, strict tolerance.
  EXPECT_TRUE(ValidateChainTimes(new_chain, kT, 0).ok());
  Status early = ValidateChainTimes(new_chain, kT - 1, 0);
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.error().code, ErrorCode::kOutOfRange);
  EXPECT_NE(early.error().context.find("future"), std::string::npos);
  EXPECT_TRUE(ValidateChainTimes(new_chain, kT - 1, 1).ok());

  // The tolerance widens both edges symmetrically — and no further.
  EXPECT_TRUE(ValidateChainTimes(old_chain, kT + 300, 300).ok());
  EXPECT_FALSE(ValidateChainTimes(old_chain, kT + 301, 300).ok());
  EXPECT_TRUE(ValidateChainTimes(new_chain, kT - 300, 300).ok());
  EXPECT_FALSE(ValidateChainTimes(new_chain, kT - 301, 300).ok());
}

TEST(Hierarchy, AddZoneRequiresParent) {
  DnssecHierarchy hierarchy(CryptoSuite::Toy(), 2009);
  EXPECT_THROW(hierarchy.AddZone(DnsName::FromString("example.com")), std::invalid_argument);
  hierarchy.AddZone(DnsName::FromString("com"));
  EXPECT_NO_THROW(hierarchy.AddZone(DnsName::FromString("example.com")));
}

}  // namespace
}  // namespace nope
