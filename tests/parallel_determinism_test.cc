// Cross-thread-count determinism: the parallel proving pipeline must return
// byte-identical results for every NOPE_THREADS value. Field elements are
// canonical (fully reduced Montgomery form), so any Fr mismatch or any
// Jacobian-coordinate mismatch in an MSM result indicates the chunk grid or
// merge order leaked the thread count. Sizes deliberately straddle the
// serial/parallel cutoffs (msm_detail::kParallelCutoff for the Jacobian
// reference kernel, the signed-affine kernel's fixed chunk grid of
// max(512, 8 * 2^(c-1)) points, the ParallelFor min-chunk sizes, and
// BatchInvert's 2*1024 block threshold).
#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <vector>

#include "src/base/threadpool.h"
#include "src/ec/batch_affine.h"
#include "src/ec/bn254.h"
#include "src/ec/msm.h"
#include "src/groth16/groth16.h"

namespace nope {
namespace {

std::vector<size_t> ThreadCounts() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  return {1, 2, 7, hw};
}

// Exact representation equality -- stricter than Equals(), which compares
// the group element modulo the Jacobian z factor.
bool FieldRepEq(const Fq& a, const Fq& b) { return a.limbs() == b.limbs(); }
bool FieldRepEq(const Fp2& a, const Fp2& b) {
  return FieldRepEq(a.c0, b.c0) && FieldRepEq(a.c1, b.c1);
}
template <typename Point>
bool PointRepEq(const Point& a, const Point& b) {
  return FieldRepEq(a.x, b.x) && FieldRepEq(a.y, b.y) && FieldRepEq(a.z, b.z);
}
template <typename Affine>
bool AffineRepEq(const Affine& a, const Affine& b) {
  if (a.infinity || b.infinity) {
    return a.infinity == b.infinity;
  }
  return FieldRepEq(a.x, b.x) && FieldRepEq(a.y, b.y);
}

class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::SetGlobalThreads(0); }
};

TEST_F(ParallelDeterminism, MsmG1BitIdenticalAcrossThreadCounts) {
  Rng rng(4242);
  // 255/256/257 straddle the reference kernel's kParallelCutoff; 1500 spans
  // multiple chunks of both kernels' fixed grids (the GLV path doubles n,
  // so 1500 becomes a 3000-point signed-affine instance).
  for (size_t n : {3u, 100u, 255u, 256u, 257u, 1500u}) {
    std::vector<G1> bases;
    std::vector<BigUInt> scalars;
    bases.reserve(n);
    scalars.reserve(n);
    G1 p = G1Generator();
    for (size_t i = 0; i < n; ++i) {
      bases.push_back(p);
      p = p.Add(G1Generator());
      scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
    }
    ThreadPool::SetGlobalThreads(1);
    G1 reference = Msm(bases, scalars);
    for (size_t t : ThreadCounts()) {
      ThreadPool::SetGlobalThreads(t);
      G1 got = Msm(bases, scalars);
      EXPECT_TRUE(PointRepEq(reference, got)) << "n=" << n << " threads=" << t;
    }
  }
}

TEST_F(ParallelDeterminism, MsmG2BitIdenticalAcrossThreadCounts) {
  Rng rng(777);
  for (size_t n : {10u, 300u}) {
    std::vector<G2> bases;
    std::vector<BigUInt> scalars;
    G2 p = G2Generator();
    for (size_t i = 0; i < n; ++i) {
      bases.push_back(p);
      p = p.Add(G2Generator());
      scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
    }
    ThreadPool::SetGlobalThreads(1);
    G2 reference = Msm(bases, scalars);
    for (size_t t : ThreadCounts()) {
      ThreadPool::SetGlobalThreads(t);
      EXPECT_TRUE(PointRepEq(reference, Msm(bases, scalars)))
          << "n=" << n << " threads=" << t;
    }
  }
}

// The signed-digit + GLV path specifically: affine bases straddling the
// signed kernel's chunk grid (512-point chunks at small c; the GLV expansion
// doubles the instance size on top).
TEST_F(ParallelDeterminism, MsmAffineGlvG1BitIdenticalAcrossThreadCounts) {
  Rng rng(60321);
  for (size_t n : {5u, 511u, 512u, 513u, 1500u}) {
    std::vector<G1> jac;
    std::vector<BigUInt> scalars;
    G1 p = G1Generator();
    for (size_t i = 0; i < n; ++i) {
      jac.push_back(p);
      p = p.Add(G1Generator());
      scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
    }
    std::vector<G1Affine> bases = BatchToAffine(jac);
    ThreadPool::SetGlobalThreads(1);
    G1 reference = MsmAffine(bases, scalars);
    for (size_t t : ThreadCounts()) {
      ThreadPool::SetGlobalThreads(t);
      EXPECT_TRUE(PointRepEq(reference, MsmAffine(bases, scalars)))
          << "n=" << n << " threads=" << t;
    }
  }
}

// G2 runs the signed-digit kernel without the endomorphism; cover it (and
// the no-GLV MsmSignedAffine entry point) separately.
TEST_F(ParallelDeterminism, MsmSignedAffineG2BitIdenticalAcrossThreadCounts) {
  Rng rng(60322);
  for (size_t n : {10u, 600u}) {
    std::vector<G2> jac;
    std::vector<BigUInt> scalars;
    G2 p = G2Generator();
    for (size_t i = 0; i < n; ++i) {
      jac.push_back(p);
      p = p.Add(G2Generator());
      scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
    }
    std::vector<G2Affine> bases = BatchToAffine(jac);
    ThreadPool::SetGlobalThreads(1);
    G2 reference = MsmSignedAffine(bases, scalars);
    for (size_t t : ThreadCounts()) {
      ThreadPool::SetGlobalThreads(t);
      EXPECT_TRUE(PointRepEq(reference, MsmSignedAffine(bases, scalars)))
          << "n=" << n << " threads=" << t;
    }
  }
}

// BatchToAffine's block grid (1024) is fixed, so conversion itself must be
// thread-count independent too -- Setup's affine tables depend on it.
TEST_F(ParallelDeterminism, BatchToAffineBitIdenticalAcrossThreadCounts) {
  std::vector<G1> jac;
  G1 p = G1Generator();
  for (size_t i = 0; i < 2500; ++i) {
    jac.push_back(p);
    p = p.Double();
  }
  ThreadPool::SetGlobalThreads(1);
  std::vector<G1Affine> reference = BatchToAffine(jac);
  for (size_t t : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(t);
    std::vector<G1Affine> got = BatchToAffine(jac);
    ASSERT_EQ(reference.size(), got.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      ASSERT_TRUE(AffineRepEq(reference[i], got[i]))
          << "index=" << i << " threads=" << t;
    }
  }
}

TEST_F(ParallelDeterminism, FftFamilyBitIdenticalAcrossThreadCounts) {
  Rng rng(31337);
  for (size_t n : {8u, 2048u, 4096u}) {
    EvaluationDomain domain(n);
    std::vector<Fr> input(domain.size());
    for (auto& v : input) {
      v = Fr::Random(&rng);
    }
    using Transform =
        std::function<void(const EvaluationDomain&, std::vector<Fr>*)>;
    const Transform transforms[] = {
        [](const EvaluationDomain& d, std::vector<Fr>* a) { d.Fft(a); },
        [](const EvaluationDomain& d, std::vector<Fr>* a) { d.Ifft(a); },
        [](const EvaluationDomain& d, std::vector<Fr>* a) { d.CosetFft(a); },
        [](const EvaluationDomain& d, std::vector<Fr>* a) { d.CosetIfft(a); },
    };
    for (const Transform& op : transforms) {
      ThreadPool::SetGlobalThreads(1);
      std::vector<Fr> reference = input;
      op(domain, &reference);
      for (size_t t : ThreadCounts()) {
        ThreadPool::SetGlobalThreads(t);
        std::vector<Fr> got = input;
        op(domain, &got);
        ASSERT_EQ(reference.size(), got.size());
        for (size_t i = 0; i < reference.size(); ++i) {
          ASSERT_EQ(reference[i], got[i]) << "n=" << n << " threads=" << t
                                          << " index=" << i;
        }
      }
    }
  }
}

TEST_F(ParallelDeterminism, FftIfftRoundTrips) {
  Rng rng(5);
  EvaluationDomain domain(4096);
  std::vector<Fr> input(domain.size());
  for (auto& v : input) {
    v = Fr::Random(&rng);
  }
  std::vector<Fr> work = input;
  domain.Fft(&work);
  domain.Ifft(&work);
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(input[i], work[i]) << "index=" << i;
  }
}

TEST_F(ParallelDeterminism, BatchInvertBlockedMatchesSerial) {
  Rng rng(99);
  // 2048 is the blocked-path threshold (2 * kBatchInvertBlock); 100 stays
  // serial, 5000 spans a partial final block.
  for (size_t n : {100u, 2047u, 2048u, 5000u}) {
    std::vector<Fr> input(n);
    for (size_t i = 0; i < n; ++i) {
      input[i] = (i % 97 == 0) ? Fr::Zero() : Fr::Random(&rng);
    }
    ThreadPool::SetGlobalThreads(1);
    std::vector<Fr> reference = input;
    BatchInvert(&reference);
    // Semantics: zeros stay zero, everything else is inverted.
    for (size_t i = 0; i < n; ++i) {
      if (input[i].IsZero()) {
        ASSERT_TRUE(reference[i].IsZero());
      } else {
        ASSERT_EQ(input[i] * reference[i], Fr::One()) << "index=" << i;
      }
    }
    for (size_t t : ThreadCounts()) {
      ThreadPool::SetGlobalThreads(t);
      std::vector<Fr> got = input;
      BatchInvert(&got);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(reference[i], got[i]) << "n=" << n << " threads=" << t
                                        << " index=" << i;
      }
    }
  }
}

// End to end: a full Groth16 proof (seeded randomizers) must serialize to
// the same 128 bytes at every thread count.
TEST_F(ParallelDeterminism, ProveBytesIdenticalAcrossThreadCounts) {
  ConstraintSystem cs;
  Var pub = cs.AddPublicInput(Fr::FromU64(2));
  Fr acc_val = Fr::FromU64(2);
  Var acc = cs.AddWitness(acc_val);
  cs.EnforceEqual(LC(acc), LC(pub));
  for (size_t i = 1; i < 512; ++i) {
    Fr next_val = acc_val * acc_val;
    Var next = cs.AddWitness(next_val);
    cs.Enforce(LC(acc), LC(acc), LC(next));
    acc = next;
    acc_val = next_val;
  }

  Rng setup_rng(42);
  groth16::ProvingKey pk = groth16::Setup(cs, &setup_rng);

  ThreadPool::SetGlobalThreads(1);
  Rng prove_rng(7);
  Bytes reference = groth16::Prove(pk, cs, &prove_rng).ToBytes();
  for (size_t t : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(t);
    Rng rng(7);
    groth16::Proof proof = groth16::Prove(pk, cs, &rng);
    EXPECT_EQ(reference, proof.ToBytes()) << "threads=" << t;
    EXPECT_TRUE(groth16::Verify(pk.vk, {cs.ValueOf(1)}, proof));
  }
}

// Setup is also deterministic under a fixed seed: the query tables are
// element-independent fixed-base muls plus chunked power walks.
TEST_F(ParallelDeterminism, SetupQueryTablesIdenticalAcrossThreadCounts) {
  ConstraintSystem cs;
  Var pub = cs.AddPublicInput(Fr::FromU64(3));
  Fr acc_val = Fr::FromU64(3);
  Var acc = cs.AddWitness(acc_val);
  cs.EnforceEqual(LC(acc), LC(pub));
  for (size_t i = 1; i < 300; ++i) {
    Fr next_val = acc_val * acc_val;
    Var next = cs.AddWitness(next_val);
    cs.Enforce(LC(acc), LC(acc), LC(next));
    acc = next;
    acc_val = next_val;
  }

  ThreadPool::SetGlobalThreads(1);
  Rng rng_ref(1234);
  groth16::ProvingKey reference = groth16::Setup(cs, &rng_ref);
  for (size_t t : ThreadCounts()) {
    ThreadPool::SetGlobalThreads(t);
    Rng rng(1234);
    groth16::ProvingKey got = groth16::Setup(cs, &rng);
    ASSERT_EQ(reference.a_query.size(), got.a_query.size());
    for (size_t i = 0; i < reference.a_query.size(); ++i) {
      ASSERT_TRUE(AffineRepEq(reference.a_query[i], got.a_query[i]))
          << "a_query[" << i << "] threads=" << t;
    }
    ASSERT_EQ(reference.h_query.size(), got.h_query.size());
    for (size_t i = 0; i < reference.h_query.size(); ++i) {
      ASSERT_TRUE(AffineRepEq(reference.h_query[i], got.h_query[i]))
          << "h_query[" << i << "] threads=" << t;
    }
    for (size_t i = 0; i < reference.l_query.size(); ++i) {
      ASSERT_TRUE(AffineRepEq(reference.l_query[i], got.l_query[i]))
          << "l_query[" << i << "] threads=" << t;
    }
  }
}

}  // namespace
}  // namespace nope
