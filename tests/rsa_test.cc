#include "src/sig/rsa.h"

#include <gtest/gtest.h>

#include "src/base/sha256.h"

namespace nope {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(MillerRabin, KnownPrimesAndComposites) {
  Rng rng(401);
  EXPECT_TRUE(IsProbablePrime(BigUInt(2), &rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt(3), &rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt(65537), &rng));
  EXPECT_TRUE(IsProbablePrime(BigUInt::FromDecimal("1000000007"), &rng));
  // P-256 base field prime.
  EXPECT_TRUE(IsProbablePrime(
      BigUInt::FromDecimal(
          "115792089210356248762697446949407573530086143415290314195533631308867097853951"),
      &rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt(1), &rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt(561), &rng));      // Carmichael number
  EXPECT_FALSE(IsProbablePrime(BigUInt(1000000), &rng));
  EXPECT_FALSE(IsProbablePrime(BigUInt::FromDecimal("1000000007") * BigUInt(3), &rng));
}

TEST(Rsa, SignVerifyRoundTrip512) {
  Rng rng(402);
  RsaPrivateKey key = GenerateRsaKey(&rng, 512);
  EXPECT_EQ(key.pub.n.BitLength(), 512u);

  Bytes msg = Ascii("example.com. IN DS ...");
  Bytes sig = RsaSign(key, msg);
  EXPECT_EQ(sig.size(), 64u);
  EXPECT_TRUE(RsaVerify(key.pub, msg, sig));

  // Tampered message or signature must fail.
  Bytes bad_msg = msg;
  bad_msg[0] ^= 1;
  EXPECT_FALSE(RsaVerify(key.pub, bad_msg, sig));
  Bytes bad_sig = sig;
  bad_sig[10] ^= 1;
  EXPECT_FALSE(RsaVerify(key.pub, msg, bad_sig));
  EXPECT_FALSE(RsaVerify(key.pub, msg, Bytes(63, 0)));
}

TEST(Rsa, WrongKeyRejects) {
  Rng rng(403);
  RsaPrivateKey key1 = GenerateRsaKey(&rng, 512);
  RsaPrivateKey key2 = GenerateRsaKey(&rng, 512);
  Bytes msg = Ascii("hello");
  Bytes sig = RsaSign(key1, msg);
  EXPECT_FALSE(RsaVerify(key2.pub, msg, sig));
}

TEST(Rsa, Pkcs1Padding) {
  Bytes digest = Sha256::Hash(Ascii("x"));
  Bytes em = Pkcs1V15EncodeSha256(digest, 128);
  EXPECT_EQ(em.size(), 128u);
  EXPECT_EQ(em[0], 0x00);
  EXPECT_EQ(em[1], 0x01);
  // 0xff padding then 0x00 separator.
  size_t i = 2;
  while (i < em.size() && em[i] == 0xff) {
    ++i;
  }
  EXPECT_EQ(em[i], 0x00);
  // DigestInfo + digest occupy the tail.
  EXPECT_EQ(Bytes(em.end() - 32, em.end()), digest);
  EXPECT_THROW(Pkcs1V15EncodeSha256(digest, 32), std::length_error);
}

TEST(Rsa, DeterministicSignature) {
  Rng rng(404);
  RsaPrivateKey key = GenerateRsaKey(&rng, 512);
  Bytes msg = Ascii("deterministic");
  EXPECT_EQ(RsaSign(key, msg), RsaSign(key, msg));
}

TEST(Rsa, KeyInternalConsistency) {
  Rng rng(405);
  RsaPrivateKey key = GenerateRsaKey(&rng, 256);
  EXPECT_EQ(key.p * key.q, key.pub.n);
  BigUInt phi = (key.p - BigUInt(1)) * (key.q - BigUInt(1));
  EXPECT_EQ(key.pub.e.MulMod(key.d, phi), BigUInt(1));
}

}  // namespace
}  // namespace nope
