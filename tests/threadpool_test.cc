// Unit tests for the fixed-size ThreadPool: exact range coverage, zero-size
// ranges, exception capture/rethrow, nested-call rejection (inline serial
// execution on workers), and NOPE_THREADS / global-pool plumbing.
#include "src/base/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/base/cancellation.h"

namespace nope {
namespace {

TEST(ThreadPool, ZeroSizeRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(0, 0, 1, [&](size_t, size_t) { ++calls; });
  // An inverted range is treated as empty, not as a huge unsigned span.
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    ThreadPool pool(threads);
    for (size_t count : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
      std::vector<int> seen(count, 0);
      pool.ParallelFor(0, count, 3, [&](size_t lo, size_t hi) {
        ASSERT_LE(lo, hi);
        for (size_t i = lo; i < hi; ++i) {
          ++seen[i];  // disjoint subranges: no synchronization needed
        }
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(seen[i], 1) << "threads=" << threads << " count=" << count
                              << " index=" << i;
      }
    }
  }
}

TEST(ThreadPool, RespectsNonZeroBegin) {
  ThreadPool pool(3);
  std::vector<int> seen(20, 0);
  pool.ParallelFor(5, 17, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ++seen[i];
    }
  });
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], (i >= 5 && i < 17) ? 1 : 0) << "index=" << i;
  }
}

TEST(ThreadPool, TaskExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [](size_t, size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool must remain fully usable after a failed loop.
  std::atomic<size_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      sum += i;
    }
  });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ThreadPool, ExceptionInWorkerShareReachesCaller) {
  ThreadPool pool(4);
  // Throw only from worker shares (not the caller's share 0), proving the
  // capture/rethrow path crosses threads.
  EXPECT_THROW(pool.ParallelFor(0, 4, 1,
                                [](size_t lo, size_t) {
                                  if (ThreadPool::InWorker()) {
                                    throw std::runtime_error("worker boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, NestedCallsRunInlineOnWorkers) {
  ThreadPool pool(4);
  std::atomic<int> nested_on_worker{0};
  std::atomic<int> nested_inline{0};
  pool.ParallelFor(0, 4, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      if (!ThreadPool::InWorker()) {
        continue;  // the caller's own share may legitimately parallelize
      }
      ++nested_on_worker;
      std::atomic<int> calls{0};
      std::thread::id outer_tid = std::this_thread::get_id();
      std::atomic<bool> same_thread{true};
      pool.ParallelFor(0, 100, 1, [&](size_t, size_t) {
        ++calls;
        if (std::this_thread::get_id() != outer_tid) {
          same_thread = false;
        }
      });
      // Rejected nesting == one inline invocation on the same worker thread.
      if (calls.load() == 1 && same_thread.load()) {
        ++nested_inline;
      }
    }
  });
  // With 4 lanes and 4 unit shares, shares 1..3 land on workers.
  EXPECT_GT(nested_on_worker.load(), 0);
  EXPECT_EQ(nested_inline.load(), nested_on_worker.load());
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.ParallelFor(0, 1000, 1, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1000u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, DefaultThreadCountReadsEnv) {
  setenv("NOPE_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  setenv("NOPE_THREADS", "not-a-number", 1);
  unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), hw > 0 ? hw : 1u);
  setenv("NOPE_THREADS", "0", 1);  // non-positive: fall back
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), hw > 0 ? hw : 1u);
  unsetenv("NOPE_THREADS");
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), hw > 0 ? hw : 1u);
}

TEST(ThreadPool, ParseThreadCountAcceptsPlainDecimals) {
  EXPECT_EQ(ThreadPool::ParseThreadCount("1", 7), 1u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("16", 7), 16u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("512", 7), 512u);  // kMaxThreads itself
  EXPECT_EQ(ThreadPool::ParseThreadCount("007", 3), 7u);    // leading zeros fine
}

TEST(ThreadPool, ParseThreadCountRejectsGarbage) {
  EXPECT_EQ(ThreadPool::ParseThreadCount(nullptr, 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("", 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("abc", 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("4abc", 7), 7u);   // trailing junk
  EXPECT_EQ(ThreadPool::ParseThreadCount(" 4", 7), 7u);     // leading whitespace
  EXPECT_EQ(ThreadPool::ParseThreadCount("4 ", 7), 7u);     // trailing whitespace
  EXPECT_EQ(ThreadPool::ParseThreadCount("-3", 7), 7u);     // sign is garbage
  EXPECT_EQ(ThreadPool::ParseThreadCount("+3", 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("3.5", 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("0x10", 7), 7u);
}

TEST(ThreadPool, ParseThreadCountRejectsZeroAndHuge) {
  EXPECT_EQ(ThreadPool::ParseThreadCount("0", 7), 7u);
  EXPECT_EQ(ThreadPool::ParseThreadCount("513", 7), 7u);  // just past kMaxThreads
  EXPECT_EQ(ThreadPool::ParseThreadCount("100000", 7), 7u);
  // Would overflow uint64 if accumulated naively; the running clamp bails out
  // long before that.
  EXPECT_EQ(ThreadPool::ParseThreadCount("99999999999999999999999999", 7), 7u);
}

TEST(ThreadPool, SetGlobalThreadsResizesGlobalPool) {
  ThreadPool::SetGlobalThreads(5);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 5u);
  std::vector<int> seen(100, 0);
  ThreadPool::Global().ParallelFor(0, 100, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ++seen[i];
    }
  });
  for (int v : seen) {
    EXPECT_EQ(v, 1);
  }
  ThreadPool::SetGlobalThreads(0);  // restore the environment default
  EXPECT_EQ(ThreadPool::GlobalThreads(), ThreadPool::DefaultThreadCount());
}

// Regression (ISSUE 5): destroying a pool that still holds queued-but-
// unstarted tasks must neither run their bodies after the destructor began
// nor strand the ParallelFor waiting on their completion. Loop A pins the
// single worker inside its share; loop B's worker share therefore sits
// queued when the destructor starts. The destructor must complete B's share
// body-free: B's fn runs exactly once (its caller-thread share), and every
// thread joins (a deadlock here trips the ctest timeout).
TEST(ThreadPool, DestructorCompletesQueuedSharesWithoutRunningThem) {
  auto pool = std::make_unique<ThreadPool>(2);  // one worker lane
  // The loop threads hold a raw pointer: the unique_ptr slot itself is only
  // touched by this thread and td (which it spawns), never concurrently.
  ThreadPool* raw = pool.get();
  std::atomic<int> a_started{0};
  std::atomic<bool> release_a{false};
  std::thread ta([&] {
    raw->ParallelFor(0, 2, 1, [&](size_t, size_t) {
      ++a_started;
      while (!release_a.load()) {
        std::this_thread::yield();
      }
    });
  });
  while (a_started.load() < 2) {
    std::this_thread::yield();  // both A shares running: worker is pinned
  }

  std::atomic<int> b_ran{0};
  std::atomic<bool> b_submitted{false};
  std::thread tb([&] {
    b_submitted = true;
    raw->ParallelFor(0, 2, 1, [&](size_t, size_t) { ++b_ran; });
  });
  while (!b_submitted.load()) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread td([&] { pool.reset(); });  // sets stop_, joins, drains queue
  // Give the destructor a head start so stop_ is set before the worker can
  // leave A's share and steal B's queued task.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  release_a = true;
  ta.join();
  tb.join();
  td.join();
  EXPECT_EQ(b_ran.load(), 1);  // caller share only; queued share never ran
}

// Same shutdown race with a fired CancellationSource (the renewal manager's
// abandon-everything path): every B share skips its body, the destructor
// still unblocks B's completion wait, and nothing deadlocks.
TEST(ThreadPool, ShutdownAfterCancellationFiresDoesNotDeadlock) {
  auto pool = std::make_unique<ThreadPool>(2);
  ThreadPool* raw = pool.get();
  std::atomic<int> a_started{0};
  std::atomic<bool> release_a{false};
  std::thread ta([&] {
    raw->ParallelFor(0, 2, 1, [&](size_t, size_t) {
      ++a_started;
      while (!release_a.load()) {
        std::this_thread::yield();
      }
    });
  });
  while (a_started.load() < 2) {
    std::this_thread::yield();
  }

  CancellationSource src;
  src.Cancel();  // fires before the loop is even issued
  CancellationToken token = src.token();
  std::atomic<int> b_ran{0};
  std::thread tb([&] {
    raw->ParallelFor(0, 2, 1, [&](size_t, size_t) { ++b_ran; }, &token);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::thread td([&] { pool.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  release_a = true;
  ta.join();
  tb.join();
  td.join();
  EXPECT_EQ(b_ran.load(), 0);  // cancelled shares never ran anywhere
}

}  // namespace
}  // namespace nope
