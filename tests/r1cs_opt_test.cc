// Optimizer pipeline tests: per-pass unit tests on hand-built systems, the
// assignment map/lift round trip, the determinism contract (Setup's
// sample-witness build and Prove's real-witness build reduce to identical
// matrices), and the acceptance bar — >= 10% constraint reduction on the
// full statement circuit (baseline gadget design) with proofs still
// verifying. The Full() design already bakes the NOPE paper's hand
// optimizations into the gadgets themselves, which leaves the optimizer
// less slack; its floor is asserted separately at >= 5% (measured ~6.4%,
// see EXPERIMENTS.md).
#include "src/r1cs/opt/optimizer.h"

#include <gtest/gtest.h>

#include "src/core/nope.h"
#include "src/core/statement.h"
#include "src/groth16/groth16.h"
#include "src/pki/san_encoding.h"
#include "src/r1cs/opt/report.h"
#include "src/r1cs/parse_gadgets.h"

namespace nope {
namespace {

Fr U64Fr(uint64_t v) { return Fr::FromU64(v); }

// a * b = c over fresh witnesses, with the product value filled in honestly.
Var Mul(ConstraintSystem* cs, Var a, Var b) {
  Var c = cs->AddWitness(cs->ValueOf(a) * cs->ValueOf(b));
  cs->Enforce(LC(a), LC(b), LC(c));
  return c;
}

bool SameLc(const LC& x, const LC& y) {
  LC cx = x, cy = y;
  cx.Canonicalize();
  cy.Canonicalize();
  if (cx.terms().size() != cy.terms().size()) return false;
  for (size_t i = 0; i < cx.terms().size(); ++i) {
    if (cx.terms()[i].first != cy.terms()[i].first) return false;
    if (!(cx.terms()[i].second == cy.terms()[i].second)) return false;
  }
  return true;
}

bool SameMatrices(const ConstraintSystem& x, const ConstraintSystem& y) {
  if (x.NumConstraints() != y.NumConstraints()) return false;
  if (x.NumVariables() != y.NumVariables()) return false;
  if (x.NumPublic() != y.NumPublic()) return false;
  for (size_t i = 0; i < x.constraints().size(); ++i) {
    const Constraint& cx = x.constraints()[i];
    const Constraint& cy = y.constraints()[i];
    if (!SameLc(cx.a, cy.a) || !SameLc(cx.b, cy.b) || !SameLc(cx.c, cy.c)) return false;
  }
  return true;
}

TEST(Optimizer, FoldsConstantProductsAndDropsTrivial) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(U64Fr(7));
  // (3 * 1) * x = y  --  constant a-side, folds to the linear 3x - y = 0.
  Var y = cs.AddWitness(U64Fr(21));
  cs.Enforce(LC::Constant(U64Fr(3)), LC(x), LC(y));
  // 0 * x = 0 is trivially true and must disappear.
  cs.Enforce(LC::Constant(Fr::Zero()), LC(x), LC::Constant(Fr::Zero()));
  // Keep x and y alive post-substitution with a genuine product.
  Var z = Mul(&cs, x, y);
  cs.Enforce(LC(z), LC::Constant(Fr::One()), LC::Constant(U64Fr(147)));

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.folded_constant, 1u);
  EXPECT_GE(res.stats.dropped_trivial, 1u);
  EXPECT_LT(res.cs.NumConstraints(), cs.NumConstraints());
  EXPECT_TRUE(res.cs.IsSatisfied());
}

TEST(Optimizer, EliminatesDeadWitnessKeepsPublic) {
  ConstraintSystem cs;
  Var p = cs.AddPublicInput(U64Fr(5));
  Var used = cs.AddWitness(U64Fr(2));
  cs.AddWitness(U64Fr(99));  // never referenced: dead
  cs.Enforce(LC(p), LC(used), LC::Constant(U64Fr(10)));

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.dead_vars, 1u);
  EXPECT_LT(res.cs.NumVariables(), cs.NumVariables());
  // Public inputs are pinned: same count, same ids.
  EXPECT_EQ(res.cs.NumPublic(), cs.NumPublic());
  EXPECT_EQ(res.var_map[p], p);
  EXPECT_TRUE(res.cs.IsSatisfied());
  // A dead variable lifts to zero; everything else round-trips.
  std::vector<Fr> lifted = res.LiftAssignment(res.cs.values());
  ASSERT_EQ(lifted.size(), cs.NumVariables());
  EXPECT_EQ(lifted[p], U64Fr(5));
  EXPECT_EQ(lifted[used], U64Fr(2));
  EXPECT_TRUE(cs.SatisfiedBy(lifted));
}

TEST(Optimizer, DedupesExactDuplicateConstraints) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(U64Fr(3));
  Var y = cs.AddWitness(U64Fr(9));
  for (int i = 0; i < 4; ++i) {
    cs.Enforce(LC(x), LC(x), LC(y));  // same constraint four times
  }
  cs.Enforce(LC(y), LC::Constant(Fr::One()), LC::Constant(U64Fr(9)));

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.deduped_constraints, 3u);
  EXPECT_TRUE(res.cs.IsSatisfied());
}

TEST(Optimizer, SharesDuplicateDefiningProducts) {
  // Two gadget instances each compute x*y into a private fresh variable;
  // the share pass must merge the definitions.
  ConstraintSystem cs;
  Var x = cs.AddWitness(U64Fr(4));
  Var y = cs.AddWitness(U64Fr(6));
  Var t0 = Mul(&cs, x, y);
  Var t1 = Mul(&cs, x, y);
  // Both results feed further constraints.
  cs.Enforce(LC(t0), LC::Constant(Fr::One()), LC::Constant(U64Fr(24)));
  cs.Enforce(LC(t1), LC::Constant(Fr::One()), LC::Constant(U64Fr(24)));

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.shared_products + res.stats.deduped_constraints, 1u);
  EXPECT_LT(res.cs.NumConstraints(), cs.NumConstraints());
  EXPECT_TRUE(res.cs.IsSatisfied());
}

TEST(Optimizer, AffineShareRewritesRelatedProducts) {
  // x*(y + 1) = c1 and x*(y + 3) = c2 satisfy the identity c2 - c1 = 2x, so
  // the second product must decay into that linear constraint.
  ConstraintSystem cs;
  Var x = cs.AddWitness(U64Fr(5));
  Var y = cs.AddWitness(U64Fr(2));
  Var c1 = cs.AddWitness(U64Fr(15));
  Var c2 = cs.AddWitness(U64Fr(25));
  cs.Enforce(LC(x), LC(y) + LC::Constant(Fr::One()), LC(c1));
  cs.Enforce(LC(x), LC(y) + LC::Constant(U64Fr(3)), LC(c2));
  // Keep all four wires load-bearing.
  cs.Enforce(LC(c1) + LC(c2), LC(x), LC::Constant(U64Fr(200)));
  ASSERT_TRUE(cs.IsSatisfied());

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.affine_rewrites, 1u);
  EXPECT_TRUE(res.cs.IsSatisfied());
  // Only one genuine product remains; everything else is linear.
  size_t products = 0;
  for (const Constraint& con : res.cs.constraints()) {
    if (!con.a.IsConstant() && !con.b.IsConstant()) ++products;
  }
  EXPECT_LE(products, 2u);
}

TEST(Optimizer, UnifiesDuplicateGadgetSpans) {
  // Two SliceNope instances over the same array at the same start are the
  // same sub-circuit on the same inputs: span unification aliases the
  // second instance's wires onto the first and its constraints dedupe away.
  ConstraintSystem cs;
  std::vector<Var> vars = AllocateBytes(&cs, Bytes(16, 0x42));
  std::vector<LC> arr(vars.begin(), vars.end());
  std::vector<LC> s1 = SliceNope(&cs, arr, LC::Constant(U64Fr(3)), 4);
  std::vector<LC> s2 = SliceNope(&cs, arr, LC::Constant(U64Fr(3)), 4);
  // Both outputs escape into later constraints, so nothing here is dead.
  for (size_t i = 0; i < s1.size(); ++i) {
    cs.EnforceEqual(s1[i], s2[i]);
  }
  ASSERT_TRUE(cs.IsSatisfied());

  OptimizeResult res = Optimize(cs);
  EXPECT_GE(res.stats.unified_spans, 1u);
  EXPECT_GE(res.stats.unified_vars, 1u);
  EXPECT_TRUE(res.cs.IsSatisfied());
  EXPECT_LT(res.cs.NumConstraints(), cs.NumConstraints());
  // Lift reconstructs the duplicate instance's wires from the original's.
  std::vector<Fr> lifted = res.LiftAssignment(res.MapAssignment(cs.values()));
  EXPECT_TRUE(cs.SatisfiedBy(lifted));

  // A disabled unify pass leaves both instances in place.
  OptimizeOptions off;
  off.unify_spans = false;
  OptimizeResult res_off = Optimize(cs, off);
  EXPECT_EQ(res_off.stats.unified_spans, 0u);
  EXPECT_GT(res_off.cs.NumConstraints(), res.cs.NumConstraints());
}

TEST(Optimizer, DoesNotUnifyPureAllocationSpans) {
  // Two allocation-only spans (no external wire references) range-check
  // different data; they match structurally but must never merge.
  ConstraintSystem cs;
  std::vector<Var> a;
  std::vector<Var> b;
  {
    GadgetScope scope(&cs, "Alloc");
    a = AllocateBytes(&cs, Bytes(4, 0x11));
  }
  {
    GadgetScope scope(&cs, "Alloc");
    b = AllocateBytes(&cs, Bytes(4, 0x77));
  }
  // Both buffers feed later constraints with their own values.
  cs.EnforceEqual(LC(a[0]), LC::Constant(U64Fr(0x11)));
  cs.EnforceEqual(LC(b[0]), LC::Constant(U64Fr(0x77)));
  ASSERT_TRUE(cs.IsSatisfied());

  OptimizeResult res = Optimize(cs);
  EXPECT_TRUE(res.cs.IsSatisfied());
  std::vector<Fr> lifted = res.LiftAssignment(res.MapAssignment(cs.values()));
  EXPECT_TRUE(cs.SatisfiedBy(lifted));
  for (size_t v = 0; v < lifted.size(); ++v) {
    EXPECT_EQ(lifted[v], cs.values()[v]) << "var " << v;
  }
}

TEST(Optimizer, MapLiftRoundTripOnGadgetSystem) {
  // On a real gadget system every variable is either kept or eliminated with
  // a recorded expression, so Lift(Map(w)) == w for the honest witness.
  Rng rng(77);
  ConstraintSystem cs;
  Bytes bytes = rng.NextBytes(16);
  std::vector<Var> vars = AllocateBytes(&cs, bytes);
  std::vector<LC> arr(vars.begin(), vars.end());
  MaskNope(&cs, arr, LC::Constant(U64Fr(9)));
  ASSERT_TRUE(cs.IsSatisfied());

  OptimizeResult res = Optimize(cs);
  EXPECT_TRUE(res.cs.IsSatisfied());
  std::vector<Fr> mapped = res.MapAssignment(cs.values());
  EXPECT_TRUE(res.cs.SatisfiedBy(mapped));
  std::vector<Fr> lifted = res.LiftAssignment(mapped);
  ASSERT_EQ(lifted.size(), cs.values().size());
  for (size_t v = 0; v < lifted.size(); ++v) {
    EXPECT_EQ(lifted[v], cs.values()[v]) << "var " << v;
  }
  EXPECT_TRUE(cs.SatisfiedBy(lifted));
}

TEST(Optimizer, VarMapAndInverseAreConsistent) {
  ConstraintSystem cs;
  ToBits(&cs, LC::Constant(U64Fr(173)), 8);
  std::vector<Var> vars = AllocateBytes(&cs, Bytes(16, 0x61));
  std::vector<LC> arr(vars.begin(), vars.end());
  SliceNope(&cs, arr, LC::Constant(U64Fr(3)), 4);
  OptimizeResult res = Optimize(cs);
  ASSERT_EQ(res.var_map.size(), cs.NumVariables());
  ASSERT_EQ(res.inverse_map.size(), res.cs.NumVariables());
  for (Var nv = 0; nv < res.inverse_map.size(); ++nv) {
    Var ov = res.inverse_map[nv];
    ASSERT_LT(ov, res.var_map.size());
    EXPECT_EQ(res.var_map[ov], nv);
  }
  size_t eliminated = 0;
  for (Var ov = 0; ov < res.var_map.size(); ++ov) {
    if (res.var_map[ov] == OptimizeResult::kEliminatedVar) {
      ++eliminated;
    } else {
      EXPECT_EQ(res.inverse_map[res.var_map[ov]], ov);
    }
  }
  EXPECT_EQ(eliminated + res.cs.NumVariables(), cs.NumVariables());
}

struct OptStatementFixture {
  DnssecHierarchy dns{CryptoSuite::Toy(), 4001};
  DnsName domain = DnsName::FromString("example.com");

  OptStatementFixture() {
    dns.AddZone(DnsName::FromString("com"));
    dns.AddZone(domain);
  }

  StatementParams Params() {
    StatementParams params;
    params.suite = &CryptoSuite::Toy();
    params.num_levels = 1;
    params.max_name_len = 32;
    params.options = StatementOptions::Full();
    return params;
  }

  StatementWitness Witness(uint8_t t_byte) {
    StatementWitness w;
    w.chain = dns.BuildChain(domain);
    w.leaf_ksk_private_key = dns.Find(domain)->ksk().ec_priv;
    w.tls_key_digest = Bytes(32, t_byte);
    w.ca_name_digest = Bytes(32, 0xbb);
    w.truncated_ts = 2916666;
    return w;
  }
};

TEST(OptimizerStatement, DeterministicAcrossWitnesses) {
  // The determinism contract that makes Setup/Prove agree: two builds of the
  // same statement shape with different witness values reduce to identical
  // matrices.
  OptStatementFixture f;
  ConstraintSystem cs1;
  BuildNopeStatement(&cs1, f.Params(), f.Witness(0xaa));
  ConstraintSystem cs2;
  BuildNopeStatement(&cs2, f.Params(), f.Witness(0x17));
  OptimizeResult r1 = Optimize(cs1);
  OptimizeResult r2 = Optimize(cs2);
  EXPECT_TRUE(SameMatrices(r1.cs, r2.cs));
  EXPECT_EQ(r1.var_map, r2.var_map);
  // And optimizing twice from the same input is byte-for-byte stable.
  OptimizeResult r1b = Optimize(cs1);
  EXPECT_TRUE(SameMatrices(r1.cs, r1b.cs));
  EXPECT_EQ(r1.var_map, r1b.var_map);
}

TEST(OptimizerStatement, ReducesFullStatementAtLeastTenPercent) {
  // The complete statement circuit with the baseline gadget design: every
  // chain-of-trust check is present, and the parsing/crypto gadgets are the
  // straightforward versions whose cross-instance redundancy the optimizer
  // is responsible for recovering (measured ~10.3%; the +design ablation
  // reaches ~11.4%).
  OptStatementFixture f;
  StatementParams params = f.Params();
  params.options = StatementOptions::Baseline();
  ConstraintSystem cs;
  BuildNopeStatement(&cs, params, f.Witness(0xaa));
  ASSERT_TRUE(cs.IsSatisfied());
  OptimizeResult res = Optimize(cs);
  EXPECT_TRUE(res.cs.IsSatisfied());
  double reduction = 1.0 - static_cast<double>(res.cs.NumConstraints()) /
                               static_cast<double>(cs.NumConstraints());
  EXPECT_GE(reduction, 0.10) << "pre=" << cs.NumConstraints()
                             << " post=" << res.cs.NumConstraints();
}

TEST(OptimizerStatement, ReducesNopeDesignStatementAtLeastFivePercent) {
  // Full() uses the NOPE-optimized gadgets (slice-by-shift, suffix-sum
  // masks, GLV MSM), which already eliminate by construction most of what
  // the optimizer recovers above; ~87% of the remaining constraints are
  // distinct bit range checks that no sound matrix-level transform can
  // merge. Measured reduction: ~6.4%.
  OptStatementFixture f;
  ConstraintSystem cs;
  BuildNopeStatement(&cs, f.Params(), f.Witness(0xaa));
  ASSERT_TRUE(cs.IsSatisfied());
  OptimizeResult res = Optimize(cs);
  EXPECT_TRUE(res.cs.IsSatisfied());
  double reduction = 1.0 - static_cast<double>(res.cs.NumConstraints()) /
                               static_cast<double>(cs.NumConstraints());
  EXPECT_GE(reduction, 0.05) << "pre=" << cs.NumConstraints()
                             << " post=" << res.cs.NumConstraints();
  // The density report attributes every constraint exactly once.
  DensityReport report = BuildDensityReport(cs, &res);
  EXPECT_EQ(report.total_constraints_pre, cs.NumConstraints());
  EXPECT_EQ(report.total_constraints_post, res.cs.NumConstraints());
  size_t attributed_pre = 0;
  size_t attributed_post = 0;
  for (const GadgetDensityRow& row : report.rows) {
    attributed_pre += row.constraints_pre;
    attributed_post += row.constraints_post;
  }
  EXPECT_EQ(attributed_pre, report.total_constraints_pre);
  EXPECT_EQ(attributed_post, report.total_constraints_post);
}

TEST(OptimizerStatement, OptimizedProofsVerify) {
  // Setup on the sample-witness build, Prove on the real-witness build, both
  // through the optimizer; verification is unchanged.
  OptStatementFixture f;
  Rng rng(2024);
  ConstraintSystem setup_cs;
  BuildNopeStatement(&setup_cs, f.Params(), f.Witness(0x04));
  groth16::ProvingKey pk = groth16::Setup(Optimize(setup_cs).cs, &rng);

  StatementWitness w = f.Witness(0xaa);
  ConstraintSystem prove_cs;
  BuildNopeStatement(&prove_cs, f.Params(), w);
  groth16::Proof proof = groth16::Prove(pk, Optimize(prove_cs).cs, &rng);

  std::vector<Fr> pub = NopePublicInputs(f.Params(), f.domain, w.tls_key_digest,
                                         w.ca_name_digest, w.truncated_ts);
  EXPECT_TRUE(groth16::Verify(pk.vk, pub, proof));
  // Tampered public input still rejects.
  pub[0] = pub[0] + Fr::One();
  EXPECT_FALSE(groth16::Verify(pk.vk, pub, proof));
}

TEST(OptimizerStatement, EndToEndDeploymentUsesOptimizedCircuit) {
  // NopeTrustedSetup/GenerateNopeProof honor StatementOptions::optimize_circuit
  // and the resulting bundle verifies through the client path.
  OptStatementFixture f;
  Rng rng(99);
  StatementOptions options = StatementOptions::Full();
  ASSERT_TRUE(options.optimize_circuit);
  NopeDeployment dep = NopeTrustedSetup(&f.dns, f.domain, options, &rng);
  NopeProofBundle bundle =
      GenerateNopeProof(dep, &f.dns, f.domain, Bytes(65, 0x04), "Example CA", 1750000000, &rng);
  groth16::Proof proof = groth16::Proof::FromBytes(
      DecodeProofFromSans(bundle.sans, f.domain).value());
  uint64_t ts = TruncateTimestamp(1750000000);
  std::vector<Fr> pub =
      NopePublicInputs(dep.params, f.domain, TlsKeyDigest(Bytes(65, 0x04)),
                       CaNameDigest("Example CA"), ts);
  EXPECT_TRUE(groth16::Verify(dep.vk(), pub, proof));

  // The unoptimized deployment keys have a different shape (more witness
  // variables), so the optimizer is demonstrably in the proving path.
  StatementOptions raw = options;
  raw.optimize_circuit = false;
  Rng rng2(99);
  NopeDeployment dep_raw = NopeTrustedSetup(&f.dns, f.domain, raw, &rng2);
  EXPECT_LT(dep.pk.a_query.size(), dep_raw.pk.a_query.size());
}

}  // namespace
}  // namespace nope
