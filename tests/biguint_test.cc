#include "src/base/biguint.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

TEST(BigUInt, BasicConstruction) {
  EXPECT_TRUE(BigUInt().IsZero());
  EXPECT_EQ(BigUInt(42).LowU64(), 42u);
  EXPECT_EQ(BigUInt::FromDecimal("0").ToDecimal(), "0");
  EXPECT_EQ(BigUInt::FromDecimal("123456789012345678901234567890").ToDecimal(),
            "123456789012345678901234567890");
  EXPECT_EQ(BigUInt::FromHex("deadbeef").LowU64(), 0xdeadbeefu);
  EXPECT_EQ(BigUInt::FromHex("0xDEADBEEF").LowU64(), 0xdeadbeefu);
}

TEST(BigUInt, BytesRoundTrip) {
  Bytes b = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09};
  BigUInt v = BigUInt::FromBytes(b);
  EXPECT_EQ(v.ToBytes(9), b);
  EXPECT_EQ(v.ToHex(), "10203040506070809");
}

TEST(BigUInt, AddSub) {
  BigUInt a = BigUInt::FromHex("ffffffffffffffffffffffffffffffff");
  BigUInt b = BigUInt(1);
  BigUInt sum = a + b;
  EXPECT_EQ(sum.ToHex(), "100000000000000000000000000000000");
  EXPECT_EQ((sum - b).ToHex(), a.ToHex());
  EXPECT_EQ((sum - sum).ToDecimal(), "0");
  EXPECT_THROW(b - a, std::underflow_error);
}

TEST(BigUInt, MulKnownValue) {
  BigUInt a = BigUInt::FromDecimal("123456789123456789123456789");
  BigUInt b = BigUInt::FromDecimal("987654321987654321987654321");
  EXPECT_EQ((a * b).ToDecimal(),
            "121932631356500531591068431581771069347203169112635269");
}

TEST(BigUInt, DivModKnownValue) {
  BigUInt a = BigUInt::FromDecimal("10000000000000000000000000000000000000001");
  BigUInt b = BigUInt::FromDecimal("333333333333333");
  auto dm = a.DivMod(b);
  EXPECT_EQ(dm.quotient * b + dm.remainder, a);
  EXPECT_LT(dm.remainder.Compare(b), 0);
  EXPECT_THROW(a.DivMod(BigUInt()), std::domain_error);
}

TEST(BigUInt, DivModRandomizedInvariant) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    size_t abits = 1 + rng.NextBelow(700);
    size_t bbits = 1 + rng.NextBelow(350);
    BigUInt a = BigUInt::Random(&rng, abits);
    BigUInt b = BigUInt::Random(&rng, bbits);
    auto dm = a.DivMod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_TRUE(dm.remainder < b);
  }
}

TEST(BigUInt, Shifts) {
  BigUInt a = BigUInt::FromHex("123456789abcdef0");
  EXPECT_EQ((a << 64).ToHex(), "123456789abcdef00000000000000000");
  EXPECT_EQ(((a << 67) >> 67).ToHex(), a.ToHex());
  EXPECT_EQ((a >> 200).ToDecimal(), "0");
  EXPECT_EQ((a << 3).ToHex(), "91a2b3c4d5e6f780");
}

TEST(BigUInt, BitAccess) {
  BigUInt a = BigUInt::FromHex("8000000000000001");
  EXPECT_TRUE(a.Bit(0));
  EXPECT_TRUE(a.Bit(63));
  EXPECT_FALSE(a.Bit(1));
  EXPECT_FALSE(a.Bit(64));
  EXPECT_EQ(a.BitLength(), 64u);
  EXPECT_EQ(BigUInt().BitLength(), 0u);
}

TEST(BigUInt, PowMod) {
  BigUInt base(3);
  BigUInt exp(200);
  BigUInt mod = BigUInt::FromDecimal("1000000007");
  // 3^200 mod 1e9+7 computed independently.
  BigUInt expected(3);
  BigUInt acc(1);
  for (int i = 0; i < 200; ++i) {
    acc = acc.MulMod(expected, mod);
  }
  EXPECT_EQ(base.PowMod(exp, mod), acc);
}

TEST(BigUInt, PowModFermat) {
  // a^(p-1) == 1 mod p for prime p.
  BigUInt p = BigUInt::FromDecimal("115792089210356248762697446949407573530086143415290314195533631308867097853951");
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, p - BigUInt(2)) + BigUInt(1);
    EXPECT_EQ(a.PowMod(p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUInt, InvMod) {
  BigUInt m = BigUInt::FromDecimal("1000000007");
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    BigUInt a = BigUInt::RandomBelow(&rng, m - BigUInt(1)) + BigUInt(1);
    BigUInt inv = a.InvMod(m);
    EXPECT_EQ(a.MulMod(inv, m), BigUInt(1));
  }
  EXPECT_THROW(BigUInt(6).InvMod(BigUInt(9)), std::domain_error);
}

TEST(BigUInt, Gcd) {
  EXPECT_EQ(BigUInt::Gcd(BigUInt(48), BigUInt(36)), BigUInt(12));
  EXPECT_EQ(BigUInt::Gcd(BigUInt(17), BigUInt(13)), BigUInt(1));
  EXPECT_EQ(BigUInt::Gcd(BigUInt(), BigUInt(5)), BigUInt(5));
}

TEST(BigUInt, HalfGcdProducesHalfSizeDecomposition) {
  // n is the P-256 group order; this mirrors the ECDSA GLV transform usage.
  BigUInt n = BigUInt::FromHex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  Rng rng(17);
  BigUInt bound = BigUInt(1) << 129;  // |v|, |w| < 2^(bits/2)+1
  for (int i = 0; i < 50; ++i) {
    BigUInt k = BigUInt::RandomBelow(&rng, n);
    auto half = BigUInt::HalfGcd(n, k);
    EXPECT_TRUE(half.v < bound) << half.v.ToHex();
    EXPECT_TRUE(half.w < bound) << half.w.ToHex();
    EXPECT_FALSE(half.v.IsZero());
    // Verify k * (+-v) == w (mod n).
    BigUInt kv = k.MulMod(half.v, n);
    if (half.v_negated) {
      kv = (n - kv) % n;
    }
    EXPECT_EQ(kv, half.w % n);
  }
}

TEST(BigUInt, DecimalHexRoundTrip) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    BigUInt a = BigUInt::Random(&rng, 1 + rng.NextBelow(512));
    EXPECT_EQ(BigUInt::FromDecimal(a.ToDecimal()), a);
    EXPECT_EQ(BigUInt::FromHex(a.ToHex()), a);
  }
}

TEST(BigUInt, ToBytesWidth) {
  BigUInt a(0x1234);
  EXPECT_EQ(a.ToBytes(4), (Bytes{0x00, 0x00, 0x12, 0x34}));
  EXPECT_THROW(a.ToBytes(1), std::length_error);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(43);
  EXPECT_NE(Rng(42).NextU64(), c.NextU64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

}  // namespace
}  // namespace nope
