// Cooperative cancellation through the parallel hot paths: ParallelFor, Msm,
// the FFT family, and groth16::Prove. The contract under test:
//   * a token that never fires leaves every result bit-identical to the
//     uncancellable overloads;
//   * a fired token (explicit or deadline) aborts promptly at the next chunk
//     boundary with a typed result, and the global pool stays reusable.
#include "src/base/cancellation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/base/clock.h"
#include "src/base/threadpool.h"
#include "src/ec/bn254.h"
#include "src/ec/msm.h"
#include "src/groth16/groth16.h"

namespace nope {
namespace {

ConstraintSystem CubicCircuit(uint64_t w_val, uint64_t x_val) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(x_val));
  Var w = cs.AddWitness(Fr::FromU64(w_val));
  Fr w_fr = Fr::FromU64(w_val);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));
  return cs;
}

TEST(CancellationToken, DefaultNeverFires) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationToken, SourceCancelFiresAllCopies) {
  CancellationSource source;
  CancellationToken token = source.token();
  CancellationToken copy = token;
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(source.cancelled());
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancellationToken, DeadlineFiresOnSimClock) {
  SimClock clock(0);
  CancellationToken token = CancellationToken::WithDeadline(Deadline::After(clock, 50));
  EXPECT_FALSE(token.cancelled());
  clock.AdvanceMs(50);
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationToken, SourceTokenWithDeadlineFiresOnEither) {
  SimClock clock(0);
  CancellationSource source;
  CancellationToken token = source.TokenWithDeadline(Deadline::After(clock, 50));
  EXPECT_FALSE(token.cancelled());
  source.Cancel();
  EXPECT_TRUE(token.cancelled());

  CancellationSource source2;
  CancellationToken token2 = source2.TokenWithDeadline(Deadline::After(clock, 50));
  clock.AdvanceMs(50);
  EXPECT_TRUE(token2.cancelled());
  EXPECT_FALSE(source2.cancelled());  // the deadline fired, not the source
}

TEST(ParallelFor, PreCancelledTokenSkipsEveryChunk) {
  ThreadPool pool(4);
  CancellationSource source;
  source.Cancel();
  CancellationToken token = source.token();
  std::atomic<size_t> invocations{0};
  pool.ParallelFor(0, 10'000, 1, [&](size_t, size_t) { ++invocations; }, &token);
  EXPECT_EQ(invocations.load(), 0u);

  // The pool survives a cancelled loop and runs the next one normally.
  std::vector<int> seen(1000, 0);
  pool.ParallelFor(0, 1000, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ++seen[i];
    }
  });
  for (int v : seen) {
    EXPECT_EQ(v, 1);
  }
}

TEST(ParallelFor, NullAndQuietTokensCoverFully) {
  ThreadPool pool(4);
  CancellationToken quiet;
  std::vector<int> seen(5000, 0);
  pool.ParallelFor(0, 5000, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      ++seen[i];
    }
  }, &quiet);
  for (int v : seen) {
    EXPECT_EQ(v, 1);
  }
}

TEST(ParallelFor, CancelBetweenLoopsSkipsTheRest) {
  // Real workloads (MSM windows, FFT stages) poll the token once per
  // ParallelFor call; a token fired partway through a sequence of loops must
  // skip every remaining loop while each call still joins cleanly.
  ThreadPool pool(4);
  CancellationSource source;
  CancellationToken token = source.token();
  std::atomic<size_t> total{0};
  for (int stage = 0; stage < 50; ++stage) {
    if (stage == 3) {
      source.Cancel();
    }
    pool.ParallelFor(0, 1000, 1, [&](size_t lo, size_t hi) { total += hi - lo; },
                     &token);
  }
  EXPECT_EQ(total.load(), 3000u);  // stages 0-2 only

  std::atomic<size_t> after{0};
  pool.ParallelFor(0, 100, 10, [&](size_t lo, size_t hi) { after += hi - lo; });
  EXPECT_EQ(after.load(), 100u);
}

TEST(ParallelFor, CancelFiredInsideOneShareSuppressesLaterWork) {
  ThreadPool pool(4);
  CancellationSource source;
  CancellationToken token = source.token();
  std::atomic<size_t> covered{0};
  // The first share to run fires the token; shares that have not started yet
  // observe it and skip. How many ran before the flag landed is racy, but the
  // loop must join and the pool must stay healthy either way.
  pool.ParallelFor(0, 4000, 1, [&](size_t lo, size_t hi) {
    source.Cancel();
    covered += hi - lo;
  }, &token);
  EXPECT_TRUE(token.cancelled());
  EXPECT_LE(covered.load(), 4000u);

  std::atomic<size_t> after{0};
  pool.ParallelFor(0, 500, 1, [&](size_t lo, size_t hi) { after += hi - lo; });
  EXPECT_EQ(after.load(), 500u);
}

TEST(Msm, QuietTokenBitIdenticalToPlainCall) {
  Rng rng(1234);
  const size_t n = 700;  // above the parallel cutoff
  std::vector<G1> bases;
  std::vector<BigUInt> scalars;
  G1 p = G1Generator();
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(p);
    p = p.Add(G1Generator());
    scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  G1 plain = Msm(bases, scalars);
  CancellationToken quiet;
  G1 with_token = Msm(bases, scalars, &quiet);
  EXPECT_TRUE(plain.Equals(with_token));
}

TEST(Msm, CancelledTokenReturnsWithoutCompleting) {
  Rng rng(99);
  const size_t n = 700;
  std::vector<G1> bases;
  std::vector<BigUInt> scalars;
  G1 p = G1Generator();
  for (size_t i = 0; i < n; ++i) {
    bases.push_back(p);
    p = p.Add(G1Generator());
    scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  CancellationSource source;
  source.Cancel();
  CancellationToken token = source.token();
  // The result is garbage by contract; the call must simply return and leave
  // the pool healthy. Nothing to assert about the value itself.
  (void)Msm(bases, scalars, &token);
  G1 sane = Msm(bases, scalars);
  EXPECT_TRUE(sane.Equals(Msm(bases, scalars)));
}

TEST(Fft, QuietTokenBitIdenticalToPlainCall) {
  Rng rng(555);
  EvaluationDomain domain(2048);
  std::vector<Fr> input(domain.size());
  for (auto& v : input) {
    v = Fr::Random(&rng);
  }
  std::vector<Fr> plain = input;
  domain.Fft(&plain);
  std::vector<Fr> with_token = input;
  CancellationToken quiet;
  domain.Fft(&with_token, &quiet);
  ASSERT_EQ(plain.size(), with_token.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    ASSERT_EQ(plain[i], with_token[i]) << "index " << i;
  }
}

TEST(Prove, QuietTokenMatchesUncancellableOverload) {
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng_a(601), rng_b(601);
  auto pk = groth16::Setup(cs, &rng_a);
  Rng rng_c(700), rng_d(700);
  groth16::Proof plain = groth16::Prove(pk, cs, &rng_c);
  groth16::ProveResult result = groth16::Prove(pk, cs, &rng_d, CancellationToken());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.status, groth16::ProveStatus::kOk);
  // Same Rng seed, same proof bytes: the cancellable overload consumes the
  // identical Rng stream when the token never fires.
  EXPECT_EQ(plain.ToBytes(), result.proof.ToBytes());
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, result.proof));
}

TEST(Prove, ExpiredDeadlineReturnsCancelledPromptly) {
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng(601);
  auto pk = groth16::Setup(cs, &rng);

  SimClock clock(1000);
  Deadline already_expired = Deadline::After(clock, 0);
  ASSERT_TRUE(already_expired.Expired());
  CancellationToken token = CancellationToken::WithDeadline(already_expired);
  Rng prng(700);
  groth16::ProveResult result = groth16::Prove(pk, cs, &prng, token);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, groth16::ProveStatus::kCancelled);
  EXPECT_STREQ(groth16::ProveStatusName(result.status), "cancelled");

  // The global pool is still healthy: a fresh uncancelled run succeeds and
  // verifies.
  Rng prng2(701);
  groth16::ProveResult ok = groth16::Prove(pk, cs, &prng2, CancellationToken());
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, ok.proof));
}

TEST(Prove, ExplicitCancelFromAnotherThread) {
  ConstraintSystem cs = CubicCircuit(2, 15);
  Rng rng(602);
  auto pk = groth16::Setup(cs, &rng);

  // The circuit is tiny, so the race between proving and cancelling can land
  // either way — both outcomes are valid; the invariant is that a kOk result
  // carries a verifying proof and a kCancelled one is reported as such.
  CancellationSource source;
  CancellationToken token = source.token();
  std::thread canceller([&source] { source.Cancel(); });
  Rng prng(800);
  groth16::ProveResult result = groth16::Prove(pk, cs, &prng, token);
  canceller.join();
  if (result.ok()) {
    EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(15)}, result.proof));
  } else {
    EXPECT_EQ(result.status, groth16::ProveStatus::kCancelled);
  }
}

}  // namespace
}  // namespace nope
