// Full-pipeline tests over the toy suite: trusted setup, real Groth16 proof,
// ACME issuance, SAN embedding, and NOPE-aware client verification — the
// complete Figure 2 flow, plus the attack scenarios the paper's security
// analysis (§3.3) reasons about.
#include <gtest/gtest.h>

#include "src/core/analysis.h"
#include "src/core/nope.h"

namespace nope {
namespace {

constexpr uint64_t kNow = 1750000000;

// The deployment and PKI are expensive to set up (Groth16 trusted setup over
// ~200k constraints), so a single environment is shared across tests.
struct Environment {
  Rng rng{5001};
  DnssecHierarchy dns{CryptoSuite::Toy(), 5002};
  CtLog log1{1, &rng};
  CtLog log2{2, &rng};
  CertificateAuthority ca{"lets-encrypt-sim", {&log1, &log2}, &rng};
  DnsName domain = DnsName::FromString("nope-tools.org");
  EcdsaKeyPair tls_key;
  NopeDeployment deployment;

  Environment() {
    dns.AddZone(DnsName::FromString("org"));
    dns.AddZone(domain);
    tls_key = GenerateEcdsaKey(&rng);
    deployment = NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);
  }

  TrustStore Trust() { return TrustStore{ca.root_public_key(), 2}; }
};

Environment* env() {
  static Environment* instance = new Environment();
  return instance;
}

TEST(EndToEnd, IssueAndVerifyNopeCertificate) {
  Environment* e = env();
  auto result = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, /*with_nope=*/true);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->timeline.proof_generation_s, 0.0);
  EXPECT_GT(result->timeline.total(), 30.0);  // dominated by DNS propagation

  // The certificate carries the NOPE SANs and verifies for a NOPE client.
  EXPECT_FALSE(result->chain.leaf.body.sans.empty());
  NopeClientResult verdict = NopeClientVerify(e->deployment, result->chain, e->Trust(),
                                              e->domain, kNow + 60, nullptr);
  EXPECT_EQ(verdict.legacy, LegacyStatus::kOk);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kOk) << NopeVerifyStatusName(verdict.status);

  // A legacy client sees a perfectly ordinary certificate (compatibility).
  EXPECT_EQ(LegacyVerifyChain(result->chain, e->Trust(), e->domain, kNow + 60, nullptr),
            LegacyStatus::kOk);
}

TEST(EndToEnd, LegacyIssuanceHasNoProof) {
  Environment* e = env();
  auto result = IssueCertificate(nullptr, &e->dns, &e->ca, e->domain, e->tls_key.pub.Encode(),
                                 kNow, &e->rng, /*with_nope=*/false);
  ASSERT_TRUE(result.has_value());
  NopeClientResult verdict =
      NopeClientVerify(e->deployment, result->chain, e->Trust(), e->domain, kNow + 60, nullptr);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kNoNopeProof);
}

TEST(EndToEnd, RogueCaCertificateFailsNopeVerification) {
  // A CA attacker issues a certificate for the attacker's TLS key without
  // any NOPE proof: legacy clients accept it, NOPE clients reject it.
  Environment* e = env();
  EcdsaKeyPair attacker_key = GenerateEcdsaKey(&e->rng);
  CertificateSigningRequest csr;
  csr.subject = e->domain;
  csr.public_key = attacker_key.pub.Encode();
  Certificate rogue = e->ca.IssueWithoutValidation(csr, kNow);
  CertificateChain chain{rogue, e->ca.intermediate()};

  EXPECT_EQ(LegacyVerifyChain(chain, e->Trust(), e->domain, kNow + 10, nullptr),
            LegacyStatus::kOk);  // the status-quo failure mode
  NopeClientResult verdict =
      NopeClientVerify(e->deployment, chain, e->Trust(), e->domain, kNow + 10, nullptr);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kNoNopeProof);
}

TEST(EndToEnd, StolenProofCannotBindDifferentTlsKey) {
  // The attacker copies a victim's NOPE SANs into a certificate for the
  // attacker's own TLS key: T no longer matches the proof's public input.
  Environment* e = env();
  auto victim = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(victim.has_value());

  EcdsaKeyPair attacker_key = GenerateEcdsaKey(&e->rng);
  CertificateSigningRequest csr;
  csr.subject = e->domain;
  csr.public_key = attacker_key.pub.Encode();
  csr.sans = victim->chain.leaf.body.sans;  // stolen proof
  Certificate rogue = e->ca.IssueWithoutValidation(csr, kNow);
  CertificateChain chain{rogue, e->ca.intermediate()};

  NopeClientResult verdict =
      NopeClientVerify(e->deployment, chain, e->Trust(), e->domain, kNow + 10, nullptr);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kProofRejected);
}

TEST(EndToEnd, BackdatedCertificateCaughtBySctCrossCheck) {
  // A compromised CA backdates not_before to match an old stolen proof; the
  // CT-controlled SCT timestamps give it away (§3.2).
  Environment* e = env();
  auto victim = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(victim.has_value());

  CertificateChain chain = victim->chain;
  // Re-issue with a not_before far from the SCT timestamps. We simulate the
  // malicious CA by hand-editing and re-signing is impossible (we lack the
  // key), so instead shift the SCTs — equivalent divergence.
  for (Sct& sct : chain.leaf.body.scts) {
    sct.timestamp += 7200;  // two hours of divergence
  }
  // The body changed, so legacy verification must already fail...
  LegacyStatus legacy = LegacyVerifyChain(chain, e->Trust(), e->domain, kNow + 10, nullptr);
  EXPECT_NE(legacy, LegacyStatus::kOk);

  // ...but even if a rogue CA re-signed it, the NOPE client's timestamp
  // cross-check rejects. Use a second CA as the rogue signer.
  Rng rogue_rng(5003);
  CertificateAuthority rogue_ca("rogue-ca", {&e->log1}, &rogue_rng);
  CertificateSigningRequest csr;
  csr.subject = e->domain;
  csr.public_key = chain.leaf.body.subject_public_key;
  csr.sans = chain.leaf.body.sans;
  Certificate reissued = rogue_ca.IssueWithoutValidation(csr, kNow, /*log_to_ct=*/false);
  reissued.body.scts = victim->chain.leaf.body.scts;
  reissued.body.not_before = kNow + 7200;  // diverges from SCT timestamps
  reissued.signature =
      Bytes(64, 0);  // placeholder; we bypass legacy checks by re-signing below
  // Re-sign through the rogue CA's machinery: issue with the divergent time.
  Certificate final_cert = rogue_ca.IssueWithoutValidation(csr, kNow + 7200, false);
  final_cert.body.scts = victim->chain.leaf.body.scts;  // old SCTs
  // (signature now stale, but the SCT cross-check runs after legacy checks
  // pass — so run the NOPE client against the rogue CA's trust store.)
  Certificate resigned = rogue_ca.IssueWithoutValidation(csr, kNow + 7200, false);
  resigned.body.scts = victim->chain.leaf.body.scts;
  // manually re-sign body with rogue CA: IssueWithoutValidation signs the
  // body it builds, so emulate by building a chain where legacy passes:
  CertificateChain rogue_chain{final_cert, rogue_ca.intermediate()};
  rogue_chain.leaf.body.scts = victim->chain.leaf.body.scts;
  // The SCT mutation invalidates the signature; accept either failure mode.
  TrustStore rogue_trust{rogue_ca.root_public_key(), 1};
  NopeClientResult verdict = NopeClientVerify(e->deployment, rogue_chain, rogue_trust, e->domain,
                                              kNow + 7200, nullptr);
  EXPECT_NE(verdict.status, NopeVerifyStatus::kOk);
}

TEST(EndToEnd, RevocationPropagatesToNopeClients) {
  Environment* e = env();
  auto result = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(result.has_value());
  e->ca.Revoke(result->chain.leaf.body.serial);
  OcspResponse ocsp = e->ca.SignOcsp(result->chain.leaf.body.serial, kNow + 100);
  NopeClientResult verdict =
      NopeClientVerify(e->deployment, result->chain, e->Trust(), e->domain, kNow + 100, &ocsp);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kLegacyFailure);
  EXPECT_EQ(verdict.legacy, LegacyStatus::kRevoked);
}

TEST(EndToEnd, MauledProofStillVerifiesButBindingHolds) {
  // Groth16 malleability (§3.2): a re-randomized proof still verifies for
  // the SAME statement — NOPE tolerates this because T/N/TS are bound inside
  // the statement, not by proof bytes.
  Environment* e = env();
  auto result = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(result.has_value());
  auto proof_bytes = DecodeProofSans(result->chain.leaf.body.sans, e->domain);
  ASSERT_TRUE(proof_bytes.has_value());
  auto proof = groth16::Proof::FromBytes(*proof_bytes);
  auto mauled = groth16::RandomizeProof(e->deployment.vk(), proof, &e->rng);
  uint64_t ts = TruncateTimestamp(result->chain.leaf.body.not_before);
  std::vector<Fr> pub = NopePublicInputs(
      e->deployment.params, e->domain, TlsKeyDigest(e->tls_key.pub.Encode()),
      CaNameDigest(e->ca.organization()), ts);
  EXPECT_TRUE(groth16::Verify(e->deployment.vk(), pub, mauled));
  // Different T: rejected, mauled or not.
  std::vector<Fr> other = NopePublicInputs(e->deployment.params, e->domain, Bytes(32, 0x77),
                                           CaNameDigest(e->ca.organization()), ts);
  EXPECT_FALSE(groth16::Verify(e->deployment.vk(), other, mauled));
}


TEST(EndToEnd, InfinityAProofRejectedEndToEnd) {
  // Degenerate-point tampering (ISSUE 7): the wire format encodes the point
  // at infinity canonically, so Proof::TryFromBytes accepts an A = infinity
  // proof — the verifier's own point checks are the line of defense. A rogue
  // CA splices such a proof into an otherwise-valid certificate; the client
  // must hard-fail (active tampering), never downgrade.
  Environment* e = env();
  auto victim = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(victim.has_value());
  auto proof_bytes = DecodeProofSans(victim->chain.leaf.body.sans, e->domain);
  ASSERT_TRUE(proof_bytes.has_value());
  groth16::Proof proof = groth16::Proof::FromBytes(*proof_bytes);
  proof.a = G1::Infinity();
  Bytes tampered_bytes = proof.ToBytes();
  // The canonical infinity encoding survives the strict decoder...
  ASSERT_TRUE(groth16::Proof::TryFromBytes(tampered_bytes).ok());

  CertificateSigningRequest csr;
  csr.subject = e->domain;
  csr.public_key = e->tls_key.pub.Encode();
  csr.sans = EncodeProofSans(tampered_bytes, e->domain);
  Certificate resigned = e->ca.IssueWithoutValidation(csr, kNow);
  CertificateChain chain{resigned, e->ca.intermediate()};

  // ...but the verifier rejects it, on both the unprepared and the
  // prepared-cache client paths.
  NopeClientResult verdict =
      NopeClientVerify(e->deployment, chain, e->Trust(), e->domain, kNow + 10, nullptr);
  EXPECT_EQ(verdict.legacy, LegacyStatus::kOk);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kProofRejected);
  EXPECT_FALSE(verdict.accepted);

  PreparedVkCache cache(64 << 20);
  NopeClientResult cached_verdict = NopeClientVerify(
      e->deployment, chain, e->Trust(), e->domain, kNow + 10, nullptr, &cache);
  EXPECT_EQ(cached_verdict.status, NopeVerifyStatus::kProofRejected);
  EXPECT_FALSE(cached_verdict.accepted);
}

TEST(EndToEnd, PreparedVkCacheClientPathMatchesUnprepared) {
  Environment* e = env();
  auto result = IssueCertificate(&e->deployment, &e->dns, &e->ca, e->domain,
                                 e->tls_key.pub.Encode(), kNow, &e->rng, true);
  ASSERT_TRUE(result.has_value());

  PreparedVkCache cache(64 << 20);
  NopeClientResult first = NopeClientVerify(e->deployment, result->chain, e->Trust(),
                                            e->domain, kNow + 60, nullptr, &cache);
  EXPECT_EQ(first.status, NopeVerifyStatus::kOk);
  EXPECT_TRUE(first.nope_validated);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Second handshake with the same domain: served from the cache, same
  // verdict.
  NopeClientResult second = NopeClientVerify(e->deployment, result->chain, e->Trust(),
                                             e->domain, kNow + 60, nullptr, &cache);
  EXPECT_EQ(second.status, NopeVerifyStatus::kOk);
  EXPECT_EQ(cache.stats().hits, 1u);

  NopeClientResult plain = NopeClientVerify(e->deployment, result->chain, e->Trust(),
                                            e->domain, kNow + 60, nullptr);
  EXPECT_EQ(plain.status, second.status);
  EXPECT_EQ(plain.accepted, second.accepted);
}

TEST(EndToEndDeep, FourLabelDelegationProvesWithRealProof) {
  // Deep delegation (≥4 labels): the chain crosses three intermediate zones,
  // so the circuit must thread three DS/DNSKEY levels — the depth the
  // scenario sweep exercises with placeholder proofs, here with a real one.
  Rng rng(5200);
  DnssecHierarchy dns(CryptoSuite::Toy(), 5201);
  dns.AddZone(DnsName::FromString("com"));
  dns.AddZone(DnsName::FromString("example.com"));
  dns.AddZone(DnsName::FromString("corp.example.com"));
  DnsName domain = DnsName::FromString("www.corp.example.com");
  dns.AddZone(domain);

  ChainOfTrust chain = dns.BuildChain(domain);
  EXPECT_EQ(chain.levels.size(), 3u);
  ASSERT_TRUE(ValidateChain(CryptoSuite::Toy(), chain, chain.root_zsk).ok());

  CtLog log(11, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log}, &rng);
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);
  NopeDeployment deployment =
      NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);
  auto result = IssueCertificate(&deployment, &dns, &ca, domain, tls_key.pub.Encode(),
                                 kNow, &rng, /*with_nope=*/true);
  ASSERT_TRUE(result.has_value());

  TrustStore trust{ca.root_public_key(), 1};
  NopeClientResult verdict =
      NopeClientVerify(deployment, result->chain, trust, domain, kNow + 60, nullptr);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kOk) << NopeVerifyStatusName(verdict.status);
}

TEST(EndToEndRsa, Rsa2048ZoneValidatesNativelyAndDegradesGracefully) {
  // An RSA-2048 intermediate zone (RFC 3110, common in real TLDs): native
  // chain validation accepts it, but the circuit constrains non-root zone
  // keys to ECDSA, so there is no proof path — issuance stays legacy and a
  // NOPE client degrades with a recorded reason (§7) instead of failing.
  Rng rng(5300);
  DnssecHierarchy dns(CryptoSuite::Real(), 5301);
  ZoneConfig rsa_cfg;
  rsa_cfg.rsa_zsk = true;
  dns.AddZone(DnsName::FromString("bank"), rsa_cfg);
  DnsName domain = DnsName::FromString("example.bank");
  dns.AddZone(domain);

  ChainOfTrust chain = dns.BuildChain(domain);
  EXPECT_EQ(dns.Find(DnsName::FromString("bank"))->ZskRdata().algorithm,
            kAlgRsaSha256);
  EXPECT_TRUE(ValidateChain(CryptoSuite::Real(), chain, chain.root_zsk).ok());
  // Temporal validation holds across the default window too.
  EXPECT_TRUE(ValidateChainTimes(chain, 1750000000, 0).ok());

  CtLog log(12, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log}, &rng);
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);
  auto result = IssueCertificate(nullptr, &dns, &ca, domain, tls_key.pub.Encode(),
                                 kNow, &rng, /*with_nope=*/false);
  ASSERT_TRUE(result.has_value());

  TrustStore trust{ca.root_public_key(), 1};
  NopeDeployment no_deployment;  // never consulted on the degradation path
  NopeClientResult verdict = NopeClientVerify(no_deployment, result->chain, trust,
                                              domain, kNow + 60, nullptr);
  EXPECT_EQ(verdict.legacy, LegacyStatus::kOk);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kNoNopeProof);
  EXPECT_EQ(verdict.downgrade_kind, DowngradeReason::kNoProof);
  EXPECT_TRUE(verdict.accepted);
}

TEST(EndToEndManaged, ManagedProofIssuesAndVerifies) {
  // NOPE-managed (Appendix A): the domain owner never touches the KSK
  // private key; a ZSK-signed TXT record carries the binding.
  Rng rng(5100);
  DnssecHierarchy dns(CryptoSuite::Toy(), 5101);
  CtLog log(9, &rng);
  CertificateAuthority ca("lets-encrypt-sim", {&log}, &rng);
  dns.AddZone(DnsName::FromString("net"));
  DnsName domain = DnsName::FromString("managed.net");
  dns.AddZone(domain);
  EcdsaKeyPair tls_key = GenerateEcdsaKey(&rng);

  StatementOptions options = StatementOptions::Full();
  options.managed_mode = true;
  NopeDeployment deployment = NopeTrustedSetup(&dns, domain, options, &rng);
  auto result = IssueCertificate(&deployment, &dns, &ca, domain, tls_key.pub.Encode(), kNow,
                                 &rng, /*with_nope=*/true);
  ASSERT_TRUE(result.has_value());

  TrustStore trust{ca.root_public_key(), 1};
  NopeClientResult verdict =
      NopeClientVerify(deployment, result->chain, trust, domain, kNow + 60, nullptr);
  EXPECT_EQ(verdict.status, NopeVerifyStatus::kOk) << NopeVerifyStatusName(verdict.status);

  // The binding TXT is what authorizes: a certificate for a different TLS
  // key with the same stolen SANs fails.
  EcdsaKeyPair attacker = GenerateEcdsaKey(&rng);
  CertificateSigningRequest csr;
  csr.subject = domain;
  csr.public_key = attacker.pub.Encode();
  csr.sans = result->chain.leaf.body.sans;
  Certificate rogue = ca.IssueWithoutValidation(csr, kNow);
  CertificateChain rogue_chain{rogue, ca.intermediate()};
  EXPECT_EQ(NopeClientVerify(deployment, rogue_chain, trust, domain, kNow + 10, nullptr).status,
            NopeVerifyStatus::kProofRejected);
}

TEST(Figure3, MatrixMatchesPaper) {
  auto matrix = BuildFigure3Matrix();
  ASSERT_EQ(matrix.size(), 16u);

  auto outcome = [&](AttackerModel a, AuthScheme s) { return Analyze(s, a); };

  // No attacker: nobody impersonated; DCE still unrevocable.
  AttackerModel none;
  for (AuthScheme s : {AuthScheme::kDv, AuthScheme::kDvPlus, AuthScheme::kDce, AuthScheme::kNope}) {
    EXPECT_FALSE(outcome(none, s).impersonated);
  }
  EXPECT_FALSE(outcome(none, AuthScheme::kDce).revocable);
  EXPECT_TRUE(outcome(none, AuthScheme::kNope).revocable);

  // Legacy DNS attacker: only DV falls; detection within the MMD.
  AttackerModel dns_only{true, false, false, false};
  EXPECT_TRUE(outcome(dns_only, AuthScheme::kDv).impersonated);
  EXPECT_EQ(outcome(dns_only, AuthScheme::kDv).detection, DetectionTime::kWithinMmd);
  EXPECT_FALSE(outcome(dns_only, AuthScheme::kDvPlus).impersonated);
  EXPECT_FALSE(outcome(dns_only, AuthScheme::kNope).impersonated);

  // CA attacker: DV and DV+ fall and revocation is blocked.
  AttackerModel ca_only{false, true, false, false};
  EXPECT_TRUE(outcome(ca_only, AuthScheme::kDv).impersonated);
  EXPECT_TRUE(outcome(ca_only, AuthScheme::kDvPlus).impersonated);
  EXPECT_FALSE(outcome(ca_only, AuthScheme::kNope).impersonated);
  EXPECT_FALSE(outcome(ca_only, AuthScheme::kDv).revocable);

  // DNSSEC attacker alone: only DCE falls, and it is undetectable forever.
  AttackerModel dnssec_only{false, false, false, true};
  EXPECT_TRUE(outcome(dnssec_only, AuthScheme::kDce).impersonated);
  EXPECT_EQ(outcome(dnssec_only, AuthScheme::kDce).detection, DetectionTime::kNever);
  EXPECT_FALSE(outcome(dnssec_only, AuthScheme::kNope).impersonated);

  // NOPE falls only to combined cert-side + DNSSEC attackers — and is then
  // still detectable and revocable (unless CA/CT are the attackers).
  AttackerModel combo{true, false, false, true};
  EXPECT_TRUE(outcome(combo, AuthScheme::kNope).impersonated);
  EXPECT_EQ(outcome(combo, AuthScheme::kNope).detection, DetectionTime::kWithinMmd);
  EXPECT_TRUE(outcome(combo, AuthScheme::kNope).revocable);

  // With a CT attacker in the mix, detection slips past the MMD.
  AttackerModel combo_ct{true, false, true, true};
  EXPECT_EQ(outcome(combo_ct, AuthScheme::kNope).detection, DetectionTime::kAfterMmd);

  // Render sanity.
  std::string rendered = RenderFigure3(matrix);
  EXPECT_NE(rendered.find("NOPE"), std::string::npos);
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 17);
}

}  // namespace
}  // namespace nope
