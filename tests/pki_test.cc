#include <gtest/gtest.h>

#include "src/pki/ca.h"
#include "src/pki/san_encoding.h"
#include "src/tls/handshake.h"

namespace nope {
namespace {

constexpr uint64_t kNow = 1750000000;

struct PkiFixture {
  Rng rng{3001};
  CtLog log1{1, &rng};
  CtLog log2{2, &rng};
  DnssecHierarchy dns{CryptoSuite::Toy(), 3002};
  CertificateAuthority ca{"lets-encrypt-sim", {&log1, &log2}, &rng};

  PkiFixture() {
    dns.AddZone(DnsName::FromString("com"));
    dns.AddZone(DnsName::FromString("example.com"));
  }

  CertificateSigningRequest Csr(const std::string& domain) {
    CertificateSigningRequest csr;
    csr.subject = DnsName::FromString(domain);
    csr.public_key = GenerateEcdsaKey(&rng).pub.Encode();
    return csr;
  }

  TxtResolver Resolver() {
    return [this](const DnsName& name) { return dns.QueryTxt(name); };
  }
};

TEST(Certificate, SerializationRoundTrip) {
  PkiFixture f;
  auto csr = f.Csr("example.com");
  csr.sans = {"alt.example.com"};
  Certificate cert = f.ca.IssueWithoutValidation(csr, kNow);
  Bytes wire = cert.Serialize();
  Certificate parsed = Certificate::Deserialize(wire);
  EXPECT_EQ(parsed.body.serial, cert.body.serial);
  EXPECT_EQ(parsed.body.subject, cert.body.subject);
  EXPECT_EQ(parsed.body.sans, cert.body.sans);
  EXPECT_EQ(parsed.body.scts.size(), 2u);
  EXPECT_EQ(parsed.signature, cert.signature);
  EXPECT_EQ(parsed.Serialize(), wire);
}

TEST(Certificate, SizeBreakdownSumsSensibly) {
  PkiFixture f;
  Certificate cert = f.ca.IssueWithoutValidation(f.Csr("example.com"), kNow);
  auto sizes = cert.SizeBreakdown();
  EXPECT_GT(sizes["total"], 0u);
  EXPECT_GT(sizes["sct"], 0u);
  EXPECT_EQ(sizes["signature"], 3u + 64u);
  // Component sizes must not exceed the total.
  size_t sum = sizes["metadata"] + sizes["subject_name"] + sizes["subject_public_key"] +
               sizes["san_extension"] + sizes["ocsp"] + sizes["sct"] + sizes["signature"];
  EXPECT_LE(sum, sizes["total"] + 8);
  EXPECT_GE(sum, sizes["total"] - 8);
}

TEST(Acme, Dns01HappyPath) {
  PkiFixture f;
  auto csr = f.Csr("example.com");
  AcmeOrder order = f.ca.NewOrder(csr);
  // Post the challenge, then finalize.
  f.dns.SetTxt(DnsName::FromString("_acme-challenge.example.com"), order.challenge_token);
  auto cert = f.ca.FinalizeOrder(order, csr, f.Resolver(), kNow);
  ASSERT_TRUE(cert.has_value());
  EXPECT_EQ(cert->body.subject, csr.subject);
  EXPECT_GE(cert->body.scts.size(), 2u);
  EXPECT_TRUE(VerifyCertificateSignature(*cert, f.ca.intermediate_public_key()));
}

TEST(Acme, FailsWithoutChallenge) {
  PkiFixture f;
  auto csr = f.Csr("example.com");
  AcmeOrder order = f.ca.NewOrder(csr);
  EXPECT_FALSE(f.ca.FinalizeOrder(order, csr, f.Resolver(), kNow).has_value());
  // Wrong token also fails.
  f.dns.SetTxt(DnsName::FromString("_acme-challenge.example.com"), "wrong");
  EXPECT_FALSE(f.ca.FinalizeOrder(order, csr, f.Resolver(), kNow).has_value());
}

TEST(Acme, LegacyDnsAttackerDefeatsValidation) {
  // The paper's legacy-DNS attacker intercepts the CA's resolver (§3.1).
  PkiFixture f;
  auto csr = f.Csr("example.com");  // attacker's key!
  AcmeOrder order = f.ca.NewOrder(csr);
  TxtResolver attacker_resolver = [&order](const DnsName&) {
    return std::vector<std::string>{order.challenge_token};
  };
  auto cert = f.ca.FinalizeOrder(order, csr, attacker_resolver, kNow);
  EXPECT_TRUE(cert.has_value());  // rogue cert issued
}

TEST(CtLogTest, SctIssueAndVerify) {
  Rng rng(3003);
  CtLog log(7, &rng);
  Bytes precert = rng.NextBytes(100);
  Sct sct = log.Submit(precert, kNow);
  log.Publish();
  EXPECT_TRUE(log.VerifySct(precert, sct));
  Bytes other = rng.NextBytes(100);
  EXPECT_FALSE(log.VerifySct(other, sct));
  Sct bad = sct;
  bad.timestamp += 1;
  EXPECT_FALSE(log.VerifySct(precert, bad));
}

TEST(CtLogTest, MerkleInclusionProofs) {
  Rng rng(3004);
  CtLog log(8, &rng);
  std::vector<Bytes> entries;
  for (int i = 0; i < 13; ++i) {
    entries.push_back(rng.NextBytes(40));
    log.Submit(entries.back(), kNow + i);
  }
  log.Publish();
  Bytes root = log.RootHash();
  for (const Bytes& e : entries) {
    auto proof = log.ProveInclusion(e);
    ASSERT_TRUE(proof.has_value());
    EXPECT_TRUE(CtLog::VerifyInclusion(root, e, *proof));
    // Wrong leaf fails.
    EXPECT_FALSE(CtLog::VerifyInclusion(root, rng.NextBytes(40), *proof));
  }
  EXPECT_FALSE(log.ProveInclusion(rng.NextBytes(40)).has_value());
}

TEST(CtLogTest, MonitorSeesNewEntries) {
  Rng rng(3005);
  CtLog log(9, &rng);
  log.Submit(Bytes{1}, kNow);
  log.Publish();
  size_t checkpoint = log.TreeSize();
  log.Submit(Bytes{2}, kNow + 1);
  log.Submit(Bytes{3}, kNow + 2);
  log.Publish();
  auto fresh = log.EntriesSince(checkpoint);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0], Bytes{2});
}

TEST(CtLogTest, RogueSctVerifiesButIsNotLogged) {
  Rng rng(3006);
  CtLog log(10, &rng);
  Bytes precert = rng.NextBytes(64);
  Sct rogue = log.IssueRogueSct(precert, kNow);
  EXPECT_TRUE(log.VerifySct(precert, rogue));
  EXPECT_FALSE(log.ProveInclusion(precert).has_value());  // never merged
}

TEST(Revocation, OcspLifecycle) {
  PkiFixture f;
  Certificate cert = f.ca.IssueWithoutValidation(f.Csr("example.com"), kNow);
  OcspResponse good = f.ca.SignOcsp(cert.body.serial, kNow);
  EXPECT_FALSE(good.revoked);
  EXPECT_TRUE(f.ca.VerifyOcsp(good));
  f.ca.Revoke(cert.body.serial);
  OcspResponse after = f.ca.SignOcsp(cert.body.serial, kNow + 100);
  EXPECT_TRUE(after.revoked);
  EXPECT_TRUE(f.ca.VerifyOcsp(after));
  // Tampered response rejected.
  after.revoked = false;
  EXPECT_FALSE(f.ca.VerifyOcsp(after));
  EXPECT_EQ(f.ca.CrlSnapshot(), std::vector<uint64_t>{cert.body.serial});
}

TEST(SanEncoding, RoundTrip128Bytes) {
  Rng rng(3007);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  ASSERT_FALSE(sans.empty());
  for (const std::string& san : sans) {
    EXPECT_LE(san.size(), 253u);
    EXPECT_EQ(san.rfind("n", 0), 0u);
    // Ends with the domain.
    EXPECT_NE(san.find("example.com"), std::string::npos);
  }
  auto decoded = DecodeProofSans(sans, domain);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, proof);
}

TEST(SanEncoding, MultiSanSplitForLongDomains) {
  Rng rng(3008);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  std::string long_label(60, 'x');
  DnsName domain = DnsName::FromString(long_label + "." + long_label + "." + long_label + ".com");
  auto sans = EncodeProofSans(proof, domain);
  EXPECT_GE(sans.size(), 2u);  // labels spread across n0pe. / n1pe.
  auto decoded = DecodeProofSans(sans, domain);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, proof);
}

TEST(SanEncoding, ChecksumCatchesCorruption) {
  Rng rng(3009);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  // Flip one payload character to a different alphabet character.
  std::string& san = sans[0];
  size_t pos = san.find('.') + 3;
  san[pos] = san[pos] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(DecodeProofSans(sans, domain).has_value());
}

TEST(SanEncoding, MissingOrForeignSansIgnored) {
  DnsName domain = DnsName::FromString("example.com");
  EXPECT_FALSE(DecodeProofSans({"www.example.com"}, domain).has_value());
  EXPECT_FALSE(DecodeProofSans({}, domain).has_value());
}

TEST(SanEncoding, MissingSansReportedAsMissing) {
  DnsName domain = DnsName::FromString("example.com");
  Result<Bytes> no_sans = DecodeProofFromSans({}, domain);
  ASSERT_FALSE(no_sans.ok());
  EXPECT_EQ(no_sans.error().code, ErrorCode::kMissing);
  Result<Bytes> foreign = DecodeProofFromSans({"www.example.com"}, domain);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.error().code, ErrorCode::kMissing);
}

TEST(SanEncoding, RejectsOutOfAlphabetCharacters) {
  Rng rng(3010);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  size_t payload = sans[0].find('.') + 3;
  for (char bad : {'A', 'Z', '_', '~', ' ', '\0', '\x7f', '\x80'}) {
    auto mutated = sans;
    mutated[0][payload] = bad;
    Result<Bytes> decoded = DecodeProofFromSans(mutated, domain);
    ASSERT_FALSE(decoded.ok()) << "char " << static_cast<int>(bad);
    EXPECT_EQ(decoded.error().code, ErrorCode::kBadEncoding)
        << "char " << static_cast<int>(bad);
  }
}

TEST(SanEncoding, RejectsOverLengthPayloadLabels) {
  Rng rng(3011);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  // Grow the first payload label past the 50-character budget.
  size_t dot = sans[0].find('.');
  sans[0].insert(dot + 5, std::string(kSanLabelChars, 'a'));
  Result<Bytes> decoded = DecodeProofFromSans(sans, domain);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kBadLength);
}

TEST(SanEncoding, RejectsEmptyPayloadLabel) {
  Rng rng(3012);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  size_t dot = sans[0].find('.');
  sans[0].insert(dot + 1, ".");  // empty label inside the payload
  Result<Bytes> decoded = DecodeProofFromSans(sans, domain);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kBadEncoding);
}

TEST(SanEncoding, RejectsTruncatedPayload) {
  Rng rng(3013);
  Bytes proof = rng.NextBytes(kSanProofBytes);
  DnsName domain = DnsName::FromString("example.com");
  auto sans = EncodeProofSans(proof, domain);
  size_t dot = sans[0].find('.');
  sans[0].erase(dot + 1, 10);  // drop ten payload characters
  Result<Bytes> decoded = DecodeProofFromSans(sans, domain);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kBadLength);
}

TEST(Handshake, LegacyStatusNamesAreCompleteAndDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumLegacyStatuses; ++i) {
    std::string name = LegacyStatusName(static_cast<LegacyStatus>(i));
    EXPECT_NE(name, "unknown") << "status " << i;
    for (const std::string& prior : names) {
      EXPECT_NE(name, prior) << "status " << i;
    }
    names.push_back(name);
  }
}

TEST(Handshake, LegacyVerifyPaths) {
  PkiFixture f;
  auto csr = f.Csr("example.com");
  Certificate cert = f.ca.IssueWithoutValidation(csr, kNow);
  CertificateChain chain{cert, f.ca.intermediate()};
  TrustStore trust{f.ca.root_public_key(), 2};
  DnsName domain = DnsName::FromString("example.com");

  EXPECT_EQ(LegacyVerifyChain(chain, trust, domain, kNow + 100, nullptr), LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, trust, DnsName::FromString("evil.com"), kNow + 100, nullptr),
            LegacyStatus::kWrongDomain);
  EXPECT_EQ(LegacyVerifyChain(chain, trust, domain, cert.body.not_after + 1, nullptr),
            LegacyStatus::kExpired);
  // Untrusted root.
  Rng rng2(77);
  TrustStore wrong_trust{GenerateEcdsaKey(&rng2).pub, 2};
  EXPECT_EQ(LegacyVerifyChain(chain, wrong_trust, domain, kNow + 100, nullptr),
            LegacyStatus::kBadChainSignature);
  // Tampered leaf body.
  CertificateChain tampered = chain;
  tampered.leaf.body.subject_public_key[10] ^= 1;
  EXPECT_EQ(LegacyVerifyChain(tampered, trust, domain, kNow + 100, nullptr),
            LegacyStatus::kBadChainSignature);
  // OCSP: revoked and stale.
  f.ca.Revoke(cert.body.serial);
  OcspResponse revoked = f.ca.SignOcsp(cert.body.serial, kNow + 100);
  EXPECT_EQ(LegacyVerifyChain(chain, trust, domain, kNow + 100, &revoked),
            LegacyStatus::kRevoked);
  OcspResponse stale = f.ca.SignOcsp(cert.body.serial, kNow - 10 * 24 * 3600);
  EXPECT_EQ(LegacyVerifyChain(chain, trust, domain, kNow + 100, &stale),
            LegacyStatus::kStaleOcsp);
}

TEST(Handshake, ClockSkewToleranceWidensValidityWindow) {
  PkiFixture f;
  Certificate cert = f.ca.IssueWithoutValidation(f.Csr("example.com"), kNow);
  CertificateChain chain{cert, f.ca.intermediate()};
  DnsName domain = DnsName::FromString("example.com");
  const uint64_t nb = cert.body.not_before;
  const uint64_t na = cert.body.not_after;

  // Strict store (the default): boundary instants are inclusive, one second
  // past either edge rejects.
  TrustStore strict{f.ca.root_public_key(), 2};
  EXPECT_EQ(strict.clock_skew_tolerance_s, 0u);
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, nb, nullptr), LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, na, nullptr), LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, nb - 1, nullptr),
            LegacyStatus::kExpired);
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, na + 1, nullptr),
            LegacyStatus::kExpired);

  // Tolerant store: the window widens by exactly the tolerance on both ends.
  constexpr uint64_t kSkew = 300;
  TrustStore tolerant{f.ca.root_public_key(), 2, kSkew};
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, nb - kSkew, nullptr),
            LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, na + kSkew, nullptr),
            LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, nb - kSkew - 1, nullptr),
            LegacyStatus::kExpired);
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, na + kSkew + 1, nullptr),
            LegacyStatus::kExpired);
}

TEST(Handshake, ClockSkewToleranceAppliesToOcspStaleness) {
  PkiFixture f;
  Certificate cert = f.ca.IssueWithoutValidation(f.Csr("example.com"), kNow);
  CertificateChain chain{cert, f.ca.intermediate()};
  DnsName domain = DnsName::FromString("example.com");
  OcspResponse ocsp = f.ca.SignOcsp(cert.body.serial, kNow);
  const uint64_t edge = ocsp.next_update;

  TrustStore strict{f.ca.root_public_key(), 2};
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, edge, &ocsp), LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, strict, domain, edge + 1, &ocsp),
            LegacyStatus::kStaleOcsp);

  constexpr uint64_t kSkew = 300;
  TrustStore tolerant{f.ca.root_public_key(), 2, kSkew};
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, edge + kSkew, &ocsp),
            LegacyStatus::kOk);
  EXPECT_EQ(LegacyVerifyChain(chain, tolerant, domain, edge + kSkew + 1, &ocsp),
            LegacyStatus::kStaleOcsp);
}

TEST(Handshake, DceBundleVerifies) {
  PkiFixture f;
  DnsName domain = DnsName::FromString("example.com");
  Bytes tls_key = GenerateEcdsaKey(&f.rng).pub.Encode();
  DceBundle bundle = BuildDceBundle(&f.dns, domain, tls_key);
  const CryptoSuite& suite = CryptoSuite::Toy();
  DnskeyRdata anchor = f.dns.root().ZskRdata();

  EXPECT_TRUE(DceVerify(suite, bundle, domain, tls_key, anchor).ok());
  // Wrong TLS key rejected.
  Bytes other_key = GenerateEcdsaKey(&f.rng).pub.Encode();
  EXPECT_FALSE(DceVerify(suite, bundle, domain, other_key, anchor).ok());
  // Tampered TLSA signature rejected.
  DceBundle bad = bundle;
  bad.tlsa.rrsig.signature[0] ^= 1;
  EXPECT_FALSE(DceVerify(suite, bad, domain, tls_key, anchor).ok());
  // Bandwidth: the serialized bundle is what DCE ships per handshake.
  EXPECT_GT(bundle.Serialize().size(), 200u);
}

}  // namespace
}  // namespace nope
