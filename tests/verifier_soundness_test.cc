// Verifier soundness regressions (ISSUE 7): the point-check contract at the
// Verify/BatchVerify boundary, the psi-endomorphism G2 subgroup check, and
// the prepared-VK path's bit-identity with the unprepared reference.
//
// The forgery tests are built from known-exponent verifying keys: a VK whose
// toxic scalars the test keeps lets it craft proofs with A, B, or C at
// infinity whose remaining pairing factors cancel exactly, so the PRE-fix
// Verify (on-curve checks only; MillerLoop maps infinity to 1) genuinely
// ACCEPTED them — these tests fail on the pre-fix code, not vacuously pass.
#include <gtest/gtest.h>

#include "src/groth16/groth16.h"

namespace nope {
namespace {

ConstraintSystem CubicCircuit(uint64_t w_val, uint64_t x_val) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(x_val));
  Var w = cs.AddWitness(Fr::FromU64(w_val));
  Fr w_fr = Fr::FromU64(w_val);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));
  return cs;
}

// A verifying key with toxic waste the test controls:
//   alpha = a G1, beta = b G2, gamma = c G2, delta = d G2, ic[i] = e_i G1.
// Verification accepts (A, B, C) iff
//   e(A, B) = e(G1, G2)^{ab + (e0 + e1 x) c + s_C d}   for C = s_C G1.
struct KnownExponentVk {
  Fr a, b, c, d, e0, e1;
  groth16::VerifyingKey vk;

  explicit KnownExponentVk(uint64_t seed) {
    Rng rng(seed);
    a = Fr::Random(&rng);
    b = Fr::Random(&rng);
    c = Fr::Random(&rng);
    d = Fr::Random(&rng);
    e0 = Fr::Random(&rng);
    e1 = Fr::Random(&rng);
    vk.alpha_g1 = G1Generator().ScalarMul(a.ToBigUInt());
    vk.beta_g2 = G2Generator().ScalarMul(b.ToBigUInt());
    vk.gamma_g2 = G2Generator().ScalarMul(c.ToBigUInt());
    vk.delta_g2 = G2Generator().ScalarMul(d.ToBigUInt());
    vk.ic = {G1Generator().ScalarMul(e0.ToBigUInt()),
             G1Generator().ScalarMul(e1.ToBigUInt())};
  }

  Fr IcExponent(const Fr& x) const { return e0 + e1 * x; }

  // The bare pre-fix pairing product (no point checks): what Verify reduced
  // to before ISSUE 7. Returning true for a forgery proves the forgery is
  // genuine — the pre-fix verifier accepted it.
  bool PreFixEquationAccepts(const Fr& x, const groth16::Proof& p) const {
    G1 ic = vk.ic[0].Add(vk.ic[1].ScalarMul(x.ToBigUInt()));
    return PairingProductIsOne({{p.a, p.b},
                                {ic.Negate(), vk.gamma_g2},
                                {p.c.Negate(), vk.delta_g2},
                                {vk.alpha_g1.Negate(), vk.beta_g2}});
  }
};

// p == 3 (mod 4) square root in Fp2 (same algorithm as the proof decoder).
bool SqrtFp2(const Fp2& a, Fp2* out) {
  if (a.IsZero()) {
    *out = Fp2::Zero();
    return true;
  }
  static const BigUInt exp1 = (Fq::params().modulus_big - BigUInt(3)) >> 2;
  static const BigUInt exp2 = (Fq::params().modulus_big - BigUInt(1)) >> 1;
  Fp2 a1 = a.Pow(exp1);
  Fp2 x0 = a1 * a;
  Fp2 alpha = a1 * x0;
  Fp2 x;
  if (alpha == -Fp2::One()) {
    x = x0 * Fp2{Fq::Zero(), Fq::One()};
  } else {
    x = (alpha + Fp2::One()).Pow(exp2) * x0;
  }
  if (x.Square() != a) {
    return false;
  }
  *out = x;
  return true;
}

// A uniformish point on the full twist E'(Fp2) — order r * c2, so with
// overwhelming probability NOT in the order-r subgroup.
G2 RandomFullTwistPoint(Rng* rng) {
  for (;;) {
    Fp2 x{Fq::Random(rng), Fq::Random(rng)};
    Fp2 rhs = x.Square() * x + Bn254G2Config::B();
    Fp2 y;
    if (SqrtFp2(rhs, &y) && !y.IsZero()) {
      return G2::FromAffine(x, y);
    }
  }
}

// A nonzero pure-cofactor torsion point: [r] P for random full P kills the
// subgroup component, leaving order dividing c2 (coprime to r).
G2 CofactorTorsionPoint(Rng* rng) {
  for (;;) {
    G2 t = RandomFullTwistPoint(rng).ScalarMul(Bn254Order());
    if (!t.IsInfinity()) {
      return t;
    }
  }
}

// --- Forgeries the pre-fix verifier accepted --------------------------------

TEST(VerifierSoundness, InfinityAForgeryRejected) {
  KnownExponentVk kvk(7101);
  Fr x = Fr::FromU64(35);
  // A = infinity makes e(A, B) = 1, so choose C to cancel the rest:
  //   s_C = -(ab + (e0 + e1 x) c) / d.
  Fr s_c = -(kvk.a * kvk.b + kvk.IcExponent(x) * kvk.c) * kvk.d.Inverse();
  groth16::Proof forged;
  forged.a = G1::Infinity();
  forged.b = G2Generator();  // any valid B: its pairing factor vanished
  forged.c = G1Generator().ScalarMul(s_c.ToBigUInt());
  ASSERT_TRUE(kvk.PreFixEquationAccepts(x, forged));  // forgery is genuine
  EXPECT_FALSE(groth16::Verify(kvk.vk, {x}, forged));

  // The same forgery with an on-curve, out-of-subgroup B: the pre-fix code
  // accepted this too (B's factor vanished before any subgroup question
  // arose), covering both gaps with one artifact.
  Rng rng(7102);
  forged.b = G2Generator().Add(CofactorTorsionPoint(&rng));
  ASSERT_TRUE(forged.b.IsOnCurve());
  ASSERT_FALSE(G2InSubgroup(forged.b));
  ASSERT_TRUE(kvk.PreFixEquationAccepts(x, forged));
  EXPECT_FALSE(groth16::Verify(kvk.vk, {x}, forged));
}

TEST(VerifierSoundness, InfinityBForgeryRejected) {
  KnownExponentVk kvk(7103);
  Fr x = Fr::FromU64(9);
  Fr s_c = -(kvk.a * kvk.b + kvk.IcExponent(x) * kvk.c) * kvk.d.Inverse();
  groth16::Proof forged;
  forged.a = G1Generator();  // arbitrary: e(A, infinity) = 1
  forged.b = G2::Infinity();
  forged.c = G1Generator().ScalarMul(s_c.ToBigUInt());
  ASSERT_TRUE(kvk.PreFixEquationAccepts(x, forged));
  EXPECT_FALSE(groth16::Verify(kvk.vk, {x}, forged));
}

TEST(VerifierSoundness, InfinityCForgeryRejected) {
  KnownExponentVk kvk(7104);
  Fr x = Fr::FromU64(4);
  // C = infinity drops the delta factor; balance with A alone:
  //   A = (ab + (e0 + e1 x) c) G1, B = G2.
  Fr s_a = kvk.a * kvk.b + kvk.IcExponent(x) * kvk.c;
  groth16::Proof forged;
  forged.a = G1Generator().ScalarMul(s_a.ToBigUInt());
  forged.b = G2Generator();
  forged.c = G1::Infinity();
  ASSERT_TRUE(kvk.PreFixEquationAccepts(x, forged));
  EXPECT_FALSE(groth16::Verify(kvk.vk, {x}, forged));
}

TEST(VerifierSoundness, ForgeriesRejectedByPreparedAndBatchPaths) {
  KnownExponentVk kvk(7105);
  Fr x = Fr::FromU64(35);
  Fr s_c = -(kvk.a * kvk.b + kvk.IcExponent(x) * kvk.c) * kvk.d.Inverse();
  groth16::Proof forged;
  forged.a = G1::Infinity();
  forged.b = G2Generator();
  forged.c = G1Generator().ScalarMul(s_c.ToBigUInt());

  groth16::PreparedVerifyingKey pvk = groth16::PrepareVerifyingKey(kvk.vk);
  EXPECT_FALSE(groth16::Verify(pvk, {x}, forged));

  Rng rng(7106);
  groth16::BatchVerifyResult res =
      groth16::BatchVerify(pvk, {{forged, {x}}}, &rng);
  EXPECT_FALSE(res.all_ok);
  ASSERT_EQ(res.rejected.size(), 1u);
  EXPECT_EQ(res.rejected[0], 0u);
}

// --- Out-of-subgroup B on a real statement ----------------------------------

TEST(VerifierSoundness, OutOfSubgroupBRejectedEverywhere) {
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng(7107);
  groth16::ProvingKey pk = groth16::Setup(cs, &rng);
  groth16::Proof proof = groth16::Prove(pk, cs, &rng);
  std::vector<Fr> pub = {Fr::FromU64(35)};
  ASSERT_TRUE(groth16::Verify(pk.vk, pub, proof));

  groth16::Proof bad = proof;
  bad.b = proof.b.Add(CofactorTorsionPoint(&rng));
  ASSERT_TRUE(bad.b.IsOnCurve());
  ASSERT_FALSE(G2InSubgroup(bad.b));

  EXPECT_FALSE(groth16::Verify(pk.vk, pub, bad));
  groth16::PreparedVerifyingKey pvk = groth16::PrepareVerifyingKey(pk.vk);
  EXPECT_FALSE(groth16::Verify(pvk, pub, bad));
  groth16::BatchVerifyResult res =
      groth16::BatchVerify(pvk, {{proof, pub}, {bad, pub}}, &rng);
  EXPECT_FALSE(res.all_ok);
  ASSERT_EQ(res.rejected.size(), 1u);
  EXPECT_EQ(res.rejected[0], 1u);

  // The wire decoder holds the same line.
  Result<groth16::Proof> decoded = groth16::Proof::TryFromBytes(bad.ToBytes());
  EXPECT_FALSE(decoded.ok());
}

// --- psi fast subgroup check, differential ----------------------------------

TEST(VerifierSoundness, PsiEigenvalueIdentity) {
  // p - 6u^2 = r: the scalar the characteristic equation collapses to, which
  // is what makes the eigenvalue relation imply order r.
  EXPECT_TRUE(Fq::params().modulus_big - Bn254PsiEigenvalue() == Bn254Order());
}

TEST(VerifierSoundness, PsiSubgroupCheckMatchesReference) {
  Rng rng(7108);
  // Infinity and generators.
  EXPECT_TRUE(G2InSubgroup(G2::Infinity()));
  EXPECT_TRUE(G2InSubgroupReference(G2::Infinity()));
  EXPECT_TRUE(G2InSubgroup(G2Generator()));

  for (int i = 0; i < 24; ++i) {
    // Random subgroup points: both accept.
    G2 in = G2Generator().ScalarMul(Fr::Random(&rng).ToBigUInt());
    EXPECT_EQ(G2InSubgroup(in), G2InSubgroupReference(in));
    EXPECT_TRUE(G2InSubgroup(in));

    // Pure cofactor torsion: both reject.
    G2 tor = CofactorTorsionPoint(&rng);
    EXPECT_EQ(G2InSubgroup(tor), G2InSubgroupReference(tor));
    EXPECT_FALSE(G2InSubgroup(tor));

    // Adversarial: subgroup + torsion (full-order, on-curve, near-miss).
    G2 mixed = in.Add(tor);
    EXPECT_EQ(G2InSubgroup(mixed), G2InSubgroupReference(mixed));
    EXPECT_FALSE(G2InSubgroup(mixed));

    // Random full-twist points (out of subgroup w.o.p.).
    G2 full = RandomFullTwistPoint(&rng);
    EXPECT_EQ(G2InSubgroup(full), G2InSubgroupReference(full));
  }

  // Off-curve points: both reject without touching the eigenvalue check.
  G2 off = G2Generator();
  off.x = off.x + Fp2::One();
  ASSERT_FALSE(off.IsOnCurve());
  EXPECT_FALSE(G2InSubgroup(off));
  EXPECT_FALSE(G2InSubgroupReference(off));
}

TEST(VerifierSoundness, PsiActsAsEigenvalueOnSubgroup) {
  Rng rng(7109);
  for (int i = 0; i < 8; ++i) {
    G2 p = G2Generator().ScalarMul(Fr::Random(&rng).ToBigUInt());
    EXPECT_TRUE(G2Psi(p).Equals(p.ScalarMul(Bn254PsiEigenvalue())));
  }
}

// --- Prepared Miller loop: bit-identical to the reference -------------------

TEST(VerifierSoundness, PreparedMillerLoopBitIdentical) {
  Rng rng(7110);
  for (int i = 0; i < 6; ++i) {
    G1 p = G1Generator().ScalarMul(Fr::Random(&rng).ToBigUInt());
    G2 q = G2Generator().ScalarMul(Fr::Random(&rng).ToBigUInt());
    G2Prepared prep = PrepareG2(q);
    EXPECT_TRUE(MillerLoop(p, prep) == MillerLoop(p, q));
  }
  // Degenerate-input contract: both variants map infinity to 1.
  G2Prepared inf_prep = PrepareG2(G2::Infinity());
  EXPECT_TRUE(inf_prep.infinity);
  EXPECT_TRUE(MillerLoop(G1Generator(), inf_prep) == Fp12::One());
  EXPECT_TRUE(MillerLoop(G1::Infinity(), PrepareG2(G2Generator())) == Fp12::One());
}

// --- Prepared Verify: identical verdicts ------------------------------------

TEST(VerifierSoundness, PreparedVerifyMatchesUnprepared) {
  ConstraintSystem cs = CubicCircuit(2, 15);
  Rng rng(7111);
  groth16::ProvingKey pk = groth16::Setup(cs, &rng);
  groth16::Proof proof = groth16::Prove(pk, cs, &rng);
  groth16::PreparedVerifyingKey pvk = groth16::PrepareVerifyingKey(pk.vk);

  std::vector<std::pair<std::vector<Fr>, groth16::Proof>> cases;
  cases.push_back({{Fr::FromU64(15)}, proof});       // valid
  cases.push_back({{Fr::FromU64(16)}, proof});       // wrong input
  cases.push_back({{}, proof});                      // wrong arity
  groth16::Proof tampered = proof;
  tampered.a = tampered.a.Double();
  cases.push_back({{Fr::FromU64(15)}, tampered});    // bad A
  tampered = proof;
  tampered.c = tampered.c.Add(G1Generator());
  cases.push_back({{Fr::FromU64(15)}, tampered});    // bad C
  tampered = proof;
  tampered.b = G2::Infinity();
  cases.push_back({{Fr::FromU64(15)}, tampered});    // infinity B

  for (const auto& [pub, pr] : cases) {
    EXPECT_EQ(groth16::Verify(pk.vk, pub, pr), groth16::Verify(pvk, pub, pr));
  }
  EXPECT_TRUE(groth16::Verify(pvk, {Fr::FromU64(15)}, proof));
}

TEST(VerifierSoundness, PreparedVkSizeBytesCoversLines) {
  KnownExponentVk kvk(7112);
  groth16::PreparedVerifyingKey pvk = groth16::PrepareVerifyingKey(kvk.vk);
  // Three prepared G2 points, ~102 lines each, 3 Fp12 per line.
  EXPECT_GT(pvk.SizeBytes(), 3 * 100 * 3 * sizeof(Fp12));
  EXPECT_FALSE(pvk.gamma_prep.infinity);
  EXPECT_FALSE(pvk.delta_prep.infinity);
}

}  // namespace
}  // namespace nope
