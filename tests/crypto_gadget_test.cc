// ECDSA, RSA, SHA-256, and MiMC gadget tests (satisfiability-level; proving
// happens in the Groth16 and end-to-end suites).
#include <gtest/gtest.h>

#include "src/base/sha256.h"
#include "src/r1cs/ecdsa_gadget.h"
#include "src/r1cs/mimc_gadget.h"
#include "src/r1cs/rsa_gadget.h"
#include "src/r1cs/sha256_gadget.h"
#include "src/r1cs/toy_curve.h"
#include "src/sig/rsa.h"

namespace nope {
namespace {

const CurveSpec& Toy() {
  static const CurveSpec spec = FindToyCurve(42);
  return spec;
}

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

struct ToySignatureFixture {
  BigUInt priv;
  NativeCurve::Pt pub;
  Bytes digest;
  ToyEcdsaSignature sig;
};

ToySignatureFixture MakeToySignature(uint64_t seed) {
  Rng rng(seed);
  NativeCurve curve(Toy());
  ToySignatureFixture f;
  f.priv = BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1);
  f.pub = curve.ScalarMul(f.priv, curve.Generator());
  f.digest = rng.NextBytes(31);
  f.sig = ToyEcdsaSign(Toy(), f.priv, f.digest, &rng);
  return f;
}

class EcdsaGadgetTest : public ::testing::TestWithParam<EcdsaMsmMode> {};

TEST_P(EcdsaGadgetTest, AcceptsValidSignature) {
  ToySignatureFixture f = MakeToySignature(1001);
  ASSERT_TRUE(ToyEcdsaVerify(Toy(), f.pub, f.digest, f.sig));

  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  auto pub = ec.AllocPoint(f.pub);
  auto z = ec.scalar_field().Alloc(BigUInt::FromBytes(f.digest) % Toy().n);
  auto r = ec.scalar_field().Alloc(f.sig.r);
  auto s = ec.scalar_field().Alloc(f.sig.s);
  EnforceEcdsaVerify(&ec, pub, z, r, s, GetParam());
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST_P(EcdsaGadgetTest, RejectsCorruptedDigest) {
  ToySignatureFixture f = MakeToySignature(1002);
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  auto pub = ec.AllocPoint(f.pub);
  auto z = ec.scalar_field().Alloc(BigUInt::FromBytes(f.digest) % Toy().n);
  auto r = ec.scalar_field().Alloc(f.sig.r);
  auto s = ec.scalar_field().Alloc(f.sig.s);
  EnforceEcdsaVerify(&ec, pub, z, r, s, GetParam());
  ASSERT_TRUE(cs.IsSatisfied());
  // Tamper with the digest scalar's witness after the fact.
  Var z0 = z.limbs[0].terms()[0].first;
  cs.SetValueForTest(z0, cs.ValueOf(z0) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Modes, EcdsaGadgetTest,
                         ::testing::Values(EcdsaMsmMode::k256Msm, EcdsaMsmMode::kGlvMsm));

TEST(EcdsaGadget, GlvUsesFewerConstraints) {
  ToySignatureFixture f = MakeToySignature(1003);
  auto cost = [&](EcdsaMsmMode mode) {
    ConstraintSystem cs;
    EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
    auto pub = ec.AllocPoint(f.pub);
    auto z = ec.scalar_field().Alloc(BigUInt::FromBytes(f.digest) % Toy().n);
    auto r = ec.scalar_field().Alloc(f.sig.r);
    auto s = ec.scalar_field().Alloc(f.sig.s);
    EnforceEcdsaVerify(&ec, pub, z, r, s, mode);
    return cs.NumConstraints();
  };
  // The half-width transform (Appendix C) should cut the MSM cost.
  EXPECT_LT(cost(EcdsaMsmMode::kGlvMsm), cost(EcdsaMsmMode::k256Msm));
}

TEST(EcdsaGadget, KnowledgeOfPrivateKey) {
  Rng rng(1004);
  NativeCurve curve(Toy());
  BigUInt d = BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1);
  auto pub_val = curve.ScalarMul(d, curve.Generator());

  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  auto pub = ec.AllocPoint(pub_val);
  EnforceKnowledgeOfPrivateKey(&ec, pub, d);
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(RsaGadget, AcceptsValidSignatureToyKey) {
  Rng rng(1005);
  RsaPrivateKey key = GenerateRsaKey(&rng, 512);
  Bytes digest = Sha256::Hash(Ascii("rrsig data"));
  Bytes sig = RsaSignDigest32(key, digest);
  ASSERT_TRUE(RsaVerifyDigest32(key.pub, digest, sig));

  for (RsaTechnique tech : {RsaTechnique::kNope, RsaTechnique::kNaive}) {
    ConstraintSystem cs;
    ModularGadget g(&cs, key.pub.n);
    auto sig_num = g.Alloc(BigUInt::FromBytes(sig));
    std::vector<LC> digest_lcs;
    for (uint8_t b : digest) {
      digest_lcs.emplace_back(cs.AddWitness(Fr::FromU64(b)));
    }
    auto em = BuildPkcs1Em(&g, digest_lcs);
    EnforceRsaVerify(&g, sig_num, em, tech);
    EXPECT_TRUE(cs.IsSatisfied()) << "tech=" << static_cast<int>(tech);
  }
}

TEST(RsaGadget, RejectsTamperedSignature) {
  Rng rng(1006);
  RsaPrivateKey key = GenerateRsaKey(&rng, 512);
  Bytes digest = Sha256::Hash(Ascii("data"));
  Bytes sig = RsaSignDigest32(key, digest);

  ConstraintSystem cs;
  ModularGadget g(&cs, key.pub.n);
  auto sig_num = g.Alloc(BigUInt::FromBytes(sig));
  std::vector<LC> digest_lcs;
  for (uint8_t b : digest) {
    digest_lcs.emplace_back(cs.AddWitness(Fr::FromU64(b)));
  }
  auto em = BuildPkcs1Em(&g, digest_lcs);
  EnforceRsaVerify(&g, sig_num, em, RsaTechnique::kNope);
  ASSERT_TRUE(cs.IsSatisfied());
  Var s0 = sig_num.limbs[0].terms()[0].first;
  cs.SetValueForTest(s0, cs.ValueOf(s0) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

TEST(RsaGadget, NopeCheaperThanNaive) {
  Rng rng(1007);
  RsaPrivateKey key = GenerateRsaKey(&rng, 512);
  Bytes digest = Sha256::Hash(Ascii("x"));
  Bytes sig = RsaSignDigest32(key, digest);
  auto cost = [&](RsaTechnique tech) {
    ConstraintSystem cs;
    ModularGadget g(&cs, key.pub.n);
    auto sig_num = g.Alloc(BigUInt::FromBytes(sig));
    std::vector<LC> digest_lcs;
    for (uint8_t b : digest) {
      digest_lcs.emplace_back(cs.AddWitness(Fr::FromU64(b)));
    }
    EnforceRsaVerify(&g, sig_num, BuildPkcs1Em(&g, digest_lcs), tech);
    return cs.NumConstraints();
  };
  EXPECT_LT(cost(RsaTechnique::kNope), cost(RsaTechnique::kNaive));
}

std::vector<LC> ByteLcs(ConstraintSystem* cs, const Bytes& data) {
  std::vector<LC> out;
  for (uint8_t b : data) {
    out.emplace_back(cs->AddWitness(Fr::FromU64(b)));
  }
  return out;
}

Bytes DigestFromLcs(const ConstraintSystem& cs, const std::vector<LC>& digest) {
  Bytes out;
  for (const LC& lc : digest) {
    out.push_back(static_cast<uint8_t>(cs.Eval(lc).ToBigUInt().LowU64()));
  }
  return out;
}

TEST(Sha256Gadget, FixedMatchesNative) {
  for (size_t len : {0u, 3u, 55u, 56u, 64u, 100u}) {
    ConstraintSystem cs;
    Bytes msg;
    for (size_t i = 0; i < len; ++i) {
      msg.push_back(static_cast<uint8_t>(i * 13 + 1));
    }
    auto digest = Sha256FixedGadget(&cs, ByteLcs(&cs, msg));
    EXPECT_EQ(DigestFromLcs(cs, digest), Sha256::Hash(msg)) << "len=" << len;
    EXPECT_TRUE(cs.IsSatisfied()) << "len=" << len;
  }
}

TEST(Sha256Gadget, DynamicMatchesNativeAcrossBlockBoundaries) {
  constexpr size_t kMax = 150;
  for (size_t len : {0u, 5u, 55u, 56u, 63u, 64u, 119u, 120u, 150u}) {
    ConstraintSystem cs;
    Bytes msg;
    for (size_t i = 0; i < len; ++i) {
      msg.push_back(static_cast<uint8_t>(i + 7));
    }
    Bytes padded = msg;
    padded.resize(kMax, 0);
    std::vector<LC> bytes = ByteLcs(&cs, padded);
    Var len_var = cs.AddWitness(Fr::FromU64(len));
    auto digest = Sha256DynamicGadget(&cs, bytes, LC(len_var));
    EXPECT_EQ(DigestFromLcs(cs, digest), Sha256::Hash(msg)) << "len=" << len;
    EXPECT_TRUE(cs.IsSatisfied()) << "len=" << len;
  }
}

TEST(Sha256Gadget, TamperedMessageBitRejected) {
  ConstraintSystem cs;
  Bytes msg = Ascii("attack at dawn");
  auto byte_lcs = ByteLcs(&cs, msg);
  auto digest = Sha256FixedGadget(&cs, byte_lcs);
  ASSERT_TRUE(cs.IsSatisfied());
  Var m0 = byte_lcs[0].terms()[0].first;
  cs.SetValueForTest(m0, cs.ValueOf(m0) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
  (void)digest;
}

TEST(MimcGadget, MatchesNativeAcrossLengths) {
  constexpr size_t kMax = 96;
  for (size_t len : {0u, 1u, 16u, 17u, 48u, 96u}) {
    ConstraintSystem cs;
    Bytes msg;
    for (size_t i = 0; i < len; ++i) {
      msg.push_back(static_cast<uint8_t>(i * 31 + 3));
    }
    Bytes padded = msg;
    padded.resize(kMax, 0);
    auto bytes = ByteLcs(&cs, padded);
    Var len_var = cs.AddWitness(Fr::FromU64(len));
    auto digest = MimcDynamicGadget(&cs, bytes, LC(len_var));
    EXPECT_EQ(DigestFromLcs(cs, digest), MimcHashBytes(msg)) << "len=" << len;
    EXPECT_TRUE(cs.IsSatisfied());
  }
}

TEST(MimcGadget, IsLengthSensitive) {
  // Same masked bytes, different length => different digest.
  Bytes a = {1, 2, 3};
  EXPECT_NE(MimcHashBytes(a), MimcHashBytes(Bytes{1, 2, 3, 0}));
  // Padding-independence: hashing is a function of (bytes, length) only.
  EXPECT_EQ(MimcHashBytes(a), MimcHashBytes(a));
}

TEST(MimcGadget, CheapEnoughForDemoProfile) {
  ConstraintSystem cs;
  Bytes msg(96, 5);
  auto bytes = ByteLcs(&cs, msg);
  Var len_var = cs.AddWitness(Fr::FromU64(96));
  size_t before = cs.NumConstraints();
  MimcDynamicGadget(&cs, bytes, LC(len_var));
  // Orders of magnitude below a SHA-256 block (~29k constraints).
  EXPECT_LT(cs.NumConstraints() - before, 1500u);
}

}  // namespace
}  // namespace nope
