// Seeded mutation harness for BatchVerify (ISSUE 7): across >= 1000 mutated
// proof/input batches, BatchVerify must accept a batch iff Verify accepts
// every member, and must name exactly the failing members. Mutants mix
// parse-level corruption (src/base/mutator.* over the 128-byte wire form,
// decoded back when the decoder lets them through) with directly-constructed
// bad Proof objects that bypass the parser — the in-process attack surface
// the point-check contract exists for.
//
// Also pinned here: the prepared-VK path returns byte-identical verdicts to
// the unprepared path, for NOPE_THREADS in {1, 2, 7}, and the per-domain
// PreparedVkCache serves hits without changing verdicts.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/mutator.h"
#include "src/base/threadpool.h"
#include "src/groth16/groth16.h"
#include "src/service/pvk_cache.h"

namespace nope {
namespace {

ConstraintSystem CubicCircuit(uint64_t w_val, uint64_t x_val) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(x_val));
  Var w = cs.AddWitness(Fr::FromU64(w_val));
  Fr w_fr = Fr::FromU64(w_val);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));
  return cs;
}

// p == 3 (mod 4) square root in Fp2 (mirrors the proof decoder's helper).
bool SqrtFp2(const Fp2& a, Fp2* out) {
  if (a.IsZero()) {
    *out = Fp2::Zero();
    return true;
  }
  static const BigUInt exp1 = (Fq::params().modulus_big - BigUInt(3)) >> 2;
  static const BigUInt exp2 = (Fq::params().modulus_big - BigUInt(1)) >> 1;
  Fp2 a1 = a.Pow(exp1);
  Fp2 x0 = a1 * a;
  Fp2 alpha = a1 * x0;
  Fp2 x;
  if (alpha == -Fp2::One()) {
    x = x0 * Fp2{Fq::Zero(), Fq::One()};
  } else {
    x = (alpha + Fp2::One()).Pow(exp2) * x0;
  }
  if (x.Square() != a) {
    return false;
  }
  *out = x;
  return true;
}

G2 CofactorTorsionPoint(Rng* rng) {
  for (;;) {
    Fp2 x{Fq::Random(rng), Fq::Random(rng)};
    Fp2 rhs = x.Square() * x + Bn254G2Config::B();
    Fp2 y;
    if (!SqrtFp2(rhs, &y) || y.IsZero()) {
      continue;
    }
    G2 t = G2::FromAffine(x, y).ScalarMul(Bn254Order());
    if (!t.IsInfinity()) {
      return t;
    }
  }
}

// Shared expensive fixture: one setup, four valid (statement, proof) pairs.
struct Fixture {
  groth16::ProvingKey pk;
  groth16::PreparedVerifyingKey pvk;
  std::vector<groth16::BatchEntry> valid;  // one per statement
  G2 torsion;                              // reusable out-of-subgroup offset

  Fixture() {
    Rng rng(8801);
    // w^3 + w + 5 = x for (w, x) pairs below; same circuit shape, so one
    // Setup serves all four statements.
    const std::pair<uint64_t, uint64_t> kStatements[] = {
        {3, 35}, {2, 15}, {4, 73}, {5, 135}};
    ConstraintSystem shape = CubicCircuit(3, 35);
    pk = groth16::Setup(shape, &rng);
    pvk = groth16::PrepareVerifyingKey(pk.vk);
    for (auto [w, x] : kStatements) {
      ConstraintSystem cs = CubicCircuit(w, x);
      groth16::BatchEntry e;
      e.proof = groth16::Prove(pk, cs, &rng);
      e.public_inputs = {Fr::FromU64(x)};
      valid.push_back(std::move(e));
    }
    torsion = CofactorTorsionPoint(&rng);
  }
};

Fixture& fixture() {
  static Fixture* f = new Fixture();
  return *f;
}

// One mutated batch member, seeded from `rng`. Structural mutants dominate
// (they exercise the cheap reject path); semantic mutants (valid points,
// wrong equation) force the combined-check-plus-fallback path.
groth16::BatchEntry MutantEntry(Rng* rng, Mutator* mutator) {
  Fixture& f = fixture();
  const groth16::BatchEntry& base =
      f.valid[rng->NextU64() % f.valid.size()];
  groth16::BatchEntry e = base;
  switch (rng->NextU64() % 10) {
    case 0:  // valid as-is
      break;
    case 1:  // wrong public input (semantic: pairing check fails)
      e.public_inputs = {Fr::FromU64(rng->NextU64() % 1000 + 1000)};
      break;
    case 2: {  // cross-statement swap (semantic)
      const groth16::BatchEntry& other =
          f.valid[rng->NextU64() % f.valid.size()];
      e.public_inputs = other.public_inputs;
      break;
    }
    case 3:  // infinity A (structural)
      e.proof.a = G1::Infinity();
      break;
    case 4:  // infinity B (structural)
      e.proof.b = G2::Infinity();
      break;
    case 5:  // infinity C (structural)
      e.proof.c = G1::Infinity();
      break;
    case 6:  // off-curve A, bypassing the parser (structural)
      e.proof.a.x = e.proof.a.x + Fq::One();
      break;
    case 7:  // on-curve, out-of-subgroup B (structural)
      e.proof.b = e.proof.b.Add(f.torsion);
      break;
    case 8:  // wrong arity (structural)
      e.public_inputs.push_back(Fr::One());
      break;
    case 9: {  // parse-level mutant of the wire bytes
      Bytes mutated = mutator->Mutate(base.proof.ToBytes());
      Result<groth16::Proof> decoded = groth16::Proof::TryFromBytes(mutated);
      if (decoded.ok()) {
        // Survived the strict decoder: valid points, (almost surely) wrong
        // proof — the semantic path.
        e.proof = decoded.value();
      } else {
        // Decoder already rejects these bytes; the batch-level stand-in is
        // a tampered-but-decodable proof (group op on A).
        e.proof.a = e.proof.a.Double();
      }
      break;
    }
  }
  return e;
}

TEST(BatchVerifyHarness, AgreesWithMemberwiseVerifyAcross1000Batches) {
  Fixture& f = fixture();
  Mutator mutator(8901);
  Rng rng(8902);
  constexpr int kBatches = 1000;
  size_t all_ok_batches = 0, rejected_members = 0;
  for (int iter = 0; iter < kBatches; ++iter) {
    size_t n = 1 + rng.NextU64() % 4;
    std::vector<groth16::BatchEntry> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(MutantEntry(&rng, &mutator));
    }

    std::vector<size_t> expect_rejected;
    for (size_t i = 0; i < n; ++i) {
      if (!groth16::Verify(f.pvk, batch[i].public_inputs, batch[i].proof)) {
        expect_rejected.push_back(i);
      }
    }

    Rng batch_rng(0xba7c4 ^ static_cast<uint64_t>(iter));
    groth16::BatchVerifyResult res =
        groth16::BatchVerify(f.pvk, batch, &batch_rng);
    ASSERT_EQ(res.all_ok, expect_rejected.empty())
        << "batch " << iter << ": all_ok disagrees with member-wise Verify";
    ASSERT_EQ(res.rejected, expect_rejected) << "batch " << iter;
    all_ok_batches += res.all_ok ? 1 : 0;
    rejected_members += res.rejected.size();
  }
  // The harness must have exercised both sides meaningfully.
  EXPECT_GT(all_ok_batches, 10u);
  EXPECT_GT(rejected_members, 100u);
}

TEST(BatchVerifyHarness, EmptyBatchIsVacuouslyOk) {
  Fixture& f = fixture();
  Rng rng(8903);
  groth16::BatchVerifyResult res = groth16::BatchVerify(f.pvk, {}, &rng);
  EXPECT_TRUE(res.all_ok);
  EXPECT_TRUE(res.rejected.empty());
}

TEST(BatchVerifyHarness, PreparedVerdictsIdenticalAcrossThreadCounts) {
  Fixture& f = fixture();
  // Verdict vector over a fixed seeded mutant set, recomputed under each
  // thread count: prepared and unprepared paths must agree bit for bit
  // (bool verdicts plus rejected index sets), independent of NOPE_THREADS.
  struct Recorded {
    std::vector<bool> prepared, unprepared;
    std::vector<std::vector<size_t>> batch_rejected;
  };
  std::vector<Recorded> runs;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    ThreadPool::SetGlobalThreads(threads);
    Mutator mutator(8904);
    Rng rng(8905);
    Recorded rec;
    for (int iter = 0; iter < 40; ++iter) {
      groth16::BatchEntry e = MutantEntry(&rng, &mutator);
      rec.prepared.push_back(
          groth16::Verify(f.pvk, e.public_inputs, e.proof));
      rec.unprepared.push_back(
          groth16::Verify(f.pk.vk, e.public_inputs, e.proof));
      Rng batch_rng(0x7d ^ static_cast<uint64_t>(iter));
      rec.batch_rejected.push_back(
          groth16::BatchVerify(f.pvk, {e}, &batch_rng).rejected);
    }
    runs.push_back(std::move(rec));
  }
  ThreadPool::SetGlobalThreads(0);
  for (size_t r = 0; r < runs.size(); ++r) {
    EXPECT_EQ(runs[r].prepared, runs[r].unprepared)
        << "prepared/unprepared verdicts diverged at thread run " << r;
    EXPECT_EQ(runs[r].prepared, runs[0].prepared)
        << "verdicts varied with thread count";
    EXPECT_EQ(runs[r].batch_rejected, runs[0].batch_rejected)
        << "batch rejections varied with thread count";
  }
}

TEST(BatchVerifyHarness, PreparedVkCacheServesHitsWithSameVerdicts) {
  Fixture& f = fixture();
  PreparedVkCache cache(/*byte_budget=*/64 << 20);
  KeyCache::Handle first = cache.Checkout("nope-tools.org.", f.pk.vk);
  ASSERT_TRUE(first.valid());
  EXPECT_FALSE(first.was_hit());
  KeyCache::Handle second = cache.Checkout("nope-tools.org.", f.pk.vk);
  EXPECT_TRUE(second.was_hit());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  const groth16::PreparedVerifyingKey& cached =
      second.As<PreparedVkEntry>()->pvk();
  for (const groth16::BatchEntry& e : f.valid) {
    EXPECT_TRUE(groth16::Verify(cached, e.public_inputs, e.proof));
  }
  groth16::Proof bad = f.valid[0].proof;
  bad.b = bad.b.Add(f.torsion);
  EXPECT_FALSE(groth16::Verify(cached, f.valid[0].public_inputs, bad));
}

}  // namespace
}  // namespace nope
