#include <gtest/gtest.h>

#include "src/ec/bn254.h"

namespace nope {
namespace {

TEST(Pairing, NonDegenerate) {
  Fp12 e = Pairing(G1Generator(), G2Generator());
  EXPECT_FALSE(e.IsOne());
  EXPECT_FALSE(e.IsZero());
  // Pairing output lies in the order-r subgroup.
  EXPECT_TRUE(e.Pow(Bn254Order()).IsOne());
}

TEST(Pairing, IdentityInputs) {
  EXPECT_TRUE(Pairing(G1::Infinity(), G2Generator()).IsOne());
  EXPECT_TRUE(Pairing(G1Generator(), G2::Infinity()).IsOne());
}

TEST(Pairing, BilinearInFirstArgument) {
  BigUInt a(123456789);
  Fp12 lhs = Pairing(G1Generator().ScalarMul(a), G2Generator());
  Fp12 rhs = Pairing(G1Generator(), G2Generator()).Pow(a);
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, BilinearInSecondArgument) {
  BigUInt b(987654321);
  Fp12 lhs = Pairing(G1Generator(), G2Generator().ScalarMul(b));
  Fp12 rhs = Pairing(G1Generator(), G2Generator()).Pow(b);
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, FullBilinearity) {
  Rng rng(301);
  BigUInt a = BigUInt::RandomBelow(&rng, BigUInt(1) << 64);
  BigUInt b = BigUInt::RandomBelow(&rng, BigUInt(1) << 64);
  Fp12 lhs = Pairing(G1Generator().ScalarMul(a), G2Generator().ScalarMul(b));
  Fp12 rhs = Pairing(G1Generator(), G2Generator()).Pow(a * b);
  EXPECT_EQ(lhs, rhs);
}

TEST(Pairing, ProductCheck) {
  // e(aG, bH) * e(-abG, H) == 1.
  BigUInt a(31337);
  BigUInt b(271828);
  G1 p1 = G1Generator().ScalarMul(a);
  G2 q1 = G2Generator().ScalarMul(b);
  G1 p2 = G1Generator().ScalarMul(a * b).Negate();
  EXPECT_TRUE(PairingProductIsOne({{p1, q1}, {p2, G2Generator()}}));
  EXPECT_FALSE(PairingProductIsOne({{p1, q1}, {p2.Double(), G2Generator()}}));
}

TEST(Pairing, AdditivityViaProduct) {
  // e(P1 + P2, Q) == e(P1, Q) e(P2, Q).
  G1 p1 = G1Generator().ScalarMul(BigUInt(111));
  G1 p2 = G1Generator().ScalarMul(BigUInt(222));
  G2 q = G2Generator().ScalarMul(BigUInt(5));
  EXPECT_EQ(Pairing(p1.Add(p2), q), Pairing(p1, q) * Pairing(p2, q));
}

}  // namespace
}  // namespace nope
