#include "src/r1cs/parse_gadgets.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

std::vector<LC> ToLcs(const std::vector<Var>& vars) {
  std::vector<LC> out;
  for (Var v : vars) {
    out.emplace_back(v);
  }
  return out;
}

TEST(ToBitsGadget, DecomposesAndConstrains) {
  ConstraintSystem cs;
  Var v = cs.AddWitness(Fr::FromU64(0b1011010));
  std::vector<Var> bits = ToBits(&cs, LC(v), 8);
  ASSERT_EQ(bits.size(), 8u);
  EXPECT_EQ(cs.ValueOf(bits[1]), Fr::One());
  EXPECT_EQ(cs.ValueOf(bits[0]), Fr::Zero());
  EXPECT_TRUE(cs.IsSatisfied());

  // Corrupting a bit breaks the recomposition constraint.
  cs.SetValueForTest(bits[0], Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

TEST(ToBitsGadget, ValueTooLargeUnsatisfiable) {
  ConstraintSystem cs;
  Var v = cs.AddWitness(Fr::FromU64(300));
  ToBits(&cs, LC(v), 8);
  EXPECT_FALSE(cs.IsSatisfied());
}

TEST(IndicatorGadget, OneHotAtIndex) {
  ConstraintSystem cs;
  Var idx = cs.AddWitness(Fr::FromU64(3));
  std::vector<Var> ind = Indicator(&cs, LC(idx), 6);
  for (size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(cs.ValueOf(ind[j]), j == 3 ? Fr::One() : Fr::Zero());
  }
  EXPECT_TRUE(cs.IsSatisfied());
  // Out-of-range index cannot satisfy the sum==1 constraint.
  ConstraintSystem cs2;
  Var idx2 = cs2.AddWitness(Fr::FromU64(10));
  Indicator(&cs2, LC(idx2), 6);
  EXPECT_FALSE(cs2.IsSatisfied());
}

TEST(IsEqualGadget, BothDirections) {
  ConstraintSystem cs;
  Var a = cs.AddWitness(Fr::FromU64(7));
  Var b = cs.AddWitness(Fr::FromU64(7));
  Var c = cs.AddWitness(Fr::FromU64(9));
  Var eq = IsEqual(&cs, LC(a), LC(b));
  Var ne = IsEqual(&cs, LC(a), LC(c));
  EXPECT_EQ(cs.ValueOf(eq), Fr::One());
  EXPECT_EQ(cs.ValueOf(ne), Fr::Zero());
  EXPECT_TRUE(cs.IsSatisfied());
  // Forging the equality bit is caught.
  cs.SetValueForTest(ne, Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

TEST(IsLessOrEqualGadget, Boundary) {
  for (uint64_t a : {0u, 3u, 7u, 8u, 15u}) {
    for (uint64_t b : {0u, 3u, 7u, 8u, 15u}) {
      ConstraintSystem cs;
      Var av = cs.AddWitness(Fr::FromU64(a));
      Var bv = cs.AddWitness(Fr::FromU64(b));
      Var le = IsLessOrEqual(&cs, LC(av), LC(bv), 4);
      EXPECT_EQ(cs.ValueOf(le), a <= b ? Fr::One() : Fr::Zero()) << a << " vs " << b;
      EXPECT_TRUE(cs.IsSatisfied());
    }
  }
}

class MaskTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MaskTest, BothVariantsMatchSpec) {
  size_t cut = GetParam();
  Bytes data = {10, 20, 30, 40, 50, 60, 70};
  for (bool use_nope : {false, true}) {
    ConstraintSystem cs;
    std::vector<Var> arr = AllocateBytesUnchecked(&cs, data);
    Var len = cs.AddWitness(Fr::FromU64(cut));
    std::vector<LC> masked = use_nope ? MaskNope(&cs, ToLcs(arr), LC(len))
                                      : MaskNaive(&cs, ToLcs(arr), LC(len));
    ASSERT_EQ(masked.size(), data.size());
    for (size_t i = 0; i < data.size(); ++i) {
      Fr expected = i < cut ? Fr::FromU64(data[i]) : Fr::Zero();
      EXPECT_EQ(cs.Eval(masked[i]), expected) << "i=" << i << " nope=" << use_nope;
    }
    EXPECT_TRUE(cs.IsSatisfied());
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, MaskTest, ::testing::Values(0, 1, 3, 6, 7));

TEST(MaskCosts, NopeBeatsNaive) {
  Bytes data(64, 1);
  ConstraintSystem naive_cs;
  auto arr1 = AllocateBytesUnchecked(&naive_cs, data);
  size_t before1 = naive_cs.NumConstraints();
  MaskNaive(&naive_cs, ToLcs(arr1), LC::Constant(Fr::FromU64(10)));
  size_t naive_cost = naive_cs.NumConstraints() - before1;

  ConstraintSystem nope_cs;
  auto arr2 = AllocateBytesUnchecked(&nope_cs, data);
  size_t before2 = nope_cs.NumConstraints();
  MaskNope(&nope_cs, ToLcs(arr2), LC::Constant(Fr::FromU64(10)));
  size_t nope_cost = nope_cs.NumConstraints() - before2;

  // The paper's formulas: ~L(2+lg L) vs 2L+1 (§4.3).
  EXPECT_LT(nope_cost, naive_cost);
  EXPECT_LE(nope_cost, MaskNopeCostFormula(64) + 2);
  EXPECT_GE(naive_cost, 64 * 2);
}

class SliceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SliceTest, AllVariantsExtract) {
  size_t start = GetParam();
  Bytes data;
  for (int i = 0; i < 48; ++i) {
    data.push_back(static_cast<uint8_t>(i * 3 + 1));
  }
  constexpr size_t kOut = 16;
  for (int variant = 0; variant < 3; ++variant) {
    ConstraintSystem cs;
    std::vector<Var> arr = AllocateBytesUnchecked(&cs, data);
    Var s = cs.AddWitness(Fr::FromU64(start));
    std::vector<LC> out;
    if (variant == 0) {
      out = SliceNaive(&cs, ToLcs(arr), LC(s), kOut);
    } else if (variant == 1) {
      out = SliceNope(&cs, ToLcs(arr), LC(s), kOut);
    } else {
      out = SliceNopePacked(&cs, ToLcs(arr), LC(s), kOut);
    }
    EXPECT_TRUE(cs.IsSatisfied()) << "variant=" << variant;
    if (variant < 2) {
      ASSERT_EQ(out.size(), kOut);
      for (size_t j = 0; j < kOut; ++j) {
        Fr expected = start + j < data.size() ? Fr::FromU64(data[start + j]) : Fr::Zero();
        EXPECT_EQ(cs.Eval(out[j]), expected) << "variant=" << variant << " j=" << j;
      }
    } else {
      // Packed output: 16-byte big-endian chunks.
      ASSERT_EQ(out.size(), 1u);
      Bytes expected_bytes;
      for (size_t j = 0; j < kOut; ++j) {
        expected_bytes.push_back(start + j < data.size() ? data[start + j] : 0);
      }
      EXPECT_EQ(cs.Eval(out[0]), PackBytesValues(expected_bytes, 16)[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Starts, SliceTest, ::testing::Values(0, 1, 5, 17, 31));

TEST(SliceCosts, NopeBeatsNaiveAtScale) {
  Bytes data(256, 7);
  ConstraintSystem naive_cs;
  auto arr1 = AllocateBytesUnchecked(&naive_cs, data);
  size_t b1 = naive_cs.NumConstraints();
  SliceNaive(&naive_cs, ToLcs(arr1), LC::Constant(Fr::FromU64(100)), 32);
  size_t naive_cost = naive_cs.NumConstraints() - b1;

  ConstraintSystem nope_cs;
  auto arr2 = AllocateBytesUnchecked(&nope_cs, data);
  size_t b2 = nope_cs.NumConstraints();
  SliceNope(&nope_cs, ToLcs(arr2), LC::Constant(Fr::FromU64(100)), 32);
  size_t nope_cost = nope_cs.NumConstraints() - b2;

  EXPECT_LT(nope_cost * 2, naive_cost);  // M*L vs ~M lg M for M=256, L=32
}

TEST(CondShiftGadget, ShiftsWhenFlagSet) {
  Bytes data = {1, 2, 3, 4, 5};
  for (bool flag : {false, true}) {
    ConstraintSystem cs;
    auto arr = AllocateBytesUnchecked(&cs, data);
    Var f = cs.AddWitness(flag ? Fr::One() : Fr::Zero());
    auto out = CondShift(&cs, ToLcs(arr), 2, f);
    EXPECT_TRUE(cs.IsSatisfied());
    for (size_t i = 0; i < data.size(); ++i) {
      uint64_t expected = flag ? (i + 2 < data.size() ? data[i + 2] : 0) : data[i];
      EXPECT_EQ(cs.Eval(out[i]), Fr::FromU64(expected));
    }
  }
}

TEST(ScanGadget, FindsRecordStartsAndLengths) {
  // Toy RRset (Appendix B.2): 3-byte header, then records
  // [len][type][data...] with len counting the whole record (incl. itself).
  Bytes msg = {'w', 'w', 'w',            // header (3 bytes)
               4,   1,   0xaa, 0xbb,     // record A: total 4 bytes
               3,   2,   0xcc,           // record B: total 3 bytes
               5,   1,   0x01, 0x02, 0x03};  // record C: total 5 bytes

  struct Case {
    size_t start;
    uint64_t length;
  };
  for (const Case& c : {Case{3, 4}, Case{7, 3}, Case{10, 5}}) {
    ConstraintSystem cs;
    auto arr = AllocateBytesUnchecked(&cs, msg);
    Var start = cs.AddWitness(Fr::FromU64(c.start));
    ScanResult result =
        ScanRecords(&cs, ToLcs(arr), LC(start), LC::Constant(Fr::FromU64(3)));
    EXPECT_EQ(cs.Eval(result.length), Fr::FromU64(c.length)) << "start=" << c.start;
    EXPECT_TRUE(cs.IsSatisfied()) << "start=" << c.start;
  }
}

TEST(ScanGadget, RejectsNonRecordStart) {
  Bytes msg = {'w', 'w', 'w', 4, 1, 0xaa, 0xbb, 3, 2, 0xcc};
  // Offsets inside records (not at a record boundary) are unsatisfiable.
  for (size_t bad_start : {4u, 5u, 6u, 8u, 9u}) {
    ConstraintSystem cs;
    auto arr = AllocateBytesUnchecked(&cs, msg);
    Var start = cs.AddWitness(Fr::FromU64(bad_start));
    ScanRecords(&cs, ToLcs(arr), LC(start), LC::Constant(Fr::FromU64(3)));
    EXPECT_FALSE(cs.IsSatisfied()) << "bad_start=" << bad_start;
  }
}

TEST(ScanGadget, HeaderOffsetRejected) {
  Bytes msg = {'w', 'w', 'w', 4, 1, 0xaa, 0xbb};
  // Position 0 is the header, not a record start (counter starts at 3).
  ConstraintSystem cs;
  auto arr = AllocateBytesUnchecked(&cs, msg);
  Var start = cs.AddWitness(Fr::Zero());
  ScanRecords(&cs, ToLcs(arr), LC(start), LC::Constant(Fr::FromU64(3)));
  EXPECT_FALSE(cs.IsSatisfied());
}

TEST(PackBytesGadget, MatchesNativePacking) {
  Bytes data = {0x01, 0x02, 0x03, 0x04, 0x05};
  ConstraintSystem cs;
  auto arr = AllocateBytes(&cs, data);
  auto packed = PackBytes(arr, 2);
  auto expected = PackBytesValues(data, 2);
  ASSERT_EQ(packed.size(), expected.size());
  for (size_t i = 0; i < packed.size(); ++i) {
    EXPECT_EQ(cs.Eval(packed[i]), expected[i]);
  }
  EXPECT_EQ(cs.Eval(packed[0]), Fr::FromU64(0x0102));
  EXPECT_EQ(cs.Eval(packed[2]), Fr::FromU64(0x05));
}

TEST(SuffixSumGadget, IsFreeAndCorrect) {
  ConstraintSystem cs;
  Bytes data = {1, 2, 3, 4};
  auto arr = AllocateBytesUnchecked(&cs, data);
  size_t before = cs.NumConstraints();
  auto sums = SuffixSum(&cs, arr);
  EXPECT_EQ(cs.NumConstraints(), before);  // zero constraints (§4.3)
  EXPECT_EQ(cs.Eval(sums[0]), Fr::FromU64(10));
  EXPECT_EQ(cs.Eval(sums[3]), Fr::FromU64(4));
}

}  // namespace
}  // namespace nope
