#include <gtest/gtest.h>

#include "src/ff/fp12.h"

namespace nope {
namespace {

template <typename Field>
class FpTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<Fq, Fr, P256Fq, P256Fn>;
TYPED_TEST_SUITE(FpTest, FieldTypes);

TYPED_TEST(FpTest, AdditiveGroupLaws) {
  using F = TypeParam;
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    F a = F::Random(&rng);
    F b = F::Random(&rng);
    F c = F::Random(&rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + F::Zero(), a);
    EXPECT_EQ(a - a, F::Zero());
    EXPECT_EQ(a + (-a), F::Zero());
  }
}

TYPED_TEST(FpTest, MultiplicativeGroupLaws) {
  using F = TypeParam;
  Rng rng(102);
  for (int i = 0; i < 50; ++i) {
    F a = F::Random(&rng);
    F b = F::Random(&rng);
    F c = F::Random(&rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * F::One(), a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), F::One());
    }
  }
}

TYPED_TEST(FpTest, MatchesBigUIntArithmetic) {
  using F = TypeParam;
  const BigUInt& p = F::params().modulus_big;
  Rng rng(103);
  for (int i = 0; i < 50; ++i) {
    BigUInt x = BigUInt::RandomBelow(&rng, p);
    BigUInt y = BigUInt::RandomBelow(&rng, p);
    F fx = F::FromBigUInt(x);
    F fy = F::FromBigUInt(y);
    EXPECT_EQ((fx * fy).ToBigUInt(), x.MulMod(y, p));
    EXPECT_EQ((fx + fy).ToBigUInt(), x.AddMod(y, p));
    EXPECT_EQ((fx - fy).ToBigUInt(), x.SubMod(y, p));
  }
}

TYPED_TEST(FpTest, RoundTripAndReduction) {
  using F = TypeParam;
  const BigUInt& p = F::params().modulus_big;
  EXPECT_EQ(F::FromBigUInt(p), F::Zero());
  EXPECT_EQ(F::FromBigUInt(p + BigUInt(5)), F::FromU64(5));
  EXPECT_EQ(F::FromU64(1), F::One());
  EXPECT_EQ(F::One().ToBigUInt(), BigUInt(1));
}

TYPED_TEST(FpTest, FermatLittleTheorem) {
  using F = TypeParam;
  Rng rng(104);
  F a = F::Random(&rng);
  EXPECT_EQ(a.Pow(F::params().modulus_big - BigUInt(1)), F::One());
}

TEST(Fp2Test, FieldLaws) {
  Rng rng(105);
  auto random_fp2 = [&] { return Fp2{Fq::Random(&rng), Fq::Random(&rng)}; };
  for (int i = 0; i < 30; ++i) {
    Fp2 a = random_fp2();
    Fp2 b = random_fp2();
    Fp2 c = random_fp2();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp2::One());
    }
  }
  // u^2 == -1.
  Fp2 u{Fq::Zero(), Fq::One()};
  Fp2 minus_one{-Fq::One(), Fq::Zero()};
  EXPECT_EQ(u * u, minus_one);
}

TEST(Fp6Test, FieldLawsAndVReduction) {
  Rng rng(106);
  auto rf2 = [&] { return Fp2{Fq::Random(&rng), Fq::Random(&rng)}; };
  auto rf6 = [&] { return Fp6{rf2(), rf2(), rf2()}; };
  for (int i = 0; i < 20; ++i) {
    Fp6 a = rf6();
    Fp6 b = rf6();
    Fp6 c = rf6();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp6::One());
    }
    // Multiplication by v matches structural MulByV.
    Fp6 v{Fp2::Zero(), Fp2::One(), Fp2::Zero()};
    EXPECT_EQ(a * v, a.MulByV());
  }
  // v^3 == xi.
  Fp6 v{Fp2::Zero(), Fp2::One(), Fp2::Zero()};
  Fp6 xi{Xi(), Fp2::Zero(), Fp2::Zero()};
  EXPECT_EQ(v * v * v, xi);
}

TEST(Fp12Test, FieldLawsAndFrobenius) {
  Rng rng(107);
  auto rf2 = [&] { return Fp2{Fq::Random(&rng), Fq::Random(&rng)}; };
  auto rf6 = [&] { return Fp6{rf2(), rf2(), rf2()}; };
  auto rf12 = [&] { return Fp12{rf6(), rf6()}; };
  for (int i = 0; i < 10; ++i) {
    Fp12 a = rf12();
    Fp12 b = rf12();
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a.Square(), a * a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inverse(), Fp12::One());
    }
    // Frobenius is the p-power map.
    EXPECT_EQ(a.Frobenius(1), a.Pow(Fq::params().modulus_big));
    // 12 applications are the identity.
    EXPECT_EQ(a.Frobenius(12), a);
    // Frobenius(2) == Frobenius applied twice.
    EXPECT_EQ(a.Frobenius(2), a.Frobenius(1).Frobenius(1));
  }
  // w^2 == v.
  Fp12 w{Fp6::Zero(), Fp6::One()};
  Fp12 v{Fp6{Fp2::Zero(), Fp2::One(), Fp2::Zero()}, Fp6::Zero()};
  EXPECT_EQ(w * w, v);
}

}  // namespace
}  // namespace nope
