// TimerWheel: the O(1) event core under the fleet simulator. The load-bearing
// property is exact fire-order determinism — (fire_tick, seq) order no matter
// how entries cascade through the hierarchy — so the main test is
// differential: seeded random schedule/cancel/advance traces replayed against
// a naive sorted scheduler must produce byte-identical fire sequences,
// including past-due clamping and tick quantization.
#include "src/base/timer_wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/base/bytes.h"

namespace nope {
namespace {

// Reference implementation: a flat list scanned with the same semantics the
// wheel promises — ceil tick quantization, past-due clamped to the next
// tick, (fire_tick, seq) order, liveness checked at fire time.
class NaiveScheduler {
 public:
  explicit NaiveScheduler(uint64_t start_ms, uint64_t tick_ms = 1)
      : tick_ms_(tick_ms), current_tick_(start_ms / tick_ms) {}

  uint64_t Schedule(uint64_t due_ms, uint64_t payload) {
    uint64_t due_tick = due_ms / tick_ms_ + (due_ms % tick_ms_ != 0 ? 1 : 0);
    Entry e;
    e.fire_tick = std::max(due_tick, current_tick_ + 1);
    e.due_ms = due_ms;
    e.seq = next_seq_++;
    e.payload = payload;
    entries_.push_back(e);
    return e.seq;
  }

  bool Cancel(uint64_t id) {
    for (Entry& e : entries_) {
      if (e.seq == id && e.alive) {
        e.alive = false;
        return true;
      }
    }
    return false;
  }

  size_t AdvanceTo(uint64_t now_ms,
                   const std::function<void(uint64_t, uint64_t)>& fire) {
    uint64_t target = now_ms / tick_ms_;
    size_t fired = 0;
    while (true) {
      // Lowest (fire_tick, seq) among live due entries; one at a time so a
      // callback's Schedule/Cancel lands with the same visibility the wheel
      // gives it.
      Entry* best = nullptr;
      for (Entry& e : entries_) {
        if (!e.alive || e.fire_tick > target) {
          continue;
        }
        if (best == nullptr || e.fire_tick < best->fire_tick ||
            (e.fire_tick == best->fire_tick && e.seq < best->seq)) {
          best = &e;
        }
      }
      if (best == nullptr) {
        break;
      }
      best->alive = false;
      current_tick_ = best->fire_tick;
      uint64_t payload = best->payload;
      uint64_t due_ms = best->due_ms;  // `best` may dangle after Schedule
      ++fired;
      fire(payload, due_ms);
    }
    current_tick_ = std::max(current_tick_, target);
    return fired;
  }

  size_t pending() const {
    size_t n = 0;
    for (const Entry& e : entries_) {
      n += e.alive ? 1 : 0;
    }
    return n;
  }

 private:
  struct Entry {
    uint64_t fire_tick = 0;
    uint64_t due_ms = 0;
    uint64_t seq = 0;
    uint64_t payload = 0;
    bool alive = true;
  };
  uint64_t tick_ms_;
  uint64_t current_tick_;
  uint64_t next_seq_ = 1;
  std::vector<Entry> entries_;
};

TEST(TimerWheel, FiresInScheduleOrderWithinOneTick) {
  TimerWheel wheel(0);
  for (uint64_t i = 0; i < 100; ++i) {
    wheel.Schedule(500, /*payload=*/i);
  }
  std::vector<uint64_t> order;
  wheel.AdvanceTo(1000, [&](uint64_t payload, uint64_t due) {
    EXPECT_EQ(due, 500u);
    order.push_back(payload);
  });
  ASSERT_EQ(order.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(order[i], i);
  }
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, PastDueClampsToNextTickInsteadOfDropping) {
  TimerWheel wheel(10'000);
  wheel.Schedule(3, 7);  // long past
  wheel.Schedule(10'000, 8);  // exactly "now"
  EXPECT_EQ(wheel.pending(), 2u);
  size_t fired = 0;
  wheel.AdvanceTo(10'001, [&](uint64_t payload, uint64_t due) {
    ++fired;
    if (payload == 7) {
      EXPECT_EQ(due, 3u);  // original due time reported, not the clamp
    }
  });
  EXPECT_EQ(fired, 2u);
}

TEST(TimerWheel, CancelBeforeFirePreventsFiring) {
  TimerWheel wheel(0);
  TimerWheel::TimerId keep = wheel.Schedule(100, 1);
  TimerWheel::TimerId drop = wheel.Schedule(100, 2);
  EXPECT_TRUE(wheel.Cancel(drop));
  EXPECT_FALSE(wheel.Cancel(drop));  // second cancel is a no-op
  EXPECT_EQ(wheel.pending(), 1u);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(200, [&](uint64_t payload, uint64_t) { fired.push_back(payload); });
  EXPECT_EQ(fired, std::vector<uint64_t>({1}));
  EXPECT_FALSE(wheel.Cancel(keep));  // already fired
}

TEST(TimerWheel, CallbackCancelSuppressesLaterSameTickTimer) {
  TimerWheel wheel(0);
  wheel.Schedule(50, 1);
  TimerWheel::TimerId second = wheel.Schedule(50, 2);
  std::vector<uint64_t> fired;
  wheel.AdvanceTo(100, [&](uint64_t payload, uint64_t) {
    fired.push_back(payload);
    if (payload == 1) {
      EXPECT_TRUE(wheel.Cancel(second));
    }
  });
  EXPECT_EQ(fired, std::vector<uint64_t>({1}));
}

TEST(TimerWheel, CallbackScheduledPastDueFiresAtNextTickNotSameTick) {
  TimerWheel wheel(0);
  wheel.Schedule(100, 1);
  std::vector<uint64_t> fired;
  auto fire = [&](uint64_t payload, uint64_t) {
    fired.push_back(payload);
    if (payload == 1) {
      wheel.Schedule(10, 2);  // already in the past at fire time
    }
  };
  // The clamp lands it on tick 101 — still inside this advance's target, so
  // it fires in the same call but strictly after tick 100 (no same-tick
  // re-entry, no infinite self-scheduling loop).
  wheel.AdvanceTo(1000, fire);
  EXPECT_EQ(fired, std::vector<uint64_t>({1, 2}));

  // When the clamp lands past the target, it waits for the next advance.
  wheel.Schedule(50, 3);  // past-due: clamps to tick 1001 > target 1000
  wheel.AdvanceTo(1000, fire);
  EXPECT_EQ(fired, std::vector<uint64_t>({1, 2}));
  wheel.AdvanceTo(1001, fire);
  EXPECT_EQ(fired, std::vector<uint64_t>({1, 2, 3}));
}

// Re-arming chains (the renewal-lead pattern): each firing schedules the
// next. The whole multi-rotation cadence must land on exact ticks.
TEST(TimerWheel, ReArmingChainWalksExactCadence) {
  TimerWheel wheel(0, /*tick_ms=*/10);
  const uint64_t period = 7'777;  // not tick-aligned: quantizes up to 7780
  std::vector<uint64_t> fire_times;
  std::function<void(uint64_t, uint64_t)> fire = [&](uint64_t gen, uint64_t due) {
    fire_times.push_back(due);
    if (gen < 50) {
      wheel.Schedule(due + period, gen + 1);
    }
  };
  wheel.Schedule(period, 1);
  // Advance in one giant leap: every generation still fires, in order,
  // because each callback schedules within the same AdvanceTo's target — and
  // the wheel keeps draining until the target tick.
  wheel.AdvanceTo(period * 60, fire);
  ASSERT_EQ(fire_times.size(), 50u);
  for (size_t i = 0; i < fire_times.size(); ++i) {
    EXPECT_EQ(fire_times[i], period * (i + 1));
  }
}

// A timer farther out than the wheel's 2^32-tick horizon parks in overflow
// and still fires at the right instant (90-day fleet leases at 1 ms ticks).
TEST(TimerWheel, BeyondHorizonTimerFiresViaOverflow) {
  TimerWheel wheel(0, /*tick_ms=*/1);
  const uint64_t far = (1ull << 32) + 12'345;  // ~49.7 days + change, in ms
  const uint64_t near = 1000;
  wheel.Schedule(far, 1);
  wheel.Schedule(near, 2);
  std::vector<std::pair<uint64_t, uint64_t>> fired;
  wheel.AdvanceTo(near, [&](uint64_t p, uint64_t d) { fired.push_back({p, d}); });
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, 2u);
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.AdvanceTo(far + 1, [&](uint64_t p, uint64_t d) { fired.push_back({p, d}); });
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].first, 1u);
  EXPECT_EQ(fired[1].second, far);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheel, NextDueLowerBoundNeverOvershootsTheNextFire) {
  Rng rng(99);
  TimerWheel wheel(0, /*tick_ms=*/10);
  uint64_t earliest = UINT64_MAX;
  for (int i = 0; i < 200; ++i) {
    uint64_t due = 1000 + rng.NextBelow(30ull * 24 * 3600 * 1000);
    uint64_t quantized = (due + 9) / 10 * 10;
    earliest = std::min(earliest, quantized);
    wheel.Schedule(due, i);
  }
  // The bound may be conservative (a coarse slot boundary) but must never be
  // later than the earliest real fire instant.
  EXPECT_LE(wheel.NextDueLowerBoundMs(), earliest);

  // Following the bound repeatedly must reach the first firing.
  size_t fired = 0;
  while (fired == 0) {
    uint64_t next = wheel.NextDueLowerBoundMs();
    ASSERT_NE(next, UINT64_MAX);
    fired = wheel.AdvanceTo(next, [&](uint64_t, uint64_t due) {
      EXPECT_EQ((due + 9) / 10 * 10, earliest);
    });
  }
  EXPECT_EQ(wheel.NextDueLowerBoundMs() == UINT64_MAX, wheel.pending() == 0);
}

// The differential contract: seeded random traces of Schedule / Cancel /
// AdvanceTo produce the exact same fire sequence on the wheel and on the
// naive sorted scheduler, across tick granularities and horizons that force
// multi-level cascades and overflow parking.
TEST(TimerWheel, DifferentialAgainstNaiveSchedulerOnSeededTraces) {
  const uint64_t tick_choices[] = {1, 10, 250};
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    uint64_t tick_ms = tick_choices[seed % 3];
    uint64_t start = rng.NextBelow(1'000'000);
    TimerWheel wheel(start, tick_ms);
    NaiveScheduler naive(start, tick_ms);

    std::vector<std::string> wheel_trace;
    std::vector<std::string> naive_trace;
    auto recorder = [](std::vector<std::string>* out) {
      return [out](uint64_t payload, uint64_t due) {
        out->push_back(std::to_string(payload) + "@" + std::to_string(due));
      };
    };

    uint64_t now = start;
    std::vector<uint64_t> live_ids;
    for (int step = 0; step < 400; ++step) {
      uint64_t op = rng.NextBelow(100);
      if (op < 55) {
        // Horizon mix: mostly near, some mid, a few beyond 2^32 ticks.
        uint64_t span;
        uint64_t kind = rng.NextBelow(10);
        if (kind < 6) {
          span = rng.NextBelow(100'000);
        } else if (kind < 9) {
          span = rng.NextBelow(10ull * 24 * 3600 * 1000);
        } else {
          span = (1ull << 32) * tick_ms + rng.NextBelow(1'000'000);
        }
        // Occasionally in the past (span may undershoot now).
        uint64_t due = rng.NextBelow(2) == 0 ? now + span
                                             : (span > now ? span : now - span / 2);
        uint64_t payload = rng.NextU64() % 1'000'000;
        uint64_t id_w = wheel.Schedule(due, payload);
        uint64_t id_n = naive.Schedule(due, payload);
        EXPECT_EQ(id_w, id_n);
        live_ids.push_back(id_w);
      } else if (op < 70 && !live_ids.empty()) {
        size_t pick = rng.NextBelow(live_ids.size());
        uint64_t id = live_ids[pick];
        bool a = wheel.Cancel(id);
        bool b = naive.Cancel(id);
        EXPECT_EQ(a, b) << "seed=" << seed << " step=" << step << " id=" << id;
        live_ids.erase(live_ids.begin() + static_cast<long>(pick));
      } else {
        // Advance by a mixed-scale leap — sometimes multiple level-rollovers
        // at once.
        uint64_t leap = rng.NextBelow(3) == 0
                            ? rng.NextBelow(3ull * 24 * 3600 * 1000)
                            : rng.NextBelow(50'000);
        now += leap;
        size_t a = wheel.AdvanceTo(now, recorder(&wheel_trace));
        size_t b = naive.AdvanceTo(now, recorder(&naive_trace));
        EXPECT_EQ(a, b) << "seed=" << seed << " step=" << step;
      }
      ASSERT_EQ(wheel_trace, naive_trace) << "seed=" << seed << " step=" << step;
    }
    // Drain everything left and compare the full histories.
    now += (1ull << 33) * tick_ms;
    wheel.AdvanceTo(now, recorder(&wheel_trace));
    naive.AdvanceTo(now, recorder(&naive_trace));
    EXPECT_EQ(wheel_trace, naive_trace) << "seed=" << seed;
    EXPECT_EQ(wheel.pending(), naive.pending()) << "seed=" << seed;
    EXPECT_EQ(wheel.pending(), 0u);
  }
}

// Replaying the same trace twice is byte-identical (the fleet's replay
// contract leans on this plus SimClock).
TEST(TimerWheel, SeededTraceReplaysIdentically) {
  auto run = [](uint64_t seed) {
    Rng rng(seed);
    TimerWheel wheel(0, 10);
    std::string log;
    uint64_t now = 0;
    for (int step = 0; step < 300; ++step) {
      if (rng.NextBelow(3) != 0) {
        wheel.Schedule(now + rng.NextBelow(1'000'000), rng.NextBelow(1000));
      } else {
        now += rng.NextBelow(200'000);
        wheel.AdvanceTo(now, [&](uint64_t payload, uint64_t due) {
          log += std::to_string(payload) + "@" + std::to_string(due) + "\n";
        });
      }
    }
    return log;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace nope
