// S_NOPE statement tests over the toy suite: satisfiability, linkage
// soundness against substituted records, and the ablation orderings.
#include "src/core/statement.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

struct StatementFixture {
  DnssecHierarchy dns{CryptoSuite::Toy(), 4001};
  DnsName domain = DnsName::FromString("example.com");

  StatementFixture() {
    dns.AddZone(DnsName::FromString("com"));
    dns.AddZone(domain);
  }

  StatementParams Params(StatementOptions options = StatementOptions::Full()) {
    StatementParams params;
    params.suite = &CryptoSuite::Toy();
    params.num_levels = 1;
    params.max_name_len = 32;
    params.options = options;
    return params;
  }

  StatementWitness Witness() {
    StatementWitness w;
    w.chain = dns.BuildChain(domain);
    w.leaf_ksk_private_key = dns.Find(domain)->ksk().ec_priv;
    w.tls_key_digest = Bytes(32, 0xaa);
    w.ca_name_digest = Bytes(32, 0xbb);
    w.truncated_ts = 2916666;
    return w;
  }
};

TEST(Statement, SatisfiableWithHonestWitness) {
  StatementFixture f;
  ConstraintSystem cs;
  size_t num_public = BuildNopeStatement(&cs, f.Params(), f.Witness());
  EXPECT_EQ(num_public, 2u + 2u + 2u + 1u);  // 2 name chunks + T + N + TS
  EXPECT_GT(cs.NumConstraints(), 1000u);
  size_t bad = 0;
  EXPECT_TRUE(cs.IsSatisfied(&bad)) << "violated constraint " << bad;
}

TEST(Statement, PublicInputsMatchHelper) {
  StatementFixture f;
  ConstraintSystem cs;
  StatementWitness w = f.Witness();
  BuildNopeStatement(&cs, f.Params(), w);
  std::vector<Fr> expected =
      NopePublicInputs(f.Params(), f.domain, w.tls_key_digest, w.ca_name_digest, w.truncated_ts);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(cs.ValueOf(static_cast<Var>(i + 1)), expected[i]) << "public input " << i;
  }
}

TEST(Statement, RejectsChainFromDifferentRoot) {
  // A DNSSEC attacker who forges a parallel hierarchy (different root ZSK)
  // cannot satisfy the statement whose root is baked to the real one: we
  // build the statement with the real chain but swap in a forged leaf DS.
  StatementFixture f;
  DnssecHierarchy other(CryptoSuite::Toy(), 4999);
  other.AddZone(DnsName::FromString("com"));
  other.AddZone(f.domain);

  StatementWitness w = f.Witness();
  ChainOfTrust forged = other.BuildChain(f.domain);
  // Splice the forged leaf DS (signed by the other hierarchy's .com) into
  // the honest witness. Constraint build may throw (hint inconsistency) or
  // yield an unsatisfiable system; both reject.
  w.chain.leaf_ds = forged.leaf_ds;
  w.leaf_ksk_private_key = other.Find(f.domain)->ksk().ec_priv;
  w.chain.leaf_ksk = forged.leaf_ksk;
  ConstraintSystem cs;
  try {
    BuildNopeStatement(&cs, f.Params(), w);
    EXPECT_FALSE(cs.IsSatisfied());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(Statement, RejectsWrongPrivateKey) {
  StatementFixture f;
  StatementWitness w = f.Witness();
  w.leaf_ksk_private_key = (w.leaf_ksk_private_key + BigUInt(1)) % CryptoSuite::Toy().curve.n;
  ConstraintSystem cs;
  try {
    BuildNopeStatement(&cs, f.Params(), w);
    EXPECT_FALSE(cs.IsSatisfied());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(Statement, RejectsDomainSubstitution) {
  // Proof witness for example.com cannot satisfy a statement whose public
  // inputs claim evil.com: the wire-name comparison fails.
  StatementFixture f;
  f.dns.AddZone(DnsName::FromString("evil.com"));
  StatementWitness w = f.Witness();
  // Swap the chain for evil.com's, keeping the public domain example.com.
  StatementWitness evil = w;
  evil.chain = f.dns.BuildChain(DnsName::FromString("evil.com"));
  evil.chain.domain = f.domain;  // lie about the domain
  evil.leaf_ksk_private_key = f.dns.Find(DnsName::FromString("evil.com"))->ksk().ec_priv;
  ConstraintSystem cs;
  try {
    BuildNopeStatement(&cs, f.Params(), evil);
    EXPECT_FALSE(cs.IsSatisfied());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(Statement, CountModeMatchesProveMode) {
  StatementFixture f;
  ConstraintSystem prove_cs(ConstraintSystem::Mode::kProve);
  BuildNopeStatement(&prove_cs, f.Params(), f.Witness());
  ConstraintSystem count_cs(ConstraintSystem::Mode::kCount);
  BuildNopeStatement(&count_cs, f.Params(), f.Witness());
  EXPECT_EQ(prove_cs.NumConstraints(), count_cs.NumConstraints());
  EXPECT_EQ(prove_cs.NumVariables(), count_cs.NumVariables());
  EXPECT_TRUE(count_cs.constraints().empty());
}

TEST(Statement, AblationOrdering) {
  // Each paper technique must reduce the constraint count (Fig. 6 shape):
  // baseline > +design > +parsing > +crypto > +misc.
  StatementFixture f;
  StatementWitness w = f.Witness();
  auto count = [&](StatementOptions opt) {
    ConstraintSystem cs(ConstraintSystem::Mode::kCount);
    StatementParams params = f.Params(opt);
    BuildNopeStatement(&cs, params, w);
    return cs.NumConstraints();
  };
  StatementOptions baseline = StatementOptions::Baseline();
  StatementOptions design = baseline;
  design.use_signature_of_knowledge = true;
  StatementOptions parsing = design;
  parsing.use_nope_parsing = true;
  StatementOptions crypto = parsing;
  crypto.use_nope_crypto = true;
  crypto.use_glv_msm = true;
  StatementOptions full = StatementOptions::Full();

  size_t c_baseline = count(baseline);
  size_t c_design = count(design);
  size_t c_parsing = count(parsing);
  size_t c_crypto = count(crypto);
  size_t c_full = count(full);
  EXPECT_GT(c_baseline, c_design);
  EXPECT_GT(c_design, c_parsing);
  EXPECT_GT(c_parsing, c_crypto);
  EXPECT_GE(c_crypto, c_full);
}

TEST(Statement, DeeperChain) {
  DnssecHierarchy dns(CryptoSuite::Toy(), 4002);
  dns.AddZone(DnsName::FromString("uk"));
  dns.AddZone(DnsName::FromString("co.uk"));
  DnsName domain = DnsName::FromString("shop.co.uk");
  dns.AddZone(domain);

  StatementParams params;
  params.suite = &CryptoSuite::Toy();
  params.num_levels = 2;
  params.max_name_len = 32;
  params.options = StatementOptions::Full();

  StatementWitness w;
  w.chain = dns.BuildChain(domain);
  w.leaf_ksk_private_key = dns.Find(domain)->ksk().ec_priv;
  w.tls_key_digest = Bytes(32, 1);
  w.ca_name_digest = Bytes(32, 2);
  w.truncated_ts = 123;

  ConstraintSystem cs;
  BuildNopeStatement(&cs, params, w);
  size_t bad = 0;
  EXPECT_TRUE(cs.IsSatisfied(&bad)) << "violated constraint " << bad;
}


TEST(StatementManaged, SatisfiableWithTxtBinding) {
  // NOPE-managed (App. A): no KSK-knowledge; a ZSK-signed TXT record binds
  // hash(T || N || TS).
  StatementFixture f;
  StatementOptions options = StatementOptions::Full();
  options.managed_mode = true;
  StatementWitness w = f.Witness();
  Bytes binding = ManagedBinding(CryptoSuite::Toy(), w.tls_key_digest, w.ca_name_digest,
                                 w.truncated_ts);
  // Decoy TXT records exercise the record walk.
  f.dns.SetTxt(f.domain, "v=spf1 -all");
  f.dns.SetTxt(f.domain, std::string(binding.begin(), binding.end()));
  f.dns.SetTxt(f.domain, "site-verification=zzz");
  w.managed_txt = f.dns.SignedTxt(f.domain);
  Zone* zone = f.dns.Find(f.domain);
  w.managed_dnskey = zone->Sign(zone->DnskeyRrset(), f.dns.rng());

  ConstraintSystem cs;
  BuildNopeStatement(&cs, f.Params(options), w);
  size_t bad = 0;
  EXPECT_TRUE(cs.IsSatisfied(&bad)) << "violated constraint " << bad;
}

TEST(StatementManaged, RejectsMissingBinding) {
  // Without the binding TXT record, no satisfying witness exists.
  StatementFixture f;
  StatementOptions options = StatementOptions::Full();
  options.managed_mode = true;
  StatementWitness w = f.Witness();
  f.dns.SetTxt(f.domain, "unrelated-record");
  w.managed_txt = f.dns.SignedTxt(f.domain);
  Zone* zone = f.dns.Find(f.domain);
  w.managed_dnskey = zone->Sign(zone->DnskeyRrset(), f.dns.rng());
  ConstraintSystem cs;
  try {
    BuildNopeStatement(&cs, f.Params(options), w);
    EXPECT_FALSE(cs.IsSatisfied());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(StatementManaged, RejectsBindingForDifferentTlsKey) {
  // The TXT binds a specific (T, N, TS); a proof attempt for a different
  // TLS key must fail even with the same TXT RRset.
  StatementFixture f;
  StatementOptions options = StatementOptions::Full();
  options.managed_mode = true;
  StatementWitness w = f.Witness();
  Bytes binding = ManagedBinding(CryptoSuite::Toy(), w.tls_key_digest, w.ca_name_digest,
                                 w.truncated_ts);
  f.dns.SetTxt(f.domain, std::string(binding.begin(), binding.end()));
  w.managed_txt = f.dns.SignedTxt(f.domain);
  Zone* zone = f.dns.Find(f.domain);
  w.managed_dnskey = zone->Sign(zone->DnskeyRrset(), f.dns.rng());
  w.tls_key_digest = Bytes(32, 0xcc);  // attacker's key digest
  ConstraintSystem cs;
  try {
    BuildNopeStatement(&cs, f.Params(options), w);
    EXPECT_FALSE(cs.IsSatisfied());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(StatementManaged, CostsRoughlyDoubleStandard) {
  // App. A: "roughly twice as expensive for the prover".
  StatementFixture f;
  StatementWitness w = f.Witness();
  ConstraintSystem standard_cs(ConstraintSystem::Mode::kCount);
  BuildNopeStatement(&standard_cs, f.Params(), w);

  StatementOptions options = StatementOptions::Full();
  options.managed_mode = true;
  Bytes binding = ManagedBinding(CryptoSuite::Toy(), w.tls_key_digest, w.ca_name_digest,
                                 w.truncated_ts);
  f.dns.SetTxt(f.domain, std::string(binding.begin(), binding.end()));
  w.managed_txt = f.dns.SignedTxt(f.domain);
  Zone* zone = f.dns.Find(f.domain);
  w.managed_dnskey = zone->Sign(zone->DnskeyRrset(), f.dns.rng());
  ConstraintSystem managed_cs(ConstraintSystem::Mode::kCount);
  BuildNopeStatement(&managed_cs, f.Params(options), w);

  double ratio = static_cast<double>(managed_cs.NumConstraints()) / standard_cs.NumConstraints();
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 3.5);
}

TEST(StatementHelpers, TimestampTruncation) {
  EXPECT_EQ(TruncateTimestamp(0), 0u);
  EXPECT_EQ(TruncateTimestamp(599), 0u);
  EXPECT_EQ(TruncateTimestamp(600), 1u);
  EXPECT_EQ(TruncateTimestamp(1750000000), 1750000000ull / 600);
}

}  // namespace
}  // namespace nope
