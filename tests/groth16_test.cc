#include "src/groth16/groth16.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

// Builds the classic demo statement: public x, witness w with w^3 + w + 5 == x.
ConstraintSystem CubicCircuit(uint64_t w_val, uint64_t x_val) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(x_val));
  Var w = cs.AddWitness(Fr::FromU64(w_val));
  Fr w_fr = Fr::FromU64(w_val);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));
  return cs;
}

TEST(Groth16, ProveAndVerifyCubic) {
  // w = 3: 27 + 3 + 5 = 35.
  ConstraintSystem cs = CubicCircuit(3, 35);
  ASSERT_TRUE(cs.IsSatisfied());
  Rng rng(601);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, proof));
  // Wrong public input rejected.
  EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(36)}, proof));
  // Wrong number of public inputs rejected.
  EXPECT_FALSE(groth16::Verify(pk.vk, {}, proof));
  EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(35), Fr::One()}, proof));
}

TEST(Groth16, UnsatisfiedWitnessThrows) {
  ConstraintSystem cs = CubicCircuit(3, 36);
  Rng rng(602);
  ConstraintSystem good = CubicCircuit(3, 35);
  auto pk = groth16::Setup(good, &rng);
  EXPECT_THROW(groth16::Prove(pk, cs, &rng), std::invalid_argument);
}

TEST(Groth16, TamperedProofRejected) {
  ConstraintSystem cs = CubicCircuit(2, 15);  // 8 + 2 + 5
  Rng rng(603);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  ASSERT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(15)}, proof));

  groth16::Proof bad = proof;
  bad.a = bad.a.Double();
  EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(15)}, bad));
  bad = proof;
  bad.c = bad.c.Add(G1Generator());
  EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(15)}, bad));
}

TEST(Groth16, ProofSerializationIs128Bytes) {
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng(604);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);

  Bytes encoded = proof.ToBytes();
  EXPECT_EQ(encoded.size(), 128u);  // the paper's raw proof size (§2.3, Fig. 7)
  auto decoded = groth16::Proof::FromBytes(encoded);
  EXPECT_TRUE(decoded.a.Equals(proof.a));
  EXPECT_TRUE(decoded.b.Equals(proof.b));
  EXPECT_TRUE(decoded.c.Equals(proof.c));
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, decoded));

  EXPECT_THROW(groth16::Proof::FromBytes(Bytes(127)), std::invalid_argument);
  Bytes corrupt = encoded;
  corrupt[5] ^= 0xff;
  // Either decode fails (x not on curve) or the proof no longer verifies.
  try {
    auto p2 = groth16::Proof::FromBytes(corrupt);
    EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, p2));
  } catch (const std::invalid_argument&) {
  }
}

TEST(Groth16, ZeroKnowledgeRandomization) {
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng(605);
  auto pk = groth16::Setup(cs, &rng);
  auto p1 = groth16::Prove(pk, cs, &rng);
  auto p2 = groth16::Prove(pk, cs, &rng);
  // Distinct randomness yields distinct proofs for the same statement.
  EXPECT_FALSE(p1.a.Equals(p2.a));
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, p1));
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, p2));
}

TEST(Groth16, ProofMalleability) {
  // Anyone can re-randomize a valid proof into a distinct valid proof; this
  // is why NOPE binds N and TS inside the statement rather than relying on
  // proof bytes being unique (§3.2).
  ConstraintSystem cs = CubicCircuit(3, 35);
  Rng rng(606);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  auto mauled = groth16::RandomizeProof(pk.vk, proof, &rng);
  EXPECT_FALSE(mauled.a.Equals(proof.a));
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(35)}, mauled));
}

TEST(Groth16, MultiplePublicInputs) {
  // Statement: x0 * x1 == w (all products public except w... rather, w is
  // witness equal to the product).
  ConstraintSystem cs;
  Var x0 = cs.AddPublicInput(Fr::FromU64(6));
  Var x1 = cs.AddPublicInput(Fr::FromU64(7));
  Var w = cs.AddWitness(Fr::FromU64(42));
  cs.Enforce(LC(x0), LC(x1), LC(w));
  // Pad with a few more constraints to exercise non-trivial domains.
  for (int i = 0; i < 10; ++i) {
    cs.Enforce(LC(w), LC::Constant(Fr::One()), LC(w));
  }
  Rng rng(607);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  EXPECT_TRUE(groth16::Verify(pk.vk, {Fr::FromU64(6), Fr::FromU64(7)}, proof));
  EXPECT_FALSE(groth16::Verify(pk.vk, {Fr::FromU64(7), Fr::FromU64(6)}, proof));
}

TEST(Groth16, LargerRandomCircuit) {
  // Random multiplicative chain, a few hundred constraints.
  Rng rng(608);
  ConstraintSystem cs;
  Fr acc_val = Fr::FromU64(2);
  Var pub = cs.AddPublicInput(Fr::Zero());  // patched below
  Var acc = cs.AddWitness(acc_val);
  cs.EnforceEqual(LC(acc), LC::Constant(acc_val));
  for (int i = 0; i < 300; ++i) {
    Fr next_val = acc_val * acc_val + Fr::FromU64(i);
    Var next = cs.AddWitness(next_val);
    cs.Enforce(LC(acc), LC(acc), LC(next) - LC::Constant(Fr::FromU64(i)));
    acc = next;
    acc_val = next_val;
  }
  cs.SetValueForTest(pub, acc_val);
  cs.EnforceEqual(LC(acc), LC(pub));
  ASSERT_TRUE(cs.IsSatisfied());

  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  EXPECT_TRUE(groth16::Verify(pk.vk, {acc_val}, proof));
  EXPECT_FALSE(groth16::Verify(pk.vk, {acc_val + Fr::One()}, proof));
}

TEST(Domain, FftRoundTrip) {
  EvaluationDomain d(13);
  EXPECT_EQ(d.size(), 16u);
  Rng rng(609);
  std::vector<Fr> coeffs;
  for (size_t i = 0; i < d.size(); ++i) {
    coeffs.push_back(Fr::Random(&rng));
  }
  std::vector<Fr> evals = coeffs;
  d.Fft(&evals);
  // Spot-check: evaluation at omega^1 equals the polynomial evaluated there.
  Fr x = d.omega();
  Fr expect = Fr::Zero();
  Fr pw = Fr::One();
  for (const Fr& c : coeffs) {
    expect = expect + c * pw;
    pw = pw * x;
  }
  EXPECT_EQ(evals[1], expect);

  d.Ifft(&evals);
  EXPECT_EQ(evals, coeffs);

  std::vector<Fr> coset = coeffs;
  d.CosetFft(&coset);
  d.CosetIfft(&coset);
  EXPECT_EQ(coset, coeffs);
}

TEST(Domain, VanishingPolynomial) {
  EvaluationDomain d(8);
  // Z vanishes on the domain and not on the coset.
  EXPECT_EQ(d.EvaluateVanishing(d.omega()), Fr::Zero());
  EXPECT_EQ(d.EvaluateVanishing(Fr::One()), Fr::Zero());
  EXPECT_NE(d.VanishingOnCoset(), Fr::Zero());
}

TEST(Domain, LagrangeInterpolation) {
  EvaluationDomain d(4);
  Rng rng(610);
  Fr tau = Fr::Random(&rng);
  std::vector<Fr> lag = d.LagrangeAt(tau);
  // Sum of Lagrange basis values is 1.
  Fr sum = Fr::Zero();
  for (const Fr& l : lag) {
    sum = sum + l;
  }
  EXPECT_EQ(sum, Fr::One());
  // Interpolating x^2 through its evaluations reproduces tau^2.
  Fr point = Fr::One();
  Fr acc = Fr::Zero();
  for (size_t j = 0; j < d.size(); ++j) {
    acc = acc + lag[j] * point.Square();
    point = point * d.omega();
  }
  EXPECT_EQ(acc, tau.Square());
}

TEST(BatchInvertTest, MatchesIndividualInverses) {
  Rng rng(611);
  std::vector<Fr> values;
  for (int i = 0; i < 20; ++i) {
    values.push_back(i % 5 == 0 ? Fr::Zero() : Fr::Random(&rng));
  }
  std::vector<Fr> inverted = values;
  BatchInvert(&inverted);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i].IsZero()) {
      EXPECT_TRUE(inverted[i].IsZero());
    } else {
      EXPECT_EQ(inverted[i], values[i].Inverse());
    }
  }
}

}  // namespace
}  // namespace nope
