#include <gtest/gtest.h>

#include "src/base/hmac.h"
#include "src/base/sha1.h"
#include "src/base/sha256.h"

namespace nope {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(EncodeHex(Sha256::Hash(Ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(EncodeHex(Sha256::Hash(Ascii(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(EncodeHex(Sha256::Hash(
                Ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.Update(chunk);
  }
  auto digest = h.Finish();
  EXPECT_EQ(EncodeHex(Bytes(digest.begin(), digest.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) {
    data.push_back(static_cast<uint8_t>(i * 7));
  }
  for (size_t split = 0; split <= data.size(); split += 37) {
    Sha256 h;
    h.Update(data.data(), split);
    h.Update(data.data() + split, data.size() - split);
    auto digest = h.Finish();
    EXPECT_EQ(Bytes(digest.begin(), digest.end()), Sha256::Hash(data));
  }
}

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(EncodeHex(Sha1Hash(Ascii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(EncodeHex(Sha1Hash(Ascii(""))), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Hmac, Rfc4231Vectors) {
  // RFC 4231 test case 1.
  Bytes key(20, 0x0b);
  EXPECT_EQ(EncodeHex(HmacSha256(key, Ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Test case 2.
  EXPECT_EQ(EncodeHex(HmacSha256(Ascii("Jefe"), Ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Test case 3: 20-byte 0xaa key, 50-byte 0xdd data.
  Bytes key3(20, 0xaa);
  Bytes data3(50, 0xdd);
  EXPECT_EQ(EncodeHex(HmacSha256(key3, data3)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hex, RoundTripAndErrors) {
  Bytes data = {0x00, 0xff, 0x10, 0xab};
  EXPECT_EQ(EncodeHex(data), "00ff10ab");
  EXPECT_EQ(DecodeHex("00ff10ab"), data);
  EXPECT_EQ(DecodeHex("00FF10AB"), data);
  EXPECT_THROW(DecodeHex("abc"), std::invalid_argument);
  EXPECT_THROW(DecodeHex("zz"), std::invalid_argument);
}

TEST(ByteIo, BigEndianRoundTrip) {
  Bytes buf;
  AppendU8(&buf, 0x12);
  AppendU16(&buf, 0x3456);
  AppendU32(&buf, 0x789abcde);
  AppendU64(&buf, 0x1122334455667788ull);
  size_t pos = 0;
  EXPECT_EQ(ReadU8(buf, &pos), 0x12);
  EXPECT_EQ(ReadU16(buf, &pos), 0x3456);
  EXPECT_EQ(ReadU32(buf, &pos), 0x789abcdeu);
  EXPECT_EQ(ReadU64(buf, &pos), 0x1122334455667788ull);
  EXPECT_EQ(pos, buf.size());
  EXPECT_THROW(ReadU8(buf, &pos), std::out_of_range);
}

}  // namespace
}  // namespace nope
