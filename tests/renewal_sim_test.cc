// The renewal lifecycle under a simulated failing world: seeded fault
// schedules, byte-identical event logs, degrade-to-legacy after exactly N
// consecutive proof-path failures, and automatic recovery once the fault
// clears. Everything runs under SimClock, so multi-day scenarios take
// milliseconds of real time.
#include "src/core/renewal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nope {
namespace {

// The simulated hierarchy signs RRSIGs with a fixed validity window around
// epoch 1.7e9-1.8e9 s; the simulation clock must live inside it.
constexpr uint64_t kStartMs = 1'750'000'000'000ull;

struct SimWorld {
  SimClock clock{kStartMs};
  Rng rng;
  CtLog log1;
  CtLog log2;
  CertificateAuthority ca;
  DnssecHierarchy dns;
  DnsName domain = DnsName::FromString("example.org");
  FlakyResolver resolver;
  FlakyCa flaky_ca;
  Bytes tls_key;

  explicit SimWorld(uint64_t seed, double dns_fault_rate = 0.0,
                    double ca_fault_rate = 0.0)
      : rng(seed),
        log1(1, &rng),
        log2(2, &rng),
        ca("lets-encrypt-sim", {&log1, &log2}, &rng),
        dns(CryptoSuite::Toy(), seed + 1),
        resolver(&dns, &clock, seed + 2, dns_fault_rate),
        flaky_ca(&ca, &clock, seed + 3, ca_fault_rate) {
    dns.AddZone(DnsName::FromString("org"));
    dns.AddZone(domain);
    tls_key = GenerateEcdsaKey(&rng).pub.Encode();
  }

  SimulatedPipeline MakePipeline(SimulatedPipelineConfig config = {}) {
    return SimulatedPipeline(&resolver, &flaky_ca, &clock, domain, tls_key, config);
  }
};

RenewalConfig FastConfig() {
  RenewalConfig config;
  config.renewal_period_ms = 10ull * 24 * 3600 * 1000;  // 10-day certs
  config.lead_ms = 24ull * 3600 * 1000;                 // renew 1 day early
  config.lead_jitter_fraction = 0.1;
  config.retry.initial_delay_ms = 500;
  config.retry.max_delay_ms = 10'000;
  config.retry.max_attempts = 4;
  config.attempt_budget_ms = 10ull * 60 * 1000;
  config.degrade_after = 3;
  config.reattempt_delay_ms = 3600ull * 1000;
  return config;
}

TEST(FlakyResolver, SameSeedSameFaultSchedule) {
  auto schedule = [](uint64_t seed) {
    SimWorld world(seed, /*dns_fault_rate=*/0.5);
    std::vector<DnsFault> faults;
    for (int i = 0; i < 40; ++i) {
      (void)world.resolver.BuildChain(world.domain);
      faults.push_back(world.resolver.last_fault());
    }
    return faults;
  };
  EXPECT_EQ(schedule(7), schedule(7));
  EXPECT_NE(schedule(7), schedule(8));
}

TEST(FlakyResolver, TransportFaultsReturnTypedErrors) {
  SimWorld world(11);
  world.resolver.set_timeout_ms(5000);

  world.resolver.ForceFault(DnsFault::kTimeout, 1);
  uint64_t before = world.clock.NowMs();
  Result<ChainOfTrust> timed_out = world.resolver.BuildChain(world.domain);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.error().code, ErrorCode::kTimedOut);
  EXPECT_EQ(world.clock.NowMs(), before + 5000);  // the timeout burned sim time

  world.resolver.ForceFault(DnsFault::kServfail, 1);
  Result<ChainOfTrust> servfail = world.resolver.BuildChain(world.domain);
  ASSERT_FALSE(servfail.ok());
  EXPECT_EQ(servfail.error().code, ErrorCode::kUnavailable);

  // Forced count exhausted: back to healthy.
  Result<ChainOfTrust> healthy = world.resolver.BuildChain(world.domain);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(ValidateChain(world.dns.suite(), healthy.value(),
                            healthy.value().root_zsk)
                  .ok());
}

TEST(FlakyResolver, DataFaultsCaughtByDownstreamValidation) {
  SimWorld world(12);
  uint64_t now_s = world.clock.NowMs() / 1000;

  world.resolver.ForceFault(DnsFault::kTruncatedRrsig, 1);
  Result<ChainOfTrust> truncated = world.resolver.BuildChain(world.domain);
  ASSERT_TRUE(truncated.ok());  // transport succeeded; the chain is poisoned
  EXPECT_FALSE(ValidateChain(world.dns.suite(), truncated.value(),
                             truncated.value().root_zsk)
                   .ok());

  world.resolver.ForceFault(DnsFault::kExpiredRrsig, 1);
  Result<ChainOfTrust> expired = world.resolver.BuildChain(world.domain);
  ASSERT_TRUE(expired.ok());
  Status expired_status = ValidateChainTimes(expired.value(), now_s, 0);
  ASSERT_FALSE(expired_status.ok());
  EXPECT_EQ(expired_status.error().code, ErrorCode::kOutOfRange);

  // Clock-skewed records fail strict validation but pass once the tolerance
  // covers the one-hour skew the fault injects.
  world.resolver.ForceFault(DnsFault::kClockSkew, 1);
  Result<ChainOfTrust> skewed = world.resolver.BuildChain(world.domain);
  ASSERT_TRUE(skewed.ok());
  EXPECT_FALSE(ValidateChainTimes(skewed.value(), now_s, 0).ok());
  EXPECT_TRUE(ValidateChainTimes(skewed.value(), now_s, 7200).ok());
}

TEST(FlakyCa, ForcedFaultsReturnTypedErrors) {
  SimWorld world(13);
  CertificateSigningRequest csr;
  csr.subject = world.domain;
  csr.public_key = world.tls_key;

  world.flaky_ca.ForceFault(CaFault::kThrottled, 1);
  Result<AcmeOrder> throttled = world.flaky_ca.NewOrder(csr);
  ASSERT_FALSE(throttled.ok());
  EXPECT_EQ(throttled.error().code, ErrorCode::kUnavailable);

  Result<AcmeOrder> order = world.flaky_ca.NewOrder(csr);
  ASSERT_TRUE(order.ok());
  world.dns.SetTxt(world.domain.Child("_acme-challenge"),
                   order.value().challenge_token);
  TxtResolver txt = [&world](const DnsName& name) {
    Result<std::vector<std::string>> r = world.resolver.QueryTxt(name);
    return r.ok() ? r.value() : std::vector<std::string>{};
  };

  world.flaky_ca.ForceFault(CaFault::kDroppedOrder, 1);
  Result<Certificate> dropped = world.flaky_ca.FinalizeOrder(
      order.value(), csr, txt, world.clock.NowMs() / 1000);
  ASSERT_FALSE(dropped.ok());
  EXPECT_EQ(dropped.error().code, ErrorCode::kMissing);

  Result<Certificate> issued = world.flaky_ca.FinalizeOrder(
      order.value(), csr, txt, world.clock.NowMs() / 1000);
  EXPECT_TRUE(issued.ok());
}

TEST(RenewalManager, HealthyWorldIssuesNopeOnSchedule) {
  SimWorld world(21);
  SimulatedPipeline pipeline = world.MakePipeline();
  RenewalManager manager(FastConfig(), &world.clock, &pipeline, 99);

  // ~35 simulated days: the initial issuance plus a few renewals.
  manager.Run(kStartMs + 35ull * 24 * 3600 * 1000);

  EXPECT_GE(manager.stats().nope_issued, 3u);
  EXPECT_EQ(manager.stats().legacy_issued, 0u);
  EXPECT_EQ(manager.stats().downgrades, 0u);
  EXPECT_FALSE(manager.degraded());
  ASSERT_TRUE(pipeline.last_certificate().has_value());
  EXPECT_TRUE(pipeline.last_cert_has_proof());
  // Renewals happened before expiry: no lapse events.
  EXPECT_EQ(manager.EventLog().find("cert_lapsed"), std::string::npos);
}

TEST(RenewalManager, EventLogByteIdenticalForSameSeed) {
  auto run_scenario = [](uint64_t world_seed, uint64_t manager_seed) {
    SimWorld world(world_seed, /*dns_fault_rate=*/0.15, /*ca_fault_rate=*/0.1);
    SimulatedPipeline pipeline = world.MakePipeline();
    RenewalManager manager(FastConfig(), &world.clock, &pipeline, manager_seed);
    manager.Run(kStartMs + 60ull * 24 * 3600 * 1000);
    return manager.EventLog();
  };
  std::string first = run_scenario(5, 6);
  std::string second = run_scenario(5, 6);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // A different seed must actually change the trajectory (jitter, faults).
  EXPECT_NE(first, run_scenario(50, 6));
}

TEST(RenewalManager, DegradesToLegacyAfterExactlyNFailures) {
  SimWorld world(31);
  SimulatedPipeline pipeline = world.MakePipeline();
  RenewalConfig config = FastConfig();
  RenewalManager manager(config, &world.clock, &pipeline, 77);

  // Persistent DNSSEC-path outage: expired RRSIGs on every chain lookup, but
  // plain TXT resolution (the ACME path) stays healthy.
  world.resolver.ForceFault(DnsFault::kExpiredRrsig, SIZE_MAX);

  for (size_t cycle = 1; cycle < config.degrade_after; ++cycle) {
    EXPECT_FALSE(manager.RunOneCycle());
    EXPECT_FALSE(manager.degraded()) << "cycle " << cycle;
    EXPECT_EQ(manager.consecutive_proof_failures(), cycle);
    EXPECT_EQ(manager.stats().legacy_issued, 0u);
  }

  // Failure number N degrades AND issues the legacy certificate in the same
  // cycle, with the downgrade reason recorded.
  EXPECT_TRUE(manager.RunOneCycle());
  EXPECT_TRUE(manager.degraded());
  EXPECT_EQ(manager.consecutive_proof_failures(), config.degrade_after);
  EXPECT_EQ(manager.stats().downgrades, 1u);
  EXPECT_EQ(manager.stats().legacy_issued, 1u);
  EXPECT_EQ(manager.stats().nope_issued, 0u);
  EXPECT_NE(manager.degrade_reason().find("out_of_range"), std::string::npos);
  ASSERT_TRUE(pipeline.last_certificate().has_value());
  EXPECT_FALSE(pipeline.last_cert_has_proof());

  std::string log = manager.EventLog();
  EXPECT_NE(log.find("degraded"), std::string::npos);
  EXPECT_NE(log.find("issued_legacy"), std::string::npos);
  EXPECT_EQ(log.find("issued_nope"), std::string::npos);
}

TEST(RenewalManager, RecoversOnceTheFaultClears) {
  SimWorld world(32);
  SimulatedPipeline pipeline = world.MakePipeline();
  RenewalConfig config = FastConfig();
  RenewalManager manager(config, &world.clock, &pipeline, 78);

  world.resolver.ForceFault(DnsFault::kExpiredRrsig, SIZE_MAX);
  for (size_t cycle = 0; cycle < config.degrade_after; ++cycle) {
    manager.RunOneCycle();
  }
  ASSERT_TRUE(manager.degraded());
  ASSERT_FALSE(pipeline.last_cert_has_proof());

  // Outage ends. The next cycle's proof-path probe succeeds, so the manager
  // returns to NOPE issuance within one renewal period and says so.
  world.resolver.ClearForced();
  EXPECT_TRUE(manager.RunOneCycle());
  EXPECT_FALSE(manager.degraded());
  EXPECT_TRUE(manager.degrade_reason().empty());
  EXPECT_EQ(manager.stats().recoveries, 1u);
  EXPECT_EQ(manager.stats().nope_issued, 1u);
  EXPECT_EQ(manager.consecutive_proof_failures(), 0u);
  EXPECT_TRUE(pipeline.last_cert_has_proof());
  EXPECT_NE(manager.EventLog().find("recovered"), std::string::npos);
}

TEST(RenewalManager, ProofDeadlineOverrunYieldsCancelledNotHang) {
  SimWorld world(33);
  SimulatedPipelineConfig pipe_config;
  pipe_config.prove_ms = 30ull * 60 * 1000;  // proving is slower than the budget
  SimulatedPipeline pipeline = world.MakePipeline(pipe_config);
  RenewalConfig config = FastConfig();
  config.retry.max_attempts = 2;
  RenewalManager manager(config, &world.clock, &pipeline, 79);

  EXPECT_FALSE(manager.RunOneCycle());
  EXPECT_EQ(manager.consecutive_proof_failures(), 1u);
  // The prove stage was cancelled by the attempt deadline, not wedged.
  EXPECT_NE(manager.EventLog().find("cancelled"), std::string::npos);
}

TEST(RenewalManager, FaultSweepDegradesGracefully) {
  auto run_at_rate = [](double rate) {
    SimWorld world(41, rate, rate / 2);
    SimulatedPipeline pipeline = world.MakePipeline();
    RenewalManager manager(FastConfig(), &world.clock, &pipeline, 90);
    manager.Run(kStartMs + 60ull * 24 * 3600 * 1000);
    return manager.stats();
  };
  RenewalStats clean = run_at_rate(0.0);
  RenewalStats faulty = run_at_rate(0.3);
  EXPECT_EQ(clean.stage_faults, 0u);
  EXPECT_GT(faulty.stage_faults, 0u);
  // Even at 30% per-call fault rate, retries keep certificates flowing.
  EXPECT_GE(faulty.nope_issued + faulty.legacy_issued, 3u);
}

}  // namespace
}  // namespace nope
