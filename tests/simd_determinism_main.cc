// Prints FNV-1a digests of (a) a seeded 512-point G1 MSM's affine result and
// (b) a seeded Groth16 proof's 128-byte encoding. Not a gtest: ci.sh runs
// this binary under different NOPE_SIMD / NOPE_THREADS environments and
// diffs the stdout, pinning the cross-process determinism contract (proof
// bytes bit-identical across SIMD backends and thread counts). The env is
// read once per process, so the comparison must span processes.
#include <cstdint>
#include <cstdio>

#include "src/ec/msm.h"
#include "src/groth16/groth16.h"

namespace nope {
namespace {

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t h = 0xcbf29ce484222325ull) {
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ data[i]) * 0x100000001b3ull;
  }
  return h;
}

uint64_t MsmDigest() {
  Rng rng(424242);
  const size_t n = 512;
  std::vector<G1> bases(n);
  std::vector<BigUInt> scalars(n);
  G1 acc = G1Generator();
  for (size_t i = 0; i < n; ++i) {
    bases[i] = acc;
    acc = acc.Double().Add(G1Generator());
    scalars[i] = BigUInt::RandomBelow(&rng, Fr::params().modulus_big);
  }
  G1Affine res = Msm(bases, scalars).ToAffine();
  Bytes enc = res.x.ToBigUInt().ToBytes(32);
  Bytes enc_y = res.y.ToBigUInt().ToBytes(32);
  uint64_t h = Fnv1a(enc.data(), enc.size());
  h = Fnv1a(enc_y.data(), enc_y.size(), h);
  return h;
}

uint64_t ProofDigest() {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(35));
  Var w = cs.AddWitness(Fr::FromU64(3));
  Fr w_fr = Fr::FromU64(3);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));

  Rng rng(98765);
  auto pk = groth16::Setup(cs, &rng);
  auto proof = groth16::Prove(pk, cs, &rng);
  if (!groth16::Verify(pk.vk, {Fr::FromU64(35)}, proof)) {
    std::fprintf(stderr, "proof failed to verify\n");
    std::exit(2);
  }
  Bytes enc = proof.ToBytes();
  return Fnv1a(enc.data(), enc.size());
}

}  // namespace
}  // namespace nope

int main() {
  // Backend name goes to stderr: stdout must be identical across backends
  // so ci.sh can diff it directly.
  std::fprintf(stderr, "backend=%s\n", nope::Fr::SimdBackendName());
  std::printf("msm_digest=%016llx\n",
              static_cast<unsigned long long>(nope::MsmDigest()));
  std::printf("proof_digest=%016llx\n",
              static_cast<unsigned long long>(nope::ProofDigest()));
  return 0;
}
