#include "src/r1cs/constraint_system.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

TEST(ConstraintSystem, ConstantOneIsVariableZero) {
  ConstraintSystem cs;
  EXPECT_EQ(cs.NumVariables(), 1u);
  EXPECT_EQ(cs.NumPublic(), 1u);
  EXPECT_EQ(cs.ValueOf(kOneVar), Fr::One());
}

TEST(ConstraintSystem, PublicBeforeWitnessEnforced) {
  ConstraintSystem cs;
  cs.AddPublicInput(Fr::FromU64(3));
  cs.AddWitness(Fr::FromU64(4));
  EXPECT_THROW(cs.AddPublicInput(Fr::FromU64(5)), std::logic_error);
}

TEST(ConstraintSystem, SatisfactionDetection) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(3));
  Var y = cs.AddWitness(Fr::FromU64(9));
  cs.Enforce(LC(x), LC(x), LC(y));  // x * x == y
  EXPECT_TRUE(cs.IsSatisfied());

  cs.SetValueForTest(y, Fr::FromU64(10));
  size_t bad = 99;
  EXPECT_FALSE(cs.IsSatisfied(&bad));
  EXPECT_EQ(bad, 0u);
}

TEST(ConstraintSystem, LinearCombinationAlgebra) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(5));
  Var y = cs.AddWitness(Fr::FromU64(7));
  LC lc = LC(x) * Fr::FromU64(2) + LC(y) - LC::Constant(Fr::FromU64(3));
  EXPECT_EQ(cs.Eval(lc), Fr::FromU64(14));
  LC zero = LC(x) - LC(x);
  EXPECT_EQ(cs.Eval(zero), Fr::Zero());
  EXPECT_TRUE((LC(x) * Fr::Zero()).IsEmpty());
}

TEST(ConstraintSystem, EnforceEqualAndBoolean) {
  ConstraintSystem cs;
  Var b = cs.AddWitness(Fr::One());
  cs.EnforceBoolean(b);
  cs.EnforceEqual(LC(b), LC::Constant(Fr::One()));
  EXPECT_TRUE(cs.IsSatisfied());

  ConstraintSystem cs2;
  Var nb = cs2.AddWitness(Fr::FromU64(2));
  cs2.EnforceBoolean(nb);
  EXPECT_FALSE(cs2.IsSatisfied());
}

TEST(ConstraintSystem, CountModeTracksWithoutStoring) {
  ConstraintSystem cs(ConstraintSystem::Mode::kCount);
  Var x = cs.AddWitness(Fr::FromU64(2));
  for (int i = 0; i < 100; ++i) {
    cs.Enforce(LC(x), LC(x), LC::Constant(Fr::FromU64(4)));
  }
  EXPECT_EQ(cs.NumConstraints(), 100u);
  EXPECT_TRUE(cs.constraints().empty());
  EXPECT_THROW(cs.IsSatisfied(), std::logic_error);
}

}  // namespace
}  // namespace nope
