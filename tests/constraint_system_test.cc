#include "src/r1cs/constraint_system.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

TEST(ConstraintSystem, ConstantOneIsVariableZero) {
  ConstraintSystem cs;
  EXPECT_EQ(cs.NumVariables(), 1u);
  EXPECT_EQ(cs.NumPublic(), 1u);
  EXPECT_EQ(cs.ValueOf(kOneVar), Fr::One());
}

TEST(ConstraintSystem, PublicBeforeWitnessEnforced) {
  ConstraintSystem cs;
  cs.AddPublicInput(Fr::FromU64(3));
  cs.AddWitness(Fr::FromU64(4));
  EXPECT_THROW(cs.AddPublicInput(Fr::FromU64(5)), std::logic_error);
}

TEST(ConstraintSystem, SatisfactionDetection) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(3));
  Var y = cs.AddWitness(Fr::FromU64(9));
  cs.Enforce(LC(x), LC(x), LC(y));  // x * x == y
  EXPECT_TRUE(cs.IsSatisfied());

  cs.SetValueForTest(y, Fr::FromU64(10));
  size_t bad = 99;
  EXPECT_FALSE(cs.IsSatisfied(&bad));
  EXPECT_EQ(bad, 0u);
}

TEST(ConstraintSystem, LinearCombinationAlgebra) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(5));
  Var y = cs.AddWitness(Fr::FromU64(7));
  LC lc = LC(x) * Fr::FromU64(2) + LC(y) - LC::Constant(Fr::FromU64(3));
  EXPECT_EQ(cs.Eval(lc), Fr::FromU64(14));
  LC zero = LC(x) - LC(x);
  EXPECT_EQ(cs.Eval(zero), Fr::Zero());
  EXPECT_TRUE((LC(x) * Fr::Zero()).IsEmpty());
}

TEST(ConstraintSystem, EnforceEqualAndBoolean) {
  ConstraintSystem cs;
  Var b = cs.AddWitness(Fr::One());
  cs.EnforceBoolean(b);
  cs.EnforceEqual(LC(b), LC::Constant(Fr::One()));
  EXPECT_TRUE(cs.IsSatisfied());

  ConstraintSystem cs2;
  Var nb = cs2.AddWitness(Fr::FromU64(2));
  cs2.EnforceBoolean(nb);
  EXPECT_FALSE(cs2.IsSatisfied());
}

TEST(ConstraintSystem, CountModeTracksWithoutStoring) {
  ConstraintSystem cs(ConstraintSystem::Mode::kCount);
  Var x = cs.AddWitness(Fr::FromU64(2));
  for (int i = 0; i < 100; ++i) {
    cs.Enforce(LC(x), LC(x), LC::Constant(Fr::FromU64(4)));
  }
  EXPECT_EQ(cs.NumConstraints(), 100u);
  EXPECT_TRUE(cs.constraints().empty());
  EXPECT_THROW(cs.IsSatisfied(), std::logic_error);
}

TEST(LinearCombination, CanonicalizeMergesDuplicateVariables) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(5));
  Var y = cs.AddWitness(Fr::FromU64(7));
  LC lc;
  lc.Add(y, Fr::FromU64(2));
  lc.Add(x, Fr::FromU64(3));
  lc.Add(y, Fr::FromU64(4));  // duplicate var: must merge to 6y
  lc.Add(x, Fr::FromU64(1));  // and 4x
  Fr before = cs.Eval(lc);
  lc.Canonicalize();
  EXPECT_EQ(cs.Eval(lc), before);
  ASSERT_EQ(lc.terms().size(), 2u);
  EXPECT_EQ(lc.terms()[0].first, x);  // sorted by variable id
  EXPECT_EQ(lc.terms()[0].second, Fr::FromU64(4));
  EXPECT_EQ(lc.terms()[1].first, y);
  EXPECT_EQ(lc.terms()[1].second, Fr::FromU64(6));
}

TEST(LinearCombination, CanonicalizeDropsZeroCoefficients) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(5));
  Var y = cs.AddWitness(Fr::FromU64(7));
  LC lc;
  lc.Add(x, Fr::Zero());  // explicit zero
  lc.Add(y, Fr::One());
  lc.Add(y, -Fr::One());  // cancels to zero after merging
  lc.Canonicalize();
  EXPECT_TRUE(lc.IsEmpty());
  EXPECT_TRUE(lc.IsConstant());
  EXPECT_EQ(lc.ConstantValue(), Fr::Zero());

  LC mixed = LC::Constant(Fr::FromU64(9)) + LC(x) - LC(x);
  mixed.Canonicalize();
  EXPECT_TRUE(mixed.IsConstant());
  EXPECT_EQ(mixed.ConstantValue(), Fr::FromU64(9));
  EXPECT_FALSE((LC(x) + LC::Constant(Fr::One())).IsConstant());
}

TEST(LinearCombination, EvalLcAgainstExplicitAssignment) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(5));
  LC lc = LC(x) * Fr::FromU64(3) + LC::Constant(Fr::FromU64(2));
  std::vector<Fr> values = {Fr::One(), Fr::FromU64(10)};
  EXPECT_EQ(EvalLc(lc, values), Fr::FromU64(32));
  EXPECT_EQ(cs.Eval(lc), Fr::FromU64(17));  // system's own value untouched
}

TEST(ConstraintSystem, SatisfiedByExternalAssignment) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(3));
  Var y = cs.AddWitness(Fr::FromU64(9));
  cs.Enforce(LC(x), LC(x), LC(y));
  std::vector<Fr> good = {Fr::One(), Fr::FromU64(4), Fr::FromU64(16)};
  EXPECT_TRUE(cs.SatisfiedBy(good));
  std::vector<Fr> bad = {Fr::One(), Fr::FromU64(4), Fr::FromU64(15)};
  size_t which = 99;
  EXPECT_FALSE(cs.SatisfiedBy(bad, &which));
  EXPECT_EQ(which, 0u);
}

TEST(ConstraintSystem, ScopesRecordConstraintAndVarSpans) {
  ConstraintSystem cs;
  Var x = cs.AddWitness(Fr::FromU64(2));
  {
    GadgetScope outer(&cs, "outer");
    cs.Enforce(LC(x), LC(x), LC::Constant(Fr::FromU64(4)));
    {
      GadgetScope inner(&cs, "inner");
      Var y = cs.AddWitness(Fr::FromU64(8));
      cs.Enforce(LC(x), LC(y), LC::Constant(Fr::FromU64(16)));
    }
    cs.Enforce(LC(x), LC::Constant(Fr::One()), LC(x));
  }
  ASSERT_EQ(cs.scopes().size(), 2u);
  // Spans are appended at BeginScope, so enclosing scopes come first.
  const ScopeSpan& inner = cs.scopes()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner.first_constraint, 1u);
  EXPECT_EQ(inner.num_constraints, 1u);
  EXPECT_EQ(inner.num_vars, 1u);
  const ScopeSpan& outer = cs.scopes()[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(outer.first_constraint, 0u);
  EXPECT_EQ(outer.num_constraints, 3u);
}

TEST(ConstraintSystem, UnbalancedEndScopeThrows) {
  ConstraintSystem cs;
  EXPECT_THROW(cs.EndScope(), std::logic_error);
}

}  // namespace
}  // namespace nope
