// Checks the analysis engine against the paper's literal Figure 3, row by
// row, for all 16 attacker subsets and all four schemes.
#include "src/core/analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/nope.h"

namespace nope {
namespace {

struct PaperRow {
  bool legacy, ca, ct, dnssec;
  // Impersonated: DV, DV+, DCE, NOPE.
  bool imp[4];
  // Time to detect as strings from the paper ("-", "<=24h", ">24h", "inf").
  const char* detect[4];
  // Can be revoked.
  bool rev[4];
};

// Figure 3, transcribed from the paper.
const PaperRow kPaperRows[] = {
    // legacy ca ct dnssec | DV DV+ DCE NOPE
    {false, false, false, false, {false, false, false, false},
     {"-", "-", "-", "-"}, {true, true, false, true}},
    {true, false, false, false, {true, false, false, false},
     {"<=24h", "-", "-", "-"}, {true, true, false, true}},
    {false, true, false, false, {true, true, false, false},
     {"<=24h", "<=24h", "-", "-"}, {false, false, false, false}},
    {true, true, false, false, {true, true, false, false},
     {"<=24h", "<=24h", "-", "-"}, {false, false, false, false}},
    {false, false, true, false, {false, false, false, false},
     {"-", "-", "-", "-"}, {true, true, false, true}},
    {true, false, true, false, {true, false, false, false},
     {">24h", "-", "-", "-"}, {true, true, false, true}},
    {false, true, true, false, {true, true, false, false},
     {">24h", ">24h", "-", "-"}, {false, false, false, false}},
    {true, true, true, false, {true, true, false, false},
     {">24h", ">24h", "-", "-"}, {false, false, false, false}},
    {false, false, false, true, {false, false, true, false},
     {"-", "-", "inf", "-"}, {true, true, false, true}},
    {true, false, false, true, {true, true, true, true},
     {"<=24h", "<=24h", "inf", "<=24h"}, {true, true, false, true}},
    {false, true, false, true, {true, true, true, true},
     {"<=24h", "<=24h", "inf", "<=24h"}, {false, false, false, false}},
    {true, true, false, true, {true, true, true, true},
     {"<=24h", "<=24h", "inf", "<=24h"}, {false, false, false, false}},
    {false, false, true, true, {false, false, true, false},
     {"-", "-", "inf", "-"}, {true, true, false, true}},
    {true, false, true, true, {true, true, true, true},
     {">24h", ">24h", "inf", ">24h"}, {true, true, false, true}},
    {false, true, true, true, {true, true, true, true},
     {">24h", ">24h", "inf", ">24h"}, {false, false, false, false}},
    {true, true, true, true, {true, true, true, true},
     {">24h", ">24h", "inf", ">24h"}, {false, false, false, false}},
};

class Figure3RowTest : public ::testing::TestWithParam<int> {};

TEST_P(Figure3RowTest, MatchesPaper) {
  const PaperRow& row = kPaperRows[GetParam()];
  AttackerModel attacker{row.legacy, row.ca, row.ct, row.dnssec};
  for (int s = 0; s < 4; ++s) {
    AnalysisOutcome out = Analyze(static_cast<AuthScheme>(s), attacker);
    EXPECT_EQ(out.impersonated, row.imp[s])
        << "scheme " << AuthSchemeName(static_cast<AuthScheme>(s));
    EXPECT_STREQ(DetectionTimeName(out.detection), row.detect[s])
        << "scheme " << AuthSchemeName(static_cast<AuthScheme>(s));
    EXPECT_EQ(out.revocable, row.rev[s])
        << "scheme " << AuthSchemeName(static_cast<AuthScheme>(s));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSixteenRows, Figure3RowTest, ::testing::Range(0, 16));

TEST(Figure3Properties, NopeDominatesDvAndDce) {
  // NOPE is impersonated only if both DV (or a CA path) and DCE would be:
  // strictly-better security than either alone (§3.3).
  for (const PaperRow& row : kPaperRows) {
    AttackerModel a{row.legacy, row.ca, row.ct, row.dnssec};
    bool nope = Analyze(AuthScheme::kNope, a).impersonated;
    bool dv = Analyze(AuthScheme::kDv, a).impersonated;
    bool dce = Analyze(AuthScheme::kDce, a).impersonated;
    EXPECT_LE(nope, dv && dce);
  }
}

TEST(Figure3Properties, DceNeverRevocableNorDetectable) {
  for (const PaperRow& row : kPaperRows) {
    AttackerModel a{row.legacy, row.ca, row.ct, row.dnssec};
    AnalysisOutcome out = Analyze(AuthScheme::kDce, a);
    EXPECT_FALSE(out.revocable);
    if (out.impersonated) {
      EXPECT_EQ(out.detection, DetectionTime::kNever);
    }
  }
}

TEST(Figure3Properties, MatrixOrderMatchesPaper) {
  auto matrix = BuildFigure3Matrix();
  ASSERT_EQ(matrix.size(), 16u);
  for (size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(matrix[i].attacker.legacy_dns, kPaperRows[i].legacy) << i;
    EXPECT_EQ(matrix[i].attacker.ca, kPaperRows[i].ca) << i;
    EXPECT_EQ(matrix[i].attacker.ct, kPaperRows[i].ct) << i;
    EXPECT_EQ(matrix[i].attacker.dnssec, kPaperRows[i].dnssec) << i;
  }
}

TEST(NopeVerifyStatus, NamesAreCompleteAndDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumNopeVerifyStatuses; ++i) {
    std::string name = NopeVerifyStatusName(static_cast<NopeVerifyStatus>(i));
    EXPECT_NE(name, "unknown") << "status " << i;
    for (const std::string& prior : names) {
      EXPECT_NE(name, prior) << "status " << i;
    }
    names.push_back(name);
  }
}

}  // namespace
}  // namespace nope
