// Deterministic fault-injection harness over the untrusted-input surface.
//
// Each campaign takes a valid artifact (SAN list, Groth16 proof, certificate,
// DCE bundle, DNSSEC records), applies >= 1000 seeded structural mutations
// (bit flips, truncation/extension, length-field corruption, field swaps with
// a second valid donor artifact), and asserts two properties on the verifier:
//
//  (a) no input ever crashes or throws — malformed bytes come back as typed
//      errors (Result/Status), never as exceptions or UB;
//  (b) the verifier never accepts a mutant unless it round-trips
//      byte-identically to a valid artifact. The Try* parsers guarantee
//      canonical encodings (parse-ok implies re-serialize == input), which is
//      what makes this oracle exact.
//
// All randomness is seeded, so a failure reproduces from the seed and
// iteration number alone.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/mutator.h"
#include "src/core/nope.h"

namespace nope {
namespace {

constexpr uint64_t kNow = 1750000000;

Error Sentinel() { return Error(ErrorCode::kMissing, "uninitialized"); }

// One shared environment: the Groth16 trusted setup dominates the fixture
// cost, so it is paid once for the whole suite (same pattern as
// end_to_end_test).
struct Environment {
  Rng rng{9001};
  DnssecHierarchy dns{CryptoSuite::Toy(), 9002};
  CtLog log1{1, &rng};
  CtLog log2{2, &rng};
  CertificateAuthority ca{"lets-encrypt-sim", {&log1, &log2}, &rng};
  DnsName domain = DnsName::FromString("nope-tools.org");
  DnsName donor_domain = DnsName::FromString("donor-zone.org");
  EcdsaKeyPair tls_key;
  EcdsaKeyPair donor_tls_key;
  NopeDeployment deployment;

  CertificateChain nope_chain;   // NOPE-issued leaf for `domain`
  Bytes proof_bytes;             // the canonical 128-byte proof from its SANs
  Bytes donor_proof_bytes;       // second valid encoding (randomized proof)
  std::vector<Fr> public_inputs;
  Certificate legacy_cert;       // donor: valid certificate without NOPE SANs
  DceBundle bundle;              // valid DCE bundle for `domain`
  DceBundle donor_bundle;        // valid DCE bundle for `donor_domain`

  Environment() {
    dns.AddZone(DnsName::FromString("org"));
    dns.AddZone(domain);
    dns.AddZone(donor_domain);
    tls_key = GenerateEcdsaKey(&rng);
    donor_tls_key = GenerateEcdsaKey(&rng);
    deployment = NopeTrustedSetup(&dns, domain, StatementOptions::Full(), &rng);

    auto issued = IssueCertificate(&deployment, &dns, &ca, domain, tls_key.pub.Encode(), kNow,
                                   &rng, /*with_nope=*/true);
    if (!issued.has_value()) {
      throw std::logic_error("fixture issuance failed");
    }
    nope_chain = issued->chain;
    Result<Bytes> decoded = DecodeProofFromSans(nope_chain.leaf.body.sans, domain);
    if (!decoded.ok()) {
      throw std::logic_error("fixture proof decode failed");
    }
    proof_bytes = decoded.value();
    groth16::Proof proof = groth16::Proof::FromBytes(proof_bytes);
    donor_proof_bytes = groth16::RandomizeProof(deployment.vk(), proof, &rng).ToBytes();
    public_inputs = NopePublicInputs(
        deployment.params, domain, TlsKeyDigest(nope_chain.leaf.body.subject_public_key),
        CaNameDigest(nope_chain.leaf.body.issuer_organization),
        TruncateTimestamp(nope_chain.leaf.body.not_before));

    CertificateSigningRequest legacy_csr;
    legacy_csr.subject = donor_domain;
    legacy_csr.public_key = donor_tls_key.pub.Encode();
    legacy_cert = ca.IssueWithoutValidation(legacy_csr, kNow);

    bundle = BuildDceBundle(&dns, domain, tls_key.pub.Encode());
    donor_bundle = BuildDceBundle(&dns, donor_domain, donor_tls_key.pub.Encode());
  }

  TrustStore Trust() { return TrustStore{ca.root_public_key(), 2}; }
};

Environment* env() {
  static Environment* instance = new Environment();
  return instance;
}

// The §7 degradation contract must hold for every possible outcome, not just
// the ones a specific mutant happens to hit.
void CheckDegradationInvariants(const NopeClientResult& verdict, int iteration) {
  switch (verdict.status) {
    case NopeVerifyStatus::kOk:
      EXPECT_TRUE(verdict.accepted) << "iteration " << iteration;
      EXPECT_TRUE(verdict.nope_validated) << "iteration " << iteration;
      EXPECT_TRUE(verdict.downgrade_reason.empty()) << "iteration " << iteration;
      break;
    case NopeVerifyStatus::kNoNopeProof:
    case NopeVerifyStatus::kBadProofEncoding:
      // Graceful degradation: legacy-only acceptance with a recorded reason.
      EXPECT_TRUE(verdict.accepted) << "iteration " << iteration;
      EXPECT_FALSE(verdict.nope_validated) << "iteration " << iteration;
      EXPECT_FALSE(verdict.downgrade_reason.empty()) << "iteration " << iteration;
      break;
    case NopeVerifyStatus::kLegacyFailure:
    case NopeVerifyStatus::kProofRejected:
    case NopeVerifyStatus::kTimestampMismatch:
      EXPECT_FALSE(verdict.accepted) << "iteration " << iteration;
      EXPECT_FALSE(verdict.nope_validated) << "iteration " << iteration;
      break;
  }
}

// --- Campaign 1: SAN strings --------------------------------------------------

TEST(FaultInjection, SanMutationCampaign) {
  Environment* e = env();
  Mutator mut(0x5A11);
  const std::vector<std::string> original = e->nope_chain.leaf.body.sans;
  int decode_ok = 0;
  for (int i = 0; i < 1200; ++i) {
    std::vector<std::string> sans = original;
    uint64_t op = mut.rng()->NextBelow(10);
    if (op == 0 && sans.size() > 1) {
      sans.erase(sans.begin() + static_cast<long>(mut.rng()->NextBelow(sans.size())));
    } else if (op == 1) {
      sans.push_back(sans[mut.rng()->NextBelow(sans.size())]);
    } else if (op == 2 && sans.size() > 1) {
      size_t a = mut.rng()->NextBelow(sans.size());
      size_t b = mut.rng()->NextBelow(sans.size());
      std::swap(sans[a], sans[b]);
    } else {
      size_t idx = mut.rng()->NextBelow(sans.size());
      sans[idx] = mut.MutateString(sans[idx]);
    }

    // The decode boundary itself must be exception-free...
    Result<Bytes> decoded = Sentinel();
    ASSERT_NO_THROW(decoded = DecodeProofFromSans(sans, e->domain)) << "iteration " << i;
    if (decoded.ok()) {
      ++decode_ok;
    }

    // ...and so must the full client path, with the mutated SANs riding in a
    // freshly signed certificate (otherwise the legacy signature check would
    // shadow the SAN decoder entirely).
    CertificateSigningRequest csr;
    csr.subject = e->domain;
    csr.public_key = e->tls_key.pub.Encode();
    csr.sans = sans;
    CertificateChain chain{e->ca.IssueWithoutValidation(csr, kNow), e->ca.intermediate()};
    NopeClientResult verdict;
    ASSERT_NO_THROW(verdict = NopeClientVerify(e->deployment, chain, e->Trust(), e->domain,
                                               kNow + 60, nullptr))
        << "iteration " << i;
    CheckDegradationInvariants(verdict, i);
    if (verdict.status == NopeVerifyStatus::kOk) {
      // Acceptance requires the embedded proof to round-trip byte-identically.
      ASSERT_TRUE(decoded.ok()) << "iteration " << i;
      EXPECT_EQ(decoded.value(), e->proof_bytes) << "iteration " << i;
    }
  }
  // The campaign must exercise both sides of the boundary: most mutants fail
  // to decode, but benign list mutations (duplicate/swapped entries) pass.
  EXPECT_GT(decode_ok, 0);
  EXPECT_LT(decode_ok, 1200);
}

// --- Campaign 2: Groth16 proof bytes ------------------------------------------

TEST(FaultInjection, ProofBytesMutationCampaign) {
  Environment* e = env();
  Mutator mut(0x9F00F);
  int parse_ok = 0;
  for (int i = 0; i < 1500; ++i) {
    Bytes m = (i % 4 == 0) ? mut.Mutate(e->proof_bytes, e->donor_proof_bytes)
                           : mut.Mutate(e->proof_bytes);
    Result<groth16::Proof> parsed = Sentinel();
    ASSERT_NO_THROW(parsed = groth16::Proof::TryFromBytes(m)) << "iteration " << i;
    if (!parsed.ok()) {
      continue;
    }
    ++parse_ok;
    // Canonical encodings: decode-ok implies byte-identical re-encode.
    EXPECT_EQ(parsed.value().ToBytes(), m) << "iteration " << i;
    if (m == e->proof_bytes || m == e->donor_proof_bytes) {
      continue;  // a verbatim valid proof may of course verify
    }
    EXPECT_FALSE(groth16::Verify(e->deployment.vk(), e->public_inputs, parsed.value()))
        << "iteration " << i;
  }
  // Bit flips inside a G1 x-coordinate frequently land on another curve
  // point, so a healthy fraction of mutants must reach the verify stage.
  EXPECT_GT(parse_ok, 0);
  EXPECT_LT(parse_ok, 1500);
}

// --- Campaign 3: certificates -------------------------------------------------

TEST(FaultInjection, CertificateMutationCampaign) {
  Environment* e = env();
  Mutator mut(0xCE47);
  const Bytes wire = e->nope_chain.leaf.Serialize();
  const Bytes donor_wire = e->legacy_cert.Serialize();
  int parse_ok = 0;
  for (int i = 0; i < 1200; ++i) {
    Bytes m = (i % 3 == 0) ? mut.Mutate(wire, donor_wire) : mut.Mutate(wire);
    Result<Certificate> parsed = Sentinel();
    ASSERT_NO_THROW(parsed = Certificate::TryDeserialize(m)) << "iteration " << i;
    if (!parsed.ok()) {
      continue;
    }
    ++parse_ok;
    EXPECT_EQ(parsed.value().Serialize(), m) << "iteration " << i;
    CertificateChain chain{parsed.value(), e->ca.intermediate()};
    NopeClientResult verdict;
    ASSERT_NO_THROW(verdict = NopeClientVerify(e->deployment, chain, e->Trust(), e->domain,
                                               kNow + 60, nullptr))
        << "iteration " << i;
    CheckDegradationInvariants(verdict, i);
    if (m != wire) {
      // Every certificate byte is covered by the issuer signature (or IS the
      // signature), so any non-identical mutant must fail the legacy checks.
      EXPECT_NE(verdict.status, NopeVerifyStatus::kOk) << "iteration " << i;
      EXPECT_FALSE(verdict.accepted) << "iteration " << i;
    }
  }
  EXPECT_GT(parse_ok, 0);
  EXPECT_LT(parse_ok, 1200);
}

// --- Campaign 4: DCE bundles --------------------------------------------------

TEST(FaultInjection, DceBundleMutationCampaign) {
  Environment* e = env();
  Mutator mut(0xDCE0);
  const Bytes wire = e->bundle.Serialize();
  const Bytes donor_wire = e->donor_bundle.Serialize();
  const DnskeyRdata anchor = e->dns.root().ZskRdata();
  int parse_ok = 0;
  for (int i = 0; i < 1200; ++i) {
    Bytes m = (i % 3 == 0) ? mut.Mutate(wire, donor_wire) : mut.Mutate(wire);
    Result<DceBundle> parsed = Sentinel();
    ASSERT_NO_THROW(parsed = DceBundle::TryDeserialize(m)) << "iteration " << i;
    if (!parsed.ok()) {
      continue;
    }
    ++parse_ok;
    EXPECT_EQ(parsed.value().Serialize(), m) << "iteration " << i;
    Status verdict;
    ASSERT_NO_THROW(verdict = DceVerify(CryptoSuite::Toy(), parsed.value(), e->domain,
                                        e->tls_key.pub.Encode(), anchor))
        << "iteration " << i;
    if (m != wire) {
      EXPECT_FALSE(verdict.ok()) << "iteration " << i;
    } else {
      EXPECT_TRUE(verdict.ok()) << "iteration " << i;
    }
  }
  // Parse-ok mutants are rare (strict framing + the canonical-encoding rule)
  // but must exist — e.g. whole-donor swaps parse fine and fail verification.
  EXPECT_GT(parse_ok, 0);
  EXPECT_LT(parse_ok, 1200);
}

// --- Campaign 5: DNSSEC records -----------------------------------------------

TEST(FaultInjection, DnssecRecordMutationCampaign) {
  Environment* e = env();
  Mutator mut(0xD1139EC);
  const ChainOfTrust chain = e->dns.BuildChain(e->domain);

  const Bytes dnskey_wire = chain.root_zsk.Encode();
  const Bytes ds_wire = chain.leaf_ds.rrset.rdatas.at(0);
  const Bytes rrsig_wire = chain.leaf_ds.rrsig.Encode();
  const Bytes name_wire = e->domain.ToWire();
  const Bytes donor_name_wire = e->donor_domain.ToWire();

  for (int i = 0; i < 1200; ++i) {
    switch (i % 4) {
      case 0: {
        Bytes m = mut.Mutate(dnskey_wire);
        Result<DnskeyRdata> parsed = Sentinel();
        ASSERT_NO_THROW(parsed = DnskeyRdata::TryDecode(m)) << "iteration " << i;
        if (parsed.ok()) {
          EXPECT_EQ(parsed.value().Encode(), m) << "iteration " << i;
        }
        break;
      }
      case 1: {
        Bytes m = mut.Mutate(ds_wire);
        Result<DsRdata> parsed = Sentinel();
        ASSERT_NO_THROW(parsed = DsRdata::TryDecode(m)) << "iteration " << i;
        if (parsed.ok()) {
          EXPECT_EQ(parsed.value().Encode(), m) << "iteration " << i;
        }
        break;
      }
      case 2: {
        Bytes m = mut.Mutate(rrsig_wire, dnskey_wire);
        Result<RrsigRdata> parsed = Sentinel();
        ASSERT_NO_THROW(parsed = RrsigRdata::TryDecode(m)) << "iteration " << i;
        if (parsed.ok()) {
          EXPECT_EQ(parsed.value().Encode(), m) << "iteration " << i;
        }
        break;
      }
      default: {
        Bytes m = mut.Mutate(name_wire, donor_name_wire);
        size_t pos = 0;
        Result<DnsName> parsed = Sentinel();
        ASSERT_NO_THROW(parsed = DnsName::TryFromWire(m, &pos)) << "iteration " << i;
        if (parsed.ok()) {
          // Injective up to the bytes consumed.
          EXPECT_EQ(parsed.value().ToWire(), Bytes(m.begin(), m.begin() + pos))
              << "iteration " << i;
        }
        break;
      }
    }
  }

  // Chain-level tamper loop: flipping any bit of any signed byte (rdatas and
  // signatures are all covered, unlike TTLs) must fail validation.
  ASSERT_TRUE(ValidateChain(e->dns.suite(), chain, chain.root_zsk).ok());
  Rng tamper_rng(0xC4A17);
  for (int i = 0; i < 300; ++i) {
    ChainOfTrust bad = chain;
    std::vector<Bytes*> targets;
    targets.push_back(&bad.leaf_ksk.public_key);
    for (Bytes& rdata : bad.leaf_ds.rrset.rdatas) targets.push_back(&rdata);
    targets.push_back(&bad.leaf_ds.rrsig.signature);
    for (ChainLink& link : bad.levels) {
      for (Bytes& rdata : link.dnskey.rrset.rdatas) targets.push_back(&rdata);
      targets.push_back(&link.dnskey.rrsig.signature);
      for (Bytes& rdata : link.ds.rrset.rdatas) targets.push_back(&rdata);
      targets.push_back(&link.ds.rrsig.signature);
    }
    Bytes* target = targets[tamper_rng.NextBelow(targets.size())];
    if (target->empty()) {
      continue;
    }
    (*target)[tamper_rng.NextBelow(target->size())] ^=
        static_cast<uint8_t>(1u << tamper_rng.NextBelow(8));
    Status verdict;
    ASSERT_NO_THROW(verdict = ValidateChain(e->dns.suite(), bad, chain.root_zsk))
        << "iteration " << i;
    EXPECT_FALSE(verdict.ok()) << "iteration " << i;
  }
}

// --- Error-code name coverage -------------------------------------------------

TEST(FaultInjection, ErrorCodeNamesAreCompleteAndDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumErrorCodes; ++i) {
    std::string name = ErrorCodeName(static_cast<ErrorCode>(i));
    EXPECT_NE(name, "unknown") << "code " << i;
    for (const std::string& prior : names) {
      EXPECT_NE(name, prior) << "code " << i;
    }
    names.push_back(name);
  }
}

}  // namespace
}  // namespace nope
