// Fleet simulator acceptance (ISSUE 8): a 10^5-domain, 30-day fleet under
// Poisson fault bursts replays byte-identically (digest, metrics snapshot,
// stats) across repeated runs and NOPE_THREADS values, misses zero
// certificate expiries at 1x offered load, and under 4x load plus bursts
// degrades domains to legacy issuance and sheds proving jobs — recorded,
// never crashed. Plus unit coverage for the FaultBurstDriver's seeded
// schedule.
#include "src/fleet/fleet_sim.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/threadpool.h"
#include "src/fleet/fault_burst.h"

namespace nope {
namespace {

// The fields two identical runs must agree on, flattened for one EXPECT_EQ.
std::string Fingerprint(const FleetReport& report) {
  return report.SummaryJson() + "\n" + report.metrics_json;
}

FleetConfig SmallConfig() {
  FleetConfig config;
  config.domains = 1'000;
  config.horizon_ms = 20ull * 24 * 3600 * 1000;
  config.seed = 7;
  config.bursts.bursts_per_day = 1.0;  // ~60 expected arrivals across 3 deps
  config.keep_events = 32;
  return config;
}

TEST(FaultBurstDriver, SeededScheduleReplaysExactly) {
  FaultBurstConfig config;
  config.bursts_per_day = 4.0;
  auto trace = [&](uint64_t seed) {
    FaultBurstDriver driver(config, seed, /*start_ms=*/0);
    std::vector<uint64_t> transitions;
    uint64_t horizon = 10ull * 24 * 3600 * 1000;
    while (true) {
      uint64_t next = driver.NextTransitionMs();
      if (next > horizon) {
        break;
      }
      driver.AdvanceTo(next, [&](uint64_t t, FaultBurstDriver::Dep dep,
                                 bool active) {
        transitions.push_back(t * 8 + static_cast<uint64_t>(dep) * 2 + active);
      });
    }
    return transitions;
  };
  std::vector<uint64_t> a = trace(3);
  EXPECT_EQ(a, trace(3));
  EXPECT_NE(a, trace(4));
  EXPECT_GT(a.size(), 10u);  // ~80 bursts expected in 10 days at 4/day/dep
}

TEST(FaultBurstDriver, RatesElevateDuringBurstAndRecover) {
  FaultBurstConfig config;
  config.bursts_per_day = 24.0;  // frequent enough to see both states quickly
  config.dns_baseline_fault_rate = 0.01;
  config.dns_burst_fault_rate = 0.9;
  FaultBurstDriver driver(config, /*seed=*/5, /*start_ms=*/0);
  bool saw_active = false;
  bool saw_quiet = false;
  uint64_t now = 0;
  for (int step = 0; step < 200 && !(saw_active && saw_quiet); ++step) {
    now = driver.NextTransitionMs();
    driver.AdvanceTo(now, nullptr);
    if (driver.active(FaultBurstDriver::Dep::kDns)) {
      saw_active = true;
      EXPECT_EQ(driver.DnsFaultRate(), 0.9);
    } else {
      saw_quiet = true;
      EXPECT_EQ(driver.DnsFaultRate(), 0.01);
    }
  }
  EXPECT_TRUE(saw_active);
  EXPECT_TRUE(saw_quiet);
  EXPECT_GE(driver.bursts_started(), 1u);
  // Disabled bursts never schedule a transition.
  FaultBurstConfig off;
  off.bursts_per_day = 0.0;
  FaultBurstDriver idle(off, 5, 0);
  EXPECT_EQ(idle.NextTransitionMs(), UINT64_MAX);
  EXPECT_EQ(idle.ProverCostMultiplier(), 1.0);
}

// TSan-stage target: small enough to run sanitized, still covering bursts,
// shedding, canaries, and the replay contract.
TEST(FleetSim, SmallFleetReplaysByteIdentically) {
  FleetReport first = FleetSimulator(SmallConfig()).Run();
  FleetReport second = FleetSimulator(SmallConfig()).Run();
  EXPECT_EQ(Fingerprint(first), Fingerprint(second));
  EXPECT_EQ(first.event_count, second.event_count);
  EXPECT_GE(first.stats.bursts, 2u);
  EXPECT_GT(first.stats.nope_issued, 0u);
  EXPECT_GT(first.event_count, 0u);
  ASSERT_EQ(first.events.size(), 32u);  // keep_events retains the head
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.events[0].substr(0, 2), "t=");
}

// The tier-one acceptance gate: 10^5 domains over 30 simulated days at 1x
// offered proving load, fault bursts on. Byte-identical across repeated runs
// AND across NOPE_THREADS (nothing in the simulator consults the pool, and
// the contract pins that): same digest, same metrics snapshot, same stats.
// Zero certificate expiries missed — bursts cause failures, retries, even
// degradations, but the 7-day renewal lead absorbs all of it at 1x load.
TEST(FleetSim, TierOneScaleDeterministicAndLapseFree) {
  FleetConfig config;
  config.domains = 100'000;
  config.horizon_ms = 30ull * 24 * 3600 * 1000;
  config.load_factor = 1.0;
  config.seed = 42;

  std::string baseline;
  FleetReport report;
  for (size_t threads : {size_t{1}, size_t{1}, size_t{2}, size_t{7}}) {
    ThreadPool::SetGlobalThreads(threads);
    report = FleetSimulator(config).Run();
    if (baseline.empty()) {
      baseline = Fingerprint(report);
      continue;
    }
    EXPECT_EQ(Fingerprint(report), baseline) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);  // restore the environment default

  EXPECT_EQ(report.stats.cert_misses, 0u);
  EXPECT_EQ(report.stats.canary_lapses, 0u);
  // ~36% of the fleet renews inside the horizon; nearly all via the proof
  // path, with burst-window failures absorbed by retries or legacy fallback.
  EXPECT_GT(report.stats.nope_issued, 30'000u);
  EXPECT_GT(report.stats.bursts, 0u);
  EXPECT_GT(report.stats.degradations, 0u);  // bursts do bite...
  EXPECT_GT(report.stats.jobs_ok, 30'000u);  // ...but the prover keeps up
  EXPECT_GT(report.cache.hits, 0u);
  EXPECT_GT(report.cache.evictions, 0u);  // budget < circuits: LRU active
  EXPECT_EQ(report.stats.canary_cycles, 2u * 1);  // one cycle per canary
  // A prove statement that was already running when the horizon closed may
  // carry the clock slightly past it; never short of it.
  EXPECT_GE(report.end_ms, config.start_ms + config.horizon_ms);
}

// 4x offered load plus aggressive bursts: the fleet must bend, not break.
// Deadline-aware admission and dequeue-shedding throw away most proof jobs,
// domains degrade after consecutive failures, and legacy issuance (which
// skips the saturated prover) keeps certificates alive — every one of those
// decisions recorded in stats and digest, and the whole collapse replays
// byte-identically.
TEST(FleetSim, OverloadShedsAndDegradesWithoutCrashing) {
  FleetConfig config;
  config.domains = 20'000;
  config.horizon_ms = 30ull * 24 * 3600 * 1000;
  config.load_factor = 4.0;
  config.seed = 9;
  config.bursts.bursts_per_day = 2.0;
  config.bursts.brownout_cost_multiplier = 4.0;

  FleetReport first = FleetSimulator(config).Run();
  FleetReport second = FleetSimulator(config).Run();
  EXPECT_EQ(Fingerprint(first), Fingerprint(second));

  EXPECT_GT(first.stats.jobs_shed, 1'000u);      // shedding did the work
  EXPECT_GT(first.stats.degradations, 1'000u);   // recorded, not crashed
  EXPECT_GT(first.stats.legacy_issued, 1'000u);  // the fallback path carried
  EXPECT_GT(first.stats.cycle_failures, first.stats.nope_issued);
  // Even at 4x the fleet holds the line on expiries: legacy issuance does
  // not touch the prover, so degraded domains still renew in time.
  EXPECT_EQ(first.stats.cert_misses, 0u);
  // Shed + cancelled + ok + failed accounts for every job that got a result.
  EXPECT_GT(first.stats.jobs_ok, 0u);
  EXPECT_GT(first.stats.bursts, 50u);
}

}  // namespace
}  // namespace nope
