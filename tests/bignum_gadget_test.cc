#include "src/r1cs/bignum_gadget.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

const char* kP256Prime =
    "115792089210356248762697446949407573530086143415290314195533631308867097853951";

class ModularGadgetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ModularGadgetTest, MulModMatchesNative) {
  BigUInt q = BigUInt::FromDecimal(GetParam());
  Rng rng(801);
  for (int i = 0; i < 3; ++i) {
    ConstraintSystem cs;
    ModularGadget g(&cs, q);
    BigUInt a = BigUInt::RandomBelow(&rng, q);
    BigUInt b = BigUInt::RandomBelow(&rng, q);
    auto an = g.Alloc(a);
    auto bn = g.Alloc(b);
    auto z = g.MulMod(an, bn);
    EXPECT_EQ(g.ValueOfMod(z), a.MulMod(b, q));
    EXPECT_TRUE(cs.IsSatisfied());
  }
}

TEST_P(ModularGadgetTest, NaiveMulModMatchesNative) {
  BigUInt q = BigUInt::FromDecimal(GetParam());
  Rng rng(802);
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  BigUInt a = BigUInt::RandomBelow(&rng, q);
  BigUInt b = BigUInt::RandomBelow(&rng, q);
  auto z = g.NaiveMulMod(g.Alloc(a), g.Alloc(b));
  EXPECT_EQ(g.ValueOfMod(z), a.MulMod(b, q));
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST_P(ModularGadgetTest, AddSubChainsStayCongruent) {
  BigUInt q = BigUInt::FromDecimal(GetParam());
  Rng rng(803);
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  BigUInt a = BigUInt::RandomBelow(&rng, q);
  BigUInt b = BigUInt::RandomBelow(&rng, q);
  BigUInt c = BigUInt::RandomBelow(&rng, q);
  auto an = g.Alloc(a);
  auto bn = g.Alloc(b);
  auto cn = g.Alloc(c);
  // (a - b + c) stays congruent through free linear ops.
  auto expr = g.Add(g.Sub(an, bn), cn);
  EXPECT_EQ(g.ValueOfMod(expr), a.SubMod(b, q).AddMod(c, q));
  // Normalize returns the canonical value, enforced.
  auto norm = g.Normalize(expr);
  EXPECT_EQ(g.ValueOfMod(norm), a.SubMod(b, q).AddMod(c, q));
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST_P(ModularGadgetTest, ReduceViaMatrixIsFreeAndCongruent) {
  BigUInt q = BigUInt::FromDecimal(GetParam());
  Rng rng(804);
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  BigUInt a = BigUInt::RandomBelow(&rng, q);
  BigUInt b = BigUInt::RandomBelow(&rng, q);
  auto an = g.Alloc(a);
  auto bn = g.Alloc(b);
  // Build a wide product without reduction, then apply the matrix trick.
  size_t before = cs.NumConstraints();
  auto wide = g.Add(an, an);  // widen a bit
  auto reduced = g.ReduceViaMatrix(wide);
  EXPECT_EQ(cs.NumConstraints(), before);  // zero constraints (§5.1)
  EXPECT_EQ(reduced.limbs.size(), g.num_limbs());
  EXPECT_EQ(g.ValueOfMod(reduced), a.AddMod(a, q));
  (void)bn;
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST_P(ModularGadgetTest, CorruptedProductRejected) {
  BigUInt q = BigUInt::FromDecimal(GetParam());
  Rng rng(805);
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  BigUInt a = BigUInt::RandomBelow(&rng, q);
  BigUInt b = BigUInt::RandomBelow(&rng, q);
  auto an = g.Alloc(a);
  auto bn = g.Alloc(b);
  auto z = g.MulMod(an, bn);
  ASSERT_TRUE(cs.IsSatisfied());
  // Flip the low limb of the result.
  ASSERT_FALSE(z.limbs.empty());
  Var low = z.limbs[0].terms()[0].first;
  cs.SetValueForTest(low, cs.ValueOf(low) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModularGadgetTest,
                         ::testing::Values("1048583",  // 21-bit prime (toy scale)
                                           "4294967311",  // 33-bit prime
                                           kP256Prime));

TEST(ModularGadget, EnforceEqualModDetectsMismatch) {
  BigUInt q = BigUInt::FromDecimal("1048583");
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  auto a = g.Alloc(BigUInt(12345));
  auto b = g.Alloc(BigUInt(12345));
  g.EnforceEqualMod(a, b);
  EXPECT_TRUE(cs.IsSatisfied());

  ConstraintSystem cs2;
  ModularGadget g2(&cs2, q);
  auto a2 = g2.Alloc(BigUInt(12345));
  auto b2 = g2.Alloc(BigUInt(12346));
  // Unequal values either trip the witness-time exact-division guard or
  // leave the system unsatisfiable; both reject the bogus equality.
  try {
    g2.EnforceEqualMod(a2, b2);
    EXPECT_FALSE(cs2.IsSatisfied());
  } catch (const std::logic_error&) {
  }
}

TEST(ModularGadget, EqualModHandlesMultiplesOfQ) {
  BigUInt q = BigUInt::FromDecimal("1048583");
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  auto a = g.Alloc(BigUInt(17));
  // b = 17 + 3q expressed via free additions.
  auto b = g.Add(g.Add(g.Constant(BigUInt(17)), g.Constant(q - BigUInt(0)) /* == 0 mod q */),
                 g.Constant(BigUInt()));
  g.EnforceEqualMod(a, b);
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(ModularGadget, SelectBit) {
  BigUInt q = BigUInt::FromDecimal("1048583");
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  auto a = g.Alloc(BigUInt(111));
  auto b = g.Alloc(BigUInt(222));
  Var bit1 = cs.AddWitness(Fr::One());
  Var bit0 = cs.AddWitness(Fr::Zero());
  cs.EnforceBoolean(bit1);
  cs.EnforceBoolean(bit0);
  EXPECT_EQ(g.ValueOfMod(g.SelectBit(bit1, a, b)), BigUInt(111));
  EXPECT_EQ(g.ValueOfMod(g.SelectBit(bit0, a, b)), BigUInt(222));
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(ModularGadget, IsEqualCanonical) {
  BigUInt q = BigUInt::FromDecimal("4294967311");
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  auto a = g.Alloc(BigUInt(99999));
  auto b = g.Alloc(BigUInt(99999));
  auto c = g.Alloc(BigUInt(11111));
  EXPECT_EQ(cs.ValueOf(g.IsEqualCanonical(a, b)), Fr::One());
  EXPECT_EQ(cs.ValueOf(g.IsEqualCanonical(a, c)), Fr::Zero());
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(ModularGadget, FromBytesBeRoundTrip) {
  BigUInt q = BigUInt::FromDecimal(kP256Prime);
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  Bytes data = DecodeHex("0102030405060708090a0b0c0d0e0f10");
  std::vector<LC> byte_lcs;
  for (uint8_t b : data) {
    byte_lcs.emplace_back(cs.AddWitness(Fr::FromU64(b)));
  }
  auto num = g.FromBytesBe(byte_lcs);
  EXPECT_EQ(g.ValueOf(num), BigUInt::FromBytes(data));
}

TEST(ModularGadget, NopeCheaperThanNaiveAtP256Scale) {
  BigUInt q = BigUInt::FromDecimal(kP256Prime);
  Rng rng(806);
  BigUInt a = BigUInt::RandomBelow(&rng, q);
  BigUInt b = BigUInt::RandomBelow(&rng, q);

  ConstraintSystem cs1;
  ModularGadget g1(&cs1, q);
  auto a1 = g1.Alloc(a);
  auto b1 = g1.Alloc(b);
  size_t base1 = cs1.NumConstraints();
  g1.MulMod(a1, b1);
  size_t nope_cost = cs1.NumConstraints() - base1;

  ConstraintSystem cs2;
  ModularGadget g2(&cs2, q);
  auto a2 = g2.Alloc(a);
  auto b2 = g2.Alloc(b);
  size_t base2 = cs2.NumConstraints();
  g2.NaiveMulMod(a2, b2);
  size_t naive_cost = cs2.NumConstraints() - base2;

  EXPECT_LT(nope_cost, naive_cost);
}

}  // namespace
}  // namespace nope
