#include "src/r1cs/ec_gadget.h"

#include <gtest/gtest.h>

#include "src/r1cs/toy_curve.h"
#include "src/sig/rsa.h"

namespace nope {
namespace {

const CurveSpec& Toy() {
  static const CurveSpec spec = FindToyCurve(42);
  return spec;
}

TEST(ToyCurve, IsAValidPrimeOrderCurve) {
  const CurveSpec& spec = Toy();
  NativeCurve curve(spec);
  EXPECT_TRUE(curve.IsOnCurve(curve.Generator()));
  EXPECT_TRUE(curve.ScalarMul(spec.n, curve.Generator()).infinity);
  EXPECT_FALSE(curve.ScalarMul(BigUInt(2), curve.Generator()).infinity);
  // Hasse bound: |order - p - 1| <= 2 sqrt(p).
  Rng rng(900);
  EXPECT_TRUE(IsProbablePrime(spec.n, &rng));
}

TEST(NativeCurveTest, GroupLaws) {
  NativeCurve curve(Toy());
  Rng rng(901);
  BigUInt a = BigUInt::RandomBelow(&rng, Toy().n);
  BigUInt b = BigUInt::RandomBelow(&rng, Toy().n);
  auto pa = curve.ScalarMul(a, curve.Generator());
  auto pb = curve.ScalarMul(b, curve.Generator());
  EXPECT_TRUE(curve.Equal(curve.Add(pa, pb), curve.Add(pb, pa)));
  EXPECT_TRUE(curve.Equal(curve.Add(pa, pb),
                          curve.ScalarMul(a.AddMod(b, Toy().n), curve.Generator())));
  EXPECT_TRUE(curve.Add(pa, curve.Negate(pa)).infinity);
  EXPECT_TRUE(curve.IsOnCurve(curve.Double(pa)));
}

TEST(NativeCurveTest, P256MatchesTemplateImplementation) {
  NativeCurve curve(CurveSpec::P256());
  auto p2 = curve.Double(curve.Generator());
  EXPECT_EQ(p2.x.ToHex(), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_TRUE(curve.ScalarMul(curve.spec().n, curve.Generator()).infinity);
}

class EcGadgetTechTest : public ::testing::TestWithParam<EcGadget::Technique> {};

TEST_P(EcGadgetTechTest, AddAndDoubleMatchNative) {
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), GetParam());
  NativeCurve curve(Toy());
  Rng rng(902);
  auto p_val = curve.ScalarMul(BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1),
                               curve.Generator());
  auto q_val = curve.ScalarMul(BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1),
                               curve.Generator());
  if (curve.AddIsDegenerate(p_val, q_val)) {
    q_val = curve.Double(q_val);
  }
  auto p = ec.AllocPoint(p_val);
  auto q = ec.AllocPoint(q_val);

  auto sum = ec.Add(p, q);
  auto expected = curve.Add(p_val, q_val);
  EXPECT_EQ(ec.field().ValueOfMod(sum.x), expected.x);
  EXPECT_EQ(ec.field().ValueOfMod(sum.y), expected.y);

  auto dbl = ec.Double(p);
  auto expected2 = curve.Double(p_val);
  EXPECT_EQ(ec.field().ValueOfMod(dbl.x), expected2.x);
  EXPECT_EQ(ec.field().ValueOfMod(dbl.y), expected2.y);

  EXPECT_TRUE(cs.IsSatisfied());
}

TEST_P(EcGadgetTechTest, ForgedSumRejected) {
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), GetParam());
  NativeCurve curve(Toy());
  auto p_val = curve.ScalarMul(BigUInt(5), curve.Generator());
  auto q_val = curve.ScalarMul(BigUInt(9), curve.Generator());
  auto p = ec.AllocPoint(p_val);
  auto q = ec.AllocPoint(q_val);
  auto sum = ec.Add(p, q);
  ASSERT_TRUE(cs.IsSatisfied());
  // Corrupt the result's x limb.
  Var x0 = sum.x.limbs[0].terms()[0].first;
  cs.SetValueForTest(x0, cs.ValueOf(x0) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Techniques, EcGadgetTechTest,
                         ::testing::Values(EcGadget::Technique::kNaive,
                                           EcGadget::Technique::kNopeHints));

TEST(EcGadget, NopeHintsCheaperThanNaive) {
  NativeCurve curve(Toy());
  auto p_val = curve.ScalarMul(BigUInt(5), curve.Generator());
  auto q_val = curve.ScalarMul(BigUInt(9), curve.Generator());

  auto cost = [&](EcGadget::Technique tech) {
    ConstraintSystem cs;
    EcGadget ec(&cs, Toy(), tech);
    auto p = ec.AllocPoint(p_val);
    auto q = ec.AllocPoint(q_val);
    size_t before = cs.NumConstraints();
    ec.Add(p, q);
    return cs.NumConstraints() - before;
  };
  size_t naive = cost(EcGadget::Technique::kNaive);
  size_t nope = cost(EcGadget::Technique::kNopeHints);
  EXPECT_LT(nope, naive);
}

TEST(EcGadget, MsmMatchesNative) {
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  NativeCurve curve(Toy());
  Rng rng(903);

  BigUInt k1 = BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1);
  BigUInt k2 = BigUInt::RandomBelow(&rng, Toy().n - BigUInt(1)) + BigUInt(1);
  auto p1_val = curve.Generator();
  auto p2_val = curve.ScalarMul(BigUInt(777), curve.Generator());

  auto p1 = ec.ConstantPoint(p1_val);
  auto p2 = ec.AllocPoint(p2_val);
  auto k1n = ec.scalar_field().Alloc(k1);
  auto k2n = ec.scalar_field().Alloc(k2);
  auto result = ec.Msm({ec.ScalarBitsMsb(k1n), ec.ScalarBitsMsb(k2n)}, {p1, p2});

  auto expected = curve.Add(curve.ScalarMul(k1, p1_val), curve.ScalarMul(k2, p2_val));
  ASSERT_FALSE(expected.infinity);
  EXPECT_EQ(ec.field().ValueOfMod(result.x), expected.x);
  EXPECT_EQ(ec.field().ValueOfMod(result.y), expected.y);
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(EcGadget, EnforceMsmZeroAcceptsIdentity) {
  // k1*G + k2*P == O with P = 777*G and k1 + 777*k2 == 0 (mod n). The two
  // points must be distinct: the shared subset table rejects same-x pairs
  // (the GLV check always supplies distinct points).
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  NativeCurve curve(Toy());
  BigUInt k2(12345);
  BigUInt k1 = (Toy().n - k2.MulMod(BigUInt(777), Toy().n)) % Toy().n;
  auto p = ec.ConstantPoint(curve.ScalarMul(BigUInt(777), curve.Generator()));
  auto g = ec.ConstantPoint(curve.Generator());
  auto k1n = ec.scalar_field().Alloc(k1);
  auto k2n = ec.scalar_field().Alloc(k2);
  ec.EnforceMsmZero({ec.ScalarBitsMsb(k1n), ec.ScalarBitsMsb(k2n)}, {g, p});
  EXPECT_TRUE(cs.IsSatisfied());
}

TEST(EcGadget, EnforceMsmZeroRejectsDuplicatePoints) {
  // Same point twice makes the subset table degenerate; the gadget must
  // refuse rather than emit unsound constraints.
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  NativeCurve curve(Toy());
  auto g = ec.ConstantPoint(curve.Generator());
  auto kn = ec.scalar_field().Alloc(BigUInt(5));
  auto k2n = ec.scalar_field().Alloc(Toy().n - BigUInt(5));
  EXPECT_THROW(ec.EnforceMsmZero({ec.ScalarBitsMsb(kn), ec.ScalarBitsMsb(k2n)}, {g, g}),
               std::runtime_error);
}

TEST(EcGadget, OnCurveEnforcedAtAllocation) {
  ConstraintSystem cs;
  EcGadget ec(&cs, Toy(), EcGadget::Technique::kNopeHints);
  NativeCurve curve(Toy());
  auto p = ec.AllocPoint(curve.Generator());
  ASSERT_TRUE(cs.IsSatisfied());
  Var y0 = p.y.limbs[0].terms()[0].first;
  cs.SetValueForTest(y0, cs.ValueOf(y0) + Fr::One());
  EXPECT_FALSE(cs.IsSatisfied());
}

}  // namespace
}  // namespace nope
