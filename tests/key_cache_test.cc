// KeyCache unit tests (ISSUE 5): strict LRU eviction order, exact byte-budget
// boundaries, ref-count pinning (including pinned entries surviving their own
// eviction and concurrent checkout under TSan), and the metrics the cache
// maintains.
#include "src/service/key_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace nope {
namespace {

struct TestKey : CachedKey {
  explicit TestKey(size_t bytes, int tag = 0) : bytes(bytes), tag(tag) {}
  size_t SizeBytes() const override { return bytes; }
  size_t bytes;
  int tag;
};

KeyCache::Loader MakeLoader(size_t bytes, int tag = 0,
                            std::atomic<int>* load_count = nullptr) {
  return [bytes, tag, load_count]() -> std::shared_ptr<const CachedKey> {
    if (load_count != nullptr) {
      ++*load_count;
    }
    return std::make_shared<TestKey>(bytes, tag);
  };
}

TEST(KeyCache, HitAfterMissAndPointerStability) {
  KeyCache cache(1000);
  std::atomic<int> loads{0};
  auto h1 = cache.Checkout("rsa2048", MakeLoader(100, 7, &loads));
  EXPECT_FALSE(h1.was_hit());
  ASSERT_TRUE(h1.valid());
  EXPECT_EQ(h1.As<TestKey>()->tag, 7);

  auto h2 = cache.Checkout("rsa2048", MakeLoader(100, 8, &loads));
  EXPECT_TRUE(h2.was_hit());
  EXPECT_EQ(h2.get(), h1.get());  // same artifact, not a reload
  EXPECT_EQ(loads.load(), 1);

  KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.resident_bytes, 100u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

TEST(KeyCache, LruEvictionOrder) {
  KeyCache cache(300);
  cache.Checkout("a", MakeLoader(100)).Release();
  cache.Checkout("b", MakeLoader(100)).Release();
  cache.Checkout("c", MakeLoader(100)).Release();
  EXPECT_EQ(cache.stats().resident_entries, 3u);

  // Refresh "a": recency order is now b < c < a.
  EXPECT_TRUE(cache.Checkout("a", MakeLoader(100)).was_hit());

  // Inserting "d" must evict exactly the LRU entry, "b".
  cache.Checkout("d", MakeLoader(100)).Release();
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Checkout("b", MakeLoader(100)).was_hit());  // b is gone
  // That reload of "b" evicted the next LRU entry, "c"; a and d survive.
  EXPECT_TRUE(cache.Checkout("a", MakeLoader(100)).was_hit());
  EXPECT_TRUE(cache.Checkout("d", MakeLoader(100)).was_hit());
  EXPECT_FALSE(cache.Checkout("c", MakeLoader(100)).was_hit());
}

TEST(KeyCache, ByteBudgetBoundaryIsInclusive) {
  KeyCache cache(200);
  cache.Checkout("a", MakeLoader(100)).Release();
  cache.Checkout("b", MakeLoader(100)).Release();
  // Exactly at budget: nothing evicted.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 200u);

  // One byte over: exactly one eviction brings it back under.
  cache.Checkout("c", MakeLoader(1)).Release();
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident_bytes, 101u);
}

TEST(KeyCache, OversizedEntryServesWhilePinnedThenEvicts) {
  KeyCache cache(200);
  auto h = cache.Checkout("huge", MakeLoader(500));
  // Pinned: may overshoot the budget rather than shed a running job.
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(cache.stats().resident_bytes, 500u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  const CachedKey* raw = h.get();
  h.Release();
  // Unpinned and over budget: evicted immediately.
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().resident_entries, 0u);
  (void)raw;
  EXPECT_FALSE(cache.Checkout("huge", MakeLoader(500)).was_hit());
}

TEST(KeyCache, PinnedEntryIsNeverEvicted) {
  KeyCache cache(150);
  auto pinned = cache.Checkout("pinned", MakeLoader(100));
  // Over-budget pressure while "pinned" is checked out evicts the other,
  // newer entry — never the pinned one.
  cache.Checkout("other", MakeLoader(100)).Release();
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Checkout("pinned", MakeLoader(100)).was_hit());
  EXPECT_FALSE(cache.Checkout("other", MakeLoader(100)).was_hit());
}

TEST(KeyCache, EvictedEntrySurvivesThroughOutstandingPin) {
  KeyCache cache(100);
  auto h = cache.Checkout("a", MakeLoader(100, 1));
  // "b" forces "a" over budget... but "a" is pinned, so "b" (unpinned after
  // release, and newest) cannot displace it; releasing b evicts b itself.
  cache.Checkout("b", MakeLoader(100, 2)).Release();
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  // Now release a: over budget, evicted from the map — but the artifact must
  // stay alive through h? h was released. Re-pin first:
  auto h2 = cache.Checkout("a", MakeLoader(100, 3));
  EXPECT_TRUE(h2.was_hit());
  h.Release();
  // Force a's eviction while h2 still pins it: make it LRU and add pressure.
  cache.Checkout("c", MakeLoader(100, 4)).Release();
  // a is pinned by h2, so c's pressure evicted c itself on release.
  EXPECT_EQ(h2.As<TestKey>()->tag, 1);  // artifact untouched, usable
  h2.Release();
}

TEST(KeyCache, HandleMoveTransfersThePin) {
  KeyCache cache(100);
  auto h1 = cache.Checkout("a", MakeLoader(100));
  KeyCache::Handle h2 = std::move(h1);
  EXPECT_FALSE(h1.valid());
  ASSERT_TRUE(h2.valid());
  // The pin moved with the handle: pressure cannot evict "a".
  cache.Checkout("b", MakeLoader(100)).Release();
  EXPECT_TRUE(cache.Checkout("a", MakeLoader(100)).was_hit());
  h2.Release();
  h2.Release();  // idempotent
}

TEST(KeyCache, MetricsCountersAndGauges) {
  MetricsRegistry metrics;
  KeyCache cache(200, &metrics);
  cache.Checkout("a", MakeLoader(150)).Release();
  cache.Checkout("a", MakeLoader(150)).Release();
  cache.Checkout("b", MakeLoader(150)).Release();  // evicts a
  EXPECT_EQ(metrics.GetCounter("keycache.hits")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("keycache.misses")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("keycache.evictions")->value(), 1u);
  EXPECT_EQ(metrics.GetGauge("keycache.bytes")->value(), 150);
  EXPECT_EQ(metrics.GetGauge("keycache.entries")->value(), 1);
}

// Ref-count pinning under concurrent checkout: many threads repeatedly pin
// the same two entries while the budget only fits one, so every checkout
// races pin/unpin/evict decisions. The artifact a handle holds must stay
// valid and correctly tagged for the pin's whole lifetime, and the loader
// for an id must never run twice concurrently (the cache lock serializes
// it). Run under TSan in ci.sh stage 5/6.
TEST(KeyCache, RefCountPinningUnderConcurrentCheckout) {
  MetricsRegistry metrics;
  KeyCache cache(100, &metrics);  // fits exactly one 100-byte entry
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string id = (t + i) % 2 == 0 ? "even" : "odd";
        int want = (t + i) % 2 == 0 ? 1 : 2;
        auto h = cache.Checkout(id, MakeLoader(100, want));
        const auto* key = h.As<TestKey>();
        if (key == nullptr || key->tag != want || key->bytes != 100) {
          ++failures;
        }
        h.Release();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  // Never more than one resident entry (the budget), and the books balance:
  // every miss except the residents was eventually evicted.
  EXPECT_LE(stats.resident_entries, 1u);
  EXPECT_EQ(stats.misses, stats.evictions + stats.resident_entries);
}

// Fleet-scale churn (ISSUE 8): 2*10^4 distinct keys swept through a budget
// that holds 512, verifying exact byte accounting, strict LRU recency at
// scale, and pinned entries surviving sustained multi-threaded pressure.
// Runs under TSan in the ci.sh sanitizer stage.
TEST(KeyCache, FleetScaleChurnKeepsBooksExactAndPinsSurvive) {
  constexpr size_t kEntryBytes = 64;
  constexpr size_t kResidentCap = 512;
  constexpr size_t kSweep = 20'000;
  KeyCache cache(kResidentCap * kEntryBytes);

  // Single-threaded sweep: every insertion past capacity evicts exactly one
  // entry, so the books stay exact at every step.
  for (size_t i = 0; i < kSweep; ++i) {
    cache.Checkout("k" + std::to_string(i),
                   MakeLoader(kEntryBytes, static_cast<int>(i)))
        .Release();
    ASSERT_LE(cache.stats().resident_bytes, kResidentCap * kEntryBytes);
  }
  KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.resident_entries, kResidentCap);
  EXPECT_EQ(stats.resident_bytes, kResidentCap * kEntryBytes);
  EXPECT_EQ(stats.misses, kSweep);
  EXPECT_EQ(stats.evictions, kSweep - kResidentCap);

  // Strict LRU: exactly the last kResidentCap keys are resident. Hits don't
  // change byte pressure, so probing them evicts nothing.
  for (size_t i = kSweep - kResidentCap; i < kSweep; ++i) {
    EXPECT_TRUE(
        cache.Checkout("k" + std::to_string(i), MakeLoader(kEntryBytes))
            .was_hit())
        << "k" << i;
  }
  EXPECT_EQ(cache.stats().evictions, kSweep - kResidentCap);
  // The ascending probe left k{kSweep-kResidentCap} as LRU; one older miss
  // displaces precisely it, cascading exactly one eviction per reload.
  EXPECT_FALSE(cache.Checkout("k0", MakeLoader(kEntryBytes)).was_hit());
  EXPECT_FALSE(cache.Checkout("k" + std::to_string(kSweep - kResidentCap),
                              MakeLoader(kEntryBytes))
                   .was_hit());
  EXPECT_TRUE(cache.Checkout("k" + std::to_string(kSweep - 1),
                             MakeLoader(kEntryBytes))
                  .was_hit());

  // Pinned survivors under multi-threaded churn: 8 pinned keys, 4 threads
  // sweeping disjoint key ranges hard enough to turn the cache over many
  // times. The pinned artifacts must stay valid and tagged throughout.
  constexpr int kPins = 8;
  std::vector<KeyCache::Handle> pins;
  pins.reserve(kPins);
  for (int p = 0; p < kPins; ++p) {
    pins.push_back(cache.Checkout("pin" + std::to_string(p),
                                  MakeLoader(kEntryBytes, 100 + p)));
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 5'000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      for (int i = 0; i < kIters; ++i) {
        std::string id = "churn" + std::to_string(t) + "_" + std::to_string(i);
        auto h = cache.Checkout(id, MakeLoader(kEntryBytes, t));
        const auto* key = h.As<TestKey>();
        if (key == nullptr || key->tag != t) {
          ++failures;
        }
        h.Release();
        if (i % 64 == 0) {
          auto p = cache.Checkout("pin" + std::to_string(i % kPins),
                                  MakeLoader(kEntryBytes, -1));
          if (!p.was_hit()) {
            ++failures;  // a pinned entry was evicted
          }
          p.Release();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  for (int p = 0; p < kPins; ++p) {
    ASSERT_TRUE(pins[p].valid());
    EXPECT_EQ(pins[p].As<TestKey>()->tag, 100 + p);
    pins[p].Release();
  }
  stats = cache.stats();
  EXPECT_LE(stats.resident_bytes, kResidentCap * kEntryBytes);
  EXPECT_EQ(stats.resident_bytes, stats.resident_entries * kEntryBytes);
  // Every entry ever loaded is either still resident or was evicted.
  EXPECT_EQ(stats.misses, stats.evictions + stats.resident_entries);
}

}  // namespace
}  // namespace nope
