// Differential tests pinning the SIMD Montgomery kernels bit-identical to
// the scalar CIOS path, across all four moduli. The P-256 base field is the
// adversarial one: its prime sits within 2^-32 of 2^256, so the t < 2p
// pre-subtraction value genuinely needs the kernels' extra carry digit.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/ec/batch_affine.h"
#include "src/ec/bn254.h"
#include "src/ff/fp.h"
#include "src/ff/fp_simd.h"

namespace nope {
namespace {

template <typename Field>
class FpSimdTest : public ::testing::Test {};

using FieldTypes = ::testing::Types<Fq, Fr, P256Fq, P256Fn>;
TYPED_TEST_SUITE(FpSimdTest, FieldTypes);

// Draws a uniform canonical limb array and adopts it as Montgomery form --
// much faster than Random() (no modular reduction, no R^2 multiply), which
// matters for the 10^5-element sweeps. The distribution of raw limb
// patterns is what the kernels see, so uniformity over [0, p) is exactly
// the right sweep space.
template <typename F>
F RandomRaw(Rng* rng) {
  const auto& p = F::params().modulus;
  const int shift = __builtin_clzll(p[3]);
  const uint64_t top_mask = ~0ull >> shift;
  while (true) {
    std::array<uint64_t, 4> limbs = {rng->NextU64(), rng->NextU64(),
                                     rng->NextU64(), rng->NextU64() & top_mask};
    bool below = false;
    for (int i = 3; i >= 0; --i) {
      if (limbs[i] != p[i]) {
        below = limbs[i] < p[i];
        break;
      }
    }
    if (below) {
      return F::FromMontLimbs(limbs);
    }
  }
}

// Raw limb edge values: both boundaries of the canonical range, values a
// power of two below p (every carry-chain cutover), the all-ones / 32-bit
// checkerboard limb patterns, and the Montgomery images of tiny integers.
template <typename F>
std::vector<F> EdgeValues() {
  const auto& p = F::params().modulus;
  auto sub_small = [&](uint64_t k) {  // p - k as raw limbs (k >= 1)
    std::array<uint64_t, 4> out = p;
    uint64_t borrow = k;
    for (int i = 0; i < 4 && borrow != 0; ++i) {
      uint64_t before = out[i];
      out[i] = before - borrow;
      borrow = before < borrow ? 1 : 0;
    }
    return out;
  };
  std::vector<std::array<uint64_t, 4>> raw;
  raw.push_back({0, 0, 0, 0});
  raw.push_back({1, 0, 0, 0});
  raw.push_back({2, 0, 0, 0});
  raw.push_back(F::One().limbs());
  raw.push_back(sub_small(1));
  raw.push_back(sub_small(2));
  // p - 2^k at every limb boundary and mid-limb: exercises borrows that
  // ripple a controlled distance, and products whose high halves land right
  // at the carry-digit cutover.
  for (int k : {1, 31, 32, 33, 63, 64, 65, 127, 128, 191, 192, 255}) {
    std::array<uint64_t, 4> out = p;
    const int limb = k / 64;
    const uint64_t bit = 1ull << (k % 64);
    uint64_t before = out[limb];
    out[limb] = before - bit;
    if (before < bit) {
      for (int i = limb + 1; i < 4; ++i) {
        if (out[i]-- != 0) {
          break;
        }
      }
    }
    raw.push_back(out);
  }
  // Saturated-digit patterns (filtered to < p below): all-ones limbs stress
  // every 32-bit digit at its maximum, the checkerboards stress alternating
  // zero/max digits.
  const uint64_t pats[] = {0ull, 1ull, ~0ull, 0xffffffff00000000ull,
                           0x00000000ffffffffull};
  for (uint64_t l3 : pats) {
    for (uint64_t l0 : pats) {
      raw.push_back({l0, ~0ull, ~0ull, l3});
      raw.push_back({l0, 0, 0, l3});
    }
  }
  std::vector<F> out;
  for (const auto& limbs : raw) {
    bool below = false;
    for (int i = 3; i >= 0; --i) {
      if (limbs[i] != p[i]) {
        below = limbs[i] < p[i];
        break;
      }
    }
    if (below) {
      out.push_back(F::FromMontLimbs(limbs));
    }
  }
  return out;
}

TEST(FpSimdDispatch, ReportsBackend) {
  const fp_simd::Backend& be = fp_simd::ActiveBackend();
  ASSERT_GE(be.lanes, 1u);
  EXPECT_EQ(be.lanes == 1, be.mont_mul == nullptr);
  RecordProperty("backend", be.name);
  std::printf("[ SIMD     ] backend=%s lanes=%zu\n", be.name, be.lanes);
}

TEST(FpSimdDispatch, InitIsThreadSafe) {
  // First-call init is a magic static; hammer it from several threads (the
  // TSan CI stage runs this test in a fresh process so the init really is
  // concurrent there).
  std::vector<std::thread> threads;
  std::vector<size_t> lanes(8);
  for (size_t t = 0; t < lanes.size(); ++t) {
    threads.emplace_back([&lanes, t] {
      lanes[t] = fp_simd::ActiveBackend().lanes;
      Fr a[16];
      Fr out[16];
      for (int i = 0; i < 16; ++i) {
        a[i] = Fr::FromU64(t * 100 + i + 1);
      }
      Fr::MulBatch(a, a, out, 16);
      for (int i = 0; i < 16; ++i) {
        lanes[t] += out[i] == a[i].Square() ? 0 : 1000;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (size_t t = 1; t < lanes.size(); ++t) {
    EXPECT_EQ(lanes[t], lanes[0]);
  }
}

TYPED_TEST(FpSimdTest, RandomSweepMatchesScalar) {
  using F = TypeParam;
  // >= 10^5 random values per modulus; mul and square, batch vs scalar.
  constexpr size_t kN = 100000;
  Rng rng(20240801);
  std::vector<F> a(kN);
  std::vector<F> b(kN);
  for (size_t i = 0; i < kN; ++i) {
    a[i] = RandomRaw<F>(&rng);
    b[i] = RandomRaw<F>(&rng);
  }
  std::vector<F> out(kN);
  F::MulBatch(a.data(), b.data(), out.data(), kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i].limbs(), (a[i] * b[i]).limbs()) << "mul mismatch at " << i;
  }
  F::SquareBatch(a.data(), out.data(), kN);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i].limbs(), a[i].Square().limbs()) << "sqr mismatch at " << i;
  }
}

TYPED_TEST(FpSimdTest, AdversarialEdgePairs) {
  using F = TypeParam;
  std::vector<F> edges = EdgeValues<F>();
  ASSERT_GE(edges.size(), 20u);
  // All pairs, in every lane position: for each rotation r, lane e of the
  // batch multiplies edges[i] by edges[(i + r) % E], so every pair lands in
  // every lane slot across rotations.
  const size_t e = edges.size();
  std::vector<F> a(e * e);
  std::vector<F> b(e * e);
  size_t idx = 0;
  for (size_t r = 0; r < e; ++r) {
    for (size_t i = 0; i < e; ++i) {
      a[idx] = edges[i];
      b[idx] = edges[(i + r) % e];
      ++idx;
    }
  }
  std::vector<F> out(e * e);
  F::MulBatch(a.data(), b.data(), out.data(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(out[i].limbs(), (a[i] * b[i]).limbs())
        << "edge pair mismatch at " << i;
  }
}

TYPED_TEST(FpSimdTest, TailAndAliasing) {
  using F = TypeParam;
  Rng rng(7);
  for (size_t n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33}) {
    std::vector<F> a(n);
    std::vector<F> b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = RandomRaw<F>(&rng);
      b[i] = RandomRaw<F>(&rng);
    }
    std::vector<F> expect(n);
    for (size_t i = 0; i < n; ++i) {
      expect[i] = a[i] * b[i];
    }
    std::vector<F> out(n);
    F::MulBatch(a.data(), b.data(), out.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i].limbs(), expect[i].limbs()) << "n=" << n << " i=" << i;
    }
    // Elementwise aliasing: out == a.
    std::vector<F> alias = a;
    F::MulBatch(alias.data(), b.data(), alias.data(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(alias[i].limbs(), expect[i].limbs())
          << "alias n=" << n << " i=" << i;
    }
  }
}

TYPED_TEST(FpSimdTest, ToStdLimbsBatchMatchesToBigUInt) {
  using F = TypeParam;
  Rng rng(11);
  for (size_t n : {0, 1, 63, 64, 65, 200}) {
    std::vector<F> vals(n);
    for (size_t i = 0; i < n; ++i) {
      vals[i] = RandomRaw<F>(&rng);
    }
    std::vector<std::array<uint64_t, 4>> limbs(n);
    F::ToStdLimbsBatch(vals.data(), limbs.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(BigUInt::FromLimbsLE(limbs[i].data(), 4), vals[i].ToBigUInt());
    }
  }
}

TYPED_TEST(FpSimdTest, BatchInvertFieldMatchesInverse) {
  using F = TypeParam;
  Rng rng(13);
  for (size_t n : {0, 1, 5, 15, 16, 63, 64, 256, 1000, 4099}) {
    std::vector<F> vals(n);
    for (size_t i = 0; i < n; ++i) {
      // Sprinkle zeros (the "no pair here" holes the MSM fold relies on).
      vals[i] = i % 7 == 3 ? F::Zero() : RandomRaw<F>(&rng);
    }
    std::vector<F> orig = vals;
    BatchInvertField(&vals);
    for (size_t i = 0; i < n; ++i) {
      if (orig[i].IsZero()) {
        EXPECT_TRUE(vals[i].IsZero()) << "n=" << n << " i=" << i;
      } else {
        ASSERT_EQ(vals[i].limbs(), orig[i].Inverse().limbs())
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(FpSimdBatchAffine, MatchesPerPointToAffine) {
  Rng rng(17);
  for (size_t n : {1u, 7u, 300u, 1025u}) {
    std::vector<G1> points(n);
    G1 acc = G1Generator();
    for (size_t i = 0; i < n; ++i) {
      points[i] = i % 11 == 5 ? G1::Infinity() : acc;
      acc = acc.Double().Add(G1Generator());
    }
    std::vector<G1Affine> batch = BatchToAffine(points);
    ASSERT_EQ(batch.size(), n);
    for (size_t i = 0; i < n; ++i) {
      G1Affine single = points[i].ToAffine();
      EXPECT_EQ(batch[i].infinity, single.infinity) << i;
      if (!single.infinity) {
        EXPECT_EQ(batch[i].x, single.x) << i;
        EXPECT_EQ(batch[i].y, single.y) << i;
      }
    }
  }
}

TEST(FpSimdInvariants, ToLimbsRejectsWideValues) {
  BigUInt wide = BigUInt(1) << 256;  // five limbs once normalized
  EXPECT_DEATH(fp_detail::ToLimbs(wide), "does not fit");
}

TEST(FpSimdInvariants, FromMontLimbsRejectsNonCanonical) {
  EXPECT_DEATH(Fr::FromMontLimbs(Fr::params().modulus), "canonical");
}

}  // namespace
}  // namespace nope
