// Differential and unit coverage for the signed-digit batch-affine MSM
// kernel and its building blocks: AddMixed vs Add, BatchToAffine vs
// per-point ToAffine (infinities at block boundaries), GLV decomposition
// round-trip and endomorphism eigenvalue, signed-digit recoding exactness,
// and the full kernel against naive double-and-add / the retained Jacobian
// reference kernel under adversarial inputs (zero scalars, one, r-1,
// duplicated scalars, duplicated bases, all-zero vectors).
#include "src/ec/msm.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/ec/batch_affine.h"
#include "src/ec/bn254.h"
#include "src/ec/glv.h"

namespace nope {
namespace {

template <typename Point>
Point NaiveMsm(const std::vector<Point>& bases,
               const std::vector<BigUInt>& scalars) {
  Point acc = Point::Infinity();
  for (size_t i = 0; i < bases.size(); ++i) {
    acc = acc.Add(bases[i].ScalarMul(scalars[i]));
  }
  return acc;
}

std::vector<G1> RandomG1Bases(Rng* rng, size_t n) {
  std::vector<G1> out;
  out.reserve(n);
  G1 p = G1Generator();
  for (size_t i = 0; i < n; ++i) {
    p = p.ScalarMul(BigUInt(2 + (rng->NextU64() % 1000)));
    out.push_back(p);
  }
  return out;
}

// --- AddMixed ---------------------------------------------------------------

TEST(AddMixed, MatchesFullAddOnGenericPoints) {
  Rng rng(11);
  G1 p = G1Generator();
  for (int i = 0; i < 20; ++i) {
    G1 q = G1Generator().ScalarMul(BigUInt(3 + rng.NextU64() % 5000));
    // Give p a non-trivial z so the mixed path is actually exercised.
    p = p.Add(q).Double();
    G1::Affine qa = q.ToAffine();
    EXPECT_TRUE(p.AddMixed(qa).Equals(p.Add(q))) << "iteration " << i;
  }
}

TEST(AddMixed, HandlesDegenerateCases) {
  G1 g = G1Generator();
  G1 p = g.Double().Add(g);  // 3G with z != 1
  G1::Affine pa = p.ToAffine();

  // P + P must fall through to the doubling formula.
  EXPECT_TRUE(p.AddMixed(pa).Equals(p.Double()));
  // P + (-P) == infinity.
  EXPECT_TRUE(p.AddMixed(pa.Negate()).IsInfinity());
  // infinity + P == P.
  EXPECT_TRUE(G1::Infinity().AddMixed(pa).Equals(p));
  // P + infinity == P.
  EXPECT_TRUE(p.AddMixed(G1::Affine::Infinity()).Equals(p));
}

TEST(AddMixed, WorksOnG2) {
  G2 p = G2Generator().Double();
  G2 q = G2Generator().Double().Add(G2Generator());
  EXPECT_TRUE(p.AddMixed(q.ToAffine()).Equals(p.Add(q)));
}

// --- BatchToAffine ----------------------------------------------------------

TEST(BatchToAffine, MatchesPerPointToAffineWithInfinities) {
  // Sizes straddle the 1024 block grid; infinities land on block boundaries.
  for (size_t n : {size_t{5}, size_t{1023}, size_t{1024}, size_t{1025},
                   size_t{3000}}) {
    std::vector<G1> jac;
    jac.reserve(n);
    G1 p = G1Generator();
    for (size_t i = 0; i < n; ++i) {
      if (i == 0 || i == 1023 || i == 1024 || i + 1 == n) {
        jac.push_back(G1::Infinity());
      } else {
        p = p.Double();
        jac.push_back(p);
      }
    }
    std::vector<G1Affine> got = BatchToAffine(jac);
    ASSERT_EQ(got.size(), n);
    for (size_t i = 0; i < n; ++i) {
      G1::Affine want = jac[i].ToAffine();
      ASSERT_EQ(got[i].infinity, want.infinity) << "n=" << n << " i=" << i;
      if (!want.infinity) {
        ASSERT_EQ(got[i].x, want.x) << "n=" << n << " i=" << i;
        ASSERT_EQ(got[i].y, want.y) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(BatchToAffine, AllInfinitiesAndEmpty) {
  EXPECT_TRUE(BatchToAffine(std::vector<G1>{}).empty());
  std::vector<G1Affine> got = BatchToAffine(std::vector<G1>(7, G1::Infinity()));
  for (const auto& a : got) {
    EXPECT_TRUE(a.infinity);
  }
}

// --- Signed digits ----------------------------------------------------------

TEST(SignedDigits, RecodingIsExactAndBounded) {
  Rng rng(21);
  for (size_t c : {size_t{2}, size_t{5}, size_t{10}, size_t{16}}) {
    const int64_t half = int64_t{1} << (c - 1);
    for (int iter = 0; iter < 25; ++iter) {
      BigUInt k = iter == 0 ? BigUInt() : BigUInt::RandomBelow(&rng, Bn254Order());
      size_t max_bits = k.BitLength() > 0 ? k.BitLength() : 1;
      size_t windows = (max_bits + c - 1) / c + 1;
      std::vector<int32_t> digits(windows);
      msm_detail::SignedDigits(k, c, windows, digits.data());
      // Reconstruct sum digit_w * 2^(c*w) as (pos, neg) magnitudes.
      BigUInt pos, neg;
      for (size_t w = 0; w < windows; ++w) {
        ASSERT_GE(digits[w], -half) << "c=" << c;
        ASSERT_LT(digits[w], half) << "c=" << c;
        if (digits[w] > 0) {
          pos = pos + (BigUInt(static_cast<uint64_t>(digits[w])) << (c * w));
        } else if (digits[w] < 0) {
          neg = neg + (BigUInt(static_cast<uint64_t>(-digits[w])) << (c * w));
        }
      }
      ASSERT_TRUE(pos >= neg);
      ASSERT_EQ(pos - neg, k) << "c=" << c << " iter=" << iter;
    }
  }
}

// --- GLV --------------------------------------------------------------------

TEST(Glv, LambdaIsCubeRootOfUnity) {
  const BigUInt& r = Bn254Order();
  const BigUInt& lambda = GlvLambda();
  EXPECT_EQ(lambda.MulMod(lambda, r).MulMod(lambda, r), BigUInt(1));
  EXPECT_NE(lambda, BigUInt(1));
  // lambda^2 + lambda + 1 == 0 (mod r): primitive, not just any cube root.
  EXPECT_TRUE(lambda.MulMod(lambda, r).AddMod(lambda, r).AddMod(BigUInt(1), r)
                  .IsZero());
}

TEST(Glv, EndomorphismActsAsLambda) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    G1 p = G1Generator().ScalarMul(BigUInt::RandomBelow(&rng, Bn254Order()));
    G1Affine phi = GlvEndomorphism(p.ToAffine());
    EXPECT_TRUE(G1::FromAffinePoint(phi).Equals(p.ScalarMul(GlvLambda())))
        << "iteration " << i;
  }
  EXPECT_TRUE(GlvEndomorphism(G1Affine::Infinity()).infinity);
}

TEST(Glv, DecompositionRoundTripsAndIsHalfSize) {
  const BigUInt& r = Bn254Order();
  const BigUInt& lambda = GlvLambda();
  Rng rng(41);
  std::vector<BigUInt> cases = {BigUInt(),     BigUInt(1), BigUInt(2),
                                r - BigUInt(1), lambda,     r - lambda};
  for (int i = 0; i < 50; ++i) {
    cases.push_back(BigUInt::RandomBelow(&rng, r));
  }
  for (const BigUInt& k : cases) {
    GlvDecomposition d = GlvDecompose(k);
    EXPECT_LE(d.k1.BitLength(), 129u) << "k=" << k.ToHex();
    EXPECT_LE(d.k2.BitLength(), 129u) << "k=" << k.ToHex();
    // k1 + lambda*k2 == k (mod r), signs folded in.
    BigUInt acc = d.k1_neg ? r - (d.k1 % r) : d.k1 % r;
    BigUInt lk2 = lambda.MulMod(d.k2, r);
    acc = d.k2_neg ? acc.AddMod(r - lk2, r) : acc.AddMod(lk2, r);
    EXPECT_EQ(acc, k % r) << "k=" << k.ToHex();
  }
}

// --- Full kernel differentials ----------------------------------------------

// Adversarial scalar mix: 0, 1, r-1, duplicated scalars on distinct bases,
// identical bases with distinct scalars, plus random fill.
void FillAdversarial(Rng* rng, size_t n, std::vector<G1>* bases,
                     std::vector<BigUInt>* scalars) {
  const BigUInt& r = Bn254Order();
  *bases = RandomG1Bases(rng, n);
  scalars->assign(n, BigUInt());
  for (size_t i = 0; i < n; ++i) {
    switch (i % 7) {
      case 0:
        (*scalars)[i] = BigUInt();  // zero
        break;
      case 1:
        (*scalars)[i] = BigUInt(1);
        break;
      case 2:
        (*scalars)[i] = r - BigUInt(1);
        break;
      case 3:
        (*scalars)[i] = BigUInt(0xdeadbeef);  // duplicated scalar
        break;
      case 4:
        (*bases)[i] = G1Generator();  // duplicated base
        (*scalars)[i] = BigUInt::RandomBelow(rng, r);
        break;
      case 5:
        (*bases)[i] = G1::Infinity();  // infinity base
        (*scalars)[i] = BigUInt::RandomBelow(rng, r);
        break;
      default:
        (*scalars)[i] = BigUInt::RandomBelow(rng, r);
    }
  }
}

TEST(MsmKernel, MatchesNaiveOnAdversarialInputs) {
  Rng rng(51);
  for (size_t n : {size_t{1}, size_t{2}, size_t{255}, size_t{256},
                   size_t{257}}) {
    std::vector<G1> bases;
    std::vector<BigUInt> scalars;
    FillAdversarial(&rng, n, &bases, &scalars);
    G1 want = NaiveMsm(bases, scalars);
    EXPECT_TRUE(Msm(bases, scalars).Equals(want)) << "n=" << n;
    EXPECT_TRUE(MsmJacobian(bases, scalars).Equals(want)) << "n=" << n;
  }
}

TEST(MsmKernel, MatchesJacobianReferenceAt4096) {
  Rng rng(61);
  const size_t n = 4096;
  std::vector<G1> bases = RandomG1Bases(&rng, n);
  std::vector<BigUInt> scalars;
  scalars.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  EXPECT_TRUE(Msm(bases, scalars).Equals(MsmJacobian(bases, scalars)));
}

TEST(MsmKernel, AllZeroScalarsAndAllInfinityBases) {
  Rng rng(71);
  std::vector<G1> bases = RandomG1Bases(&rng, 600);
  std::vector<BigUInt> zeros(600);
  EXPECT_TRUE(Msm(bases, zeros).IsInfinity());

  std::vector<G1> inf(600, G1::Infinity());
  std::vector<BigUInt> scalars;
  for (size_t i = 0; i < 600; ++i) {
    scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  EXPECT_TRUE(Msm(inf, scalars).IsInfinity());
}

// The signed kernel must treat scalars as plain integers (no mod-r
// assumption): scalars >= r are legal for G2 callers too.
TEST(MsmKernel, G2MatchesNaive) {
  Rng rng(81);
  const size_t n = 40;
  std::vector<G2> bases;
  G2 p = G2Generator();
  for (size_t i = 0; i < n; ++i) {
    p = p.Double().Add(G2Generator());
    bases.push_back(p);
  }
  std::vector<BigUInt> scalars;
  for (size_t i = 0; i < n; ++i) {
    scalars.push_back(i == 0 ? BigUInt() : BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  G2 want = NaiveMsm(bases, scalars);
  EXPECT_TRUE(Msm(bases, scalars).Equals(want));
  EXPECT_TRUE(MsmSignedAffine(BatchToAffine(bases), scalars).Equals(want));
}

// Scalars above r: G1's GLV path reduces mod r (cofactor 1 makes that
// sound); the result must match naive double-and-add with the raw scalar.
TEST(MsmKernel, ScalarsAboveGroupOrder) {
  Rng rng(91);
  std::vector<G1> bases = RandomG1Bases(&rng, 5);
  std::vector<BigUInt> scalars;
  const BigUInt& r = Bn254Order();
  scalars.push_back(r);                  // == 0 on the group
  scalars.push_back(r + BigUInt(5));     // == 5
  scalars.push_back(r * BigUInt(3));     // == 0
  scalars.push_back(r + r - BigUInt(1)); // == r - 1
  scalars.push_back(BigUInt::RandomBelow(&rng, r) + r);
  EXPECT_TRUE(Msm(bases, scalars).Equals(NaiveMsm(bases, scalars)));
}

TEST(MsmKernel, MsmAffineMatchesMsmOnJacobianInputs) {
  Rng rng(101);
  const size_t n = 700;
  std::vector<G1> bases = RandomG1Bases(&rng, n);
  std::vector<BigUInt> scalars;
  for (size_t i = 0; i < n; ++i) {
    scalars.push_back(BigUInt::RandomBelow(&rng, Bn254Order()));
  }
  G1 via_wrapper = Msm(bases, scalars);
  G1 via_affine = MsmAffine(BatchToAffine(bases), scalars);
  // Identical code path underneath: results are bit-identical, not merely
  // equal as group elements.
  EXPECT_EQ(via_wrapper.x, via_affine.x);
  EXPECT_EQ(via_wrapper.y, via_affine.y);
  EXPECT_EQ(via_wrapper.z, via_affine.z);
  EXPECT_TRUE(via_wrapper.Equals(MsmJacobian(bases, scalars)));
}

}  // namespace
}  // namespace nope
