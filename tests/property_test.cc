// Parameterized property sweeps across module boundaries: randomized
// algebraic invariants for the bignum/EC gadgets, multiple toy curves, DNS
// canonical-ordering laws, and BigUInt torture cases.
#include <gtest/gtest.h>

#include "src/dns/dnssec.h"
#include "src/r1cs/ecdsa_gadget.h"
#include "src/r1cs/toy_curve.h"

namespace nope {
namespace {

// --- Toy-curve sweep: the generic gadget stack must work on any curve ------

class ToyCurveSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ToyCurveSweep, EcdsaRoundTripAndGadgetAgreement) {
  CurveSpec spec = FindToyCurve(GetParam(), 18);
  NativeCurve curve(spec);
  Rng rng(GetParam() * 31 + 7);

  BigUInt priv = BigUInt::RandomBelow(&rng, spec.n - BigUInt(1)) + BigUInt(1);
  auto pub = curve.ScalarMul(priv, curve.Generator());
  Bytes digest = rng.NextBytes(16);
  ToyEcdsaSignature sig = ToyEcdsaSign(spec, priv, digest, &rng);
  ASSERT_TRUE(ToyEcdsaVerify(spec, pub, digest, sig));

  // Wrong digest fails natively.
  Bytes bad = digest;
  bad[0] ^= 1;
  EXPECT_FALSE(ToyEcdsaVerify(spec, pub, bad, sig));

  // The in-circuit verifier agrees.
  ConstraintSystem cs;
  EcGadget ec(&cs, spec, EcGadget::Technique::kNopeHints);
  auto pub_pt = ec.AllocPoint(pub);
  auto z = ec.scalar_field().Alloc(BigUInt::FromBytes(digest) % spec.n);
  auto r = ec.scalar_field().Alloc(sig.r);
  auto s = ec.scalar_field().Alloc(sig.s);
  EnforceEcdsaVerify(&ec, pub_pt, z, r, s, EcdsaMsmMode::kGlvMsm);
  EXPECT_TRUE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ToyCurveSweep, ::testing::Values(3u, 11u, 29u, 57u));

// --- Randomized modular-gadget algebra -------------------------------------

class ModularAlgebraSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModularAlgebraSweep, DistributivityAndAssociativity) {
  BigUInt q = BigUInt::FromDecimal(
      "115792089210356248762697446949407573530086143415290314195533631308867097853951");
  Rng rng(GetParam());
  ConstraintSystem cs;
  ModularGadget g(&cs, q);
  BigUInt av = BigUInt::RandomBelow(&rng, q);
  BigUInt bv = BigUInt::RandomBelow(&rng, q);
  BigUInt cv = BigUInt::RandomBelow(&rng, q);
  auto a = g.Alloc(av);
  auto b = g.Alloc(bv);
  auto c = g.Alloc(cv);

  // a*(b+c) == a*b + a*c (mod q), proven in-circuit via one congruence.
  auto lhs = g.MulMod(a, g.Add(b, c));
  auto ab = g.MulMod(a, b);
  auto ac = g.MulMod(a, c);
  g.EnforceEqualMod(lhs, g.Add(ab, ac));

  // (a*b)*c == a*(b*c) (mod q).
  g.EnforceEqualMod(g.MulMod(ab, c), g.MulMod(a, g.MulMod(b, c)));

  // Lazy chains: matrix reduction preserves the residue class.
  auto wide = g.Add(g.Add(a, b), g.Add(c, a));
  auto reduced = g.ReduceViaMatrix(wide);
  EXPECT_EQ(g.ValueOfMod(reduced), g.ValueOfMod(wide));
  g.EnforceEqualMod(reduced, wide);

  EXPECT_TRUE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModularAlgebraSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- MSM gadget vs native across random instances ---------------------------

class MsmSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MsmSweep, GadgetMatchesNative) {
  CurveSpec spec = FindToyCurve(42);
  NativeCurve curve(spec);
  Rng rng(GetParam() * 1000 + 1);
  ConstraintSystem cs;
  EcGadget ec(&cs, spec, EcGadget::Technique::kNopeHints, /*aux_seed=*/GetParam());

  BigUInt k1 = BigUInt::RandomBelow(&rng, spec.n - BigUInt(1)) + BigUInt(1);
  BigUInt k2 = BigUInt::RandomBelow(&rng, spec.n - BigUInt(1)) + BigUInt(1);
  auto p1v = curve.ScalarMul(BigUInt::RandomBelow(&rng, spec.n - BigUInt(1)) + BigUInt(1),
                             curve.Generator());
  auto p2v = curve.ScalarMul(BigUInt::RandomBelow(&rng, spec.n - BigUInt(1)) + BigUInt(1),
                             curve.Generator());
  auto expected = curve.Add(curve.ScalarMul(k1, p1v), curve.ScalarMul(k2, p2v));
  if (expected.infinity) {
    GTEST_SKIP() << "random instance hit infinity";
  }
  auto p1 = ec.AllocPoint(p1v);
  auto p2 = ec.AllocPoint(p2v);
  auto result = ec.Msm({ec.ScalarBitsMsb(ec.scalar_field().Alloc(k1)),
                        ec.ScalarBitsMsb(ec.scalar_field().Alloc(k2))},
                       {p1, p2});
  EXPECT_EQ(ec.field().ValueOfMod(result.x), expected.x);
  EXPECT_EQ(ec.field().ValueOfMod(result.y), expected.y);
  EXPECT_TRUE(cs.IsSatisfied());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsmSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// --- DNS name ordering laws ---------------------------------------------------

TEST(DnsNameProperties, CanonicalOrderIsStrictWeakOrder) {
  std::vector<DnsName> names = {
      DnsName::Root(),
      DnsName::FromString("com"),
      DnsName::FromString("example.com"),
      DnsName::FromString("a.example.com"),
      DnsName::FromString("b.example.com"),
      DnsName::FromString("org"),
      DnsName::FromString("EXAMPLE.org"),
      DnsName::FromString("z.a.com"),
      DnsName::FromString("a.b.com"),
  };
  for (const auto& a : names) {
    EXPECT_FALSE(a < a);
    for (const auto& b : names) {
      if (a < b) {
        EXPECT_FALSE(b < a);
      } else if (!(b < a)) {
        EXPECT_EQ(a, b);
      }
      for (const auto& c : names) {
        if (a < b && b < c) {
          EXPECT_TRUE(a < c);
        }
      }
    }
  }
}

TEST(DnsNameProperties, ParentsSortBeforeChildren) {
  // RFC 4034 canonical order: a zone sorts before everything beneath it.
  std::vector<std::string> zones = {"com", "example.com", "www.example.com", "a.www.example.com"};
  for (size_t i = 0; i + 1 < zones.size(); ++i) {
    EXPECT_TRUE(DnsName::FromString(zones[i]) < DnsName::FromString(zones[i + 1]))
        << zones[i] << " vs " << zones[i + 1];
  }
}

// --- Suite-wide signing sweep: every RRset type round-trips ----------------

class RrsetTypeSweep : public ::testing::TestWithParam<RrType> {};

TEST_P(RrsetTypeSweep, SignVerifyAcrossTypes) {
  Rng rng(6100);
  const CryptoSuite& suite = CryptoSuite::Toy();
  Zone zone(DnsName::FromString("example.com"), suite, &rng, false);
  Rrset set{zone.name(), GetParam(), 300, {}};
  switch (GetParam()) {
    case RrType::kTxt:
      set.rdatas = {TxtRdata("a"), TxtRdata("b")};
      break;
    case RrType::kDs:
      set.rdatas = {DsRdata{1, suite.ecdsa_algorithm, suite.ds_digest_type, Bytes(32, 9)}
                        .Encode()};
      break;
    case RrType::kDnskey:
      set = zone.DnskeyRrset();
      break;
    default:
      GTEST_SKIP();
  }
  SignedRrset signed_set = zone.Sign(set, &rng);
  const DnskeyRdata key =
      GetParam() == RrType::kDnskey ? zone.KskRdata() : zone.ZskRdata();
  Bytes buffer = BuildSigningBuffer(signed_set.rrsig, signed_set.rrset);
  EXPECT_TRUE(VerifyWithDnskey(suite, key, buffer, signed_set.rrsig.signature));
  EXPECT_EQ(signed_set.rrsig.type_covered, static_cast<uint16_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Types, RrsetTypeSweep,
                         ::testing::Values(RrType::kTxt, RrType::kDs, RrType::kDnskey));

// --- BigUInt torture ----------------------------------------------------------

TEST(BigUIntTorture, KnuthDAddBackCases) {
  // Dividends engineered so qhat is initially overestimated.
  BigUInt b64 = BigUInt(1) << 64;
  std::vector<std::pair<BigUInt, BigUInt>> cases = {
      {(BigUInt(1) << 128) - BigUInt(1), (b64 >> 1) + BigUInt(1)},
      {(BigUInt(1) << 192) - (BigUInt(1) << 64), (BigUInt(1) << 128) - BigUInt(1)},
      {BigUInt::FromHex("7fffffffffffffff8000000000000000"),
       BigUInt::FromHex("800000000000000000000001")},
  };
  for (const auto& [a, b] : cases) {
    auto dm = a.DivMod(b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_TRUE(dm.remainder < b);
  }
}

TEST(BigUIntTorture, ShiftBoundaryCases) {
  BigUInt one(1);
  for (size_t bits : {63u, 64u, 65u, 127u, 128u, 129u, 255u, 256u}) {
    BigUInt shifted = one << bits;
    EXPECT_EQ(shifted.BitLength(), bits + 1);
    EXPECT_EQ(shifted >> bits, one);
    EXPECT_TRUE((shifted >> (bits + 1)).IsZero());
  }
}

TEST(BigUIntTorture, PowModEdges) {
  BigUInt m(97);
  EXPECT_EQ(BigUInt(5).PowMod(BigUInt(), m), BigUInt(1));   // x^0 == 1
  EXPECT_EQ(BigUInt().PowMod(BigUInt(5), m), BigUInt());    // 0^x == 0
  EXPECT_EQ(BigUInt(5).PowMod(BigUInt(1), m), BigUInt(5));
  EXPECT_EQ(BigUInt(5).PowMod(BigUInt(96), m), BigUInt(1));  // Fermat
}

}  // namespace
}  // namespace nope
