#include "src/sig/ecdsa.h"

#include <gtest/gtest.h>

namespace nope {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Ecdsa, SignVerifyRoundTrip) {
  Rng rng(501);
  EcdsaKeyPair kp = GenerateEcdsaKey(&rng);
  Bytes msg = Ascii("example.com. 3600 IN DNSKEY 257 3 13 ...");
  EcdsaSignature sig = EcdsaSign(kp.priv, msg);
  EXPECT_TRUE(EcdsaVerify(kp.pub, msg, sig));

  Bytes bad = msg;
  bad.back() ^= 1;
  EXPECT_FALSE(EcdsaVerify(kp.pub, bad, sig));

  EcdsaSignature bad_sig = sig;
  bad_sig.s = bad_sig.s + BigUInt(1);
  EXPECT_FALSE(EcdsaVerify(kp.pub, msg, bad_sig));
}

TEST(Ecdsa, WrongKeyRejects) {
  Rng rng(502);
  EcdsaKeyPair kp1 = GenerateEcdsaKey(&rng);
  EcdsaKeyPair kp2 = GenerateEcdsaKey(&rng);
  Bytes msg = Ascii("msg");
  EXPECT_FALSE(EcdsaVerify(kp2.pub, msg, EcdsaSign(kp1.priv, msg)));
}

TEST(Ecdsa, DeterministicNonces) {
  Rng rng(503);
  EcdsaKeyPair kp = GenerateEcdsaKey(&rng);
  Bytes msg = Ascii("rfc6979");
  EcdsaSignature s1 = EcdsaSign(kp.priv, msg);
  EcdsaSignature s2 = EcdsaSign(kp.priv, msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Ecdsa, Rfc6979KnownVector) {
  // RFC 6979 A.2.5, P-256 + SHA-256, message "sample".
  EcdsaPrivateKey priv{BigUInt::FromHex(
      "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")};
  EcdsaSignature sig = EcdsaSign(priv, Ascii("sample"));
  EXPECT_EQ(sig.r.ToHex(), "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  EXPECT_EQ(sig.s.ToHex(), "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
  // And verify against the RFC's public key.
  EcdsaPublicKey pub{P256Generator().ScalarMul(priv.d)};
  auto aff = pub.q.ToAffine();
  EXPECT_EQ(aff.x.ToBigUInt().ToHex(),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
  EXPECT_TRUE(EcdsaVerify(pub, Ascii("sample"), sig));
}

TEST(Ecdsa, EncodingRoundTrips) {
  Rng rng(504);
  EcdsaKeyPair kp = GenerateEcdsaKey(&rng);
  EXPECT_EQ(EcdsaPublicKey::Decode(kp.pub.Encode()), kp.pub);
  EcdsaSignature sig = EcdsaSign(kp.priv, Ascii("m"));
  EcdsaSignature decoded = EcdsaSignature::Decode(sig.Encode());
  EXPECT_EQ(decoded.r, sig.r);
  EXPECT_EQ(decoded.s, sig.s);
  EXPECT_THROW(EcdsaSignature::Decode(Bytes(10)), std::invalid_argument);
  EXPECT_THROW(EcdsaPublicKey::Decode(Bytes(65, 1)), std::invalid_argument);
}

TEST(Ecdsa, GlvSideInfoIsHalfSize) {
  Rng rng(505);
  BigUInt bound = BigUInt(1) << 130;
  for (int i = 0; i < 20; ++i) {
    BigUInt h1 = BigUInt::RandomBelow(&rng, P256Order());
    GlvSideInfo side = ComputeGlvSideInfo(h1);
    EXPECT_TRUE(side.v < bound);
    EXPECT_TRUE(side.h1v < bound);
    BigUInt prod = h1.MulMod(side.v, P256Order());
    if (side.h1v_negated) {
      prod = (P256Order() - prod) % P256Order();
    }
    EXPECT_EQ(prod, side.h1v % P256Order());
  }
}

TEST(Ecdsa, GlvVerifyMatchesStandardVerify) {
  Rng rng(506);
  for (int i = 0; i < 8; ++i) {
    EcdsaKeyPair kp = GenerateEcdsaKey(&rng);
    Bytes msg = rng.NextBytes(40);
    EcdsaSignature sig = EcdsaSign(kp.priv, msg);
    EXPECT_TRUE(EcdsaVerifyGlv(kp.pub, msg, sig));
    // Invalid signature rejected by both.
    EcdsaSignature bad = sig;
    bad.r = (bad.r + BigUInt(1)) % P256Order();
    EXPECT_EQ(EcdsaVerify(kp.pub, msg, bad), EcdsaVerifyGlv(kp.pub, msg, bad));
    Bytes bad_msg = msg;
    bad_msg[0] ^= 0xff;
    EXPECT_FALSE(EcdsaVerifyGlv(kp.pub, bad_msg, sig));
  }
}

}  // namespace
}  // namespace nope
