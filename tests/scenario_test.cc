// Tests for the scenario zoo (src/scenario): generator determinism and
// shape bounds, per-class outcome invariants, the downgrade-reason taxonomy,
// sweep replayability, and minimized regressions for crashes the sweep
// originally uncovered in the degradation paths.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/downgrade.h"
#include "src/dns/flaky_resolver.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"

namespace nope {
namespace {

constexpr uint64_t kSweepSeed = 6;

// ---------------------------------------------------------------------------
// Generator

TEST(ScenarioGenerator, PureFunctionOfSeedAndIndex) {
  for (uint64_t i = 0; i < 40; ++i) {
    ScenarioSpec a = GenerateScenario(kSweepSeed, i);
    ScenarioSpec b = GenerateScenario(kSweepSeed, i);
    EXPECT_EQ(a.Describe(), b.Describe());
    EXPECT_EQ(a.seed, b.seed);
  }
  // A different sweep seed reshapes the zoo (same class schedule, different
  // topologies): at least one of the first 13 scenarios must differ.
  bool differs = false;
  for (uint64_t i = 0; i < static_cast<uint64_t>(kNumScenarioClasses); ++i) {
    if (GenerateScenario(kSweepSeed, i).Describe() !=
        GenerateScenario(kSweepSeed + 1, i).Describe()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ScenarioGenerator, RoundRobinCoversEveryClass) {
  std::set<ScenarioClass> seen;
  for (uint64_t i = 0; i < static_cast<uint64_t>(kNumScenarioClasses); ++i) {
    seen.insert(GenerateScenario(kSweepSeed, i).cls);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumScenarioClasses));
}

TEST(ScenarioGenerator, ShapeBoundsHoldAcrossManyScenarios) {
  for (uint64_t i = 0; i < 260; ++i) {
    ScenarioSpec spec = GenerateScenario(kSweepSeed, i);
    SCOPED_TRACE(spec.Describe());
    ASSERT_GE(spec.zones.size(), 1u);
    ASSERT_LE(spec.zones.size(), 6u);
    switch (spec.cls) {
      case ScenarioClass::kDeepDelegation:
        EXPECT_GE(spec.zones.size(), 4u);
        break;
      case ScenarioClass::kUnsignedLeaf:
        EXPECT_FALSE(spec.zones.back().is_signed);
        break;
      case ScenarioClass::kUnsignedParent: {
        // The island boundary must sit strictly above the leaf.
        ASSERT_GE(spec.zones.size(), 2u);
        bool ancestor_unsigned = false;
        for (size_t z = 0; z + 1 < spec.zones.size(); ++z) {
          ancestor_unsigned |= !spec.zones[z].is_signed;
        }
        EXPECT_TRUE(ancestor_unsigned);
        EXPECT_TRUE(spec.zones.back().is_signed);
        break;
      }
      case ScenarioClass::kZskRollover:
        // A leaf ZSK signs nothing in the chain of trust, so the generator
        // must rotate a strict ancestor for the rollover to be observable.
        ASSERT_GE(spec.zones.size(), 2u);
        EXPECT_LT(spec.rollover_zone, spec.zones.size() - 1);
        EXPECT_EQ(spec.rollover, RolloverKind::kZsk);
        break;
      case ScenarioClass::kKskRollover:
        EXPECT_LT(spec.rollover_zone, spec.zones.size());
        EXPECT_EQ(spec.rollover, RolloverKind::kKsk);
        break;
      case ScenarioClass::kExpiredRrsig:
        // Lapsed before the simulation epoch, but still a well-formed window.
        EXPECT_LT(spec.rrsig_expiration, 1'750'000'000u);
        EXPECT_LE(spec.rrsig_inception, spec.rrsig_expiration);
        break;
      case ScenarioClass::kSkewWithinTolerance:
        EXPECT_GT(spec.skew_tolerance_s, 0u);
        break;
      case ScenarioClass::kFlakyDependencies:
        EXPECT_GT(spec.dns_fault_rate, 0.0);
        EXPECT_GT(spec.ca_fault_rate, 0.0);
        break;
      default:
        break;
    }
    // The toy suite's 192-byte signing bound: labels stay short.
    for (const ZoneSpec& zone : spec.zones) {
      EXPECT_LE(zone.label.size(), 2u);
    }
  }
}

// ---------------------------------------------------------------------------
// Runner outcomes (one representative per class; RunScenario itself aborts
// via NOPE_INVARIANT on any per-class violation, so merely completing a
// scenario is already an assertion).

ScenarioSpec FirstOfClass(ScenarioClass cls) {
  for (uint64_t i = 0;; ++i) {
    ScenarioSpec spec = GenerateScenario(kSweepSeed, i);
    if (spec.cls == cls) {
      return spec;
    }
  }
}

TEST(ScenarioRunner, HealthyClassesProve) {
  for (ScenarioClass cls :
       {ScenarioClass::kHealthyEcdsa, ScenarioClass::kHealthyMixed,
        ScenarioClass::kDeepDelegation, ScenarioClass::kSkewWithinTolerance}) {
    ScenarioSpec spec = FirstOfClass(cls);
    SCOPED_TRACE(spec.Describe());
    ScenarioResult result = RunScenario(spec);
    EXPECT_EQ(result.outcome, ScenarioOutcome::kProved);
    EXPECT_EQ(result.reason, DowngradeReason::kNone);
  }
}

TEST(ScenarioRunner, RealProofSpotCheckBacksPlaceholderOutcome) {
  // ISSUE 7: the runner's placeholder "proved" classification, spot-checked
  // with a REAL Groth16 deployment through the prepared-VK cache. The spec's
  // class invariant (healthy must prove) still holds under the spot-check,
  // so a real-circuit divergence from the placeholder outcome would abort.
  ScenarioSpec spec = FirstOfClass(ScenarioClass::kHealthyEcdsa);
  SCOPED_TRACE(spec.Describe());
  PreparedVkCache cache(64 << 20);
  RunnerOptions options;
  options.pvk_cache = &cache;
  options.real_proof_check = true;
  ScenarioResult result = RunScenario(spec, options);
  EXPECT_EQ(result.outcome, ScenarioOutcome::kProved);
  // The spot-check verified through the cache: exactly one prepared key.
  EXPECT_EQ(cache.stats().misses, 1u);

  // Default options reproduce the historical classification for the same
  // spec (the sweep digest contract).
  ScenarioResult plain = RunScenario(spec);
  EXPECT_EQ(plain.outcome, result.outcome);
  EXPECT_EQ(plain.reason, result.reason);
}

TEST(ScenarioRunner, UnsignedZonesDegradeWithDistinctReasons) {
  ScenarioResult leaf = RunScenario(FirstOfClass(ScenarioClass::kUnsignedLeaf));
  EXPECT_EQ(leaf.outcome, ScenarioOutcome::kDegraded);
  EXPECT_EQ(leaf.reason, DowngradeReason::kUnsignedZone);

  ScenarioResult parent =
      RunScenario(FirstOfClass(ScenarioClass::kUnsignedParent));
  EXPECT_EQ(parent.outcome, ScenarioOutcome::kDegraded);
  EXPECT_EQ(parent.reason, DowngradeReason::kUnsignedDelegation);
}

TEST(ScenarioRunner, TemporalFailuresDegradeWithWindowReasons) {
  ScenarioResult expired =
      RunScenario(FirstOfClass(ScenarioClass::kExpiredRrsig));
  EXPECT_EQ(expired.outcome, ScenarioOutcome::kDegraded);
  EXPECT_EQ(expired.reason, DowngradeReason::kRrsigExpired);

  ScenarioResult future =
      RunScenario(FirstOfClass(ScenarioClass::kNotYetValidRrsig));
  EXPECT_EQ(future.outcome, ScenarioOutcome::kDegraded);
  EXPECT_EQ(future.reason, DowngradeReason::kRrsigNotYetValid);
}

TEST(ScenarioRunner, CaOutageRejectsWithNoCertificates) {
  ScenarioResult result = RunScenario(FirstOfClass(ScenarioClass::kCaOutage));
  EXPECT_EQ(result.outcome, ScenarioOutcome::kRejected);
  EXPECT_EQ(result.stats.nope_issued, 0u);
  EXPECT_EQ(result.stats.legacy_issued, 0u);
}

TEST(ScenarioRunner, MauledProofNeverProves) {
  ScenarioResult result =
      RunScenario(FirstOfClass(ScenarioClass::kMauledProof));
  EXPECT_EQ(result.outcome, ScenarioOutcome::kRejected);
}

TEST(ScenarioRunner, RolloverOutcomeTracksHealing) {
  // Scan enough indices to see both the healed and the stuck variant of each
  // rollover kind (the heal coin is per-scenario randomness).
  bool saw_healed = false;
  bool saw_stuck = false;
  for (uint64_t i = 0; i < 120 && !(saw_healed && saw_stuck); ++i) {
    ScenarioSpec spec = GenerateScenario(kSweepSeed, i);
    if (spec.rollover == RolloverKind::kNone) {
      continue;
    }
    SCOPED_TRACE(spec.Describe());
    ScenarioResult result = RunScenario(spec);
    if (spec.rollover_heals) {
      saw_healed = true;
      EXPECT_EQ(result.outcome, ScenarioOutcome::kProved);
      EXPECT_GE(result.stats.recoveries, 1u);
    } else {
      saw_stuck = true;
      EXPECT_EQ(result.outcome, ScenarioOutcome::kDegraded);
      EXPECT_EQ(result.reason, DowngradeReason::kChainBogus);
    }
  }
  EXPECT_TRUE(saw_healed);
  EXPECT_TRUE(saw_stuck);
}

// ---------------------------------------------------------------------------
// Sweep replayability

TEST(ScenarioSweep, SmokeSweepIsDeterministic) {
  OutcomeMatrix first = RunSweep(kSweepSeed, 52);
  OutcomeMatrix second = RunSweep(kSweepSeed, 52);
  EXPECT_EQ(first.Canonical(), second.Canonical());
  EXPECT_EQ(first.Digest(), second.Digest());
  EXPECT_EQ(first.scenarios, 52u);

  // Every scenario lands in exactly one outcome cell.
  size_t total = 0;
  for (int c = 0; c < kNumScenarioClasses; ++c) {
    for (int o = 0; o < kNumScenarioOutcomes; ++o) {
      total += first.counts[c][o];
    }
  }
  EXPECT_EQ(total, first.scenarios);

  // A different sweep seed produces a different matrix digest (the matrix
  // embeds the seed, so this holds even for identical outcome counts).
  EXPECT_NE(first.Digest(), RunSweep(kSweepSeed + 1, 52).Digest());
}

// ---------------------------------------------------------------------------
// Downgrade-reason taxonomy (every generator-triggerable reason has a stable
// name and a classification path).

TEST(DowngradeTaxonomy, NamesAreStableAndUnique) {
  std::set<std::string> names;
  for (int r = 0; r < kNumDowngradeReasons; ++r) {
    std::string name = DowngradeReasonName(static_cast<DowngradeReason>(r));
    EXPECT_NE(name, "unknown");
    EXPECT_TRUE(names.insert(name).second) << "duplicate name: " << name;
  }
}

TEST(DowngradeTaxonomy, ClassifyMapsEveryProofPathError) {
  // The kInsecure split keys off TryBuildChain's context markers, which
  // arrive wrapped in retry context ("resolve: retries exhausted; last:
  // ...") — classification must survive the wrapping.
  EXPECT_EQ(ClassifyDowngrade(Error(
                ErrorCode::kInsecure,
                "resolve: retries exhausted; last: insecure: unsigned zone "
                "(no DNSSEC): a.b.")),
            DowngradeReason::kUnsignedZone);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kInsecure,
                                    "resolve: retries exhausted; last: "
                                    "insecure: unsigned delegation (island "
                                    "of security) at b.")),
            DowngradeReason::kUnsignedDelegation);
  EXPECT_EQ(
      ClassifyDowngrade(Error(ErrorCode::kOutOfRange, "leaf DS: RRSIG expired")),
      DowngradeReason::kRrsigExpired);
  EXPECT_EQ(ClassifyDowngrade(
                Error(ErrorCode::kOutOfRange,
                      "leaf DS: RRSIG inception is in the future (clock skew?)")),
            DowngradeReason::kRrsigNotYetValid);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kBadChecksum, "DS digest")),
            DowngradeReason::kChainBogus);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kBadSignature, "RRSIG")),
            DowngradeReason::kChainBogus);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kUnavailable, "SERVFAIL")),
            DowngradeReason::kDependencyUnavailable);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kTimedOut, "resolver")),
            DowngradeReason::kDependencyTimeout);
  EXPECT_EQ(ClassifyDowngrade(Error(ErrorCode::kCancelled, "attempt budget")),
            DowngradeReason::kProofDeadlineExceeded);
}

TEST(DowngradeTaxonomy, SweepRecordsEveryDnssecShapedReason) {
  // One full round of classes must populate the four deterministic DNSSEC
  // buckets plus chain_bogus (a stuck rollover exists among the first
  // several rounds for this seed).
  OutcomeMatrix matrix = RunSweep(kSweepSeed, 52);
  EXPECT_GE(matrix.reasons[static_cast<int>(DowngradeReason::kUnsignedZone)],
            1u);
  EXPECT_GE(
      matrix.reasons[static_cast<int>(DowngradeReason::kUnsignedDelegation)],
      1u);
  EXPECT_GE(matrix.reasons[static_cast<int>(DowngradeReason::kRrsigExpired)],
            1u);
  EXPECT_GE(
      matrix.reasons[static_cast<int>(DowngradeReason::kRrsigNotYetValid)], 1u);
  EXPECT_GE(matrix.reasons[static_cast<int>(DowngradeReason::kChainBogus)], 1u);
}

// ---------------------------------------------------------------------------
// Minimized regressions for crashes the sweep uncovered.

// The sweep's unsigned-zone scenarios originally aborted: FlakyResolver
// called the throwing DnssecHierarchy::BuildChain, which throws
// std::invalid_argument for any chain crossing an unsigned zone. The
// degradation path needs a typed error instead.
TEST(SweepRegression, UnsignedZoneResolvesToTypedErrorNotThrow) {
  const CryptoSuite& suite = CryptoSuite::Toy();
  DnssecHierarchy dns(suite, /*seed=*/1);
  DnsName tld = DnsName::Root().Child("ac");
  dns.AddZone(tld);
  ZoneConfig unsigned_cfg;
  unsigned_cfg.is_signed = false;
  DnsName leaf = tld.Child("bd");
  dns.AddZone(leaf, unsigned_cfg);

  SimClock clock(1'750'000'000'000ull);
  FlakyResolver resolver(&dns, &clock, /*seed=*/2, /*fault_rate=*/0.0);
  Result<ChainOfTrust> chain = resolver.BuildChain(leaf);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.error().code, ErrorCode::kInsecure);
  EXPECT_NE(chain.error().context.find("unsigned zone"), std::string::npos);

  // Island of security: the unsigned zone is an ancestor of a signed leaf.
  DnsName island_leaf = leaf.Child("ce");
  dns.AddZone(island_leaf);
  Result<ChainOfTrust> island = resolver.BuildChain(island_leaf);
  ASSERT_FALSE(island.ok());
  EXPECT_EQ(island.error().code, ErrorCode::kInsecure);
  EXPECT_NE(island.error().context.find("unsigned delegation"),
            std::string::npos);
}

// Oversized signing buffers (deep names near the DNS length limits) used to
// surface as a std::length_error from Zone::Sign mid-chain-construction;
// TryBuildChain must return kBadLength instead so generated topologies can
// never throw through the degradation path.
TEST(SweepRegression, OversizedSigningBufferIsTypedError) {
  const CryptoSuite& suite = CryptoSuite::Toy();  // max_signing_buffer = 192
  DnssecHierarchy dns(suite, /*seed=*/3);
  DnsName name = DnsName::Root();
  for (int i = 0; i < 3; ++i) {
    name = name.Child(std::string(63, static_cast<char>('a' + i)));
    dns.AddZone(name);
  }
  Result<ChainOfTrust> chain = dns.TryBuildChain(name);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.error().code, ErrorCode::kBadLength);
  EXPECT_THROW(dns.BuildChain(name), std::invalid_argument);
}

TEST(SweepRegression, NonZoneDomainIsMissingNotThrow) {
  const CryptoSuite& suite = CryptoSuite::Toy();
  DnssecHierarchy dns(suite, /*seed=*/4);
  Result<ChainOfTrust> chain =
      dns.TryBuildChain(DnsName::Root().Child("zz").Child("yy"));
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.error().code, ErrorCode::kMissing);
}

}  // namespace
}  // namespace nope
