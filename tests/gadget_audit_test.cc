// Audit harness tests: every shipped gadget must come back clean (no
// soundness/completeness holes, no optimizer equivalence violations, count
// parity between kCount and kProve), and the two deliberately broken
// fixtures must be flagged with the expected finding kinds.
//
// NOPE_AUDIT_BUDGET (assignments per gadget) lets ci.sh run the suite under
// ASan/UBSan with a reduced budget; the default meets the 10^3 acceptance
// bar.
#include "src/r1cs/audit/audit.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/r1cs/audit/fixtures.h"

namespace nope {
namespace {

size_t BudgetFromEnv() {
  const char* env = std::getenv("NOPE_AUDIT_BUDGET");
  if (env == nullptr || *env == '\0') return 1000;
  long v = std::atol(env);
  return v > 0 ? static_cast<size_t>(v) : 1000;
}

AuditOptions TestOptions() {
  AuditOptions options;
  options.seed = 0x4e4f5045ull;  // "NOPE"
  options.min_assignments = BudgetFromEnv();
  return options;
}

bool HasKind(const GadgetAuditResult& result, AuditFinding::Kind kind) {
  for (const AuditFinding& f : result.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

TEST(GadgetAudit, AllStandardGadgetsCleanPreAndPostOptimization) {
  AuditOptions options = TestOptions();
  std::vector<GadgetAuditResult> results = AuditAll(options);
  ASSERT_EQ(results.size(), StandardGadgets().size());
  for (const GadgetAuditResult& r : results) {
    EXPECT_TRUE(r.Clean()) << AuditSummary({r});
    EXPECT_GE(r.assignments_checked, options.min_assignments) << r.name;
    EXPECT_GT(r.instances, 0u) << r.name;
    EXPECT_GT(r.constraints_pre, 0u) << r.name;
    // The optimizer must never grow a gadget.
    EXPECT_LE(r.constraints_post, r.constraints_pre) << r.name;
  }
}

TEST(GadgetAudit, RegistryCoversTheLibrary) {
  // Spot-check that the registry spans the gadget families the statement
  // uses: parsing, masking, hashing, bignum, EC, and both signature schemes.
  std::vector<std::string> expected = {
      "boolean",          "to_bits",       "mask_nope",  "slice_nope",
      "scan_records",     "mimc_dynamic",  "sha256_fixed", "bignum_mulmod_nope",
      "ec_add_hint",      "ecdsa_verify_256", "rsa_verify",
  };
  std::vector<std::string> names;
  for (const Gadget* g : StandardGadgets()) {
    names.push_back(g->name());
  }
  for (const std::string& want : expected) {
    bool found = false;
    for (const std::string& have : names) {
      if (have == want) found = true;
    }
    EXPECT_TRUE(found) << "registry is missing gadget " << want;
  }
  EXPECT_GE(names.size(), 20u);
}

TEST(GadgetAudit, CountModeMatchesProveModeForEveryGadget) {
  // Satellite: every gadget reports the identical constraint count when
  // synthesized in kCount mode and in kProve mode. The harness checks this
  // per instance and reports kCountModeMismatch; re-assert it directly here
  // with a couple of fresh seeds per gadget.
  for (const Gadget* gadget : StandardGadgets()) {
    for (uint64_t seed : {101ull, 202ull}) {
      ConstraintSystem prove_cs(ConstraintSystem::Mode::kProve);
      ConstraintSystem count_cs(ConstraintSystem::Mode::kCount);
      Rng r1(seed), r2(seed);
      try {
        gadget->Synthesize(&prove_cs, &r1);
      } catch (const std::exception&) {
        continue;  // degenerate draw (EC hint collision); harness retries
      }
      ASSERT_NO_THROW(gadget->Synthesize(&count_cs, &r2)) << gadget->name();
      EXPECT_EQ(prove_cs.NumConstraints(), count_cs.NumConstraints()) << gadget->name();
      EXPECT_EQ(prove_cs.NumVariables(), count_cs.NumVariables()) << gadget->name();
      EXPECT_TRUE(count_cs.constraints().empty()) << gadget->name();
    }
  }
}

TEST(GadgetAudit, FlagsUnderConstrainedFixture) {
  AuditOptions options = TestOptions();
  GadgetAuditResult result = AuditGadget(BrokenIsNonZeroGadget(), options);
  EXPECT_FALSE(result.Clean());
  EXPECT_TRUE(HasKind(result, AuditFinding::Kind::kSoundnessHole)) << AuditSummary({result});
}

TEST(GadgetAudit, FlagsOverConstrainedFixture) {
  AuditOptions options = TestOptions();
  GadgetAuditResult result = AuditGadget(BrokenRangeCheckGadget(), options);
  EXPECT_FALSE(result.Clean());
  EXPECT_TRUE(HasKind(result, AuditFinding::Kind::kHonestUnsatisfied)) << AuditSummary({result});
}

TEST(GadgetAudit, FindingsCarryGadgetNameAndSeed) {
  AuditOptions options = TestOptions();
  options.min_assignments = 200;  // plenty for a one-bit hole
  GadgetAuditResult result = AuditGadget(BrokenIsNonZeroGadget(), options);
  ASSERT_FALSE(result.findings.empty());
  for (const AuditFinding& f : result.findings) {
    EXPECT_EQ(f.gadget, BrokenIsNonZeroGadget().name());
    EXPECT_FALSE(f.detail.empty());
  }
  // The summary names the kind so CI logs are greppable.
  std::string summary = AuditSummary({result});
  EXPECT_NE(summary.find("soundness_hole"), std::string::npos) << summary;
}

TEST(GadgetAudit, AuditWithoutOptimizerStillFindsHoles) {
  AuditOptions options = TestOptions();
  options.with_optimizer = false;
  GadgetAuditResult broken = AuditGadget(BrokenIsNonZeroGadget(), options);
  EXPECT_TRUE(HasKind(broken, AuditFinding::Kind::kSoundnessHole));
  GadgetAuditResult clean = AuditGadget(*StandardGadgets()[0], options);
  EXPECT_TRUE(clean.Clean()) << AuditSummary({clean});
  EXPECT_EQ(clean.constraints_post, 0u);  // no optimizer ran
}

}  // namespace
}  // namespace nope
