#include <gtest/gtest.h>

#include "src/ec/bn254.h"
#include "src/ec/msm.h"
#include "src/ec/p256.h"

namespace nope {
namespace {

TEST(G1, GeneratorOnCurveAndOrder) {
  G1 g = G1Generator();
  EXPECT_TRUE(g.IsOnCurve());
  EXPECT_TRUE(g.ScalarMul(Bn254Order()).IsInfinity());
  EXPECT_FALSE(g.ScalarMul(BigUInt(12345)).IsInfinity());
}

TEST(G2, GeneratorOnCurveAndOrder) {
  G2 g = G2Generator();
  EXPECT_TRUE(g.IsOnCurve());
  EXPECT_TRUE(g.ScalarMul(Bn254Order()).IsInfinity());
}

TEST(P256, GeneratorOnCurveAndOrder) {
  P256Point g = P256Generator();
  EXPECT_TRUE(g.IsOnCurve());
  EXPECT_TRUE(g.ScalarMul(P256Order()).IsInfinity());
}

template <typename Point>
void CheckGroupLaws(Point g, const BigUInt& order) {
  Rng rng(201);
  BigUInt a = BigUInt::RandomBelow(&rng, order);
  BigUInt b = BigUInt::RandomBelow(&rng, order);
  Point pa = g.ScalarMul(a);
  Point pb = g.ScalarMul(b);

  // Commutativity and consistency with scalar arithmetic.
  EXPECT_TRUE(pa.Add(pb).Equals(pb.Add(pa)));
  EXPECT_TRUE(pa.Add(pb).Equals(g.ScalarMul(a.AddMod(b, order))));
  EXPECT_TRUE(pa.Double().Equals(g.ScalarMul(a.MulMod(BigUInt(2), order))));
  // Identity and inverse.
  EXPECT_TRUE(pa.Add(Point::Infinity()).Equals(pa));
  EXPECT_TRUE(pa.Add(pa.Negate()).IsInfinity());
  // Results stay on the curve.
  EXPECT_TRUE(pa.Add(pb).IsOnCurve());
  EXPECT_TRUE(pa.Double().IsOnCurve());
  // Doubling path in Add().
  EXPECT_TRUE(pa.Add(pa).Equals(pa.Double()));
}

TEST(G1, GroupLaws) { CheckGroupLaws(G1Generator(), Bn254Order()); }
TEST(G2, GroupLaws) { CheckGroupLaws(G2Generator(), Bn254Order()); }
TEST(P256, GroupLaws) { CheckGroupLaws(P256Generator(), P256Order()); }

TEST(P256, KnownScalarMultiple) {
  // k = 2 from SEC test data: 2G has known coordinates.
  auto two_g = P256Generator().ScalarMul(BigUInt(2)).ToAffine();
  EXPECT_EQ(two_g.x.ToBigUInt().ToHex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(two_g.y.ToBigUInt().ToHex(),
            "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(Msm, MatchesNaiveSum) {
  Rng rng(202);
  for (size_t n : {1u, 2u, 5u, 33u, 100u}) {
    std::vector<G1> bases;
    std::vector<BigUInt> scalars;
    G1 expected = G1::Infinity();
    for (size_t i = 0; i < n; ++i) {
      BigUInt k = BigUInt::RandomBelow(&rng, Bn254Order());
      G1 p = G1Generator().ScalarMul(BigUInt::RandomBelow(&rng, Bn254Order()));
      bases.push_back(p);
      scalars.push_back(k);
      expected = expected.Add(p.ScalarMul(k));
    }
    EXPECT_TRUE(Msm(bases, scalars).Equals(expected)) << "n=" << n;
  }
}

TEST(Msm, HandlesZeroScalarsAndInfinity) {
  std::vector<G1> bases = {G1Generator(), G1::Infinity(), G1Generator().Double()};
  std::vector<BigUInt> scalars = {BigUInt(), BigUInt(7), BigUInt(3)};
  G1 expected = G1Generator().Double().ScalarMul(BigUInt(3));
  EXPECT_TRUE(Msm(bases, scalars).Equals(expected));
  EXPECT_TRUE(Msm<G1>({}, {}).IsInfinity());
  // Size mismatches are programming errors: Msm aborts via NOPE_INVARIANT
  // instead of throwing (the library is exception-free, see result.h).
  EXPECT_DEATH(Msm<G1>({G1Generator()}, {}), "bases/scalars size mismatch");
}

TEST(EcPoint, AffineRoundTrip) {
  Rng rng(203);
  G1 p = G1Generator().ScalarMul(BigUInt::RandomBelow(&rng, Bn254Order()));
  auto aff = p.ToAffine();
  EXPECT_FALSE(aff.infinity);
  EXPECT_TRUE(G1::FromAffine(aff.x, aff.y).Equals(p));
  EXPECT_TRUE(G1::Infinity().ToAffine().infinity);
}

}  // namespace
}  // namespace nope
