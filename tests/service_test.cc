// ProvingService tests (ISSUE 5): admission control (queue-full and
// infeasible-deadline rejection), shedding expired/cancelled jobs at dequeue,
// deficit-round-robin weighted fairness with exact per-domain counts,
// priority ordering, mid-prove cancellation (deadline and explicit), the
// RenewalManager/KeyCache integration, the SnapshotJson golden format, and
// the headline determinism contract: event log, metrics snapshot, and proof
// bytes are byte-identical for NOPE_THREADS in {1, 2, 7} under SimClock.
#include "src/service/proving_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/threadpool.h"
#include "src/core/renewal.h"

namespace nope {
namespace {

// Simulated cached artifact (the service is agnostic to what it pins).
struct SimKey : CachedKey {
  explicit SimKey(size_t bytes) : bytes(bytes) {}
  size_t SizeBytes() const override { return bytes; }
  size_t bytes;
};

KeyCache::Loader SimLoader(size_t bytes = 1024) {
  return [bytes]() -> std::shared_ptr<const CachedKey> {
    return std::make_shared<SimKey>(bytes);
  };
}

// Statement that succeeds instantly without touching the clock.
ProveStatement OkStatement() {
  return [](const CachedKey*, const CancellationToken&) { return Status::Ok(); };
}

// Statement that burns `total_ms` of simulated time in `slice_ms` slices,
// polling the token at each slice boundary — the test twin of the real
// prover's chunk-boundary cancellation.
ProveStatement SimProve(SimClock* clock, uint64_t total_ms,
                        uint64_t slice_ms = 100) {
  return [clock, total_ms, slice_ms](const CachedKey*,
                                     const CancellationToken& cancel) -> Status {
    uint64_t burned = 0;
    while (burned < total_ms) {
      if (cancel.cancelled()) {
        return Error(ErrorCode::kCancelled, "sim prove cancelled");
      }
      uint64_t step = std::min(slice_ms, total_ms - burned);
      clock->AdvanceMs(step);
      burned += step;
    }
    if (cancel.cancelled()) {
      return Error(ErrorCode::kCancelled, "sim prove cancelled");
    }
    return Status::Ok();
  };
}

ProveRequest MakeRequest(const std::string& domain, ProveStatement statement,
                         uint64_t cost_ms = 1000, uint64_t deadline_ms = 0,
                         int priority = 0) {
  ProveRequest req;
  req.domain = domain;
  req.circuit_id = "sim";
  req.statement = std::move(statement);
  req.key_loader = SimLoader();
  req.cost_estimate_ms = cost_ms;
  req.deadline_ms = deadline_ms;
  req.priority = priority;
  return req;
}

TEST(ProvingService, AdmissionRejectsWhenQueueFull) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  ProvingServiceConfig config;
  config.max_queue_depth = 2;
  ProvingService service(config, &clock, nullptr, &metrics);

  EXPECT_EQ(service.Submit(MakeRequest("a", OkStatement())).admission,
            Admission::kAdmitted);
  EXPECT_EQ(service.Submit(MakeRequest("b", OkStatement())).admission,
            Admission::kAdmitted);
  auto rejected = service.Submit(MakeRequest("c", OkStatement()));
  EXPECT_EQ(rejected.admission, Admission::kRejectedQueueFull);
  EXPECT_EQ(rejected.job_id, 0u);
  EXPECT_EQ(service.queue_depth(), 2u);
  EXPECT_EQ(metrics.GetCounter("service.admitted")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("service.rejected_queue_full")->value(), 1u);
  EXPECT_NE(service.EventLog().find("rejected_queue_full domain=c"),
            std::string::npos);
  // A rejected job never appears in results.
  service.RunUntilIdle();
  EXPECT_EQ(service.results().size(), 2u);
}

TEST(ProvingService, AdmissionRejectsInfeasibleDeadline) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, &metrics);

  // now + cost = 2000 > deadline 1500: cannot finish even if run immediately.
  auto rejected = service.Submit(
      MakeRequest("a", OkStatement(), /*cost_ms=*/1000, /*deadline_ms=*/1500));
  EXPECT_EQ(rejected.admission, Admission::kRejectedInfeasible);
  EXPECT_EQ(metrics.GetCounter("service.rejected_infeasible")->value(), 1u);

  // Exactly feasible (now + cost == deadline) is admitted.
  EXPECT_EQ(service
                .Submit(MakeRequest("a", OkStatement(), /*cost_ms=*/1000,
                                    /*deadline_ms=*/2000))
                .admission,
            Admission::kAdmitted);

  // With the check disabled the infeasible job is admitted (and would be
  // shed at dequeue instead).
  ProvingServiceConfig lax;
  lax.reject_infeasible = false;
  ProvingService lax_service(lax, &clock, nullptr, nullptr);
  EXPECT_EQ(lax_service
                .Submit(MakeRequest("a", OkStatement(), /*cost_ms=*/1000,
                                    /*deadline_ms=*/1500))
                .admission,
            Admission::kAdmitted);
}

TEST(ProvingService, ShedsExpiredJobAtDequeue) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, &metrics);

  auto submitted = service.Submit(
      MakeRequest("a", OkStatement(), /*cost_ms=*/500, /*deadline_ms=*/1500));
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);
  clock.AdvanceMs(600);  // deadline passes while the job sits queued

  EXPECT_TRUE(service.PumpOne());
  EXPECT_FALSE(service.PumpOne());
  ASSERT_EQ(service.results().size(), 1u);
  const JobResult& r = service.results()[0];
  EXPECT_EQ(r.outcome, JobOutcome::kShedExpired);
  EXPECT_EQ(r.started_ms, 1600u);  // never ran: started == finished == shed time
  EXPECT_EQ(r.finished_ms, 1600u);
  EXPECT_EQ(metrics.GetCounter("service.shed_expired")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("service.jobs_ok")->value(), 0u);
}

TEST(ProvingService, ShedsCancelledQueuedJob) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, &metrics);

  auto first = service.Submit(MakeRequest("a", OkStatement()));
  auto second = service.Submit(MakeRequest("a", OkStatement()));
  ASSERT_EQ(second.admission, Admission::kAdmitted);
  EXPECT_TRUE(service.Cancel(second.job_id));
  EXPECT_FALSE(service.Cancel(9999));  // unknown id

  EXPECT_EQ(service.RunUntilIdle(), 2u);
  ASSERT_EQ(service.results().size(), 2u);
  EXPECT_EQ(service.results()[0].job_id, first.job_id);
  EXPECT_EQ(service.results()[0].outcome, JobOutcome::kOk);
  EXPECT_EQ(service.results()[1].job_id, second.job_id);
  EXPECT_EQ(service.results()[1].outcome, JobOutcome::kShedCancelled);
  EXPECT_EQ(metrics.GetCounter("service.shed_cancelled")->value(), 1u);
  // A finished job can no longer be cancelled.
  EXPECT_FALSE(service.Cancel(second.job_id));
}

// Deficit round-robin with weights {a:1, b:2, c:4}, quantum == cost == 1000:
// every full round serves exactly (1, 2, 4) jobs, so the first 14 pumps
// (two rounds) split 2/4/8. The schedule is exact, not approximate.
TEST(ProvingService, WeightedFairShareAcrossThreeDomains) {
  SimClock clock(1000);
  ProvingServiceConfig config;
  config.quantum_ms = 1000;
  config.domain_weights = {{"a", 1}, {"b", 2}, {"c", 4}};
  ProvingService service(config, &clock, nullptr, nullptr);

  for (int i = 0; i < 4; ++i) {
    service.Submit(MakeRequest("a", OkStatement(), /*cost_ms=*/1000));
  }
  for (int i = 0; i < 6; ++i) {
    service.Submit(MakeRequest("b", OkStatement(), /*cost_ms=*/1000));
  }
  for (int i = 0; i < 10; ++i) {
    service.Submit(MakeRequest("c", OkStatement(), /*cost_ms=*/1000));
  }

  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(service.PumpOne());
  }
  std::map<std::string, int> served;
  for (const JobResult& r : service.results()) {
    ++served[r.domain];
  }
  EXPECT_EQ(served["a"], 2);
  EXPECT_EQ(served["b"], 4);
  EXPECT_EQ(served["c"], 8);

  // The backlog drains completely and every job succeeded.
  EXPECT_EQ(service.RunUntilIdle(), 6u);
  EXPECT_EQ(service.results().size(), 20u);
  for (const JobResult& r : service.results()) {
    EXPECT_EQ(r.outcome, JobOutcome::kOk);
  }
}

TEST(ProvingService, PriorityOrdersWithinDomainFifoWithinPriority) {
  SimClock clock(1000);
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, nullptr);
  // ids 1..4 with priorities 0, 5, 5, 1.
  service.Submit(MakeRequest("a", OkStatement(), 100, 0, /*priority=*/0));
  service.Submit(MakeRequest("a", OkStatement(), 100, 0, /*priority=*/5));
  service.Submit(MakeRequest("a", OkStatement(), 100, 0, /*priority=*/5));
  service.Submit(MakeRequest("a", OkStatement(), 100, 0, /*priority=*/1));
  service.RunUntilIdle();
  ASSERT_EQ(service.results().size(), 4u);
  EXPECT_EQ(service.results()[0].job_id, 2u);  // highest priority, first arrival
  EXPECT_EQ(service.results()[1].job_id, 3u);  // FIFO among equals
  EXPECT_EQ(service.results()[2].job_id, 4u);
  EXPECT_EQ(service.results()[3].job_id, 1u);
}

TEST(ProvingService, DeadlineExpiryMidProveCancelsAtSliceBoundary) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, &metrics);

  // Feasible at admission (cost 100), but the statement actually needs
  // 1000ms — the deadline token fires mid-prove at a slice boundary.
  auto submitted = service.Submit(
      MakeRequest("a", SimProve(&clock, /*total_ms=*/1000, /*slice_ms=*/100),
                  /*cost_ms=*/100, /*deadline_ms=*/1500));
  ASSERT_EQ(submitted.admission, Admission::kAdmitted);
  EXPECT_TRUE(service.PumpOne());

  ASSERT_EQ(service.results().size(), 1u);
  const JobResult& r = service.results()[0];
  EXPECT_EQ(r.outcome, JobOutcome::kCancelled);
  // Aborted at the first slice boundary past the deadline, not after the
  // full 1000ms.
  EXPECT_EQ(r.finished_ms - r.started_ms, 500u);
  EXPECT_EQ(metrics.GetCounter("service.jobs_cancelled")->value(), 1u);
  EXPECT_NE(service.EventLog().find("outcome=cancelled"), std::string::npos);
}

TEST(ProvingService, ExplicitCancelMidProveAborts) {
  SimClock clock(1000);
  ProvingService service(ProvingServiceConfig{}, &clock, nullptr, nullptr);

  // The statement cancels its own job two slices in (stand-in for another
  // thread calling Cancel against a real clock).
  ProvingService* svc = &service;
  auto job_id = std::make_shared<uint64_t>(0);
  ProveRequest req = MakeRequest("a", OkStatement(), /*cost_ms=*/100);
  req.statement = [svc, job_id, &clock](const CachedKey*,
                                        const CancellationToken& cancel) -> Status {
    clock.AdvanceMs(100);
    EXPECT_TRUE(svc->Cancel(*job_id));  // running jobs are still cancellable
    clock.AdvanceMs(100);
    if (cancel.cancelled()) {
      return Error(ErrorCode::kCancelled, "aborted after cancel");
    }
    return Status::Ok();
  };
  auto submitted = service.Submit(std::move(req));
  *job_id = submitted.job_id;

  EXPECT_TRUE(service.PumpOne());
  ASSERT_EQ(service.results().size(), 1u);
  EXPECT_EQ(service.results()[0].outcome, JobOutcome::kCancelled);
  EXPECT_NE(service.EventLog().find("cancel_requested job=1"), std::string::npos);
}

TEST(ProvingService, KeyCacheHitMissRecordedPerJob) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  KeyCache cache(1 << 20, &metrics);
  ProvingService service(ProvingServiceConfig{}, &clock, &cache, &metrics);

  service.Submit(MakeRequest("a", OkStatement()));
  service.Submit(MakeRequest("b", OkStatement()));  // same circuit id "sim"
  service.RunUntilIdle();

  ASSERT_EQ(service.results().size(), 2u);
  EXPECT_FALSE(service.results()[0].key_cache_hit);
  EXPECT_TRUE(service.results()[1].key_cache_hit);
  std::string log = service.EventLog();
  EXPECT_NE(log.find("cache=miss"), std::string::npos);
  EXPECT_NE(log.find("cache=hit"), std::string::npos);
  EXPECT_EQ(metrics.GetCounter("keycache.misses")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("keycache.hits")->value(), 1u);
}

// --- RenewalManager integration ---------------------------------------------

// Always-healthy pipeline that burns fixed simulated time per stage.
class HealthyPipeline : public IssuancePipeline {
 public:
  explicit HealthyPipeline(Clock* clock) : clock_(clock) {}
  Status ResolveChain(const Deadline&) override {
    clock_->SleepMs(10);
    return Status::Ok();
  }
  Status GenerateProof(const Deadline&) override {
    clock_->SleepMs(100);
    return Status::Ok();
  }
  Status FinalizeCertificate(const Deadline&, bool) override {
    clock_->SleepMs(20);
    return Status::Ok();
  }

 private:
  Clock* clock_;
};

TEST(ProvingService, RenewalManagerSharesKeyCache) {
  SimClock clock(1000);
  MetricsRegistry metrics;
  KeyCache cache(1 << 20, &metrics);
  HealthyPipeline pipeline(&clock);
  RenewalManager manager(RenewalConfig{}, &clock, &pipeline, /*seed=*/42);
  manager.AttachKeyCache(&cache, "sim-circuit", SimLoader(4096));
  manager.AttachMetrics(&metrics);

  EXPECT_TRUE(manager.RunOneCycle());  // first prove: Setup runs, cache miss
  EXPECT_TRUE(manager.RunOneCycle());  // key still resident: cache hit

  std::string log = manager.EventLog();
  EXPECT_NE(log.find("key_cache_miss sim-circuit"), std::string::npos);
  EXPECT_NE(log.find("key_cache_hit sim-circuit"), std::string::npos);
  EXPECT_EQ(metrics.GetCounter("renewal.key_cache_miss")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("renewal.key_cache_hit")->value(), 1u);
  KeyCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

// --- SnapshotJson golden -----------------------------------------------------

TEST(MetricsRegistry, SnapshotJsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("jobs.ok")->Increment(2);
  registry.GetCounter("weird \"name\"\\path\n")->Increment();
  registry.GetGauge("queue_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("latency_ms", {10, 100});
  h->Record(5);
  h->Record(10);    // boundary value lands in its bucket (v <= bound)
  h->Record(99);
  h->Record(1000);  // overflow bucket

  const std::string golden =
      "{\"counters\":{\"jobs.ok\":2,\"weird \\\"name\\\"\\\\path\\u000a\":1},"
      "\"gauges\":{\"queue_depth\":-3},"
      "\"histograms\":{\"latency_ms\":{\"bounds\":[10,100],"
      "\"buckets\":[2,1,1],\"count\":4,\"sum\":1114}}}";
  EXPECT_EQ(registry.SnapshotJson(), golden);
  // Re-registering returns the same metric; the snapshot is stable.
  EXPECT_EQ(registry.GetCounter("jobs.ok")->value(), 2u);
  EXPECT_EQ(registry.SnapshotJson(), golden);
}

// --- Determinism across thread counts ----------------------------------------

// Same fixture as tests/groth16_test.cc: public x, witness w, w^3 + w + 5 == x.
ConstraintSystem CubicCircuit(uint64_t w_val, uint64_t x_val) {
  ConstraintSystem cs;
  Var x = cs.AddPublicInput(Fr::FromU64(x_val));
  Var w = cs.AddWitness(Fr::FromU64(w_val));
  Fr w_fr = Fr::FromU64(w_val);
  Var w2 = cs.AddWitness(w_fr * w_fr);
  Var w3 = cs.AddWitness(w_fr * w_fr * w_fr);
  cs.Enforce(LC(w), LC(w), LC(w2));
  cs.Enforce(LC(w2), LC(w), LC(w3));
  cs.EnforceEqual(LC(w3) + LC(w) + LC::Constant(Fr::FromU64(5)), LC(x));
  return cs;
}

struct ScenarioArtifacts {
  std::string event_log;
  std::string metrics_snapshot;
  Bytes proof_bytes;  // both proofs, concatenated
};

// One full mixed scenario: two real groth16 proves (miss then hit on the
// shared KeyCache), a simulated prove that burns enough clock to expire a
// queued job, a shed-expired job, and a shed-cancelled job. Everything runs
// through a fresh SimClock/KeyCache/MetricsRegistry so repeated calls are
// independent; the global ThreadPool size is the only outside variable.
ScenarioArtifacts RunMixedScenario() {
  SimClock clock(1000);
  MetricsRegistry metrics;
  KeyCache cache(64u << 20, &metrics);
  ProvingServiceConfig config;
  config.max_queue_depth = 16;
  config.domain_weights = {{"alpha", 2}};
  ProvingService service(config, &clock, &cache, &metrics);

  ConstraintSystem cs = CubicCircuit(3, 35);
  auto loader = [&cs]() -> std::shared_ptr<const CachedKey> {
    Rng setup_rng(601);  // fixed seed: the cached key is identical every run
    auto entry = std::make_shared<ProvingKeyEntry>();
    entry->pk = groth16::Setup(cs, &setup_rng);
    return entry;
  };
  Rng prove_rng(602);
  groth16::Proof proof1, proof2;

  ProveRequest r1;
  r1.domain = "alpha";
  r1.circuit_id = "cubic";
  r1.key_loader = loader;
  r1.statement = MakeGroth16Statement(&cs, &prove_rng, &metrics, &clock, &proof1);
  r1.cost_estimate_ms = 500;
  ProveRequest r2 = r1;
  r2.statement = MakeGroth16Statement(&cs, &prove_rng, &metrics, &clock, &proof2);

  EXPECT_EQ(service.Submit(std::move(r1)).admission, Admission::kAdmitted);
  EXPECT_EQ(service.Submit(std::move(r2)).admission, Admission::kAdmitted);
  // Burns 700ms, pushing the clock past job 4's deadline before it dequeues.
  EXPECT_EQ(service
                .Submit(MakeRequest("beta", SimProve(&clock, 700), /*cost_ms=*/500))
                .admission,
            Admission::kAdmitted);
  EXPECT_EQ(service
                .Submit(MakeRequest("gamma", OkStatement(), /*cost_ms=*/500,
                                    /*deadline_ms=*/1600))
                .admission,
            Admission::kAdmitted);
  auto cancelled =
      service.Submit(MakeRequest("gamma", OkStatement(), /*cost_ms=*/500));
  EXPECT_EQ(cancelled.admission, Admission::kAdmitted);
  EXPECT_TRUE(service.Cancel(cancelled.job_id));

  EXPECT_EQ(service.RunUntilIdle(), 5u);
  EXPECT_EQ(service.results().size(), 5u);
  EXPECT_FALSE(service.results()[0].key_cache_hit);  // alpha job 1: Setup ran
  EXPECT_TRUE(service.results()[1].key_cache_hit);   // alpha job 2: resident
  EXPECT_EQ(service.results()[3].outcome, JobOutcome::kShedExpired);
  EXPECT_EQ(service.results()[4].outcome, JobOutcome::kShedCancelled);

  // Both proofs must actually verify — determinism without soundness would
  // be vacuous.
  auto key = cache.Checkout("cubic", loader);
  EXPECT_TRUE(key.was_hit());
  const auto& vk = key.As<ProvingKeyEntry>()->pk.vk;
  EXPECT_TRUE(groth16::Verify(vk, {Fr::FromU64(35)}, proof1));
  EXPECT_TRUE(groth16::Verify(vk, {Fr::FromU64(35)}, proof2));
  key.Release();

  ScenarioArtifacts art;
  art.event_log = service.EventLog();
  art.metrics_snapshot = metrics.SnapshotJson();
  art.proof_bytes = proof1.ToBytes();
  Bytes second = proof2.ToBytes();
  art.proof_bytes.insert(art.proof_bytes.end(), second.begin(), second.end());
  return art;
}

// EWMA cost model regression (ISSUE 8): when the true prove cost shifts, the
// per-circuit estimate converges toward the observed cost, and shedding
// decisions follow the estimate — both at admission and for already-queued
// jobs re-priced at dequeue.
TEST(ProvingService, CostModelConvergesAndDrivesShedding) {
  SimClock clock(1'000'000);
  MetricsRegistry metrics;
  ProvingServiceConfig config;
  config.use_cost_model = true;
  config.cost_prior_ms = 500;   // optimistic prior
  config.cost_ewma_num = 1;
  config.cost_ewma_den = 2;     // fast-converging half/half blend for the test
  config.quantum_ms = 100'000;  // fairness not under test: always affordable
  ProvingService service(config, &clock, nullptr, &metrics);

  // Model-priced request: cost_estimate_ms == 0 defers to the EWMA.
  auto model_req = [&](uint64_t deadline_ms) {
    ProveRequest req = MakeRequest("a", SimProve(&clock, /*total_ms=*/2000),
                                   /*cost_ms=*/0, deadline_ms);
    return req;
  };

  EXPECT_EQ(service.CostEstimateMs("sim"), 500u);  // prior before any evidence

  // Under the optimistic prior, a deadline of now + 600 looks feasible even
  // though the statement actually burns 2000 ms.
  EXPECT_EQ(service.Submit(model_req(clock.NowMs() + 600)).admission,
            Admission::kAdmitted);
  ASSERT_TRUE(service.PumpOne());
  // The job ran (and overran its deadline — cancelled at a slice boundary),
  // but only kOk completions teach the model, so run some to convergence.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(service.Submit(model_req(/*deadline_ms=*/0)).admission,
              Admission::kAdmitted);
    ASSERT_TRUE(service.PumpOne());
  }
  // Estimate walked 500 -> 1250 -> 1625 -> ... toward 2000; with num/den =
  // 1/2 six completions land within 3% of the true cost.
  uint64_t learned = service.CostEstimateMs("sim");
  EXPECT_GE(learned, 1950u);
  EXPECT_LE(learned, 2000u);

  // The same deadline that was admitted under the prior is now rejected as
  // infeasible: the shedding decision converged with the cost estimate.
  EXPECT_EQ(service.Submit(model_req(clock.NowMs() + 600)).admission,
            Admission::kRejectedInfeasible);
  EXPECT_EQ(metrics.GetCounter("service.rejected_infeasible")->value(), 1u);

  // Feasible under the learned estimate still admits.
  EXPECT_EQ(service.Submit(model_req(clock.NowMs() + 2500)).admission,
            Admission::kAdmitted);
  service.RunUntilIdle();

  // Dequeue re-pricing: queue a model-priced job behind a long-running one.
  // At admission the estimate (~2000) fits its deadline; by the time it
  // reaches the head, now + estimate > deadline and it sheds without running.
  uint64_t t0 = clock.NowMs();
  EXPECT_EQ(service
                .Submit(MakeRequest("a", SimProve(&clock, 2000), /*cost_ms=*/2000,
                                    /*deadline_ms=*/t0 + 10'000))
                .admission,
            Admission::kAdmitted);
  EXPECT_EQ(service.Submit(model_req(t0 + 2100)).admission, Admission::kAdmitted);
  ASSERT_TRUE(service.PumpOne());  // runs the first job: 2000 ms pass
  ASSERT_TRUE(service.PumpOne());  // second job now infeasible: shed, not run
  const JobResult& shed = service.results().back();
  EXPECT_EQ(shed.outcome, JobOutcome::kShedExpired);
  EXPECT_EQ(shed.started_ms, shed.finished_ms);  // never ran
  EXPECT_NE(service.EventLog().find("cost_src=ewma"), std::string::npos);
  EXPECT_NE(service.EventLog().find("cost_model circuit=sim"), std::string::npos);
}

// Streaming sinks + bounded recording (ISSUE 8): with record_results and
// record_events off, the vectors stay empty (fleet-scale memory bound) while
// the sinks observe the identical stream.
TEST(ProvingService, SinksObserveStreamWhenRecordingDisabled) {
  SimClock clock(1000);
  ProvingServiceConfig config;
  config.record_results = false;
  config.record_events = false;
  ProvingService service(config, &clock, nullptr, nullptr);

  std::vector<JobResult> seen;
  size_t event_lines = 0;
  service.SetResultSink([&](const JobResult& r) { seen.push_back(r); });
  service.SetEventSink([&](uint64_t, const std::string&) { ++event_lines; });

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(service.Submit(MakeRequest("a", OkStatement())).admission,
              Admission::kAdmitted);
  }
  EXPECT_EQ(service.RunUntilIdle(), 3u);

  EXPECT_TRUE(service.results().empty());
  EXPECT_TRUE(service.EventLog().empty());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].outcome, JobOutcome::kOk);
  EXPECT_GT(event_lines, 0u);  // submitted/started/done all flowed through
}

// The acceptance gate: with the global pool at 1, 2, and 7 threads, the same
// scenario yields a byte-identical event log, metrics snapshot, and proof
// bytes. Jobs run serially on the pump; NOPE_THREADS only changes the
// parallelism inside groth16::Prove, which is bit-identical by contract.
TEST(ProvingService, DeterministicAcrossThreadCounts) {
  ScenarioArtifacts baseline;
  bool have_baseline = false;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{7}}) {
    ThreadPool::SetGlobalThreads(threads);
    ScenarioArtifacts art = RunMixedScenario();
    if (!have_baseline) {
      baseline = std::move(art);
      have_baseline = true;
      // Spot-check the transcript covers every path the contract names.
      EXPECT_NE(baseline.event_log.find("cache=miss"), std::string::npos);
      EXPECT_NE(baseline.event_log.find("cache=hit"), std::string::npos);
      EXPECT_NE(baseline.event_log.find("shed_expired"), std::string::npos);
      EXPECT_NE(baseline.event_log.find("shed_cancelled"), std::string::npos);
      continue;
    }
    EXPECT_EQ(art.event_log, baseline.event_log) << "threads=" << threads;
    EXPECT_EQ(art.metrics_snapshot, baseline.metrics_snapshot)
        << "threads=" << threads;
    EXPECT_EQ(art.proof_bytes, baseline.proof_bytes) << "threads=" << threads;
  }
  ThreadPool::SetGlobalThreads(0);  // restore the environment default
}

}  // namespace
}  // namespace nope
