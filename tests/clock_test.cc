// SimClock, Deadline, and RetryPolicy: the timing substrate of the renewal
// lifecycle. The property tests pin the determinism contract — a retry
// schedule is a pure function of (policy, seed, budget).
#include "src/base/clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace nope {
namespace {

TEST(SimClock, AdvancesInstantlyAndMonotonically) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000u);
  clock.SleepMs(250);
  EXPECT_EQ(clock.NowMs(), 1250u);
  clock.AdvanceMs(0);
  EXPECT_EQ(clock.NowMs(), 1250u);
  clock.SleepMs(24ull * 3600 * 1000);  // a simulated day costs nothing real
  EXPECT_EQ(clock.NowMs(), 1250u + 24ull * 3600 * 1000);
}

TEST(RealClock, MovesForward) {
  RealClock* clock = RealClock::Get();
  uint64_t a = clock->NowMs();
  clock->SleepMs(2);
  uint64_t b = clock->NowMs();
  EXPECT_GE(b, a + 1);
}

TEST(Deadline, DefaultIsInfinite) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), UINT64_MAX);
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(Deadline, ExpiresExactlyAtTheInstant) {
  SimClock clock(5000);
  Deadline d = Deadline::After(clock, 100);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 100u);
  clock.AdvanceMs(99);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 1u);
  clock.AdvanceMs(1);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0u);
  clock.AdvanceMs(1000);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0u);
}

TEST(RetryPolicy, BackoffIsGeometricWithClamp) {
  RetryPolicy policy;
  policy.initial_delay_ms = 100;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 1500;
  EXPECT_EQ(policy.BackoffMs(0), 100u);
  EXPECT_EQ(policy.BackoffMs(1), 200u);
  EXPECT_EQ(policy.BackoffMs(2), 400u);
  EXPECT_EQ(policy.BackoffMs(3), 800u);
  EXPECT_EQ(policy.BackoffMs(4), 1500u);  // clamped
  EXPECT_EQ(policy.BackoffMs(20), 1500u);
}

// Property: for any seed, the full schedule is byte-identical across replays.
TEST(RetryPolicy, ScheduleIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng a(seed), b(seed);
    std::vector<uint64_t> first = policy.Schedule(/*budget_ms=*/600'000, &a);
    std::vector<uint64_t> second = policy.Schedule(/*budget_ms=*/600'000, &b);
    EXPECT_EQ(first, second) << "seed=" << seed;
  }
  // Distinct seeds should (overwhelmingly) produce distinct jitter somewhere.
  Rng a(1), b(2);
  EXPECT_NE(policy.Schedule(600'000, &a), policy.Schedule(600'000, &b));
}

// Property: every jittered delay stays within the configured fraction of its
// un-jittered base (integer rounding allows +-1 ms at the edges).
TEST(RetryPolicy, JitterStaysWithinConfiguredFraction) {
  RetryPolicy policy;
  policy.initial_delay_ms = 1000;
  policy.max_delay_ms = 60'000;
  policy.jitter_fraction = 0.25;
  policy.max_attempts = 6;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    for (size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
      uint64_t base = policy.BackoffMs(attempt);
      uint64_t delay = policy.DelayMs(attempt, &rng);
      uint64_t width = static_cast<uint64_t>(
          static_cast<double>(base) * policy.jitter_fraction);
      EXPECT_GE(delay, base - width) << "seed=" << seed << " attempt=" << attempt;
      EXPECT_LE(delay, base + width) << "seed=" << seed << " attempt=" << attempt;
    }
  }
}

TEST(RetryPolicy, ZeroJitterDrawsButNeverDeviates) {
  RetryPolicy policy;
  policy.jitter_fraction = 0.0;
  Rng rng(7);
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(policy.DelayMs(attempt, &rng), policy.BackoffMs(attempt));
  }
}

// Property: the cumulative schedule never exceeds the budget, and attempt
// count never exceeds max_attempts - 1 delays.
TEST(RetryPolicy, ScheduleBoundedByBudgetAndAttempts) {
  RetryPolicy policy;
  policy.initial_delay_ms = 500;
  policy.max_attempts = 10;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    for (uint64_t budget : {0ull, 100ull, 1'000ull, 10'000ull, 100'000ull}) {
      Rng rng(seed);
      std::vector<uint64_t> schedule = policy.Schedule(budget, &rng);
      EXPECT_LE(schedule.size(), policy.max_attempts - 1);
      uint64_t total = 0;
      for (uint64_t d : schedule) {
        total += d;
      }
      EXPECT_LE(total, budget) << "seed=" << seed << " budget=" << budget;
    }
  }
}

TEST(RetryPolicy, GenerousBudgetYieldsFullSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  Rng rng(42);
  std::vector<uint64_t> schedule = policy.Schedule(UINT64_MAX / 2, &rng);
  EXPECT_EQ(schedule.size(), policy.max_attempts - 1);
}

}  // namespace
}  // namespace nope
