// SimClock, Deadline, and RetryPolicy: the timing substrate of the renewal
// lifecycle. The property tests pin the determinism contract — a retry
// schedule is a pure function of (policy, seed, budget).
#include "src/base/clock.h"

#include <gtest/gtest.h>

#include <vector>

namespace nope {
namespace {

TEST(SimClock, AdvancesInstantlyAndMonotonically) {
  SimClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000u);
  clock.SleepMs(250);
  EXPECT_EQ(clock.NowMs(), 1250u);
  clock.AdvanceMs(0);
  EXPECT_EQ(clock.NowMs(), 1250u);
  clock.SleepMs(24ull * 3600 * 1000);  // a simulated day costs nothing real
  EXPECT_EQ(clock.NowMs(), 1250u + 24ull * 3600 * 1000);
}

TEST(RealClock, MovesForward) {
  RealClock* clock = RealClock::Get();
  uint64_t a = clock->NowMs();
  clock->SleepMs(2);
  uint64_t b = clock->NowMs();
  EXPECT_GE(b, a + 1);
}

TEST(Deadline, DefaultIsInfinite) {
  Deadline d;
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), UINT64_MAX);
  EXPECT_FALSE(Deadline::Infinite().Expired());
}

TEST(Deadline, ExpiresExactlyAtTheInstant) {
  SimClock clock(5000);
  Deadline d = Deadline::After(clock, 100);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 100u);
  clock.AdvanceMs(99);
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 1u);
  clock.AdvanceMs(1);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0u);
  clock.AdvanceMs(1000);
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0u);
}

TEST(RetryPolicy, BackoffIsGeometricWithClamp) {
  RetryPolicy policy;
  policy.initial_delay_ms = 100;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 1500;
  EXPECT_EQ(policy.BackoffMs(0), 100u);
  EXPECT_EQ(policy.BackoffMs(1), 200u);
  EXPECT_EQ(policy.BackoffMs(2), 400u);
  EXPECT_EQ(policy.BackoffMs(3), 800u);
  EXPECT_EQ(policy.BackoffMs(4), 1500u);  // clamped
  EXPECT_EQ(policy.BackoffMs(20), 1500u);
}

// Property: for any seed, the full schedule is byte-identical across replays.
TEST(RetryPolicy, ScheduleIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    Rng a(seed), b(seed);
    std::vector<uint64_t> first = policy.Schedule(/*budget_ms=*/600'000, &a);
    std::vector<uint64_t> second = policy.Schedule(/*budget_ms=*/600'000, &b);
    EXPECT_EQ(first, second) << "seed=" << seed;
  }
  // Distinct seeds should (overwhelmingly) produce distinct jitter somewhere.
  Rng a(1), b(2);
  EXPECT_NE(policy.Schedule(600'000, &a), policy.Schedule(600'000, &b));
}

// Property: every jittered delay stays within the configured fraction of its
// un-jittered base (integer rounding allows +-1 ms at the edges).
TEST(RetryPolicy, JitterStaysWithinConfiguredFraction) {
  RetryPolicy policy;
  policy.initial_delay_ms = 1000;
  policy.max_delay_ms = 60'000;
  policy.jitter_fraction = 0.25;
  policy.max_attempts = 6;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    for (size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
      uint64_t base = policy.BackoffMs(attempt);
      uint64_t delay = policy.DelayMs(attempt, &rng);
      uint64_t width = static_cast<uint64_t>(
          static_cast<double>(base) * policy.jitter_fraction);
      EXPECT_GE(delay, base - width) << "seed=" << seed << " attempt=" << attempt;
      EXPECT_LE(delay, base + width) << "seed=" << seed << " attempt=" << attempt;
    }
  }
}

TEST(RetryPolicy, ZeroJitterDrawsButNeverDeviates) {
  RetryPolicy policy;
  policy.jitter_fraction = 0.0;
  Rng rng(7);
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(policy.DelayMs(attempt, &rng), policy.BackoffMs(attempt));
  }
}

// Property: the cumulative schedule never exceeds the budget, and attempt
// count never exceeds max_attempts - 1 delays.
TEST(RetryPolicy, ScheduleBoundedByBudgetAndAttempts) {
  RetryPolicy policy;
  policy.initial_delay_ms = 500;
  policy.max_attempts = 10;
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    for (uint64_t budget : {0ull, 100ull, 1'000ull, 10'000ull, 100'000ull}) {
      Rng rng(seed);
      std::vector<uint64_t> schedule = policy.Schedule(budget, &rng);
      EXPECT_LE(schedule.size(), policy.max_attempts - 1);
      uint64_t total = 0;
      for (uint64_t d : schedule) {
        total += d;
      }
      EXPECT_LE(total, budget) << "seed=" << seed << " budget=" << budget;
    }
  }
}

TEST(RetryPolicy, GenerousBudgetYieldsFullSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  Rng rng(42);
  std::vector<uint64_t> schedule = policy.Schedule(UINT64_MAX / 2, &rng);
  EXPECT_EQ(schedule.size(), policy.max_attempts - 1);
}

// --- overflow boundaries (ISSUE 8): huge budgets, caps, and attempt counts
// must never wrap, stall, or hit float->int UB. The backoff walk checks its
// cap BEFORE multiplying, so no intermediate ever exceeds max_delay_ms.

TEST(RetryPolicy, UncappedMaxDelayNeverOverflows) {
  RetryPolicy policy;
  policy.initial_delay_ms = 1;
  policy.multiplier = 2.0;
  policy.max_delay_ms = UINT64_MAX;  // effectively uncapped
  EXPECT_EQ(policy.BackoffMs(10), 1024u);
  EXPECT_EQ(policy.BackoffMs(62), 1ull << 62);
  // Past 2^63 the double walk would previously round through 2^64 and the
  // final cast was UB; now the pre-multiply cap check returns the cap.
  EXPECT_EQ(policy.BackoffMs(64), UINT64_MAX);
  EXPECT_EQ(policy.BackoffMs(200), UINT64_MAX);
}

TEST(RetryPolicy, ExtremeAttemptCountsTerminateQuickly) {
  RetryPolicy policy;
  policy.initial_delay_ms = 100;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 30'000;
  // O(log(cap/initial)) regardless of attempt: SIZE_MAX must return
  // immediately with the cap, not iterate 2^64 times.
  EXPECT_EQ(policy.BackoffMs(SIZE_MAX), 30'000u);

  // A non-growing multiplier can never reach the cap; it must short-circuit
  // instead of walking `attempt` iterations.
  policy.multiplier = 1.0;
  EXPECT_EQ(policy.BackoffMs(SIZE_MAX), 100u);

  // A shrinking multiplier underflows to zero and stays there.
  policy.multiplier = 0.5;
  EXPECT_EQ(policy.BackoffMs(7), 0u);
  EXPECT_EQ(policy.BackoffMs(SIZE_MAX), 0u);

  // Huge multipliers saturate to the cap instead of casting inf.
  policy.multiplier = 1e300;
  EXPECT_EQ(policy.BackoffMs(SIZE_MAX), 30'000u);

  // Zero initial delay is degenerate but legal: always zero.
  policy.initial_delay_ms = 0;
  policy.multiplier = 2.0;
  EXPECT_EQ(policy.BackoffMs(SIZE_MAX), 0u);
}

TEST(RetryPolicy, FullJitterAtExtremeDelaysStaysInRange) {
  RetryPolicy policy;
  policy.initial_delay_ms = UINT64_MAX;
  policy.max_delay_ms = UINT64_MAX;
  policy.jitter_fraction = 1.0;
  // base == UINT64_MAX: the upper-edge clamp forces width to 0, so the
  // jittered delay is exactly the base instead of wrapping.
  Rng rng(3);
  for (size_t attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(policy.DelayMs(attempt, &rng), UINT64_MAX);
  }

  // base == 2^63: width clamps to UINT64_MAX - base, keeping both the
  // 2*width+1 draw bound and base+width inside uint64 range.
  policy.initial_delay_ms = 1ull << 63;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng r(seed);
    uint64_t delay = policy.DelayMs(0, &r);
    EXPECT_GE(delay, (1ull << 63) - ((1ull << 63) - 1));
    EXPECT_LE(delay, UINT64_MAX);
  }
}

TEST(RetryPolicy, ScheduleAtUint64MaxBudgetDoesNotWrap) {
  RetryPolicy policy;
  policy.initial_delay_ms = UINT64_MAX / 4;
  policy.max_delay_ms = UINT64_MAX;
  policy.multiplier = 2.0;
  policy.jitter_fraction = 0.0;
  policy.max_attempts = 10;
  Rng rng(9);
  // Delays: U/4, then ~2^63 (U/4 rounds up to 2^62 in double before the
  // multiply), then the cap U — the running sum would wrap uint64 after the
  // third entry; the budget comparison must stop it instead of wrapping into
  // "affordable" territory.
  std::vector<uint64_t> schedule = policy.Schedule(UINT64_MAX, &rng);
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0], UINT64_MAX / 4);
  EXPECT_EQ(schedule[1], 1ull << 63);
  uint64_t total = schedule[0] + schedule[1];
  EXPECT_LE(total, UINT64_MAX - schedule[0]);  // no wrap happened
}

}  // namespace
}  // namespace nope
