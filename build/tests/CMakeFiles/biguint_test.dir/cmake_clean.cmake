file(REMOVE_RECURSE
  "CMakeFiles/biguint_test.dir/biguint_test.cc.o"
  "CMakeFiles/biguint_test.dir/biguint_test.cc.o.d"
  "biguint_test"
  "biguint_test.pdb"
  "biguint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biguint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
