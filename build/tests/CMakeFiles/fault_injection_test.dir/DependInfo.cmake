
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_injection_test.cc" "tests/CMakeFiles/fault_injection_test.dir/fault_injection_test.cc.o" "gcc" "tests/CMakeFiles/fault_injection_test.dir/fault_injection_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nope_core.dir/DependInfo.cmake"
  "/root/repo/build/src/groth16/CMakeFiles/nope_groth16.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/nope_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/nope_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/nope_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/r1cs/CMakeFiles/nope_r1cs.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/nope_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/nope_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/nope_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nope_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
