file(REMOVE_RECURSE
  "CMakeFiles/ecdsa_test.dir/ecdsa_test.cc.o"
  "CMakeFiles/ecdsa_test.dir/ecdsa_test.cc.o.d"
  "ecdsa_test"
  "ecdsa_test.pdb"
  "ecdsa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecdsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
