file(REMOVE_RECURSE
  "CMakeFiles/crypto_gadget_test.dir/crypto_gadget_test.cc.o"
  "CMakeFiles/crypto_gadget_test.dir/crypto_gadget_test.cc.o.d"
  "crypto_gadget_test"
  "crypto_gadget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_gadget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
