# Empty dependencies file for crypto_gadget_test.
# This may be replaced when dependencies are built.
