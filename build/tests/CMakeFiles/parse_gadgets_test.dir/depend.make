# Empty dependencies file for parse_gadgets_test.
# This may be replaced when dependencies are built.
