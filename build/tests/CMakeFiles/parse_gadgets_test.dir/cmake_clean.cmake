file(REMOVE_RECURSE
  "CMakeFiles/parse_gadgets_test.dir/parse_gadgets_test.cc.o"
  "CMakeFiles/parse_gadgets_test.dir/parse_gadgets_test.cc.o.d"
  "parse_gadgets_test"
  "parse_gadgets_test.pdb"
  "parse_gadgets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parse_gadgets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
