# Empty dependencies file for ec_gadget_test.
# This may be replaced when dependencies are built.
