file(REMOVE_RECURSE
  "CMakeFiles/ec_gadget_test.dir/ec_gadget_test.cc.o"
  "CMakeFiles/ec_gadget_test.dir/ec_gadget_test.cc.o.d"
  "ec_gadget_test"
  "ec_gadget_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_gadget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
