# Empty dependencies file for constraint_system_test.
# This may be replaced when dependencies are built.
