file(REMOVE_RECURSE
  "CMakeFiles/bignum_gadget_test.dir/bignum_gadget_test.cc.o"
  "CMakeFiles/bignum_gadget_test.dir/bignum_gadget_test.cc.o.d"
  "bignum_gadget_test"
  "bignum_gadget_test.pdb"
  "bignum_gadget_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bignum_gadget_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
