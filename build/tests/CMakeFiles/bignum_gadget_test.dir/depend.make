# Empty dependencies file for bignum_gadget_test.
# This may be replaced when dependencies are built.
