file(REMOVE_RECURSE
  "CMakeFiles/groth16_test.dir/groth16_test.cc.o"
  "CMakeFiles/groth16_test.dir/groth16_test.cc.o.d"
  "groth16_test"
  "groth16_test.pdb"
  "groth16_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groth16_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
