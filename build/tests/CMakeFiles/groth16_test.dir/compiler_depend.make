# Empty compiler generated dependencies file for groth16_test.
# This may be replaced when dependencies are built.
