# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/biguint_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/field_test[1]_include.cmake")
include("/root/repo/build/tests/curve_test[1]_include.cmake")
include("/root/repo/build/tests/rsa_test[1]_include.cmake")
include("/root/repo/build/tests/ecdsa_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_system_test[1]_include.cmake")
include("/root/repo/build/tests/groth16_test[1]_include.cmake")
include("/root/repo/build/tests/parse_gadgets_test[1]_include.cmake")
include("/root/repo/build/tests/bignum_gadget_test[1]_include.cmake")
include("/root/repo/build/tests/pki_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
add_test(pairing_test "/root/repo/build/tests/pairing_test")
set_tests_properties(pairing_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;21;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(ec_gadget_test "/root/repo/build/tests/ec_gadget_test")
set_tests_properties(ec_gadget_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;28;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_gadget_test "/root/repo/build/tests/crypto_gadget_test")
set_tests_properties(crypto_gadget_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;29;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(dns_test "/root/repo/build/tests/dns_test")
set_tests_properties(dns_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;30;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(statement_test "/root/repo/build/tests/statement_test")
set_tests_properties(statement_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;32;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(end_to_end_test "/root/repo/build/tests/end_to_end_test")
set_tests_properties(end_to_end_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;33;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_injection_test "/root/repo/build/tests/fault_injection_test")
set_tests_properties(fault_injection_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;35;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  TIMEOUT "3600" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;36;nope_test_single;/root/repo/tests/CMakeLists.txt;0;")
