file(REMOVE_RECURSE
  "CMakeFiles/nope_sig.dir/ecdsa.cc.o"
  "CMakeFiles/nope_sig.dir/ecdsa.cc.o.d"
  "CMakeFiles/nope_sig.dir/rsa.cc.o"
  "CMakeFiles/nope_sig.dir/rsa.cc.o.d"
  "libnope_sig.a"
  "libnope_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
