file(REMOVE_RECURSE
  "libnope_sig.a"
)
