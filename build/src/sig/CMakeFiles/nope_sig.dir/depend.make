# Empty dependencies file for nope_sig.
# This may be replaced when dependencies are built.
