file(REMOVE_RECURSE
  "libnope_r1cs.a"
)
