file(REMOVE_RECURSE
  "CMakeFiles/nope_r1cs.dir/bignum_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/bignum_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/constraint_system.cc.o"
  "CMakeFiles/nope_r1cs.dir/constraint_system.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/ec_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/ec_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/ecdsa_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/ecdsa_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/mimc_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/mimc_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/parse_gadgets.cc.o"
  "CMakeFiles/nope_r1cs.dir/parse_gadgets.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/rsa_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/rsa_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/sha256_gadget.cc.o"
  "CMakeFiles/nope_r1cs.dir/sha256_gadget.cc.o.d"
  "CMakeFiles/nope_r1cs.dir/toy_curve.cc.o"
  "CMakeFiles/nope_r1cs.dir/toy_curve.cc.o.d"
  "libnope_r1cs.a"
  "libnope_r1cs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_r1cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
