
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/r1cs/bignum_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/bignum_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/bignum_gadget.cc.o.d"
  "/root/repo/src/r1cs/constraint_system.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/constraint_system.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/constraint_system.cc.o.d"
  "/root/repo/src/r1cs/ec_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/ec_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/ec_gadget.cc.o.d"
  "/root/repo/src/r1cs/ecdsa_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/ecdsa_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/ecdsa_gadget.cc.o.d"
  "/root/repo/src/r1cs/mimc_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/mimc_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/mimc_gadget.cc.o.d"
  "/root/repo/src/r1cs/parse_gadgets.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/parse_gadgets.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/parse_gadgets.cc.o.d"
  "/root/repo/src/r1cs/rsa_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/rsa_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/rsa_gadget.cc.o.d"
  "/root/repo/src/r1cs/sha256_gadget.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/sha256_gadget.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/sha256_gadget.cc.o.d"
  "/root/repo/src/r1cs/toy_curve.cc" "src/r1cs/CMakeFiles/nope_r1cs.dir/toy_curve.cc.o" "gcc" "src/r1cs/CMakeFiles/nope_r1cs.dir/toy_curve.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/nope_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/nope_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/ec/CMakeFiles/nope_ec.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nope_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
