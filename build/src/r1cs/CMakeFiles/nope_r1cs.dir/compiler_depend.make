# Empty compiler generated dependencies file for nope_r1cs.
# This may be replaced when dependencies are built.
