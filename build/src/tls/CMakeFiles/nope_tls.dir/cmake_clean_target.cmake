file(REMOVE_RECURSE
  "libnope_tls.a"
)
