file(REMOVE_RECURSE
  "CMakeFiles/nope_tls.dir/handshake.cc.o"
  "CMakeFiles/nope_tls.dir/handshake.cc.o.d"
  "libnope_tls.a"
  "libnope_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
