# Empty dependencies file for nope_tls.
# This may be replaced when dependencies are built.
