# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("ff")
subdirs("ec")
subdirs("sig")
subdirs("r1cs")
subdirs("groth16")
subdirs("dns")
subdirs("pki")
subdirs("tls")
subdirs("core")
