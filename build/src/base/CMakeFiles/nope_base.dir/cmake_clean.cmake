file(REMOVE_RECURSE
  "CMakeFiles/nope_base.dir/biguint.cc.o"
  "CMakeFiles/nope_base.dir/biguint.cc.o.d"
  "CMakeFiles/nope_base.dir/bytes.cc.o"
  "CMakeFiles/nope_base.dir/bytes.cc.o.d"
  "CMakeFiles/nope_base.dir/hmac.cc.o"
  "CMakeFiles/nope_base.dir/hmac.cc.o.d"
  "CMakeFiles/nope_base.dir/mutator.cc.o"
  "CMakeFiles/nope_base.dir/mutator.cc.o.d"
  "CMakeFiles/nope_base.dir/result.cc.o"
  "CMakeFiles/nope_base.dir/result.cc.o.d"
  "CMakeFiles/nope_base.dir/sha1.cc.o"
  "CMakeFiles/nope_base.dir/sha1.cc.o.d"
  "CMakeFiles/nope_base.dir/sha256.cc.o"
  "CMakeFiles/nope_base.dir/sha256.cc.o.d"
  "libnope_base.a"
  "libnope_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
