# Empty dependencies file for nope_base.
# This may be replaced when dependencies are built.
