file(REMOVE_RECURSE
  "libnope_base.a"
)
