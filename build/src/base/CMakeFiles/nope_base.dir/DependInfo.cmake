
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/biguint.cc" "src/base/CMakeFiles/nope_base.dir/biguint.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/biguint.cc.o.d"
  "/root/repo/src/base/bytes.cc" "src/base/CMakeFiles/nope_base.dir/bytes.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/bytes.cc.o.d"
  "/root/repo/src/base/hmac.cc" "src/base/CMakeFiles/nope_base.dir/hmac.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/hmac.cc.o.d"
  "/root/repo/src/base/mutator.cc" "src/base/CMakeFiles/nope_base.dir/mutator.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/mutator.cc.o.d"
  "/root/repo/src/base/result.cc" "src/base/CMakeFiles/nope_base.dir/result.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/result.cc.o.d"
  "/root/repo/src/base/sha1.cc" "src/base/CMakeFiles/nope_base.dir/sha1.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/sha1.cc.o.d"
  "/root/repo/src/base/sha256.cc" "src/base/CMakeFiles/nope_base.dir/sha256.cc.o" "gcc" "src/base/CMakeFiles/nope_base.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
