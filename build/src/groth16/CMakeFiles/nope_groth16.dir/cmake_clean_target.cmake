file(REMOVE_RECURSE
  "libnope_groth16.a"
)
