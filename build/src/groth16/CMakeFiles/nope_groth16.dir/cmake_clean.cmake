file(REMOVE_RECURSE
  "CMakeFiles/nope_groth16.dir/domain.cc.o"
  "CMakeFiles/nope_groth16.dir/domain.cc.o.d"
  "CMakeFiles/nope_groth16.dir/groth16.cc.o"
  "CMakeFiles/nope_groth16.dir/groth16.cc.o.d"
  "libnope_groth16.a"
  "libnope_groth16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_groth16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
