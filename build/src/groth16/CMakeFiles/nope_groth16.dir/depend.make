# Empty dependencies file for nope_groth16.
# This may be replaced when dependencies are built.
