file(REMOVE_RECURSE
  "CMakeFiles/nope_core.dir/analysis.cc.o"
  "CMakeFiles/nope_core.dir/analysis.cc.o.d"
  "CMakeFiles/nope_core.dir/nope.cc.o"
  "CMakeFiles/nope_core.dir/nope.cc.o.d"
  "CMakeFiles/nope_core.dir/statement.cc.o"
  "CMakeFiles/nope_core.dir/statement.cc.o.d"
  "libnope_core.a"
  "libnope_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
