# Empty dependencies file for nope_core.
# This may be replaced when dependencies are built.
