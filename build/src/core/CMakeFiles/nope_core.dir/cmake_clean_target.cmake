file(REMOVE_RECURSE
  "libnope_core.a"
)
