file(REMOVE_RECURSE
  "libnope_dns.a"
)
