file(REMOVE_RECURSE
  "CMakeFiles/nope_dns.dir/dnssec.cc.o"
  "CMakeFiles/nope_dns.dir/dnssec.cc.o.d"
  "CMakeFiles/nope_dns.dir/name.cc.o"
  "CMakeFiles/nope_dns.dir/name.cc.o.d"
  "CMakeFiles/nope_dns.dir/records.cc.o"
  "CMakeFiles/nope_dns.dir/records.cc.o.d"
  "libnope_dns.a"
  "libnope_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
