# Empty dependencies file for nope_dns.
# This may be replaced when dependencies are built.
