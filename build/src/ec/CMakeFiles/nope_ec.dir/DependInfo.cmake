
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/bn254.cc" "src/ec/CMakeFiles/nope_ec.dir/bn254.cc.o" "gcc" "src/ec/CMakeFiles/nope_ec.dir/bn254.cc.o.d"
  "/root/repo/src/ec/p256.cc" "src/ec/CMakeFiles/nope_ec.dir/p256.cc.o" "gcc" "src/ec/CMakeFiles/nope_ec.dir/p256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/nope_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/nope_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
