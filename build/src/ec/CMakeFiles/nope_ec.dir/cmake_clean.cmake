file(REMOVE_RECURSE
  "CMakeFiles/nope_ec.dir/bn254.cc.o"
  "CMakeFiles/nope_ec.dir/bn254.cc.o.d"
  "CMakeFiles/nope_ec.dir/p256.cc.o"
  "CMakeFiles/nope_ec.dir/p256.cc.o.d"
  "libnope_ec.a"
  "libnope_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
