# Empty dependencies file for nope_ec.
# This may be replaced when dependencies are built.
