file(REMOVE_RECURSE
  "libnope_ec.a"
)
