file(REMOVE_RECURSE
  "libnope_pki.a"
)
