file(REMOVE_RECURSE
  "CMakeFiles/nope_pki.dir/ca.cc.o"
  "CMakeFiles/nope_pki.dir/ca.cc.o.d"
  "CMakeFiles/nope_pki.dir/certificate.cc.o"
  "CMakeFiles/nope_pki.dir/certificate.cc.o.d"
  "CMakeFiles/nope_pki.dir/ct_log.cc.o"
  "CMakeFiles/nope_pki.dir/ct_log.cc.o.d"
  "CMakeFiles/nope_pki.dir/san_encoding.cc.o"
  "CMakeFiles/nope_pki.dir/san_encoding.cc.o.d"
  "libnope_pki.a"
  "libnope_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
