# Empty compiler generated dependencies file for nope_pki.
# This may be replaced when dependencies are built.
