
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ff/fp.cc" "src/ff/CMakeFiles/nope_ff.dir/fp.cc.o" "gcc" "src/ff/CMakeFiles/nope_ff.dir/fp.cc.o.d"
  "/root/repo/src/ff/fp12.cc" "src/ff/CMakeFiles/nope_ff.dir/fp12.cc.o" "gcc" "src/ff/CMakeFiles/nope_ff.dir/fp12.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/nope_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
