# Empty compiler generated dependencies file for nope_ff.
# This may be replaced when dependencies are built.
