file(REMOVE_RECURSE
  "libnope_ff.a"
)
