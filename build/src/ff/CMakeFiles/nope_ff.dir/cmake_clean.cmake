file(REMOVE_RECURSE
  "CMakeFiles/nope_ff.dir/fp.cc.o"
  "CMakeFiles/nope_ff.dir/fp.cc.o.d"
  "CMakeFiles/nope_ff.dir/fp12.cc.o"
  "CMakeFiles/nope_ff.dir/fp12.cc.o.d"
  "libnope_ff.a"
  "libnope_ff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nope_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
