file(REMOVE_RECURSE
  "CMakeFiles/bench_groth16.dir/bench_groth16.cc.o"
  "CMakeFiles/bench_groth16.dir/bench_groth16.cc.o.d"
  "bench_groth16"
  "bench_groth16.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groth16.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
