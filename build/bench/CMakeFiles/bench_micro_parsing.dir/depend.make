# Empty dependencies file for bench_micro_parsing.
# This may be replaced when dependencies are built.
