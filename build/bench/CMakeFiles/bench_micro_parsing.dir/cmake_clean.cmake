file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_parsing.dir/bench_micro_parsing.cc.o"
  "CMakeFiles/bench_micro_parsing.dir/bench_micro_parsing.cc.o.d"
  "bench_micro_parsing"
  "bench_micro_parsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_parsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
