# Empty dependencies file for bench_fig4_handshake.
# This may be replaced when dependencies are built.
