file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_handshake.dir/bench_fig4_handshake.cc.o"
  "CMakeFiles/bench_fig4_handshake.dir/bench_fig4_handshake.cc.o.d"
  "bench_fig4_handshake"
  "bench_fig4_handshake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_handshake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
