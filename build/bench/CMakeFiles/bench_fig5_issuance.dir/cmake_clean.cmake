file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_issuance.dir/bench_fig5_issuance.cc.o"
  "CMakeFiles/bench_fig5_issuance.dir/bench_fig5_issuance.cc.o.d"
  "bench_fig5_issuance"
  "bench_fig5_issuance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_issuance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
