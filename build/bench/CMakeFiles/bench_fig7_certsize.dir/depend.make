# Empty dependencies file for bench_fig7_certsize.
# This may be replaced when dependencies are built.
