file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_certsize.dir/bench_fig7_certsize.cc.o"
  "CMakeFiles/bench_fig7_certsize.dir/bench_fig7_certsize.cc.o.d"
  "bench_fig7_certsize"
  "bench_fig7_certsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_certsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
