file(REMOVE_RECURSE
  "CMakeFiles/dce_comparison.dir/dce_comparison.cpp.o"
  "CMakeFiles/dce_comparison.dir/dce_comparison.cpp.o.d"
  "dce_comparison"
  "dce_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dce_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
