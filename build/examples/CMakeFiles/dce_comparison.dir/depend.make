# Empty dependencies file for dce_comparison.
# This may be replaced when dependencies are built.
