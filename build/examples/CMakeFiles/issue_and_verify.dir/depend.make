# Empty dependencies file for issue_and_verify.
# This may be replaced when dependencies are built.
