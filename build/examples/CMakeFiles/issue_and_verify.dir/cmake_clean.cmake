file(REMOVE_RECURSE
  "CMakeFiles/issue_and_verify.dir/issue_and_verify.cpp.o"
  "CMakeFiles/issue_and_verify.dir/issue_and_verify.cpp.o.d"
  "issue_and_verify"
  "issue_and_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/issue_and_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
