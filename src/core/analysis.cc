#include "src/core/analysis.h"

#include <sstream>

namespace nope {

const char* AuthSchemeName(AuthScheme scheme) {
  switch (scheme) {
    case AuthScheme::kDv:
      return "DV";
    case AuthScheme::kDvPlus:
      return "DV+";
    case AuthScheme::kDce:
      return "DCE";
    case AuthScheme::kNope:
      return "NOPE";
  }
  return "?";
}

const char* DetectionTimeName(DetectionTime detection) {
  switch (detection) {
    case DetectionTime::kNotApplicable:
      return "-";
    case DetectionTime::kWithinMmd:
      return "<=24h";
    case DetectionTime::kAfterMmd:
      return ">24h";
    case DetectionTime::kNever:
      return "inf";
  }
  return "?";
}

AnalysisOutcome Analyze(AuthScheme scheme, const AttackerModel& a) {
  AnalysisOutcome out;

  // Can the attacker obtain a rogue CA-signed certificate? Either directly
  // (CA attacker) or by defeating DNS-based domain validation. For DV+ the
  // CA additionally demands DNSSEC proofs, so network-level DNS tampering
  // alone is insufficient.
  bool rogue_cert_dv = a.ca || a.legacy_dns;
  bool rogue_cert_dv_plus = a.ca || (a.legacy_dns && a.dnssec);

  switch (scheme) {
    case AuthScheme::kDv:
      out.impersonated = rogue_cert_dv;
      break;
    case AuthScheme::kDvPlus:
      out.impersonated = rogue_cert_dv_plus;
      break;
    case AuthScheme::kDce:
      // No certificates involved: forged DNSSEC records alone suffice.
      out.impersonated = a.dnssec;
      break;
    case AuthScheme::kNope:
      // Belt and suspenders: both a rogue certificate and a forged DNSSEC
      // chain (for the embedded proof) are required.
      out.impersonated = rogue_cert_dv && a.dnssec;
      break;
  }

  if (out.impersonated) {
    if (scheme == AuthScheme::kDce) {
      out.detection = DetectionTime::kNever;  // no transparency for DNSSEC
    } else {
      out.detection = a.ct ? DetectionTime::kAfterMmd : DetectionTime::kWithinMmd;
    }
  }

  // Revocation: DCE has none; certificate schemes can revoke unless the
  // issuing CA itself is compromised and refuses.
  if (scheme == AuthScheme::kDce) {
    out.revocable = false;
  } else {
    out.revocable = !a.ca;
  }
  return out;
}

std::vector<MatrixRow> BuildFigure3Matrix() {
  std::vector<MatrixRow> rows;
  // The paper orders rows by (dnssec, ct, ca, legacy_dns) ascending.
  for (int dnssec = 0; dnssec < 2; ++dnssec) {
    for (int ct = 0; ct < 2; ++ct) {
      for (int ca = 0; ca < 2; ++ca) {
        for (int legacy = 0; legacy < 2; ++legacy) {
          // The paper's 16 rows skip the {legacy=0, ca=1} duplicates? No —
          // it lists legacy/ca combinations {-,-},{x,-},{-,x},{x,x}.
          MatrixRow row;
          row.attacker = {legacy != 0, ca != 0, ct != 0, dnssec != 0};
          for (int s = 0; s < 4; ++s) {
            row.outcomes[s] = Analyze(static_cast<AuthScheme>(s), row.attacker);
          }
          rows.push_back(row);
        }
      }
    }
  }
  return rows;
}

std::string RenderFigure3(const std::vector<MatrixRow>& matrix) {
  std::ostringstream out;
  out << "LegacyDNS CA CT DNSSEC | Impersonated (DV DV+ DCE NOPE) | "
         "TimeToDetect (DV DV+ DCE NOPE) | Revocable (DV DV+ DCE NOPE)\n";
  for (const MatrixRow& row : matrix) {
    auto flag = [](bool b) { return b ? "x" : "-"; };
    out << "    " << flag(row.attacker.legacy_dns) << "      " << flag(row.attacker.ca) << "  "
        << flag(row.attacker.ct) << "    " << flag(row.attacker.dnssec) << "   |";
    for (int s = 0; s < 4; ++s) {
      out << "  " << (row.outcomes[s].impersonated ? "Yes" : "No");
    }
    out << "  |";
    for (int s = 0; s < 4; ++s) {
      out << "  " << DetectionTimeName(row.outcomes[s].detection);
    }
    out << "  |";
    for (int s = 0; s < 4; ++s) {
      out << "  " << (row.outcomes[s].revocable ? "Yes" : "No");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nope
