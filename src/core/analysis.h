// Security analysis engine reproducing Figure 3 (§3.1, §3.3): for each of
// the 16 subsets of {legacy-DNS, CA, CT, DNSSEC} attacker capabilities and
// each scheme in {DV, DV+, DCE, NOPE}, whether domain impersonation
// succeeds, how long detection takes, and whether revocation is possible.
#ifndef SRC_CORE_ANALYSIS_H_
#define SRC_CORE_ANALYSIS_H_

#include <string>
#include <vector>

namespace nope {

struct AttackerModel {
  bool legacy_dns = false;  // tamper with CA<->domain DNS resolution
  bool ca = false;          // obtain arbitrary CA signatures
  bool ct = false;          // obtain SCTs without logging
  bool dnssec = false;      // forge DNSSEC records for the target domain
};

enum class AuthScheme { kDv, kDvPlus, kDce, kNope };
const char* AuthSchemeName(AuthScheme scheme);

enum class DetectionTime {
  kNotApplicable,  // no successful impersonation to detect
  kWithinMmd,      // <= 24h: rogue cert must enter CT logs
  kAfterMmd,       // > 24h: CT attacker withheld logging
  kNever,          // no transparency mechanism exists (DCE)
};
const char* DetectionTimeName(DetectionTime detection);

struct AnalysisOutcome {
  bool impersonated = false;
  DetectionTime detection = DetectionTime::kNotApplicable;
  bool revocable = false;
};

// Derives the outcome from the capability logic of §3.3:
//  * DV falls to a legacy-DNS or CA attacker; DV+ additionally requires
//    forged DNSSEC before legacy DNS helps; DCE falls to a DNSSEC attacker
//    alone; NOPE requires BOTH a certificate-side attacker (legacy DNS or
//    CA) AND a DNSSEC attacker.
//  * Detection is bounded by the CT maximum merge delay unless the CT log
//    itself is compromised; DCE has no transparency at all.
//  * Revocation fails exactly when the issuing CA is the attacker (it can
//    refuse to revoke); DCE has no revocation mechanism.
AnalysisOutcome Analyze(AuthScheme scheme, const AttackerModel& attacker);

struct MatrixRow {
  AttackerModel attacker;
  AnalysisOutcome outcomes[4];  // indexed by AuthScheme
};

// All 16 attacker subsets in the paper's row order.
std::vector<MatrixRow> BuildFigure3Matrix();

// Formats the matrix in the same layout as the paper's Figure 3.
std::string RenderFigure3(const std::vector<MatrixRow>& matrix);

}  // namespace nope

#endif  // SRC_CORE_ANALYSIS_H_
