// Fault-tolerant issuance & renewal lifecycle (server side of §7).
//
// NOPE's proof is only as fresh as its truncated timestamp TS, so a
// production server must re-prove and re-issue on a schedule against
// dependencies that fail: DNS lookups time out, the CA throttles, proving
// jobs overrun their window. RenewalManager is the state machine that
// survives this:
//
//   HEALTHY --(N consecutive proof-path failures)--> DEGRADED
//   DEGRADED: every cycle probes the proof path first, then falls back to
//             legacy (proof-less) issuance with a recorded downgrade reason
//   DEGRADED --(probe succeeds)--> HEALTHY (recovery event)
//
// One renewal cycle runs the three-stage pipeline (resolve DNSSEC chain ->
// generate proof -> ACME finalize) with per-stage seeded-jitter retries
// under a total attempt deadline budget. Every decision point draws from an
// injected Clock and a seeded Rng, so a scenario under SimClock replays to a
// byte-identical event log — multi-day lifecycles are testable in
// milliseconds (tests/renewal_sim_test.cc, bench/bench_renewal_faults.cc).
#ifndef SRC_CORE_RENEWAL_H_
#define SRC_CORE_RENEWAL_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/base/clock.h"
#include "src/core/downgrade.h"
#include "src/dns/flaky_resolver.h"
#include "src/pki/flaky_ca.h"
#include "src/service/key_cache.h"
#include "src/service/metrics.h"

namespace nope {

// The three-stage issuance pipeline the manager drives. Implementations must
// honor the deadline cooperatively (return ErrorCode::kCancelled once it
// expires) and must burn simulated/real time through their Clock only.
class IssuancePipeline {
 public:
  virtual ~IssuancePipeline() = default;

  // Fig. 2 step 1: fetch and validate the DNSSEC chain of trust.
  virtual Status ResolveChain(const Deadline& deadline) = 0;
  // Fig. 2 step 2: produce the Groth16 proof (the cancellable stage).
  virtual Status GenerateProof(const Deadline& deadline) = 0;
  // Fig. 2 steps 3-7: ACME order + DNS-01 validation + certificate.
  // with_proof=false is the legacy (degraded) path that skips NOPE SANs.
  virtual Status FinalizeCertificate(const Deadline& deadline, bool with_proof) = 0;
};

enum class RenewalEventKind {
  kScheduled,      // next attempt time chosen (jittered lead)
  kAttemptStart,   // one renewal cycle begins
  kStageOk,        // a pipeline stage succeeded
  kStageFault,     // a pipeline stage failed once
  kBackoff,        // sleeping a jittered retry delay
  kAttemptFailed,  // a full cycle failed (all retries / budget exhausted)
  kIssuedNope,     // certificate with NOPE proof issued
  kIssuedLegacy,   // proof-less certificate issued (degraded mode)
  kDegraded,       // entered degraded mode (downgrade reason recorded)
  kRecovered,      // proof path healthy again; left degraded mode
  kCertLapsed,     // the previous certificate expired before re-issuance
  kKeyCacheHit,    // proving key found resident in the shared KeyCache
  kKeyCacheMiss,   // proving key loaded (Setup re-ran) into the KeyCache
};
constexpr int kNumRenewalEventKinds = static_cast<int>(RenewalEventKind::kKeyCacheMiss) + 1;
const char* RenewalEventKindName(RenewalEventKind kind);

struct RenewalEvent {
  uint64_t t_ms = 0;
  RenewalEventKind kind = RenewalEventKind::kScheduled;
  std::string detail;
};

struct RenewalConfig {
  // Certificate lifetime stand-in: a fresh cert expires this far ahead.
  uint64_t renewal_period_ms = 90ull * 24 * 3600 * 1000;
  // Renewal starts this long before expiry, jittered by +-lead_jitter_fraction
  // (herd-avoidance, and it exercises the schedule determinism contract).
  uint64_t lead_ms = 7ull * 24 * 3600 * 1000;
  double lead_jitter_fraction = 0.1;
  // Per-stage retry/backoff policy, bounded by the attempt budget below.
  RetryPolicy retry;
  // Total deadline budget for one renewal cycle's proof path (and separately
  // for its legacy fallback).
  uint64_t attempt_budget_ms = 15ull * 60 * 1000;
  // After this many consecutive proof-path cycle failures, degrade to legacy
  // issuance (§7's graceful degradation, server side).
  size_t degrade_after = 3;
  // Delay before re-trying a failed cycle that did not yet degrade.
  uint64_t reattempt_delay_ms = 3600ull * 1000;
};

struct RenewalStats {
  size_t cycles = 0;
  size_t nope_issued = 0;
  size_t legacy_issued = 0;
  size_t downgrades = 0;
  size_t recoveries = 0;
  size_t stage_faults = 0;
};

class RenewalManager {
 public:
  // clock and pipeline must outlive the manager. `seed` drives retry jitter
  // and lead jitter; everything else is deterministic given the pipeline.
  RenewalManager(const RenewalConfig& config, Clock* clock,
                 IssuancePipeline* pipeline, uint64_t seed);

  // Shares the proving service's key cache instead of holding a private
  // proving key: every proving stage checks out `circuit_id` (pinning it for
  // the stage's duration) and records the hit/miss in the EventLog and, when
  // metrics are attached, in renewal.key_cache_{hit,miss}. Unset (the
  // default), the event log is byte-identical to the pre-cache behavior.
  // cache must outlive the manager; loader runs on the first checkout.
  void AttachKeyCache(KeyCache* cache, std::string circuit_id,
                      KeyCache::Loader loader);

  // Mirrors every emitted event into `renewal.<event_name>` counters.
  // metrics must outlive the manager.
  void AttachMetrics(MetricsRegistry* metrics);

  // Drives the lifecycle until the clock passes `until_ms`: sleeps to each
  // scheduled attempt, runs cycles, reschedules. Under SimClock this is the
  // whole multi-day scenario in one call.
  void Run(uint64_t until_ms);

  // One renewal cycle right now (probe + issuance + possible legacy
  // fallback). Returns true when any certificate (NOPE or legacy) was
  // issued. Exposed for step-by-step tests; Run() is the production loop.
  bool RunOneCycle();

  bool degraded() const { return degraded_; }
  const std::string& degrade_reason() const { return degrade_reason_; }
  // Typed bucket for the degradation cause, classified from the proof-path
  // error that tripped the degrade threshold; kNone while healthy.
  DowngradeReason degrade_reason_kind() const { return degrade_reason_kind_; }
  size_t consecutive_proof_failures() const { return consecutive_proof_failures_; }
  uint64_t cert_expires_at_ms() const { return cert_expires_at_ms_; }
  uint64_t next_attempt_at_ms() const { return next_attempt_at_ms_; }
  const RenewalStats& stats() const { return stats_; }
  const std::vector<RenewalEvent>& events() const { return events_; }

  // Canonical fixed-format transcript of every event. Two runs of the same
  // scenario with the same seed produce byte-identical logs; the renewal
  // test suite diffs these directly.
  std::string EventLog() const;

 private:
  void Emit(RenewalEventKind kind, std::string detail);
  // Runs one stage under the cycle budget with jittered retries.
  Status RunStage(const char* stage, const Deadline& budget,
                  const std::function<Status(const Deadline&)>& fn);
  Status TryNopeIssuance(const Deadline& budget);
  Status TryLegacyIssuance(const Deadline& budget);
  void ScheduleNext(bool issued);

  RenewalConfig config_;
  Clock* clock_;
  IssuancePipeline* pipeline_;
  Rng rng_;

  KeyCache* key_cache_ = nullptr;
  std::string key_circuit_id_;
  KeyCache::Loader key_loader_;
  MetricsRegistry* metrics_ = nullptr;

  bool degraded_ = false;
  std::string degrade_reason_;
  DowngradeReason degrade_reason_kind_ = DowngradeReason::kNone;
  size_t consecutive_proof_failures_ = 0;
  uint64_t cert_expires_at_ms_ = 0;  // 0 = no certificate yet
  uint64_t next_attempt_at_ms_ = 0;
  bool lapse_reported_ = false;
  RenewalStats stats_;
  std::vector<RenewalEvent> events_;
};

// Concrete pipeline over the simulated world: FlakyResolver for DNSSEC and
// ACME-challenge lookups, FlakyCa for issuance, a modeled proving stage that
// burns prove_ms of clock time in slices while honoring the deadline (the
// simulated twin of groth16::Prove's chunk-boundary cancellation; the real
// prover's cancellation is exercised in tests/cancellation_test.cc).
struct SimulatedPipelineConfig {
  uint64_t resolve_ms = 200;       // healthy chain lookup
  uint64_t prove_ms = 45'000;      // paper-scale single-thread proving (§8.2)
  uint64_t prove_slice_ms = 1000;  // cancellation-poll granularity
  uint64_t acme_ms = 6'000;        // initiation + verification legs (Fig. 5)
  uint64_t skew_tolerance_s = 0;   // RRSIG validity-window tolerance
};

class SimulatedPipeline : public IssuancePipeline {
 public:
  SimulatedPipeline(FlakyResolver* resolver, FlakyCa* ca, Clock* clock,
                    const DnsName& domain, Bytes tls_public_key,
                    const SimulatedPipelineConfig& config);

  Status ResolveChain(const Deadline& deadline) override;
  Status GenerateProof(const Deadline& deadline) override;
  Status FinalizeCertificate(const Deadline& deadline, bool with_proof) override;

  const std::optional<Certificate>& last_certificate() const { return last_cert_; }
  bool last_cert_has_proof() const { return last_with_proof_; }

 private:
  FlakyResolver* resolver_;
  FlakyCa* ca_;
  Clock* clock_;
  DnsName domain_;
  Bytes tls_public_key_;
  SimulatedPipelineConfig config_;
  std::optional<ChainOfTrust> chain_;
  std::optional<Certificate> last_cert_;
  bool last_with_proof_ = false;
};

}  // namespace nope

#endif  // SRC_CORE_RENEWAL_H_
