// End-to-end NOPE: trusted setup, the server-side proving tool (Fig. 2 steps
// 1-7), and the NOPE-aware client (steps 8-11).
#ifndef SRC_CORE_NOPE_H_
#define SRC_CORE_NOPE_H_

#include <optional>
#include <string>

#include "src/core/downgrade.h"
#include "src/core/statement.h"
#include "src/groth16/groth16.h"
#include "src/pki/san_encoding.h"
#include "src/service/pvk_cache.h"
#include "src/tls/handshake.h"

namespace nope {

// One proof-system deployment: a statement shape plus its Groth16 keys. The
// root ZSK (trust anchor) is baked into the circuit at setup, mirroring the
// hard-coded DNSSEC root key.
struct NopeDeployment {
  StatementParams params;
  DnskeyRdata root_zsk;
  groth16::ProvingKey pk;

  const groth16::VerifyingKey& vk() const { return pk.vk; }
};

// Runs the one-time trusted setup for the statement shape that fits
// `domain` inside `dns`. The sample witness only shapes the matrices; the
// resulting keys verify proofs for any witness of the same shape.
NopeDeployment NopeTrustedSetup(DnssecHierarchy* dns, const DnsName& domain,
                                StatementOptions options, Rng* rng);

// Builds the statement witness for `domain` against the current hierarchy.
StatementWitness BuildWitness(DnssecHierarchy* dns, const DnsName& domain,
                              const Bytes& tls_public_key, const std::string& ca_name,
                              uint64_t expected_issuance_time);

// Fig. 2 steps 1-2: produce the proof and its SAN encoding.
struct NopeProofBundle {
  groth16::Proof proof;
  std::vector<std::string> sans;
  double proof_seconds = 0;  // measured wall-clock proving time
};
NopeProofBundle GenerateNopeProof(const NopeDeployment& deployment, DnssecHierarchy* dns,
                                  const DnsName& domain, const Bytes& tls_public_key,
                                  const std::string& ca_name, uint64_t expected_issuance_time,
                                  Rng* rng);

// Fig. 2 steps 3-7 (plus 1-2 when with_nope): the whole issuance pipeline
// against the simulated CA, with the Figure 5 latency model.
struct IssuanceTimeline {
  double proof_generation_s = 0;   // measured
  double acme_initiation_s = 0;    // modeled
  double dns_propagation_s = 0;    // modeled (Certbot default: 30 s per round)
  double acme_verification_s = 0;  // modeled
  size_t dns_retries = 0;          // extra propagation rounds before the CA saw the TXT
  double total() const {
    return proof_generation_s + acme_initiation_s + dns_propagation_s + acme_verification_s;
  }
};
struct IssuanceResult {
  CertificateChain chain;
  IssuanceTimeline timeline;
};
// injected_dns_retries simulates slow challenge propagation: the CA's first
// that-many TXT polls see an empty answer, so validation retries after
// another propagation wait — each failed round adds kDnsPropagationSeconds
// to the timeline (how Fig. 5 shifts when the DNS edge is slow).
std::optional<IssuanceResult> IssueCertificate(const NopeDeployment* deployment,
                                               DnssecHierarchy* dns, CertificateAuthority* ca,
                                               const DnsName& domain,
                                               const Bytes& tls_public_key, uint64_t now,
                                               Rng* rng, bool with_nope,
                                               size_t injected_dns_retries = 0);

// --- Client side --------------------------------------------------------------

enum class NopeVerifyStatus {
  kOk,
  kLegacyFailure,
  kNoNopeProof,
  kBadProofEncoding,
  kProofRejected,
  kTimestampMismatch,  // certificate TS vs SCT cross-check (§3.2)
};
constexpr int kNumNopeVerifyStatuses = static_cast<int>(NopeVerifyStatus::kTimestampMismatch) + 1;
const char* NopeVerifyStatusName(NopeVerifyStatus status);

struct NopeClientResult {
  NopeVerifyStatus status = NopeVerifyStatus::kLegacyFailure;
  LegacyStatus legacy = LegacyStatus::kOk;
  // §7 graceful degradation: whether the connection may proceed at all. A
  // missing or malformed proof downgrades to legacy-only validation (the
  // client behaves like a NOPE-unaware one); a present, well-formed proof
  // that fails verification — or an SCT/timestamp cross-check mismatch — is
  // a hard failure, since it indicates active tampering rather than a
  // deployment gap.
  bool accepted = false;
  // True only when the NOPE proof itself verified (status == kOk).
  bool nope_validated = false;
  // Non-empty when NOPE validation was skipped and the client fell back to
  // legacy-only; records why the downgrade happened. downgrade_kind is the
  // typed bucket (kNone unless the client degraded), downgrade_reason the
  // human-readable detail.
  DowngradeReason downgrade_kind = DowngradeReason::kNone;
  std::string downgrade_reason;
};

// Full NOPE-aware client verification: legacy checks, proof extraction from
// the SANs, N/TS binding, SCT-timestamp cross-check, and Groth16
// verification. Exception-free on every byte of the presented chain.
//
// When pvk_cache is non-null, the Groth16 check runs against a prepared
// verifying key checked out from the cache under the domain name —
// identical verdict (the prepared path is an exact rearrangement of the
// pairing equation), roughly half the pairing cost after the first
// handshake with a domain. A null cache uses the unprepared Verify.
NopeClientResult NopeClientVerify(const NopeDeployment& deployment,
                                  const CertificateChain& chain, const TrustStore& trust,
                                  const DnsName& domain, uint64_t now,
                                  const OcspResponse* stapled_ocsp,
                                  PreparedVkCache* pvk_cache);
NopeClientResult NopeClientVerify(const NopeDeployment& deployment,
                                  const CertificateChain& chain, const TrustStore& trust,
                                  const DnsName& domain, uint64_t now,
                                  const OcspResponse* stapled_ocsp);

}  // namespace nope

#endif  // SRC_CORE_NOPE_H_
