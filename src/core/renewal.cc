#include "src/core/renewal.h"

#include <algorithm>
#include <cstdio>

#include "src/pki/san_encoding.h"

namespace nope {

const char* RenewalEventKindName(RenewalEventKind kind) {
  switch (kind) {
    case RenewalEventKind::kScheduled:
      return "scheduled";
    case RenewalEventKind::kAttemptStart:
      return "attempt_start";
    case RenewalEventKind::kStageOk:
      return "stage_ok";
    case RenewalEventKind::kStageFault:
      return "stage_fault";
    case RenewalEventKind::kBackoff:
      return "backoff";
    case RenewalEventKind::kAttemptFailed:
      return "attempt_failed";
    case RenewalEventKind::kIssuedNope:
      return "issued_nope";
    case RenewalEventKind::kIssuedLegacy:
      return "issued_legacy";
    case RenewalEventKind::kDegraded:
      return "degraded";
    case RenewalEventKind::kRecovered:
      return "recovered";
    case RenewalEventKind::kCertLapsed:
      return "cert_lapsed";
    case RenewalEventKind::kKeyCacheHit:
      return "key_cache_hit";
    case RenewalEventKind::kKeyCacheMiss:
      return "key_cache_miss";
  }
  return "unknown";
}

RenewalManager::RenewalManager(const RenewalConfig& config, Clock* clock,
                               IssuancePipeline* pipeline, uint64_t seed)
    : config_(config), clock_(clock), pipeline_(pipeline), rng_(seed) {}

void RenewalManager::AttachKeyCache(KeyCache* cache, std::string circuit_id,
                                    KeyCache::Loader loader) {
  key_cache_ = cache;
  key_circuit_id_ = std::move(circuit_id);
  key_loader_ = std::move(loader);
}

void RenewalManager::AttachMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

void RenewalManager::Emit(RenewalEventKind kind, std::string detail) {
  if (metrics_ != nullptr) {
    metrics_->GetCounter(std::string("renewal.") + RenewalEventKindName(kind))
        ->Increment();
  }
  events_.push_back(RenewalEvent{clock_->NowMs(), kind, std::move(detail)});
}

std::string RenewalManager::EventLog() const {
  std::string out;
  char stamp[32];
  for (const RenewalEvent& e : events_) {
    std::snprintf(stamp, sizeof(stamp), "t=%012llu ",
                  static_cast<unsigned long long>(e.t_ms));
    out += stamp;
    out += RenewalEventKindName(e.kind);
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

Status RenewalManager::RunStage(const char* stage, const Deadline& budget,
                                const std::function<Status(const Deadline&)>& fn) {
  size_t attempt = 0;
  while (true) {
    if (budget.Expired()) {
      return Error(ErrorCode::kTimedOut,
                   std::string(stage) + ": attempt budget exhausted");
    }
    Status s = fn(budget);
    if (s.ok()) {
      Emit(RenewalEventKind::kStageOk, stage);
      return s;
    }
    ++stats_.stage_faults;
    Emit(RenewalEventKind::kStageFault, std::string(stage) + ": " + s.ToString());
    ++attempt;
    if (attempt >= config_.retry.max_attempts) {
      return Error(s.error().code,
                   std::string(stage) + ": retries exhausted; last: " + s.ToString());
    }
    uint64_t delay = config_.retry.DelayMs(attempt - 1, &rng_);
    if (delay >= budget.RemainingMs()) {
      return Error(ErrorCode::kTimedOut,
                   std::string(stage) + ": budget exhausted before retry");
    }
    Emit(RenewalEventKind::kBackoff,
         std::string(stage) + " " + std::to_string(delay) + "ms");
    clock_->SleepMs(delay);
  }
}

Status RenewalManager::TryNopeIssuance(const Deadline& budget) {
  NOPE_RETURN_IF_ERROR(RunStage("resolve", budget, [this](const Deadline& d) {
    return pipeline_->ResolveChain(d);
  }));
  {
    // Pin the shared proving key for the proving stage (and all its
    // retries): Setup query tables stay resident across renewals instead of
    // being rebuilt per cycle, and concurrent tenants can't evict them
    // mid-prove. The pin drops when the stage ends, whatever its outcome.
    KeyCache::Handle key;
    if (key_cache_ != nullptr) {
      key = key_cache_->Checkout(key_circuit_id_, key_loader_);
      Emit(key.was_hit() ? RenewalEventKind::kKeyCacheHit
                         : RenewalEventKind::kKeyCacheMiss,
           key_circuit_id_);
    }
    NOPE_RETURN_IF_ERROR(RunStage("prove", budget, [this](const Deadline& d) {
      return pipeline_->GenerateProof(d);
    }));
  }
  return RunStage("acme", budget, [this](const Deadline& d) {
    return pipeline_->FinalizeCertificate(d, /*with_proof=*/true);
  });
}

Status RenewalManager::TryLegacyIssuance(const Deadline& budget) {
  // The legacy path skips DNSSEC resolution and proving entirely; only the
  // ACME leg (which needs plain TXT resolution, not the signed chain) runs.
  return RunStage("acme_legacy", budget, [this](const Deadline& d) {
    return pipeline_->FinalizeCertificate(d, /*with_proof=*/false);
  });
}

bool RenewalManager::RunOneCycle() {
  ++stats_.cycles;
  Emit(RenewalEventKind::kAttemptStart,
       degraded_ ? "degraded (probing proof path)" : "proof path");

  Deadline budget = Deadline::After(*clock_, config_.attempt_budget_ms);
  Status proof_path = TryNopeIssuance(budget);
  bool issued = false;

  if (proof_path.ok()) {
    consecutive_proof_failures_ = 0;
    if (degraded_) {
      degraded_ = false;
      ++stats_.recoveries;
      Emit(RenewalEventKind::kRecovered,
           "proof path healthy again (was: " + degrade_reason_ + ")");
      degrade_reason_.clear();
      degrade_reason_kind_ = DowngradeReason::kNone;
    }
    ++stats_.nope_issued;
    Emit(RenewalEventKind::kIssuedNope, "");
    cert_expires_at_ms_ = clock_->NowMs() + config_.renewal_period_ms;
    lapse_reported_ = false;
    issued = true;
  } else {
    ++consecutive_proof_failures_;
    Emit(RenewalEventKind::kAttemptFailed,
         "proof path (" + std::to_string(consecutive_proof_failures_) +
             " consecutive): " + proof_path.ToString());
    if (!degraded_ && consecutive_proof_failures_ >= config_.degrade_after) {
      degraded_ = true;
      degrade_reason_kind_ = ClassifyDowngrade(proof_path.error());
      degrade_reason_ = std::string(DowngradeReasonName(degrade_reason_kind_)) +
                        ": proof path failed " +
                        std::to_string(consecutive_proof_failures_) +
                        "x consecutively; last: " + proof_path.ToString();
      ++stats_.downgrades;
      Emit(RenewalEventKind::kDegraded, degrade_reason_);
    }
    if (degraded_) {
      // §7 degradation, server side: better a proof-less certificate than a
      // lapsed one. The legacy leg gets its own budget — the proof attempt
      // may have consumed the whole first one timing out.
      Deadline legacy_budget = Deadline::After(*clock_, config_.attempt_budget_ms);
      Status legacy = TryLegacyIssuance(legacy_budget);
      if (legacy.ok()) {
        ++stats_.legacy_issued;
        Emit(RenewalEventKind::kIssuedLegacy, "reason: " + degrade_reason_);
        cert_expires_at_ms_ = clock_->NowMs() + config_.renewal_period_ms;
        lapse_reported_ = false;
        issued = true;
      } else {
        Emit(RenewalEventKind::kAttemptFailed,
             "legacy path: " + legacy.ToString());
      }
    }
  }

  ScheduleNext(issued);
  return issued;
}

void RenewalManager::ScheduleNext(bool issued) {
  uint64_t now = clock_->NowMs();
  uint64_t target;
  if (issued) {
    // Jittered lead time before expiry, so fleets don't renew in lockstep
    // and so the schedule itself exercises the determinism contract.
    uint64_t lead = config_.lead_ms;
    uint64_t width =
        static_cast<uint64_t>(static_cast<double>(lead) * config_.lead_jitter_fraction);
    lead = lead - width + rng_.NextBelow(2 * width + 1);
    target = cert_expires_at_ms_ > lead ? cert_expires_at_ms_ - lead : now;
  } else {
    target = now + config_.reattempt_delay_ms;
  }
  next_attempt_at_ms_ = std::max(target, now + 1);
  Emit(RenewalEventKind::kScheduled,
       "next attempt at t=" + std::to_string(next_attempt_at_ms_));
}

void RenewalManager::Run(uint64_t until_ms) {
  if (next_attempt_at_ms_ == 0) {
    next_attempt_at_ms_ = clock_->NowMs();
    Emit(RenewalEventKind::kScheduled, "initial attempt");
  }
  while (next_attempt_at_ms_ <= until_ms) {
    uint64_t now = clock_->NowMs();
    if (next_attempt_at_ms_ > now) {
      clock_->SleepMs(next_attempt_at_ms_ - now);
    }
    if (cert_expires_at_ms_ != 0 && clock_->NowMs() >= cert_expires_at_ms_ &&
        !lapse_reported_) {
      Emit(RenewalEventKind::kCertLapsed,
           "expired at t=" + std::to_string(cert_expires_at_ms_));
      lapse_reported_ = true;
    }
    RunOneCycle();
  }
}

// --- SimulatedPipeline --------------------------------------------------------

SimulatedPipeline::SimulatedPipeline(FlakyResolver* resolver, FlakyCa* ca,
                                     Clock* clock, const DnsName& domain,
                                     Bytes tls_public_key,
                                     const SimulatedPipelineConfig& config)
    : resolver_(resolver),
      ca_(ca),
      clock_(clock),
      domain_(domain),
      tls_public_key_(std::move(tls_public_key)),
      config_(config) {}

Status SimulatedPipeline::ResolveChain(const Deadline& deadline) {
  if (deadline.Expired()) {
    return Error(ErrorCode::kCancelled, "resolve: deadline expired");
  }
  clock_->SleepMs(config_.resolve_ms);
  Result<ChainOfTrust> chain = resolver_->BuildChain(domain_);
  if (!chain.ok()) {
    return chain.error();
  }
  ChainOfTrust c = std::move(chain).value();
  // Temporal windows first (RFC 4035 §5.3.1 checks them before signatures):
  // they are cheap, and a stale-cache or skewed-clock fault should surface as
  // kOutOfRange, not as the signature breakage it also causes.
  NOPE_RETURN_IF_ERROR(
      ValidateChainTimes(c, clock_->NowMs() / 1000, config_.skew_tolerance_s));
  NOPE_RETURN_IF_ERROR(ValidateChain(resolver_->dns()->suite(), c, c.root_zsk));
  chain_ = std::move(c);
  return Status::Ok();
}

Status SimulatedPipeline::GenerateProof(const Deadline& deadline) {
  if (!chain_.has_value()) {
    return Error(ErrorCode::kMissing, "prove: no validated chain of trust");
  }
  // Burn prove_ms of clock time in slices, polling the deadline at each slice
  // boundary — the simulated twin of groth16::Prove's chunk-boundary
  // cancellation (the real prover is exercised in tests/cancellation_test.cc;
  // here the point is that an overrunning proof yields a typed kCancelled
  // instead of blowing the whole renewal budget).
  uint64_t remaining = config_.prove_ms;
  while (remaining > 0) {
    if (deadline.Expired()) {
      return Error(ErrorCode::kCancelled, "prove: deadline expired mid-proof");
    }
    uint64_t slice = std::min(config_.prove_slice_ms, remaining);
    clock_->SleepMs(slice);
    remaining -= slice;
  }
  if (deadline.Expired()) {
    return Error(ErrorCode::kCancelled, "prove: deadline expired at completion");
  }
  return Status::Ok();
}

Status SimulatedPipeline::FinalizeCertificate(const Deadline& deadline,
                                              bool with_proof) {
  if (deadline.Expired()) {
    return Error(ErrorCode::kCancelled, "acme: deadline expired");
  }
  CertificateSigningRequest csr;
  csr.subject = domain_;
  csr.public_key = tls_public_key_;
  if (with_proof) {
    // The proof bytes themselves are stage 2's product; the simulation stands
    // in a fixed-size placeholder (real proofs are 128 bytes on BN254).
    csr.sans = EncodeProofSans(Bytes(128, 0x5a), domain_);
  }

  Result<AcmeOrder> order = ca_->NewOrder(csr);
  if (!order.ok()) {
    return order.error();
  }
  clock_->SleepMs(config_.acme_ms / 2);  // initiation leg (Fig. 5)

  DnsName challenge_name = domain_.Child("_acme-challenge");
  resolver_->dns()->SetTxt(challenge_name, order.value().challenge_token);
  TxtResolver txt = [this](const DnsName& name) -> std::vector<std::string> {
    Result<std::vector<std::string>> r = resolver_->QueryTxt(name);
    if (!r.ok()) {
      return {};
    }
    return std::move(r).value();
  };

  clock_->SleepMs(config_.acme_ms - config_.acme_ms / 2);  // verification leg
  if (deadline.Expired()) {
    return Error(ErrorCode::kCancelled, "acme: deadline expired before finalize");
  }
  Result<Certificate> cert = ca_->FinalizeOrder(order.value(), csr, txt,
                                                clock_->NowMs() / 1000);
  if (!cert.ok()) {
    return cert.error();
  }
  last_cert_ = std::move(cert).value();
  last_with_proof_ = with_proof;
  return Status::Ok();
}

}  // namespace nope
