#include "src/core/statement.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "src/base/sha256.h"
#include "src/r1cs/ecdsa_gadget.h"
#include "src/r1cs/mimc_gadget.h"
#include "src/r1cs/rsa_gadget.h"
#include "src/r1cs/sha256_gadget.h"

namespace nope {

namespace {

constexpr size_t kChunk = 16;

// Shared context for the per-buffer builders.
struct Ctx {
  ConstraintSystem* cs;
  const StatementParams* params;
  const CryptoSuite* suite;
  StatementOptions opt;
  std::unique_ptr<EcGadget> ec;
  size_t kb;         // EC public key bytes (x || y)
  size_t sig_coord;  // signature r/s width in bytes

  std::vector<LC> Slice(const std::vector<LC>& arr, const LC& start, size_t len) {
    return opt.use_nope_parsing ? SliceNope(cs, arr, start, len)
                                : SliceNaive(cs, arr, start, len);
  }
  std::vector<LC> Mask(const std::vector<LC>& arr, const LC& len) {
    return opt.use_nope_parsing ? MaskNope(cs, arr, len) : MaskNaive(cs, arr, len);
  }
  // 32 digest byte LCs of the masked buffer.
  std::vector<LC> Hash(const std::vector<LC>& masked, const LC& len) {
    if (suite->kind == CryptoSuite::Kind::kReal) {
      return Sha256DynamicGadget(cs, masked, len);
    }
    std::vector<LC> digest = MimcDynamicGadget(cs, masked, len);
    std::vector<LC> padded;
    padded.push_back(LC());  // leading zero byte (Digest32 front-pads MiMC)
    padded.insert(padded.end(), digest.begin(), digest.end());
    return padded;
  }
  ModularGadget::Num DigestScalar(const std::vector<LC>& digest32) {
    ModularGadget& fn = ec->scalar_field();
    ModularGadget::Num wide = fn.FromBytesBe(digest32);
    ModularGadget::Num z = fn.Alloc(fn.ValueOfMod(wide));
    fn.EnforceEqualMod(wide, z);
    return z;
  }
  void EqualBytes(const std::vector<LC>& a, const std::vector<LC>& b) {
    if (a.size() != b.size()) {
      throw std::logic_error("EqualBytes length mismatch");
    }
    if (opt.use_misc_optimizations) {
      // Packed 16-byte chunk comparison (linear packing is free).
      for (size_t i = 0; i < a.size(); i += kChunk) {
        LC pa, pb;
        Fr power = Fr::One();
        size_t end = std::min(i + kChunk, a.size());
        for (size_t j = end; j-- > i;) {
          pa = pa + a[j] * power;
          pb = pb + b[j] * power;
          power = power * Fr::FromU64(256);
        }
        cs->EnforceEqual(pa, pb);
      }
    } else {
      for (size_t i = 0; i < a.size(); ++i) {
        cs->EnforceEqual(a[i], b[i]);
      }
    }
  }
  void EqualConstByte(const LC& a, uint8_t v) {
    cs->EnforceEqual(a, LC::Constant(Fr::FromU64(v)));
  }

  // Builds an on-curve point from key bytes (x || y slices of a checked
  // buffer).
  EcGadget::Point PointFromKeyBytes(const std::vector<LC>& key_bytes,
                                    const NativeCurve::Pt& value) {
    size_t coord = kb / 2;
    std::vector<LC> xb(key_bytes.begin(), key_bytes.begin() + coord);
    std::vector<LC> yb(key_bytes.begin() + coord, key_bytes.end());
    EcGadget::Point p;
    p.x = ec->field().FromBytesBe(xb);
    p.y = ec->field().FromBytesBe(yb);
    p.value = value;
    ec->EnforceOnCurve(p);
    return p;
  }

  // Witnesses an ECDSA signature (r || s wire form) in the scalar field.
  std::pair<ModularGadget::Num, ModularGadget::Num> AllocSignature(const Bytes& wire) {
    ModularGadget& fn = ec->scalar_field();
    Bytes rb(wire.begin(), wire.begin() + sig_coord);
    Bytes sb(wire.begin() + sig_coord, wire.end());
    return {fn.Alloc(BigUInt::FromBytes(rb)), fn.Alloc(BigUInt::FromBytes(sb))};
  }

  void VerifyEcdsa(const EcGadget::Point& key, const std::vector<LC>& digest32,
                   const Bytes& sig_wire) {
    auto [r, s] = AllocSignature(sig_wire);
    ModularGadget::Num z = DigestScalar(digest32);
    EnforceEcdsaVerify(ec.get(), key, z, r, s,
                       opt.use_glv_msm ? EcdsaMsmMode::kGlvMsm : EcdsaMsmMode::k256Msm);
  }
};

struct AllocatedBuffer {
  std::vector<LC> bytes;   // padded to suite max, range-checked
  std::vector<LC> masked;  // zeroed beyond len
  LC len;
};

AllocatedBuffer AllocBuffer(Ctx* ctx, const Bytes& buffer, const LC& len_lc, size_t max_size) {
  if (buffer.size() > max_size) {
    throw std::length_error("signing buffer exceeds shape bound");
  }
  Bytes padded = buffer;
  padded.resize(max_size, 0);
  AllocatedBuffer out;
  std::vector<Var> vars = AllocateBytes(ctx->cs, padded);
  for (Var v : vars) {
    out.bytes.emplace_back(v);
  }
  out.len = len_lc;
  out.masked = ctx->Mask(out.bytes, out.len);
  return out;
}

struct DnskeyParse {
  std::vector<LC> zsk_key_bytes;
  std::vector<LC> ksk_key_bytes;
  EcGadget::Point zsk_point;
  EcGadget::Point ksk_point;
};

NativeCurve::Pt PointFromWire(const CryptoSuite& suite, const Bytes& key_bytes) {
  size_t coord = suite.EcCoordBytes();
  return NativeCurve::Pt{
      BigUInt::FromBytes(Bytes(key_bytes.begin(), key_bytes.begin() + coord)),
      BigUInt::FromBytes(Bytes(key_bytes.begin() + coord, key_bytes.end())), false};
}

// S_DNSKEY.P + S_DNSKEY.S + (implicitly) S_KSK.H inputs: parses zone C's
// DNSKEY canonical signing buffer, binds its names to the domain suffix at
// name_off, extracts the ZSK and KSK, and verifies the KSK's RRSIG.
DnskeyParse ProcessDnskeyBuffer(Ctx* ctx, const SignedRrset& dnskey,
                                const std::vector<LC>& d_bytes, const LC& name_off,
                                const LC& snl) {
  GadgetScope scope(ctx->cs, "DnskeyBuffer");
  size_t max_name = ctx->params->max_name_len;
  size_t kb = ctx->kb;
  Bytes buffer = BuildSigningBuffer(dnskey.rrsig, dnskey.rrset);

  // len = 18 + snl (signer) + 2 * [snl + 10 + 4] + 2*kb, all affine in snl.
  LC len = snl * Fr::FromU64(3) +
           LC::Constant(Fr::FromU64(18 + 2 * (10 + 4) + 2 * kb));
  size_t max_size = 18 + 3 * max_name + 2 * (10 + 4) + 2 * kb;
  AllocatedBuffer buf = AllocBuffer(ctx, buffer, len, max_size);

  // Type covered == DNSKEY(48), algorithm == suite ECDSA.
  ctx->EqualConstByte(buf.bytes[0], 0);
  ctx->EqualConstByte(buf.bytes[1], static_cast<uint8_t>(RrType::kDnskey));
  ctx->EqualConstByte(buf.bytes[2], ctx->suite->ecdsa_algorithm);

  // Signer and first owner name must equal the domain suffix at name_off.
  std::vector<LC> expected = ctx->Slice(d_bytes, name_off, max_name);
  std::vector<LC> expected_masked = ctx->Mask(expected, snl);
  std::vector<LC> signer = ctx->Slice(buf.bytes, LC::Constant(Fr::FromU64(18)), max_name);
  ctx->EqualBytes(ctx->Mask(signer, snl), expected_masked);
  std::vector<LC> owner = ctx->Slice(buf.bytes, snl + LC::Constant(Fr::FromU64(18)), max_name);
  ctx->EqualBytes(ctx->Mask(owner, snl), expected_masked);

  // RR1 (ZSK — canonical order puts flags 0x0100 first): flags/proto/alg.
  LC rr1_meta = snl * Fr::FromU64(2) + LC::Constant(Fr::FromU64(18 + 10));
  std::vector<LC> zsk_meta = ctx->Slice(buf.bytes, rr1_meta, 4);
  ctx->EqualConstByte(zsk_meta[0], 0x01);
  ctx->EqualConstByte(zsk_meta[1], 0x00);
  ctx->EqualConstByte(zsk_meta[2], kDnskeyProtocol);
  ctx->EqualConstByte(zsk_meta[3], ctx->suite->ecdsa_algorithm);
  std::vector<LC> zsk_key = ctx->Slice(buf.bytes, rr1_meta + LC::Constant(Fr::FromU64(4)), kb);

  // RR2 (KSK, flags 0x0101).
  LC rr2_meta = snl * Fr::FromU64(3) + LC::Constant(Fr::FromU64(18 + 10 + 4 + 10)) +
                LC::Constant(Fr::FromU64(kb));
  std::vector<LC> ksk_meta = ctx->Slice(buf.bytes, rr2_meta, 4);
  ctx->EqualConstByte(ksk_meta[0], 0x01);
  ctx->EqualConstByte(ksk_meta[1], 0x01);
  ctx->EqualConstByte(ksk_meta[2], kDnskeyProtocol);
  ctx->EqualConstByte(ksk_meta[3], ctx->suite->ecdsa_algorithm);
  std::vector<LC> ksk_key = ctx->Slice(buf.bytes, rr2_meta + LC::Constant(Fr::FromU64(4)), kb);

  // Native values for the hint machinery.
  DnskeyRdata zsk_rdata, ksk_rdata;
  for (const Bytes& rdata : dnskey.rrset.rdatas) {
    DnskeyRdata key = DnskeyRdata::Decode(rdata);
    (key.IsKsk() ? ksk_rdata : zsk_rdata) = key;
  }

  DnskeyParse out;
  out.zsk_key_bytes = zsk_key;
  out.ksk_key_bytes = ksk_key;
  out.zsk_point = ctx->PointFromKeyBytes(zsk_key, PointFromWire(*ctx->suite, zsk_rdata.public_key));
  out.ksk_point = ctx->PointFromKeyBytes(ksk_key, PointFromWire(*ctx->suite, ksk_rdata.public_key));

  // S_DNSKEY.S: the buffer's digest is ECDSA-signed by the KSK.
  std::vector<LC> digest = ctx->Hash(buf.masked, buf.len);
  ctx->VerifyEcdsa(out.ksk_point, digest, dnskey.rrsig.signature);
  return out;
}

// S_DS.P + S_KSK.H + S_DS.S: parses zone C's DS canonical signing buffer
// (owner C at owner_off, signer = parent at signer_off), checks that the DS
// digest commits to child_ksk_rdata_bytes, and verifies the RRSIG with
// either the parent's ZSK (ECDSA) or the root's RSA ZSK.
void ProcessDsBuffer(Ctx* ctx, const SignedRrset& ds, const std::vector<LC>& d_bytes,
                     const LC& owner_off, const LC& owner_snl, const LC& signer_off,
                     const LC& signer_snl, const std::vector<LC>& child_ksk_rdata,
                     const EcGadget::Point* parent_zsk, const DnskeyRdata* root_rsa) {
  GadgetScope scope(ctx->cs, "DsBuffer");
  size_t max_name = ctx->params->max_name_len;
  Bytes buffer = BuildSigningBuffer(ds.rrsig, ds.rrset);

  // len = 18 + signer_snl + owner_snl + 10 + 4 + 32.
  LC len = signer_snl + owner_snl + LC::Constant(Fr::FromU64(18 + 10 + 4 + 32));
  size_t max_size = 18 + 2 * max_name + 10 + 4 + 32;
  AllocatedBuffer buf = AllocBuffer(ctx, buffer, len, max_size);

  ctx->EqualConstByte(buf.bytes[0], 0);
  ctx->EqualConstByte(buf.bytes[1], static_cast<uint8_t>(RrType::kDs));

  // Names.
  std::vector<LC> signer_expect =
      ctx->Mask(ctx->Slice(d_bytes, signer_off, max_name), signer_snl);
  std::vector<LC> signer = ctx->Slice(buf.bytes, LC::Constant(Fr::FromU64(18)), max_name);
  ctx->EqualBytes(ctx->Mask(signer, signer_snl), signer_expect);
  std::vector<LC> owner_expect = ctx->Mask(ctx->Slice(d_bytes, owner_off, max_name), owner_snl);
  std::vector<LC> owner =
      ctx->Slice(buf.bytes, signer_snl + LC::Constant(Fr::FromU64(18)), max_name);
  ctx->EqualBytes(ctx->Mask(owner, owner_snl), owner_expect);

  // DS RDATA: [keytag 2][alg 1][digest type 1][digest 32].
  LC rdata_off = signer_snl + owner_snl + LC::Constant(Fr::FromU64(18 + 10));
  std::vector<LC> rdata_meta = ctx->Slice(buf.bytes, rdata_off, 4);
  ctx->EqualConstByte(rdata_meta[2], ctx->suite->ecdsa_algorithm);
  ctx->EqualConstByte(rdata_meta[3], ctx->suite->ds_digest_type);
  std::vector<LC> ds_digest = ctx->Slice(buf.bytes, rdata_off + LC::Constant(Fr::FromU64(4)), 32);

  // S_KSK.H: digest of (owner wire name || child KSK RDATA) must equal the
  // DS digest. The RDATA is placed at the dynamic offset owner_snl.
  size_t input_max = max_name + child_ksk_rdata.size();
  std::vector<LC> input = owner_expect;
  input.resize(input_max);
  std::vector<LC> placed = PlaceAt(ctx->cs, child_ksk_rdata, owner_snl, input_max);
  for (size_t i = 0; i < input_max; ++i) {
    input[i] = input[i] + placed[i];
  }
  LC input_len = owner_snl + LC::Constant(Fr::FromU64(child_ksk_rdata.size()));
  std::vector<LC> computed_digest = ctx->Hash(input, input_len);
  ctx->EqualBytes(computed_digest, ds_digest);

  // S_DS.S: verify the RRSIG over the buffer.
  std::vector<LC> digest = ctx->Hash(buf.masked, buf.len);
  if (parent_zsk != nullptr) {
    ctx->VerifyEcdsa(*parent_zsk, digest, ds.rrsig.signature);
  } else {
    // Root: RSA (algorithm byte 2 of the RRSIG prefix).
    ctx->EqualConstByte(buf.bytes[2], ctx->suite->rsa_algorithm);
    size_t pos = 0;
    uint8_t exp_len = ReadU8(root_rsa->public_key, &pos);
    Bytes exp = ReadBytes(root_rsa->public_key, &pos, exp_len);
    Bytes modulus = ReadBytes(root_rsa->public_key, &pos, root_rsa->public_key.size() - pos);
    if (BigUInt::FromBytes(exp) != BigUInt(65537)) {
      throw std::invalid_argument("root RSA exponent must be 65537");
    }
    ModularGadget rsa(ctx->cs, BigUInt::FromBytes(modulus));
    ModularGadget::Num sig = rsa.Alloc(BigUInt::FromBytes(ds.rrsig.signature));
    ModularGadget::Num em = BuildPkcs1Em(&rsa, digest);
    EnforceRsaVerify(&rsa, sig, em,
                     ctx->opt.use_nope_crypto ? RsaTechnique::kNope : RsaTechnique::kNaive);
  }
}

// Allocates the 72 bytes (T_digest || N_digest || TS) and binds them to the
// public inputs. Shared by the straw-man design row and managed mode.
std::vector<LC> BindTntBytes(Ctx* ctx, const StatementWitness& witness,
                             const std::vector<Var>& pub_vars, size_t name_chunks) {
  ConstraintSystem* cs = ctx->cs;
  Bytes tnt = witness.tls_key_digest;
  AppendBytes(&tnt, witness.ca_name_digest);
  AppendU64(&tnt, witness.truncated_ts);
  std::vector<Var> tnt_vars = AllocateBytes(cs, tnt);
  std::vector<LC> tnt_lcs;
  for (Var v : tnt_vars) {
    tnt_lcs.emplace_back(v);
  }
  std::vector<LC> tnt_packed = PackBytes(tnt_vars, kChunk);
  for (size_t i = 0; i < 4; ++i) {
    cs->EnforceEqual(tnt_packed[i], LC(pub_vars[name_chunks + i]));
  }
  LC ts_value;
  for (size_t i = 64; i < 72; ++i) {
    ts_value = ts_value * Fr::FromU64(256) + tnt_lcs[i];
  }
  cs->EnforceEqual(ts_value, LC(pub_vars[name_chunks + 4]));
  return tnt_lcs;
}

// Appendix A, S_TXT: the TXT RRset on D contains a record whose data is the
// binding digest, and the RRset's RRSIG is validated by D's ZSK. The record
// is located by an unrolled walk of the length-prefixed RR stream (the
// "scan" recipe of Appendix B.2 applied to real RR framing).
void ProcessManagedTxt(Ctx* ctx, const SignedRrset& txt, const std::vector<LC>& d_bytes,
                       const LC& snl, const EcGadget::Point& leaf_zsk,
                       const std::vector<LC>& binding) {
  constexpr size_t kMaxTxtRecords = 4;
  ConstraintSystem* cs = ctx->cs;
  GadgetScope scope(cs, "ManagedTxt");
  size_t max_name = ctx->params->max_name_len;
  if (txt.rrset.rdatas.size() > kMaxTxtRecords) {
    throw std::length_error("too many TXT records for the managed statement");
  }
  Bytes buffer = BuildSigningBuffer(txt.rrsig, txt.rrset);

  // Dynamic total length (depends on every record's rdlen), witnessed and
  // pinned below to the walked offsets.
  size_t max_size = 18 + max_name + kMaxTxtRecords * (max_name + 10 + 34);
  Var len_var = cs->AddWitness(Fr::FromU64(buffer.size()));
  {
    size_t bits = 1;
    while ((size_t{1} << bits) < max_size + 1) {
      ++bits;
    }
    ToBits(cs, LC(len_var), bits);
  }
  AllocatedBuffer buf = AllocBuffer(ctx, buffer, LC(len_var), max_size);

  // Type covered == TXT(16); signer == D.
  ctx->EqualConstByte(buf.bytes[0], 0);
  ctx->EqualConstByte(buf.bytes[1], static_cast<uint8_t>(RrType::kTxt));
  std::vector<LC> expected =
      ctx->Mask(ctx->Slice(d_bytes, LC(), max_name), snl);
  std::vector<LC> signer = ctx->Slice(buf.masked, LC::Constant(Fr::FromU64(18)), max_name);
  ctx->EqualBytes(ctx->Mask(signer, snl), expected);

  // Walk the records: off_0 = 18 + snl; off_{k+1} = off_k + snl + 10 + rdlen_k.
  std::vector<LC> offsets(kMaxTxtRecords + 1);
  offsets[0] = snl + LC::Constant(Fr::FromU64(18));
  for (size_t k = 0; k < kMaxTxtRecords; ++k) {
    std::vector<LC> rdlen =
        ctx->Slice(buf.masked, offsets[k] + snl + LC::Constant(Fr::FromU64(8)), 2);
    offsets[k + 1] = offsets[k] + snl + LC::Constant(Fr::FromU64(10)) +
                     rdlen[0] * Fr::FromU64(256) + rdlen[1];
  }

  // The witnessed length must be one of the walked record boundaries
  // (nrec in [1, kMaxTxtRecords]).
  size_t nrec = txt.rrset.rdatas.size();
  Var nrec_var = cs->AddWitness(Fr::FromU64(nrec));
  std::vector<Var> nrec_ind = Indicator(cs, LC(nrec_var), kMaxTxtRecords + 1);
  cs->EnforceEqual(LC(nrec_ind[0]), LC());  // at least one record
  LC len_from_walk;
  for (size_t n = 1; n <= kMaxTxtRecords; ++n) {
    Fr pv = cs->ValueOf(nrec_ind[n]) * cs->Eval(offsets[n]);
    Var p = cs->AddWitness(pv);
    cs->Enforce(LC(nrec_ind[n]), offsets[n], LC(p));
    len_from_walk = len_from_walk + LC(p);
  }
  cs->EnforceEqual(LC(len_var), len_from_walk);

  // Select the record carrying the binding.
  Bytes binding_native = ctx->suite->Digest32({});  // placeholder, fixed below
  binding_native.clear();
  for (const LC& b : binding) {
    binding_native.push_back(
        static_cast<uint8_t>(cs->Eval(b).ToBigUInt().LowU64()));
  }
  Bytes want_rdata;
  want_rdata.push_back(32);
  AppendBytes(&want_rdata, binding_native);
  size_t selected = kMaxTxtRecords;
  {
    Rrset canonical = txt.rrset.Canonical();
    for (size_t k = 0; k < canonical.rdatas.size(); ++k) {
      if (canonical.rdatas[k] == want_rdata) {
        selected = k;
        break;
      }
    }
  }
  LC selected_off;
  LC bit_sum;
  for (size_t k = 0; k < kMaxTxtRecords; ++k) {
    Var b = cs->AddWitness(k == selected ? Fr::One() : Fr::Zero());
    cs->EnforceBoolean(b);
    bit_sum = bit_sum + LC(b);
    Fr pv = cs->ValueOf(b) * cs->Eval(offsets[k]);
    Var p = cs->AddWitness(pv);
    cs->Enforce(LC(b), offsets[k], LC(p));
    selected_off = selected_off + LC(p);
  }
  cs->EnforceEqual(bit_sum, LC::Constant(Fr::One()));

  // Selected record's RDATA must be [0x20][binding].
  std::vector<LC> rdata =
      ctx->Slice(buf.masked, selected_off + snl + LC::Constant(Fr::FromU64(10)), 33);
  ctx->EqualConstByte(rdata[0], 32);
  for (size_t i = 0; i < 32; ++i) {
    cs->EnforceEqual(rdata[1 + i], binding[i]);
  }

  // S_TXT.S: the RRSIG over the buffer validates under D's ZSK.
  std::vector<LC> digest = ctx->Hash(buf.masked, buf.len);
  ctx->VerifyEcdsa(leaf_zsk, digest, txt.rrsig.signature);
}

}  // namespace

Bytes ManagedBinding(const CryptoSuite& suite, const Bytes& tls_key_digest,
                     const Bytes& ca_name_digest, uint64_t truncated_ts) {
  Bytes tnt = tls_key_digest;
  AppendBytes(&tnt, ca_name_digest);
  AppendU64(&tnt, truncated_ts);
  return suite.Digest32(tnt);
}

Bytes TlsKeyDigest(const Bytes& tls_public_key) { return Sha256::Hash(tls_public_key); }

Bytes CaNameDigest(const std::string& organization) {
  return Sha256::Hash(Bytes(organization.begin(), organization.end()));
}

uint64_t TruncateTimestamp(uint64_t unix_seconds) { return unix_seconds / 600; }

std::vector<Fr> NopePublicInputs(const StatementParams& params, const DnsName& domain,
                                 const Bytes& tls_key_digest, const Bytes& ca_name_digest,
                                 uint64_t truncated_ts) {
  Bytes wire = domain.Canonical().ToWire();
  if (wire.size() > params.max_name_len) {
    throw std::length_error("domain exceeds max_name_len");
  }
  wire.resize(params.max_name_len, 0);
  std::vector<Fr> out = PackBytesValues(wire, kChunk);
  std::vector<Fr> t_chunks = PackBytesValues(tls_key_digest, kChunk);
  std::vector<Fr> n_chunks = PackBytesValues(ca_name_digest, kChunk);
  out.insert(out.end(), t_chunks.begin(), t_chunks.end());
  out.insert(out.end(), n_chunks.begin(), n_chunks.end());
  out.push_back(Fr::FromU64(truncated_ts));
  return out;
}

size_t BuildNopeStatement(ConstraintSystem* cs, const StatementParams& params,
                          const StatementWitness& witness) {
  const ChainOfTrust& chain = witness.chain;
  if (chain.levels.size() != params.num_levels) {
    throw std::invalid_argument("chain depth does not match statement params");
  }

  Ctx ctx;
  ctx.cs = cs;
  ctx.params = &params;
  ctx.suite = params.suite;
  ctx.opt = params.options;
  ctx.ec = std::make_unique<EcGadget>(cs, params.suite->curve,
                                      params.options.use_nope_crypto
                                          ? EcGadget::Technique::kNopeHints
                                          : EcGadget::Technique::kNaive);
  ctx.kb = 2 * params.suite->EcCoordBytes();
  ctx.sig_coord = (params.suite->curve.n.BitLength() + 7) / 8;

  // --- Public inputs ---------------------------------------------------------
  std::vector<Fr> pub = NopePublicInputs(params, chain.domain, witness.tls_key_digest,
                                         witness.ca_name_digest, witness.truncated_ts);
  std::vector<Var> pub_vars;
  pub_vars.reserve(pub.size());
  for (const Fr& v : pub) {
    pub_vars.push_back(cs->AddPublicInput(v));
  }
  size_t name_chunks = params.max_name_len / kChunk + (params.max_name_len % kChunk ? 1 : 0);

  // --- Domain bytes bound to the public packing ------------------------------
  Bytes d_wire = chain.domain.Canonical().ToWire();
  Bytes d_padded = d_wire;
  d_padded.resize(params.max_name_len, 0);
  std::vector<Var> d_vars = AllocateBytes(cs, d_padded);
  std::vector<LC> d_bytes;
  for (Var v : d_vars) {
    d_bytes.emplace_back(v);
  }
  std::vector<LC> d_packed = PackBytes(d_vars, kChunk);
  for (size_t i = 0; i < name_chunks; ++i) {
    cs->EnforceEqual(d_packed[i], LC(pub_vars[i]));
  }

  // --- Ancestor name offsets: offset_{i+1} = offset_i + 1 + label_len_i ------
  size_t depth = params.num_levels + 1;  // C_0 = D .. C_L, then root
  std::vector<LC> offsets(depth + 1);
  std::vector<LC> snls(depth + 1);
  offsets[0] = LC();  // 0
  LC d_len = LC::Constant(Fr::FromU64(d_wire.size()));
  snls[0] = d_len;
  for (size_t i = 0; i + 1 <= depth; ++i) {
    std::vector<LC> label_len = ctx.Slice(d_bytes, offsets[i], 1);
    offsets[i + 1] = offsets[i] + label_len[0] + LC::Constant(Fr::One());
    snls[i + 1] = snls[i] - label_len[0] - LC::Constant(Fr::One());
  }
  // Terminal: C_depth must be the root (the final zero byte of D's wire).
  std::vector<LC> terminal = ctx.Slice(d_bytes, offsets[depth], 1);
  cs->EnforceEqual(terminal[0], LC());
  cs->EnforceEqual(snls[depth], LC::Constant(Fr::One()));

  // --- (T || N || TS) digest, needed by the straw-man design row and by
  // managed mode's TXT binding.
  std::vector<LC> tnt_digest;
  if (params.options.managed_mode || !params.options.use_signature_of_knowledge) {
    std::vector<LC> tnt_lcs = BindTntBytes(&ctx, witness, pub_vars, name_chunks);
    LC tnt_len = LC::Constant(Fr::FromU64(tnt_lcs.size()));
    std::vector<LC> padded = tnt_lcs;
    padded.resize(((tnt_lcs.size() + kChunk - 1) / kChunk) * kChunk);
    tnt_digest = ctx.Hash(padded, tnt_len);
  }

  // --- Leaf: either KSK knowledge (standard NOPE) or the TXT binding
  // (NOPE-managed, Appendix A).
  std::vector<LC> leaf_ksk_rdata_lcs;
  if (!params.options.managed_mode) {
    Bytes leaf_ksk_rdata = chain.leaf_ksk.Encode();
    std::vector<Var> ksk_rdata_vars = AllocateBytes(cs, leaf_ksk_rdata);
    for (Var v : ksk_rdata_vars) {
      leaf_ksk_rdata_lcs.emplace_back(v);
    }
    // Pin the RDATA header: flags 257, protocol 3, suite ECDSA algorithm.
    ctx.EqualConstByte(leaf_ksk_rdata_lcs[0], 0x01);
    ctx.EqualConstByte(leaf_ksk_rdata_lcs[1], 0x01);
    ctx.EqualConstByte(leaf_ksk_rdata_lcs[2], kDnskeyProtocol);
    ctx.EqualConstByte(leaf_ksk_rdata_lcs[3], ctx.suite->ecdsa_algorithm);
    std::vector<LC> leaf_key_bytes(leaf_ksk_rdata_lcs.begin() + 4, leaf_ksk_rdata_lcs.end());
    EcGadget::Point leaf_ksk = ctx.PointFromKeyBytes(
        leaf_key_bytes, PointFromWire(*ctx.suite, chain.leaf_ksk.public_key));
    EnforceKnowledgeOfPrivateKey(ctx.ec.get(), leaf_ksk, witness.leaf_ksk_private_key);

    // Straw-man design (ablation): explicit in-circuit signature over
    // (T || N || TS) by the leaf KSK instead of the signature of knowledge.
    if (!params.options.use_signature_of_knowledge) {
      Bytes tnt = witness.tls_key_digest;
      AppendBytes(&tnt, witness.ca_name_digest);
      AppendU64(&tnt, witness.truncated_ts);
      Rng sign_rng(0x5759);
      Bytes digest_native = ctx.suite->Digest32(tnt);
      ToyEcdsaSignature sig =
          ToyEcdsaSign(ctx.suite->curve, witness.leaf_ksk_private_key, digest_native, &sign_rng);
      Bytes sig_wire = sig.r.ToBytes(ctx.sig_coord);
      AppendBytes(&sig_wire, sig.s.ToBytes(ctx.sig_coord));
      ctx.VerifyEcdsa(leaf_ksk, tnt_digest, sig_wire);
    }
  }

  // --- Ancestor DNSKEY parses (C_1 .. C_L) ------------------------------------
  std::vector<DnskeyParse> parses;
  for (size_t a = 1; a <= params.num_levels; ++a) {
    parses.push_back(
        ProcessDnskeyBuffer(&ctx, chain.levels[a - 1].dnskey, d_bytes, offsets[a], snls[a]));
  }

  // --- Managed mode: parse D's own DNSKEY RRset and bind the TXT record.
  if (params.options.managed_mode) {
    DnskeyParse leaf_parse =
        ProcessDnskeyBuffer(&ctx, witness.managed_dnskey, d_bytes, offsets[0], snls[0]);
    ProcessManagedTxt(&ctx, witness.managed_txt, d_bytes, snls[0], leaf_parse.zsk_point,
                      tnt_digest);
    // The leaf DS commits to the KSK extracted from D's own DNSKEY RRset.
    leaf_ksk_rdata_lcs.clear();
    leaf_ksk_rdata_lcs.push_back(LC::Constant(Fr::FromU64(0x01)));
    leaf_ksk_rdata_lcs.push_back(LC::Constant(Fr::FromU64(0x01)));
    leaf_ksk_rdata_lcs.push_back(LC::Constant(Fr::FromU64(kDnskeyProtocol)));
    leaf_ksk_rdata_lcs.push_back(LC::Constant(Fr::FromU64(ctx.suite->ecdsa_algorithm)));
    leaf_ksk_rdata_lcs.insert(leaf_ksk_rdata_lcs.end(), leaf_parse.ksk_key_bytes.begin(),
                              leaf_parse.ksk_key_bytes.end());
  }

  // --- DS checks, leaf upward --------------------------------------------------
  // Leaf DS (C_0): signer C_1 (or root when there are no levels).
  DnskeyRdata root_zsk = chain.root_zsk;
  {
    const EcGadget::Point* verifier =
        params.num_levels > 0 ? &parses[0].zsk_point : nullptr;
    ProcessDsBuffer(&ctx, chain.leaf_ds, d_bytes, offsets[0], snls[0], offsets[1], snls[1],
                    leaf_ksk_rdata_lcs, verifier, verifier == nullptr ? &root_zsk : nullptr);
  }
  // DS of C_a for a = 1..L: child KSK RDATA rebuilt from the extracted bytes.
  for (size_t a = 1; a <= params.num_levels; ++a) {
    std::vector<LC> child_rdata;
    child_rdata.push_back(LC::Constant(Fr::FromU64(0x01)));
    child_rdata.push_back(LC::Constant(Fr::FromU64(0x01)));
    child_rdata.push_back(LC::Constant(Fr::FromU64(kDnskeyProtocol)));
    child_rdata.push_back(LC::Constant(Fr::FromU64(ctx.suite->ecdsa_algorithm)));
    child_rdata.insert(child_rdata.end(), parses[a - 1].ksk_key_bytes.begin(),
                       parses[a - 1].ksk_key_bytes.end());
    const EcGadget::Point* verifier = a < params.num_levels ? &parses[a].zsk_point : nullptr;
    ProcessDsBuffer(&ctx, chain.levels[a - 1].ds, d_bytes, offsets[a], snls[a], offsets[a + 1],
                    snls[a + 1], child_rdata, verifier, verifier == nullptr ? &root_zsk : nullptr);
  }

  return pub.size();
}

}  // namespace nope
