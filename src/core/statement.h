// S_NOPE — the paper's proof statement (§3.2), assembled from the §4 parsing
// and §5 cryptography gadgets.
//
// The statement establishes, over a witnessed set of RFC 4034 canonical
// signing buffers, that a valid DNSSEC chain runs from the (baked-in) root
// ZSK down to a KSK for the public domain name D, and that the prover knows
// that KSK's private key. The TLS key digest, CA name digest, and truncated
// timestamp are public inputs with no constraints: the proof itself is the
// signature of knowledge binding them (§3.2). Toggling `StatementOptions`
// reproduces the Figure 6 ablation rows.
//
// Public input layout (after the constant 1):
//   [0 .. name_chunks)   packed D wire-form bytes (16-byte chunks, padded)
//   [+0]                 packed TLS-key digest, high half
//   [+1]                 packed TLS-key digest, low half
//   [+2], [+3]           packed CA-name digest halves
//   [+4]                 truncated timestamp TS
// The root ZSK is a circuit constant (the trust anchor is fixed at setup,
// like the hard-coded root key in DNSSEC itself); see DESIGN.md.
#ifndef SRC_CORE_STATEMENT_H_
#define SRC_CORE_STATEMENT_H_

#include "src/dns/dnssec.h"
#include "src/r1cs/constraint_system.h"

namespace nope {

struct StatementOptions {
  // §3: bind T/N/TS through the signature of knowledge instead of an
  // explicit in-circuit KSK signature over them (the straw man).
  bool use_signature_of_knowledge = true;
  // §4: NOPE mask/slice vs. the naive per-element forms.
  bool use_nope_parsing = true;
  // §5.1-§5.2: carry-polynomial congruences + hint-based EC ops vs. naive
  // schoolbook products with a long-division reduction per multiplication.
  bool use_nope_crypto = true;
  // §5.3: half-width GLV MSM for ECDSA verification.
  bool use_glv_msm = true;
  // Misc: packed slicing for key extraction.
  bool use_misc_optimizations = true;
  // Appendix A: NOPE-managed. Instead of proving knowledge of the KSK's
  // private key, prove that a TXT record on D — signed by D's own ZSK —
  // commits to hash(T || N || TS). For domain owners whose DNSSEC keys live
  // at a managed DNS provider. Roughly doubles the statement (one extra
  // DNSKEY parse + TXT search + signature) and needs no zero-knowledge.
  bool managed_mode = false;
  // Run the R1CS optimizer pipeline (src/r1cs/opt) on the synthesized system
  // before Groth16 Setup/Prove. Deterministic: Setup (sample witness) and
  // Prove (real witness) produce identical optimized matrices, so keys and
  // proofs stay compatible. Off reproduces the unoptimized circuit sizes.
  bool optimize_circuit = true;

  static StatementOptions Baseline() {
    return {false, false, false, false, false};
  }
  static StatementOptions Full() { return {true, true, true, true, true}; }
};

struct StatementParams {
  const CryptoSuite* suite = &CryptoSuite::Toy();
  size_t num_levels = 1;      // intermediate zones between D and the root
  size_t max_name_len = 32;   // bound on D's wire-form length
  StatementOptions options;
};

// Everything the prover supplies.
struct StatementWitness {
  ChainOfTrust chain;
  BigUInt leaf_ksk_private_key;  // unused in managed mode
  Bytes tls_key_digest;   // 32 bytes
  Bytes ca_name_digest;   // 32 bytes
  uint64_t truncated_ts = 0;
  // Managed mode (App. A): D's own DNSKEY RRset (KSK-signed) and the TXT
  // RRset (ZSK-signed) carrying the binding digest.
  SignedRrset managed_dnskey;
  SignedRrset managed_txt;
};

// The 32-byte value a NOPE-managed domain posts in a TXT record:
// Digest32(T_digest || N_digest || TS) under the suite's hash.
Bytes ManagedBinding(const CryptoSuite& suite, const Bytes& tls_key_digest,
                     const Bytes& ca_name_digest, uint64_t truncated_ts);

// Computes the public input vector (excluding the constant 1) for a given
// instance; shared by prover and verifier.
std::vector<Fr> NopePublicInputs(const StatementParams& params, const DnsName& domain,
                                 const Bytes& tls_key_digest, const Bytes& ca_name_digest,
                                 uint64_t truncated_ts);

// Builds S_NOPE into cs. The witness must be consistent with params (same
// suite, num_levels matching chain.levels.size()). The root ZSK constant is
// taken from witness.chain.root_zsk. Returns the number of public inputs.
size_t BuildNopeStatement(ConstraintSystem* cs, const StatementParams& params,
                          const StatementWitness& witness);

// Convenience: digest helpers shared with the client side.
Bytes TlsKeyDigest(const Bytes& tls_public_key);
Bytes CaNameDigest(const std::string& organization);
// Timestamps are truncated to 10-minute buckets (§3.2).
uint64_t TruncateTimestamp(uint64_t unix_seconds);

}  // namespace nope

#endif  // SRC_CORE_STATEMENT_H_
