// Typed downgrade reasons for §7 graceful degradation.
//
// Both degradation surfaces — the client (NopeClientVerify falling back to
// legacy-only validation) and the server (RenewalManager falling back to
// proof-less issuance) — previously recorded free-form strings. The scenario
// zoo needs a closed taxonomy so per-scenario-class invariants can assert
// "degraded WITH THIS reason" rather than substring-matching log text, and so
// the sweep's degrade-reason histogram has stable bucket names.
//
// The taxonomy mirrors where in the pipeline the proof path died:
//   * proof-shaped causes (kNoProof, kBadProofEncoding) — the §7 client cases;
//   * DNSSEC-shaped causes (kUnsignedZone, kUnsignedDelegation, kRrsig*,
//     kChainBogus) — the RFC 4035 insecure/bogus split, surfaced when chain
//     construction or validation fails during issuance;
//   * dependency-shaped causes (kDependencyUnavailable, kDependencyTimeout,
//     kProofDeadlineExceeded) — transient-world failures from ISSUE 3.
#ifndef SRC_CORE_DOWNGRADE_H_
#define SRC_CORE_DOWNGRADE_H_

#include "src/base/result.h"

namespace nope {

enum class DowngradeReason {
  kNone,                // not degraded
  kNoProof,             // certificate carries no NOPE SANs at all
  kBadProofEncoding,    // NOPE SANs present but malformed (§7: degrade, not fail)
  kUnsignedZone,        // the domain's own zone publishes no RRSIGs
  kUnsignedDelegation,  // an ancestor zone is unsigned (island of security)
  kRrsigExpired,        // a chain RRSIG's validity window has lapsed
  kRrsigNotYetValid,    // a chain RRSIG's inception is in the future (skew)
  kChainBogus,          // chain data present but cryptographically invalid
  kDependencyUnavailable,  // DNS SERVFAIL / CA throttle during the proof path
  kDependencyTimeout,      // a dependency blew its deadline
  kProofDeadlineExceeded,  // proving was cancelled at the attempt budget
};
constexpr int kNumDowngradeReasons =
    static_cast<int>(DowngradeReason::kProofDeadlineExceeded) + 1;

const char* DowngradeReasonName(DowngradeReason reason);

// Maps a proof-path Error (from chain resolution, validation, proving, or
// issuance) to the downgrade reason the degradation surfaces record. The
// context string disambiguates codes that fold two causes together (matched
// as substrings, since retry wrappers prepend their own context):
//   * kInsecure: a context mentioning "unsigned delegation" is an unsigned
//     ancestor (kUnsignedDelegation); any other kInsecure context is the
//     leaf's own zone (kUnsignedZone). TryBuildChain emits these markers.
//   * kOutOfRange: ValidateChainTimes says "expired" for a lapsed window and
//     "in the future" otherwise; the former maps to kRrsigExpired, the
//     latter to kRrsigNotYetValid.
DowngradeReason ClassifyDowngrade(const Error& error);

}  // namespace nope

#endif  // SRC_CORE_DOWNGRADE_H_
