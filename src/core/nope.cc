#include "src/core/nope.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "src/r1cs/opt/optimizer.h"

namespace nope {

namespace {

// Figure 5 latency model (seconds). Proof generation is measured; the ACME
// legs use the paper's observed/defaulted values (Certbot's 30 s propagation
// delay; §8.2).
constexpr double kAcmeInitiationSeconds = 1.4;
constexpr double kDnsPropagationSeconds = 30.0;
constexpr double kAcmeVerificationSeconds = 4.6;

StatementParams ShapeFor(const CryptoSuite& suite, const DnsName& domain,
                         StatementOptions options) {
  StatementParams params;
  params.suite = &suite;
  params.num_levels = domain.NumLabels() - 1;
  size_t wire = domain.ToWire().size();
  params.max_name_len = std::max<size_t>(32, ((wire + 15) / 16) * 16);
  params.options = options;
  return params;
}

}  // namespace

StatementWitness BuildWitness(DnssecHierarchy* dns, const DnsName& domain,
                              const Bytes& tls_public_key, const std::string& ca_name,
                              uint64_t expected_issuance_time) {
  Zone* zone = dns->Find(domain);
  if (zone == nullptr) {
    throw std::invalid_argument("domain is not a zone: " + domain.ToString());
  }
  StatementWitness witness;
  witness.chain = dns->BuildChain(domain);
  witness.leaf_ksk_private_key = zone->ksk().ec_priv;
  witness.tls_key_digest = TlsKeyDigest(tls_public_key);
  witness.ca_name_digest = CaNameDigest(ca_name);
  witness.truncated_ts = TruncateTimestamp(expected_issuance_time);
  return witness;
}

// NOPE-managed (App. A): the domain owner writes the binding digest into a
// TXT record on D and has the (managed) provider ZSK-sign it; the witness
// additionally carries D's own DNSKEY RRset.
static void PopulateManagedWitness(DnssecHierarchy* dns, const DnsName& domain,
                                   StatementWitness* witness) {
  Bytes binding = ManagedBinding(dns->suite(), witness->tls_key_digest,
                                 witness->ca_name_digest, witness->truncated_ts);
  std::string value(binding.begin(), binding.end());
  auto existing = dns->QueryTxt(domain);
  if (std::find(existing.begin(), existing.end(), value) == existing.end()) {
    dns->SetTxt(domain, value);
  }
  witness->managed_txt = dns->SignedTxt(domain);
  Zone* zone = dns->Find(domain);
  witness->managed_dnskey = zone->Sign(zone->DnskeyRrset(), dns->rng());
}

NopeDeployment NopeTrustedSetup(DnssecHierarchy* dns, const DnsName& domain,
                                StatementOptions options, Rng* rng) {
  NopeDeployment deployment;
  deployment.params = ShapeFor(dns->suite(), domain, options);
  deployment.root_zsk = dns->root().ZskRdata();

  // A sample witness shapes the matrices; its values are irrelevant to the
  // keys (the toxic waste is sampled and dropped inside Setup).
  StatementWitness sample =
      BuildWitness(dns, domain, Bytes(65, 0x04), "setup-sample", 1700000000);
  if (options.managed_mode) {
    PopulateManagedWitness(dns, domain, &sample);
  }
  ConstraintSystem cs;
  BuildNopeStatement(&cs, deployment.params, sample);
  if (options.optimize_circuit) {
    // The optimizer is a pure function of the matrices, so the system built
    // here from the sample witness and the one built at proving time from
    // the real witness reduce to identical matrices (see src/r1cs/opt).
    deployment.pk = groth16::Setup(Optimize(cs).cs, rng);
  } else {
    deployment.pk = groth16::Setup(cs, rng);
  }
  return deployment;
}

NopeProofBundle GenerateNopeProof(const NopeDeployment& deployment, DnssecHierarchy* dns,
                                  const DnsName& domain, const Bytes& tls_public_key,
                                  const std::string& ca_name, uint64_t expected_issuance_time,
                                  Rng* rng) {
  auto start = std::chrono::steady_clock::now();
  StatementWitness witness =
      BuildWitness(dns, domain, tls_public_key, ca_name, expected_issuance_time);
  if (deployment.params.options.managed_mode) {
    PopulateManagedWitness(dns, domain, &witness);
  }
  ConstraintSystem cs;
  BuildNopeStatement(&cs, deployment.params, witness);
  NopeProofBundle bundle;
  if (deployment.params.options.optimize_circuit) {
    bundle.proof = groth16::Prove(deployment.pk, Optimize(cs).cs, rng);
  } else {
    bundle.proof = groth16::Prove(deployment.pk, cs, rng);
  }
  bundle.sans = EncodeProofSans(bundle.proof.ToBytes(), domain);
  bundle.proof_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return bundle;
}

std::optional<IssuanceResult> IssueCertificate(const NopeDeployment* deployment,
                                               DnssecHierarchy* dns, CertificateAuthority* ca,
                                               const DnsName& domain,
                                               const Bytes& tls_public_key, uint64_t now,
                                               Rng* rng, bool with_nope,
                                               size_t injected_dns_retries) {
  IssuanceResult result;
  CertificateSigningRequest csr;
  csr.subject = domain;
  csr.public_key = tls_public_key;

  if (with_nope) {
    if (deployment == nullptr) {
      throw std::invalid_argument("NOPE issuance needs a deployment");
    }
    NopeProofBundle bundle =
        GenerateNopeProof(*deployment, dns, domain, tls_public_key, ca->organization(), now, rng);
    csr.sans = bundle.sans;
    result.timeline.proof_generation_s = bundle.proof_seconds;
  }

  // ACME DNS-01 (Fig. 2 steps 3-7).
  AcmeOrder order = ca->NewOrder(csr);
  result.timeline.acme_initiation_s = kAcmeInitiationSeconds;
  dns->SetTxt(domain.Child("_acme-challenge"), order.challenge_token);
  result.timeline.dns_propagation_s = kDnsPropagationSeconds;
  // Slow-propagation model: the first injected_dns_retries polls race ahead
  // of the TXT record and see nothing, so the CA's validation fails and the
  // requester waits out another propagation round before re-finalizing.
  size_t empty_polls = injected_dns_retries;
  auto resolver = [dns, &empty_polls](const DnsName& name) -> std::vector<std::string> {
    if (empty_polls > 0) {
      --empty_polls;
      return {};
    }
    return dns->QueryTxt(name);
  };
  std::optional<Certificate> cert;
  for (size_t round = 0; round <= injected_dns_retries; ++round) {
    cert = ca->FinalizeOrder(order, csr, resolver, now);
    if (cert.has_value()) {
      break;
    }
    ++result.timeline.dns_retries;
    result.timeline.dns_propagation_s += kDnsPropagationSeconds;
  }
  result.timeline.acme_verification_s = kAcmeVerificationSeconds;
  if (!cert.has_value()) {
    return std::nullopt;
  }
  result.chain = CertificateChain{*cert, ca->intermediate()};
  return result;
}

const char* NopeVerifyStatusName(NopeVerifyStatus status) {
  switch (status) {
    case NopeVerifyStatus::kOk:
      return "ok";
    case NopeVerifyStatus::kLegacyFailure:
      return "legacy-failure";
    case NopeVerifyStatus::kNoNopeProof:
      return "no-nope-proof";
    case NopeVerifyStatus::kBadProofEncoding:
      return "bad-proof-encoding";
    case NopeVerifyStatus::kProofRejected:
      return "proof-rejected";
    case NopeVerifyStatus::kTimestampMismatch:
      return "timestamp-mismatch";
  }
  return "unknown";
}

NopeClientResult NopeClientVerify(const NopeDeployment& deployment,
                                  const CertificateChain& chain, const TrustStore& trust,
                                  const DnsName& domain, uint64_t now,
                                  const OcspResponse* stapled_ocsp) {
  return NopeClientVerify(deployment, chain, trust, domain, now, stapled_ocsp,
                          /*pvk_cache=*/nullptr);
}

NopeClientResult NopeClientVerify(const NopeDeployment& deployment,
                                  const CertificateChain& chain, const TrustStore& trust,
                                  const DnsName& domain, uint64_t now,
                                  const OcspResponse* stapled_ocsp,
                                  PreparedVkCache* pvk_cache) {
  NopeClientResult result;
  result.legacy = LegacyVerifyChain(chain, trust, domain, now, stapled_ocsp);
  if (result.legacy != LegacyStatus::kOk) {
    result.status = NopeVerifyStatus::kLegacyFailure;
    result.accepted = false;
    return result;
  }

  Result<Bytes> proof_bytes = DecodeProofFromSans(chain.leaf.body.sans, domain);
  if (!proof_bytes.ok()) {
    // §7 graceful degradation: a certificate with no NOPE SANs (or with SANs
    // the client cannot decode) falls back to legacy-only validation — the
    // legacy checks above already passed — with the downgrade recorded.
    result.status = proof_bytes.error().code == ErrorCode::kMissing
                        ? NopeVerifyStatus::kNoNopeProof
                        : NopeVerifyStatus::kBadProofEncoding;
    // The client-side taxonomy is proof-shaped, not chain-shaped: anything
    // decodable-but-wrong is a bad encoding regardless of the error code.
    result.downgrade_kind = proof_bytes.error().code == ErrorCode::kMissing
                                ? DowngradeReason::kNoProof
                                : DowngradeReason::kBadProofEncoding;
    result.accepted = true;
    result.downgrade_reason = proof_bytes.error().ToString();
    return result;
  }
  Result<groth16::Proof> proof = groth16::Proof::TryFromBytes(proof_bytes.value());
  if (!proof.ok()) {
    result.status = NopeVerifyStatus::kBadProofEncoding;
    result.downgrade_kind = DowngradeReason::kBadProofEncoding;
    result.accepted = true;
    result.downgrade_reason = proof.error().ToString();
    return result;
  }

  // SCT timestamps must corroborate the certificate's issuance time: a
  // compromised CA that backdates not_before to reuse an old proof would
  // diverge from the CT-controlled SCTs (§3.2). This is a hard failure, not
  // a downgrade.
  for (const Sct& sct : chain.leaf.body.scts) {
    uint64_t lo = std::min(sct.timestamp, chain.leaf.body.not_before);
    uint64_t hi = std::max(sct.timestamp, chain.leaf.body.not_before);
    if (hi - lo > 600) {
      result.status = NopeVerifyStatus::kTimestampMismatch;
      result.accepted = false;
      return result;
    }
  }

  uint64_t ts = TruncateTimestamp(chain.leaf.body.not_before);
  std::vector<Fr> pub = NopePublicInputs(
      deployment.params, domain, TlsKeyDigest(chain.leaf.body.subject_public_key),
      CaNameDigest(chain.leaf.body.issuer_organization), ts);
  bool proof_ok;
  if (pvk_cache != nullptr) {
    KeyCache::Handle handle = pvk_cache->Checkout(domain.ToString(), deployment.vk());
    proof_ok = groth16::Verify(handle.As<PreparedVkEntry>()->pvk(), pub, proof.value());
  } else {
    proof_ok = groth16::Verify(deployment.vk(), pub, proof.value());
  }
  if (proof_ok) {
    result.status = NopeVerifyStatus::kOk;
    result.accepted = true;
    result.nope_validated = true;
  } else {
    // A well-formed proof that fails verification means active tampering; do
    // not downgrade.
    result.status = NopeVerifyStatus::kProofRejected;
    result.accepted = false;
  }
  return result;
}

}  // namespace nope
