#include "src/core/downgrade.h"

#include <string>

namespace nope {

const char* DowngradeReasonName(DowngradeReason reason) {
  switch (reason) {
    case DowngradeReason::kNone:
      return "none";
    case DowngradeReason::kNoProof:
      return "no_proof";
    case DowngradeReason::kBadProofEncoding:
      return "bad_proof_encoding";
    case DowngradeReason::kUnsignedZone:
      return "unsigned_zone";
    case DowngradeReason::kUnsignedDelegation:
      return "unsigned_delegation";
    case DowngradeReason::kRrsigExpired:
      return "rrsig_expired";
    case DowngradeReason::kRrsigNotYetValid:
      return "rrsig_not_yet_valid";
    case DowngradeReason::kChainBogus:
      return "chain_bogus";
    case DowngradeReason::kDependencyUnavailable:
      return "dependency_unavailable";
    case DowngradeReason::kDependencyTimeout:
      return "dependency_timeout";
    case DowngradeReason::kProofDeadlineExceeded:
      return "proof_deadline_exceeded";
  }
  return "unknown";
}

DowngradeReason ClassifyDowngrade(const Error& error) {
  switch (error.code) {
    case ErrorCode::kInsecure:
      // TryBuildChain marks the ancestor case "unsigned delegation (island of
      // security)" and the leaf case "unsigned zone". Substring search, not a
      // prefix match: retry wrappers prepend their own context.
      return error.context.find("unsigned delegation") != std::string::npos
                 ? DowngradeReason::kUnsignedDelegation
                 : DowngradeReason::kUnsignedZone;
    case ErrorCode::kOutOfRange:
      return error.context.find("expired") != std::string::npos
                 ? DowngradeReason::kRrsigExpired
                 : DowngradeReason::kRrsigNotYetValid;
    case ErrorCode::kBadSignature:
    case ErrorCode::kBadChecksum:
    case ErrorCode::kMismatch:
    case ErrorCode::kBadEncoding:
    case ErrorCode::kBadLength:
    case ErrorCode::kTruncated:
    case ErrorCode::kTrailingBytes:
    case ErrorCode::kNotOnCurve:
    case ErrorCode::kNotInSubgroup:
      return DowngradeReason::kChainBogus;
    case ErrorCode::kUnavailable:
      return DowngradeReason::kDependencyUnavailable;
    case ErrorCode::kTimedOut:
      return DowngradeReason::kDependencyTimeout;
    case ErrorCode::kCancelled:
      return DowngradeReason::kProofDeadlineExceeded;
    case ErrorCode::kMissing:
      return DowngradeReason::kNoProof;
  }
  return DowngradeReason::kChainBogus;
}

}  // namespace nope
