#include "src/ec/p256.h"

namespace nope {

const BigUInt& P256Order() {
  static const BigUInt n = BigUInt::FromHex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  return n;
}

P256Point P256Generator() {
  static const P256Point g = P256Point::FromAffine(
      P256Fq::FromBigUInt(BigUInt::FromHex(
          "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296")),
      P256Fq::FromBigUInt(BigUInt::FromHex(
          "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5")));
  return g;
}

}  // namespace nope
