#include "src/ec/glv.h"

#include "src/base/check.h"

namespace nope {

namespace {

// Sign-magnitude integers for the lattice arithmetic. `neg` is meaningless
// (kept false) when mag is zero.
struct SBig {
  BigUInt mag;
  bool neg = false;
};

SBig MakeS(const BigUInt& v, bool neg = false) {
  return {v, v.IsZero() ? false : neg};
}

SBig SNeg(const SBig& a) { return MakeS(a.mag, !a.neg); }

SBig SAdd(const SBig& a, const SBig& b) {
  if (a.neg == b.neg) {
    return MakeS(a.mag + b.mag, a.neg);
  }
  if (a.mag >= b.mag) {
    return MakeS(a.mag - b.mag, a.neg);
  }
  return MakeS(b.mag - a.mag, b.neg);
}

SBig SSub(const SBig& a, const SBig& b) { return SAdd(a, SNeg(b)); }

SBig SMul(const SBig& a, const SBig& b) {
  return MakeS(a.mag * b.mag, a.neg != b.neg);
}

// Fixed-point scale for the decomposition's rounded divisions: reciprocals
// are precomputed as round(2^kShift * b / r) so the per-scalar work is two
// multiply-shifts instead of two long divisions. kShift = 384 leaves the
// approximation error at k*|delta|/2^384 < 2^-130 for k < 2^254, so the
// computed coefficients differ from exact rounding by at most 1 -- which the
// k_i bound below absorbs.
constexpr size_t kShift = 384;

struct GlvParams {
  Fq beta;
  BigUInt lambda;
  // Short basis of {(a, b) : a + b*lambda == 0 mod r}: v1 = (a1, b1),
  // v2 = (a2, b2), determinant a1*b2 - a2*b1 == +r.
  SBig a1, b1, a2, b2;
  // Scaled reciprocals: g1 = round(2^kShift * b2 / r) with b2's sign,
  // g2 = round(2^kShift * (-b1) / r) with -b1's sign, and the rounding bias
  // 2^(kShift-1), so c_i = (k * g_i + bias) >> kShift.
  BigUInt g1, g2, round_bias;
  bool g1_neg = false, g2_neg = false;
};

// Finds a primitive cube root of unity mod `m` as t^((m-1)/3) for the first
// small t where that power is nontrivial. Requires m == 1 (mod 3).
BigUInt FindCubeRootOfUnity(const BigUInt& m) {
  BigUInt exp = (m - BigUInt(1)) / BigUInt(3);
  for (uint64_t t = 2; t < 100; ++t) {
    BigUInt root = BigUInt(t).PowMod(exp, m);
    if (root != BigUInt(1)) {
      return root;
    }
  }
  NOPE_INVARIANT(false, "GLV: no cube root of unity found");
  return BigUInt();
}

GlvParams DeriveGlvParams() {
  const BigUInt& r = Bn254Order();
  const BigUInt& p = Fq::params().modulus_big;

  GlvParams out;
  out.beta = Fq::FromBigUInt(FindCubeRootOfUnity(p));
  out.lambda = FindCubeRootOfUnity(r);
  NOPE_INVARIANT(
      out.lambda.MulMod(out.lambda, r).MulMod(out.lambda, r) == BigUInt(1),
      "GLV: lambda is not a cube root of unity");

  // beta and lambda each have two nontrivial choices (x and x^2); the
  // endomorphism acts as multiplication by exactly one eigenvalue per beta.
  // Match them empirically on the generator: phi(G) must equal lambda*G.
  G1 g = G1Generator();
  G1::Affine ga = g.ToAffine();
  G1 phi_g = G1::FromAffine(out.beta * ga.x, ga.y);
  if (!g.ScalarMul(out.lambda).Equals(phi_g)) {
    out.lambda = out.lambda.MulMod(out.lambda, r);  // the other root
    NOPE_INVARIANT(g.ScalarMul(out.lambda).Equals(phi_g),
                   "GLV: no eigenvalue matches the endomorphism");
  }

  // Short lattice basis from the extended-Euclid rows around sqrt(r): each
  // row has r_i == +-t_i*lambda (mod r), so (r_i, -t_i) lies in
  // {(a, b) : a + b*lambda == 0 mod r}. v1 is row m+1 (the first below the
  // threshold, both components ~sqrt(r)). For v2 the GLV construction takes
  // the shorter of rows m and m+2: row m's remainder can sit far above
  // sqrt(r) when the quotient at the crossing is large (it is for BN254,
  // whose lambda yields a lopsided 191/63-bit row m).
  auto [row_m, row_m1] = BigUInt::HalfGcdRows(r, out.lambda);
  out.a1 = MakeS(row_m1.r);
  out.b1 = MakeS(row_m1.t, !row_m1.t_neg);

  SBig a2_m = MakeS(row_m.r);
  SBig b2_m = MakeS(row_m.t, !row_m.t_neg);
  // Row m+2 continues the walk one step: r_{m+2} = r_m - q*r_{m+1},
  // t_{m+2} = t_m - q*t_{m+1} with q the Euclid quotient.
  SBig q = MakeS(row_m.r / row_m1.r);
  SBig r_m2 = SSub(MakeS(row_m.r), SMul(q, MakeS(row_m1.r)));
  SBig t_m2 = SSub(MakeS(row_m.t, row_m.t_neg),
                   SMul(q, MakeS(row_m1.t, row_m1.t_neg)));
  SBig a2_m2 = r_m2;
  SBig b2_m2 = MakeS(t_m2.mag, !t_m2.neg);

  auto max_component = [](const SBig& a, const SBig& b) {
    return a.mag >= b.mag ? a.mag : b.mag;
  };
  if (max_component(a2_m2, b2_m2) < max_component(a2_m, b2_m)) {
    out.a2 = a2_m2;
    out.b2 = b2_m2;
  } else {
    out.a2 = a2_m;
    out.b2 = b2_m;
  }

  // Normalize the determinant to +r (negate v2 if needed); |det| == r holds
  // whenever the basis is a genuine basis of the full lattice.
  SBig det = SSub(SMul(out.a1, out.b2), SMul(out.a2, out.b1));
  NOPE_INVARIANT(det.mag == r, "GLV: lattice basis determinant != +-r");
  if (det.neg) {
    out.a2 = SNeg(out.a2);
    out.b2 = SNeg(out.b2);
  }

  out.g1 = ((out.b2.mag << kShift) + (r >> 1)) / r;
  out.g1_neg = out.b2.neg;
  out.g2 = ((out.b1.mag << kShift) + (r >> 1)) / r;
  out.g2_neg = !out.b1.neg;  // g2 approximates -b1/r
  out.round_bias = BigUInt(1) << (kShift - 1);
  return out;
}

const GlvParams& Params() {
  static const GlvParams params = DeriveGlvParams();
  return params;
}

}  // namespace

const Fq& GlvBeta() { return Params().beta; }

const BigUInt& GlvLambda() { return Params().lambda; }

GlvDecomposition GlvDecompose(const BigUInt& k) {
  const GlvParams& p = Params();
  const BigUInt& r = Bn254Order();
  SBig ks = MakeS(k < r ? k : k % r);

  // Babai round-off: (k, 0) = c1*v1 + c2*v2 + (k1, k2) with c_i the rounded
  // rational coordinates of (k, 0) in the basis. Since det == +r:
  //   c1 = round(k*b2 / r), c2 = round(-k*b1 / r),
  // evaluated via the precomputed 2^kShift-scaled reciprocals (a multiply
  // and shift per coefficient; see kShift above for the error bound).
  SBig c1 = MakeS((ks.mag * p.g1 + p.round_bias) >> kShift, p.g1_neg);
  SBig c2 = MakeS((ks.mag * p.g2 + p.round_bias) >> kShift, p.g2_neg);
  SBig k1 = SSub(SSub(ks, SMul(c1, p.a1)), SMul(c2, p.a2));
  SBig k2 = SNeg(SAdd(SMul(c1, p.b1), SMul(c2, p.b2)));

  // Exact rounding keeps each component under (|v1| + |v2|) / 2; the +-1
  // reciprocal slack adds at most one more basis vector. With basis vectors
  // below 2^129 the components stay safely under 2^130. A violation means
  // the basis derivation broke, not that the input was hostile.
  NOPE_INVARIANT(k1.mag.BitLength() <= 130 && k2.mag.BitLength() <= 130,
                 "GLV: decomposition exceeded the half-size bound");
  return GlvDecomposition{k1.mag, k2.mag, k1.neg, k2.neg};
}

AffinePoint<Bn254G1Config> GlvEndomorphism(
    const AffinePoint<Bn254G1Config>& p) {
  if (p.infinity) {
    return p;
  }
  return {Params().beta * p.x, p.y, false};
}

}  // namespace nope
