// GLV scalar decomposition for BN254 G1.
//
// BN254's base field has p == 1 (mod 3), so the curve y^2 = x^3 + 3 carries
// the efficient endomorphism phi(x, y) = (beta*x, y) where beta is a
// primitive cube root of unity in Fq. On the order-r subgroup phi acts as
// multiplication by lambda, a primitive cube root of unity mod r
// (lambda^2 + lambda + 1 == 0 mod r). Writing k == k1 + lambda*k2 (mod r)
// with |k1|, |k2| ~ sqrt(r) lets the MSM treat one length-n instance with
// 254-bit scalars as a length-2n instance with ~128-bit scalars — fewer
// windows for slightly more buckets, a large net win (GLV 2001; the same
// half-size lattice idea the paper's Appendix C uses for ECDSA).
//
// All constants (beta, lambda, the short lattice basis) are derived at first
// use from the curve parameters and cross-checked (phi(G) == lambda*G, basis
// determinant == r, decomposition round-trips), so there are no hardcoded
// magic values to rot.
#ifndef SRC_EC_GLV_H_
#define SRC_EC_GLV_H_

#include "src/base/biguint.h"
#include "src/ec/bn254.h"

namespace nope {

// Opt-in trait: Msm consults this to decide whether a curve config has an
// endomorphism-based decomposition. Only BN254 G1 opts in (G2 lives over Fp2
// where the cheap x-coordinate twist does not apply to our representation).
template <typename Config>
struct GlvTraits {
  static constexpr bool kEnabled = false;
};

template <>
struct GlvTraits<Bn254G1Config> {
  static constexpr bool kEnabled = true;
};

// k == sign(k1)*|k1| + lambda * sign(k2)*|k2| (mod r), |k1|, |k2| < 2^130.
struct GlvDecomposition {
  BigUInt k1;
  BigUInt k2;
  bool k1_neg = false;
  bool k2_neg = false;
};

// Primitive cube root of unity in Fq with phi(P) = (beta*x, y) acting as
// multiplication by GlvLambda() on the r-order subgroup.
const Fq& GlvBeta();

// The matching eigenvalue: lambda^2 + lambda + 1 == 0 (mod r).
const BigUInt& GlvLambda();

// Decomposes k (reduced mod r internally; valid for any scalar because G1
// has cofactor 1) into the half-size pair above via Babai rounding against
// the derived short lattice basis.
GlvDecomposition GlvDecompose(const BigUInt& k);

// phi(P) = (beta*x, y); infinity maps to infinity.
AffinePoint<Bn254G1Config> GlvEndomorphism(const AffinePoint<Bn254G1Config>& p);

}  // namespace nope

#endif  // SRC_EC_GLV_H_
