#include "src/ec/bn254.h"

#include "src/base/check.h"

namespace nope {

namespace {

// BN parameter x for alt_bn128; the ate loop count is 6x+2.
const char* kBnXDecimal = "4965661367192848881";

const BigUInt& AteLoopCount() {
  static const BigUInt s =
      BigUInt::FromDecimal(kBnXDecimal) * BigUInt(6) + BigUInt(2);
  return s;
}

// Hard part exponent of the final exponentiation: (p^4 - p^2 + 1) / r.
// The division is exact for BN curves.
const BigUInt& HardExponent() {
  static const BigUInt h = [] {
    BigUInt p = Fq::params().modulus_big;
    BigUInt p2 = p * p;
    BigUInt p4 = p2 * p2;
    BigUInt numerator = p4 - p2 + BigUInt(1);
    return numerator / Bn254Order();
  }();
  return h;
}

// w^2 and w^3 as Fp12 constants, used to untwist G2 points into E(Fp12).
Fp12 WSquared() {
  Fp6 v{Fp2::Zero(), Fp2::One(), Fp2::Zero()};
  return {v, Fp6::Zero()};
}

Fp12 WCubed() {
  Fp6 v{Fp2::Zero(), Fp2::One(), Fp2::Zero()};
  return {Fp6::Zero(), v};
}

Fp12 EmbedFp2(const Fp2& a) {
  return {Fp6{a, Fp2::Zero(), Fp2::Zero()}, Fp6::Zero()};
}

Fp12 EmbedFq(const Fq& a) { return EmbedFp2(Fp2{a, Fq::Zero()}); }

// Affine point on E(Fp12): y^2 = x^3 + 3.
struct Pt12 {
  Fp12 x;
  Fp12 y;
};

Pt12 Untwist(const G2::Affine& q) {
  return {EmbedFp2(q.x) * WSquared(), EmbedFp2(q.y) * WCubed()};
}

// Slope of the line through a and b (or the tangent at a when doubling),
// captured together with the anchor point *before* stepping; updates *a to
// a+b (or 2a). Splitting the slope computation from the evaluation is what
// lets PrepareG2 record the G1-independent coefficients once and replay
// them against many first arguments with bit-identical results.
G2PreparedLine LineAndStep(Pt12* a, const Pt12& b, bool doubling) {
  Fp12 lambda;
  if (doubling) {
    Fp12 x2 = a->x.Square();
    lambda = (x2 + x2 + x2) * (a->y + a->y).Inverse();
  } else {
    lambda = (b.y - a->y) * (b.x - a->x).Inverse();
  }
  G2PreparedLine line{lambda, a->x, a->y};
  Fp12 x3 = lambda.Square() - a->x - b.x;
  Fp12 y3 = lambda * (a->x - x3) - a->y;
  a->x = x3;
  a->y = y3;
  return line;
}

// Line evaluated at p = (px, py): py - ay - lambda (px - ax).
Fp12 EvalLine(const G2PreparedLine& line, const Fp12& px, const Fp12& py) {
  return py - line.ay - line.lambda * (px - line.ax);
}

// psi coefficients: the Frobenius of an untwisted coordinate x w^2 is
// conj(x) xi^((p-1)/3) w^2 (and conj(y) xi^((p-1)/2) w^3 for the y side),
// so on the twist psi(x, y) = (c_x conj(x), c_y conj(y)).
const Fp2& PsiCoeffX() {
  static const Fp2 c =
      Xi().Pow((Fq::params().modulus_big - BigUInt(1)) / BigUInt(3));
  return c;
}

const Fp2& PsiCoeffY() {
  static const Fp2 c =
      Xi().Pow((Fq::params().modulus_big - BigUInt(1)) / BigUInt(2));
  return c;
}

}  // namespace

Fp2 Bn254G2Config::B() {
  static const Fp2 b = Fp2{Fq::FromU64(3), Fq::Zero()} * Xi().Inverse();
  return b;
}

const BigUInt& Bn254Order() {
  static const BigUInt r = Fr::params().modulus_big;
  return r;
}

G1 G1Generator() { return G1::FromAffine(Fq::FromU64(1), Fq::FromU64(2)); }

G2 G2Generator() {
  Fp2 x{Fq::FromBigUInt(BigUInt::FromDecimal(
            "10857046999023057135944570762232829481370756359578518086990519993285655852781")),
        Fq::FromBigUInt(BigUInt::FromDecimal(
            "11559732032986387107991004021392285783925812861821192530917403151452391805634"))};
  Fp2 y{Fq::FromBigUInt(BigUInt::FromDecimal(
            "8495653923123431417604973247489272438418190587263600148770280649306958101930")),
        Fq::FromBigUInt(BigUInt::FromDecimal(
            "4082367875863433681332203403145435568316851327593401208105741076214120093531"))};
  return G2::FromAffine(x, y);
}

bool G1InSubgroup(const G1& p) {
  // Cofactor 1: every point satisfying the curve equation is in the group.
  return p.IsOnCurve();
}

G2 G2Psi(const G2& p) {
  if (p.IsInfinity()) {
    return G2::Infinity();
  }
  // Conjugation is a field automorphism, so it commutes with the Jacobian
  // projection (X/Z^2, Y/Z^3); scaling X by c_x and Y by c_y in Jacobian
  // coordinates applies the affine psi without an inversion.
  return {p.x.Conjugate() * PsiCoeffX(), p.y.Conjugate() * PsiCoeffY(),
          p.z.Conjugate()};
}

const BigUInt& Bn254PsiEigenvalue() {
  // t - 1 = 6u^2 for the BN trace t = 6u^2 + 1; this is the eigenvalue of
  // psi on the order-r subgroup, as an integer below r.
  static const BigUInt e = [] {
    BigUInt u = BigUInt::FromDecimal(kBnXDecimal);
    return u * u * BigUInt(6);
  }();
  return e;
}

bool G2InSubgroup(const G2& p) {
  if (!p.IsOnCurve()) {
    return false;
  }
  if (p.IsInfinity()) {
    return true;
  }
  // Soundness: psi satisfies its characteristic equation
  //   psi^2 - [t] psi + [p] = 0
  // on all of E'(Fp2). If psi(P) = [6u^2]P then substituting gives
  // [36u^4 - 6u^2 t + p]P = O, and with t = 6u^2 + 1 the scalar collapses
  // to p - 6u^2 = r, so P has order dividing the prime r. Completeness: on
  // the order-r subgroup psi acts as [p mod r] = [6u^2]. Differentially
  // tested against G2InSubgroupReference.
  return G2Psi(p).Equals(p.ScalarMul(Bn254PsiEigenvalue()));
}

bool G2InSubgroupReference(const G2& p) {
  return p.IsOnCurve() && p.ScalarMul(Bn254Order()).IsInfinity();
}

Fp12 MillerLoop(const G1& p, const G2& q) {
  if (p.IsInfinity() || q.IsInfinity()) {
    return Fp12::One();
  }
  G1::Affine pa = p.ToAffine();
  G2::Affine qa = q.ToAffine();
  Fp12 px = EmbedFq(pa.x);
  Fp12 py = EmbedFq(pa.y);

  Pt12 q12 = Untwist(qa);
  Pt12 t = q12;
  Fp12 f = Fp12::One();

  const BigUInt& s = AteLoopCount();
  for (size_t i = s.BitLength() - 1; i-- > 0;) {
    f = f.Square() * EvalLine(LineAndStep(&t, t, /*doubling=*/true), px, py);
    if (s.Bit(i)) {
      f = f * EvalLine(LineAndStep(&t, q12, /*doubling=*/false), px, py);
    }
  }

  // Frobenius correction steps of the optimal ate pairing.
  Pt12 q1{q12.x.Frobenius(1), q12.y.Frobenius(1)};
  Pt12 q2{q12.x.Frobenius(2), q12.y.Frobenius(2)};
  f = f * EvalLine(LineAndStep(&t, q1, /*doubling=*/false), px, py);
  Pt12 neg_q2{q2.x, -q2.y};
  f = f * EvalLine(LineAndStep(&t, neg_q2, /*doubling=*/false), px, py);
  return f;
}

G2Prepared PrepareG2(const G2& q) {
  G2Prepared out;
  if (q.IsInfinity()) {
    return out;
  }
  out.infinity = false;
  G2::Affine qa = q.ToAffine();
  Pt12 q12 = Untwist(qa);
  Pt12 t = q12;

  const BigUInt& s = AteLoopCount();
  // One line per doubling, one per set loop bit, two correction lines.
  size_t bits = s.BitLength() - 1;
  size_t adds = 0;
  for (size_t i = 0; i + 1 < s.BitLength(); ++i) {
    adds += s.Bit(i) ? 1 : 0;
  }
  out.lines.reserve(bits + adds + 2);

  for (size_t i = s.BitLength() - 1; i-- > 0;) {
    out.lines.push_back(LineAndStep(&t, t, /*doubling=*/true));
    if (s.Bit(i)) {
      out.lines.push_back(LineAndStep(&t, q12, /*doubling=*/false));
    }
  }
  Pt12 q1{q12.x.Frobenius(1), q12.y.Frobenius(1)};
  Pt12 q2{q12.x.Frobenius(2), q12.y.Frobenius(2)};
  out.lines.push_back(LineAndStep(&t, q1, /*doubling=*/false));
  Pt12 neg_q2{q2.x, -q2.y};
  out.lines.push_back(LineAndStep(&t, neg_q2, /*doubling=*/false));
  return out;
}

Fp12 MillerLoop(const G1& p, const G2Prepared& q) {
  if (p.IsInfinity() || q.infinity) {
    return Fp12::One();
  }
  G1::Affine pa = p.ToAffine();
  Fp12 px = EmbedFq(pa.x);
  Fp12 py = EmbedFq(pa.y);

  Fp12 f = Fp12::One();
  size_t k = 0;
  const BigUInt& s = AteLoopCount();
  for (size_t i = s.BitLength() - 1; i-- > 0;) {
    f = f.Square() * EvalLine(q.lines[k++], px, py);
    if (s.Bit(i)) {
      f = f * EvalLine(q.lines[k++], px, py);
    }
  }
  f = f * EvalLine(q.lines[k++], px, py);
  f = f * EvalLine(q.lines[k++], px, py);
  NOPE_INVARIANT(k == q.lines.size(),
                 "G2Prepared line schedule out of sync with the ate loop");
  return f;
}

Fp12 FinalExponentiation(const Fp12& f) {
  // Easy part: f^((p^6 - 1)(p^2 + 1)).
  Fp12 t = f.Conjugate() * f.Inverse();
  t = t.Frobenius(2) * t;
  // Hard part: t^((p^4 - p^2 + 1)/r), computed by plain exponentiation.
  return t.Pow(HardExponent());
}

Fp12 Pairing(const G1& p, const G2& q) { return FinalExponentiation(MillerLoop(p, q)); }

bool PairingProductIsOne(const std::vector<std::pair<G1, G2>>& pairs) {
  Fp12 f = Fp12::One();
  for (const auto& [p, q] : pairs) {
    f = f * MillerLoop(p, q);
  }
  return FinalExponentiation(f).IsOne();
}

}  // namespace nope
