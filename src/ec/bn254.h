// BN254 (alt_bn128) groups G1, G2 and the optimal ate pairing. This is the
// proof-system curve: Groth16 proofs live in G1/G2 and verification is a
// product-of-pairings check in Fp12 (§2.3 of the paper).
#ifndef SRC_EC_BN254_H_
#define SRC_EC_BN254_H_

#include <utility>
#include <vector>

#include "src/ec/curve.h"
#include "src/ff/fp12.h"

namespace nope {

struct Bn254G1Config {
  using Field = Fq;
  static Field A() { return Fq::Zero(); }
  static Field B() { return Fq::FromU64(3); }
};

struct Bn254G2Config {
  using Field = Fp2;
  static Field A() { return Fp2::Zero(); }
  static Field B();  // 3 / (9 + u), the D-twist constant.
};

using G1 = EcPoint<Bn254G1Config>;
using G2 = EcPoint<Bn254G2Config>;
using G1Affine = AffinePoint<Bn254G1Config>;
using G2Affine = AffinePoint<Bn254G2Config>;

// Group order (same prime as Fr's modulus).
const BigUInt& Bn254Order();

G1 G1Generator();
G2 G2Generator();

// Subgroup membership checks for deserialized (untrusted) points. BN254 G1
// has cofactor 1, so the curve equation alone proves membership; G2 sits on
// a twist with a large cofactor, so an explicit order-r scalar check is
// required before feeding a decoded point into a pairing.
bool G1InSubgroup(const G1& p);
bool G2InSubgroup(const G2& p);

// Optimal ate pairing e: G1 x G2 -> Fp12. Identity inputs map to 1.
Fp12 Pairing(const G1& p, const G2& q);

// Miller loop without the final exponentiation (for multi-pairing).
Fp12 MillerLoop(const G1& p, const G2& q);
Fp12 FinalExponentiation(const Fp12& f);

// Checks prod_i e(p_i, q_i) == 1, sharing one final exponentiation.
bool PairingProductIsOne(const std::vector<std::pair<G1, G2>>& pairs);

}  // namespace nope

#endif  // SRC_EC_BN254_H_
