// BN254 (alt_bn128) groups G1, G2 and the optimal ate pairing. This is the
// proof-system curve: Groth16 proofs live in G1/G2 and verification is a
// product-of-pairings check in Fp12 (§2.3 of the paper).
#ifndef SRC_EC_BN254_H_
#define SRC_EC_BN254_H_

#include <utility>
#include <vector>

#include "src/ec/curve.h"
#include "src/ff/fp12.h"

namespace nope {

struct Bn254G1Config {
  using Field = Fq;
  static Field A() { return Fq::Zero(); }
  static Field B() { return Fq::FromU64(3); }
};

struct Bn254G2Config {
  using Field = Fp2;
  static Field A() { return Fp2::Zero(); }
  static Field B();  // 3 / (9 + u), the D-twist constant.
};

using G1 = EcPoint<Bn254G1Config>;
using G2 = EcPoint<Bn254G2Config>;
using G1Affine = AffinePoint<Bn254G1Config>;
using G2Affine = AffinePoint<Bn254G2Config>;

// Group order (same prime as Fr's modulus).
const BigUInt& Bn254Order();

G1 G1Generator();
G2 G2Generator();

// The untwist-Frobenius-twist endomorphism psi on the twist E'(Fp2):
//   psi(x, y) = (c_x * conj(x), c_y * conj(y))
// with c_x = xi^((p-1)/3), c_y = xi^((p-1)/2). On the order-r subgroup psi
// acts as multiplication by the Frobenius eigenvalue p === 6u^2 (mod r),
// where u is the BN parameter; outside it the eigenvalue relation fails,
// which is what makes the fast subgroup check below sound.
G2 G2Psi(const G2& p);

// 6u^2 = t - 1 for the BN trace t: the eigenvalue of psi on G2 as an
// integer (it is < r, so no reduction is needed). Exposed for tests.
const BigUInt& Bn254PsiEigenvalue();

// Subgroup membership checks for deserialized (untrusted) points. BN254 G1
// has cofactor 1, so the curve equation alone proves membership; G2 sits on
// a twist with a large cofactor, so an explicit order-r membership check is
// required before feeding a decoded point into a pairing.
//
// G2InSubgroup is the fast path: on-curve plus psi(P) == [6u^2]P. The
// eigenvalue relation implies [r]P = O (see bn254.cc), and [6u^2] is a
// 127-bit scalar versus the 254-bit order, so the check costs roughly half
// a ScalarMul(r). G2InSubgroupReference is the direct order-r scalar
// multiplication, kept as the differential-testing reference.
bool G1InSubgroup(const G1& p);
bool G2InSubgroup(const G2& p);
bool G2InSubgroupReference(const G2& p);

// Optimal ate pairing e: G1 x G2 -> Fp12. Identity inputs map to 1.
//
// Contract for degenerate inputs: MillerLoop (all variants) and Pairing
// return 1 when either argument is the point at infinity. That makes an
// infinity factor vanish from any pairing-product equation, so callers
// performing a soundness-critical product check MUST reject infinity inputs
// at their own boundary before calling in (groth16::Verify/BatchVerify do).
Fp12 Pairing(const G1& p, const G2& q);

// Miller loop without the final exponentiation (for multi-pairing).
Fp12 MillerLoop(const G1& p, const G2& q);
Fp12 FinalExponentiation(const Fp12& f);

// One precomputed line of a Miller loop with fixed second argument: the
// slope plus the running point (ax, ay) at which the line was anchored.
// Evaluating the line at a G1 point (px, py) is
//   py - ay - lambda * (px - ax),
// exactly the expression the on-the-fly loop computes, so the prepared path
// reproduces the unprepared path bit for bit.
struct G2PreparedLine {
  Fp12 lambda;
  Fp12 ax;
  Fp12 ay;
};

// All line coefficients of MillerLoop(*, q) for a fixed q: one entry per
// doubling step, one per addition step (set bits of the ate loop count) and
// two for the Frobenius correction steps. The fixed-input G2 elements of a
// Groth16 verifying key (beta, gamma, delta) are prepared once per key and
// amortized over every subsequent verification.
struct G2Prepared {
  bool infinity = true;
  std::vector<G2PreparedLine> lines;

  size_t SizeBytes() const {
    return sizeof(*this) + lines.capacity() * sizeof(G2PreparedLine);
  }
};

G2Prepared PrepareG2(const G2& q);

// Miller loop consuming precomputed lines; bit-identical to
// MillerLoop(p, q) for q the point PrepareG2 was given (asserted by the
// differential tests). Same degenerate-input contract: returns 1 when p or
// the prepared point is infinity.
Fp12 MillerLoop(const G1& p, const G2Prepared& q);

// Checks prod_i e(p_i, q_i) == 1, sharing one final exponentiation.
bool PairingProductIsOne(const std::vector<std::pair<G1, G2>>& pairs);

}  // namespace nope

#endif  // SRC_EC_BN254_H_
