// Multi-scalar multiplication via Pippenger's bucket method. This dominates
// Groth16 proving time, which is why the paper's headline prover costs scale
// with the number of R1CS constraints (§4.1, §8.2).
//
// Two kernels live here:
//
//   MsmJacobian — the original straightforward kernel (Jacobian bases,
//     unsigned windows). Kept as the differential-testing and benchmarking
//     reference for the fast path.
//
//   MsmAffine / Msm — the fast kernel: affine bases (mixed additions),
//     batch-affine bucket accumulation (per-round shared inversion resolves
//     all pending bucket additions with one field inversion), signed-digit
//     windows (digit in [-2^(c-1), 2^(c-1)-1], halving the bucket count via
//     on-the-fly negation), and — for BN254 G1 only — GLV lambda
//     decomposition (half-length scalars, double-width input).
//
// Determinism contract (both kernels): the window width, digit schedule and
// chunk grid are pure functions of the input size and scalar bit-length,
// never of the thread count; each chunk owns private buckets; chunk buckets
// merge in serial chunk order. Affine bucket coordinates are canonical, so
// the batch-affine reduction tree cannot leak representation differences.
// The returned Jacobian point is bit-identical for any NOPE_THREADS value.
#ifndef SRC_EC_MSM_H_
#define SRC_EC_MSM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/biguint.h"
#include "src/base/cancellation.h"
#include "src/base/check.h"
#include "src/base/threadpool.h"
#include "src/ec/batch_affine.h"
#include "src/ec/curve.h"
#include "src/ec/glv.h"

namespace nope {

namespace msm_detail {
// Extracts `width` bits of k starting at bit `offset` (little-endian bits).
inline uint64_t WindowBits(const BigUInt& k, size_t offset, size_t width) {
  uint64_t out = 0;
  for (size_t b = 0; b < width; ++b) {
    if (k.Bit(offset + b)) {
      out |= uint64_t{1} << b;
    }
  }
  return out;
}

inline size_t PickWindow(size_t n) {
  if (n < 32) {
    return 3;
  }
  size_t c = 1;
  while ((size_t{1} << (c + 1)) < n / (c + 1)) {
    ++c;
  }
  return c > 16 ? 16 : c;
}

// Inputs below this size take the single-pass serial path in MsmJacobian; at
// or above it, the fixed-chunk-grid path (which parallelizes when lanes are
// available). The path choice depends only on n, preserving determinism.
constexpr size_t kParallelCutoff = 256;

// Window width for the signed-digit kernel: minimizes an integer cost model
// over c. Per window: ~7 field muls per point in the batch-affine
// accumulation and ~2 Jacobian adds (~16 muls each) per bucket in the
// suffix walk. Deterministic integer arithmetic; depends only on (n,
// max_bits).
inline size_t PickSignedWindow(size_t n, size_t max_bits) {
  size_t best_c = 2;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t c = 2; c <= 16; ++c) {
    uint64_t windows = (max_bits + c - 1) / c + 1;
    uint64_t buckets = uint64_t{1} << (c - 1);
    uint64_t cost = windows * (7 * static_cast<uint64_t>(n) + 32 * buckets);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

// Signed-digit recoding: writes `windows` digits of k in base 2^c with
// digit in [-2^(c-1), 2^(c-1)-1]. A raw window value >= 2^(c-1) becomes
// (raw - 2^c) plus a carry into the next window; the extra top window
// (callers size windows = ceil(max_bits/c) + 1) absorbs the final carry, so
// the recoding is exact: sum digit_w * 2^(cw) == k.
inline void SignedDigits(const BigUInt& k, size_t c, size_t windows,
                         int32_t* out) {
  const int64_t full = int64_t{1} << c;
  const int64_t half = int64_t{1} << (c - 1);
  int64_t carry = 0;
  for (size_t w = 0; w < windows; ++w) {
    int64_t raw = static_cast<int64_t>(WindowBits(k, w * c, c)) + carry;
    if (raw >= half) {
      out[w] = static_cast<int32_t>(raw - full);
      carry = 1;
    } else {
      out[w] = static_cast<int32_t>(raw);
      carry = 0;
    }
  }
}

// Below this many pending pairs a reduction round is not worth its fixed
// cost: the shared inversion is a ~380-mul Fermat exponentiation, while each
// unresolved pair merely adds one ~11-mul mixed add to the suffix walk
// (which handles multi-entry buckets). Purely a constant, so the reduction
// depth stays a function of the entry list alone.
constexpr size_t kMinBatchPairs = 64;

// Batched pairwise-reduction rounds over a bucket-keyed affine entry list
// (parallel arrays x/y/bucket, modified in place). Each round counting-sorts
// the entries by bucket (stable), pairs same-bucket neighbors, and resolves
// every pending pair of the round (adds and doublings alike) with ONE shared
// inversion via BatchInvertField. Rounds stop when every bucket holds at
// most one entry or when fewer than `stop_below` pending pairs remain
// (pass 1 to force full uniqueness). Entries always leave bucket-sorted.
//
// Determinism: the counting sort is stable and the pair/leftover rule is
// positional, so the reduction tree is a pure function of the entry list.
// (Affine results are canonical anyway, so even the tree shape cannot
// change output bytes.)
template <typename Field, typename AParam>
void ReduceEntryRounds(std::vector<Field>* pex, std::vector<Field>* pey,
                       std::vector<uint32_t>* peb, size_t num_buckets,
                       const AParam& curve_a, size_t stop_below) {
  std::vector<Field>& ex = *pex;
  std::vector<Field>& ey = *pey;
  std::vector<uint32_t>& eb = *peb;

  std::vector<Field> nx, ny, denom;
  std::vector<uint32_t> nb, counts(num_buckets);
  struct PendingPair {
    uint32_t ia;
    bool is_double;
  };
  std::vector<PendingPair> pairs;

  size_t m = eb.size();
  while (true) {
    // Stable counting sort by bucket so same-bucket entries are adjacent.
    std::fill(counts.begin(), counts.end(), 0u);
    for (size_t j = 0; j < m; ++j) {
      ++counts[eb[j]];
    }
    uint32_t acc = 0;
    for (size_t b = 0; b < num_buckets; ++b) {
      uint32_t c = counts[b];
      counts[b] = acc;
      acc += c;
    }
    nx.resize(m);
    ny.resize(m);
    nb.resize(m);
    for (size_t j = 0; j < m; ++j) {
      uint32_t pos = counts[eb[j]]++;
      nx[pos] = ex[j];
      ny[pos] = ey[j];
      nb[pos] = eb[j];
    }
    ex.swap(nx);
    ey.swap(ny);
    eb.swap(nb);
    if (m < 2) {
      return;
    }

    bool any_dup = false;
    for (size_t j = 0; j + 1 < m; ++j) {
      if (eb[j] == eb[j + 1]) {
        any_dup = true;
        break;
      }
    }
    if (!any_dup) {
      return;  // every bucket holds at most one entry
    }

    // Pair adjacent same-bucket entries; record one denominator per live
    // pair (xb - xa for adds, 2*ya for doublings). P + (-P) drops outright.
    pairs.clear();
    denom.clear();
    nx.clear();
    ny.clear();
    nb.clear();
    size_t j = 0;
    while (j < m) {
      if (j + 1 < m && eb[j + 1] == eb[j]) {
        const Field& xa = ex[j];
        const Field& xb = ex[j + 1];
        if (xa == xb) {
          if (ey[j] == ey[j + 1] && !ey[j].IsZero()) {
            pairs.push_back({static_cast<uint32_t>(j), true});
            denom.push_back(ey[j].Double());
          }
          // else the pair is P + (-P) == infinity: contributes nothing.
        } else {
          pairs.push_back({static_cast<uint32_t>(j), false});
          denom.push_back(xb - xa);
        }
        j += 2;
      } else {
        nx.push_back(ex[j]);
        ny.push_back(ey[j]);
        nb.push_back(eb[j]);
        ++j;
      }
    }
    if (pairs.size() < stop_below) {
      return;  // entries are sorted; the walk folds the leftovers
    }
    BatchInvertField(&denom);
    for (size_t t = 0; t < pairs.size(); ++t) {
      size_t ia = pairs[t].ia;
      const Field& xa = ex[ia];
      const Field& ya = ey[ia];
      Field slope;
      Field xb;
      if (pairs[t].is_double) {
        xb = xa;
        Field xx = xa.Square();
        slope = (xx + xx + xx + curve_a) * denom[t];
      } else {
        xb = ex[ia + 1];
        slope = (ey[ia + 1] - ya) * denom[t];
      }
      Field x3 = slope.Square() - xa - xb;
      nx.push_back(x3);
      ny.push_back(slope * (xa - x3) - ya);
      nb.push_back(eb[ia]);
    }
    ex.swap(nx);
    ey.swap(ny);
    eb.swap(nb);
    m = eb.size();
  }
}

// Batch-affine bucket accumulation for one (window, chunk) cell: gathers the
// chunk's non-zero digits as signed affine entries in input order into
// *sx/*sy/*sb, then runs batched reduction rounds. Survivors leave
// bucket-sorted with at most a handful of entries per bucket.
template <typename Config>
void AccumulateChunk(const std::vector<AffinePoint<Config>>& bases,
                     const int32_t* digits_w, size_t i_lo, size_t i_hi,
                     size_t num_buckets,
                     std::vector<typename Config::Field>* sx,
                     std::vector<typename Config::Field>* sy,
                     std::vector<uint32_t>* sb) {
  sx->clear();
  sy->clear();
  sb->clear();
  sx->reserve(i_hi - i_lo);
  sy->reserve(i_hi - i_lo);
  sb->reserve(i_hi - i_lo);
  for (size_t i = i_lo; i < i_hi; ++i) {
    int32_t d = digits_w[i];
    if (d == 0 || bases[i].infinity) {
      continue;
    }
    sb->push_back(d > 0 ? static_cast<uint32_t>(d) - 1
                        : static_cast<uint32_t>(-d) - 1);
    sx->push_back(bases[i].x);
    sy->push_back(d > 0 ? bases[i].y : -bases[i].y);
  }
  ReduceEntryRounds(sx, sy, sb, num_buckets, Config::A(), kMinBatchPairs);
}
}  // namespace msm_detail

// Original Pippenger kernel over Jacobian bases with unsigned windows. Kept
// as the reference implementation: the fast kernel is differential-tested
// against it, and bench_groth16 reports both so the speedup is visible in
// BENCH_results.json.
//
// `cancel` (optional) is polled at window and chunk boundaries: once it
// fires the remaining work is skipped and the returned point is garbage, so
// callers that pass a token must check it after the call and discard the
// result. A null or quiet token leaves the output bit-identical.
template <typename Point>
Point MsmJacobian(const std::vector<Point>& bases,
                  const std::vector<BigUInt>& scalars,
                  const CancellationToken* cancel = nullptr) {
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }

  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  const size_t n = bases.size();
  const size_t c = msm_detail::PickWindow(n);
  const size_t windows = (max_bits + c - 1) / c;
  const size_t num_buckets = (size_t{1} << c) - 1;

  if (n < msm_detail::kParallelCutoff) {
    Point result = Point::Infinity();
    std::vector<Point> buckets(num_buckets);
    for (size_t w = windows; w-- > 0;) {
      if (cancel != nullptr && cancel->cancelled()) {
        return result;  // garbage; caller checks the token
      }
      for (size_t d = 0; d < c; ++d) {
        result = result.Double();
      }
      for (auto& b : buckets) {
        b = Point::Infinity();
      }
      for (size_t i = 0; i < n; ++i) {
        uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
        if (idx != 0) {
          buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
        }
      }
      // Sum of idx * bucket[idx] via running suffix sums.
      Point running = Point::Infinity();
      Point window_sum = Point::Infinity();
      for (size_t idx = buckets.size(); idx-- > 0;) {
        running = running.Add(buckets[idx]);
        window_sum = window_sum.Add(running);
      }
      result = result.Add(window_sum);
    }
    return result;
  }

  // Fixed chunk grid: ~2 * 2^c points per chunk keeps each private bucket
  // array reasonably dense, so the serial-order merge below costs a fraction
  // of the accumulation it follows.
  const size_t chunk_size =
      std::max(msm_detail::kParallelCutoff, size_t{2} << c);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::vector<Point>> chunk_buckets(
      num_chunks, std::vector<Point>(num_buckets, Point::Infinity()));
  std::vector<Point> merged(num_buckets, Point::Infinity());

  Point result = Point::Infinity();
  for (size_t w = windows; w-- > 0;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return result;  // garbage; caller checks the token
    }
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    // Phase 1: each chunk accumulates its own points into private buckets.
    pool.ParallelFor(0, num_chunks, ThreadPool::ComputeMinChunk(num_chunks, 1),
                     [&](size_t lo, size_t hi) {
      for (size_t ci = lo; ci < hi; ++ci) {
        if (cancel != nullptr && cancel->cancelled()) {
          return;  // abandon this share's remaining chunks
        }
        auto& buckets = chunk_buckets[ci];
        std::fill(buckets.begin(), buckets.end(), Point::Infinity());
        size_t i_end = std::min(n, (ci + 1) * chunk_size);
        for (size_t i = ci * chunk_size; i < i_end; ++i) {
          uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
          if (idx != 0) {
            buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
          }
        }
      }
    }, cancel);
    // Phase 2: merge per-bucket across chunks, always in chunk order so the
    // Jacobian representation is independent of the bucket partitioning.
    pool.ParallelFor(0, num_buckets,
                     ThreadPool::ComputeMinChunk(num_buckets, 64),
                     [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        Point sum = chunk_buckets[0][idx];
        for (size_t ci = 1; ci < num_chunks; ++ci) {
          sum = sum.Add(chunk_buckets[ci][idx]);
        }
        merged[idx] = sum;
      }
    }, cancel);
    // Phase 3: serial window reduction (suffix sums), identical to the
    // serial path's bucket walk.
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t idx = merged.size(); idx-- > 0;) {
      running = running.Add(merged[idx]);
      window_sum = window_sum.Add(running);
    }
    result = result.Add(window_sum);
  }
  return result;
}

// Signed-digit batch-affine kernel over affine bases. Scalars are treated as
// plain non-negative integers (callers wanting GLV go through MsmAffine).
// Cancellation semantics match MsmJacobian.
template <typename Config>
EcPoint<Config> MsmSignedAffine(const std::vector<AffinePoint<Config>>& bases,
                                const std::vector<BigUInt>& scalars,
                                const CancellationToken* cancel = nullptr) {
  using Point = EcPoint<Config>;
  using Field = typename Config::Field;
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }

  const size_t n = bases.size();
  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  const size_t c = msm_detail::PickSignedWindow(n, max_bits);
  const size_t windows = (max_bits + c - 1) / c + 1;
  const size_t num_buckets = size_t{1} << (c - 1);

  ThreadPool& pool = ThreadPool::Global();

  // Digit matrix in window-major layout (digits[w*n + i]) so each window's
  // accumulation pass reads a contiguous slice instead of striding across
  // the whole matrix. Disjoint writes of values that depend only on
  // (scalar, c, windows), so any partition yields identical digits.
  std::vector<int32_t> digits(windows * n);
  pool.ParallelFor(0, n, ThreadPool::ComputeMinChunk(n, 256),
                   [&](size_t lo, size_t hi) {
                     std::vector<int32_t> row(windows);
                     for (size_t i = lo; i < hi; ++i) {
                       msm_detail::SignedDigits(scalars[i], c, windows,
                                                row.data());
                       for (size_t w = 0; w < windows; ++w) {
                         digits[w * n + i] = row[w];
                       }
                     }
                   },
                   cancel);

  // Fixed chunk grid, a function of (n, c) only. ~8 points per bucket keeps
  // the batch-affine rounds dense without inflating the serial merge.
  const size_t chunk_size = std::max<size_t>(512, 8 * num_buckets);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  std::vector<std::vector<Field>> csx(num_chunks), csy(num_chunks);
  std::vector<std::vector<uint32_t>> csb(num_chunks);

  Point result = Point::Infinity();
  for (size_t w = windows; w-- > 0;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return result;  // garbage; caller checks the token
    }
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    pool.ParallelFor(0, num_chunks, ThreadPool::ComputeMinChunk(num_chunks, 1),
                     [&](size_t lo, size_t hi) {
                       for (size_t ci = lo; ci < hi; ++ci) {
                         if (cancel != nullptr && cancel->cancelled()) {
                           return;  // abandon this share's remaining chunks
                         }
                         msm_detail::AccumulateChunk<Config>(
                             bases, &digits[w * n], ci * chunk_size,
                             std::min(n, (ci + 1) * chunk_size), num_buckets,
                             &csx[ci], &csy[ci], &csb[ci]);
                       }
                     },
                     cancel);
    // Cross-chunk merge: concatenate the chunks' survivor lists in chunk
    // order and reduce with the same batched-inversion machinery -- ~6 field
    // muls per fold instead of an 11-mul mixed add. The concatenation order
    // and reduction are fixed serial code over canonical affine values, so
    // the merge is independent of how chunks were scheduled.
    std::vector<Field> mx, my;
    std::vector<uint32_t> mb;
    if (num_chunks == 1) {
      mx.swap(csx[0]);
      my.swap(csy[0]);
      mb.swap(csb[0]);
    } else {
      for (size_t ci = 0; ci < num_chunks; ++ci) {
        mx.insert(mx.end(), csx[ci].begin(), csx[ci].end());
        my.insert(my.end(), csy[ci].begin(), csy[ci].end());
        mb.insert(mb.end(), csb[ci].begin(), csb[ci].end());
      }
      msm_detail::ReduceEntryRounds(&mx, &my, &mb, num_buckets, Config::A(),
                                    msm_detail::kMinBatchPairs);
    }

    // Serial suffix walk. Entries are bucket-sorted but buckets may hold a
    // few entries each (the reduction stops once batches get too small);
    // each one folds in with a mixed add, in list order.
    std::vector<uint32_t> seg(num_buckets + 1, 0);
    for (uint32_t b : mb) {
      ++seg[b + 1];
    }
    for (size_t idx = 0; idx < num_buckets; ++idx) {
      seg[idx + 1] += seg[idx];
    }
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t idx = num_buckets; idx-- > 0;) {
      for (size_t j = seg[idx]; j < seg[idx + 1]; ++j) {
        running = running.AddMixed({mx[j], my[j], false});
      }
      window_sum = window_sum.Add(running);
    }
    result = result.Add(window_sum);
  }
  return result;
}

// Fast MSM over affine bases. For BN254 G1 each scalar is GLV-decomposed
// (k == k1 + lambda*k2 mod r, |ki| < 2^130) and the instance is rewritten as
// a 2n-point MSM over half-length scalars with sign folded into the bases
// (valid for any scalar because G1 has cofactor 1, so kP == (k mod r)P).
// Other curves (G2) run the signed-digit kernel directly.
template <typename Config>
EcPoint<Config> MsmAffine(const std::vector<AffinePoint<Config>>& bases,
                          const std::vector<BigUInt>& scalars,
                          const CancellationToken* cancel = nullptr) {
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return EcPoint<Config>::Infinity();
  }
  if constexpr (GlvTraits<Config>::kEnabled) {
    const size_t n = bases.size();
    std::vector<AffinePoint<Config>> eff(2 * n);
    std::vector<BigUInt> ks(2 * n);
    ThreadPool::Global().ParallelFor(
        0, n, ThreadPool::ComputeMinChunk(n, 64),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            GlvDecomposition d = GlvDecompose(scalars[i]);
            eff[i] = d.k1_neg ? bases[i].Negate() : bases[i];
            AffinePoint<Config> endo = GlvEndomorphism(bases[i]);
            eff[n + i] = d.k2_neg ? endo.Negate() : endo;
            ks[i] = std::move(d.k1);
            ks[n + i] = std::move(d.k2);
          }
        },
        cancel);
    return MsmSignedAffine(eff, ks, cancel);
  } else {
    return MsmSignedAffine(bases, scalars, cancel);
  }
}

// Convenience wrapper for Jacobian inputs: one batch conversion, then the
// fast affine kernel. Callers holding long-lived tables (the Groth16 proving
// key) should store them affine and call MsmAffine directly.
template <typename Point>
Point Msm(const std::vector<Point>& bases, const std::vector<BigUInt>& scalars,
          const CancellationToken* cancel = nullptr) {
  using Config = typename Point::ConfigType;
  // A size mismatch means the caller assembled its query/scalar vectors
  // incorrectly -- a programming error on the trusted prover/verifier side,
  // never a property of hostile input (parsers bound sizes before this).
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }
  return MsmAffine<Config>(BatchToAffine(bases), scalars, cancel);
}

}  // namespace nope

#endif  // SRC_EC_MSM_H_
