// Multi-scalar multiplication via Pippenger's bucket method. This dominates
// Groth16 proving time, which is why the paper's headline prover costs scale
// with the number of R1CS constraints (§4.1, §8.2).
#ifndef SRC_EC_MSM_H_
#define SRC_EC_MSM_H_

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "src/base/biguint.h"

namespace nope {

namespace msm_detail {
// Extracts `width` bits of k starting at bit `offset` (little-endian bits).
inline uint64_t WindowBits(const BigUInt& k, size_t offset, size_t width) {
  uint64_t out = 0;
  for (size_t b = 0; b < width; ++b) {
    if (k.Bit(offset + b)) {
      out |= uint64_t{1} << b;
    }
  }
  return out;
}

inline size_t PickWindow(size_t n) {
  if (n < 32) {
    return 3;
  }
  size_t c = 1;
  while ((size_t{1} << (c + 1)) < n / (c + 1)) {
    ++c;
  }
  return c > 16 ? 16 : c;
}
}  // namespace msm_detail

template <typename Point>
Point Msm(const std::vector<Point>& bases, const std::vector<BigUInt>& scalars) {
  if (bases.size() != scalars.size()) {
    throw std::invalid_argument("Msm: bases/scalars size mismatch");
  }
  if (bases.empty()) {
    return Point::Infinity();
  }

  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  size_t c = msm_detail::PickWindow(bases.size());
  size_t windows = (max_bits + c - 1) / c;

  Point result = Point::Infinity();
  std::vector<Point> buckets((size_t{1} << c) - 1);

  for (size_t w = windows; w-- > 0;) {
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    for (auto& b : buckets) {
      b = Point::Infinity();
    }
    for (size_t i = 0; i < bases.size(); ++i) {
      uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
      if (idx != 0) {
        buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
      }
    }
    // Sum of idx * bucket[idx] via running suffix sums.
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t idx = buckets.size(); idx-- > 0;) {
      running = running.Add(buckets[idx]);
      window_sum = window_sum.Add(running);
    }
    result = result.Add(window_sum);
  }
  return result;
}

}  // namespace nope

#endif  // SRC_EC_MSM_H_
