// Multi-scalar multiplication via Pippenger's bucket method. This dominates
// Groth16 proving time, which is why the paper's headline prover costs scale
// with the number of R1CS constraints (§4.1, §8.2).
//
// Two kernels live here:
//
//   MsmJacobian — the original straightforward kernel (Jacobian bases,
//     unsigned windows). Kept as the differential-testing and benchmarking
//     reference for the fast path.
//
//   MsmAffine / Msm — the fast kernel: affine bases (mixed additions),
//     batch-affine bucket accumulation (per-round shared inversion resolves
//     all pending bucket additions with one field inversion), signed-digit
//     windows (digit in [-2^(c-1), 2^(c-1)-1], halving the bucket count via
//     on-the-fly negation), and — for BN254 G1 only — GLV lambda
//     decomposition (half-length scalars, double-width input).
//
// Determinism contract (both kernels): the window width, digit schedule and
// chunk grid are pure functions of the input size and scalar bit-length,
// never of the thread count; each chunk owns private buckets; chunk buckets
// merge in serial chunk order. Affine bucket coordinates are canonical, so
// the batch-affine reduction tree cannot leak representation differences.
// The returned Jacobian point is bit-identical for any NOPE_THREADS value.
#ifndef SRC_EC_MSM_H_
#define SRC_EC_MSM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/biguint.h"
#include "src/base/cancellation.h"
#include "src/base/check.h"
#include "src/base/threadpool.h"
#include "src/ec/batch_affine.h"
#include "src/ec/curve.h"
#include "src/ec/glv.h"

namespace nope {

namespace msm_detail {
// Extracts `width` bits of k starting at bit `offset` (little-endian bits).
inline uint64_t WindowBits(const BigUInt& k, size_t offset, size_t width) {
  uint64_t out = 0;
  for (size_t b = 0; b < width; ++b) {
    if (k.Bit(offset + b)) {
      out |= uint64_t{1} << b;
    }
  }
  return out;
}

inline size_t PickWindow(size_t n) {
  if (n < 32) {
    return 3;
  }
  size_t c = 1;
  while ((size_t{1} << (c + 1)) < n / (c + 1)) {
    ++c;
  }
  return c > 16 ? 16 : c;
}

// Inputs below this size take the single-pass serial path in MsmJacobian; at
// or above it, the fixed-chunk-grid path (which parallelizes when lanes are
// available). The path choice depends only on n, preserving determinism.
constexpr size_t kParallelCutoff = 256;

// Analytic window cost model for the signed-digit kernel: per window, ~7
// field muls per point in the batch-affine accumulation and ~2 Jacobian adds
// (~16 muls each) per bucket in the suffix walk. Used for sizes beyond the
// measured table below. Deterministic integer arithmetic; depends only on
// (n, max_bits).
inline size_t AnalyticSignedWindow(size_t n, size_t max_bits) {
  size_t best_c = 2;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t c = 2; c <= 16; ++c) {
    uint64_t windows = (max_bits + c - 1) / c + 1;
    uint64_t buckets = uint64_t{1} << (c - 1);
    uint64_t cost = windows * (7 * static_cast<uint64_t>(n) + 32 * buckets);
    if (cost < best_cost) {
      best_cost = cost;
      best_c = c;
    }
  }
  return best_c;
}

// Window widths pinned from measured sweeps (bench_groth16 with
// NOPE_MSM_AUTOTUNE=1: every (n, c) cell timed on the reference AVX-512
// host; majority winner over repeated sweeps recorded here, since small-n
// cells flip within measurement noise). Keyed on the kernel-visible point
// count n (after GLV doubling); each entry covers n <= max_n. A pinned
// table, unlike re-benchmarking at runtime, keeps the window width a pure
// function of the input size -- the determinism contract (PR 2) requires
// proof bytes to be identical on every host and thread count.
struct SignedWindowEntry {
  size_t max_n;
  size_t c;
};
constexpr SignedWindowEntry kSignedWindowTable[] = {
    {128, 11},  {256, 12},  {512, 9},    {1024, 9},   {2048, 10},
    {4096, 10}, {8192, 12}, {16384, 12}, {32768, 12}, {65536, 13},
};

// The table was measured on the dominant workload: BN254 G1 after GLV
// splitting, i.e. half-width (<=130-bit) scalars over the base field. It
// does NOT transfer to full-width scalars over Fp2 (G2 has no endomorphism
// here): more windows amortize the per-window bucket walk differently, and
// each walk op costs ~3x in Fp2 -- the analytic model handles those. The
// gate below is a pure function of (n, max_bits), so determinism holds.
constexpr size_t kSignedWindowTableMaxBits = 160;

inline size_t PickSignedWindow(size_t n, size_t max_bits) {
  if (max_bits <= kSignedWindowTableMaxBits) {
    for (const SignedWindowEntry& e : kSignedWindowTable) {
      if (n <= e.max_n) {
        // Short scalars (toy curves, tiny digests) cap the useful width:
        // more buckets than the windows can fill is pure waste.
        const size_t cap = max_bits < 2 ? 2 : max_bits;
        return e.c < cap ? e.c : cap;
      }
    }
  }
  return AnalyticSignedWindow(n, max_bits);
}

// Signed-digit recoding: writes `windows` digits of k in base 2^c with
// digit in [-2^(c-1), 2^(c-1)-1]. A raw window value >= 2^(c-1) becomes
// (raw - 2^c) plus a carry into the next window; the extra top window
// (callers size windows = ceil(max_bits/c) + 1) absorbs the final carry, so
// the recoding is exact: sum digit_w * 2^(cw) == k.
inline void SignedDigits(const BigUInt& k, size_t c, size_t windows,
                         int32_t* out) {
  const int64_t full = int64_t{1} << c;
  const int64_t half = int64_t{1} << (c - 1);
  int64_t carry = 0;
  for (size_t w = 0; w < windows; ++w) {
    int64_t raw = static_cast<int64_t>(WindowBits(k, w * c, c)) + carry;
    if (raw >= half) {
      out[w] = static_cast<int32_t>(raw - full);
      carry = 1;
    } else {
      out[w] = static_cast<int32_t>(raw);
      carry = 0;
    }
  }
}

// Below this many pending pairs a reduction round is not worth its fixed
// cost: the shared inversion is a ~380-mul Fermat exponentiation, while each
// unresolved pair merely adds one ~11-mul mixed add to the suffix walk
// (which handles multi-entry buckets). Purely a constant, so the reduction
// depth stays a function of the entry list alone.
constexpr size_t kMinBatchPairs = 64;

// Scratch arrays for the batch-affine fold. Every reduction round of every
// (window, chunk) cell needs the same staging vectors; allocating them per
// call churned the allocator and cold-missed the heap each window. Callers
// own one scratch per chunk (plus one for the merge) and reuse them across
// all windows, so each vector grows to its high-water mark once.
template <typename Field>
struct MsmFoldScratch {
  std::vector<Field> nx, ny;     // final survivor gather
  std::vector<uint32_t> nb;
  std::vector<uint32_t> counts;  // bucket histogram, then insert cursors
  std::vector<uint32_t> idx, bkt;    // live entries: pool id + bucket
  std::vector<uint32_t> lidx, lbkt;  // this round's leftover run
  std::vector<uint32_t> pbkt;        // this round's pair-result buckets
  std::vector<uint8_t> dbl;          // per-pair doubling flag
  std::vector<Field> sxa, sya, sxb, syb;  // staged pair operands
  std::vector<Field> denom, num, slope;   // batched pair-resolution lanes
};

// Batched pairwise-reduction rounds over a bucket-keyed affine entry list
// (parallel arrays x/y/bucket, modified in place). Each round counting-sorts
// the entries by bucket (stable), pairs same-bucket neighbors, and resolves
// every pending pair of the round (adds and doublings alike) with ONE shared
// inversion via BatchInvertField. Rounds stop when every bucket holds at
// most one entry or when fewer than `stop_below` pending pairs remain
// (pass 1 to force full uniqueness). Entries always leave bucket-sorted.
//
// Determinism: the counting sort is stable and the pair/leftover rule is
// positional, so the reduction tree is a pure function of the entry list.
// (Affine results are canonical anyway, so even the tree shape cannot
// change output bytes.) The batched slope/x3/y3 passes below compute the
// exact same field values as the per-pair formulas they replaced, just in
// SIMD-friendly struct-of-lanes order; likewise the sort-once-then-merge
// round structure reproduces entry-for-entry the order the old per-round
// stable re-sort produced (within a bucket, leftovers precede that round's
// pair results), so the reduction tree is unchanged too.
template <typename Field, typename AParam>
void ReduceEntryRounds(std::vector<Field>* pex, std::vector<Field>* pey,
                       std::vector<uint32_t>* peb, size_t num_buckets,
                       const AParam& curve_a, size_t stop_below,
                       MsmFoldScratch<Field>* scratch) {
  std::vector<Field>& ex = *pex;
  std::vector<Field>& ey = *pey;
  std::vector<uint32_t>& eb = *peb;

  size_t m = eb.size();
  if (m < 2) {
    return;
  }

  std::vector<uint32_t>& counts = scratch->counts;
  std::vector<uint32_t>& idx = scratch->idx;
  std::vector<uint32_t>& bkt = scratch->bkt;
  std::vector<uint32_t>& lidx = scratch->lidx;
  std::vector<uint32_t>& lbkt = scratch->lbkt;
  std::vector<uint32_t>& pbkt = scratch->pbkt;
  std::vector<uint8_t>& dbl = scratch->dbl;
  std::vector<Field>& sxa = scratch->sxa;
  std::vector<Field>& sya = scratch->sya;
  std::vector<Field>& sxb = scratch->sxb;
  std::vector<Field>& syb = scratch->syb;
  std::vector<Field>& denom = scratch->denom;
  std::vector<Field>& num = scratch->num;
  std::vector<Field>& slope = scratch->slope;

  // Stable counting sort of entry IDS by bucket. The rounds below never
  // move coordinate payloads wholesale: they shuffle 4-byte ids, gather
  // this round's pair operands into compact staging arrays for the batched
  // math, and append each fold's result to the payload pool (ex/ey
  // themselves, grown past the original m entries). A round's memory
  // traffic is therefore proportional to its pair count, not to the live
  // list length it used to copy twice per round.
  counts.assign(num_buckets, 0u);
  for (size_t j = 0; j < m; ++j) {
    ++counts[eb[j]];
  }
  uint32_t acc = 0;
  for (size_t b = 0; b < num_buckets; ++b) {
    uint32_t cnt = counts[b];
    counts[b] = acc;
    acc += cnt;
  }
  idx.resize(m);
  bkt.resize(m);
  for (size_t j = 0; j < m; ++j) {
    uint32_t pos = counts[eb[j]]++;
    idx[pos] = static_cast<uint32_t>(j);
    bkt[pos] = eb[j];
  }
  // Each fold appends exactly one pooled result and there are at most m-1
  // folds, so one reservation guarantees pushes never reallocate while
  // staged values are in flight.
  ex.reserve(2 * m);
  ey.reserve(2 * m);

  while (m >= 2) {
    bool any_dup = false;
    for (size_t j = 0; j + 1 < m; ++j) {
      if (bkt[j] == bkt[j + 1]) {
        any_dup = true;
        break;
      }
    }
    if (!any_dup) {
      break;  // every bucket holds at most one entry
    }

    // Pair adjacent same-bucket ids; gather the operands and record one
    // denominator per live pair (xb - xa for adds, 2*ya for doublings).
    // P + (-P) drops outright.
    lidx.clear();
    lbkt.clear();
    pbkt.clear();
    dbl.clear();
    sxa.clear();
    sya.clear();
    sxb.clear();
    syb.clear();
    denom.clear();
    size_t j = 0;
    while (j < m) {
      if (j + 1 < m && bkt[j + 1] == bkt[j]) {
        const uint32_t ia = idx[j];
        const uint32_t ib = idx[j + 1];
        const Field& xa = ex[ia];
        const Field& xb = ex[ib];
        if (xa == xb && !(ey[ia] == ey[ib] && !ey[ia].IsZero())) {
          // The pair is P + (-P) == infinity: contributes nothing.
        } else {
          sxa.push_back(xa);
          sya.push_back(ey[ia]);
          sxb.push_back(xb);
          syb.push_back(ey[ib]);
          dbl.push_back(xa == xb ? 1 : 0);
          denom.push_back(xa == xb ? ey[ia].Double() : xb - xa);
          pbkt.push_back(bkt[j]);
        }
        j += 2;
      } else {
        lidx.push_back(idx[j]);
        lbkt.push_back(bkt[j]);
        ++j;
      }
    }
    const size_t np = denom.size();
    if (np < stop_below) {
      break;  // ids stay bucket-sorted; the walk folds the leftovers
    }
    BatchInvertField(&denom);

    const uint32_t base_id = static_cast<uint32_t>(ex.size());
    if constexpr (FieldHasBatchOps<Field>::value) {
      // Resolve all pending pairs with contiguous batched field passes so
      // the SIMD backend sees full lanes: slope = num/denom,
      // x3 = slope^2-xa-xb, y3 = slope*(xa-x3)-ya, the same values the
      // serial formulas produce.
      num.resize(np);
      slope.resize(np);
      // Doubling numerators need xa^2; gather those xa compactly, square in
      // one pass, then expand into 3*xx + a alongside the add numerators.
      size_t nd = 0;
      for (size_t t = 0; t < np; ++t) {
        if (dbl[t]) {
          slope[nd++] = sxa[t];
        }
      }
      FieldSquareBatch(slope.data(), slope.data(), nd);
      nd = 0;
      for (size_t t = 0; t < np; ++t) {
        if (dbl[t]) {
          const Field& xx = slope[nd++];
          num[t] = xx + xx + xx + curve_a;
        } else {
          num[t] = syb[t] - sya[t];
        }
      }
      FieldMulBatch(num.data(), denom.data(), slope.data(), np);
      FieldSquareBatch(slope.data(), num.data(), np);  // num := slope^2
      for (size_t t = 0; t < np; ++t) {
        Field x3 = num[t] - sxa[t] - sxb[t];
        num[t] = sxa[t] - x3;
        ex.push_back(x3);
      }
      FieldMulBatch(slope.data(), num.data(), num.data(), np);
      for (size_t t = 0; t < np; ++t) {
        ey.push_back(num[t] - sya[t]);
      }
    } else {
      // Extension fields (G2's Fp2) have no SIMD lanes: multi-pass staging
      // would be pure memory-traffic overhead there, so keep the fused
      // per-pair formulas.
      for (size_t t = 0; t < np; ++t) {
        Field slope_t;
        if (dbl[t]) {
          Field xx = sxa[t].Square();
          slope_t = (xx + xx + xx + curve_a) * denom[t];
        } else {
          slope_t = (syb[t] - sya[t]) * denom[t];
        }
        Field x3 = slope_t.Square() - sxa[t] - sxb[t];
        ex.push_back(x3);
        ey.push_back(slope_t * (sxa[t] - x3) - sya[t]);
      }
    }

    // Merge the leftover id run with this round's result ids (base_id + t).
    // Both runs are bucket-sorted (each inherits the sorted scan order), and
    // taking leftovers first on equal buckets reproduces exactly the order
    // the old per-round stable re-sort of [leftovers | pairs] produced.
    const size_t nl = lidx.size();
    idx.resize(nl + np);
    bkt.resize(nl + np);
    size_t li = 0, pi = 0, k = 0;
    while (li < nl && pi < np) {
      if (lbkt[li] <= pbkt[pi]) {
        idx[k] = lidx[li];
        bkt[k] = lbkt[li];
        ++li;
      } else {
        idx[k] = base_id + static_cast<uint32_t>(pi);
        bkt[k] = pbkt[pi];
        ++pi;
      }
      ++k;
    }
    for (; li < nl; ++li, ++k) {
      idx[k] = lidx[li];
      bkt[k] = lbkt[li];
    }
    for (; pi < np; ++pi, ++k) {
      idx[k] = base_id + static_cast<uint32_t>(pi);
      bkt[k] = pbkt[pi];
    }
    m = k;
  }

  // Materialize the survivors in id order: the pooled results collapse back
  // into a compact bucket-sorted parallel-array list for the caller.
  std::vector<Field>& nx = scratch->nx;
  std::vector<Field>& ny = scratch->ny;
  std::vector<uint32_t>& nb = scratch->nb;
  nx.resize(m);
  ny.resize(m);
  nb.resize(m);
  for (size_t j = 0; j < m; ++j) {
    nx[j] = ex[idx[j]];
    ny[j] = ey[idx[j]];
    nb[j] = bkt[j];
  }
  ex.swap(nx);
  ey.swap(ny);
  eb.swap(nb);
}

// Batch-affine bucket accumulation for one (window, chunk) cell: gathers the
// chunk's non-zero digits as signed affine entries in input order into
// *sx/*sy/*sb, then runs batched reduction rounds. Survivors leave
// bucket-sorted with at most a handful of entries per bucket.
template <typename Config>
void AccumulateChunk(const std::vector<AffinePoint<Config>>& bases,
                     const int32_t* digits_w, size_t i_lo, size_t i_hi,
                     size_t num_buckets,
                     std::vector<typename Config::Field>* sx,
                     std::vector<typename Config::Field>* sy,
                     std::vector<uint32_t>* sb,
                     MsmFoldScratch<typename Config::Field>* scratch) {
  sx->clear();
  sy->clear();
  sb->clear();
  sx->reserve(i_hi - i_lo);
  sy->reserve(i_hi - i_lo);
  sb->reserve(i_hi - i_lo);
  for (size_t i = i_lo; i < i_hi; ++i) {
    int32_t d = digits_w[i];
    if (d == 0 || bases[i].infinity) {
      continue;
    }
    sb->push_back(d > 0 ? static_cast<uint32_t>(d) - 1
                        : static_cast<uint32_t>(-d) - 1);
    sx->push_back(bases[i].x);
    sy->push_back(d > 0 ? bases[i].y : -bases[i].y);
  }
  ReduceEntryRounds(sx, sy, sb, num_buckets, Config::A(), kMinBatchPairs,
                    scratch);
}
}  // namespace msm_detail

// Original Pippenger kernel over Jacobian bases with unsigned windows. Kept
// as the reference implementation: the fast kernel is differential-tested
// against it, and bench_groth16 reports both so the speedup is visible in
// BENCH_results.json.
//
// `cancel` (optional) is polled at window and chunk boundaries: once it
// fires the remaining work is skipped and the returned point is garbage, so
// callers that pass a token must check it after the call and discard the
// result. A null or quiet token leaves the output bit-identical.
template <typename Point>
Point MsmJacobian(const std::vector<Point>& bases,
                  const std::vector<BigUInt>& scalars,
                  const CancellationToken* cancel = nullptr) {
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }

  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  const size_t n = bases.size();
  const size_t c = msm_detail::PickWindow(n);
  const size_t windows = (max_bits + c - 1) / c;
  const size_t num_buckets = (size_t{1} << c) - 1;

  if (n < msm_detail::kParallelCutoff) {
    Point result = Point::Infinity();
    std::vector<Point> buckets(num_buckets);
    for (size_t w = windows; w-- > 0;) {
      if (cancel != nullptr && cancel->cancelled()) {
        return result;  // garbage; caller checks the token
      }
      for (size_t d = 0; d < c; ++d) {
        result = result.Double();
      }
      for (auto& b : buckets) {
        b = Point::Infinity();
      }
      for (size_t i = 0; i < n; ++i) {
        uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
        if (idx != 0) {
          buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
        }
      }
      // Sum of idx * bucket[idx] via running suffix sums.
      Point running = Point::Infinity();
      Point window_sum = Point::Infinity();
      for (size_t idx = buckets.size(); idx-- > 0;) {
        running = running.Add(buckets[idx]);
        window_sum = window_sum.Add(running);
      }
      result = result.Add(window_sum);
    }
    return result;
  }

  // Fixed chunk grid: ~2 * 2^c points per chunk keeps each private bucket
  // array reasonably dense, so the serial-order merge below costs a fraction
  // of the accumulation it follows.
  const size_t chunk_size =
      std::max(msm_detail::kParallelCutoff, size_t{2} << c);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::vector<Point>> chunk_buckets(
      num_chunks, std::vector<Point>(num_buckets, Point::Infinity()));
  std::vector<Point> merged(num_buckets, Point::Infinity());

  Point result = Point::Infinity();
  for (size_t w = windows; w-- > 0;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return result;  // garbage; caller checks the token
    }
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    // Phase 1: each chunk accumulates its own points into private buckets.
    pool.ParallelFor(0, num_chunks, ThreadPool::ComputeMinChunk(num_chunks, 1),
                     [&](size_t lo, size_t hi) {
      for (size_t ci = lo; ci < hi; ++ci) {
        if (cancel != nullptr && cancel->cancelled()) {
          return;  // abandon this share's remaining chunks
        }
        auto& buckets = chunk_buckets[ci];
        std::fill(buckets.begin(), buckets.end(), Point::Infinity());
        size_t i_end = std::min(n, (ci + 1) * chunk_size);
        for (size_t i = ci * chunk_size; i < i_end; ++i) {
          uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
          if (idx != 0) {
            buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
          }
        }
      }
    }, cancel);
    // Phase 2: merge per-bucket across chunks, always in chunk order so the
    // Jacobian representation is independent of the bucket partitioning.
    pool.ParallelFor(0, num_buckets,
                     ThreadPool::ComputeMinChunk(num_buckets, 64),
                     [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        Point sum = chunk_buckets[0][idx];
        for (size_t ci = 1; ci < num_chunks; ++ci) {
          sum = sum.Add(chunk_buckets[ci][idx]);
        }
        merged[idx] = sum;
      }
    }, cancel);
    // Phase 3: serial window reduction (suffix sums), identical to the
    // serial path's bucket walk.
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t idx = merged.size(); idx-- > 0;) {
      running = running.Add(merged[idx]);
      window_sum = window_sum.Add(running);
    }
    result = result.Add(window_sum);
  }
  return result;
}

// Signed-digit batch-affine kernel over affine bases. Scalars are treated as
// plain non-negative integers (callers wanting GLV go through MsmAffine).
// Cancellation semantics match MsmJacobian. `window_override` forces the
// window width c (used by the autotune sweep in bench_groth16 to measure
// every cell of the table feeding PickSignedWindow); 0 means pick normally.
template <typename Config>
EcPoint<Config> MsmSignedAffine(const std::vector<AffinePoint<Config>>& bases,
                                const std::vector<BigUInt>& scalars,
                                const CancellationToken* cancel = nullptr,
                                size_t window_override = 0) {
  using Point = EcPoint<Config>;
  using Field = typename Config::Field;
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }

  const size_t n = bases.size();
  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  const size_t c = window_override != 0
                       ? window_override
                       : msm_detail::PickSignedWindow(n, max_bits);
  const size_t windows = (max_bits + c - 1) / c + 1;
  const size_t num_buckets = size_t{1} << (c - 1);

  ThreadPool& pool = ThreadPool::Global();

  // Digit matrix in window-major layout (digits[w*n + i]) so each window's
  // accumulation pass reads a contiguous slice instead of striding across
  // the whole matrix. Disjoint writes of values that depend only on
  // (scalar, c, windows), so any partition yields identical digits.
  std::vector<int32_t> digits(windows * n);
  pool.ParallelFor(0, n, ThreadPool::ComputeMinChunk(n, 256),
                   [&](size_t lo, size_t hi) {
                     std::vector<int32_t> row(windows);
                     for (size_t i = lo; i < hi; ++i) {
                       msm_detail::SignedDigits(scalars[i], c, windows,
                                                row.data());
                       for (size_t w = 0; w < windows; ++w) {
                         digits[w * n + i] = row[w];
                       }
                     }
                   },
                   cancel);

  // Fixed chunk grid, a function of (n, c) only. ~8 points per bucket keeps
  // the batch-affine rounds dense without inflating the serial merge.
  const size_t chunk_size = std::max<size_t>(512, 8 * num_buckets);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  std::vector<std::vector<Field>> csx(num_chunks), csy(num_chunks);
  std::vector<std::vector<uint32_t>> csb(num_chunks);
  // One fold scratch per chunk (chunks run concurrently) plus one for the
  // serial merge, all reused across windows.
  std::vector<msm_detail::MsmFoldScratch<Field>> cscratch(num_chunks);
  msm_detail::MsmFoldScratch<Field> merge_scratch;
  std::vector<Field> mx, my;
  std::vector<uint32_t> mb;

  // Two-level split of the weighted bucket sum. With B = 2^(c-1) buckets the
  // classic suffix walk pays O(B) point adds per window; writing each weight
  // w = b+1 as (q << lo_bits) + r gives
  //   sum_b (b+1)*B_b = 2^lo_bits * sum_q q*C_q  +  sum_r r*D_r,
  // where C_q (resp. D_r) collects every bucket whose weight has that high
  // (resp. low) digit. Each entry lands in at most two pseudo-buckets, the
  // collisions fold through the same batched-inversion reduction as
  // everything else, and the two remaining walks cover
  // B >> lo_bits + 2^lo_bits ~ 2*sqrt(B) buckets instead of B.
  const size_t lo_bits = (c - 1) / 2;
  const uint32_t lo_mask = (uint32_t{1} << lo_bits) - 1;
  const size_t q_count = num_buckets >> lo_bits;  // q in [1, q_count]
  const size_t r_count = size_t{1} << lo_bits;    // r in [1, r_count-1]
  const size_t total_pseudo = q_count + r_count - 1;
  std::vector<Field> wx, wy;
  std::vector<uint32_t> wb;
  std::vector<uint32_t> seg(total_pseudo + 1, 0);

  Point result = Point::Infinity();
  for (size_t w = windows; w-- > 0;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return result;  // garbage; caller checks the token
    }
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    pool.ParallelFor(0, num_chunks, ThreadPool::ComputeMinChunk(num_chunks, 1),
                     [&](size_t lo, size_t hi) {
                       for (size_t ci = lo; ci < hi; ++ci) {
                         if (cancel != nullptr && cancel->cancelled()) {
                           return;  // abandon this share's remaining chunks
                         }
                         msm_detail::AccumulateChunk<Config>(
                             bases, &digits[w * n], ci * chunk_size,
                             std::min(n, (ci + 1) * chunk_size), num_buckets,
                             &csx[ci], &csy[ci], &csb[ci], &cscratch[ci]);
                       }
                     },
                     cancel);
    // Cross-chunk merge: concatenate the chunks' survivor lists in chunk
    // order and reduce with the same batched-inversion machinery -- ~6 field
    // muls per fold instead of an 11-mul mixed add. The concatenation order
    // and reduction are fixed serial code over canonical affine values, so
    // the merge is independent of how chunks were scheduled.
    if (num_chunks == 1) {
      mx.swap(csx[0]);
      my.swap(csy[0]);
      mb.swap(csb[0]);
    } else {
      mx.clear();
      my.clear();
      mb.clear();
      for (size_t ci = 0; ci < num_chunks; ++ci) {
        mx.insert(mx.end(), csx[ci].begin(), csx[ci].end());
        my.insert(my.end(), csy[ci].begin(), csy[ci].end());
        mb.insert(mb.end(), csb[ci].begin(), csb[ci].end());
      }
      msm_detail::ReduceEntryRounds(&mx, &my, &mb, num_buckets, Config::A(),
                                    msm_detail::kMinBatchPairs,
                                    &merge_scratch);
    }

    // Expand each surviving entry into its high- and low-digit
    // pseudo-buckets (skipping zero digits), then fold the collisions with
    // the same batched reduction. Expansion scans the merged list in order
    // and the reduction is fixed serial code, so the result stays
    // independent of chunking and thread count.
    wx.clear();
    wy.clear();
    wb.clear();
    wx.reserve(2 * mb.size());
    wy.reserve(2 * mb.size());
    wb.reserve(2 * mb.size());
    for (size_t j = 0; j < mb.size(); ++j) {
      const uint32_t wgt = mb[j] + 1;
      const uint32_t q = wgt >> lo_bits;
      const uint32_t r = wgt & lo_mask;
      if (q != 0) {
        wx.push_back(mx[j]);
        wy.push_back(my[j]);
        wb.push_back(q - 1);
      }
      if (r != 0) {
        wx.push_back(mx[j]);
        wy.push_back(my[j]);
        wb.push_back(static_cast<uint32_t>(q_count) + r - 1);
      }
    }
    msm_detail::ReduceEntryRounds(&wx, &wy, &wb, total_pseudo, Config::A(),
                                  msm_detail::kMinBatchPairs, &merge_scratch);

    // Serial suffix walks over the two pseudo-bucket zones. Entries are
    // bucket-sorted but a bucket may hold a few entries (the reduction stops
    // once batches get too small); each folds in with a mixed add, in list
    // order. Empty-bucket runs (common at small n after GLV + signed
    // recoding) are folded with a short double-and-add ladder: adding an
    // unchanged `running` k times equals adding k*running once.
    std::fill(seg.begin(), seg.end(), 0u);
    for (uint32_t b : wb) {
      ++seg[b + 1];
    }
    for (size_t idx = 0; idx < total_pseudo; ++idx) {
      seg[idx + 1] += seg[idx];
    }
    auto zone_walk = [&](size_t base, size_t count) {
      Point running = Point::Infinity();
      Point zone_sum = Point::Infinity();
      size_t pending = 0;
      auto flush = [&](size_t k) {
        if (k == 0 || running.IsInfinity()) {
          return;
        }
        if (k <= 2) {
          for (size_t t = 0; t < k; ++t) {
            zone_sum = zone_sum.Add(running);
          }
          return;
        }
        Point acc = running;  // acc = k * running, ladder from the high bit
        for (int bit = 62 - __builtin_clzll(k); bit >= 0; --bit) {
          acc = acc.Double();
          if ((k >> bit) & 1) {
            acc = acc.Add(running);
          }
        }
        zone_sum = zone_sum.Add(acc);
      };
      for (size_t t = count; t-- > 0;) {
        const size_t idx = base + t;
        if (seg[idx] != seg[idx + 1]) {
          flush(pending);
          pending = 0;
          for (size_t j = seg[idx]; j < seg[idx + 1]; ++j) {
            running = running.AddMixed({wx[j], wy[j], false});
          }
        }
        ++pending;
      }
      flush(pending);
      return zone_sum;
    };
    Point window_sum = zone_walk(0, q_count);  // sum_q q*C_q
    for (size_t d = 0; d < lo_bits; ++d) {
      window_sum = window_sum.Double();
    }
    window_sum = window_sum.Add(zone_walk(q_count, r_count - 1));
    result = result.Add(window_sum);
  }
  return result;
}

// Fast MSM over affine bases. For BN254 G1 each scalar is GLV-decomposed
// (k == k1 + lambda*k2 mod r, |ki| < 2^130) and the instance is rewritten as
// a 2n-point MSM over half-length scalars with sign folded into the bases
// (valid for any scalar because G1 has cofactor 1, so kP == (k mod r)P).
// Other curves (G2) run the signed-digit kernel directly.
template <typename Config>
EcPoint<Config> MsmAffine(const std::vector<AffinePoint<Config>>& bases,
                          const std::vector<BigUInt>& scalars,
                          const CancellationToken* cancel = nullptr) {
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return EcPoint<Config>::Infinity();
  }
  if constexpr (GlvTraits<Config>::kEnabled) {
    const size_t n = bases.size();
    std::vector<AffinePoint<Config>> eff(2 * n);
    std::vector<BigUInt> ks(2 * n);
    ThreadPool::Global().ParallelFor(
        0, n, ThreadPool::ComputeMinChunk(n, 64),
        [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            GlvDecomposition d = GlvDecompose(scalars[i]);
            eff[i] = d.k1_neg ? bases[i].Negate() : bases[i];
            AffinePoint<Config> endo = GlvEndomorphism(bases[i]);
            eff[n + i] = d.k2_neg ? endo.Negate() : endo;
            ks[i] = std::move(d.k1);
            ks[n + i] = std::move(d.k2);
          }
        },
        cancel);
    return MsmSignedAffine(eff, ks, cancel);
  } else {
    return MsmSignedAffine(bases, scalars, cancel);
  }
}

// Convenience wrapper for Jacobian inputs: one batch conversion, then the
// fast affine kernel. Callers holding long-lived tables (the Groth16 proving
// key) should store them affine and call MsmAffine directly.
template <typename Point>
Point Msm(const std::vector<Point>& bases, const std::vector<BigUInt>& scalars,
          const CancellationToken* cancel = nullptr) {
  using Config = typename Point::ConfigType;
  // A size mismatch means the caller assembled its query/scalar vectors
  // incorrectly -- a programming error on the trusted prover/verifier side,
  // never a property of hostile input (parsers bound sizes before this).
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }
  return MsmAffine<Config>(BatchToAffine(bases), scalars, cancel);
}

}  // namespace nope

#endif  // SRC_EC_MSM_H_
