// Multi-scalar multiplication via Pippenger's bucket method. This dominates
// Groth16 proving time, which is why the paper's headline prover costs scale
// with the number of R1CS constraints (§4.1, §8.2).
//
// Large inputs run the bucket accumulation in parallel on the global
// ThreadPool. Determinism contract: the chunk grid is a function of the
// input size only (never of the thread count), each chunk owns a private
// bucket array, and chunk buckets are merged in serial chunk order, so the
// returned Jacobian point is bit-identical for any NOPE_THREADS value --
// including the degenerate 1-lane pool running every chunk inline.
#ifndef SRC_EC_MSM_H_
#define SRC_EC_MSM_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/base/biguint.h"
#include "src/base/cancellation.h"
#include "src/base/check.h"
#include "src/base/threadpool.h"

namespace nope {

namespace msm_detail {
// Extracts `width` bits of k starting at bit `offset` (little-endian bits).
inline uint64_t WindowBits(const BigUInt& k, size_t offset, size_t width) {
  uint64_t out = 0;
  for (size_t b = 0; b < width; ++b) {
    if (k.Bit(offset + b)) {
      out |= uint64_t{1} << b;
    }
  }
  return out;
}

inline size_t PickWindow(size_t n) {
  if (n < 32) {
    return 3;
  }
  size_t c = 1;
  while ((size_t{1} << (c + 1)) < n / (c + 1)) {
    ++c;
  }
  return c > 16 ? 16 : c;
}

// Inputs below this size take the single-pass serial path; at or above it,
// the fixed-chunk-grid path (which parallelizes when lanes are available).
// The path choice depends only on n, preserving the determinism contract.
constexpr size_t kParallelCutoff = 256;
}  // namespace msm_detail

// `cancel` (optional) is polled at window and chunk boundaries: once it
// fires the remaining work is skipped and the returned point is garbage, so
// callers that pass a token must check it after the call and discard the
// result. A null or quiet token leaves the output bit-identical.
template <typename Point>
Point Msm(const std::vector<Point>& bases, const std::vector<BigUInt>& scalars,
          const CancellationToken* cancel = nullptr) {
  // A size mismatch means the caller assembled its query/scalar vectors
  // incorrectly -- a programming error on the trusted prover/verifier side,
  // never a property of hostile input (parsers bound sizes before this).
  NOPE_INVARIANT(bases.size() == scalars.size(),
                 "Msm: bases/scalars size mismatch");
  if (bases.empty()) {
    return Point::Infinity();
  }

  size_t max_bits = 1;
  for (const auto& s : scalars) {
    max_bits = std::max(max_bits, s.BitLength());
  }
  const size_t n = bases.size();
  const size_t c = msm_detail::PickWindow(n);
  const size_t windows = (max_bits + c - 1) / c;
  const size_t num_buckets = (size_t{1} << c) - 1;

  if (n < msm_detail::kParallelCutoff) {
    Point result = Point::Infinity();
    std::vector<Point> buckets(num_buckets);
    for (size_t w = windows; w-- > 0;) {
      if (cancel != nullptr && cancel->cancelled()) {
        return result;  // garbage; caller checks the token
      }
      for (size_t d = 0; d < c; ++d) {
        result = result.Double();
      }
      for (auto& b : buckets) {
        b = Point::Infinity();
      }
      for (size_t i = 0; i < n; ++i) {
        uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
        if (idx != 0) {
          buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
        }
      }
      // Sum of idx * bucket[idx] via running suffix sums.
      Point running = Point::Infinity();
      Point window_sum = Point::Infinity();
      for (size_t idx = buckets.size(); idx-- > 0;) {
        running = running.Add(buckets[idx]);
        window_sum = window_sum.Add(running);
      }
      result = result.Add(window_sum);
    }
    return result;
  }

  // Fixed chunk grid: ~2 * 2^c points per chunk keeps each private bucket
  // array reasonably dense, so the serial-order merge below costs a fraction
  // of the accumulation it follows.
  const size_t chunk_size =
      std::max(msm_detail::kParallelCutoff, size_t{2} << c);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  ThreadPool& pool = ThreadPool::Global();
  std::vector<std::vector<Point>> chunk_buckets(
      num_chunks, std::vector<Point>(num_buckets, Point::Infinity()));
  std::vector<Point> merged(num_buckets, Point::Infinity());

  Point result = Point::Infinity();
  for (size_t w = windows; w-- > 0;) {
    if (cancel != nullptr && cancel->cancelled()) {
      return result;  // garbage; caller checks the token
    }
    for (size_t d = 0; d < c; ++d) {
      result = result.Double();
    }
    // Phase 1: each chunk accumulates its own points into private buckets.
    pool.ParallelFor(0, num_chunks, 1, [&](size_t lo, size_t hi) {
      for (size_t ci = lo; ci < hi; ++ci) {
        if (cancel != nullptr && cancel->cancelled()) {
          return;  // abandon this share's remaining chunks
        }
        auto& buckets = chunk_buckets[ci];
        std::fill(buckets.begin(), buckets.end(), Point::Infinity());
        size_t i_end = std::min(n, (ci + 1) * chunk_size);
        for (size_t i = ci * chunk_size; i < i_end; ++i) {
          uint64_t idx = msm_detail::WindowBits(scalars[i], w * c, c);
          if (idx != 0) {
            buckets[idx - 1] = buckets[idx - 1].Add(bases[i]);
          }
        }
      }
    }, cancel);
    // Phase 2: merge per-bucket across chunks, always in chunk order so the
    // Jacobian representation is independent of the bucket partitioning.
    pool.ParallelFor(0, num_buckets, 64, [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        Point sum = chunk_buckets[0][idx];
        for (size_t ci = 1; ci < num_chunks; ++ci) {
          sum = sum.Add(chunk_buckets[ci][idx]);
        }
        merged[idx] = sum;
      }
    }, cancel);
    // Phase 3: serial window reduction (suffix sums), identical to the
    // serial path's bucket walk.
    Point running = Point::Infinity();
    Point window_sum = Point::Infinity();
    for (size_t idx = merged.size(); idx-- > 0;) {
      running = running.Add(merged[idx]);
      window_sum = window_sum.Add(running);
    }
    result = result.Add(window_sum);
  }
  return result;
}

}  // namespace nope

#endif  // SRC_EC_MSM_H_
