// Generic short-Weierstrass elliptic-curve arithmetic in Jacobian
// coordinates, over any field with the Fp-style interface. Instantiated for
// BN254 G1 (Groth16), BN254 G2 over Fp2, the untwisted curve over Fp12
// (pairing), and NIST P-256 (DNSSEC ECDSA).
#ifndef SRC_EC_CURVE_H_
#define SRC_EC_CURVE_H_

#include <stdexcept>

#include "src/base/biguint.h"

namespace nope {

// Affine point (canonical coordinates: a group element has exactly one
// affine representation, unlike Jacobian). A standalone template rather than
// a nested struct so functions taking affine inputs can deduce Config.
template <typename Config>
struct AffinePoint {
  using Field = typename Config::Field;

  Field x;
  Field y;
  bool infinity;

  static AffinePoint Infinity() { return {Field::Zero(), Field::Zero(), true}; }

  AffinePoint Negate() const { return {x, -y, infinity}; }
};

// Config requirements:
//   using Field = ...;
//   static Field A();
//   static Field B();
template <typename Config>
struct EcPoint {
  using Field = typename Config::Field;
  using ConfigType = Config;

  Field x;
  Field y;
  Field z;  // Jacobian; z == 0 encodes the point at infinity.

  static EcPoint Infinity() {
    return {Field::Zero(), Field::One(), Field::Zero()};
  }

  static EcPoint FromAffine(const Field& ax, const Field& ay) {
    return {ax, ay, Field::One()};
  }

  bool IsInfinity() const { return z.IsZero(); }

  using Affine = AffinePoint<Config>;

  static EcPoint FromAffinePoint(const Affine& a) {
    if (a.infinity) {
      return Infinity();
    }
    return {a.x, a.y, Field::One()};
  }

  Affine ToAffine() const {
    if (IsInfinity()) {
      return {Field::Zero(), Field::Zero(), true};
    }
    Field zinv = z.Inverse();
    Field zinv2 = zinv.Square();
    return {x * zinv2, y * zinv2 * zinv, false};
  }

  bool Equals(const EcPoint& o) const {
    if (IsInfinity() || o.IsInfinity()) {
      return IsInfinity() == o.IsInfinity();
    }
    // Cross-multiplied comparison avoids inversions.
    Field z1z1 = z.Square();
    Field z2z2 = o.z.Square();
    if (x * z2z2 != o.x * z1z1) {
      return false;
    }
    return y * z2z2 * o.z == o.y * z1z1 * z;
  }

  EcPoint Negate() const { return {x, -y, z}; }

  EcPoint Double() const {
    if (IsInfinity()) {
      return *this;
    }
    Field xx = x.Square();
    Field yy = y.Square();
    Field yyyy = yy.Square();
    Field zz = z.Square();
    Field s = ((x + yy).Square() - xx - yyyy);
    s = s + s;
    Field m = xx + xx + xx + Config::A() * zz.Square();
    Field t = m.Square() - s - s;
    Field y3 = m * (s - t) - Eight(yyyy);
    Field z3 = (y + z).Square() - yy - zz;
    return {t, y3, z3};
  }

  EcPoint Add(const EcPoint& o) const {
    if (IsInfinity()) {
      return o;
    }
    if (o.IsInfinity()) {
      return *this;
    }
    Field z1z1 = z.Square();
    Field z2z2 = o.z.Square();
    Field u1 = x * z2z2;
    Field u2 = o.x * z1z1;
    Field s1 = y * o.z * z2z2;
    Field s2 = o.y * z * z1z1;
    Field h = u2 - u1;
    Field r = s2 - s1;
    if (h.IsZero()) {
      if (r.IsZero()) {
        return Double();
      }
      return Infinity();
    }
    r = r + r;
    Field i = (h + h).Square();
    Field j = h * i;
    Field v = u1 * i;
    Field x3 = r.Square() - j - v - v;
    Field s1j = s1 * j;
    Field y3 = r * (v - x3) - s1j - s1j;
    Field z3 = ((z + o.z).Square() - z1z1 - z2z2) * h;
    return {x3, y3, z3};
  }

  // Mixed addition: Add() specialized for an affine second operand (z2 == 1),
  // saving the z2 squarings/multiplications -- ~11M+3S per add during bucket
  // accumulation instead of full Jacobian 16M+4S. Same formula family
  // (madd-2007-bl) as Add so degenerate cases match exactly.
  EcPoint AddMixed(const Affine& o) const {
    if (o.infinity) {
      return *this;
    }
    if (IsInfinity()) {
      return FromAffinePoint(o);
    }
    Field z1z1 = z.Square();
    Field u2 = o.x * z1z1;
    Field s2 = o.y * z * z1z1;
    Field h = u2 - x;
    Field r = s2 - y;
    if (h.IsZero()) {
      if (r.IsZero()) {
        return Double();
      }
      return Infinity();
    }
    r = r + r;
    Field i = (h + h).Square();
    Field j = h * i;
    Field v = x * i;
    Field x3 = r.Square() - j - v - v;
    Field yj = y * j;
    Field y3 = r * (v - x3) - yj - yj;
    Field z3 = z * h;
    z3 = z3 + z3;
    return {x3, y3, z3};
  }

  EcPoint ScalarMul(const BigUInt& k) const {
    EcPoint acc = Infinity();
    for (size_t i = k.BitLength(); i-- > 0;) {
      acc = acc.Double();
      if (k.Bit(i)) {
        acc = acc.Add(*this);
      }
    }
    return acc;
  }

  bool IsOnCurve() const {
    if (IsInfinity()) {
      return true;
    }
    // y^2 = x^3 + a x z^4 + b z^6.
    Field z2 = z.Square();
    Field z4 = z2.Square();
    Field z6 = z4 * z2;
    return y.Square() == x.Square() * x + Config::A() * x * z4 + Config::B() * z6;
  }

 private:
  static Field Eight(const Field& v) {
    Field t = v + v;
    t = t + t;
    return t + t;
  }
};

}  // namespace nope

#endif  // SRC_EC_CURVE_H_
