// NIST P-256 (secp256r1), the ECDSA curve used by modern DNSSEC zones
// (algorithm 13, RFC 6605). a = -3; standard generator.
#ifndef SRC_EC_P256_H_
#define SRC_EC_P256_H_

#include "src/ec/curve.h"
#include "src/ff/fp.h"

namespace nope {

struct P256Config {
  using Field = P256Fq;
  static Field A() {
    static const Field a = Field::Zero() - Field::FromU64(3);
    return a;
  }
  static Field B() {
    static const Field b = Field::FromBigUInt(BigUInt::FromHex(
        "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b"));
    return b;
  }
};

using P256Point = EcPoint<P256Config>;

// Group order n.
const BigUInt& P256Order();

P256Point P256Generator();

}  // namespace nope

#endif  // SRC_EC_P256_H_
