// Batch Jacobian -> affine conversion and the shared-inversion (Montgomery
// trick) primitive behind it. One field inversion costs hundreds of
// multiplications; inverting a batch of k elements costs one inversion plus
// 3(k-1) multiplications, so converting MSM bases and Setup query tables to
// affine in bulk is effectively free per point.
//
// Determinism contract: the block grid is a pure function of the input size
// (fixed kBatchAffineBlock), each block's inversion chain is serial within
// the block, and blocks write disjoint output ranges of canonical affine
// coordinates -- so the result is bit-identical for any thread count.
#ifndef SRC_EC_BATCH_AFFINE_H_
#define SRC_EC_BATCH_AFFINE_H_

#include <cstddef>
#include <vector>

#include "src/base/threadpool.h"
#include "src/ec/curve.h"

namespace nope {

// Replaces each non-zero element of *vals with its inverse using a single
// field inversion (Montgomery's trick). Zero elements are left untouched --
// callers that batch slope denominators use zero as a "no pair here" hole.
// Serial; callers parallelize by invoking it per block of a fixed grid.
template <typename Field>
void BatchInvertField(std::vector<Field>* vals) {
  std::vector<Field>& v = *vals;
  std::vector<Field> prefix(v.size());
  Field acc = Field::One();
  for (size_t i = 0; i < v.size(); ++i) {
    prefix[i] = acc;
    if (!v[i].IsZero()) {
      acc = acc * v[i];
    }
  }
  Field inv = acc.Inverse();
  for (size_t i = v.size(); i-- > 0;) {
    if (!v[i].IsZero()) {
      Field orig = v[i];
      v[i] = inv * prefix[i];
      inv = inv * orig;
    }
  }
}

namespace batch_affine_detail {
// Fixed block size: the grid depends only on input size, never thread count.
constexpr size_t kBatchAffineBlock = 1024;
}  // namespace batch_affine_detail

// Converts a vector of Jacobian points to canonical affine coordinates with
// one inversion per kBatchAffineBlock-sized block. Points at infinity map to
// AffinePoint::Infinity(). Blocks run on the global pool for large inputs.
template <typename Config>
std::vector<AffinePoint<Config>> BatchToAffine(
    const std::vector<EcPoint<Config>>& points) {
  using Field = typename Config::Field;
  constexpr size_t kBlock = batch_affine_detail::kBatchAffineBlock;
  const size_t n = points.size();
  std::vector<AffinePoint<Config>> out(n);
  if (n == 0) {
    return out;
  }
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  auto convert_block = [&](size_t b) {
    size_t lo = b * kBlock;
    size_t hi = lo + kBlock < n ? lo + kBlock : n;
    // zs holds z for finite points and 0 (skipped) for infinities.
    std::vector<Field> zs(hi - lo);
    for (size_t i = lo; i < hi; ++i) {
      zs[i - lo] = points[i].IsInfinity() ? Field::Zero() : points[i].z;
    }
    BatchInvertField(&zs);
    for (size_t i = lo; i < hi; ++i) {
      if (points[i].IsInfinity()) {
        out[i] = AffinePoint<Config>::Infinity();
      } else {
        Field zinv = zs[i - lo];
        Field zinv2 = zinv.Square();
        out[i] = {points[i].x * zinv2, points[i].y * zinv2 * zinv, false};
      }
    }
  };
  if (num_blocks == 1) {
    convert_block(0);
    return out;
  }
  ThreadPool::Global().ParallelFor(
      0, num_blocks, ThreadPool::ComputeMinChunk(num_blocks, 1),
      [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b) {
          convert_block(b);
        }
      });
  return out;
}

}  // namespace nope

#endif  // SRC_EC_BATCH_AFFINE_H_
