// Batch Jacobian -> affine conversion and the shared-inversion (Montgomery
// trick) primitive behind it. One field inversion costs hundreds of
// multiplications; inverting a batch of k elements costs one inversion plus
// 3(k-1) multiplications, so converting MSM bases and Setup query tables to
// affine in bulk is effectively free per point.
//
// The multiplications inside the trick are independent across chain steps
// only in a restructured form: BatchInvertField splits large inputs into W
// contiguous per-lane chains (W = SIMD lane width), advances all chains with
// one vectorized multiply per step, then stitches the W chain totals (plus a
// scalar tail chain) together with a single field inversion. Inverses are
// unique, so the restructured walk produces bit-identical canonical values
// to the serial chain it replaces.
//
// Determinism contract: the block grid is a pure function of the input size
// (fixed kBatchAffineBlock), the lane split is a pure function of block
// length and the process-wide lane width, and blocks write disjoint output
// ranges of canonical affine coordinates -- so the result is bit-identical
// for any thread count, and bit-identical between SIMD and scalar backends.
#ifndef SRC_EC_BATCH_AFFINE_H_
#define SRC_EC_BATCH_AFFINE_H_

#include <cstddef>
#include <vector>

#include "src/base/threadpool.h"
#include "src/ec/curve.h"
#include "src/ff/fp.h"

namespace nope {

namespace batch_affine_detail {

// Serial Montgomery trick; also the tail/fallback path of the lane version.
template <typename Field>
void BatchInvertSerial(Field* v, size_t n) {
  std::vector<Field> prefix(n);
  Field acc = Field::One();
  for (size_t i = 0; i < n; ++i) {
    prefix[i] = acc;
    if (!v[i].IsZero()) {
      acc = acc * v[i];
    }
  }
  Field inv = acc.Inverse();
  for (size_t i = n; i-- > 0;) {
    if (!v[i].IsZero()) {
      Field orig = v[i];
      v[i] = inv * prefix[i];
      inv = inv * orig;
    }
  }
}

}  // namespace batch_affine_detail

// Replaces each non-zero element of *vals with its inverse using a single
// field inversion (Montgomery's trick). Zero elements are left untouched --
// callers that batch slope denominators use zero as a "no pair here" hole.
// Serial; callers parallelize by invoking it per block of a fixed grid.
template <typename Field>
void BatchInvertField(std::vector<Field>* vals) {
  std::vector<Field>& v = *vals;
  const size_t n = v.size();
  const size_t w = FieldSimdLanes<Field>();
  if (w < 2 || n < 8 * w) {
    batch_affine_detail::BatchInvertSerial(v.data(), n);
    return;
  }

  // Lane split: lane l owns the contiguous run [l*len, (l+1)*len); the
  // remainder [w*len, n) is a scalar tail chain. Zeros are replaced by One()
  // in the vector multiplies (x1 = no-op on the running product) so every
  // lane advances in lockstep with uniform control flow.
  const size_t len = n / w;
  std::vector<Field> prefix(w * len);
  std::vector<Field> acc(w, Field::One());
  std::vector<Field> gathered(w);
  for (size_t s = 0; s < len; ++s) {
    for (size_t l = 0; l < w; ++l) {
      const Field& x = v[l * len + s];
      prefix[l * len + s] = acc[l];
      gathered[l] = x.IsZero() ? Field::One() : x;
    }
    FieldMulBatch(acc.data(), gathered.data(), acc.data(), w);
  }

  Field tail_acc = Field::One();
  std::vector<Field> tail_prefix(n - w * len);
  for (size_t i = w * len; i < n; ++i) {
    tail_prefix[i - w * len] = tail_acc;
    if (!v[i].IsZero()) {
      tail_acc = tail_acc * v[i];
    }
  }

  // One real inversion for the whole input: mini batch-invert of the w lane
  // totals plus the tail total (all non-zero by construction).
  std::vector<Field> totals(w + 1);
  for (size_t l = 0; l < w; ++l) {
    totals[l] = acc[l];
  }
  totals[w] = tail_acc;
  batch_affine_detail::BatchInvertSerial(totals.data(), w + 1);

  Field inv = totals[w];
  for (size_t i = n; i-- > w * len;) {
    if (!v[i].IsZero()) {
      Field orig = v[i];
      v[i] = inv * tail_prefix[i - w * len];
      inv = inv * orig;
    }
  }

  std::vector<Field> laneinv(w);
  for (size_t l = 0; l < w; ++l) {
    laneinv[l] = totals[l];
  }
  std::vector<Field> res(w);
  for (size_t s = len; s-- > 0;) {
    for (size_t l = 0; l < w; ++l) {
      const Field& x = v[l * len + s];
      gathered[l] = x.IsZero() ? Field::One() : x;
      res[l] = prefix[l * len + s];
    }
    FieldMulBatch(laneinv.data(), res.data(), res.data(), w);
    FieldMulBatch(laneinv.data(), gathered.data(), laneinv.data(), w);
    for (size_t l = 0; l < w; ++l) {
      if (!v[l * len + s].IsZero()) {
        v[l * len + s] = res[l];
      }
    }
  }
}

namespace batch_affine_detail {
// Fixed block size: the grid depends only on input size, never thread count.
constexpr size_t kBatchAffineBlock = 1024;
}  // namespace batch_affine_detail

// Converts a vector of Jacobian points to canonical affine coordinates with
// one inversion per kBatchAffineBlock-sized block. Points at infinity map to
// AffinePoint::Infinity(). Blocks run on the global pool for large inputs.
template <typename Config>
std::vector<AffinePoint<Config>> BatchToAffine(
    const std::vector<EcPoint<Config>>& points) {
  using Field = typename Config::Field;
  constexpr size_t kBlock = batch_affine_detail::kBatchAffineBlock;
  const size_t n = points.size();
  std::vector<AffinePoint<Config>> out(n);
  if (n == 0) {
    return out;
  }
  const size_t num_blocks = (n + kBlock - 1) / kBlock;
  auto convert_block = [&](size_t b) {
    size_t lo = b * kBlock;
    size_t hi = lo + kBlock < n ? lo + kBlock : n;
    const size_t m = hi - lo;
    // zs holds z for finite points and 0 (skipped) for infinities.
    std::vector<Field> zs(m);
    for (size_t i = 0; i < m; ++i) {
      zs[i] = points[lo + i].IsInfinity() ? Field::Zero() : points[lo + i].z;
    }
    BatchInvertField(&zs);
    // x' = x / z^2, y' = y / z^3, vectorized across the block. Infinities
    // ride along on their (canonical) stored coordinates and are overwritten
    // below; y*(zinv2*zinv) associates differently from the old serial
    // (y*zinv2)*zinv but field multiplication is exactly associative, so the
    // canonical results are identical.
    std::vector<Field> zinv2(m);
    std::vector<Field> zinv3(m);
    std::vector<Field> xs(m);
    std::vector<Field> ys(m);
    FieldSquareBatch(zs.data(), zinv2.data(), m);
    FieldMulBatch(zinv2.data(), zs.data(), zinv3.data(), m);
    for (size_t i = 0; i < m; ++i) {
      xs[i] = points[lo + i].x;
      ys[i] = points[lo + i].y;
    }
    FieldMulBatch(xs.data(), zinv2.data(), xs.data(), m);
    FieldMulBatch(ys.data(), zinv3.data(), ys.data(), m);
    for (size_t i = 0; i < m; ++i) {
      if (points[lo + i].IsInfinity()) {
        out[lo + i] = AffinePoint<Config>::Infinity();
      } else {
        out[lo + i] = {xs[i], ys[i], false};
      }
    }
  };
  if (num_blocks == 1) {
    convert_block(0);
    return out;
  }
  ThreadPool::Global().ParallelFor(
      0, num_blocks, ThreadPool::ComputeMinChunk(num_blocks, 1),
      [&](size_t lo, size_t hi) {
        for (size_t b = lo; b < hi; ++b) {
          convert_block(b);
        }
      });
  return out;
}

}  // namespace nope

#endif  // SRC_EC_BATCH_AFFINE_H_
