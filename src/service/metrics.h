// Process-local metrics for the proving service (ISSUE 5).
//
// Three metric kinds, all integer-valued so snapshots never depend on
// floating-point formatting:
//   Counter   — monotone uint64 (admission outcomes, cache hits, shed jobs)
//   Gauge     — signed instantaneous value (queue depth, cache bytes)
//   Histogram — fixed upper-bound buckets + sum + count (latencies in ms)
//
// MetricsRegistry owns every metric; Get* returns a stable pointer that
// stays valid for the registry's lifetime, so hot paths hold the pointer and
// never touch the name map again. Updates are relaxed atomics — safe to call
// from ThreadPool workers — while SnapshotJson() serializes everything with
// stable key ordering (std::map) and full JSON string escaping, so two runs
// that record the same values produce byte-identical snapshots (the CI
// golden test and the cross-thread-count determinism test both diff these).
#ifndef SRC_SERVICE_METRICS_H_
#define SRC_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nope {

class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram: bucket i counts samples v <= bounds[i] (first
// matching bound wins); one implicit overflow bucket counts the rest. Bounds
// are fixed at registration so the snapshot shape never changes at runtime.
class Histogram {
 public:
  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the final entry is the overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<uint64_t> bounds);
  std::vector<uint64_t> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates. Names are unique per kind; re-registering a histogram
  // returns the existing one (first registration's bounds win — bounds are
  // part of the metric's identity, so call sites must agree).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` must be non-empty and strictly increasing (NOPE_INVARIANT).
  Histogram* GetHistogram(const std::string& name, const std::vector<uint64_t>& bounds);

  // Canonical one-line JSON:
  //   {"counters":{...},"gauges":{...},"histograms":{"h":{"bounds":[...],
  //    "buckets":[...],"count":N,"sum":S}}}
  // Keys sorted (std::map iteration), values integer-only, strings escaped
  // (\" \\ and \u00XX for control bytes) — byte-stable across runs and
  // diffable in CI.
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// JSON string escaping used by SnapshotJson; exposed for tests and for other
// JSON emitters that must stay byte-compatible with the snapshot format.
std::string JsonEscape(const std::string& s);

}  // namespace nope

#endif  // SRC_SERVICE_METRICS_H_
