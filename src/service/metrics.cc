#include "src/service/metrics.h"

#include <algorithm>
#include <cstdio>

#include "src/base/check.h"

namespace nope {

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  NOPE_INVARIANT(!bounds_.empty(), "Histogram: bounds must be non-empty");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    NOPE_INVARIANT(bounds_[i - 1] < bounds_[i],
                   "Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(uint64_t v) {
  size_t idx = std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot.reset(new Counter());
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot.reset(new Gauge());
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot.reset(new Histogram(bounds));
  }
  return slot.get();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendU64Json(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendI64Json(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

void AppendU64Array(std::string* out, const std::vector<uint64_t>& values) {
  *out += '[';
  for (size_t i = 0; i < values.size(); ++i) {
    if (i != 0) {
      *out += ',';
    }
    AppendU64Json(out, values[i]);
  }
  *out += ']';
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    AppendU64Json(&out, counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":";
    AppendI64Json(&out, gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += JsonEscape(name);
    out += "\":{\"bounds\":";
    AppendU64Array(&out, hist->bounds());
    out += ",\"buckets\":";
    AppendU64Array(&out, hist->bucket_counts());
    out += ",\"count\":";
    AppendU64Json(&out, hist->count());
    out += ",\"sum\":";
    AppendU64Json(&out, hist->sum());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace nope
