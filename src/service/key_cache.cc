#include "src/service/key_cache.h"

#include <utility>
#include <vector>

#include "src/base/check.h"

namespace nope {

// Shared between the cache map and outstanding Handles; the entry object
// (and the artifact it owns) lives until both the map slot and every pin
// are gone.
struct KeyCacheEntry {
  std::string id;
  std::shared_ptr<const CachedKey> key;
  size_t bytes = 0;
  size_t pins = 0;
  uint64_t last_used = 0;
  bool resident = true;  // false once evicted from the map
};

KeyCache::KeyCache(size_t byte_budget, MetricsRegistry* metrics)
    : byte_budget_(byte_budget), metrics_(metrics) {
  if (metrics_ != nullptr) {
    hits_ = metrics_->GetCounter("keycache.hits");
    misses_ = metrics_->GetCounter("keycache.misses");
    evictions_ = metrics_->GetCounter("keycache.evictions");
    bytes_gauge_ = metrics_->GetGauge("keycache.bytes");
    entries_gauge_ = metrics_->GetGauge("keycache.entries");
  }
}

KeyCache::~KeyCache() = default;

KeyCache::Handle& KeyCache::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    entry_ = std::move(other.entry_);
    hit_ = other.hit_;
    other.cache_ = nullptr;
    other.entry_ = nullptr;
    other.hit_ = false;
  }
  return *this;
}

const CachedKey* KeyCache::Handle::get() const {
  return entry_ ? entry_->key.get() : nullptr;
}

void KeyCache::Handle::Release() {
  if (entry_ != nullptr && cache_ != nullptr) {
    cache_->Unpin(entry_);
  }
  entry_ = nullptr;
  cache_ = nullptr;
  hit_ = false;
}

KeyCache::Handle KeyCache::Checkout(const std::string& circuit_id,
                                    const Loader& loader) {
  std::lock_guard<std::mutex> lock(mu_);
  Handle handle;
  handle.cache_ = this;
  auto it = entries_.find(circuit_id);
  if (it != entries_.end()) {
    ++stats_.hits;
    if (hits_ != nullptr) {
      hits_->Increment();
    }
    handle.hit_ = true;
    handle.entry_ = it->second;
  } else {
    ++stats_.misses;
    if (misses_ != nullptr) {
      misses_->Increment();
    }
    NOPE_INVARIANT(loader != nullptr, "KeyCache: miss with no loader");
    std::shared_ptr<const CachedKey> key = loader();
    NOPE_INVARIANT(key != nullptr, "KeyCache: loader returned null");
    auto entry = std::make_shared<KeyCacheEntry>();
    entry->id = circuit_id;
    entry->bytes = key->SizeBytes();
    entry->key = std::move(key);
    stats_.resident_bytes += entry->bytes;
    ++stats_.resident_entries;
    entries_.emplace(circuit_id, entry);
    handle.entry_ = std::move(entry);
  }
  handle.entry_->last_used = ++use_clock_;
  ++handle.entry_->pins;
  EvictToBudgetLocked();
  UpdateGaugesLocked();
  return handle;
}

void KeyCache::Unpin(const std::shared_ptr<KeyCacheEntry>& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  NOPE_INVARIANT(entry->pins > 0, "KeyCache: unpin without a pin");
  --entry->pins;
  // The unpin may have made the LRU candidate evictable.
  EvictToBudgetLocked();
  UpdateGaugesLocked();
}

void KeyCache::EvictToBudgetLocked() {
  while (stats_.resident_bytes > byte_budget_) {
    // Strict LRU over unpinned resident entries.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second->pins != 0) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second->last_used < victim->second->last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;  // everything is pinned; allow the transient overshoot
    }
    victim->second->resident = false;
    stats_.resident_bytes -= victim->second->bytes;
    --stats_.resident_entries;
    ++stats_.evictions;
    if (evictions_ != nullptr) {
      evictions_->Increment();
    }
    entries_.erase(victim);
  }
}

void KeyCache::UpdateGaugesLocked() {
  if (bytes_gauge_ != nullptr) {
    bytes_gauge_->Set(static_cast<int64_t>(stats_.resident_bytes));
  }
  if (entries_gauge_ != nullptr) {
    entries_gauge_->Set(static_cast<int64_t>(stats_.resident_entries));
  }
}

KeyCache::Stats KeyCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace nope
