#include "src/service/proving_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/base/check.h"

namespace nope {

namespace {

// Shared latency bucket grid (ms). One grid for every latency histogram
// keeps snapshots comparable across metrics.
const std::vector<uint64_t>& LatencyBoundsMs() {
  static const std::vector<uint64_t> bounds = {1,    5,    10,    50,    100,  500,
                                               1000, 5000, 10000, 60000, 600000};
  return bounds;
}

}  // namespace

const char* AdmissionName(Admission a) {
  switch (a) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRejectedQueueFull:
      return "rejected_queue_full";
    case Admission::kRejectedInfeasible:
      return "rejected_infeasible";
  }
  return "unknown";
}

const char* JobOutcomeName(JobOutcome o) {
  switch (o) {
    case JobOutcome::kOk:
      return "ok";
    case JobOutcome::kFailed:
      return "failed";
    case JobOutcome::kCancelled:
      return "cancelled";
    case JobOutcome::kShedExpired:
      return "shed_expired";
    case JobOutcome::kShedCancelled:
      return "shed_cancelled";
  }
  return "unknown";
}

ProvingService::ProvingService(const ProvingServiceConfig& config, Clock* clock,
                               KeyCache* cache, MetricsRegistry* metrics)
    : config_(config), clock_(clock), cache_(cache), metrics_(metrics) {
  NOPE_INVARIANT(config_.quantum_ms > 0, "ProvingService: quantum_ms must be > 0");
  NOPE_INVARIANT(config_.default_weight > 0,
                 "ProvingService: default_weight must be > 0");
  for (const auto& [domain, weight] : config_.domain_weights) {
    NOPE_INVARIANT(weight > 0, "ProvingService: domain weight must be > 0");
  }
  NOPE_INVARIANT(config_.cost_ewma_den > 0,
                 "ProvingService: cost_ewma_den must be > 0");
  NOPE_INVARIANT(config_.cost_ewma_num <= config_.cost_ewma_den,
                 "ProvingService: cost_ewma_num must be <= cost_ewma_den");
  if (metrics_ != nullptr) {
    admitted_ = metrics_->GetCounter("service.admitted");
    rejected_queue_full_ = metrics_->GetCounter("service.rejected_queue_full");
    rejected_infeasible_ = metrics_->GetCounter("service.rejected_infeasible");
    shed_expired_ = metrics_->GetCounter("service.shed_expired");
    shed_cancelled_ = metrics_->GetCounter("service.shed_cancelled");
    jobs_ok_ = metrics_->GetCounter("service.jobs_ok");
    jobs_failed_ = metrics_->GetCounter("service.jobs_failed");
    jobs_cancelled_ = metrics_->GetCounter("service.jobs_cancelled");
    queue_depth_gauge_ = metrics_->GetGauge("service.queue_depth");
    queue_wait_ms_ = metrics_->GetHistogram("service.queue_wait_ms", LatencyBoundsMs());
    run_ms_ = metrics_->GetHistogram("service.run_ms", LatencyBoundsMs());
    total_latency_ms_ =
        metrics_->GetHistogram("service.total_latency_ms", LatencyBoundsMs());
  }
}

uint32_t ProvingService::WeightOf(const std::string& domain) const {
  auto it = config_.domain_weights.find(domain);
  return it != config_.domain_weights.end() ? it->second : config_.default_weight;
}

void ProvingService::Emit(const char* event, const std::string& detail) {
  std::string line = event;
  if (!detail.empty()) {
    line += ' ';
    line += detail;
  }
  uint64_t now = clock_->NowMs();
  if (event_sink_) {
    event_sink_(now, line);
  }
  if (config_.record_events) {
    events_.push_back(ServiceEvent{now, std::move(line)});
  }
}

uint64_t ProvingService::CostEstimateMs(const std::string& circuit_id) const {
  auto it = cost_ewma_.find(circuit_id);
  return it != cost_ewma_.end() ? it->second : config_.cost_prior_ms;
}

uint64_t ProvingService::EffectiveCostMs(const ProveRequest& req) const {
  if (config_.use_cost_model && req.cost_estimate_ms == 0) {
    return CostEstimateMs(req.circuit_id);
  }
  return req.cost_estimate_ms;
}

void ProvingService::RecordResult(JobResult result) {
  if (result_sink_) {
    result_sink_(result);
  }
  if (config_.record_results) {
    results_.push_back(std::move(result));
  }
}

std::string ProvingService::EventLog() const {
  std::string out;
  char stamp[32];
  for (const ServiceEvent& e : events_) {
    std::snprintf(stamp, sizeof(stamp), "t=%012llu ",
                  static_cast<unsigned long long>(e.t_ms));
    out += stamp;
    out += e.line;
    out += '\n';
  }
  return out;
}

ProvingService::SubmitResult ProvingService::Submit(ProveRequest req) {
  uint64_t now = clock_->NowMs();
  std::string tag = "domain=" + req.domain + " circuit=" + req.circuit_id;
  if (queued_ >= config_.max_queue_depth) {
    if (rejected_queue_full_ != nullptr) {
      rejected_queue_full_->Increment();
    }
    Emit("rejected_queue_full", tag + " depth=" + std::to_string(queued_));
    return SubmitResult{Admission::kRejectedQueueFull, 0};
  }
  uint64_t cost = EffectiveCostMs(req);
  bool model_cost = cost != req.cost_estimate_ms;
  if (config_.reject_infeasible && req.deadline_ms != 0 &&
      now + cost > req.deadline_ms) {
    if (rejected_infeasible_ != nullptr) {
      rejected_infeasible_->Increment();
    }
    Emit("rejected_infeasible",
         tag + " deadline=" + std::to_string(req.deadline_ms) + " cost=" +
             std::to_string(cost) + (model_cost ? " cost_src=ewma" : ""));
    return SubmitResult{Admission::kRejectedInfeasible, 0};
  }

  auto job = std::make_unique<Job>();
  job->id = next_job_id_++;
  job->submitted_ms = now;
  job->req = std::move(req);

  DomainState& domain = domains_[job->req.domain];
  domain.weight = WeightOf(job->req.domain);
  // Insert after every queued job of equal or higher priority (stable FIFO
  // within a priority level).
  auto pos = domain.queue.begin();
  while (pos != domain.queue.end() && (*pos)->req.priority >= job->req.priority) {
    ++pos;
  }
  live_jobs_[job->id] = job.get();
  uint64_t id = job->id;
  std::string detail = "job=" + std::to_string(id) + " " + tag +
                       " priority=" + std::to_string(job->req.priority) +
                       " cost=" + std::to_string(cost) +
                       (model_cost ? " cost_src=ewma" : "");
  if (job->req.deadline_ms != 0) {
    detail += " deadline=" + std::to_string(job->req.deadline_ms);
  }
  domain.queue.insert(pos, std::move(job));
  ++queued_;
  if (admitted_ != nullptr) {
    admitted_->Increment();
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<int64_t>(queued_));
  }
  Emit("submitted", detail);
  return SubmitResult{Admission::kAdmitted, id};
}

bool ProvingService::Cancel(uint64_t job_id) {
  auto it = live_jobs_.find(job_id);
  if (it == live_jobs_.end()) {
    return false;
  }
  it->second->cancel_src.Cancel();
  Emit("cancel_requested", "job=" + std::to_string(job_id));
  return true;
}

bool ProvingService::PumpOne() {
  while (queued_ > 0) {
    auto it = domains_.lower_bound(cursor_);
    if (it == domains_.end()) {
      it = domains_.begin();
    }
    DomainState& domain = it->second;
    if (domain.queue.empty()) {
      // A domain's unused credit does not bank across idle periods.
      domain.deficit_ms = 0;
      auto next = std::next(it);
      cursor_ = next == domains_.end() ? std::string() : next->first;
      cursor_credited_ = false;
      continue;
    }
    if (!cursor_credited_) {
      domain.deficit_ms += config_.quantum_ms * domain.weight;
      cursor_credited_ = true;
    }
    Job* head = domain.queue.front().get();
    uint64_t now = clock_->NowMs();
    // Re-read the effective cost at dequeue: a model-priced job admitted
    // under an optimistic estimate is shed here once completions have taught
    // the EWMA that it can no longer make its deadline.
    uint64_t head_cost = EffectiveCostMs(head->req);
    // Infeasible-at-dequeue uses the same predicate as admission: a job that
    // can no longer finish by its deadline is shed before it burns prover
    // time it would only throw away at the cancellation boundary. Without
    // this, sustained overload livelocks: every dequeue picks the oldest,
    // nearly-expired job, runs it for almost its full cost, and cancels.
    bool expired = head->req.deadline_ms != 0 &&
                   now + head_cost > head->req.deadline_ms;
    if (expired || head->cancel_src.cancelled()) {
      // Shed at dequeue: the domain is not charged for work never done.
      std::unique_ptr<Job> job = std::move(domain.queue.front());
      domain.queue.pop_front();
      --queued_;
      if (domain.queue.empty()) {
        domain.deficit_ms = 0;
      }
      Shed(std::move(job), expired ? JobOutcome::kShedExpired
                                   : JobOutcome::kShedCancelled);
      return true;
    }
    if (head_cost <= domain.deficit_ms) {
      std::unique_ptr<Job> job = std::move(domain.queue.front());
      domain.queue.pop_front();
      --queued_;
      domain.deficit_ms -= head_cost;
      if (domain.queue.empty()) {
        domain.deficit_ms = 0;
      }
      RunJob(std::move(job), &domain);
      return true;
    }
    // Head unaffordable at the current deficit: move to the next domain
    // (credit persists until the queue drains).
    auto next = std::next(it);
    cursor_ = next == domains_.end() ? std::string() : next->first;
    cursor_credited_ = false;
  }
  return false;
}

size_t ProvingService::RunUntilIdle() {
  size_t processed = 0;
  while (PumpOne()) {
    ++processed;
  }
  return processed;
}

void ProvingService::Shed(std::unique_ptr<Job> job, JobOutcome outcome) {
  if (outcome == JobOutcome::kShedExpired && shed_expired_ != nullptr) {
    shed_expired_->Increment();
  }
  if (outcome == JobOutcome::kShedCancelled && shed_cancelled_ != nullptr) {
    shed_cancelled_->Increment();
  }
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<int64_t>(queued_));
  }
  uint64_t now = clock_->NowMs();
  Emit(JobOutcomeName(outcome),
       "job=" + std::to_string(job->id) + " domain=" + job->req.domain);
  live_jobs_.erase(job->id);
  JobResult result;
  result.job_id = job->id;
  result.domain = job->req.domain;
  result.circuit_id = job->req.circuit_id;
  result.outcome = outcome;
  result.submitted_ms = job->submitted_ms;
  result.started_ms = now;
  result.finished_ms = now;
  RecordResult(std::move(result));
}

void ProvingService::RunJob(std::unique_ptr<Job> job, DomainState* /*domain*/) {
  if (queue_depth_gauge_ != nullptr) {
    queue_depth_gauge_->Set(static_cast<int64_t>(queued_));
  }
  uint64_t started = clock_->NowMs();
  KeyCache::Handle key;
  bool cache_hit = false;
  if (cache_ != nullptr) {
    key = cache_->Checkout(job->req.circuit_id, job->req.key_loader);
    cache_hit = key.was_hit();
  }
  Emit("started", "job=" + std::to_string(job->id) + " domain=" + job->req.domain +
                      " cache=" +
                      (cache_ == nullptr ? "none" : (cache_hit ? "hit" : "miss")));
  Deadline deadline = job->req.deadline_ms != 0
                          ? Deadline(clock_, job->req.deadline_ms)
                          : Deadline::Infinite();
  CancellationToken token = job->cancel_src.TokenWithDeadline(deadline);
  Status status = job->req.statement ? job->req.statement(key.get(), token)
                                     : Status::Ok();
  key.Release();  // unpin before recording, so evictions attribute to this job

  JobOutcome outcome;
  std::string error;
  if (status.ok()) {
    outcome = JobOutcome::kOk;
  } else if (status.error().code == ErrorCode::kCancelled) {
    outcome = JobOutcome::kCancelled;
    error = status.ToString();
  } else {
    outcome = JobOutcome::kFailed;
    error = status.ToString();
  }
  FinishJob(std::move(job), outcome, error, started, cache_hit);
}

void ProvingService::FinishJob(std::unique_ptr<Job> job, JobOutcome outcome,
                               const std::string& error, uint64_t started_ms,
                               bool cache_hit) {
  uint64_t finished = clock_->NowMs();
  switch (outcome) {
    case JobOutcome::kOk:
      if (jobs_ok_ != nullptr) {
        jobs_ok_->Increment();
      }
      if (config_.use_cost_model) {
        // Learn only from completions — a shed or cancelled job's elapsed
        // time is an artifact of the deadline, not the circuit. Single pump
        // thread + completion order makes the model state deterministic.
        uint64_t observed = finished - started_ms;
        uint64_t old = CostEstimateMs(job->req.circuit_id);
        uint64_t updated = (config_.cost_ewma_num * observed +
                            (config_.cost_ewma_den - config_.cost_ewma_num) * old) /
                           config_.cost_ewma_den;
        cost_ewma_[job->req.circuit_id] = updated;
        Emit("cost_model",
             "circuit=" + job->req.circuit_id + " observed=" +
                 std::to_string(observed) + " estimate=" + std::to_string(updated));
      }
      break;
    case JobOutcome::kFailed:
      if (jobs_failed_ != nullptr) {
        jobs_failed_->Increment();
      }
      break;
    default:
      if (jobs_cancelled_ != nullptr) {
        jobs_cancelled_->Increment();
      }
      break;
  }
  if (queue_wait_ms_ != nullptr) {
    queue_wait_ms_->Record(started_ms - job->submitted_ms);
    run_ms_->Record(finished - started_ms);
    total_latency_ms_->Record(finished - job->submitted_ms);
  }
  std::string detail = "job=" + std::to_string(job->id) +
                       " outcome=" + JobOutcomeName(outcome) +
                       " wait_ms=" + std::to_string(started_ms - job->submitted_ms) +
                       " run_ms=" + std::to_string(finished - started_ms);
  if (!error.empty()) {
    detail += " error=\"" + error + "\"";
  }
  Emit("done", detail);
  live_jobs_.erase(job->id);

  JobResult result;
  result.job_id = job->id;
  result.domain = job->req.domain;
  result.circuit_id = job->req.circuit_id;
  result.outcome = outcome;
  result.error = error;
  result.submitted_ms = job->submitted_ms;
  result.started_ms = started_ms;
  result.finished_ms = finished;
  result.key_cache_hit = cache_hit;
  RecordResult(std::move(result));
}

// --- groth16 integration ----------------------------------------------------

size_t ProvingKeyEntry::SizeBytes() const {
  size_t bytes = sizeof(ProvingKeyEntry);
  bytes += pk.a_query.size() * sizeof(G1Affine);
  bytes += pk.b_g1_query.size() * sizeof(G1Affine);
  bytes += pk.b_g2_query.size() * sizeof(G2Affine);
  bytes += pk.l_query.size() * sizeof(G1Affine);
  bytes += pk.h_query.size() * sizeof(G1Affine);
  bytes += pk.vk.ic.size() * sizeof(G1);
  return bytes;
}

groth16::ProveStageHooks MakeMetricsProveHooks(MetricsRegistry* metrics,
                                               const Clock* clock) {
  groth16::ProveStageHooks hooks;
  hooks.clock = clock;
  if (metrics != nullptr) {
    hooks.on_stage = [metrics](const char* stage, uint64_t elapsed_ms) {
      metrics->GetHistogram(std::string("prove.stage_ms.") + stage,
                            LatencyBoundsMs())
          ->Record(elapsed_ms);
    };
  }
  return hooks;
}

ProveStatement MakeGroth16Statement(const ConstraintSystem* cs, Rng* rng,
                                    MetricsRegistry* metrics, const Clock* clock,
                                    groth16::Proof* proof_out) {
  return [cs, rng, metrics, clock, proof_out](
             const CachedKey* key, const CancellationToken& cancel) -> Status {
    NOPE_INVARIANT(key != nullptr,
                   "MakeGroth16Statement: requires a cached proving key");
    const auto* entry = static_cast<const ProvingKeyEntry*>(key);
    groth16::ProveStageHooks hooks = MakeMetricsProveHooks(metrics, clock);
    groth16::ProveResult result =
        groth16::Prove(entry->pk, *cs, rng, cancel, &hooks);
    if (!result.ok()) {
      return Error(ErrorCode::kCancelled, "groth16 prove cancelled");
    }
    if (proof_out != nullptr) {
      *proof_out = result.proof;
    }
    return Status::Ok();
  };
}

ProveStatement MakeSimulatedStatement(Clock* clock, uint64_t cost_ms,
                                      uint64_t slice_ms) {
  return [clock, cost_ms, slice_ms](const CachedKey* /*key*/,
                                    const CancellationToken& cancel) -> Status {
    uint64_t remaining = cost_ms;
    while (remaining > 0) {
      if (cancel.cancelled()) {
        return Error(ErrorCode::kCancelled, "simulated prove cancelled mid-run");
      }
      uint64_t slice = std::min(slice_ms, remaining);
      clock->SleepMs(slice);
      remaining -= slice;
    }
    if (cancel.cancelled()) {
      return Error(ErrorCode::kCancelled, "simulated prove cancelled at completion");
    }
    return Status::Ok();
  };
}

}  // namespace nope
