#include "src/service/pvk_cache.h"

namespace nope {

KeyCache::Handle PreparedVkCache::Checkout(const std::string& domain,
                                           const groth16::VerifyingKey& vk) {
  return cache_.Checkout(domain, [&vk] {
    return std::make_shared<const PreparedVkEntry>(
        groth16::PrepareVerifyingKey(vk));
  });
}

}  // namespace nope
