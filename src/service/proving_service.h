// Multi-tenant proving service: the front door the renewal fleet and a
// CA-scale issuer submit proving jobs through (ISSUE 5; paper §5, §8
// deployment story — one operator proving for thousands of tenant domains).
//
// ProvingService is an in-process, deterministic-under-SimClock job server:
//
//   Submit()   — admission control. A request is rejected (never queued)
//                when the bounded queue is full or when its deadline cannot
//                be met even if it ran immediately (now + cost_estimate >
//                deadline). Admitted jobs enter their domain's queue,
//                ordered by (priority desc, arrival).
//   PumpOne()  — dequeues and runs exactly one job, chosen by weighted
//                fair scheduling (deficit round-robin over domains in
//                lexicographic order; a domain earns quantum_ms * weight of
//                service credit per round and is charged each job's
//                cost_estimate_ms). Jobs that can no longer meet their
//                deadline (now + cost_estimate > deadline, the admission
//                predicate re-checked) — or whose CancellationSource fired
//                while queued — are shed at dequeue without charging the
//                domain.
//   The job's statement callback runs on the calling thread with (a) the
//   pinned KeyCache entry for its circuit and (b) a CancellationToken that
//   fires on Cancel(job_id) or deadline expiry, so a mid-prove overrun
//   aborts at the next groth16::Prove stage/chunk boundary. Data
//   parallelism happens inside the statement (the prover's ParallelFor
//   loops), never by running two jobs concurrently — that is what makes the
//   event log and metrics snapshot byte-identical for any NOPE_THREADS,
//   extending the PR 2–4 determinism contract to the serving layer.
//
// Every decision is recorded twice: as a typed event in EventLog() (the
// byte-diffable transcript) and in the MetricsRegistry (see the metric name
// table in DESIGN.md "Proving service").
#ifndef SRC_SERVICE_PROVING_SERVICE_H_
#define SRC_SERVICE_PROVING_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/cancellation.h"
#include "src/base/clock.h"
#include "src/base/result.h"
#include "src/groth16/groth16.h"
#include "src/service/key_cache.h"
#include "src/service/metrics.h"

namespace nope {

// The proving work itself. Receives the pinned cache entry for the request's
// circuit (null when the service runs cache-less) and the job's cancellation
// token, which it must poll cooperatively — groth16::Prove does so at stage
// and chunk boundaries; simulated statements burn SimClock time in slices.
// Return kCancelled once the token fires.
using ProveStatement =
    std::function<Status(const CachedKey* key, const CancellationToken& cancel)>;

struct ProveRequest {
  std::string domain;      // tenant identity for fair scheduling
  std::string circuit_id;  // KeyCache key (RSA vs ECDSA chain shapes, Fig. 3)
  ProveStatement statement;
  KeyCache::Loader key_loader;  // invoked on a cache miss; may be null when
                                // the service has no cache attached
  uint64_t deadline_ms = 0;     // absolute on the service clock; 0 = none
  int priority = 0;             // higher runs earlier within its domain
  // Expected service time; drives admission feasibility and the fair-share
  // charge. An estimate, not a limit — the deadline is the limit. When the
  // service runs with use_cost_model and this is 0, the per-circuit EWMA
  // estimate is used instead (re-read at dequeue, so a queued job's
  // feasibility tracks the model as it learns).
  uint64_t cost_estimate_ms = 1'000;
};

enum class Admission {
  kAdmitted,
  kRejectedQueueFull,   // bounded queue at max_queue_depth
  kRejectedInfeasible,  // could not finish by its deadline even if run now
};
constexpr int kNumAdmissions = static_cast<int>(Admission::kRejectedInfeasible) + 1;
const char* AdmissionName(Admission a);

enum class JobOutcome {
  kOk,
  kFailed,      // statement returned a non-cancellation error
  kCancelled,   // token fired mid-prove (deadline or explicit Cancel)
  kShedExpired,    // cannot meet its deadline at dequeue (now + cost > deadline)
  kShedCancelled,  // CancellationSource fired while queued
};
constexpr int kNumJobOutcomes = static_cast<int>(JobOutcome::kShedCancelled) + 1;
const char* JobOutcomeName(JobOutcome o);

struct JobResult {
  uint64_t job_id = 0;
  std::string domain;
  std::string circuit_id;
  JobOutcome outcome = JobOutcome::kOk;
  std::string error;  // Status string for kFailed / kCancelled
  uint64_t submitted_ms = 0;
  uint64_t started_ms = 0;   // == finished_ms for shed jobs (never ran)
  uint64_t finished_ms = 0;
  bool key_cache_hit = false;
};

struct ProvingServiceConfig {
  size_t max_queue_depth = 64;
  // Deficit round-robin: service credit earned per visit is
  // quantum_ms * weight(domain). Weights default to default_weight.
  uint64_t quantum_ms = 1'000;
  uint32_t default_weight = 1;
  std::map<std::string, uint32_t> domain_weights;
  // When false, deadline feasibility is not checked at admission (jobs are
  // still shed at dequeue once expired).
  bool reject_infeasible = true;
  // Per-circuit EWMA of observed prove cost, substituted for requests that
  // submit cost_estimate_ms == 0. Updated only from kOk completions (shed
  // and cancelled jobs reveal nothing about true cost), on the single pump
  // thread, in completion order — so the model state is a deterministic
  // function of the job history. Fixed-point update:
  //   new = (num * observed + (den - num) * old) / den
  bool use_cost_model = false;
  uint32_t cost_ewma_num = 1;
  uint32_t cost_ewma_den = 4;
  uint64_t cost_prior_ms = 1'000;  // estimate for never-observed circuits
  // Fleet-scale runs process 10^6+ jobs; keeping every JobResult and event
  // line in memory defeats the point of a flyweight simulator. When false,
  // results()/EventLog() stay empty and only the sinks observe the stream.
  bool record_results = true;
  bool record_events = true;
};

class ProvingService {
 public:
  // clock must outlive the service; cache and metrics may be null.
  ProvingService(const ProvingServiceConfig& config, Clock* clock,
                 KeyCache* cache, MetricsRegistry* metrics);

  struct SubmitResult {
    Admission admission = Admission::kAdmitted;
    uint64_t job_id = 0;  // 0 when rejected
  };
  SubmitResult Submit(ProveRequest req);

  // Runs (or sheds) the next job per the fair schedule. Returns false when
  // the queue is empty. Not reentrant: statements must not call PumpOne.
  bool PumpOne();
  // Pumps until the queue drains; returns the number of jobs processed.
  size_t RunUntilIdle();

  // Fires the job's CancellationSource. A queued job is shed at dequeue; a
  // running job (Cancel called from inside its own statement, or from
  // another thread against a real clock) aborts at its next poll. Returns
  // false when the id is unknown or already finished.
  bool Cancel(uint64_t job_id);

  size_t queue_depth() const { return queued_; }
  const std::vector<JobResult>& results() const { return results_; }

  // Streaming observers for fleet-scale runs (see record_results /
  // record_events). Called synchronously on the pump thread, in the same
  // order the vectors would have recorded; the sink sees every result/event
  // regardless of the record_* flags.
  void SetResultSink(std::function<void(const JobResult&)> sink) {
    result_sink_ = std::move(sink);
  }
  void SetEventSink(std::function<void(uint64_t t_ms, const std::string& line)> sink) {
    event_sink_ = std::move(sink);
  }

  // Current per-circuit cost estimate (cost_prior_ms when never observed).
  // This is what a cost_estimate_ms == 0 request will be charged and what
  // its feasibility check uses.
  uint64_t CostEstimateMs(const std::string& circuit_id) const;

  // Canonical fixed-format transcript, byte-identical across runs and
  // NOPE_THREADS values for the same scenario under SimClock (same format
  // discipline as RenewalManager::EventLog).
  std::string EventLog() const;

 private:
  struct Job {
    uint64_t id = 0;
    ProveRequest req;
    uint64_t submitted_ms = 0;
    CancellationSource cancel_src;
  };
  struct DomainState {
    std::deque<std::unique_ptr<Job>> queue;  // (priority desc, arrival) order
    uint64_t deficit_ms = 0;
    uint32_t weight = 1;
  };

  void Emit(const char* event, const std::string& detail);
  void RunJob(std::unique_ptr<Job> job, DomainState* domain);
  void Shed(std::unique_ptr<Job> job, JobOutcome outcome);
  void FinishJob(std::unique_ptr<Job> job, JobOutcome outcome,
                 const std::string& error, uint64_t started_ms, bool cache_hit);
  uint32_t WeightOf(const std::string& domain) const;
  // The cost used for admission, dequeue-shed, and the DRR charge: the
  // request's own estimate, or the EWMA model when it submitted 0.
  uint64_t EffectiveCostMs(const ProveRequest& req) const;
  void RecordResult(JobResult result);

  ProvingServiceConfig config_;
  Clock* clock_;
  KeyCache* cache_;
  MetricsRegistry* metrics_;

  // Hot-path metric handles (null when metrics_ is null).
  Counter* admitted_ = nullptr;
  Counter* rejected_queue_full_ = nullptr;
  Counter* rejected_infeasible_ = nullptr;
  Counter* shed_expired_ = nullptr;
  Counter* shed_cancelled_ = nullptr;
  Counter* jobs_ok_ = nullptr;
  Counter* jobs_failed_ = nullptr;
  Counter* jobs_cancelled_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Histogram* queue_wait_ms_ = nullptr;
  Histogram* run_ms_ = nullptr;
  Histogram* total_latency_ms_ = nullptr;

  std::map<std::string, DomainState> domains_;
  // DRR cursor: the domain to visit next (lexicographic position; "" means
  // start from the beginning).
  std::string cursor_;
  bool cursor_credited_ = false;  // quantum already granted at this cursor stop
  size_t queued_ = 0;
  uint64_t next_job_id_ = 1;
  std::map<uint64_t, Job*> live_jobs_;  // queued or running, for Cancel()

  std::vector<JobResult> results_;
  struct ServiceEvent {
    uint64_t t_ms;
    std::string line;  // "<event> <detail>"
  };
  std::vector<ServiceEvent> events_;
  std::function<void(const JobResult&)> result_sink_;
  std::function<void(uint64_t, const std::string&)> event_sink_;
  std::map<std::string, uint64_t> cost_ewma_;  // circuit_id -> estimate (ms)
};

// --- groth16 integration ----------------------------------------------------

// Cache entry wrapping a full proving key (with its Setup query tables).
struct ProvingKeyEntry : CachedKey {
  groth16::ProvingKey pk;
  size_t SizeBytes() const override;
};

// Statement that runs the instrumented cancellable prover. `cs` and `rng`
// (and `proof_out`, when set) must outlive the job; the key checked out for
// the job's circuit must be a ProvingKeyEntry for the same circuit. When
// `metrics` is non-null, per-stage prove latencies (measured on `clock`)
// are recorded into "prove.stage_ms.<stage>" histograms.
ProveStatement MakeGroth16Statement(const ConstraintSystem* cs, Rng* rng,
                                    MetricsRegistry* metrics, const Clock* clock,
                                    groth16::Proof* proof_out);

// The stage-latency hook MakeGroth16Statement wires into groth16::Prove;
// exposed so other prover call sites (RenewalManager's real pipeline, the
// benches) can record into the same histograms.
groth16::ProveStageHooks MakeMetricsProveHooks(MetricsRegistry* metrics,
                                               const Clock* clock);

// Statement that burns cost_ms of clock time in slice_ms slices, polling the
// token at each slice boundary — the SimulatedPipeline::GenerateProof model
// as a service job. Lets scenario fleets route their proving stages through
// a ProvingService (admission, fair scheduling, shedding) without paying for
// a real Groth16 prove per scenario. clock must outlive the job.
ProveStatement MakeSimulatedStatement(Clock* clock, uint64_t cost_ms,
                                      uint64_t slice_ms);

}  // namespace nope

#endif  // SRC_SERVICE_PROVING_SERVICE_H_
