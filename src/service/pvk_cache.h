// Per-domain prepared-verifying-key cache (ROADMAP item 1, client side).
//
// PrepareVerifyingKey runs three G2 line precomputations plus one full
// pairing — worth amortizing, but only when the same deployment's key is
// verified repeatedly, which is exactly the client's situation: every
// handshake with a domain re-verifies against that domain's (fixed) NOPE
// verifying key. PreparedVkCache keys prepared keys by domain name on top
// of the service KeyCache, inheriting its byte budget, strict-LRU
// eviction, RAII pinning, and deterministic hit/miss/evict sequencing.
#ifndef SRC_SERVICE_PVK_CACHE_H_
#define SRC_SERVICE_PVK_CACHE_H_

#include <memory>
#include <string>

#include "src/groth16/groth16.h"
#include "src/service/key_cache.h"

namespace nope {

// KeyCache artifact wrapping a PreparedVerifyingKey.
class PreparedVkEntry : public CachedKey {
 public:
  explicit PreparedVkEntry(groth16::PreparedVerifyingKey pvk)
      : pvk_(std::move(pvk)) {}

  const groth16::PreparedVerifyingKey& pvk() const { return pvk_; }
  size_t SizeBytes() const override { return pvk_.SizeBytes(); }

 private:
  groth16::PreparedVerifyingKey pvk_;
};

class PreparedVkCache {
 public:
  // metrics may be null; when set the underlying KeyCache exports its
  // keycache.* counters and gauges.
  explicit PreparedVkCache(size_t byte_budget,
                           MetricsRegistry* metrics = nullptr)
      : cache_(byte_budget, metrics) {}

  // Pins the prepared key for `domain`, preparing `vk` on a miss. Access
  // the result via handle.As<PreparedVkEntry>()->pvk(). The caller must
  // pass the same vk for the same domain (the cache trusts the first).
  KeyCache::Handle Checkout(const std::string& domain,
                            const groth16::VerifyingKey& vk);

  KeyCache::Stats stats() const { return cache_.stats(); }

 private:
  KeyCache cache_;
};

}  // namespace nope

#endif  // SRC_SERVICE_PVK_CACHE_H_
