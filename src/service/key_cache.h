// Ref-counted LRU cache for proving keys and Setup query tables (ISSUE 5).
//
// groth16::Setup is the single most expensive step of the proving pipeline
// (it materializes every query table), so a multi-circuit workload — the
// RSA-vs-ECDSA chain matrix of Fig. 3 — must not re-run it per request.
// KeyCache holds one entry per circuit id under a byte budget:
//
//   - Checkout(id, loader) pins the entry (hit) or runs the loader, inserts,
//     and pins (miss). The returned Handle is an RAII pin: a pinned entry is
//     never evicted, and an entry evicted while pinned stays alive through
//     the Handle's shared_ptr until the last pin drops.
//   - Eviction is strict LRU over unpinned entries, triggered whenever
//     resident bytes exceed the budget (after an insert, and after an unpin
//     makes a candidate eligible). Pinned bytes may transiently exceed the
//     budget — shedding a running job to satisfy a byte budget would be
//     worse than briefly overshooting it.
//
// The cache serializes everything (including the loader call) under one
// mutex: concurrent checkouts of the same missing id run the loader exactly
// once, and the hit/miss/evict sequence for a given request order is
// deterministic — which the service's cross-thread-count determinism
// contract depends on.
#ifndef SRC_SERVICE_KEY_CACHE_H_
#define SRC_SERVICE_KEY_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/service/metrics.h"

namespace nope {

// Type-erased cached artifact. Concrete entries wrap a groth16::ProvingKey
// (see ProvingKeyEntry in proving_service.h) or a simulated stand-in;
// SizeBytes() feeds the budget accounting and must be stable for the entry's
// lifetime.
class CachedKey {
 public:
  virtual ~CachedKey() = default;
  virtual size_t SizeBytes() const = 0;
};

class KeyCache {
 public:
  // Builds the artifact for a missing circuit id. Runs under the cache lock
  // (see header comment); must return non-null.
  using Loader = std::function<std::shared_ptr<const CachedKey>()>;

  // metrics may be null. When set, the cache maintains:
  //   keycache.hits / keycache.misses / keycache.evictions  (counters)
  //   keycache.bytes / keycache.entries                      (gauges)
  explicit KeyCache(size_t byte_budget, MetricsRegistry* metrics = nullptr);
  ~KeyCache();

  KeyCache(const KeyCache&) = delete;
  KeyCache& operator=(const KeyCache&) = delete;

  class Handle {
   public:
    Handle() = default;
    ~Handle() { Release(); }
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    bool valid() const { return entry_ != nullptr; }
    // The cached artifact; null for a default-constructed Handle.
    const CachedKey* get() const;
    template <typename T>
    const T* As() const {
      return static_cast<const T*>(get());
    }
    // True when this checkout found the entry already resident.
    bool was_hit() const { return hit_; }

    // Drops the pin early (idempotent; the destructor calls it too).
    void Release();

   private:
    friend class KeyCache;
    KeyCache* cache_ = nullptr;
    std::shared_ptr<struct KeyCacheEntry> entry_;
    bool hit_ = false;
  };

  // Pins and returns the entry for `circuit_id`, running `loader` on a miss.
  Handle Checkout(const std::string& circuit_id, const Loader& loader);

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t resident_bytes = 0;
    size_t resident_entries = 0;
  };
  Stats stats() const;
  size_t byte_budget() const { return byte_budget_; }

 private:
  void Unpin(const std::shared_ptr<KeyCacheEntry>& entry);
  // Evicts unpinned LRU entries until resident bytes fit the budget. Caller
  // holds mu_.
  void EvictToBudgetLocked();
  void UpdateGaugesLocked();

  const size_t byte_budget_;
  MetricsRegistry* const metrics_;
  Counter* hits_ = nullptr;
  Counter* misses_ = nullptr;
  Counter* evictions_ = nullptr;
  Gauge* bytes_gauge_ = nullptr;
  Gauge* entries_gauge_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<KeyCacheEntry>> entries_;
  uint64_t use_clock_ = 0;  // recency stamps for LRU ordering
  Stats stats_;
};

}  // namespace nope

#endif  // SRC_SERVICE_KEY_CACHE_H_
