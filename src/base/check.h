// Aborting invariant checks for trusted, prover-side code paths.
//
// The untrusted-input surface uses Result<T>/Status (src/base/result.h) and
// never aborts on hostile bytes. NOPE_INVARIANT is the complement: it guards
// conditions that only a programming error can violate (mismatched vector
// sizes fed to Msm, an FFT input of the wrong length, a domain larger than
// the field's 2-adicity). Such states mean the prover itself is broken, so
// the correct response is a loud, immediate abort with context -- not an
// exception (the hardened library code is exception-free) and not a Result
// (there is no caller that could meaningfully recover).
#ifndef SRC_BASE_CHECK_H_
#define SRC_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace nope {

[[noreturn]] inline void InvariantFail(const char* file, int line,
                                       const char* cond, const char* msg) {
  std::fprintf(stderr, "NOPE_INVARIANT failed at %s:%d: (%s) %s\n", file, line,
               cond, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace nope

#define NOPE_INVARIANT(cond, msg)                              \
  do {                                                         \
    if (!(cond)) {                                             \
      ::nope::InvariantFail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                          \
  } while (0)

#endif  // SRC_BASE_CHECK_H_
