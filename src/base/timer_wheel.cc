#include "src/base/timer_wheel.h"

#include <algorithm>

#include "src/base/check.h"

namespace nope {

namespace {
constexpr uint64_t kSlotMask = TimerWheel::kSlots - 1;
// The top level's reach in ticks: one full rotation of all levels.
constexpr uint64_t kHorizonTicks = 1ull
                                   << (TimerWheel::kLevels * TimerWheel::kSlotBits);
}  // namespace

TimerWheel::TimerWheel(uint64_t start_ms, uint64_t tick_ms)
    : tick_ms_(tick_ms), current_tick_(start_ms / (tick_ms == 0 ? 1 : tick_ms)) {
  NOPE_INVARIANT(tick_ms > 0, "TimerWheel: tick_ms must be > 0");
}

TimerWheel::TimerId TimerWheel::Schedule(uint64_t due_ms, uint64_t payload) {
  // Quantize UP to a tick boundary (never fire before the requested time),
  // then clamp past-due times forward so they fire on the next AdvanceTo.
  uint64_t due_tick = due_ms / tick_ms_ + (due_ms % tick_ms_ != 0 ? 1 : 0);
  uint64_t fire_tick = std::max(due_tick, current_tick_ + 1);
  Entry entry{fire_tick, due_ms, next_seq_, payload};
  TimerId id = next_seq_++;
  alive_.push_back(true);
  ++pending_;
  Place(entry);
  return id;
}

bool TimerWheel::Cancel(TimerId id) {
  if (id == kInvalidId || !Alive(id)) {
    return false;
  }
  // Lazy: the slot entry stays put and is dropped when its slot is next
  // visited (fire or cascade). pending_ is accounted here, once.
  MarkDead(id);
  --pending_;
  return true;
}

void TimerWheel::Place(Entry entry) {
  uint64_t delta = entry.fire_tick - current_tick_;
  for (int level = 0; level < kLevels; ++level) {
    uint64_t span = 1ull << ((level + 1) * kSlotBits);
    if (delta < span) {
      uint64_t slot = (entry.fire_tick >> (level * kSlotBits)) & kSlotMask;
      slots_[level][slot].push_back(entry);
      occupancy_[level][slot >> 6] |= 1ull << (slot & 63);
      return;
    }
  }
  overflow_floor_tick_ = std::min(overflow_floor_tick_, entry.fire_tick);
  overflow_.push_back(entry);
}

void TimerWheel::Cascade(int level, uint64_t slot, std::vector<Entry>* due_now) {
  std::vector<Entry> moved;
  moved.swap(slots_[level][slot]);
  occupancy_[level][slot >> 6] &= ~(1ull << (slot & 63));
  for (Entry& entry : moved) {
    if (!Alive(entry.seq)) {
      continue;  // cancelled while parked; pending_ was adjusted at Cancel
    }
    if (entry.fire_tick <= current_tick_) {
      due_now->push_back(entry);
    } else {
      Place(entry);
    }
  }
}

uint64_t TimerWheel::NextOccupiedTick(int level) const {
  uint64_t cur = current_tick_ >> (level * kSlotBits);
  for (uint64_t d = 1; d <= kSlots; ++d) {
    uint64_t slot = (cur + d) & kSlotMask;
    if (occupancy_[level][slot >> 6] & (1ull << (slot & 63))) {
      return (cur + d) << (level * kSlotBits);
    }
  }
  return UINT64_MAX;
}

uint64_t TimerWheel::NextDueLowerBoundMs() const {
  if (pending_ == 0) {
    return UINT64_MAX;
  }
  uint64_t next = UINT64_MAX;
  for (int level = 0; level < kLevels; ++level) {
    next = std::min(next, NextOccupiedTick(level));
  }
  if (!overflow_.empty()) {
    // The earliest instant an overflow entry can re-enter the wheel proper.
    uint64_t entry_at = overflow_floor_tick_ >= kHorizonTicks - 1
                            ? overflow_floor_tick_ - (kHorizonTicks - 1)
                            : 1;
    next = std::min(next, std::max(entry_at, current_tick_ + 1));
  }
  if (next == UINT64_MAX || next > UINT64_MAX / tick_ms_) {
    return UINT64_MAX;
  }
  return next * tick_ms_;
}

size_t TimerWheel::AdvanceTo(
    uint64_t now_ms,
    const std::function<void(uint64_t payload, uint64_t due_ms)>& fire) {
  uint64_t target_tick = now_ms / tick_ms_;
  size_t fired = 0;
  std::vector<Entry> due;
  while (current_tick_ < target_tick) {
    uint64_t next = UINT64_MAX;
    for (int level = 0; level < kLevels; ++level) {
      next = std::min(next, NextOccupiedTick(level));
    }
    if (!overflow_.empty()) {
      uint64_t entry_at = overflow_floor_tick_ >= kHorizonTicks - 1
                              ? overflow_floor_tick_ - (kHorizonTicks - 1)
                              : 1;
      next = std::min(next, std::max(entry_at, current_tick_ + 1));
    }
    if (next > target_tick) {
      current_tick_ = target_tick;
      break;
    }
    current_tick_ = next;

    // Re-admit parked far-future timers once the wheel's horizon reaches
    // them. Entries still beyond the horizon just park again.
    if (!overflow_.empty() &&
        overflow_floor_tick_ - current_tick_ < kHorizonTicks) {
      std::vector<Entry> parked;
      parked.swap(overflow_);
      overflow_floor_tick_ = UINT64_MAX;
      for (Entry& entry : parked) {
        if (Alive(entry.seq)) {
          Place(entry);
        }
      }
    }

    // Cascade every coarse level whose rotation boundary is this tick, then
    // collect the exact-tick level-0 slot. due entries all share this fire
    // tick, so seq alone reconstructs the deterministic order — regardless
    // of which level each entry cascaded down from.
    due.clear();
    for (int level = kLevels - 1; level >= 1; --level) {
      uint64_t below = (1ull << (level * kSlotBits)) - 1;
      if ((current_tick_ & below) == 0) {
        Cascade(level, (current_tick_ >> (level * kSlotBits)) & kSlotMask, &due);
      }
    }
    Cascade(0, current_tick_ & kSlotMask, &due);

    std::sort(due.begin(), due.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    for (const Entry& entry : due) {
      // Re-check liveness: an earlier same-tick callback may have cancelled
      // this one.
      if (!Alive(entry.seq)) {
        continue;
      }
      MarkDead(entry.seq);
      --pending_;
      ++fired;
      fire(entry.payload, entry.due_ms);
    }
  }
  return fired;
}

}  // namespace nope
