#include "src/base/hmac.h"

#include "src/base/sha256.h"

namespace nope {

Bytes HmacSha256(const Bytes& key, const Bytes& message) {
  Bytes k = key;
  if (k.size() > Sha256::kBlockSize) {
    k = Sha256::Hash(k);
  }
  k.resize(Sha256::kBlockSize, 0);

  Bytes inner_pad(Sha256::kBlockSize);
  Bytes outer_pad(Sha256::kBlockSize);
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    inner_pad[i] = k[i] ^ 0x36;
    outer_pad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(inner_pad);
  inner.Update(message);
  auto inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(outer_pad);
  outer.Update(inner_digest.data(), inner_digest.size());
  auto digest = outer.Finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace nope
