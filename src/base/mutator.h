#ifndef NOPE_BASE_MUTATOR_H_
#define NOPE_BASE_MUTATOR_H_

// Deterministic structural mutator for the fault-injection harness.
//
// Given a valid serialized artifact, produces mutants via seeded campaigns of
// single-bit flips, byte overwrites, truncation/extension, length-field
// corruption, slice duplication/deletion, and (with a donor) field swaps
// between two valid artifacts. All randomness comes from the repo's xoshiro
// Rng, so a (seed, iteration) pair reproduces a mutant exactly.

#include <cstdint>
#include <string>

#include "src/base/bytes.h"

namespace nope {

class Mutator {
 public:
  explicit Mutator(uint64_t seed) : rng_(seed) {}

  // One structural mutation of `original`. Retries a bounded number of times
  // to return bytes that differ from the input; callers must still handle the
  // (rare) identical case.
  Bytes Mutate(const Bytes& original);

  // Like Mutate, but may also splice slices of `donor` into the output —
  // models swapping fields between two independently valid artifacts.
  Bytes Mutate(const Bytes& original, const Bytes& donor);

  // Text mutation for SAN-style hostname strings: out-of-alphabet
  // substitution, case flips, dot games, truncation/extension, label
  // duplication.
  std::string MutateString(const std::string& original);

  Rng* rng() { return &rng_; }

 private:
  Bytes ApplyOnce(Bytes data, const Bytes* donor);
  Rng rng_;
};

}  // namespace nope

#endif  // NOPE_BASE_MUTATOR_H_
