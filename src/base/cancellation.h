// Cooperative cancellation for long-running prover work.
//
// A CancellationToken is a cheap, copyable view over (a) a shared flag owned
// by a CancellationSource and/or (b) a Deadline; `cancelled()` is safe to
// poll from any thread, including ThreadPool workers. Cancellation is
// strictly cooperative: ParallelFor, Msm, the FFT family, and groth16::Prove
// consult the token at chunk/stage boundaries and abandon the remaining work.
// Partially computed buffers are garbage after a cancellation and callers
// must discard them (Prove returns a typed kCancelled result instead of a
// proof). When the token never fires, the checks are pure reads and the
// computed bytes are identical to an uncancellable run.
#ifndef SRC_BASE_CANCELLATION_H_
#define SRC_BASE_CANCELLATION_H_

#include <atomic>
#include <memory>

#include "src/base/clock.h"

namespace nope {

class CancellationToken {
 public:
  // Default token never cancels.
  CancellationToken() = default;

  // Token that fires when the deadline expires.
  static CancellationToken WithDeadline(const Deadline& deadline) {
    CancellationToken t;
    t.deadline_ = deadline;
    return t;
  }

  bool cancelled() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline_.Expired();
  }

 private:
  friend class CancellationSource;
  std::shared_ptr<std::atomic<bool>> flag_;
  Deadline deadline_;  // default-constructed: infinite
};

// Owner side: create once, hand out tokens, call Cancel() from any thread.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

  CancellationToken token() const {
    CancellationToken t;
    t.flag_ = flag_;
    return t;
  }
  // Token that fires on Cancel() OR when the deadline expires.
  CancellationToken TokenWithDeadline(const Deadline& deadline) const {
    CancellationToken t;
    t.flag_ = flag_;
    t.deadline_ = deadline;
    return t;
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace nope

#endif  // SRC_BASE_CANCELLATION_H_
