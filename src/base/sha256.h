// SHA-256 (FIPS 180-4). Used for DNSSEC DS digests, RRSIG message digests,
// PKCS#1 v1.5 DigestInfo, certificate fingerprints, and CT Merkle hashing.
#ifndef SRC_BASE_SHA256_H_
#define SRC_BASE_SHA256_H_

#include <array>
#include <cstdint>

#include "src/base/bytes.h"

namespace nope {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience.
  static Bytes Hash(const Bytes& data);

  // Exposes the compression function for the R1CS gadget's test oracle:
  // state is 8 words, block is 64 bytes.
  static void Compress(uint32_t state[8], const uint8_t block[64]);

 private:
  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
};

}  // namespace nope

#endif  // SRC_BASE_SHA256_H_
