// Arbitrary-precision unsigned integers.
//
// This is the big-number substrate for RSA (2048-bit and larger moduli),
// pairing final-exponentiation exponents, non-native witness computation in
// the R1CS gadgets, and the GLV/Antipa half-size decomposition used by the
// ECDSA verification transform (paper Appendix C).
//
// Representation: little-endian vector of 64-bit limbs, normalized so the
// most significant limb is non-zero (zero is the empty vector).
#ifndef SRC_BASE_BIGUINT_H_
#define SRC_BASE_BIGUINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/base/bytes.h"

namespace nope {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(uint64_t v);

  // Parses big-endian hex (no 0x prefix required; one is tolerated).
  static BigUInt FromHex(const std::string& hex);
  // Parses a base-10 string.
  static BigUInt FromDecimal(const std::string& dec);
  // Big-endian byte deserialization.
  static BigUInt FromBytes(const Bytes& bytes);
  // Little-endian 64-bit limb deserialization (trailing zero limbs allowed).
  static BigUInt FromLimbsLE(const uint64_t* limbs, size_t n);
  // Uniform random value with exactly `bits` bits (top bit set) for key
  // generation, or uniform below a bound for nonces.
  static BigUInt Random(Rng* rng, size_t bits);
  static BigUInt RandomBelow(Rng* rng, const BigUInt& bound);

  bool IsZero() const { return limbs_.empty(); }
  bool IsOdd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  size_t BitLength() const;
  bool Bit(size_t i) const;
  uint64_t LowU64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  // Comparison: -1, 0, or 1.
  int Compare(const BigUInt& other) const;
  bool operator==(const BigUInt& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUInt& o) const { return Compare(o) != 0; }
  bool operator<(const BigUInt& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUInt& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUInt& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUInt& o) const { return Compare(o) >= 0; }

  BigUInt operator+(const BigUInt& o) const;
  // Throws std::underflow_error if o > *this.
  BigUInt operator-(const BigUInt& o) const;
  BigUInt operator*(const BigUInt& o) const;
  BigUInt operator<<(size_t bits) const;
  BigUInt operator>>(size_t bits) const;

  // Knuth Algorithm D long division. Throws std::domain_error on divide by 0.
  struct DivModResult;
  DivModResult DivMod(const BigUInt& divisor) const;
  BigUInt operator/(const BigUInt& o) const;
  BigUInt operator%(const BigUInt& o) const;

  // Modular helpers. All reduce operands first; modulus must be non-zero.
  BigUInt AddMod(const BigUInt& o, const BigUInt& m) const;
  BigUInt SubMod(const BigUInt& o, const BigUInt& m) const;
  BigUInt MulMod(const BigUInt& o, const BigUInt& m) const;
  BigUInt PowMod(const BigUInt& exp, const BigUInt& m) const;
  // Inverse modulo m (m need not be prime, but gcd(*this, m) must be 1);
  // throws std::domain_error otherwise.
  BigUInt InvMod(const BigUInt& m) const;

  static BigUInt Gcd(BigUInt a, BigUInt b);

  // Partial extended Euclid on (n, k): returns (v, w) with w = k*v mod n
  // (up to sign handled internally), |v|,|w| < ~sqrt(n). This is the Antipa
  // et al. half-size decomposition the ECDSA gadget validates in-circuit.
  // Returns v (positive representative) and whether k*v mod n needed
  // negation to become small; see ecdsa_gadget for usage.
  struct HalfGcdResult;
  static HalfGcdResult HalfGcd(const BigUInt& n, const BigUInt& k);

  // Same partial-Euclid walk as HalfGcd, but returns the two consecutive
  // rows (r_m, t_m), (r_{m+1}, t_{m+1}) straddling sqrt(n): r_m >= 2^ceil(bits/2)
  // > r_{m+1}. Each row satisfies r_i == +-t_i * k (mod n) (sign via t_neg),
  // which is exactly the short-lattice-basis input the GLV scalar
  // decomposition needs (two independent short vectors (r_i, -t_i) in the
  // lattice {(a, b) : a + b*k == 0 mod n}).
  struct ExtEuclidRow;
  static std::pair<ExtEuclidRow, ExtEuclidRow> HalfGcdRows(const BigUInt& n,
                                                           const BigUInt& k);

  // Big-endian serialization, zero-padded/truncated to `width` bytes if
  // width != 0 (throws std::length_error if the value doesn't fit).
  Bytes ToBytes(size_t width = 0) const;
  std::string ToHex() const;
  std::string ToDecimal() const;

  const std::vector<uint64_t>& limbs() const { return limbs_; }

 private:
  void Normalize();

  std::vector<uint64_t> limbs_;
};

struct BigUInt::DivModResult {
  BigUInt quotient;
  BigUInt remainder;
};

struct BigUInt::HalfGcdResult {
  BigUInt v;       // |v| < 2^(ceil(bits/2)+1), v > 0
  bool v_negated;  // true if the small pair used -v
  BigUInt w;       // w = +-(k*v) mod n, small
  bool w_negated;  // reserved; always false today
};

struct BigUInt::ExtEuclidRow {
  BigUInt r;   // remainder (always non-negative)
  BigUInt t;   // |t| where r == sign(t) * t * k (mod n)
  bool t_neg;  // sign of the t coefficient
};

inline BigUInt BigUInt::operator/(const BigUInt& o) const { return DivMod(o).quotient; }
inline BigUInt BigUInt::operator%(const BigUInt& o) const { return DivMod(o).remainder; }

}  // namespace nope

#endif  // SRC_BASE_BIGUINT_H_
