// Hierarchical timer wheel: the O(1) event core of the fleet simulator
// (ISSUE 8), replacing per-cycle polling for renewal leads, retry backoffs,
// and deadline expiries.
//
// A fleet of 10^6 domains keeps ~10^6 timers live at once and schedules tens
// of millions over a simulated month; a sorted structure pays O(log n) per
// operation and a polling loop pays O(n) per tick. The wheel pays O(1) per
// Schedule/Cancel and amortized O(1) per fired timer: kLevels levels of
// kSlots slots each, where level L buckets due times by bits
// [L*kSlotBits, (L+1)*kSlotBits) of the absolute tick. Coarse-level slots
// cascade into finer levels as the wheel reaches them, so an entry touches at
// most kLevels slots over its lifetime.
//
// Determinism contract (what the fleet's byte-identical replay rests on):
//   * Fire order is exactly (fire_tick, seq) — seq is the schedule-order
//     sequence number, so two timers due the same tick fire in the order they
//     were scheduled, independent of cascade history. The differential test
//     (tests/timer_wheel_test.cc) checks this against a naive sorted
//     scheduler on seeded random schedules.
//   * A due time at or before the wheel's current time is clamped to the
//     next tick: it fires on the next AdvanceTo, never silently drops, and
//     never fires "in the past".
//   * AdvanceTo jumps from occupied slot to occupied slot (it never iterates
//     empty ticks), so advancing a week of idle simulated time costs a few
//     bitmap scans, not 6x10^8 tick steps.
//
// Single-threaded by design: the simulation thread owns the wheel the same
// way it owns SimClock advancement. Thread safety lives a layer up.
#ifndef SRC_BASE_TIMER_WHEEL_H_
#define SRC_BASE_TIMER_WHEEL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace nope {

class TimerWheel {
 public:
  using TimerId = uint64_t;
  static constexpr TimerId kInvalidId = 0;

  // Levels x slots: 4 x 256 covers 2^32 ticks (~49.7 days at 1 ms/tick);
  // farther-out timers park in an overflow list that re-enters the wheel
  // when the top level wraps. tick_ms sets the firing granularity: due times
  // are quantized to ticks (a 10 ms tick covers 497 days per rotation, which
  // is what the 90-day-lifetime fleet uses).
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 8;
  static constexpr uint64_t kSlots = 1ull << kSlotBits;

  explicit TimerWheel(uint64_t start_ms, uint64_t tick_ms = 1);

  // Registers `payload` to fire at `due_ms` (clamped to the next tick when
  // not in the future). Ids are dense and start at 1; id order IS schedule
  // order, which is what makes same-tick firing order reproducible.
  TimerId Schedule(uint64_t due_ms, uint64_t payload);

  // True when the timer was still pending (it will not fire). Cancellation
  // is lazy: the slot entry is skipped at fire/cascade time, so Cancel is
  // O(1) and never reshuffles slot contents.
  bool Cancel(TimerId id);

  // Fires every pending timer with fire tick <= now_ms/tick_ms, in
  // (fire_tick, seq) order, then sets the wheel's current time. The callback
  // receives (payload, due_ms as scheduled). Callbacks may Schedule new
  // timers — including for already-passed times, which clamp to the NEXT
  // tick: they fire later in the same call when the target covers them
  // (never re-entering the tick being fired, so self-scheduling cannot
  // loop), otherwise on the next AdvanceTo. Callbacks may also Cancel
  // not-yet-fired timers. Returns the number fired.
  size_t AdvanceTo(uint64_t now_ms,
                   const std::function<void(uint64_t payload, uint64_t due_ms)>& fire);

  // Earliest time (ms) at which AdvanceTo could fire or cascade something:
  // a lower bound on the next interesting instant, never later than the true
  // next fire time. UINT64_MAX when nothing is pending. The fleet loop
  // fast-forwards SimClock here instead of polling; because coarse slots
  // only bound their entries' due times, callers loop
  // {advance clock to bound; AdvanceTo} until something fires.
  uint64_t NextDueLowerBoundMs() const;

  size_t pending() const { return pending_; }
  uint64_t now_ms() const { return current_tick_ * tick_ms_; }
  // Total timers ever scheduled (== highest id).
  uint64_t scheduled_total() const { return next_seq_ - 1; }

 private:
  struct Entry {
    uint64_t fire_tick;  // due quantized + past-clamped: when it actually fires
    uint64_t due_ms;     // as scheduled, reported to the callback
    uint64_t seq;        // == TimerId
    uint64_t payload;
  };

  // Places an entry at the level whose window contains fire_tick (or the
  // overflow list), relative to current_tick_.
  void Place(Entry entry);
  // Moves every entry of (level, slot) one level down (or fires it into
  // `due_now` when its tick has arrived). Caller owns ordering concerns.
  void Cascade(int level, uint64_t slot, std::vector<Entry>* due_now);
  // Next tick at which `level` has an occupied slot strictly after
  // current_tick_ (in that level's units); UINT64_MAX if none this rotation.
  uint64_t NextOccupiedTick(int level) const;
  bool Alive(uint64_t seq) const {
    return seq < alive_.size() && alive_[seq];
  }
  void MarkDead(uint64_t seq) { alive_[seq] = false; }

  const uint64_t tick_ms_;
  uint64_t current_tick_;
  uint64_t next_seq_ = 1;
  size_t pending_ = 0;

  // slots_[level][slot]: unordered bag; order is reconstructed from seq at
  // fire time. occupancy_[level][word] mirrors non-emptiness for the
  // jump-scan (a bit may be stale-set for slots holding only cancelled
  // entries; it clears when the slot is visited).
  std::vector<Entry> slots_[kLevels][kSlots];
  uint64_t occupancy_[kLevels][kSlots / 64] = {};
  std::vector<Entry> overflow_;  // fire_tick beyond the top level's horizon
  uint64_t overflow_floor_tick_ = UINT64_MAX;  // min fire_tick parked there

  // Liveness journal keyed by seq (append-only; grows one bit per Schedule
  // for the wheel's lifetime — sized for simulation runs, where total
  // schedules are bounded and 10^7 timers cost ~1.2 MB).
  std::vector<bool> alive_{false};  // index 0 unused (kInvalidId)
};

}  // namespace nope

#endif  // SRC_BASE_TIMER_WHEEL_H_
