#include "src/base/mutator.h"

#include <algorithm>

namespace nope {

namespace {
constexpr int kMaxRetries = 16;
constexpr uint8_t kBoundaryBytes[] = {0x00, 0xff, 0x80, 0x7f, 0x01, 0x40};
}  // namespace

Bytes Mutator::ApplyOnce(Bytes data, const Bytes* donor) {
  // Strategies 0-7 need no donor; 8-9 splice donor material when present.
  uint64_t n_strategies = (donor != nullptr && !donor->empty()) ? 10 : 8;
  uint64_t strategy = rng_.NextBelow(n_strategies);
  if (data.empty() && strategy != 4) {
    strategy = 4;  // only extension is meaningful on an empty buffer
  }
  switch (strategy) {
    case 0: {  // single-bit flip
      size_t i = rng_.NextBelow(data.size());
      data[i] ^= static_cast<uint8_t>(1u << rng_.NextBelow(8));
      break;
    }
    case 1: {  // random byte overwrite
      size_t i = rng_.NextBelow(data.size());
      data[i] = static_cast<uint8_t>(rng_.NextU64());
      break;
    }
    case 2: {  // boundary-value byte overwrite
      size_t i = rng_.NextBelow(data.size());
      data[i] = kBoundaryBytes[rng_.NextBelow(sizeof(kBoundaryBytes))];
      break;
    }
    case 3: {  // truncation (possibly to empty)
      size_t keep = rng_.NextBelow(data.size());
      data.resize(keep);
      break;
    }
    case 4: {  // extension with random bytes
      Bytes extra = rng_.NextBytes(1 + rng_.NextBelow(16));
      size_t at = data.empty() ? 0 : rng_.NextBelow(data.size() + 1);
      data.insert(data.begin() + static_cast<ptrdiff_t>(at), extra.begin(),
                  extra.end());
      break;
    }
    case 5: {  // slice deletion
      size_t at = rng_.NextBelow(data.size());
      size_t len = 1 + rng_.NextBelow(std::min<size_t>(8, data.size() - at));
      data.erase(data.begin() + static_cast<ptrdiff_t>(at),
                 data.begin() + static_cast<ptrdiff_t>(at + len));
      break;
    }
    case 6: {  // slice duplication
      size_t at = rng_.NextBelow(data.size());
      size_t len = 1 + rng_.NextBelow(std::min<size_t>(8, data.size() - at));
      Bytes slice(data.begin() + static_cast<ptrdiff_t>(at),
                  data.begin() + static_cast<ptrdiff_t>(at + len));
      size_t dst = rng_.NextBelow(data.size() + 1);
      data.insert(data.begin() + static_cast<ptrdiff_t>(dst), slice.begin(),
                  slice.end());
      break;
    }
    case 7: {  // length-field corruption: rewrite a big-endian u16 in place
      if (data.size() < 2) {
        data.push_back(static_cast<uint8_t>(rng_.NextU64()));
        break;
      }
      size_t at = rng_.NextBelow(data.size() - 1);
      uint16_t v = static_cast<uint16_t>((data[at] << 8) | data[at + 1]);
      switch (rng_.NextBelow(4)) {
        case 0: v = 0; break;
        case 1: v = 0xffff; break;
        case 2: v = static_cast<uint16_t>(v + 1); break;
        default: v = static_cast<uint16_t>(v - 1); break;
      }
      data[at] = static_cast<uint8_t>(v >> 8);
      data[at + 1] = static_cast<uint8_t>(v);
      break;
    }
    case 8: {  // overwrite a slice with donor material at a random offset
      size_t len = 1 + rng_.NextBelow(std::min<size_t>(donor->size(), 32));
      size_t src = rng_.NextBelow(donor->size() - len + 1);
      size_t dst = rng_.NextBelow(data.size());
      for (size_t i = 0; i < len && dst + i < data.size(); ++i) {
        data[dst + i] = (*donor)[src + i];
      }
      break;
    }
    default: {  // case 9: swap tails at a common cut point
      size_t cut = rng_.NextBelow(std::min(data.size(), donor->size()) + 1);
      data.resize(cut);
      data.insert(data.end(), donor->begin() + static_cast<ptrdiff_t>(
                                  std::min(cut, donor->size())),
                  donor->end());
      break;
    }
  }
  return data;
}

Bytes Mutator::Mutate(const Bytes& original) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    Bytes mutant = ApplyOnce(original, nullptr);
    if (mutant != original) {
      return mutant;
    }
  }
  return original;
}

Bytes Mutator::Mutate(const Bytes& original, const Bytes& donor) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    Bytes mutant = ApplyOnce(original, &donor);
    if (mutant != original) {
      return mutant;
    }
  }
  return original;
}

std::string Mutator::MutateString(const std::string& original) {
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    std::string s = original;
    uint64_t strategy = rng_.NextBelow(7);
    if (s.empty() && strategy != 3) {
      strategy = 3;
    }
    switch (strategy) {
      case 0: {  // substitute an arbitrary byte (often out-of-alphabet)
        static const char kChars[] =
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ_!@#$%^&*+=~`?/\\|{}[]<>,:;\" '\t\x7f"
            "\x80\xff\x01";
        s[rng_.NextBelow(s.size())] =
            kChars[rng_.NextBelow(sizeof(kChars) - 1)];
        break;
      }
      case 1: {  // flip case of a letter
        size_t i = rng_.NextBelow(s.size());
        if (s[i] >= 'a' && s[i] <= 'z') {
          s[i] = static_cast<char>(s[i] - 'a' + 'A');
        } else if (s[i] >= 'A' && s[i] <= 'Z') {
          s[i] = static_cast<char>(s[i] - 'A' + 'a');
        } else {
          s[i] = 'Z';
        }
        break;
      }
      case 2: {  // insert or remove a dot (label-structure corruption)
        size_t i = rng_.NextBelow(s.size() + 1);
        if (rng_.NextBelow(2) == 0 || i == s.size()) {
          s.insert(s.begin() + static_cast<ptrdiff_t>(i), '.');
        } else if (s[i] == '.') {
          s.erase(s.begin() + static_cast<ptrdiff_t>(i));
        } else {
          s[i] = '.';
        }
        break;
      }
      case 3: {  // extension with alphabet chars (over-length labels)
        static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789-";
        size_t n = 1 + rng_.NextBelow(64);
        size_t at = rng_.NextBelow(s.size() + 1);
        std::string extra;
        for (size_t i = 0; i < n; ++i) {
          extra.push_back(kAlpha[rng_.NextBelow(sizeof(kAlpha) - 1)]);
        }
        s.insert(at, extra);
        break;
      }
      case 4: {  // truncation
        s.resize(rng_.NextBelow(s.size()));
        break;
      }
      case 5: {  // duplicate a span
        size_t at = rng_.NextBelow(s.size());
        size_t len = 1 + rng_.NextBelow(std::min<size_t>(16, s.size() - at));
        s.insert(rng_.NextBelow(s.size() + 1), s.substr(at, len));
        break;
      }
      default: {  // swap two characters
        size_t i = rng_.NextBelow(s.size());
        size_t j = rng_.NextBelow(s.size());
        std::swap(s[i], s[j]);
        break;
      }
    }
    if (s != original) {
      return s;
    }
  }
  return original;
}

}  // namespace nope
