#include "src/base/threadpool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>

#include "src/base/cancellation.h"

namespace nope {

namespace {

// Set for the lifetime of each worker thread; ParallelFor consults it to run
// nested calls inline instead of re-entering the queue.
thread_local bool tls_in_worker = false;

std::mutex g_global_mu;
std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  size_t workers = num_threads > 1 ? num_threads - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
  // Workers exit immediately on stop_, so tasks that never started may still
  // sit in the queue (a ParallelFor racing shutdown after its cancellation
  // token fired). Their bodies must NOT run once destruction began, but
  // their owners are blocked waiting on the completion protocol — complete
  // them body-free so no waiter deadlocks.
  std::deque<Task> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(queue_);
  }
  for (Task& task : orphans) {
    task.complete();
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) {
        return;  // shutdown: leftover tasks are completed by the destructor
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.run();
    task.complete();
  }
}

void ThreadPool::Enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(task));
      cv_.notify_one();
      return;
    }
  }
  // Pool already shutting down: never run the body, but never strand the
  // owner either.
  task.complete();
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(begin, end, min_chunk, fn, nullptr);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& fn,
                             const CancellationToken* cancel) {
  if (end <= begin) {
    return;
  }
  size_t count = end - begin;
  if (min_chunk == 0) {
    min_chunk = 1;
  }
  size_t shares = std::min(workers_.size() + 1, (count + min_chunk - 1) / min_chunk);
  if (shares <= 1 || tls_in_worker) {
    if (cancel == nullptr || !cancel->cancelled()) {
      fn(begin, end);
    }
    return;
  }

  // Per-call completion state shared with the enqueued tasks. Tasks may
  // outlive this stack frame only until `pending` hits zero, which the
  // caller waits for, so a shared_ptr keeps the state alive either way.
  struct ForState {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<ForState>();
  state->pending = shares - 1;

  size_t base = count / shares;
  size_t extra = count % shares;
  // Share i covers [begin + i*base + min(i, extra), ...) -- contiguous,
  // balanced to within one element. Share 0 runs on the calling thread.
  auto share_bounds = [&](size_t i) {
    size_t lo = begin + i * base + std::min(i, extra);
    size_t hi = lo + base + (i < extra ? 1 : 0);
    return std::pair<size_t, size_t>(lo, hi);
  };

  for (size_t i = 1; i < shares; ++i) {
    auto [lo, hi] = share_bounds(i);
    Task task;
    task.run = [state, &fn, cancel, lo, hi] {
      try {
        if (cancel == nullptr || !cancel->cancelled()) {
          fn(lo, hi);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
      }
    };
    task.complete = [state] {
      std::lock_guard<std::mutex> lock(state->mu);
      if (--state->pending == 0) {
        state->cv.notify_all();
      }
    };
    Enqueue(std::move(task));
  }

  auto [lo0, hi0] = share_bounds(0);
  try {
    if (cancel == nullptr || !cancel->cancelled()) {
      fn(lo0, hi0);
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (!state->first_error) {
      state->first_error = std::current_exception();
    }
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->pending == 0; });
  if (state->first_error) {
    std::exception_ptr err = state->first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool ThreadPool::InWorker() { return tls_in_worker; }

size_t ThreadPool::ParseThreadCount(const char* value, size_t fallback) {
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  uint64_t v = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return fallback;  // signs, whitespace, hex, trailing garbage
    }
    v = v * 10 + static_cast<uint64_t>(*p - '0');
    if (v > kMaxThreads) {
      return fallback;  // also guards the accumulator against overflow
    }
  }
  return v == 0 ? fallback : static_cast<size_t>(v);
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  size_t fallback = hw > 0 ? hw : 1;
  return ParseThreadCount(std::getenv("NOPE_THREADS"), fallback);
}

size_t ThreadPool::HardwareLanes() {
  static const size_t lanes = [] {
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : size_t{1};
  }();
  return lanes;
}

size_t ThreadPool::ComputeMinChunk(size_t count, size_t min_chunk) {
  if (min_chunk == 0) {
    min_chunk = 1;
  }
  size_t lanes = HardwareLanes();
  size_t per_lane = (count + lanes - 1) / lanes;
  return std::max(min_chunk, per_lane);
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = GlobalSlot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(DefaultThreadCount());
  }
  return *slot;
}

void ThreadPool::SetGlobalThreads(size_t n) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = GlobalSlot();
  slot.reset();
  slot = std::make_unique<ThreadPool>(n > 0 ? n : DefaultThreadCount());
}

size_t ThreadPool::GlobalThreads() { return Global().num_threads(); }

}  // namespace nope
