#ifndef NOPE_BASE_RESULT_H_
#define NOPE_BASE_RESULT_H_

// Structured error propagation for the untrusted-input surface.
//
// Every function that parses or validates attacker-controlled bytes (proof
// deserialization, SAN decoding, DCE bundles, DNSSEC wire records,
// certificate chains) returns Result<T> / Status instead of throwing.
// Exceptions remain allowed on trusted, prover-side paths (setup, issuance,
// serialization of locally built objects) where a throw indicates a
// programming error rather than hostile input.

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace nope {

// Coarse taxonomy of parse/validation failures. Keep the list short: the
// context string carries the specifics, the code carries the class.
enum class ErrorCode {
  kTruncated,       // input ended before a required field
  kTrailingBytes,   // input continued past the end of the encoding
  kBadLength,       // a size/count field or overall length is out of spec
  kBadEncoding,     // structurally malformed (bad tag, bad char, bad prefix)
  kBadChecksum,     // checksum or digest mismatch
  kNotOnCurve,      // decoded point fails the curve equation
  kNotInSubgroup,   // decoded point is on the curve but outside the r-order subgroup
  kBadSignature,    // cryptographic signature verification failed
  kMismatch,        // two fields that must agree do not (names, types, key tags)
  kMissing,         // an expected component is absent entirely
  kOutOfRange,      // numeric field outside its legal range
  // Lifecycle / dependency-failure classes (issuance & renewal, PR 3):
  kTimedOut,        // a dependency did not answer within its deadline
  kUnavailable,     // a dependency answered with a failure (SERVFAIL, throttle)
  kCancelled,       // the operation was cancelled (deadline or explicit)
  // DNSSEC validation taxonomy (RFC 4035 §4.3): the chain of trust ends at an
  // unsigned delegation, so the answer is neither secure nor bogus.
  kInsecure,
};
constexpr int kNumErrorCodes = static_cast<int>(ErrorCode::kInsecure) + 1;

const char* ErrorCodeName(ErrorCode code);

struct Error {
  ErrorCode code;
  std::string context;

  Error(ErrorCode c, std::string ctx) : code(c), context(std::move(ctx)) {}

  std::string ToString() const {
    std::string out = ErrorCodeName(code);
    if (!context.empty()) {
      out += ": ";
      out += context;
    }
    return out;
  }
};

// Status: success or an Error. Used by validators that produce no value.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(runtime/explicit)
  Status(ErrorCode code, std::string context)
      : error_(Error(code, std::move(context))) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const Error& error() const { return *error_; }
  std::string ToString() const { return ok() ? "ok" : error_->ToString(); }

 private:
  std::optional<Error> error_;
};

// Result<T>: a value or an Error. Implicitly constructible from both so
// parsers can `return value;` and `return Error(...);` symmetrically.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Error error) : rep_(std::move(error)) {}  // NOLINT(runtime/explicit)
  Result(ErrorCode code, std::string context)
      : rep_(Error(code, std::move(context))) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const Error& error() const { return std::get<Error>(rep_); }

  // Converts to Status, dropping the value.
  Status status() const {
    return ok() ? Status::Ok() : Status(std::get<Error>(rep_));
  }

 private:
  std::variant<T, Error> rep_;
};

}  // namespace nope

// Macro plumbing. NOPE_ASSIGN_OR_RETURN evaluates `expr` (a Result<T>),
// returns the error on failure, and otherwise moves the value into `lhs`:
//
//   NOPE_ASSIGN_OR_RETURN(DnsName name, DnsName::TryFromWire(bytes, &pos));
//
// NOPE_RETURN_IF_ERROR does the same for Status (or Result, via .status()).
#define NOPE_RESULT_CONCAT_INNER_(a, b) a##b
#define NOPE_RESULT_CONCAT_(a, b) NOPE_RESULT_CONCAT_INNER_(a, b)

#define NOPE_ASSIGN_OR_RETURN(lhs, expr)                              \
  NOPE_ASSIGN_OR_RETURN_IMPL_(                                        \
      NOPE_RESULT_CONCAT_(nope_result_tmp_, __LINE__), lhs, expr)

#define NOPE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.error();                \
  lhs = std::move(tmp).value()

#define NOPE_RETURN_IF_ERROR(expr)                                  \
  do {                                                              \
    auto nope_status_tmp_ = (expr);                                 \
    if (!nope_status_tmp_.ok()) return nope_status_tmp_.error();    \
  } while (0)

#endif  // NOPE_BASE_RESULT_H_
