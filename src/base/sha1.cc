#include "src/base/sha1.h"

#include <cstring>

namespace nope {

namespace {
uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }
}  // namespace

Bytes Sha1Hash(const Bytes& data) {
  uint32_t h[5] = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0};

  Bytes msg = data;
  uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  msg.push_back(0x80);
  while (msg.size() % 64 != 56) {
    msg.push_back(0);
  }
  for (int i = 0; i < 8; ++i) {
    msg.push_back(static_cast<uint8_t>(bit_len >> (56 - 8 * i)));
  }

  for (size_t block = 0; block < msg.size(); block += 64) {
    uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(msg[block + 4 * i]) << 24) |
             (static_cast<uint32_t>(msg[block + 4 * i + 1]) << 16) |
             (static_cast<uint32_t>(msg[block + 4 * i + 2]) << 8) | msg[block + 4 * i + 3];
    }
    for (int i = 16; i < 80; ++i) {
      w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int i = 0; i < 80; ++i) {
      uint32_t f, k;
      if (i < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999;
      } else if (i < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1;
      } else if (i < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDC;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6;
      }
      uint32_t temp = Rotl(a, 5) + f + e + k + w[i];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }

  Bytes out(20);
  for (int i = 0; i < 5; ++i) {
    out[4 * i] = static_cast<uint8_t>(h[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(h[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(h[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(h[i]);
  }
  return out;
}

}  // namespace nope
