#include "src/base/result.h"

namespace nope {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTruncated:
      return "truncated";
    case ErrorCode::kTrailingBytes:
      return "trailing_bytes";
    case ErrorCode::kBadLength:
      return "bad_length";
    case ErrorCode::kBadEncoding:
      return "bad_encoding";
    case ErrorCode::kBadChecksum:
      return "bad_checksum";
    case ErrorCode::kNotOnCurve:
      return "not_on_curve";
    case ErrorCode::kNotInSubgroup:
      return "not_in_subgroup";
    case ErrorCode::kBadSignature:
      return "bad_signature";
    case ErrorCode::kMismatch:
      return "mismatch";
    case ErrorCode::kMissing:
      return "missing";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kTimedOut:
      return "timed_out";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kInsecure:
      return "insecure";
  }
  return "unknown";
}

}  // namespace nope
