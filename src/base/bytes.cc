#include "src/base/bytes.h"

#include <stdexcept>

namespace nope {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  throw std::invalid_argument("invalid hex digit");
}
}  // namespace

std::string EncodeHex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes DecodeHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("odd-length hex string");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((HexValue(hex[i]) << 4) | HexValue(hex[i + 1])));
  }
  return out;
}

void AppendU8(Bytes* out, uint8_t v) { out->push_back(v); }

void AppendU16(Bytes* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v));
}

void AppendU32(Bytes* out, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendU64(Bytes* out, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendBytes(Bytes* out, const Bytes& data) {
  out->insert(out->end(), data.begin(), data.end());
}

namespace {
void CheckAvailable(const Bytes& in, size_t pos, size_t n) {
  if (pos + n > in.size()) {
    throw std::out_of_range("read past end of buffer");
  }
}
}  // namespace

uint8_t ReadU8(const Bytes& in, size_t* pos) {
  CheckAvailable(in, *pos, 1);
  return in[(*pos)++];
}

uint16_t ReadU16(const Bytes& in, size_t* pos) {
  CheckAvailable(in, *pos, 2);
  uint16_t v = static_cast<uint16_t>((in[*pos] << 8) | in[*pos + 1]);
  *pos += 2;
  return v;
}

uint32_t ReadU32(const Bytes& in, size_t* pos) {
  CheckAvailable(in, *pos, 4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | in[*pos + i];
  }
  *pos += 4;
  return v;
}

uint64_t ReadU64(const Bytes& in, size_t* pos) {
  CheckAvailable(in, *pos, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | in[*pos + i];
  }
  *pos += 8;
  return v;
}

Bytes ReadBytes(const Bytes& in, size_t* pos, size_t n) {
  CheckAvailable(in, *pos, n);
  Bytes out(in.begin() + static_cast<ptrdiff_t>(*pos),
            in.begin() + static_cast<ptrdiff_t>(*pos + n));
  *pos += n;
  return out;
}

namespace {
// Overflow-safe availability check for attacker-controlled lengths.
bool Available(const Bytes& in, size_t pos, size_t n) {
  return pos <= in.size() && n <= in.size() - pos;
}
}  // namespace

Result<uint8_t> TryReadU8(const Bytes& in, size_t* pos) {
  if (!Available(in, *pos, 1)) {
    return Error(ErrorCode::kTruncated, "u8 read past end of buffer");
  }
  return in[(*pos)++];
}

Result<uint16_t> TryReadU16(const Bytes& in, size_t* pos) {
  if (!Available(in, *pos, 2)) {
    return Error(ErrorCode::kTruncated, "u16 read past end of buffer");
  }
  uint16_t v = static_cast<uint16_t>((in[*pos] << 8) | in[*pos + 1]);
  *pos += 2;
  return v;
}

Result<uint32_t> TryReadU32(const Bytes& in, size_t* pos) {
  if (!Available(in, *pos, 4)) {
    return Error(ErrorCode::kTruncated, "u32 read past end of buffer");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | in[*pos + i];
  }
  *pos += 4;
  return v;
}

Result<uint64_t> TryReadU64(const Bytes& in, size_t* pos) {
  if (!Available(in, *pos, 8)) {
    return Error(ErrorCode::kTruncated, "u64 read past end of buffer");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | in[*pos + i];
  }
  *pos += 8;
  return v;
}

Result<Bytes> TryReadBytes(const Bytes& in, size_t* pos, size_t n) {
  if (!Available(in, *pos, n)) {
    return Error(ErrorCode::kTruncated, "byte read past end of buffer");
  }
  Bytes out(in.begin() + static_cast<ptrdiff_t>(*pos),
            in.begin() + static_cast<ptrdiff_t>(*pos + n));
  *pos += n;
  return out;
}

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("NextBelow bound must be non-zero");
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i < n) {
    uint64_t v = NextU64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

}  // namespace nope
