#include "src/base/cpu_features.h"

namespace nope {

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx512F() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

bool CpuHasNeon() {
#if defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  return true;
#else
  return false;
#endif
}

}  // namespace nope
