#include "src/base/clock.h"

#include <chrono>
#include <thread>

namespace nope {

uint64_t RealClock::NowMs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void RealClock::SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

uint64_t Deadline::RemainingMs() const {
  if (clock_ == nullptr) {
    return UINT64_MAX;
  }
  uint64_t now = clock_->NowMs();
  return now >= expires_at_ms_ ? 0 : expires_at_ms_ - now;
}

uint64_t RetryPolicy::BackoffMs(size_t attempt) const {
  // Walk the geometric sequence in integer space, clamping as soon as the
  // cap is reached so large attempt counts cannot overflow.
  double delay = static_cast<double>(initial_delay_ms);
  for (size_t i = 0; i < attempt; ++i) {
    delay *= multiplier;
    if (delay >= static_cast<double>(max_delay_ms)) {
      return max_delay_ms;
    }
  }
  uint64_t out = static_cast<uint64_t>(delay);
  return out > max_delay_ms ? max_delay_ms : out;
}

uint64_t RetryPolicy::DelayMs(size_t attempt, Rng* rng) const {
  uint64_t base = BackoffMs(attempt);
  uint64_t width = static_cast<uint64_t>(static_cast<double>(base) * jitter_fraction);
  // Uniform in [base - width, base + width]; one draw regardless of width so
  // the Rng stream stays aligned across policies.
  uint64_t offset = rng->NextBelow(2 * width + 1);
  return base - width + offset;
}

std::vector<uint64_t> RetryPolicy::Schedule(uint64_t budget_ms, Rng* rng) const {
  std::vector<uint64_t> delays;
  uint64_t spent = 0;
  for (size_t attempt = 0; attempt + 1 < max_attempts; ++attempt) {
    uint64_t d = DelayMs(attempt, rng);
    if (spent + d > budget_ms) {
      break;
    }
    spent += d;
    delays.push_back(d);
  }
  return delays;
}

}  // namespace nope
