#include "src/base/clock.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace nope {

uint64_t RealClock::NowMs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

void RealClock::SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

RealClock* RealClock::Get() {
  static RealClock clock;
  return &clock;
}

uint64_t Deadline::RemainingMs() const {
  if (clock_ == nullptr) {
    return UINT64_MAX;
  }
  uint64_t now = clock_->NowMs();
  return now >= expires_at_ms_ ? 0 : expires_at_ms_ - now;
}

uint64_t RetryPolicy::BackoffMs(size_t attempt) const {
  // Walk the geometric sequence, checking the cap BEFORE each multiply: once
  // the cap is reached the answer is known, so no intermediate value ever
  // exceeds it and a double near 2^64 is never cast to uint64_t (UB). This
  // makes max_delay_ms = UINT64_MAX (effectively uncapped budgets) and
  // astronomically large attempt counts safe: growth reaches any cap in
  // O(log(cap/initial)) iterations.
  uint64_t delay = initial_delay_ms;
  if (delay >= max_delay_ms) {
    return max_delay_ms;
  }
  if (delay == 0 || multiplier == 1.0) {
    return delay;  // non-growing sequence: attempt count is irrelevant
  }
  for (size_t i = 0; i < attempt; ++i) {
    double next = static_cast<double>(delay) * multiplier;
    // >= catches inf from huge multipliers too. Comparing in double is safe
    // here: when next is below the cap it is also well below 2^63, where
    // every integer-valued double converts exactly.
    if (next >= static_cast<double>(max_delay_ms)) {
      return max_delay_ms;
    }
    delay = static_cast<uint64_t>(next);
    if (delay == 0) {
      return 0;  // shrinking multiplier underflowed: it stays 0 forever
    }
  }
  return delay;
}

uint64_t RetryPolicy::DelayMs(size_t attempt, Rng* rng) const {
  uint64_t base = BackoffMs(attempt);
  double width_fp = static_cast<double>(base) * jitter_fraction;
  // jitter_fraction <= 1 bounds width by base, but the double product can
  // round up to 2^64 when base is near UINT64_MAX — clamp in floating point
  // before the cast, then clamp so base + width cannot wrap. Both clamps
  // keep the window inside [0, UINT64_MAX] without touching the common case.
  uint64_t width = width_fp >= static_cast<double>(UINT64_MAX)
                       ? base
                       : static_cast<uint64_t>(width_fp);
  width = std::min(width, base);              // jitter window never negative
  width = std::min(width, UINT64_MAX - base); // upper edge never wraps
  // Uniform in [base - width, base + width]; one draw regardless of width so
  // the Rng stream stays aligned across policies. With width <= base and
  // width <= UINT64_MAX - base, 2 * width + 1 cannot overflow.
  uint64_t offset = rng->NextBelow(2 * width + 1);
  return base - width + offset;
}

std::vector<uint64_t> RetryPolicy::Schedule(uint64_t budget_ms, Rng* rng) const {
  std::vector<uint64_t> delays;
  uint64_t spent = 0;
  for (size_t attempt = 0; attempt + 1 < max_attempts; ++attempt) {
    uint64_t d = DelayMs(attempt, rng);
    // spent <= budget_ms is a loop invariant, so this comparison is the
    // overflow-free form of `spent + d > budget_ms` even at UINT64_MAX
    // budgets and delays.
    if (d > budget_ms - spent) {
      break;
    }
    spent += d;
    delays.push_back(d);
  }
  return delays;
}

}  // namespace nope
