// HMAC-SHA256 (RFC 2104), used by RFC 6979 deterministic ECDSA nonces.
#ifndef SRC_BASE_HMAC_H_
#define SRC_BASE_HMAC_H_

#include "src/base/bytes.h"

namespace nope {

Bytes HmacSha256(const Bytes& key, const Bytes& message);

}  // namespace nope

#endif  // SRC_BASE_HMAC_H_
