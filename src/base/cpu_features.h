// Runtime CPU-capability detection for the SIMD field-arithmetic dispatch
// (src/ff/fp_simd.*). Each predicate answers "does the running CPU support
// this extension", independent of whether the matching kernel was compiled
// in; the dispatch layer combines both conditions plus the NOPE_SIMD
// environment override.
#ifndef SRC_BASE_CPU_FEATURES_H_
#define SRC_BASE_CPU_FEATURES_H_

namespace nope {

// True when the running CPU supports the extension. Always false on
// architectures where the extension does not exist.
bool CpuHasAvx2();
bool CpuHasAvx512F();
bool CpuHasNeon();

}  // namespace nope

#endif  // SRC_BASE_CPU_FEATURES_H_
