// Fixed-size thread pool driving the prover's data-parallel loops (MSM
// bucket accumulation, FFT butterfly stages, per-wire QAP evaluations).
//
// Design constraints, in order:
//   1. Determinism: thread count must never change output bytes. The pool
//      therefore does no work stealing and no dynamic load balancing that a
//      caller could observe; callers either (a) write disjoint elements whose
//      values are order-independent (canonical Montgomery field elements), or
//      (b) fix their chunk layout as a function of the input size only and
//      merge chunk results in serial chunk order (MSM buckets, whose Jacobian
//      representation is order-sensitive).
//   2. No nested parallelism: a ParallelFor issued from inside a pool task
//      runs inline on that worker (serial), so recursive fan-out can neither
//      deadlock the fixed-size pool nor oversubscribe the machine.
//   3. Exceptions raised by tasks are captured and rethrown on the calling
//      thread after the loop completes; the pool stays usable.
//
// Thread count: ThreadPool::Global() sizes itself from the NOPE_THREADS
// environment variable, falling back to std::thread::hardware_concurrency().
// SetGlobalThreads(n) replaces the global pool (n == 0 restores the
// environment default); it must not race with in-flight parallel work and
// exists for benchmarks (threads=1 vs threads=N) and determinism tests.
#ifndef SRC_BASE_THREADPOOL_H_
#define SRC_BASE_THREADPOOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nope {

class CancellationToken;

class ThreadPool {
 public:
  // A pool of `num_threads` total lanes: the calling thread participates in
  // every ParallelFor, so `num_threads == 1` spawns no workers at all and
  // every loop runs inline.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total lanes (workers + the participating caller).
  size_t num_threads() const { return workers_.size() + 1; }

  // Invokes fn on disjoint subranges that exactly cover [begin, end). Each
  // subrange holds at least min_chunk elements (except possibly the last),
  // and at most num_threads() subranges are created. Returns after every
  // subrange completed; rethrows the first task exception on this thread.
  //
  // The subrange boundaries depend on the pool size, so fn must be safe to
  // call with ANY partition of [begin, end): either each index's work is
  // independent and order-insensitive, or the caller fixes its own
  // deterministic chunk grid and uses ParallelFor only over chunk indices.
  //
  // Zero-size ranges return immediately without invoking fn. Calls from
  // inside a pool task run fn(begin, end) inline (nested-parallelism
  // rejection, see header comment).
  void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& fn);

  // Cancellation-aware variant: each share polls `cancel` immediately before
  // invoking fn and skips its subrange when the token has fired, so a
  // deadline-overrunning proving job abandons queued work at share
  // granularity. The loop still joins every share before returning (the pool
  // stays reusable), but the output buffers are garbage once any share was
  // skipped — callers must check the token afterwards and discard partial
  // results. A null or never-firing token behaves exactly like the overload
  // above. Long-running fn bodies should also poll at their own chunk
  // boundaries (Msm and the FFT family do).
  void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& fn,
                   const CancellationToken* cancel);

  // True when the calling thread is one of this process's pool workers.
  static bool InWorker();

  // Process-wide pool shared by MSM / FFT / prover loops. Created on first
  // use with DefaultThreadCount() lanes.
  static ThreadPool& Global();

  // Replaces the global pool with one of `n` lanes (0 = DefaultThreadCount()).
  // Callers must ensure no parallel work is in flight.
  static void SetGlobalThreads(size_t n);

  // Lanes of the current global pool (creates it if needed).
  static size_t GlobalThreads();

  // NOPE_THREADS if it parses to a sane positive integer, else
  // hardware_concurrency() (else 1). Exposed for tests.
  static size_t DefaultThreadCount();

  // Physical lanes the machine offers (hardware_concurrency, at least 1),
  // cached after the first call. Unlike DefaultThreadCount this ignores
  // NOPE_THREADS: it describes the hardware, not the requested pool size.
  static size_t HardwareLanes();

  // Minimum chunk size for a compute loop over `count` elements: at least
  // `min_chunk`, and large enough that no more than HardwareLanes() shares
  // are created. With an oversubscribed pool (more lanes than cores) the
  // extra shares only add queueing and cache-contention overhead, so compute
  // call sites cap their fan-out at the physical core count. This changes
  // only how work is partitioned across threads, never the chunk grids that
  // callers fix as functions of input size, so results stay bit-identical.
  static size_t ComputeMinChunk(size_t count, size_t min_chunk);

  // Upper bound on an environment-requested thread count. Values above this
  // are treated as misconfiguration (fat-finger or overflow), not honored.
  static constexpr size_t kMaxThreads = 512;

  // Strict parser behind DefaultThreadCount, exposed for tests. Returns
  // `fallback` unless `value` is a plain decimal integer in
  // [1, kMaxThreads]: null/empty strings, non-digit characters (including
  // signs, whitespace, and trailing garbage), zero, and huge values all fall
  // back instead of silently truncating the way atoi-style parsing would.
  static size_t ParseThreadCount(const char* value, size_t fallback);

 private:
  // Queue entries split the body from the completion protocol so shutdown
  // can honor one without the other: `run` is the share's work (skippable),
  // `complete` signals the owning ParallelFor and is invoked exactly once no
  // matter how the task leaves the queue. Once the destructor has set stop_,
  // queued-but-unstarted tasks are completed WITHOUT running their bodies —
  // a ParallelFor racing shutdown (legal only with a fired
  // CancellationToken, whose shares skip fn anyway) can therefore neither
  // deadlock the join nor observe fn running after destruction began.
  struct Task {
    std::function<void()> run;
    std::function<void()> complete;
  };

  void WorkerLoop();
  void Enqueue(Task task);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace nope

#endif  // SRC_BASE_THREADPOOL_H_
