// Basic byte-buffer utilities shared across the NOPE library.
#ifndef SRC_BASE_BYTES_H_
#define SRC_BASE_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace nope {

using Bytes = std::vector<uint8_t>;

// Hex encoding/decoding. DecodeHex throws std::invalid_argument on bad input.
std::string EncodeHex(const Bytes& data);
Bytes DecodeHex(const std::string& hex);

// Appends big-endian fixed-width integers; used by wire formats throughout.
void AppendU8(Bytes* out, uint8_t v);
void AppendU16(Bytes* out, uint16_t v);
void AppendU32(Bytes* out, uint32_t v);
void AppendU64(Bytes* out, uint64_t v);
void AppendBytes(Bytes* out, const Bytes& data);

// Big-endian reads; throw std::out_of_range when the buffer is too short.
// Only for trusted, locally produced buffers — untrusted parsers use the
// Try* variants below.
uint8_t ReadU8(const Bytes& in, size_t* pos);
uint16_t ReadU16(const Bytes& in, size_t* pos);
uint32_t ReadU32(const Bytes& in, size_t* pos);
uint64_t ReadU64(const Bytes& in, size_t* pos);
Bytes ReadBytes(const Bytes& in, size_t* pos, size_t n);

// Non-throwing reads for attacker-controlled buffers; return
// ErrorCode::kTruncated when the buffer is too short.
Result<uint8_t> TryReadU8(const Bytes& in, size_t* pos);
Result<uint16_t> TryReadU16(const Bytes& in, size_t* pos);
Result<uint32_t> TryReadU32(const Bytes& in, size_t* pos);
Result<uint64_t> TryReadU64(const Bytes& in, size_t* pos);
Result<Bytes> TryReadBytes(const Bytes& in, size_t* pos, size_t n);

// Deterministic pseudo-random generator (xoshiro256**). Not cryptographically
// secure; used for reproducible test fixtures, simulation noise, and key
// generation in the simulated hierarchy.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, bound). bound must be non-zero.
  uint64_t NextBelow(uint64_t bound);
  Bytes NextBytes(size_t n);

 private:
  uint64_t s_[4];
};

}  // namespace nope

#endif  // SRC_BASE_BYTES_H_
