// Time abstraction for the issuance & renewal lifecycle.
//
// Production code takes a Clock* so every time-dependent behavior (deadlines,
// retry backoff, renewal scheduling) can run against SimClock in tests: a
// multi-day renewal scenario executes in milliseconds, and two runs with the
// same seed produce byte-identical event logs because no real time ever
// leaks in. RealClock is the production implementation.
//
// Deadline and RetryPolicy are the two policy primitives built on Clock:
// a Deadline is an absolute expiry instant checked cooperatively (see
// src/base/cancellation.h for the token that propagates it into parallel
// loops), and RetryPolicy computes seeded-jitter exponential backoff
// schedules whose bytes are a pure function of (policy, rng state).
#ifndef SRC_BASE_CLOCK_H_
#define SRC_BASE_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/bytes.h"

namespace nope {

class Clock {
 public:
  virtual ~Clock() = default;

  // Milliseconds since an implementation-defined epoch. Monotone
  // non-decreasing. Thread-safe.
  virtual uint64_t NowMs() const = 0;

  // Advances time by `ms`: RealClock blocks the calling thread, SimClock
  // advances instantly. Simulation code must "wait" through this call (never
  // through std::this_thread) so scenarios stay fast and deterministic.
  virtual void SleepMs(uint64_t ms) = 0;
};

// Wall-clock implementation backed by std::chrono::steady_clock.
class RealClock : public Clock {
 public:
  uint64_t NowMs() const override;
  void SleepMs(uint64_t ms) override;

  // Shared process-wide instance (stateless).
  static RealClock* Get();
};

// Deterministic simulated clock. NowMs is an atomic read so cancellation
// tokens may poll it from pool workers while the owning (single) simulation
// thread advances it.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_ms = 0) : now_ms_(start_ms) {}

  uint64_t NowMs() const override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void SleepMs(uint64_t ms) override { AdvanceMs(ms); }
  void AdvanceMs(uint64_t ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ms_;
};

// An absolute expiry instant on a specific clock. Value type; copying is
// cheap and the referenced clock must outlive every copy. A
// default-constructed Deadline is infinite (never expires).
class Deadline {
 public:
  Deadline() = default;
  Deadline(const Clock* clock, uint64_t expires_at_ms)
      : clock_(clock), expires_at_ms_(expires_at_ms) {}

  static Deadline After(const Clock& clock, uint64_t ms) {
    return Deadline(&clock, clock.NowMs() + ms);
  }
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return clock_ == nullptr; }
  bool Expired() const {
    return clock_ != nullptr && clock_->NowMs() >= expires_at_ms_;
  }
  // 0 when expired; UINT64_MAX when infinite.
  uint64_t RemainingMs() const;

  const Clock* clock() const { return clock_; }
  uint64_t expires_at_ms() const { return expires_at_ms_; }

 private:
  const Clock* clock_ = nullptr;
  uint64_t expires_at_ms_ = 0;
};

// Exponential backoff with seeded jitter. All randomness flows through the
// caller's Rng, so a (policy, seed) pair reproduces the exact delay sequence;
// the jittered delay for attempt i is uniform in
// [BackoffMs(i) * (1 - jitter_fraction), BackoffMs(i) * (1 + jitter_fraction)].
struct RetryPolicy {
  uint64_t initial_delay_ms = 100;
  uint64_t max_delay_ms = 30'000;
  double multiplier = 2.0;
  double jitter_fraction = 0.2;  // must be in [0, 1]
  size_t max_attempts = 5;       // total tries, including the first

  // Deterministic (un-jittered) backoff before retry `attempt` (0-based:
  // attempt 0 is the delay after the first failure): initial * multiplier^i,
  // capped at max_delay_ms.
  uint64_t BackoffMs(size_t attempt) const;

  // Jittered delay, consuming exactly one Rng draw.
  uint64_t DelayMs(size_t attempt, Rng* rng) const;

  // The full delay schedule truncated to a total budget: successive jittered
  // delays while the running sum stays within `budget_ms`, never more than
  // max_attempts - 1 entries (the first try needs no delay). An entry that
  // would push the cumulative sum past the budget is dropped and the
  // schedule ends there.
  std::vector<uint64_t> Schedule(uint64_t budget_ms, Rng* rng) const;
};

}  // namespace nope

#endif  // SRC_BASE_CLOCK_H_
