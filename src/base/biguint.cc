#include "src/base/biguint.h"

#include <algorithm>
#include <stdexcept>

namespace nope {

using uint128 = unsigned __int128;

BigUInt::BigUInt(uint64_t v) {
  if (v != 0) {
    limbs_.push_back(v);
  }
}

void BigUInt::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigUInt BigUInt::FromHex(const std::string& hex_in) {
  std::string hex = hex_in;
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex = hex.substr(2);
  }
  if (hex.size() % 2 != 0) {
    hex = "0" + hex;
  }
  return FromBytes(DecodeHex(hex));
}

BigUInt BigUInt::FromDecimal(const std::string& dec) {
  BigUInt out;
  BigUInt ten(10);
  for (char c : dec) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("invalid decimal digit");
    }
    out = out * ten + BigUInt(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

BigUInt BigUInt::FromBytes(const Bytes& bytes) {
  BigUInt out;
  size_t nlimbs = (bytes.size() + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    // bytes are big-endian; byte i contributes to bit position from the top.
    size_t byte_from_lsb = bytes.size() - 1 - i;
    out.limbs_[byte_from_lsb / 8] |= static_cast<uint64_t>(bytes[i]) << (8 * (byte_from_lsb % 8));
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::FromLimbsLE(const uint64_t* limbs, size_t n) {
  BigUInt out;
  out.limbs_.assign(limbs, limbs + n);
  out.Normalize();
  return out;
}

BigUInt BigUInt::Random(Rng* rng, size_t bits) {
  if (bits == 0) {
    return BigUInt();
  }
  BigUInt out;
  size_t nlimbs = (bits + 63) / 64;
  out.limbs_.resize(nlimbs);
  for (auto& l : out.limbs_) {
    l = rng->NextU64();
  }
  size_t top_bits = bits - (nlimbs - 1) * 64;
  if (top_bits < 64) {
    out.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
  }
  out.limbs_.back() |= uint64_t{1} << (top_bits - 1);
  out.Normalize();
  return out;
}

BigUInt BigUInt::RandomBelow(Rng* rng, const BigUInt& bound) {
  if (bound.IsZero()) {
    throw std::invalid_argument("RandomBelow bound must be non-zero");
  }
  size_t bits = bound.BitLength();
  size_t nlimbs = (bits + 63) / 64;
  while (true) {
    BigUInt out;
    out.limbs_.resize(nlimbs);
    for (auto& l : out.limbs_) {
      l = rng->NextU64();
    }
    size_t top_bits = bits - (nlimbs - 1) * 64;
    if (top_bits < 64) {
      out.limbs_.back() &= (uint64_t{1} << top_bits) - 1;
    }
    out.Normalize();
    if (out < bound) {
      return out;
    }
  }
}

size_t BigUInt::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigUInt::Bit(size_t i) const {
  size_t limb = i / 64;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (i % 64)) & 1;
}

int BigUInt::Compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::operator+(const BigUInt& o) const {
  BigUInt out;
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint128 carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint128 sum = carry;
    if (i < limbs_.size()) {
      sum += limbs_[i];
    }
    if (i < o.limbs_.size()) {
      sum += o.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  out.limbs_[n] = static_cast<uint64_t>(carry);
  out.Normalize();
  return out;
}

BigUInt BigUInt::operator-(const BigUInt& o) const {
  if (*this < o) {
    throw std::underflow_error("BigUInt subtraction underflow");
  }
  BigUInt out;
  out.limbs_.resize(limbs_.size(), 0);
  uint128 borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint128 rhs = (i < o.limbs_.size() ? o.limbs_[i] : 0) + borrow;
    uint128 lhs = limbs_[i];
    if (lhs >= rhs) {
      out.limbs_[i] = static_cast<uint64_t>(lhs - rhs);
      borrow = 0;
    } else {
      out.limbs_[i] = static_cast<uint64_t>((static_cast<uint128>(1) << 64) + lhs - rhs);
      borrow = 1;
    }
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::operator*(const BigUInt& o) const {
  if (IsZero() || o.IsZero()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint128 carry = 0;
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint128 cur = static_cast<uint128>(limbs_[i]) * o.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
    size_t k = i + o.limbs_.size();
    while (carry != 0) {
      uint128 cur = static_cast<uint128>(out.limbs_[k]) + carry;
      out.limbs_[k] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::operator<<(size_t bits) const {
  if (IsZero()) {
    return BigUInt();
  }
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= bit_shift == 0 ? limbs_[i] : (limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out.limbs_[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigUInt BigUInt::operator>>(size_t bits) const {
  size_t limb_shift = bits / 64;
  size_t bit_shift = bits % 64;
  if (limb_shift >= limbs_.size()) {
    return BigUInt();
  }
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = bit_shift == 0 ? limbs_[i + limb_shift] : (limbs_[i + limb_shift] >> bit_shift);
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  out.Normalize();
  return out;
}

BigUInt::DivModResult BigUInt::DivMod(const BigUInt& divisor) const {
  if (divisor.IsZero()) {
    throw std::domain_error("BigUInt division by zero");
  }
  if (*this < divisor) {
    return {BigUInt(), *this};
  }
  if (divisor.limbs_.size() == 1) {
    // Fast single-limb path.
    BigUInt q;
    q.limbs_.resize(limbs_.size());
    uint64_t d = divisor.limbs_[0];
    uint128 rem = 0;
    for (size_t i = limbs_.size(); i-- > 0;) {
      uint128 cur = (rem << 64) | limbs_[i];
      q.limbs_[i] = static_cast<uint64_t>(cur / d);
      rem = cur % d;
    }
    q.Normalize();
    return {q, BigUInt(static_cast<uint64_t>(rem))};
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so divisor's top bit is set.
  size_t shift = 64 - (divisor.BitLength() % 64);
  if (shift == 64) {
    shift = 0;
  }
  BigUInt u = *this << shift;
  BigUInt v = divisor << shift;
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m+n+1 limbs.

  BigUInt q;
  q.limbs_.assign(m + 1, 0);
  uint64_t vtop = v.limbs_[n - 1];
  uint64_t vsecond = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint128 numerator = (static_cast<uint128>(u.limbs_[j + n]) << 64) | u.limbs_[j + n - 1];
    uint128 qhat = numerator / vtop;
    uint128 rhat = numerator % vtop;
    while (qhat >> 64 != 0 ||
           qhat * vsecond > ((rhat << 64) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += vtop;
      if (rhat >> 64 != 0) {
        break;
      }
    }
    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    uint128 borrow = 0;
    uint128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 p = qhat * v.limbs_[i] + carry;
      carry = p >> 64;
      uint64_t p_lo = static_cast<uint64_t>(p);
      uint64_t u_limb = u.limbs_[j + i];
      uint64_t sub = u_limb - p_lo - static_cast<uint64_t>(borrow);
      borrow = (static_cast<uint128>(u_limb) < static_cast<uint128>(p_lo) + borrow) ? 1 : 0;
      u.limbs_[j + i] = sub;
    }
    uint64_t top_before = u.limbs_[j + n];
    uint64_t top_sub = top_before - static_cast<uint64_t>(carry) - static_cast<uint64_t>(borrow);
    bool negative = static_cast<uint128>(top_before) < carry + borrow;
    u.limbs_[j + n] = top_sub;

    if (negative) {
      // qhat was one too large; add back.
      --qhat;
      uint128 carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128 sum = static_cast<uint128>(u.limbs_[j + i]) + v.limbs_[i] + carry2;
        u.limbs_[j + i] = static_cast<uint64_t>(sum);
        carry2 = sum >> 64;
      }
      u.limbs_[j + n] += static_cast<uint64_t>(carry2);
    }
    q.limbs_[j] = static_cast<uint64_t>(qhat);
  }

  q.Normalize();
  u.limbs_.resize(n);
  u.Normalize();
  return {q, u >> shift};
}

BigUInt BigUInt::AddMod(const BigUInt& o, const BigUInt& m) const {
  return ((*this % m) + (o % m)) % m;
}

BigUInt BigUInt::SubMod(const BigUInt& o, const BigUInt& m) const {
  BigUInt a = *this % m;
  BigUInt b = o % m;
  if (a >= b) {
    return a - b;
  }
  return a + m - b;
}

BigUInt BigUInt::MulMod(const BigUInt& o, const BigUInt& m) const {
  return (*this * o) % m;
}

BigUInt BigUInt::PowMod(const BigUInt& exp, const BigUInt& m) const {
  if (m.IsZero()) {
    throw std::domain_error("PowMod modulus must be non-zero");
  }
  if (m == BigUInt(1)) {
    return BigUInt();
  }
  BigUInt base = *this % m;
  BigUInt result(1);
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = result.MulMod(result, m);
    if (exp.Bit(i)) {
      result = result.MulMod(base, m);
    }
  }
  return result;
}

BigUInt BigUInt::InvMod(const BigUInt& m) const {
  // Extended Euclid over signed intermediates represented as (value, sign).
  BigUInt r0 = m;
  BigUInt r1 = *this % m;
  BigUInt t0;  // coefficient of m, unused
  BigUInt t1(1);
  bool t0_neg = false;
  bool t1_neg = false;
  while (!r1.IsZero()) {
    DivModResult dm = r0.DivMod(r1);
    // t2 = t0 - q * t1 (signed).
    BigUInt qt = dm.quotient * t1;
    BigUInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      // t0 and q*t1 have the same sign: subtract magnitudes.
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
    r0 = r1;
    r1 = dm.remainder;
  }
  if (r0 != BigUInt(1)) {
    throw std::domain_error("InvMod: operand not invertible");
  }
  if (t0_neg) {
    return m - (t0 % m);
  }
  return t0 % m;
}

BigUInt BigUInt::Gcd(BigUInt a, BigUInt b) {
  while (!b.IsZero()) {
    BigUInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

BigUInt::HalfGcdResult BigUInt::HalfGcd(const BigUInt& n, const BigUInt& k) {
  // Run Euclid on (n, k) tracking r_i = s_i*n + t_i*k; stop when r < 2^(bits/2).
  size_t half_bits = (n.BitLength() + 1) / 2;
  BigUInt threshold = BigUInt(1) << half_bits;

  BigUInt r0 = n;
  BigUInt r1 = k % n;
  BigUInt t0;
  bool t0_neg = false;
  BigUInt t1(1);
  bool t1_neg = false;

  while (r1 >= threshold) {
    DivModResult dm = r0.DivMod(r1);
    BigUInt qt = dm.quotient * t1;
    BigUInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
    r0 = r1;
    r1 = dm.remainder;
  }

  HalfGcdResult out;
  out.v = t1;
  out.v_negated = t1_neg;
  out.w = r1;
  out.w_negated = false;
  // Invariant (up to sign bookkeeping): k * v == +-w (mod n).
  return out;
}

std::pair<BigUInt::ExtEuclidRow, BigUInt::ExtEuclidRow> BigUInt::HalfGcdRows(
    const BigUInt& n, const BigUInt& k) {
  // Identical walk to HalfGcd, but both rows at the threshold crossing are
  // returned: on exit (r0, t0) is the last row with r0 >= 2^ceil(bits/2) and
  // (r1, t1) the first below it. Each row keeps r_i == +-t_i * k (mod n).
  size_t half_bits = (n.BitLength() + 1) / 2;
  BigUInt threshold = BigUInt(1) << half_bits;

  BigUInt r0 = n;
  BigUInt r1 = k % n;
  BigUInt t0;
  bool t0_neg = false;
  BigUInt t1(1);
  bool t1_neg = false;

  while (r1 >= threshold) {
    DivModResult dm = r0.DivMod(r1);
    BigUInt qt = dm.quotient * t1;
    BigUInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt) {
        t2 = t0 - qt;
        t2_neg = t0_neg;
      } else {
        t2 = qt - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt;
      t2_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
    r0 = r1;
    r1 = dm.remainder;
  }

  return {ExtEuclidRow{r0, t0, t0_neg}, ExtEuclidRow{r1, t1, t1_neg}};
}

Bytes BigUInt::ToBytes(size_t width) const {
  size_t needed = (BitLength() + 7) / 8;
  if (width == 0) {
    width = std::max<size_t>(needed, 1);
  }
  if (needed > width) {
    throw std::length_error("BigUInt does not fit requested width");
  }
  Bytes out(width, 0);
  for (size_t i = 0; i < width; ++i) {
    size_t byte_from_lsb = width - 1 - i;
    size_t limb = byte_from_lsb / 8;
    if (limb < limbs_.size()) {
      out[i] = static_cast<uint8_t>(limbs_[limb] >> (8 * (byte_from_lsb % 8)));
    }
  }
  return out;
}

std::string BigUInt::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  std::string s = EncodeHex(ToBytes());
  size_t first = s.find_first_not_of('0');
  return s.substr(first);
}

std::string BigUInt::ToDecimal() const {
  if (IsZero()) {
    return "0";
  }
  std::string out;
  BigUInt v = *this;
  BigUInt ten(10);
  while (!v.IsZero()) {
    DivModResult dm = v.DivMod(ten);
    out.push_back(static_cast<char>('0' + dm.remainder.LowU64()));
    v = dm.quotient;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace nope
