// SHA-1 (FIPS 180-4). Present only because DNSSEC DS digest type 1 is SHA-1;
// the hierarchy simulator defaults to SHA-256 (type 2), matching modern
// deployment (§2.2 of the paper notes SHA-1 is almost entirely unused).
#ifndef SRC_BASE_SHA1_H_
#define SRC_BASE_SHA1_H_

#include "src/base/bytes.h"

namespace nope {

// One-shot SHA-1; returns a 20-byte digest.
Bytes Sha1Hash(const Bytes& data);

}  // namespace nope

#endif  // SRC_BASE_SHA1_H_
