// Windowed fixed-base scalar multiplication. Trusted setup performs hundreds
// of thousands of multiplications against the two generators, so a one-time
// table pays for itself immediately.
#ifndef SRC_GROTH16_FIXED_BASE_H_
#define SRC_GROTH16_FIXED_BASE_H_

#include <vector>

#include "src/base/biguint.h"

namespace nope {

template <typename Point>
class FixedBaseTable {
 public:
  explicit FixedBaseTable(const Point& base, size_t max_bits = 256, size_t window = 8)
      : window_(window) {
    size_t num_windows = (max_bits + window - 1) / window;
    table_.resize(num_windows);
    Point window_base = base;
    for (size_t w = 0; w < num_windows; ++w) {
      auto& row = table_[w];
      row.reserve((size_t{1} << window) - 1);
      Point acc = window_base;
      for (size_t i = 1; i < (size_t{1} << window); ++i) {
        row.push_back(acc);
        acc = acc.Add(window_base);
      }
      window_base = acc;  // acc == 2^window * window_base
    }
  }

  Point Mul(const BigUInt& scalar) const {
    Point out = Point::Infinity();
    for (size_t w = 0; w < table_.size(); ++w) {
      uint64_t bits = 0;
      for (size_t b = 0; b < window_; ++b) {
        if (scalar.Bit(w * window_ + b)) {
          bits |= uint64_t{1} << b;
        }
      }
      if (bits != 0) {
        out = out.Add(table_[w][bits - 1]);
      }
    }
    return out;
  }

 private:
  size_t window_;
  std::vector<std::vector<Point>> table_;
};

}  // namespace nope

#endif  // SRC_GROTH16_FIXED_BASE_H_
