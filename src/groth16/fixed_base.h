// Windowed fixed-base scalar multiplication. Trusted setup performs hundreds
// of thousands of multiplications against the two generators, so a one-time
// table pays for itself immediately.
//
// Rows are stored affine (one BatchToAffine over the whole table at
// construction) so the lookup-accumulate loop uses mixed additions: ~30%
// cheaper per add and 2/3 the memory of Jacobian rows.
#ifndef SRC_GROTH16_FIXED_BASE_H_
#define SRC_GROTH16_FIXED_BASE_H_

#include <vector>

#include "src/base/biguint.h"
#include "src/ec/batch_affine.h"

namespace nope {

template <typename Point>
class FixedBaseTable {
 public:
  explicit FixedBaseTable(const Point& base, size_t max_bits = 256, size_t window = 8)
      : window_(window), row_size_((size_t{1} << window) - 1) {
    size_t num_windows = (max_bits + window - 1) / window;
    std::vector<Point> jac;
    jac.reserve(num_windows * row_size_);
    Point window_base = base;
    for (size_t w = 0; w < num_windows; ++w) {
      Point acc = window_base;
      for (size_t i = 1; i < (size_t{1} << window); ++i) {
        jac.push_back(acc);
        acc = acc.Add(window_base);
      }
      window_base = acc;  // acc == 2^window * window_base
    }
    table_ = BatchToAffine(jac);
  }

  Point Mul(const BigUInt& scalar) const {
    Point out = Point::Infinity();
    size_t num_windows = table_.size() / row_size_;
    for (size_t w = 0; w < num_windows; ++w) {
      uint64_t bits = 0;
      for (size_t b = 0; b < window_; ++b) {
        if (scalar.Bit(w * window_ + b)) {
          bits |= uint64_t{1} << b;
        }
      }
      if (bits != 0) {
        out = out.AddMixed(table_[w * row_size_ + bits - 1]);
      }
    }
    return out;
  }

 private:
  size_t window_;
  size_t row_size_;
  std::vector<typename Point::Affine> table_;
};

}  // namespace nope

#endif  // SRC_GROTH16_FIXED_BASE_H_
