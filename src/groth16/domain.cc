#include "src/groth16/domain.h"

#include <stdexcept>

namespace nope {

namespace {

constexpr size_t kTwoAdicity = 28;

// An element of order exactly 2^28 in Fr*, found once at startup.
const Fr& TwoAdicRoot() {
  static const Fr root = [] {
    BigUInt order_minus_one = Fr::params().modulus_big - BigUInt(1);
    BigUInt odd_part = order_minus_one >> kTwoAdicity;
    BigUInt half = BigUInt(1) << (kTwoAdicity - 1);
    for (uint64_t candidate = 5;; ++candidate) {
      Fr t = Fr::FromU64(candidate).Pow(odd_part);
      if (t.Pow(half) != Fr::One()) {
        return t;
      }
    }
  }();
  return root;
}

size_t NextPowerOfTwo(size_t v) {
  size_t n = 1;
  while (n < v) {
    n <<= 1;
  }
  return n;
}

void BitReverse(std::vector<Fr>* a, size_t log_n) {
  size_t n = a->size();
  for (size_t i = 0; i < n; ++i) {
    size_t j = 0;
    for (size_t b = 0; b < log_n; ++b) {
      if (i & (size_t{1} << b)) {
        j |= size_t{1} << (log_n - 1 - b);
      }
    }
    if (i < j) {
      std::swap((*a)[i], (*a)[j]);
    }
  }
}

void FftInternal(std::vector<Fr>* a, size_t log_n, const Fr& omega) {
  BitReverse(a, log_n);
  size_t n = a->size();
  for (size_t s = 1; s <= log_n; ++s) {
    size_t m = size_t{1} << s;
    Fr wm = omega;
    for (size_t i = 0; i < log_n - s; ++i) {
      wm = wm.Square();
    }
    for (size_t k = 0; k < n; k += m) {
      Fr w = Fr::One();
      for (size_t j = 0; j < m / 2; ++j) {
        Fr t = w * (*a)[k + j + m / 2];
        Fr u = (*a)[k + j];
        (*a)[k + j] = u + t;
        (*a)[k + j + m / 2] = u - t;
        w = w * wm;
      }
    }
  }
}

}  // namespace

void BatchInvert(std::vector<Fr>* values) {
  std::vector<Fr> prefix(values->size());
  Fr acc = Fr::One();
  for (size_t i = 0; i < values->size(); ++i) {
    prefix[i] = acc;
    if (!(*values)[i].IsZero()) {
      acc = acc * (*values)[i];
    }
  }
  Fr inv = acc.Inverse();
  for (size_t i = values->size(); i-- > 0;) {
    if ((*values)[i].IsZero()) {
      continue;
    }
    Fr orig = (*values)[i];
    (*values)[i] = inv * prefix[i];
    inv = inv * orig;
  }
}

EvaluationDomain::EvaluationDomain(size_t min_size) {
  size_ = NextPowerOfTwo(std::max<size_t>(min_size, 2));
  log_size_ = 0;
  while ((size_t{1} << log_size_) < size_) {
    ++log_size_;
  }
  if (log_size_ > kTwoAdicity) {
    throw std::length_error("domain exceeds field 2-adicity");
  }
  omega_ = TwoAdicRoot();
  for (size_t i = log_size_; i < kTwoAdicity; ++i) {
    omega_ = omega_.Square();
  }
  omega_inv_ = omega_.Inverse();
  size_inv_ = Fr::FromU64(size_).Inverse();
  // Coset shift: any element outside the subgroup of order size_.
  for (uint64_t candidate = 5;; ++candidate) {
    Fr g = Fr::FromU64(candidate);
    if (g.Pow(BigUInt(size_)) != Fr::One()) {
      shift_ = g;
      break;
    }
  }
  shift_inv_ = shift_.Inverse();
}

void EvaluationDomain::Fft(std::vector<Fr>* a) const {
  if (a->size() != size_) {
    throw std::invalid_argument("FFT input size mismatch");
  }
  FftInternal(a, log_size_, omega_);
}

void EvaluationDomain::Ifft(std::vector<Fr>* a) const {
  if (a->size() != size_) {
    throw std::invalid_argument("IFFT input size mismatch");
  }
  FftInternal(a, log_size_, omega_inv_);
  for (auto& v : *a) {
    v = v * size_inv_;
  }
}

void EvaluationDomain::CosetFft(std::vector<Fr>* a) const {
  Fr power = Fr::One();
  for (auto& v : *a) {
    v = v * power;
    power = power * shift_;
  }
  Fft(a);
}

void EvaluationDomain::CosetIfft(std::vector<Fr>* a) const {
  Ifft(a);
  Fr power = Fr::One();
  for (auto& v : *a) {
    v = v * power;
    power = power * shift_inv_;
  }
}

Fr EvaluationDomain::VanishingOnCoset() const {
  return shift_.Pow(BigUInt(size_)) - Fr::One();
}

Fr EvaluationDomain::EvaluateVanishing(const Fr& x) const {
  return x.Pow(BigUInt(size_)) - Fr::One();
}

std::vector<Fr> EvaluationDomain::LagrangeAt(const Fr& tau) const {
  // L_j(tau) = Z(tau) * omega^j / (n * (tau - omega^j)).
  Fr z = EvaluateVanishing(tau);
  std::vector<Fr> out(size_);
  if (z.IsZero()) {
    // tau happens to be a domain point (measure zero but handled): L_j is an
    // indicator.
    Fr point = Fr::One();
    for (size_t j = 0; j < size_; ++j) {
      out[j] = (point == tau) ? Fr::One() : Fr::Zero();
      point = point * omega_;
    }
    return out;
  }
  std::vector<Fr> denoms(size_);
  Fr point = Fr::One();
  for (size_t j = 0; j < size_; ++j) {
    denoms[j] = (tau - point) * Fr::FromU64(size_);
    out[j] = z * point;
    point = point * omega_;
  }
  BatchInvert(&denoms);
  for (size_t j = 0; j < size_; ++j) {
    out[j] = out[j] * denoms[j];
  }
  return out;
}

}  // namespace nope
