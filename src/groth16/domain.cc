#include "src/groth16/domain.h"

#include <algorithm>

#include "src/base/check.h"
#include "src/base/threadpool.h"
#include "src/ec/batch_affine.h"

namespace nope {

namespace {

constexpr size_t kTwoAdicity = 28;

// Minimum elements per parallel share. Below these, ParallelFor collapses to
// an inline serial call, so they double as the serial/parallel cutoffs. Call
// sites wrap them in ThreadPool::ComputeMinChunk so an oversubscribed pool
// (more lanes than cores) never fans out past the physical core count.
// Values are order-independent either way (canonical Montgomery form), so
// the cutoffs affect scheduling only, never output bytes.
constexpr size_t kButterflyMinChunk = 256;   // butterflies per FFT share
constexpr size_t kScaleMinChunk = 1024;      // elements per scaling share
constexpr size_t kBatchInvertBlock = 1024;   // fixed block grid for inversion

// An element of order exactly 2^28 in Fr*, found once at startup.
const Fr& TwoAdicRoot() {
  static const Fr root = [] {
    BigUInt order_minus_one = Fr::params().modulus_big - BigUInt(1);
    BigUInt odd_part = order_minus_one >> kTwoAdicity;
    BigUInt half = BigUInt(1) << (kTwoAdicity - 1);
    for (uint64_t candidate = 5;; ++candidate) {
      Fr t = Fr::FromU64(candidate).Pow(odd_part);
      if (t.Pow(half) != Fr::One()) {
        return t;
      }
    }
  }();
  return root;
}

size_t NextPowerOfTwo(size_t v) {
  size_t n = 1;
  while (n < v) {
    n <<= 1;
  }
  return n;
}

void BitReverse(std::vector<Fr>* a, size_t log_n) {
  size_t n = a->size();
  // Each index pair (i, rev(i)) is swapped by exactly one iteration (the one
  // with i < rev(i)); bit-reversal is an involution, so shares write disjoint
  // element pairs and the result is partition-independent.
  ThreadPool::Global().ParallelFor(
      0, n, ThreadPool::ComputeMinChunk(n, kScaleMinChunk),
      [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      size_t j = 0;
      for (size_t b = 0; b < log_n; ++b) {
        if (i & (size_t{1} << b)) {
          j |= size_t{1} << (log_n - 1 - b);
        }
      }
      if (i < j) {
        std::swap((*a)[i], (*a)[j]);
      }
    }
  });
}

void FftInternal(std::vector<Fr>* a, size_t log_n, const Fr& omega,
                 const CancellationToken* cancel) {
  BitReverse(a, log_n);
  size_t n = a->size();
  ThreadPool& pool = ThreadPool::Global();
  for (size_t s = 1; s <= log_n; ++s) {
    if (cancel != nullptr && cancel->cancelled()) {
      return;  // *a is garbage; the caller checks the token
    }
    size_t m = size_t{1} << s;
    size_t half = m / 2;
    Fr wm = omega;
    for (size_t i = 0; i < log_n - s; ++i) {
      wm = wm.Square();
    }
    // Flatten the stage into n/2 independent butterflies: butterfly t lives
    // in block t/half at offset j = t%half and touches exactly a[k+j] and
    // a[k+j+half], so any partition of [0, n/2) computes identical bytes.
    pool.ParallelFor(0, n / 2,
                     ThreadPool::ComputeMinChunk(n / 2, kButterflyMinChunk),
                     [&](size_t lo, size_t hi) {
      size_t j = lo % half;
      Fr w = (j == 0) ? Fr::One() : wm.Pow(BigUInt(static_cast<uint64_t>(j)));
      for (size_t t = lo; t < hi; ++t) {
        if (j == half) {
          j = 0;
          w = Fr::One();
        }
        size_t k = (t / half) * m;
        Fr tv = w * (*a)[k + j + half];
        Fr u = (*a)[k + j];
        (*a)[k + j] = u + tv;
        (*a)[k + j + half] = u - tv;
        w = w * wm;
        ++j;
      }
    }, cancel);
  }
}

}  // namespace

void BatchInvert(std::vector<Fr>* values) {
  const size_t n = values->size();
  if (n < 2 * kBatchInvertBlock) {
    // Single-threaded Montgomery trick; BatchInvertField splits the chain
    // across SIMD lanes when a vector backend is active. Inverses are
    // unique, so the outputs cannot depend on the chain layout.
    BatchInvertField(values);
    return;
  }

  // Blocked Montgomery trick: the block grid depends on n only, and field
  // values are canonical, so the output never depends on the thread count.
  const size_t num_blocks = (n + kBatchInvertBlock - 1) / kBatchInvertBlock;
  std::vector<Fr> prefix(n);  // within-block prefix products
  std::vector<Fr> block_total(num_blocks);
  ThreadPool& pool = ThreadPool::Global();
  pool.ParallelFor(0, num_blocks, ThreadPool::ComputeMinChunk(num_blocks, 1),
                   [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      Fr acc = Fr::One();
      size_t i_end = std::min(n, (b + 1) * kBatchInvertBlock);
      for (size_t i = b * kBatchInvertBlock; i < i_end; ++i) {
        prefix[i] = acc;
        if (!(*values)[i].IsZero()) {
          acc = acc * (*values)[i];
        }
      }
      block_total[b] = acc;
    }
  });

  // Serial cross-block combine: one inversion total, as before.
  std::vector<Fr> block_prefix(num_blocks);
  std::vector<Fr> block_suffix(num_blocks + 1);
  Fr acc = Fr::One();
  for (size_t b = 0; b < num_blocks; ++b) {
    block_prefix[b] = acc;
    acc = acc * block_total[b];
  }
  Fr total_inv = acc.Inverse();
  block_suffix[num_blocks] = Fr::One();
  for (size_t b = num_blocks; b-- > 0;) {
    block_suffix[b] = block_total[b] * block_suffix[b + 1];
  }

  pool.ParallelFor(0, num_blocks, ThreadPool::ComputeMinChunk(num_blocks, 1),
                   [&](size_t lo, size_t hi) {
    for (size_t b = lo; b < hi; ++b) {
      // Inverse of the product of non-zero values in blocks 0..b.
      Fr inv = total_inv * block_suffix[b + 1];
      size_t i_begin = b * kBatchInvertBlock;
      for (size_t i = std::min(n, (b + 1) * kBatchInvertBlock); i-- > i_begin;) {
        if ((*values)[i].IsZero()) {
          continue;
        }
        Fr orig = (*values)[i];
        (*values)[i] = inv * (block_prefix[b] * prefix[i]);
        inv = inv * orig;
      }
    }
  });
}

EvaluationDomain::EvaluationDomain(size_t min_size) {
  size_ = NextPowerOfTwo(std::max<size_t>(min_size, 2));
  log_size_ = 0;
  while ((size_t{1} << log_size_) < size_) {
    ++log_size_;
  }
  // Circuit sizes are fixed by the statement builders long before proving;
  // outgrowing the field's 2-adic subgroup is a build-time defect, not a
  // runtime input condition.
  NOPE_INVARIANT(log_size_ <= kTwoAdicity, "domain exceeds field 2-adicity");
  omega_ = TwoAdicRoot();
  for (size_t i = log_size_; i < kTwoAdicity; ++i) {
    omega_ = omega_.Square();
  }
  omega_inv_ = omega_.Inverse();
  size_inv_ = Fr::FromU64(size_).Inverse();
  // Coset shift: any element outside the subgroup of order size_.
  for (uint64_t candidate = 5;; ++candidate) {
    Fr g = Fr::FromU64(candidate);
    if (g.Pow(BigUInt(size_)) != Fr::One()) {
      shift_ = g;
      break;
    }
  }
  shift_inv_ = shift_.Inverse();
}

void EvaluationDomain::Fft(std::vector<Fr>* a, const CancellationToken* cancel) const {
  NOPE_INVARIANT(a->size() == size_, "FFT input size mismatch");
  FftInternal(a, log_size_, omega_, cancel);
}

void EvaluationDomain::Ifft(std::vector<Fr>* a, const CancellationToken* cancel) const {
  NOPE_INVARIANT(a->size() == size_, "IFFT input size mismatch");
  FftInternal(a, log_size_, omega_inv_, cancel);
  ThreadPool::Global().ParallelFor(0, a->size(),
                                   ThreadPool::ComputeMinChunk(
                                       a->size(), kScaleMinChunk),
                                   [&](size_t lo, size_t hi) {
                                     for (size_t i = lo; i < hi; ++i) {
                                       (*a)[i] = (*a)[i] * size_inv_;
                                     }
                                   },
                                   cancel);
}

// Multiplies a[i] by factor^i for i in [0, a->size()). Shares re-derive
// their starting power with one Pow, then walk multiplicatively.
void EvaluationDomain::ScaleByPowers(std::vector<Fr>* a, const Fr& factor) {
  ThreadPool::Global().ParallelFor(
      0, a->size(), ThreadPool::ComputeMinChunk(a->size(), kScaleMinChunk),
      [&](size_t lo, size_t hi) {
        Fr power = (lo == 0) ? Fr::One()
                             : factor.Pow(BigUInt(static_cast<uint64_t>(lo)));
        for (size_t i = lo; i < hi; ++i) {
          (*a)[i] = (*a)[i] * power;
          power = power * factor;
        }
      });
}

void EvaluationDomain::CosetFft(std::vector<Fr>* a, const CancellationToken* cancel) const {
  ScaleByPowers(a, shift_);
  Fft(a, cancel);
}

void EvaluationDomain::CosetIfft(std::vector<Fr>* a, const CancellationToken* cancel) const {
  Ifft(a, cancel);
  ScaleByPowers(a, shift_inv_);
}

Fr EvaluationDomain::VanishingOnCoset() const {
  return shift_.Pow(BigUInt(size_)) - Fr::One();
}

Fr EvaluationDomain::EvaluateVanishing(const Fr& x) const {
  return x.Pow(BigUInt(size_)) - Fr::One();
}

std::vector<Fr> EvaluationDomain::LagrangeAt(const Fr& tau) const {
  // L_j(tau) = Z(tau) * omega^j / (n * (tau - omega^j)).
  Fr z = EvaluateVanishing(tau);
  std::vector<Fr> out(size_);
  if (z.IsZero()) {
    // tau happens to be a domain point (measure zero but handled): L_j is an
    // indicator.
    Fr point = Fr::One();
    for (size_t j = 0; j < size_; ++j) {
      out[j] = (point == tau) ? Fr::One() : Fr::Zero();
      point = point * omega_;
    }
    return out;
  }
  std::vector<Fr> denoms(size_);
  ThreadPool& pool = ThreadPool::Global();
  pool.ParallelFor(0, size_, ThreadPool::ComputeMinChunk(size_, kScaleMinChunk),
                   [&](size_t lo, size_t hi) {
    Fr point = (lo == 0) ? Fr::One()
                         : omega_.Pow(BigUInt(static_cast<uint64_t>(lo)));
    Fr scale = Fr::FromU64(size_);
    for (size_t j = lo; j < hi; ++j) {
      denoms[j] = (tau - point) * scale;
      out[j] = z * point;
      point = point * omega_;
    }
  });
  BatchInvert(&denoms);
  pool.ParallelFor(0, size_, ThreadPool::ComputeMinChunk(size_, kScaleMinChunk),
                   [&](size_t lo, size_t hi) {
    for (size_t j = lo; j < hi; ++j) {
      out[j] = out[j] * denoms[j];
    }
  });
  return out;
}

}  // namespace nope
