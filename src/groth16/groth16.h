// Groth16 zkSNARK over BN254 — the paper's proving back-end (§2.3).
//
// Proofs are two G1 elements and one G2 element; compressed they serialize to
// exactly 128 bytes, the size the paper reports embedding in certificates.
// Verification is a four-pairing product check whose cost is independent of
// statement size.
//
// The trusted setup here is single-party: the toxic waste (tau, alpha, beta,
// gamma, delta) is sampled and dropped in-process. A production deployment
// would run an MPC ceremony, which the paper maps onto the DNSSEC root key
// ceremony.
#ifndef SRC_GROTH16_GROTH16_H_
#define SRC_GROTH16_GROTH16_H_

#include <functional>
#include <vector>

#include "src/base/cancellation.h"
#include "src/base/result.h"
#include "src/ec/bn254.h"
#include "src/groth16/domain.h"
#include "src/r1cs/constraint_system.h"

namespace nope {
namespace groth16 {

struct Proof {
  G1 a;
  G2 b;
  G1 c;

  // Compressed encoding: 32 (A) + 64 (B) + 32 (C) = 128 bytes.
  Bytes ToBytes() const;

  // Strict decoder for untrusted bytes. Rejects non-canonical encodings
  // (field elements >= p, garbage under an infinity flag) and points off the
  // curve or, for B, outside the order-r subgroup, so decoding is injective:
  // a Proof that decodes successfully re-encodes to the identical 128 bytes.
  static Result<Proof> TryFromBytes(const Bytes& bytes);

  // Throwing wrapper over TryFromBytes for trusted/internal callers;
  // throws std::invalid_argument on malformed input.
  static Proof FromBytes(const Bytes& bytes);
};

struct VerifyingKey {
  G1 alpha_g1;
  G2 beta_g2;
  G2 gamma_g2;
  G2 delta_g2;
  std::vector<G1> ic;  // one per public variable, including the constant 1
};

struct ProvingKey {
  VerifyingKey vk;
  G1 beta_g1;
  G1 delta_g1;
  // Query tables are stored affine: the MSM kernel consumes affine bases
  // directly (mixed additions), the per-element memory drops by a third, and
  // the conversion happens once at Setup via BatchToAffine.
  std::vector<G1Affine> a_query;     // [A_i(tau)]1, all variables
  std::vector<G1Affine> b_g1_query;  // [B_i(tau)]1
  std::vector<G2Affine> b_g2_query;  // [B_i(tau)]2
  std::vector<G1Affine> l_query;     // [(beta A_i + alpha B_i + C_i)/delta]1, witness vars
  std::vector<G1Affine> h_query;     // [tau^i Z(tau)/delta]1, i < domain-1
  size_t num_public = 0;
  size_t num_constraints = 0;
  size_t domain_size = 0;
};

// Statement-specific one-time setup. The constraint system may carry any
// satisfying or non-satisfying assignment; only its matrices matter here.
ProvingKey Setup(const ConstraintSystem& cs, Rng* rng);

// Produces a zero-knowledge proof for the assignment held in cs (which must
// satisfy the constraints; throws std::invalid_argument otherwise).
Proof Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng);

// Cancellable prover for deadline-bounded issuance jobs (the renewal
// lifecycle's proving stage). The token is polled cooperatively: at entry,
// between pipeline phases (QAP evaluation, each FFT, each MSM), and inside
// the parallel loops at chunk boundaries, so an already-expired deadline
// returns promptly and a mid-flight cancellation abandons queued work within
// one chunk. On kCancelled the proof field is meaningless; the global
// ThreadPool is always left reusable. With a token that never fires the
// returned proof is bit-identical to Prove() at the same Rng state (the
// checks are pure reads and the Rng is consumed identically).
enum class ProveStatus { kOk, kCancelled };
const char* ProveStatusName(ProveStatus status);
struct ProveResult {
  ProveStatus status = ProveStatus::kOk;
  Proof proof;

  bool ok() const { return status == ProveStatus::kOk; }
};
ProveResult Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng,
                  const CancellationToken& cancel);

// Optional per-stage instrumentation for the cancellable prover. When hooks
// is non-null and on_stage is set, the prover invokes it on the calling
// thread at each completed stage boundary with the stage name and the
// elapsed milliseconds measured on `clock` (stages completed before a
// cancellation still report). Stage names, in order:
//   "witness"  — satisfaction check + per-wire QAP evaluations
//   "fft"      — the six iFFT/coset-FFT transforms
//   "h_poly"   — quotient evaluation + coset iFFT
//   "scalars"  — Montgomery-to-integer scalar conversions
//   "msm"      — the five MSMs + final group arithmetic
// The hook observes; it must not mutate prover inputs or call back into the
// prover. With a null clock, elapsed_ms is always 0. Hook invocations never
// touch the Rng, so instrumented and bare runs produce bit-identical proofs.
struct ProveStageHooks {
  const Clock* clock = nullptr;
  std::function<void(const char* stage, uint64_t elapsed_ms)> on_stage;
};
ProveResult Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng,
                  const CancellationToken& cancel, const ProveStageHooks* hooks);

// public_inputs excludes the constant 1 (so its length is vk.ic.size() - 1).
//
// Point-check contract (all Verify entry points, prepared or not): proofs
// are rejected unless A and C are on the curve (G1 has cofactor 1, so that
// is full membership), B is in the order-r G2 subgroup, and none of A/B/C
// is the point at infinity. The parse path (Proof::TryFromBytes) enforces
// the same membership rules, but in-process callers can construct a Proof
// directly, so Verify must not trust its inputs: an infinity factor would
// trivialize one pairing in the product (MillerLoop maps identity inputs
// to 1), and an out-of-subgroup B would leave the pairing undefined as a
// bilinear map.
bool Verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs, const Proof& proof);

// Precomputed verifier state for one verifying key (ROADMAP item 1). The G2
// inputs of the pairing product — beta, gamma, delta — never change per
// deployment, so their Miller-loop line coefficients are computed once
// here; e(alpha, beta) is fully paired. A prepared verification then costs
// one fresh Miller loop (A, B), two line-replay loops (gamma, delta), and
// one final exponentiation, against four fresh loops for the unprepared
// path. Verdicts are identical to the unprepared path on every input
// (asserted by the mutation harness): the checks differ only by moving the
// constant e(alpha, beta) to the right-hand side, which is exact, not
// probabilistic.
struct PreparedVerifyingKey {
  VerifyingKey vk;      // retained for the IC combination and fallback
  G2Prepared beta_prep;   // lines for beta_g2 (differential tests; the
                          // verification equation uses alpha_beta instead)
  G2Prepared gamma_prep;  // lines for gamma_g2
  G2Prepared delta_prep;  // lines for delta_g2
  Fp12 alpha_beta;        // e(alpha_g1, beta_g2)

  // Resident footprint for cache byte budgeting (service KeyCache).
  size_t SizeBytes() const;
};

PreparedVerifyingKey PrepareVerifyingKey(const VerifyingKey& vk);

// Single-proof verification against a prepared key. Same point-check
// contract and same verdict as Verify(vk, ...), at roughly half the cost.
bool Verify(const PreparedVerifyingKey& pvk, const std::vector<Fr>& public_inputs,
            const Proof& proof);

// One member of a verification batch.
struct BatchEntry {
  Proof proof;
  std::vector<Fr> public_inputs;
};

struct BatchVerifyResult {
  // True iff every member of the batch verifies individually.
  bool all_ok = false;
  // When all_ok is false: the indices of the offending members, in
  // ascending order. Structural rejects (wrong input count, bad points) are
  // identified directly; if the combined pairing check fails, each
  // remaining member is re-verified individually to name the offenders.
  std::vector<size_t> rejected;
};

// Random-linear-combination batch verification: N proofs cost N Miller
// loops (z_i A_i, B_i), two line-replay loops over the aggregated gamma and
// delta G1 sides, one final exponentiation and one Fp12 exponentiation of
// the precomputed e(alpha, beta) — versus 4N loops and N final
// exponentiations unbatched.
//
// Soundness: each member's pairing equation is raised to an independent
// uniformly random nonzero z_i drawn from `rng`; a batch containing an
// invalid member passes with probability at most ~1/r (~2^-254) over the
// choice of z. The caller owns the seeding policy: verification-time
// batching should seed from entropy the prover cannot predict (or, for
// deterministic replay, from a transcript hash over the batch — the
// scenario/bench harnesses derive the seed from their sweep seed so runs
// replay byte-identically). Completeness is exact: a batch whose members
// all verify always passes, for every z.
BatchVerifyResult BatchVerify(const PreparedVerifyingKey& pvk,
                              const std::vector<BatchEntry>& batch, Rng* rng);

// Groth16 proofs are re-randomizable: returns a different proof for the same
// statement that still verifies. This is the proof-malleability the paper's
// weak-simulation-extractability discussion (§3.2) must contend with; NOPE
// tolerates it because N and TS are bound inside the statement.
Proof RandomizeProof(const VerifyingKey& vk, const Proof& proof, Rng* rng);

}  // namespace groth16
}  // namespace nope

#endif  // SRC_GROTH16_GROTH16_H_
