#include "src/groth16/groth16.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "src/base/threadpool.h"
#include "src/ec/msm.h"
#include "src/groth16/fixed_base.h"

namespace nope {
namespace groth16 {

namespace {

// --- Point compression ------------------------------------------------------

constexpr uint8_t kFlagInfinity = 0x80;
constexpr uint8_t kFlagOddY = 0x40;

bool SqrtFq(const Fq& a, Fq* out) {
  // BN254's p == 3 (mod 4).
  static const BigUInt exp = (Fq::params().modulus_big + BigUInt(1)) >> 2;
  Fq r = a.Pow(exp);
  if (r.Square() != a) {
    return false;
  }
  *out = r;
  return true;
}

bool SqrtFp2(const Fp2& a, Fp2* out) {
  if (a.IsZero()) {
    *out = Fp2::Zero();
    return true;
  }
  static const BigUInt exp1 = (Fq::params().modulus_big - BigUInt(3)) >> 2;  // (p-3)/4
  static const BigUInt exp2 = (Fq::params().modulus_big - BigUInt(1)) >> 1;  // (p-1)/2
  Fp2 a1 = a.Pow(exp1);
  Fp2 x0 = a1 * a;
  Fp2 alpha = a1 * x0;
  Fp2 x;
  Fp2 minus_one = -Fp2::One();
  if (alpha == minus_one) {
    Fp2 u{Fq::Zero(), Fq::One()};
    x = x0 * u;
  } else {
    Fp2 b = (alpha + Fp2::One()).Pow(exp2);
    x = b * x0;
  }
  if (x.Square() != a) {
    return false;
  }
  *out = x;
  return true;
}

bool OddParityFq(const Fq& y) { return y.ToBigUInt().Bit(0); }

bool OddParityFp2(const Fp2& y) {
  if (!y.c0.IsZero()) {
    return OddParityFq(y.c0);
  }
  return OddParityFq(y.c1);
}

Bytes EncodeG1(const G1& p) {
  Bytes out(32, 0);
  auto aff = p.ToAffine();
  if (aff.infinity) {
    out[0] = kFlagInfinity;
    return out;
  }
  out = aff.x.ToBigUInt().ToBytes(32);
  if (OddParityFq(aff.y)) {
    out[0] |= kFlagOddY;
  }
  return out;
}

// Canonical infinity is the flag byte alone: every other bit must be zero,
// otherwise distinct byte strings would decode to the same point.
bool IsCanonicalInfinity(const Bytes& bytes) {
  if (bytes[0] != kFlagInfinity) {
    return false;
  }
  for (size_t i = 1; i < bytes.size(); ++i) {
    if (bytes[i] != 0) {
      return false;
    }
  }
  return true;
}

// Decodes a 32-byte big-endian field element whose top two bits are flag
// bits. Rejects non-canonical values >= p (Fq::FromBigUInt would silently
// reduce them, making the encoding non-injective).
Result<Fq> TryDecodeFq(Bytes bytes, const char* what) {
  bytes[0] &= 0x3f;
  BigUInt v = BigUInt::FromBytes(bytes);
  if (!(v < Fq::params().modulus_big)) {
    return Error(ErrorCode::kOutOfRange,
                 std::string(what) + " coordinate not reduced mod p");
  }
  return Fq::FromBigUInt(v);
}

Result<G1> TryDecodeG1(const Bytes& bytes, const char* what) {
  if (bytes.size() != 32) {
    return Error(ErrorCode::kBadLength,
                 std::string(what) + ": G1 encoding must be 32 bytes");
  }
  if (bytes[0] & kFlagInfinity) {
    if (!IsCanonicalInfinity(bytes)) {
      return Error(ErrorCode::kBadEncoding,
                   std::string(what) + ": non-canonical G1 infinity");
    }
    return G1::Infinity();
  }
  bool odd = (bytes[0] & kFlagOddY) != 0;
  NOPE_ASSIGN_OR_RETURN(Fq x, TryDecodeFq(bytes, what));
  Fq rhs = x.Square() * x + Fq::FromU64(3);
  Fq y;
  if (!SqrtFq(rhs, &y)) {
    return Error(ErrorCode::kNotOnCurve,
                 std::string(what) + ": G1 x-coordinate not on curve");
  }
  if (y.IsZero() && odd) {
    return Error(ErrorCode::kBadEncoding,
                 std::string(what) + ": odd-parity flag on two-torsion point");
  }
  if (OddParityFq(y) != odd) {
    y = -y;
  }
  return G1::FromAffine(x, y);
}

G1 DecodeG1(const Bytes& bytes) {
  Result<G1> p = TryDecodeG1(bytes, "G1");
  if (!p.ok()) {
    throw std::invalid_argument(p.error().ToString());
  }
  return p.value();
}

Bytes EncodeG2(const G2& p) {
  Bytes out(64, 0);
  auto aff = p.ToAffine();
  if (aff.infinity) {
    out[0] = kFlagInfinity;
    return out;
  }
  Bytes c1 = aff.x.c1.ToBigUInt().ToBytes(32);
  Bytes c0 = aff.x.c0.ToBigUInt().ToBytes(32);
  std::copy(c1.begin(), c1.end(), out.begin());
  std::copy(c0.begin(), c0.end(), out.begin() + 32);
  if (OddParityFp2(aff.y)) {
    out[0] |= kFlagOddY;
  }
  return out;
}

Result<G2> TryDecodeG2(const Bytes& bytes, const char* what) {
  if (bytes.size() != 64) {
    return Error(ErrorCode::kBadLength,
                 std::string(what) + ": G2 encoding must be 64 bytes");
  }
  if (bytes[0] & kFlagInfinity) {
    if (!IsCanonicalInfinity(bytes)) {
      return Error(ErrorCode::kBadEncoding,
                   std::string(what) + ": non-canonical G2 infinity");
    }
    return G2::Infinity();
  }
  Bytes c1b(bytes.begin(), bytes.begin() + 32);
  Bytes c0b(bytes.begin() + 32, bytes.end());
  bool odd = (c1b[0] & kFlagOddY) != 0;
  NOPE_ASSIGN_OR_RETURN(Fq xc1, TryDecodeFq(c1b, what));
  if (c0b[0] & 0xc0) {
    return Error(ErrorCode::kBadEncoding,
                 std::string(what) + ": flag bits set in G2 x.c0 limb");
  }
  NOPE_ASSIGN_OR_RETURN(Fq xc0, TryDecodeFq(c0b, what));
  Fp2 x{xc0, xc1};
  Fp2 rhs = x.Square() * x + Bn254G2Config::B();
  Fp2 y;
  if (!SqrtFp2(rhs, &y)) {
    return Error(ErrorCode::kNotOnCurve,
                 std::string(what) + ": G2 x-coordinate not on curve");
  }
  if (y.IsZero() && odd) {
    return Error(ErrorCode::kBadEncoding,
                 std::string(what) + ": odd-parity flag on two-torsion point");
  }
  if (OddParityFp2(y) != odd) {
    y = -y;
  }
  return G2::FromAffine(x, y);
}

G2 DecodeG2(const Bytes& bytes) {
  Result<G2> p = TryDecodeG2(bytes, "G2");
  if (!p.ok()) {
    throw std::invalid_argument(p.error().ToString());
  }
  return p.value();
}

// --- Helpers ----------------------------------------------------------------

// Minimum elements per parallel share for the element-independent loops
// below; each element's value is canonical, so partitioning never changes
// output bytes.
constexpr size_t kProveMinChunk = 256;

// Montgomery -> standard-form conversion of a whole wire vector. The
// conversion is one Montgomery multiply by 1 per element, so it batches
// through the SIMD backend (Fr::ToStdLimbsBatch) in fixed-size blocks;
// values are canonical either way, so output bytes cannot depend on the
// backend or the partitioning.
std::vector<BigUInt> ToScalars(const std::vector<Fr>& values, size_t begin, size_t end) {
  constexpr size_t kBlock = 64;
  std::vector<BigUInt> out(end - begin);
  ThreadPool::Global().ParallelFor(
      0, end - begin, ThreadPool::ComputeMinChunk(end - begin, kProveMinChunk),
      [&](size_t lo, size_t hi) {
        std::array<uint64_t, 4> limbs[kBlock];
        for (size_t i = lo; i < hi; i += kBlock) {
          const size_t cnt = std::min(kBlock, hi - i);
          Fr::ToStdLimbsBatch(&values[begin + i], limbs, cnt);
          for (size_t j = 0; j < cnt; ++j) {
            out[i + j] = BigUInt::FromLimbsLE(limbs[j].data(), 4);
          }
        }
      });
  return out;
}

Fr RandomNonZero(Rng* rng) {
  while (true) {
    Fr v = Fr::Random(rng);
    if (!v.IsZero()) {
      return v;
    }
  }
}

}  // namespace

Bytes Proof::ToBytes() const {
  Bytes out = EncodeG1(a);
  Bytes bb = EncodeG2(b);
  Bytes cb = EncodeG1(c);
  AppendBytes(&out, bb);
  AppendBytes(&out, cb);
  return out;
}

Result<Proof> Proof::TryFromBytes(const Bytes& bytes) {
  if (bytes.size() != 128) {
    return Error(ErrorCode::kBadLength, "Groth16 proof must be 128 bytes");
  }
  Proof p;
  NOPE_ASSIGN_OR_RETURN(p.a,
                        TryDecodeG1(Bytes(bytes.begin(), bytes.begin() + 32), "proof A"));
  NOPE_ASSIGN_OR_RETURN(
      p.b, TryDecodeG2(Bytes(bytes.begin() + 32, bytes.begin() + 96), "proof B"));
  NOPE_ASSIGN_OR_RETURN(p.c,
                        TryDecodeG1(Bytes(bytes.begin() + 96, bytes.end()), "proof C"));
  // G1 has cofactor 1, so A and C are in-group by the curve check above. B
  // lives on the twist with a large cofactor; confirm order-r membership
  // before it ever reaches a pairing.
  if (!G2InSubgroup(p.b)) {
    return Error(ErrorCode::kNotInSubgroup, "proof B outside the r-order subgroup");
  }
  return p;
}

Proof Proof::FromBytes(const Bytes& bytes) {
  Result<Proof> p = TryFromBytes(bytes);
  if (!p.ok()) {
    throw std::invalid_argument(p.error().ToString());
  }
  return std::move(p).value();
}

ProvingKey Setup(const ConstraintSystem& cs, Rng* rng) {
  if (cs.mode() != ConstraintSystem::Mode::kCount && !cs.IsSatisfied()) {
    // Setup does not strictly need a satisfying assignment, but an
    // unsatisfied system at setup time almost always indicates a gadget bug;
    // fail fast with context.
    size_t bad = 0;
    cs.IsSatisfied(&bad);
    throw std::invalid_argument("Setup: assignment violates constraint " + std::to_string(bad));
  }
  if (cs.mode() == ConstraintSystem::Mode::kCount) {
    throw std::invalid_argument("Setup requires a materialized (kProve) constraint system");
  }

  size_t num_public = cs.NumPublic();
  size_t num_vars = cs.NumVariables();
  size_t num_constraints = cs.NumConstraints();
  EvaluationDomain domain(num_constraints + num_public);

  Fr tau = RandomNonZero(rng);
  Fr alpha = RandomNonZero(rng);
  Fr beta = RandomNonZero(rng);
  Fr gamma = RandomNonZero(rng);
  Fr delta = RandomNonZero(rng);
  Fr gamma_inv = gamma.Inverse();
  Fr delta_inv = delta.Inverse();

  std::vector<Fr> lag = domain.LagrangeAt(tau);

  std::vector<Fr> a_tau(num_vars, Fr::Zero());
  std::vector<Fr> b_tau(num_vars, Fr::Zero());
  std::vector<Fr> c_tau(num_vars, Fr::Zero());
  const auto& constraints = cs.constraints();
  for (size_t j = 0; j < constraints.size(); ++j) {
    for (const auto& [v, coeff] : constraints[j].a.terms()) {
      a_tau[v] = a_tau[v] + coeff * lag[j];
    }
    for (const auto& [v, coeff] : constraints[j].b.terms()) {
      b_tau[v] = b_tau[v] + coeff * lag[j];
    }
    for (const auto& [v, coeff] : constraints[j].c.terms()) {
      c_tau[v] = c_tau[v] + coeff * lag[j];
    }
  }
  // Input-consistency rows: public variable i is pinned to evaluation point
  // num_constraints + i (libsnark's QAP padding), preventing malleation of
  // public inputs into the witness.
  for (size_t i = 0; i < num_public; ++i) {
    a_tau[i] = a_tau[i] + lag[num_constraints + i];
  }

  FixedBaseTable<G1> t1(G1Generator());
  FixedBaseTable<G2> t2(G2Generator());

  ProvingKey pk;
  pk.num_public = num_public;
  pk.num_constraints = num_constraints;
  pk.domain_size = domain.size();

  pk.vk.alpha_g1 = t1.Mul(alpha.ToBigUInt());
  pk.vk.beta_g2 = t2.Mul(beta.ToBigUInt());
  pk.vk.gamma_g2 = t2.Mul(gamma.ToBigUInt());
  pk.vk.delta_g2 = t2.Mul(delta.ToBigUInt());
  pk.beta_g1 = t1.Mul(beta.ToBigUInt());
  pk.delta_g1 = t1.Mul(delta.ToBigUInt());

  // The query tables are hundreds of thousands of independent fixed-base
  // multiplications; each slot is written exactly once, so any partition
  // yields identical tables.
  // Query tables are built as Jacobian temporaries (the fixed-base table
  // yields Jacobian points), then converted to affine in one batched pass
  // each -- the representation the MSM kernel consumes.
  ThreadPool& pool = ThreadPool::Global();
  constexpr size_t kSetupMinChunk = 64;
  std::vector<G1> a_jac(num_vars);
  std::vector<G1> b_g1_jac(num_vars);
  std::vector<G2> b_g2_jac(num_vars);
  pool.ParallelFor(0, num_vars,
                   ThreadPool::ComputeMinChunk(num_vars, kSetupMinChunk),
                   [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      a_jac[i] = t1.Mul(a_tau[i].ToBigUInt());
      b_g1_jac[i] = t1.Mul(b_tau[i].ToBigUInt());
      b_g2_jac[i] = t2.Mul(b_tau[i].ToBigUInt());
    }
  });
  pk.a_query = BatchToAffine(a_jac);
  pk.b_g1_query = BatchToAffine(b_g1_jac);
  pk.b_g2_query = BatchToAffine(b_g2_jac);

  pk.vk.ic.reserve(num_public);
  for (size_t i = 0; i < num_public; ++i) {
    Fr k = (beta * a_tau[i] + alpha * b_tau[i] + c_tau[i]) * gamma_inv;
    pk.vk.ic.push_back(t1.Mul(k.ToBigUInt()));
  }
  std::vector<G1> l_jac(num_vars - num_public);
  pool.ParallelFor(num_public, num_vars,
                   ThreadPool::ComputeMinChunk(num_vars - num_public,
                                               kSetupMinChunk),
                   [&](size_t lo, size_t hi) {
                     for (size_t i = lo; i < hi; ++i) {
                       Fr k = (beta * a_tau[i] + alpha * b_tau[i] + c_tau[i]) *
                              delta_inv;
                       l_jac[i - num_public] = t1.Mul(k.ToBigUInt());
                     }
                   });
  pk.l_query = BatchToAffine(l_jac);

  Fr z_tau = domain.EvaluateVanishing(tau);
  Fr h_base = z_tau * delta_inv;
  std::vector<G1> h_jac(domain.size() - 1);
  pool.ParallelFor(0, domain.size() - 1,
                   ThreadPool::ComputeMinChunk(domain.size() - 1,
                                               kSetupMinChunk),
                   [&](size_t lo, size_t hi) {
                     Fr power =
                         h_base * tau.Pow(BigUInt(static_cast<uint64_t>(lo)));
                     for (size_t i = lo; i < hi; ++i) {
                       h_jac[i] = t1.Mul(power.ToBigUInt());
                       power = power * tau;
                     }
                   });
  pk.h_query = BatchToAffine(h_jac);
  return pk;
}

const char* ProveStatusName(ProveStatus status) {
  switch (status) {
    case ProveStatus::kOk:
      return "ok";
    case ProveStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Proof Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng) {
  ProveResult result = Prove(pk, cs, rng, CancellationToken());
  // A never-firing token cannot produce kCancelled.
  NOPE_INVARIANT(result.ok(), "Prove: uncancellable run reported kCancelled");
  return result.proof;
}

ProveResult Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng,
                  const CancellationToken& cancel) {
  return Prove(pk, cs, rng, cancel, nullptr);
}

ProveResult Prove(const ProvingKey& pk, const ConstraintSystem& cs, Rng* rng,
                  const CancellationToken& cancel, const ProveStageHooks* hooks) {
  // Stage timing is observation-only: it draws on the hook's clock, never on
  // the Rng, and a disabled hook costs two branches per stage.
  const bool timed = hooks != nullptr && hooks->on_stage != nullptr;
  uint64_t stage_start = timed && hooks->clock != nullptr ? hooks->clock->NowMs() : 0;
  auto stage_done = [&](const char* stage) {
    if (!timed) {
      return;
    }
    uint64_t now = hooks->clock != nullptr ? hooks->clock->NowMs() : 0;
    hooks->on_stage(stage, now - stage_start);
    stage_start = now;
  };
  if (cs.mode() != ConstraintSystem::Mode::kProve) {
    throw std::invalid_argument("Prove requires a materialized constraint system");
  }
  // An expired deadline aborts before the (linear-time) satisfaction scan so
  // a hopeless proving job costs near nothing.
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  size_t bad = 0;
  if (!cs.IsSatisfied(&bad)) {
    throw std::invalid_argument("Prove: assignment violates constraint " + std::to_string(bad));
  }
  if (cs.NumVariables() != pk.a_query.size() || cs.NumPublic() != pk.num_public) {
    throw std::invalid_argument("Prove: constraint system does not match proving key");
  }

  EvaluationDomain domain(pk.num_constraints + pk.num_public);
  size_t n = domain.size();

  std::vector<Fr> a_vals(n, Fr::Zero());
  std::vector<Fr> b_vals(n, Fr::Zero());
  std::vector<Fr> c_vals(n, Fr::Zero());
  const auto& constraints = cs.constraints();
  ThreadPool& pool = ThreadPool::Global();
  pool.ParallelFor(0, constraints.size(),
                   ThreadPool::ComputeMinChunk(constraints.size(),
                                               kProveMinChunk),
                   [&](size_t lo, size_t hi) {
                     for (size_t j = lo; j < hi; ++j) {
                       a_vals[j] = cs.Eval(constraints[j].a);
                       b_vals[j] = cs.Eval(constraints[j].b);
                       c_vals[j] = cs.Eval(constraints[j].c);
                     }
                   },
                   &cancel);
  for (size_t i = 0; i < pk.num_public; ++i) {
    a_vals[pk.num_constraints + i] = cs.ValueOf(static_cast<Var>(i));
  }
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  stage_done("witness");

  domain.Ifft(&a_vals, &cancel);
  domain.Ifft(&b_vals, &cancel);
  domain.Ifft(&c_vals, &cancel);
  domain.CosetFft(&a_vals, &cancel);
  domain.CosetFft(&b_vals, &cancel);
  domain.CosetFft(&c_vals, &cancel);
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  stage_done("fft");
  Fr z_inv = domain.VanishingOnCoset().Inverse();
  std::vector<Fr> h(n);
  pool.ParallelFor(0, n, ThreadPool::ComputeMinChunk(n, kProveMinChunk),
                   [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      h[k] = (a_vals[k] * b_vals[k] - c_vals[k]) * z_inv;
    }
  }, &cancel);
  domain.CosetIfft(&h, &cancel);
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  stage_done("h_poly");

  const std::vector<Fr>& values = cs.values();
  std::vector<BigUInt> z_all = ToScalars(values, 0, values.size());
  std::vector<BigUInt> z_wit = ToScalars(values, pk.num_public, values.size());
  std::vector<BigUInt> h_scalars(n - 1);
  pool.ParallelFor(0, n - 1, ThreadPool::ComputeMinChunk(n - 1, kProveMinChunk),
                   [&](size_t lo, size_t hi) {
    constexpr size_t kBlock = 64;
    std::array<uint64_t, 4> limbs[kBlock];
    for (size_t i = lo; i < hi; i += kBlock) {
      const size_t cnt = std::min(kBlock, hi - i);
      Fr::ToStdLimbsBatch(&h[i], limbs, cnt);
      for (size_t j = 0; j < cnt; ++j) {
        h_scalars[i + j] = BigUInt::FromLimbsLE(limbs[j].data(), 4);
      }
    }
  }, &cancel);
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  stage_done("scalars");

  // The Rng draws happen unconditionally past this point, so a quiet token
  // leaves the caller's Rng in the same state as the uncancellable overload.
  Fr r = Fr::Random(rng);
  Fr s = Fr::Random(rng);

  G1 a = pk.vk.alpha_g1.Add(MsmAffine(pk.a_query, z_all, &cancel))
             .Add(pk.delta_g1.ScalarMul(r.ToBigUInt()));
  G2 b = pk.vk.beta_g2.Add(MsmAffine(pk.b_g2_query, z_all, &cancel))
             .Add(pk.vk.delta_g2.ScalarMul(s.ToBigUInt()));
  G1 b_g1 = pk.beta_g1.Add(MsmAffine(pk.b_g1_query, z_all, &cancel))
                .Add(pk.delta_g1.ScalarMul(s.ToBigUInt()));
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }

  G1 c = MsmAffine(pk.l_query, z_wit, &cancel)
             .Add(MsmAffine(pk.h_query, h_scalars, &cancel))
             .Add(a.ScalarMul(s.ToBigUInt()))
             .Add(b_g1.ScalarMul(r.ToBigUInt()))
             .Add(pk.delta_g1.ScalarMul((r * s).ToBigUInt()).Negate());
  if (cancel.cancelled()) {
    return ProveResult{ProveStatus::kCancelled, Proof{}};
  }
  stage_done("msm");

  return ProveResult{ProveStatus::kOk, Proof{a, b, c}};
}

namespace {

// The point-check contract shared by every Verify entry point (see the
// header). The parse path enforces the same rules, but a Proof constructed
// in-process bypasses it, so the verifier re-checks: an infinity A/B/C
// would trivialize its pairing factor (MillerLoop maps identity inputs to
// 1), and an out-of-subgroup B breaks bilinearity.
bool ProofPointsOk(const Proof& proof) {
  if (proof.a.IsInfinity() || proof.b.IsInfinity() || proof.c.IsInfinity()) {
    return false;
  }
  if (!proof.a.IsOnCurve() || !proof.c.IsOnCurve()) {
    return false;
  }
  return G2InSubgroup(proof.b);
}

// [IC]1 = ic[0] + sum_j x_j ic[j+1], the public-input linear combination.
G1 IcCombination(const VerifyingKey& vk, const std::vector<Fr>& public_inputs) {
  std::vector<G1> bases(vk.ic.begin() + 1, vk.ic.end());
  std::vector<BigUInt> scalars;
  scalars.reserve(public_inputs.size());
  for (const Fr& x : public_inputs) {
    scalars.push_back(x.ToBigUInt());
  }
  return vk.ic[0].Add(Msm(bases, scalars));
}

}  // namespace

bool Verify(const VerifyingKey& vk, const std::vector<Fr>& public_inputs, const Proof& proof) {
  if (public_inputs.size() + 1 != vk.ic.size()) {
    return false;
  }
  if (!ProofPointsOk(proof)) {
    return false;
  }
  G1 ic = IcCombination(vk, public_inputs);

  // e(A, B) = e(alpha, beta) e(IC, gamma) e(C, delta).
  return PairingProductIsOne({{proof.a, proof.b},
                              {ic.Negate(), vk.gamma_g2},
                              {proof.c.Negate(), vk.delta_g2},
                              {vk.alpha_g1.Negate(), vk.beta_g2}});
}

size_t PreparedVerifyingKey::SizeBytes() const {
  return sizeof(*this) + vk.ic.capacity() * sizeof(G1) +
         beta_prep.SizeBytes() + gamma_prep.SizeBytes() +
         delta_prep.SizeBytes();
}

PreparedVerifyingKey PrepareVerifyingKey(const VerifyingKey& vk) {
  PreparedVerifyingKey pvk;
  pvk.vk = vk;
  pvk.beta_prep = PrepareG2(vk.beta_g2);
  pvk.gamma_prep = PrepareG2(vk.gamma_g2);
  pvk.delta_prep = PrepareG2(vk.delta_g2);
  pvk.alpha_beta = Pairing(vk.alpha_g1, vk.beta_g2);
  return pvk;
}

bool Verify(const PreparedVerifyingKey& pvk, const std::vector<Fr>& public_inputs,
            const Proof& proof) {
  if (public_inputs.size() + 1 != pvk.vk.ic.size()) {
    return false;
  }
  if (!ProofPointsOk(proof)) {
    return false;
  }
  G1 ic = IcCombination(pvk.vk, public_inputs);

  // e(A, B) e(-IC, gamma) e(-C, delta) = e(alpha, beta), the unprepared
  // equation with the constant factor moved to the right-hand side (exact
  // rearrangement: the final exponentiation is a homomorphism).
  Fp12 f = MillerLoop(proof.a, proof.b) *
           MillerLoop(ic.Negate(), pvk.gamma_prep) *
           MillerLoop(proof.c.Negate(), pvk.delta_prep);
  return FinalExponentiation(f) == pvk.alpha_beta;
}

BatchVerifyResult BatchVerify(const PreparedVerifyingKey& pvk,
                              const std::vector<BatchEntry>& batch, Rng* rng) {
  BatchVerifyResult out;
  if (batch.empty()) {
    out.all_ok = true;
    return out;
  }

  // Structural pass: input arity and point membership per member. Offenders
  // are identified immediately and excluded from the combined check.
  std::vector<size_t> candidates;
  candidates.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].public_inputs.size() + 1 != pvk.vk.ic.size() ||
        !ProofPointsOk(batch[i].proof)) {
      out.rejected.push_back(i);
    } else {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) {
    return out;
  }

  // Random linear combination: raise member i's equation to z_i. Drawing
  // per-candidate keeps the draw sequence a pure function of (seed,
  // candidate count), so batches replay deterministically.
  std::vector<Fr> z(candidates.size());
  Fr z_sum = Fr::Zero();
  for (Fr& zi : z) {
    zi = RandomNonZero(rng);
    z_sum = z_sum + zi;
  }

  // Aggregate the fixed-G2 sides in the exponent (cheap Fr arithmetic), so
  // the whole batch pays one IC MSM, one C MSM and two line-replay Miller
  // loops:
  //   prod_i e(A_i, B_i)^{z_i}
  //     = e(alpha, beta)^{sum z_i} e(sum z_i IC_i, gamma) e(sum z_i C_i, delta).
  std::vector<Fr> ic_scalars(pvk.vk.ic.size(), Fr::Zero());
  std::vector<G1> c_bases;
  std::vector<BigUInt> c_scalars;
  c_bases.reserve(candidates.size());
  c_scalars.reserve(candidates.size());
  for (size_t k = 0; k < candidates.size(); ++k) {
    const BatchEntry& e = batch[candidates[k]];
    ic_scalars[0] = ic_scalars[0] + z[k];
    for (size_t j = 0; j < e.public_inputs.size(); ++j) {
      ic_scalars[j + 1] = ic_scalars[j + 1] + z[k] * e.public_inputs[j];
    }
    c_bases.push_back(e.proof.c);
    c_scalars.push_back(z[k].ToBigUInt());
  }
  std::vector<BigUInt> ic_big;
  ic_big.reserve(ic_scalars.size());
  for (const Fr& s : ic_scalars) {
    ic_big.push_back(s.ToBigUInt());
  }
  G1 ic_agg = Msm(pvk.vk.ic, ic_big);
  G1 c_agg = Msm(c_bases, c_scalars);

  Fp12 f = Fp12::One();
  for (size_t k = 0; k < candidates.size(); ++k) {
    const Proof& proof = batch[candidates[k]].proof;
    f = f * MillerLoop(proof.a.ScalarMul(z[k].ToBigUInt()), proof.b);
  }
  f = f * MillerLoop(ic_agg.Negate(), pvk.gamma_prep) *
      MillerLoop(c_agg.Negate(), pvk.delta_prep);
  bool combined = FinalExponentiation(f) == pvk.alpha_beta.Pow(z_sum.ToBigUInt());

  if (combined) {
    // Completeness of the combined check is exact, so structural rejects
    // are the only possible offenders here.
    out.all_ok = out.rejected.empty();
    return out;
  }
  // The combined product failed: at least one member's equation is wrong.
  // Fall back to per-proof verification to name the offenders.
  for (size_t i : candidates) {
    if (!Verify(pvk, batch[i].public_inputs, batch[i].proof)) {
      out.rejected.push_back(i);
    }
  }
  std::sort(out.rejected.begin(), out.rejected.end());
  return out;
}

Proof RandomizeProof(const VerifyingKey& vk, const Proof& proof, Rng* rng) {
  // (A, B, C) -> (t A, t^{-1} B + t^{-1} r delta, C + r A') where A' = t A.
  Fr t = RandomNonZero(rng);
  Fr r = Fr::Random(rng);
  Fr t_inv = t.Inverse();
  G1 a2 = proof.a.ScalarMul(t.ToBigUInt());
  G2 b2 = proof.b.ScalarMul(t_inv.ToBigUInt())
              .Add(vk.delta_g2.ScalarMul((t_inv * r).ToBigUInt()));
  G1 c2 = proof.c.Add(proof.a.ScalarMul(r.ToBigUInt()));
  return Proof{a2, b2, c2};
}

}  // namespace groth16
}  // namespace nope
