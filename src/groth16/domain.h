// Radix-2 FFT evaluation domains over BN254's scalar field (2-adicity 28).
// Used by the Groth16 prover's QAP division and by trusted setup.
// Transforms and batch inversion run data-parallel on the global ThreadPool;
// output bytes are independent of the thread count (DESIGN.md, "Parallel
// proving").
#ifndef SRC_GROTH16_DOMAIN_H_
#define SRC_GROTH16_DOMAIN_H_

#include <vector>

#include "src/base/cancellation.h"
#include "src/ff/fp.h"

namespace nope {

class EvaluationDomain {
 public:
  // Rounds min_size up to the next power of two (aborts past 2^28 -- a
  // statement-builder defect, see NOPE_INVARIANT in src/base/check.h).
  explicit EvaluationDomain(size_t min_size);

  size_t size() const { return size_; }
  const Fr& omega() const { return omega_; }

  // In-place coefficient <-> evaluation transforms on vectors of size().
  // The optional token is polled at butterfly-stage boundaries; once it
  // fires, remaining stages are skipped and *a is garbage, so callers that
  // pass a token must check it afterwards (groth16::Prove does). A null or
  // quiet token leaves the output bit-identical.
  void Fft(std::vector<Fr>* a, const CancellationToken* cancel = nullptr) const;
  void Ifft(std::vector<Fr>* a, const CancellationToken* cancel = nullptr) const;
  // Same over the coset shift * H.
  void CosetFft(std::vector<Fr>* a, const CancellationToken* cancel = nullptr) const;
  void CosetIfft(std::vector<Fr>* a, const CancellationToken* cancel = nullptr) const;

  // Z(x) = x^size - 1 evaluated on the coset (constant across the coset).
  Fr VanishingOnCoset() const;
  Fr EvaluateVanishing(const Fr& x) const;

  // The j-th Lagrange basis polynomial of this domain evaluated at tau, for
  // all j at once (batch-inverted); used by trusted setup.
  std::vector<Fr> LagrangeAt(const Fr& tau) const;

 private:
  static void ScaleByPowers(std::vector<Fr>* a, const Fr& factor);

  size_t size_;
  size_t log_size_;
  Fr omega_;
  Fr omega_inv_;
  Fr size_inv_;
  Fr shift_;
  Fr shift_inv_;
};

// Batch inversion (Montgomery's trick); zero entries are left as zero.
void BatchInvert(std::vector<Fr>* values);

}  // namespace nope

#endif  // SRC_GROTH16_DOMAIN_H_
