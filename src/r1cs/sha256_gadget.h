// SHA-256 in R1CS, with dynamic message length.
//
// DNSSEC RRSIGs sign SHA-256 digests of canonical buffers whose length is a
// witness, so the gadget hashes a maximum-length buffer and uses the paper's
// mask/indicator machinery (§4) to place padding and select the digest after
// the correct block. The caller must pass a buffer already masked beyond
// `len` (MaskNope), or use the convenience wrapper that does so.
#ifndef SRC_R1CS_SHA256_GADGET_H_
#define SRC_R1CS_SHA256_GADGET_H_

#include <vector>

#include "src/r1cs/parse_gadgets.h"

namespace nope {

// Fixed-length hash: message length known at circuit-build time.
// Returns 32 digest bytes as LCs. Cost: ~29k constraints per 64-byte block.
std::vector<LC> Sha256FixedGadget(ConstraintSystem* cs, const std::vector<LC>& msg_bytes);

// Dynamic-length hash of the first `len` bytes of msg_bytes (len witness,
// len <= msg_bytes.size()). msg_bytes must be zero beyond len.
std::vector<LC> Sha256DynamicGadget(ConstraintSystem* cs, const std::vector<LC>& masked_bytes,
                                    const LC& len);

}  // namespace nope

#endif  // SRC_R1CS_SHA256_GADGET_H_
