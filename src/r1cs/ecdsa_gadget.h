// In-circuit ECDSA signature verification (paper §5.3 / Appendix C).
//
// Two modes:
//   * k256Msm — the direct check R == h0*G + h1*Q with full-width scalars.
//   * kGlvMsm — the Antipa et al. transform: the prover supplies half-size
//     side information v (found by partial extended Euclid outside the
//     constraints) and the circuit validates it and checks a half-width MSM
//     instead, saving ~2x in point operations.
#ifndef SRC_R1CS_ECDSA_GADGET_H_
#define SRC_R1CS_ECDSA_GADGET_H_

#include "src/r1cs/ec_gadget.h"

namespace nope {

enum class EcdsaMsmMode { k256Msm, kGlvMsm };

struct EcdsaSignatureWitness {
  BigUInt r;
  BigUInt s;
};

// Enforces that (r, s) is a valid ECDSA signature on digest scalar z under
// public key Q. `z` must be a canonical Num in ec->scalar_field(); Q a point
// already on-curve-checked. The caller supplies native values via the Nums'
// current assignment.
void EnforceEcdsaVerify(EcGadget* ec, const EcGadget::Point& pub_key,
                        const ModularGadget::Num& z, const ModularGadget::Num& r,
                        const ModularGadget::Num& s, EcdsaMsmMode mode);

// Proves knowledge of the private key d for Q (Q == d*G), the paper's
// S_KSK.K component (§3.2).
void EnforceKnowledgeOfPrivateKey(EcGadget* ec, const EcGadget::Point& pub_key,
                                  const BigUInt& private_key);

}  // namespace nope

#endif  // SRC_R1CS_ECDSA_GADGET_H_
