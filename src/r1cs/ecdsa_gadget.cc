#include <algorithm>
#include "src/r1cs/ecdsa_gadget.h"

#include <stdexcept>

#include "src/r1cs/parse_gadgets.h"

namespace nope {

namespace {

Var ConstantZeroBit(ConstraintSystem* cs) {
  Var z = cs->AddWitness(Fr::Zero());
  cs->EnforceEqual(LC(z), LC());
  return z;
}

void PadBitsMsb(ConstraintSystem* cs, std::vector<std::vector<Var>>* bit_sets) {
  size_t max_len = 0;
  for (const auto& b : *bit_sets) {
    max_len = std::max(max_len, b.size());
  }
  Var zero = ConstantZeroBit(cs);
  for (auto& b : *bit_sets) {
    if (b.size() < max_len) {
      b.insert(b.begin(), max_len - b.size(), zero);
    }
  }
}

}  // namespace

void EnforceEcdsaVerify(EcGadget* ec, const EcGadget::Point& pub_key,
                        const ModularGadget::Num& z, const ModularGadget::Num& r,
                        const ModularGadget::Num& s, EcdsaMsmMode mode) {
  GadgetScope scope(ec->field().cs(), "EcdsaVerify");
  ModularGadget& fn = ec->scalar_field();
  ModularGadget& fp = ec->field();
  const CurveSpec& spec = ec->native().spec();
  const NativeCurve& curve = ec->native();

  BigUInt n = spec.n;
  BigUInt r_val = fn.ValueOfMod(r);
  BigUInt s_val = fn.ValueOfMod(s);
  BigUInt z_val = fn.ValueOfMod(z);
  if (s_val.IsZero() || r_val.IsZero()) {
    throw std::invalid_argument("degenerate ECDSA signature");
  }

  // s * s_inv == 1 (mod n) — also enforces s != 0.
  BigUInt s_inv_val = s_val.InvMod(n);
  ModularGadget::Num s_inv = fn.Alloc(s_inv_val);
  fn.EnforceBilinearZero({{s, s_inv}}, {}, {fn.Constant(BigUInt(1))});

  ModularGadget::Num h0 = fn.MulMod(z, s_inv);
  ModularGadget::Num h1 = fn.MulMod(r, s_inv);
  BigUInt h0_val = fn.ValueOfMod(h0);
  BigUInt h1_val = fn.ValueOfMod(h1);

  // Witness R = h0*G + h1*Q and bind R.x == r (mod n).
  NativeCurve::Pt r_point =
      curve.Add(curve.ScalarMul(h0_val, curve.Generator()), curve.ScalarMul(h1_val, pub_key.value));
  if (r_point.infinity) {
    throw std::invalid_argument("ECDSA verification hits infinity");
  }
  EcGadget::Point rp = ec->AllocPoint(r_point);
  ModularGadget::Num rx_as_scalar{rp.x.limbs, rp.x.max_bits};
  fn.EnforceEqualMod(rx_as_scalar, r);
  (void)fp;

  ConstraintSystem* cs = ec->field().cs();
  size_t nbits = n.BitLength();

  if (mode == EcdsaMsmMode::k256Msm) {
    // Full-width check: h0*G + h1*Q - R == 0, as one shared-table MSM.
    std::vector<std::vector<Var>> bits = {ec->ScalarBitsMsb(h0, nbits),
                                          ec->ScalarBitsMsb(h1, nbits)};
    // Constant scalar 1 for the -R term.
    Var zero = ConstantZeroBit(cs);
    std::vector<Var> one_bits(nbits, zero);
    one_bits.back() = kOneVar;
    bits.push_back(one_bits);
    ec->EnforceMsmZero(bits, {ec->ConstantPoint(curve.Generator()), pub_key, ec->Negate(rp)});
    return;
  }

  // --- GLV / Antipa transform (Appendix C) ----------------------------------
  auto half_gcd = BigUInt::HalfGcd(n, h1_val);
  BigUInt v_val = half_gcd.v;
  BigUInt w_val = half_gcd.w;
  bool negated = half_gcd.v_negated;  // h1 * v == (negated ? -w : w) (mod n)
  if (v_val.IsZero()) {
    v_val = BigUInt(1);
    w_val = h1_val;
    negated = false;
  }

  size_t split = (nbits + 1) / 2;
  size_t half_bits = split + 2;
  ModularGadget::Num v_num = fn.AllocNarrow(v_val, half_bits);
  ModularGadget::Num w_num = fn.AllocNarrow(w_val, half_bits);
  Var neg_bit = cs->AddWitness(negated ? Fr::One() : Fr::Zero());
  cs->EnforceBoolean(neg_bit);

  // h1 * v == +-w (mod n).
  ModularGadget::Num neg_w = fn.Sub(fn.Constant(BigUInt()), w_num);
  ModularGadget::Num w_signed = fn.SelectBit(neg_bit, neg_w, w_num);
  fn.EnforceBilinearZero({{h1, v_num}}, {}, {w_signed});

  // h0 * v == v0 + 2^split * v1 (mod n), with v0, v1 half-width.
  BigUInt t_val = fn.ValueOfMod(h0).MulMod(v_val, n);
  BigUInt v0_val = t_val % (BigUInt(1) << split);
  BigUInt v1_val = t_val >> split;
  ModularGadget::Num v0 = fn.AllocNarrow(v0_val, split);
  ModularGadget::Num v1 = fn.AllocNarrow(v1_val, nbits - split + 1);
  ModularGadget::Num composed = fn.Add(v0, fn.ShiftLeftBits(v1, split));
  fn.EnforceBilinearZero({{h0, v_num}}, {}, {composed});

  NativeCurve::Pt h_point = curve.ScalarMul((BigUInt(1) << split) % n, curve.Generator());

  // Q with the sign of w folded in.
  EcGadget::Point q_eff = ec->SelectPoint(neg_bit, ec->Negate(pub_key), pub_key);

  // v0*G + v1*H + w*(+-Q) - v*R == 0: one half-width shared-table MSM.
  std::vector<std::vector<Var>> bits = {
      ec->ScalarBitsMsb(v0, split), ec->ScalarBitsMsb(v1, nbits - split + 1),
      ec->ScalarBitsMsb(w_num, half_bits), ec->ScalarBitsMsb(v_num, half_bits)};
  PadBitsMsb(cs, &bits);
  ec->EnforceMsmZero(bits, {ec->ConstantPoint(curve.Generator()), ec->ConstantPoint(h_point),
                            q_eff, ec->Negate(rp)});
}

void EnforceKnowledgeOfPrivateKey(EcGadget* ec, const EcGadget::Point& pub_key,
                                  const BigUInt& private_key) {
  GadgetScope scope(ec->field().cs(), "KskKnowledge");
  ModularGadget& fn = ec->scalar_field();
  ModularGadget::Num d = fn.Alloc(private_key);
  std::vector<std::vector<Var>> bits = {ec->ScalarBitsMsb(d)};
  EcGadget::Point computed = ec->Msm(bits, {ec->ConstantPoint(ec->native().Generator())});
  ec->EnforceEqualPoints(computed, pub_key);
}

}  // namespace nope
