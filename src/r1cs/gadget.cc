#include "src/r1cs/gadget.h"

#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "src/base/biguint.h"
#include "src/base/sha256.h"
#include "src/r1cs/bignum_gadget.h"
#include "src/r1cs/ec_gadget.h"
#include "src/r1cs/ecdsa_gadget.h"
#include "src/r1cs/mimc_gadget.h"
#include "src/r1cs/parse_gadgets.h"
#include "src/r1cs/rsa_gadget.h"
#include "src/r1cs/sha256_gadget.h"
#include "src/r1cs/toy_curve.h"
#include "src/sig/rsa.h"

namespace nope {
namespace {

// Decodes v as a small integer; false when v > limit (e.g. a mutated field
// element outside the gadget's documented domain).
bool AsSmallU64(const Fr& v, uint64_t limit, uint64_t* out) {
  BigUInt b = v.ToBigUInt();
  if (b > BigUInt(limit)) {
    return false;
  }
  *out = b.LowU64();
  return true;
}

Fr U64Fr(uint64_t v) { return Fr::FromU64(v); }

// Integer value of a bignum under an explicit assignment (limbs are
// little-endian with weight 2^(limb_bits * i)).
BigUInt NumValue(const ModularGadget::Num& num, const std::vector<Fr>& values,
                 size_t limb_bits) {
  BigUInt acc;
  for (size_t i = num.limbs.size(); i-- > 0;) {
    acc = (acc << limb_bits) + EvalLc(num.limbs[i], values).ToBigUInt();
  }
  return acc;
}

// Reconstructs a Num view over a contiguous run of io wires.
ModularGadget::Num NumFromWires(const std::vector<LC>& wires, size_t offset, size_t limbs) {
  ModularGadget::Num num;
  for (size_t i = 0; i < limbs; ++i) {
    num.limbs.push_back(wires[offset + i]);
  }
  return num;
}

bool OnCurveResidues(const CurveSpec& spec, const BigUInt& x, const BigUInt& y) {
  BigUInt lhs = y.MulMod(y, spec.p);
  BigUInt rhs = x.MulMod(x, spec.p).MulMod(x, spec.p);
  rhs = rhs.AddMod(spec.a.MulMod(x, spec.p), spec.p).AddMod(spec.b, spec.p);
  return lhs == rhs;
}

const CurveSpec& AuditCurve() {
  static const CurveSpec spec = FindToyCurve(42);
  return spec;
}

// --- parsing/bit primitives -------------------------------------------------

class BooleanGadget : public Gadget {
 public:
  std::string name() const override { return "boolean"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Var v = cs->AddWitness(U64Fr(rng->NextBelow(2)));
    cs->EnforceBoolean(v);
    return GadgetIo{{}, {LC(v)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Fr v = EvalLc(io.outputs[0], values);
    return v == Fr::Zero() || v == Fr::One();
  }
};

class ToBitsGadget : public Gadget {
 public:
  static constexpr size_t kBits = 16;
  std::string name() const override { return "to_bits"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Var x = cs->AddWitness(U64Fr(rng->NextBelow(uint64_t{1} << kBits)));
    std::vector<Var> bits = ToBits(cs, LC(x), kBits);
    GadgetIo io;
    io.inputs.emplace_back(x);
    for (Var b : bits) {
      io.outputs.emplace_back(b);
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    uint64_t x = 0;
    if (!AsSmallU64(EvalLc(io.inputs[0], values), (uint64_t{1} << kBits) - 1, &x)) {
      return false;  // the decomposition itself must force x < 2^kBits
    }
    for (size_t i = 0; i < kBits; ++i) {
      if (EvalLc(io.outputs[i], values) != U64Fr((x >> i) & 1)) {
        return false;
      }
    }
    return true;
  }
};

class AllocBytesGadget : public Gadget {
 public:
  static constexpr size_t kLen = 8;
  std::string name() const override { return "alloc_bytes"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    std::vector<Var> bytes = AllocateBytes(cs, rng->NextBytes(kLen));
    GadgetIo io;
    for (Var b : bytes) {
      io.outputs.emplace_back(b);
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    for (const LC& b : io.outputs) {
      uint64_t v = 0;
      if (!AsSmallU64(EvalLc(b, values), 255, &v)) {
        return false;
      }
    }
    return true;
  }
};

class IndicatorGadget : public Gadget {
 public:
  static constexpr size_t kLen = 8;
  std::string name() const override { return "indicator"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Var idx = cs->AddWitness(U64Fr(rng->NextBelow(kLen)));
    std::vector<Var> res = Indicator(cs, LC(idx), kLen);
    GadgetIo io;
    io.inputs.emplace_back(idx);
    for (Var r : res) {
      io.outputs.emplace_back(r);
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    uint64_t idx = 0;
    if (!AsSmallU64(EvalLc(io.inputs[0], values), kLen - 1, &idx)) {
      return false;  // indicator must reject out-of-range indices
    }
    for (size_t j = 0; j < kLen; ++j) {
      if (EvalLc(io.outputs[j], values) != U64Fr(j == idx ? 1 : 0)) {
        return false;
      }
    }
    return true;
  }
};

class MapNonZeroToZeroGadget : public Gadget {
 public:
  std::string name() const override { return "map_nonzero_to_zero"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Fr xv = rng->NextBelow(2) == 0 ? Fr::Zero() : U64Fr(1 + rng->NextBelow(1000));
    Var x = cs->AddWitness(xv);
    Var z = MapNonZeroToZero(cs, LC(x));
    return GadgetIo{{LC(x)}, {LC(z)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    // The gadget's only guarantee: x != 0 forces z == 0 (z is deliberately
    // unconstrained when x == 0; callers pin it via a sum, cf. Indicator).
    Fr x = EvalLc(io.inputs[0], values);
    Fr z = EvalLc(io.outputs[0], values);
    return x.IsZero() || z.IsZero();
  }
};

class IsEqualGadget : public Gadget {
 public:
  std::string name() const override { return "is_equal"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Fr xv = U64Fr(rng->NextBelow(16));
    Fr yv = rng->NextBelow(2) == 0 ? xv : U64Fr(rng->NextBelow(16));
    Var x = cs->AddWitness(xv);
    Var y = cs->AddWitness(yv);
    Var z = IsEqual(cs, LC(x), LC(y));
    return GadgetIo{{LC(x), LC(y)}, {LC(z)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Fr x = EvalLc(io.inputs[0], values);
    Fr y = EvalLc(io.inputs[1], values);
    return EvalLc(io.outputs[0], values) == (x == y ? Fr::One() : Fr::Zero());
  }
};

class IsLessOrEqualGadget : public Gadget {
 public:
  static constexpr size_t kBits = 8;
  std::string name() const override { return "is_less_or_equal"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Var a = cs->AddWitness(U64Fr(rng->NextBelow(256)));
    Var b = cs->AddWitness(U64Fr(rng->NextBelow(256)));
    Var z = IsLessOrEqual(cs, LC(a), LC(b), kBits);
    return GadgetIo{{LC(a), LC(b)}, {LC(z)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Fr z = EvalLc(io.outputs[0], values);
    if (z != Fr::Zero() && z != Fr::One()) {
      return false;
    }
    uint64_t a = 0;
    uint64_t b = 0;
    // Contract: both operands are known (range-checked by the caller) to fit
    // in kBits bits; outside that domain the comparison promises nothing.
    if (!AsSmallU64(EvalLc(io.inputs[0], values), 255, &a) ||
        !AsSmallU64(EvalLc(io.inputs[1], values), 255, &b)) {
      return true;
    }
    return z == (a <= b ? Fr::One() : Fr::Zero());
  }
};

// --- mask / slice / scan ----------------------------------------------------

// Common shape: unchecked byte array + witnessed length/index input.
struct ArrayIo {
  static GadgetIo Make(const std::vector<Var>& arr, Var scalar, const std::vector<LC>& out) {
    GadgetIo io;
    for (Var v : arr) {
      io.inputs.emplace_back(v);
    }
    io.inputs.emplace_back(scalar);
    io.outputs = out;
    return io;
  }
};

class MaskGadget : public Gadget {
 public:
  static constexpr size_t kLen = 8;
  explicit MaskGadget(bool nope) : nope_(nope) {}
  std::string name() const override { return nope_ ? "mask_nope" : "mask_naive"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    std::vector<Var> arr = AllocateBytesUnchecked(cs, rng->NextBytes(kLen));
    Var len = cs->AddWitness(U64Fr(rng->NextBelow(kLen + 1)));
    std::vector<LC> arr_lcs(arr.begin(), arr.end());
    std::vector<LC> out =
        nope_ ? MaskNope(cs, arr_lcs, LC(len)) : MaskNaive(cs, arr_lcs, LC(len));
    return ArrayIo::Make(arr, len, out);
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    uint64_t len = 0;
    // Contract: len is a length in [0, kLen], range-checked by the caller
    // (the NOPE form's indicator happens to enforce this itself).
    if (!AsSmallU64(EvalLc(io.inputs[kLen], values), kLen, &len)) {
      return true;
    }
    for (size_t i = 0; i < kLen; ++i) {
      Fr expect = i < len ? EvalLc(io.inputs[i], values) : Fr::Zero();
      if (EvalLc(io.outputs[i], values) != expect) {
        return false;
      }
    }
    return true;
  }

 private:
  bool nope_;
};

class SliceGadget : public Gadget {
 public:
  enum class Flavor { kNaive, kNope, kNopePacked };
  explicit SliceGadget(Flavor flavor) : flavor_(flavor) {}
  std::string name() const override {
    switch (flavor_) {
      case Flavor::kNaive:
        return "slice_naive";
      case Flavor::kNope:
        return "slice_nope";
      case Flavor::kNopePacked:
        return "slice_nope_packed";
    }
    return "slice";
  }
  size_t ArrLen() const { return flavor_ == Flavor::kNopePacked ? 32 : 16; }
  size_t OutLen() const { return flavor_ == Flavor::kNopePacked ? 16 : 4; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    std::vector<Var> arr = AllocateBytesUnchecked(cs, rng->NextBytes(ArrLen()));
    Var start = cs->AddWitness(U64Fr(rng->NextBelow(ArrLen())));
    std::vector<LC> arr_lcs(arr.begin(), arr.end());
    std::vector<LC> out;
    switch (flavor_) {
      case Flavor::kNaive:
        out = SliceNaive(cs, arr_lcs, LC(start), OutLen());
        break;
      case Flavor::kNope:
        out = SliceNope(cs, arr_lcs, LC(start), OutLen());
        break;
      case Flavor::kNopePacked:
        out = SliceNopePacked(cs, arr_lcs, LC(start), OutLen());
        break;
    }
    return ArrayIo::Make(arr, start, out);
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    size_t m = ArrLen();
    uint64_t start = 0;
    // Contract: start is an index into arr (callers constrain it; the naive
    // form's indicator enforces it outright).
    if (!AsSmallU64(EvalLc(io.inputs[m], values), m - 1, &start)) {
      return true;
    }
    auto byte_at = [&](size_t i) {
      return i < m ? EvalLc(io.inputs[i], values) : Fr::Zero();
    };
    if (flavor_ != Flavor::kNopePacked) {
      for (size_t j = 0; j < OutLen(); ++j) {
        if (EvalLc(io.outputs[j], values) != byte_at(start + j)) {
          return false;
        }
      }
      return true;
    }
    // Packed: each output wire holds 16 sliced bytes big-endian.
    for (size_t t = 0; t < OutLen() / 16; ++t) {
      Fr expect = Fr::Zero();
      for (size_t j = 0; j < 16; ++j) {
        expect = expect * U64Fr(256) + byte_at(start + 16 * t + j);
      }
      if (EvalLc(io.outputs[t], values) != expect) {
        return false;
      }
    }
    return true;
  }

 private:
  Flavor flavor_;
};

class CondShiftGadget : public Gadget {
 public:
  static constexpr size_t kLen = 8;
  static constexpr size_t kShift = 3;
  std::string name() const override { return "cond_shift"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    std::vector<Var> arr = AllocateBytesUnchecked(cs, rng->NextBytes(kLen));
    Var flag = cs->AddWitness(U64Fr(rng->NextBelow(2)));
    cs->EnforceBoolean(flag);
    std::vector<LC> arr_lcs(arr.begin(), arr.end());
    std::vector<LC> out = CondShift(cs, arr_lcs, kShift, flag);
    return ArrayIo::Make(arr, flag, out);
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Fr flag = EvalLc(io.inputs[kLen], values);
    if (flag != Fr::Zero() && flag != Fr::One()) {
      return false;
    }
    bool shifted = flag == Fr::One();
    for (size_t i = 0; i < kLen; ++i) {
      size_t src = shifted ? i + kShift : i;
      Fr expect = src < kLen ? EvalLc(io.inputs[src], values) : Fr::Zero();
      if (EvalLc(io.outputs[i], values) != expect) {
        return false;
      }
    }
    return true;
  }
};

class PlaceAtGadget : public Gadget {
 public:
  static constexpr size_t kArrLen = 4;
  static constexpr size_t kOutLen = 16;
  std::string name() const override { return "place_at"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    std::vector<Var> arr = AllocateBytesUnchecked(cs, rng->NextBytes(kArrLen));
    Var offset = cs->AddWitness(U64Fr(rng->NextBelow(kOutLen - kArrLen + 1)));
    std::vector<LC> arr_lcs(arr.begin(), arr.end());
    std::vector<LC> out = PlaceAt(cs, arr_lcs, LC(offset), kOutLen);
    return ArrayIo::Make(arr, offset, out);
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    uint64_t offset = 0;
    // Contract: offset + len(arr) <= out_len.
    if (!AsSmallU64(EvalLc(io.inputs[kArrLen], values), kOutLen - kArrLen, &offset)) {
      return true;
    }
    for (size_t i = 0; i < kOutLen; ++i) {
      Fr expect = (i >= offset && i < offset + kArrLen)
                      ? EvalLc(io.inputs[i - offset], values)
                      : Fr::Zero();
      if (EvalLc(io.outputs[i], values) != expect) {
        return false;
      }
    }
    return true;
  }
};

class ScanRecordsGadget : public Gadget {
 public:
  static constexpr size_t kHeader = 2;
  static constexpr size_t kLen = 24;
  std::string name() const override { return "scan_records"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    // Well-formed toy stream: header, then records [len][type][data...].
    Bytes msg(kHeader, 0);
    std::vector<size_t> starts;
    while (msg.size() + 2 <= kLen) {
      starts.push_back(msg.size());
      size_t max_rec = kLen - msg.size();
      size_t rec = 2 + rng->NextBelow(std::min<size_t>(max_rec - 1, 6));
      msg.push_back(static_cast<uint8_t>(rec));
      for (size_t i = 1; i < rec; ++i) {
        msg.push_back(static_cast<uint8_t>(rng->NextBelow(256)));
      }
    }
    msg.resize(kLen);  // the loop never overshoots; keep the shape explicit
    std::vector<Var> vars = AllocateBytes(cs, msg);
    size_t start_val = starts[rng->NextBelow(starts.size())];
    Var start = cs->AddWitness(U64Fr(start_val));
    std::vector<LC> msg_lcs(vars.begin(), vars.end());
    ScanResult res = ScanRecords(cs, msg_lcs, LC(start), LC::Constant(U64Fr(kHeader)));
    GadgetIo io = ArrayIo::Make(vars, start, {res.length});
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    // Contract: all msg bytes are range-checked bytes (AllocateBytes); the
    // gadget then forces `start` onto a record boundary of the stream and
    // `length` to the record's length byte.
    uint64_t bytes[kLen];
    for (size_t i = 0; i < kLen; ++i) {
      if (!AsSmallU64(EvalLc(io.inputs[i], values), 255, &bytes[i])) {
        return true;
      }
    }
    uint64_t start = 0;
    if (!AsSmallU64(EvalLc(io.inputs[kLen], values), kLen - 1, &start)) {
      return false;  // the in-circuit indicator must keep start in range
    }
    std::set<uint64_t> boundaries;
    uint64_t pos = kHeader;
    while (pos < kLen) {
      boundaries.insert(pos);
      if (bytes[pos] == 0) {
        break;  // malformed record; the walk cannot continue
      }
      pos += bytes[pos];
    }
    if (boundaries.find(start) == boundaries.end()) {
      return false;
    }
    return EvalLc(io.outputs[0], values) == U64Fr(bytes[start]);
  }
};

// --- hashes -----------------------------------------------------------------

class MimcDynamicHashGadget : public Gadget {
 public:
  static constexpr size_t kMaxLen = 32;
  std::string name() const override { return "mimc_dynamic"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Bytes data = rng->NextBytes(kMaxLen);
    std::vector<Var> arr = AllocateBytes(cs, data);
    Var len = cs->AddWitness(U64Fr(rng->NextBelow(kMaxLen + 1)));
    std::vector<LC> arr_lcs(arr.begin(), arr.end());
    std::vector<LC> masked = MaskNope(cs, arr_lcs, LC(len));
    std::vector<LC> digest = MimcDynamicGadget(cs, masked, LC(len));
    GadgetIo io = ArrayIo::Make(arr, len, digest);
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Bytes data;
    for (size_t i = 0; i < kMaxLen; ++i) {
      uint64_t b = 0;
      if (!AsSmallU64(EvalLc(io.inputs[i], values), 255, &b)) {
        return true;
      }
      data.push_back(static_cast<uint8_t>(b));
    }
    uint64_t len = 0;
    if (!AsSmallU64(EvalLc(io.inputs[kMaxLen], values), kMaxLen, &len)) {
      return true;
    }
    data.resize(len);
    Bytes digest = MimcHashBytes(data);
    for (size_t i = 0; i < digest.size(); ++i) {
      if (EvalLc(io.outputs[i], values) != U64Fr(digest[i])) {
        return false;
      }
    }
    return true;
  }
};

class Sha256FixedHashGadget : public Gadget {
 public:
  static constexpr size_t kMsgLen = 16;
  std::string name() const override { return "sha256_fixed"; }
  bool IsExpensive() const override { return true; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Bytes msg = rng->NextBytes(kMsgLen);
    std::vector<Var> vars = AllocateBytes(cs, msg);
    std::vector<LC> msg_lcs(vars.begin(), vars.end());
    std::vector<LC> digest = Sha256FixedGadget(cs, msg_lcs);
    GadgetIo io;
    for (Var v : vars) {
      io.inputs.emplace_back(v);
    }
    io.outputs = digest;
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Bytes msg;
    for (const LC& in : io.inputs) {
      uint64_t b = 0;
      if (!AsSmallU64(EvalLc(in, values), 255, &b)) {
        return true;
      }
      msg.push_back(static_cast<uint8_t>(b));
    }
    Bytes digest = Sha256::Hash(msg);
    for (size_t i = 0; i < digest.size(); ++i) {
      if (EvalLc(io.outputs[i], values) != U64Fr(digest[i])) {
        return false;
      }
    }
    return true;
  }
};

// --- bignum -----------------------------------------------------------------

class BignumMulModGadget : public Gadget {
 public:
  explicit BignumMulModGadget(bool nope) : nope_(nope) {
    modulus_ = BigUInt::FromHex("ffffffffffffffc5");  // 2^64 - 59, prime
  }
  std::string name() const override { return nope_ ? "bignum_mulmod_nope" : "bignum_mulmod_naive"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    ModularGadget g(cs, modulus_);
    ModularGadget::Num x = g.Alloc(BigUInt::RandomBelow(rng, modulus_));
    ModularGadget::Num y = g.Alloc(BigUInt::RandomBelow(rng, modulus_));
    ModularGadget::Num z = nope_ ? g.MulMod(x, y) : g.NaiveMulMod(x, y);
    GadgetIo io;
    for (const ModularGadget::Num* n : {&x, &y}) {
      for (const LC& limb : n->limbs) {
        io.inputs.push_back(limb);
      }
    }
    io.outputs = z.limbs;
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    size_t nl = io.inputs.size() / 2;
    ModularGadget::Num x = NumFromWires(io.inputs, 0, nl);
    ModularGadget::Num y = NumFromWires(io.inputs, nl, nl);
    ModularGadget::Num z;
    z.limbs = io.outputs;
    BigUInt xv = NumValue(x, values, 32) % modulus_;
    BigUInt yv = NumValue(y, values, 32) % modulus_;
    BigUInt zv = NumValue(z, values, 32) % modulus_;
    return zv == xv.MulMod(yv, modulus_);
  }

 private:
  bool nope_;
  BigUInt modulus_;
};

// --- elliptic curve / signatures -------------------------------------------

class EcOnCurveGadget : public Gadget {
 public:
  std::string name() const override { return "ec_on_curve"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    const CurveSpec& spec = AuditCurve();
    NativeCurve curve(spec);
    BigUInt k = BigUInt::RandomBelow(rng, spec.n - BigUInt(2)) + BigUInt(1);
    EcGadget ec(cs, spec, EcGadget::Technique::kNopeHints);
    EcGadget::Point p = ec.AllocPoint(curve.ScalarMul(k, curve.Generator()));
    GadgetIo io;
    for (const LC& limb : p.x.limbs) {
      io.outputs.push_back(limb);
    }
    for (const LC& limb : p.y.limbs) {
      io.outputs.push_back(limb);
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    const CurveSpec& spec = AuditCurve();
    size_t nl = io.outputs.size() / 2;
    BigUInt x = NumValue(NumFromWires(io.outputs, 0, nl), values, 32) % spec.p;
    BigUInt y = NumValue(NumFromWires(io.outputs, nl, nl), values, 32) % spec.p;
    return OnCurveResidues(spec, x, y);
  }
};

class EcAddGadget : public Gadget {
 public:
  explicit EcAddGadget(EcGadget::Technique technique) : technique_(technique) {}
  std::string name() const override {
    return technique_ == EcGadget::Technique::kNopeHints ? "ec_add_hint" : "ec_add_naive";
  }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    const CurveSpec& spec = AuditCurve();
    NativeCurve curve(spec);
    NativeCurve::Pt pv;
    NativeCurve::Pt qv;
    do {
      BigUInt k1 = BigUInt::RandomBelow(rng, spec.n - BigUInt(2)) + BigUInt(1);
      BigUInt k2 = BigUInt::RandomBelow(rng, spec.n - BigUInt(2)) + BigUInt(1);
      pv = curve.ScalarMul(k1, curve.Generator());
      qv = curve.ScalarMul(k2, curve.Generator());
    } while (curve.AddIsDegenerate(pv, qv));
    EcGadget ec(cs, spec, technique_);
    EcGadget::Point p = ec.AllocPoint(pv);
    EcGadget::Point q = ec.AllocPoint(qv);
    EcGadget::Point r = ec.Add(p, q);
    GadgetIo io;
    for (const EcGadget::Point* pt : {&p, &q}) {
      for (const LC& limb : pt->x.limbs) {
        io.inputs.push_back(limb);
      }
      for (const LC& limb : pt->y.limbs) {
        io.inputs.push_back(limb);
      }
    }
    for (const LC& limb : r.x.limbs) {
      io.outputs.push_back(limb);
    }
    for (const LC& limb : r.y.limbs) {
      io.outputs.push_back(limb);
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    const CurveSpec& spec = AuditCurve();
    size_t nl = io.inputs.size() / 4;
    BigUInt px = NumValue(NumFromWires(io.inputs, 0, nl), values, 32) % spec.p;
    BigUInt py = NumValue(NumFromWires(io.inputs, nl, nl), values, 32) % spec.p;
    BigUInt qx = NumValue(NumFromWires(io.inputs, 2 * nl, nl), values, 32) % spec.p;
    BigUInt qy = NumValue(NumFromWires(io.inputs, 3 * nl, nl), values, 32) % spec.p;
    size_t ol = io.outputs.size() / 2;
    BigUInt rx = NumValue(NumFromWires(io.outputs, 0, ol), values, 32) % spec.p;
    BigUInt ry = NumValue(NumFromWires(io.outputs, ol, ol), values, 32) % spec.p;
    if (!OnCurveResidues(spec, px, py) || !OnCurveResidues(spec, qx, qy) ||
        !OnCurveResidues(spec, rx, ry) || px == qx) {
      return false;
    }
    if (technique_ == EcGadget::Technique::kNaive) {
      // The naive form pins R = P + Q exactly (witnessed slope + inverse).
      NativeCurve curve(spec);
      NativeCurve::Pt sum = curve.Add({px, py, false}, {qx, qy, false});
      return rx == sum.x && ry == sum.y;
    }
    // Hint form (§5.2): R lies on the curve and its reflection is collinear
    // with P and Q, i.e. R is one of the line's three curve intersections
    // {P+Q, -P, -Q}. The statement layer pins the choice via its final
    // fixed-point equality; per-gadget that IS the contract.
    BigUInt lhs = qy.SubMod(py, spec.p).MulMod(rx.SubMod(qx, spec.p), spec.p);
    BigUInt rhs = ry.AddMod(qy, spec.p).MulMod(qx.SubMod(px, spec.p), spec.p);
    return lhs.AddMod(rhs, spec.p).IsZero();
  }

 private:
  EcGadget::Technique technique_;
};

class EcdsaVerifyGadget : public Gadget {
 public:
  explicit EcdsaVerifyGadget(EcdsaMsmMode mode) : mode_(mode) {}
  std::string name() const override {
    return mode_ == EcdsaMsmMode::kGlvMsm ? "ecdsa_verify_glv" : "ecdsa_verify_256";
  }
  bool IsExpensive() const override { return true; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    const CurveSpec& spec = AuditCurve();
    NativeCurve curve(spec);
    BigUInt priv = BigUInt::RandomBelow(rng, spec.n - BigUInt(1)) + BigUInt(1);
    NativeCurve::Pt pub_val = curve.ScalarMul(priv, curve.Generator());
    Bytes digest = rng->NextBytes(31);
    ToyEcdsaSignature sig = ToyEcdsaSign(spec, priv, digest, rng);

    EcGadget ec(cs, spec, EcGadget::Technique::kNopeHints);
    EcGadget::Point pub = ec.AllocPoint(pub_val);
    ModularGadget::Num z = ec.scalar_field().Alloc(BigUInt::FromBytes(digest) % spec.n);
    ModularGadget::Num r = ec.scalar_field().Alloc(sig.r);
    ModularGadget::Num s = ec.scalar_field().Alloc(sig.s);
    EnforceEcdsaVerify(&ec, pub, z, r, s, mode_);
    GadgetIo io;
    for (const ModularGadget::Num* n : {&pub.x, &pub.y, &z, &r, &s}) {
      for (const LC& limb : n->limbs) {
        io.inputs.push_back(limb);
      }
    }
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    const CurveSpec& spec = AuditCurve();
    size_t nl = io.inputs.size() / 5;
    BigUInt px = NumValue(NumFromWires(io.inputs, 0, nl), values, 32) % spec.p;
    BigUInt py = NumValue(NumFromWires(io.inputs, nl, nl), values, 32) % spec.p;
    BigUInt z = NumValue(NumFromWires(io.inputs, 2 * nl, nl), values, 32) % spec.n;
    BigUInt r = NumValue(NumFromWires(io.inputs, 3 * nl, nl), values, 32) % spec.n;
    BigUInt s = NumValue(NumFromWires(io.inputs, 4 * nl, nl), values, 32) % spec.n;
    if (!OnCurveResidues(spec, px, py)) {
      return false;
    }
    if (r.IsZero() || s.IsZero()) {
      return false;
    }
    NativeCurve curve(spec);
    BigUInt s_inv = s.InvMod(spec.n);
    NativeCurve::Pt x =
        curve.Add(curve.ScalarMul(z.MulMod(s_inv, spec.n), curve.Generator()),
                  curve.ScalarMul(r.MulMod(s_inv, spec.n), {px, py, false}));
    return !x.infinity && x.x % spec.n == r;
  }

 private:
  EcdsaMsmMode mode_;
};

class RsaVerifyGadget : public Gadget {
 public:
  std::string name() const override { return "rsa_verify"; }
  bool IsExpensive() const override { return true; }
  const RsaPrivateKey& Key() const {
    static const RsaPrivateKey key = [] {
      Rng rng(0x5245534131ull);  // one shared toy key; instances vary the digest
      return GenerateRsaKey(&rng, 512);
    }();
    return key;
  }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    const RsaPrivateKey& key = Key();
    Bytes digest = rng->NextBytes(32);
    Bytes sig = RsaSignDigest32(key, digest);
    ModularGadget g(cs, key.pub.n);
    ModularGadget::Num sig_num = g.Alloc(BigUInt::FromBytes(sig));
    std::vector<Var> digest_vars = AllocateBytes(cs, digest);
    std::vector<LC> digest_lcs(digest_vars.begin(), digest_vars.end());
    ModularGadget::Num em = BuildPkcs1Em(&g, digest_lcs);
    EnforceRsaVerify(&g, sig_num, em, RsaTechnique::kNope);
    GadgetIo io;
    for (const LC& limb : sig_num.limbs) {
      io.inputs.push_back(limb);
    }
    for (Var v : digest_vars) {
      io.inputs.emplace_back(v);
    }
    io.outputs = em.limbs;
    return io;
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    const BigUInt& n = Key().pub.n;
    size_t nl = io.inputs.size() - 32;
    ModularGadget::Num sig = NumFromWires(io.inputs, 0, nl);
    ModularGadget::Num em;
    em.limbs = io.outputs;
    BigUInt sig_v = NumValue(sig, values, 32) % n;
    BigUInt em_v = NumValue(em, values, 32) % n;
    return sig_v.PowMod(BigUInt(65537), n) == em_v;
  }
};

std::vector<std::unique_ptr<Gadget>> MakeRegistry() {
  std::vector<std::unique_ptr<Gadget>> v;
  v.push_back(std::make_unique<BooleanGadget>());
  v.push_back(std::make_unique<ToBitsGadget>());
  v.push_back(std::make_unique<AllocBytesGadget>());
  v.push_back(std::make_unique<IndicatorGadget>());
  v.push_back(std::make_unique<MapNonZeroToZeroGadget>());
  v.push_back(std::make_unique<IsEqualGadget>());
  v.push_back(std::make_unique<IsLessOrEqualGadget>());
  v.push_back(std::make_unique<MaskGadget>(/*nope=*/false));
  v.push_back(std::make_unique<MaskGadget>(/*nope=*/true));
  v.push_back(std::make_unique<SliceGadget>(SliceGadget::Flavor::kNaive));
  v.push_back(std::make_unique<SliceGadget>(SliceGadget::Flavor::kNope));
  v.push_back(std::make_unique<SliceGadget>(SliceGadget::Flavor::kNopePacked));
  v.push_back(std::make_unique<CondShiftGadget>());
  v.push_back(std::make_unique<PlaceAtGadget>());
  v.push_back(std::make_unique<ScanRecordsGadget>());
  v.push_back(std::make_unique<MimcDynamicHashGadget>());
  v.push_back(std::make_unique<Sha256FixedHashGadget>());
  v.push_back(std::make_unique<BignumMulModGadget>(/*nope=*/true));
  v.push_back(std::make_unique<BignumMulModGadget>(/*nope=*/false));
  v.push_back(std::make_unique<EcOnCurveGadget>());
  v.push_back(std::make_unique<EcAddGadget>(EcGadget::Technique::kNopeHints));
  v.push_back(std::make_unique<EcAddGadget>(EcGadget::Technique::kNaive));
  v.push_back(std::make_unique<EcdsaVerifyGadget>(EcdsaMsmMode::k256Msm));
  v.push_back(std::make_unique<EcdsaVerifyGadget>(EcdsaMsmMode::kGlvMsm));
  v.push_back(std::make_unique<RsaVerifyGadget>());
  return v;
}

}  // namespace

const std::vector<const Gadget*>& StandardGadgets() {
  static const std::vector<std::unique_ptr<Gadget>> owned = MakeRegistry();
  static const std::vector<const Gadget*> view = [] {
    std::vector<const Gadget*> out;
    for (const auto& g : owned) {
      out.push_back(g.get());
    }
    return out;
  }();
  return view;
}

}  // namespace nope
