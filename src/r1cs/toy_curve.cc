#include "src/r1cs/toy_curve.h"

#include "src/sig/ecdsa.h"

#include <stdexcept>
#include <vector>

namespace nope {

namespace {

uint64_t PowModU64(uint64_t base, uint64_t exp, uint64_t mod) {
  unsigned __int128 result = 1;
  unsigned __int128 b = base % mod;
  while (exp > 0) {
    if (exp & 1) {
      result = result * b % mod;
    }
    b = b * b % mod;
    exp >>= 1;
  }
  return static_cast<uint64_t>(result);
}

}  // namespace

CurveSpec FindToyCurve(uint64_t seed, size_t bits) {
  if (bits < 10 || bits > 28) {
    throw std::invalid_argument("toy curve bits must be in [10, 28]");
  }
  Rng rng(seed);

  // Prime p == 3 (mod 4) near 2^bits.
  uint64_t p = (uint64_t{1} << bits) + 3 + 4 * rng.NextBelow(1 << (bits - 4));
  while (p % 4 != 3 || !IsProbablePrimeU64(p)) {
    p += p % 4 == 3 ? 4 : 1;
    while (p % 4 != 3) {
      ++p;
    }
  }

  // Tabulate the quadratic residues of F_p once: chi(v) = 1 iff some y has
  // y^2 == v (and v != 0). One multiplication per y replaces a full Euler
  // modexp per x per candidate curve below — the exhaustive point counts
  // drop from minutes of modexps to ~p multiplications total.
  std::vector<bool> is_qr(p, false);
  for (uint64_t y = 1; y <= p / 2; ++y) {
    is_qr[static_cast<uint64_t>((unsigned __int128)y * y % p)] = true;
  }
  auto chi = [&](uint64_t v) -> int {
    return v == 0 ? 0 : (is_qr[v] ? 1 : -1);
  };

  uint64_t a = p - 3;
  for (uint64_t b = 1 + rng.NextBelow(p - 1);; b = 1 + rng.NextBelow(p - 1)) {
    // Discriminant non-zero: 4a^3 + 27b^2 != 0.
    unsigned __int128 disc = (unsigned __int128)4 * a % p * a % p * a % p;
    disc = (disc + (unsigned __int128)27 * b % p * b % p) % p;
    if (disc == 0) {
      continue;
    }
    // Point count: p + 1 + sum_x chi(x^3 + ax + b).
    int64_t sum = 0;
    for (uint64_t x = 0; x < p; ++x) {
      unsigned __int128 rhs = (unsigned __int128)x * x % p * x % p;
      rhs = (rhs + (unsigned __int128)a * x + b) % p;
      sum += chi(static_cast<uint64_t>(rhs));
    }
    uint64_t order = p + 1 + sum;
    if (!IsProbablePrimeU64(order)) {
      continue;
    }
    // Generator: first x with a square rhs; prime order makes any point work.
    for (uint64_t x = 0;; ++x) {
      unsigned __int128 rhs128 = (unsigned __int128)x * x % p * x % p;
      rhs128 = (rhs128 + (unsigned __int128)a * x + b) % p;
      uint64_t rhs = static_cast<uint64_t>(rhs128);
      if (chi(rhs) != 1) {
        continue;
      }
      uint64_t y = PowModU64(rhs, (p + 1) / 4, p);
      CurveSpec spec;
      spec.p = BigUInt(p);
      spec.a = BigUInt(a);
      spec.b = BigUInt(b);
      spec.n = BigUInt(order);
      spec.gx = BigUInt(x);
      spec.gy = BigUInt(y);
      spec.limb_bits = 32;
      return spec;
    }
  }
}

bool IsProbablePrimeU64(uint64_t n) {
  if (n < 2) {
    return false;
  }
  for (uint64_t d : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull}) {
    if (n == d) {
      return true;
    }
    if (n % d == 0) {
      return false;
    }
  }
  uint64_t d = n - 1;
  int s = 0;
  while (d % 2 == 0) {
    d /= 2;
    ++s;
  }
  // Deterministic Miller-Rabin bases for 64-bit integers.
  for (uint64_t base : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull,
                        37ull}) {
    if (base % n == 0) {
      continue;
    }
    uint64_t x = PowModU64(base, d, n);
    if (x == 1 || x == n - 1) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      x = static_cast<uint64_t>((unsigned __int128)x * x % n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

ToyEcdsaSignature ToyEcdsaSign(const CurveSpec& spec, const BigUInt& private_key,
                               const Bytes& digest, Rng* rng) {
  NativeCurve curve(spec);
  BigUInt z = BigUInt::FromBytes(digest) % spec.n;
  while (true) {
    BigUInt k = BigUInt::RandomBelow(rng, spec.n - BigUInt(1)) + BigUInt(1);
    NativeCurve::Pt rp = curve.ScalarMul(k, curve.Generator());
    if (rp.infinity) {
      continue;
    }
    BigUInt r = rp.x % spec.n;
    if (r.IsZero()) {
      continue;
    }
    BigUInt s = k.InvMod(spec.n).MulMod(z + r.MulMod(private_key, spec.n), spec.n);
    if (s.IsZero()) {
      continue;
    }
    return {r, s};
  }
}

bool ToyEcdsaVerify(const CurveSpec& spec, const NativeCurve::Pt& public_key,
                    const Bytes& digest, const ToyEcdsaSignature& sig) {
  // Fast path: P-256 goes through the Montgomery-field implementation
  // (~100x quicker than the generic BigUInt affine arithmetic below).
  static const BigUInt p256_prime = CurveSpec::P256().p;
  if (spec.p == p256_prime && !public_key.infinity) {
    EcdsaPublicKey pub{P256Point::FromAffine(P256Fq::FromBigUInt(public_key.x),
                                             P256Fq::FromBigUInt(public_key.y))};
    return EcdsaVerifyDigest(pub, digest, EcdsaSignature{sig.r, sig.s});
  }
  NativeCurve curve(spec);
  if (sig.r.IsZero() || sig.s.IsZero() || sig.r >= spec.n || sig.s >= spec.n) {
    return false;
  }
  BigUInt z = BigUInt::FromBytes(digest) % spec.n;
  BigUInt s_inv = sig.s.InvMod(spec.n);
  BigUInt h0 = z.MulMod(s_inv, spec.n);
  BigUInt h1 = sig.r.MulMod(s_inv, spec.n);
  NativeCurve::Pt rp = curve.Add(curve.ScalarMul(h0, curve.Generator()),
                                 curve.ScalarMul(h1, public_key));
  if (rp.infinity) {
    return false;
  }
  return rp.x % spec.n == sig.r;
}

}  // namespace nope
