#include <algorithm>
#include "src/r1cs/bignum_gadget.h"

#include <stdexcept>

#include "src/r1cs/parse_gadgets.h"

namespace nope {

namespace {

size_t CeilLog2(size_t v) {
  size_t bits = 0;
  size_t n = 1;
  while (n < v) {
    n <<= 1;
    ++bits;
  }
  return bits;
}

// Minimal signed big integer for native carry/quotient computation.
struct SBig {
  BigUInt mag;
  bool neg = false;

  static SBig FromBig(const BigUInt& v) { return {v, false}; }

  SBig operator+(const SBig& o) const {
    if (neg == o.neg) {
      return {mag + o.mag, neg && !(mag + o.mag).IsZero()};
    }
    if (mag >= o.mag) {
      BigUInt m = mag - o.mag;
      return {m, neg && !m.IsZero()};
    }
    BigUInt m = o.mag - mag;
    return {m, o.neg && !m.IsZero()};
  }
  SBig operator-(const SBig& o) const { return *this + SBig{o.mag, !o.neg}; }

  // Exact division by 2^bits (throws if not exact).
  SBig DivExactPow2(size_t bits) const {
    BigUInt shifted = mag >> bits;
    if ((shifted << bits) != mag) {
      throw std::logic_error("carry division not exact (witness inconsistency)");
    }
    return {shifted, neg && !shifted.IsZero()};
  }

  size_t BitLength() const { return mag.BitLength(); }

  // Value as Fr (mod r), handling sign.
  Fr ToFr() const {
    Fr v = Fr::FromBigUInt(mag);
    return neg ? -v : v;
  }
};

}  // namespace

ModularGadget::ModularGadget(ConstraintSystem* cs, const BigUInt& modulus, size_t limb_bits)
    : cs_(cs), modulus_(modulus), limb_bits_(limb_bits) {
  if (limb_bits < 8 || limb_bits > 64) {
    throw std::invalid_argument("limb_bits must be in [8, 64]");
  }
  num_limbs_ = (modulus.BitLength() + limb_bits - 1) / limb_bits;
}

std::vector<BigUInt> ModularGadget::ToLimbValues(const BigUInt& v, size_t count) const {
  std::vector<BigUInt> out(count);
  BigUInt rest = v;
  for (size_t i = 0; i < count; ++i) {
    out[i] = rest % (BigUInt(1) << limb_bits_);
    rest = rest >> limb_bits_;
  }
  if (!rest.IsZero()) {
    throw std::length_error("value does not fit limb count");
  }
  return out;
}

ModularGadget::Num ModularGadget::Constant(const BigUInt& v) const {
  Num out;
  auto limbs = ToLimbValues(v % modulus_, num_limbs_);
  for (const auto& l : limbs) {
    out.limbs.push_back(LC::Constant(Fr::FromBigUInt(l)));
  }
  out.max_bits = limb_bits_;
  return out;
}

ModularGadget::Num ModularGadget::AllocWithValue(const BigUInt& v, size_t limbs,
                                                 size_t bits_per_limb) {
  Num out;
  auto vals = ToLimbValues(v, limbs);
  for (const auto& l : vals) {
    Var var = cs_->AddWitness(Fr::FromBigUInt(l));
    ToBits(cs_, LC(var), bits_per_limb);
    out.limbs.push_back(LC(var));
  }
  out.max_bits = bits_per_limb;
  return out;
}

ModularGadget::Num ModularGadget::Alloc(const BigUInt& v) {
  GadgetScope scope(cs_, "BignumAlloc");
  return AllocWithValue(v % modulus_, num_limbs_, limb_bits_);
}

ModularGadget::Num ModularGadget::AllocNarrow(const BigUInt& v, size_t bits) {
  size_t limbs = std::max<size_t>(1, (bits + limb_bits_ - 1) / limb_bits_);
  if (v.BitLength() > bits) {
    throw std::length_error("AllocNarrow value exceeds bit bound");
  }
  // Range check full limbs to limb_bits and the top limb to the residue, so
  // the value is provably < 2^bits (the GLV transform's soundness needs the
  // half-size property enforced, not just asserted).
  Num out;
  auto vals = ToLimbValues(v, limbs);
  for (size_t i = 0; i < limbs; ++i) {
    size_t limb_width = std::min(limb_bits_, bits - i * limb_bits_);
    Var var = cs_->AddWitness(Fr::FromBigUInt(vals[i]));
    ToBits(cs_, LC(var), limb_width);
    out.limbs.push_back(LC(var));
  }
  out.max_bits = limb_bits_;
  return out;
}

ModularGadget::Num ModularGadget::ShiftLeftBits(const Num& x, size_t bits) const {
  size_t limb_shift = bits / limb_bits_;
  size_t bit_shift = bits % limb_bits_;
  Fr scale = Fr::FromBigUInt(BigUInt(1) << bit_shift);
  Num out;
  out.limbs.assign(x.limbs.size() + limb_shift, LC());
  for (size_t i = 0; i < x.limbs.size(); ++i) {
    out.limbs[i + limb_shift] = x.limbs[i] * scale;
  }
  out.max_bits = x.max_bits + bit_shift;
  return out;
}

ModularGadget::Num ModularGadget::FromBytesBe(const std::vector<LC>& bytes) const {
  if (limb_bits_ % 8 != 0) {
    throw std::invalid_argument("FromBytesBe requires byte-aligned limbs");
  }
  size_t bytes_per_limb = limb_bits_ / 8;
  Num out;
  size_t nlimbs = (bytes.size() + bytes_per_limb - 1) / bytes_per_limb;
  out.limbs.assign(nlimbs, LC());
  // bytes are big-endian over the whole number.
  for (size_t i = 0; i < bytes.size(); ++i) {
    size_t pos_from_lsb = bytes.size() - 1 - i;  // byte significance
    size_t limb = pos_from_lsb / bytes_per_limb;
    size_t within = pos_from_lsb % bytes_per_limb;
    out.limbs[limb] =
        out.limbs[limb] + bytes[i] * Fr::FromBigUInt(BigUInt(1) << (8 * within));
  }
  out.max_bits = limb_bits_;
  return out;
}

BigUInt ModularGadget::ValueOf(const Num& x) const {
  BigUInt acc;
  for (size_t i = x.limbs.size(); i-- > 0;) {
    acc = (acc << limb_bits_) + cs_->Eval(x.limbs[i]).ToBigUInt();
  }
  return acc;
}

ModularGadget::Num ModularGadget::Add(const Num& x, const Num& y) const {
  Num out;
  size_t n = std::max(x.limbs.size(), y.limbs.size());
  out.limbs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    LC l;
    if (i < x.limbs.size()) {
      l = l + x.limbs[i];
    }
    if (i < y.limbs.size()) {
      l = l + y.limbs[i];
    }
    out.limbs[i] = l;
  }
  out.max_bits = std::max(x.max_bits, y.max_bits) + 1;
  return out;
}

std::vector<BigUInt> ModularGadget::ZeroPadConstant(size_t count, size_t floor_bits) const {
  count = std::max(count, num_limbs_);
  floor_bits = std::max(floor_bits, limb_bits_);
  BigUInt floor_val = BigUInt(1) << floor_bits;
  std::vector<BigUInt> limbs(count, floor_val);
  // Current value of the all-floor vector.
  BigUInt val;
  for (size_t i = count; i-- > 0;) {
    val = (val << limb_bits_) + floor_val;
  }
  BigUInt adjust = (modulus_ - (val % modulus_)) % modulus_;
  // Spread `adjust` into the low limbs in base 2^limb_bits.
  size_t i = 0;
  while (!adjust.IsZero()) {
    if (i >= count) {
      throw std::logic_error("ZeroPadConstant overflow");
    }
    limbs[i] = limbs[i] + (adjust % (BigUInt(1) << limb_bits_));
    adjust = adjust >> limb_bits_;
    ++i;
  }
  return limbs;
}

ModularGadget::Num ModularGadget::Sub(const Num& x, const Num& y) const {
  size_t count = std::max({x.limbs.size(), y.limbs.size(), num_limbs_});
  auto pad = ZeroPadConstant(count, y.max_bits);
  Num out;
  out.limbs.resize(count);
  for (size_t i = 0; i < count; ++i) {
    LC l = LC::Constant(Fr::FromBigUInt(pad[i]));
    if (i < x.limbs.size()) {
      l = l + x.limbs[i];
    }
    if (i < y.limbs.size()) {
      l = l - y.limbs[i];
    }
    out.limbs[i] = l;
  }
  out.max_bits = std::max({x.max_bits, std::max(y.max_bits, limb_bits_) + 2}) + 1;
  return out;
}

ModularGadget::Num ModularGadget::ScaleSmall(const Num& x, uint64_t k) const {
  Num out;
  Fr kf = Fr::FromU64(k);
  out.limbs.reserve(x.limbs.size());
  for (const auto& l : x.limbs) {
    out.limbs.push_back(l * kf);
  }
  size_t extra = 0;
  while ((uint64_t{1} << extra) < k) {
    ++extra;
  }
  out.max_bits = x.max_bits + extra + 1;
  return out;
}

ModularGadget::Num ModularGadget::ReduceViaMatrix(const Num& x) const {
  // Row i of M is the limb representation of 2^(limb_bits*i) mod q.
  Num out;
  out.limbs.assign(num_limbs_, LC());
  BigUInt power(1);
  for (size_t i = 0; i < x.limbs.size(); ++i) {
    auto row = ToLimbValues(power, num_limbs_);
    for (size_t j = 0; j < num_limbs_; ++j) {
      if (!row[j].IsZero()) {
        out.limbs[j] = out.limbs[j] + x.limbs[i] * Fr::FromBigUInt(row[j]);
      }
    }
    power = (power << limb_bits_) % modulus_;
  }
  out.max_bits = x.max_bits + limb_bits_ + CeilLog2(std::max<size_t>(x.limbs.size(), 2));
  if (out.max_bits + limb_bits_ + 4 >= 250) {
    throw std::logic_error("ReduceViaMatrix: limb bound too large; Normalize first");
  }
  return out;
}

void ModularGadget::EnforceBilinearZero(const std::vector<std::pair<Num, Num>>& products,
                                        const std::vector<Num>& plus,
                                        const std::vector<Num>& minus) {
  // --- Shape bookkeeping ----------------------------------------------------
  size_t deg = 0;
  for (const auto& [x, y] : products) {
    deg = std::max(deg, x.limbs.size() + y.limbs.size() - 2);
  }
  for (const auto& t : plus) {
    deg = std::max(deg, t.limbs.size() - 1);
  }
  for (const auto& t : minus) {
    deg = std::max(deg, t.limbs.size() - 1);
  }

  // Static magnitude bound (bits) for coefficients of E.
  size_t mb_e = limb_bits_;  // the pad constant at least
  size_t minus_bits = limb_bits_;
  for (const auto& t : minus) {
    minus_bits = std::max(minus_bits, t.max_bits);
  }
  minus_bits += CeilLog2(std::max<size_t>(minus.size() + 1, 2)) + 1;
  for (const auto& [x, y] : products) {
    size_t conv = x.max_bits + y.max_bits +
                  CeilLog2(std::max<size_t>(std::min(x.limbs.size(), y.limbs.size()), 2));
    mb_e = std::max(mb_e, conv);
  }
  for (const auto& t : plus) {
    mb_e = std::max(mb_e, t.max_bits);
  }
  mb_e = std::max(mb_e, minus_bits + 1);
  mb_e += CeilLog2(products.size() + plus.size() + 2) + 1;

  // --- Native coefficient computation ----------------------------------------
  // Pad constant ensuring per-coefficient non-negativity against minus terms.
  auto pad = ZeroPadConstant(deg + 1, minus_bits);

  std::vector<SBig> e(deg + 1);
  for (size_t k = 0; k <= deg; ++k) {
    e[k] = SBig::FromBig(pad[k]);
  }
  auto limb_vals = [&](const Num& t) {
    std::vector<BigUInt> vals;
    vals.reserve(t.limbs.size());
    for (const auto& l : t.limbs) {
      vals.push_back(cs_->Eval(l).ToBigUInt());
    }
    return vals;
  };
  for (const auto& [x, y] : products) {
    auto xv = limb_vals(x);
    auto yv = limb_vals(y);
    for (size_t i = 0; i < xv.size(); ++i) {
      if (xv[i].IsZero()) {
        continue;
      }
      for (size_t j = 0; j < yv.size(); ++j) {
        e[i + j] = e[i + j] + SBig::FromBig(xv[i] * yv[j]);
      }
    }
  }
  for (const auto& t : plus) {
    auto tv = limb_vals(t);
    for (size_t i = 0; i < tv.size(); ++i) {
      e[i] = e[i] + SBig::FromBig(tv[i]);
    }
  }
  for (const auto& t : minus) {
    auto tv = limb_vals(t);
    for (size_t i = 0; i < tv.size(); ++i) {
      e[i] = e[i] - SBig::FromBig(tv[i]);
    }
  }

  // Integer value of E and the quotient k = val(E)/q (floor; exact iff the
  // congruence actually holds — otherwise the carry division below cannot be
  // satisfied and the resulting system is unsatisfiable, which is intended).
  BigUInt val_e;
  for (size_t k = deg + 1; k-- > 0;) {
    if (e[k].neg) {
      throw std::logic_error("EnforceBilinearZero: negative coefficient (pad too small)");
    }
    val_e = (val_e << limb_bits_) + e[k].mag;
  }
  BigUInt quotient = val_e / modulus_;

  // --- Allocate quotient K ----------------------------------------------------
  size_t k_bits = val_e.BitLength() > modulus_.BitLength()
                      ? val_e.BitLength() - modulus_.BitLength() + 1
                      : 1;
  // Static bound version (soundness must not depend on witness values):
  size_t static_val_bits = limb_bits_ * deg + mb_e + 1;
  size_t k_bits_static = static_val_bits > modulus_.BitLength()
                             ? static_val_bits - modulus_.BitLength() + 1
                             : 1;
  k_bits = std::max(k_bits, k_bits_static);
  size_t nk = (k_bits + limb_bits_ - 1) / limb_bits_;
  Num kq_num = AllocWithValue(quotient, nk, limb_bits_);

  // Degree can grow through K(T)q(T).
  size_t deg_kq = nk - 1 + num_limbs_ - 1;
  size_t d = std::max(deg, deg_kq);

  // --- Native carries ----------------------------------------------------------
  auto q_limbs = ToLimbValues(modulus_, num_limbs_);
  auto k_limbs = ToLimbValues(quotient, nk);
  std::vector<SBig> r(d + 1);
  for (size_t k = 0; k <= d; ++k) {
    r[k] = k <= deg ? e[k] : SBig{};
  }
  for (size_t i = 0; i < nk; ++i) {
    if (k_limbs[i].IsZero()) {
      continue;
    }
    for (size_t j = 0; j < num_limbs_; ++j) {
      r[i + j] = r[i + j] - SBig::FromBig(k_limbs[i] * q_limbs[j]);
    }
  }
  // Synthetic division by (T - B): w_j = (w_{j-1} - R_j) / B.
  std::vector<SBig> w(d);  // degree d-1
  SBig prev{};
  for (size_t j = 0; j < d; ++j) {
    SBig numer = prev - r[j];
    w[j] = numer.DivExactPow2(limb_bits_);
    prev = w[j];
  }
  // Consistency: R_d must equal w_{d-1}; guaranteed when val(E) == k*q.

  // --- Allocate carries (offset encoding) --------------------------------------
  size_t mb_r_static = std::max(mb_e, 2 * limb_bits_ + CeilLog2(std::max<size_t>(nk, 2))) + 1;
  // Carries satisfy |w_j| <= (|w_{j-1}| + max|R|)/B, whose fixed point is
  // ~max|R|/(B-1); bound by 2^(mbr - limb_bits + 2).
  size_t cb = mb_r_static > limb_bits_ ? mb_r_static - limb_bits_ + 2 : 2;
  Fr offset = Fr::FromBigUInt(BigUInt(1) << cb);
  std::vector<LC> w_hat(d);
  for (size_t j = 0; j < d; ++j) {
    Fr value = w[j].ToFr() + offset;
    Var v = cs_->AddWitness(value);
    ToBits(cs_, LC(v), cb + 1);
    w_hat[j] = LC(v);
  }

  // --- Evaluation-point constraints ---------------------------------------------
  // At each point t: sum of product terms (one aux mul each) plus all linear
  // material must equal K(t)q(t) + W(t)(t - B), with W = W_hat - 2^cb * J.
  Fr b_fr = Fr::FromBigUInt(BigUInt(1) << limb_bits_);
  for (size_t pt = 0; pt <= d; ++pt) {
    Fr t = Fr::FromU64(pt);
    auto eval_num = [&](const Num& x) {
      LC acc;
      Fr power = Fr::One();
      for (const auto& l : x.limbs) {
        acc = acc + l * power;
        power = power * t;
      }
      return acc;
    };
    auto eval_const = [&](const std::vector<BigUInt>& limbs) {
      Fr acc = Fr::Zero();
      Fr power = Fr::One();
      for (const auto& l : limbs) {
        acc = acc + Fr::FromBigUInt(l) * power;
        power = power * t;
      }
      return acc;
    };

    LC lhs;  // everything except the product aux terms
    for (const auto& term : plus) {
      lhs = lhs + eval_num(term);
    }
    for (const auto& term : minus) {
      lhs = lhs - eval_num(term);
    }
    lhs = lhs + LC::Constant(eval_const(pad));

    // Subtract K(t) * q(t) — q(t) is a constant.
    Fr q_at_t = eval_const(q_limbs);
    lhs = lhs - eval_num(kq_num) * q_at_t;

    // Subtract W(t)(t - B) = (W_hat(t) - 2^cb J(t)) (t - B).
    Fr t_minus_b = t - b_fr;
    LC w_at_t;
    Fr power = Fr::One();
    Fr j_at_t = Fr::Zero();
    for (size_t j = 0; j < d; ++j) {
      w_at_t = w_at_t + w_hat[j] * power;
      j_at_t = j_at_t + power;
      power = power * t;
    }
    lhs = lhs - (w_at_t * t_minus_b);
    lhs = lhs + LC::Constant(offset * j_at_t * t_minus_b);

    // Product aux terms.
    for (const auto& [x, y] : products) {
      LC xe = eval_num(x);
      LC ye = eval_num(y);
      Fr mv = cs_->Eval(xe) * cs_->Eval(ye);
      Var m = cs_->AddWitness(mv);
      cs_->Enforce(xe, ye, LC(m));
      lhs = lhs + LC(m);
    }
    cs_->EnforceEqual(lhs, LC());
  }
}

void ModularGadget::EnforceEqualMod(const Num& x, const Num& y) {
  EnforceBilinearZero({}, {x}, {y});
}

void ModularGadget::EnforceZeroMod(const Num& x) { EnforceBilinearZero({}, {x}, {}); }

ModularGadget::Num ModularGadget::MulMod(const Num& x, const Num& y) {
  GadgetScope scope(cs_, "BignumMulMod");
  BigUInt value = (ValueOf(x) * ValueOf(y)) % modulus_;
  Num z = Alloc(value);
  EnforceBilinearZero({{x, y}}, {}, {z});
  return z;
}

ModularGadget::Num ModularGadget::NaiveMulMod(const Num& x, const Num& y) {
  GadgetScope scope(cs_, "BignumNaiveMulMod");
  // Schoolbook limb products.
  size_t nx = x.limbs.size();
  size_t ny = y.limbs.size();
  Num z;
  z.limbs.assign(nx + ny - 1, LC());
  for (size_t i = 0; i < nx; ++i) {
    for (size_t j = 0; j < ny; ++j) {
      Fr pv = cs_->Eval(x.limbs[i]) * cs_->Eval(y.limbs[j]);
      Var p = cs_->AddWitness(pv);
      cs_->Enforce(x.limbs[i], y.limbs[j], LC(p));
      z.limbs[i + j] = z.limbs[i + j] + LC(p);
    }
  }
  z.max_bits = x.max_bits + y.max_bits + CeilLog2(std::max<size_t>(std::min(nx, ny), 2));

  // Explicit quotient/remainder long division, per multiplication — the
  // pre-NOPE recipe whose cost scales with the bit width of q (§5.1).
  return NaiveModReduce(z);
}

ModularGadget::Num ModularGadget::NaiveModReduce(const Num& z) {
  BigUInt value = ValueOf(z);
  Num r = Alloc(value % modulus_);

  // Quotient, canonical limbs.
  size_t static_val_bits = limb_bits_ * (z.limbs.size() - 1) + z.max_bits + 1;
  size_t k_bits = static_val_bits > modulus_.BitLength()
                      ? static_val_bits - modulus_.BitLength() + 1
                      : 1;
  size_t nk = (k_bits + limb_bits_ - 1) / limb_bits_;
  BigUInt quotient = value / modulus_;
  Num k_num = AllocWithValue(quotient, nk, limb_bits_);

  // rhs = k*q + r as limb-wise linear forms (q constant, so free).
  auto q_limbs = ToLimbValues(modulus_, num_limbs_);
  size_t len = std::max(z.limbs.size(), nk + num_limbs_ - 1);
  std::vector<LC> rhs(len);
  for (size_t i = 0; i < nk; ++i) {
    for (size_t j = 0; j < num_limbs_; ++j) {
      if (!q_limbs[j].IsZero()) {
        rhs[i + j] = rhs[i + j] + k_num.limbs[i] * Fr::FromBigUInt(q_limbs[j]);
      }
    }
  }
  for (size_t i = 0; i < r.limbs.size(); ++i) {
    rhs[i] = rhs[i] + r.limbs[i];
  }

  // Limb-wise carry chain proving val(z) == val(rhs): each carry gets a full
  // bit decomposition, which is what makes this approach expensive.
  size_t mb = std::max(z.max_bits, 2 * limb_bits_ + CeilLog2(std::max<size_t>(nk, 2)) + 1) + 1;
  size_t cb = mb > limb_bits_ ? mb - limb_bits_ + 2 : 2;  // |carry| < 2^cb
  Fr offset = Fr::FromBigUInt(BigUInt(1) << cb);
  Fr b_inv = Fr::FromBigUInt(BigUInt(1) << limb_bits_).Inverse();

  auto limb_val = [&](const LC& l) { return cs_->Eval(l).ToBigUInt(); };
  SBig carry{};
  LC carry_lc;
  for (size_t j = 0; j < len; ++j) {
    LC zj = j < z.limbs.size() ? z.limbs[j] : LC();
    SBig e = SBig::FromBig(limb_val(zj)) - SBig::FromBig(limb_val(rhs[j]));
    SBig numer = carry + e;
    bool last = (j + 1 == len);
    if (last) {
      // Final limb: remainder must be zero with no outgoing carry.
      cs_->EnforceEqual(zj - rhs[j] + carry_lc, LC());
      break;
    }
    carry = numer.DivExactPow2(limb_bits_);
    Var c_hat = cs_->AddWitness(carry.ToFr() + offset);
    ToBits(cs_, LC(c_hat), cb + 1);
    LC c = LC(c_hat) - LC::Constant(offset);
    // (z_j - rhs_j + carry_in) == c * B.
    cs_->EnforceEqual((zj - rhs[j] + carry_lc) * b_inv, c);
    carry_lc = c;
  }
  return r;
}

ModularGadget::Num ModularGadget::Normalize(const Num& x) {
  Num r = Alloc(ValueOfMod(x));
  EnforceBilinearZero({}, {x}, {r});
  return r;
}

ModularGadget::Num ModularGadget::SelectBit(Var bit, const Num& if1, const Num& if0) {
  size_t n = std::max(if1.limbs.size(), if0.limbs.size());
  Fr bv = cs_->ValueOf(bit);
  Num out;
  out.limbs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    LC a = i < if1.limbs.size() ? if1.limbs[i] : LC();
    LC b = i < if0.limbs.size() ? if0.limbs[i] : LC();
    LC diff = a - b;
    Fr tv = bv * cs_->Eval(diff);
    Var t = cs_->AddWitness(tv);
    cs_->Enforce(LC(bit), diff, LC(t));
    out.limbs[i] = b + LC(t);
  }
  out.max_bits = std::max(if1.max_bits, if0.max_bits) + 1;
  return out;
}

void ModularGadget::EnforceEqualCanonical(const Num& x, const Num& y) {
  size_t n = std::max(x.limbs.size(), y.limbs.size());
  for (size_t i = 0; i < n; ++i) {
    LC a = i < x.limbs.size() ? x.limbs[i] : LC();
    LC b = i < y.limbs.size() ? y.limbs[i] : LC();
    cs_->EnforceEqual(a, b);
  }
}

Var ModularGadget::IsEqualCanonical(const Num& x, const Num& y) {
  size_t n = std::max(x.limbs.size(), y.limbs.size());
  Var all = kOneVar;  // start at constant 1
  LC acc = LC(kOneVar);
  for (size_t i = 0; i < n; ++i) {
    LC a = i < x.limbs.size() ? x.limbs[i] : LC();
    LC b = i < y.limbs.size() ? y.limbs[i] : LC();
    Var eq = IsEqual(cs_, a, b);
    Fr pv = cs_->Eval(acc) * cs_->ValueOf(eq);
    Var next = cs_->AddWitness(pv);
    cs_->Enforce(acc, LC(eq), LC(next));
    acc = LC(next);
    all = next;
  }
  return all;
}

}  // namespace nope
