// MiMC-style sponge hash over Fr ("toy hash").
//
// The demo crypto suite uses this in place of SHA-256 so that the full NOPE
// pipeline — DNSSEC chain, proof generation, certificate embedding, client
// verification — runs end-to-end in seconds inside tests and examples. It is
// a stand-in with the same interface (byte buffer in, 31-byte digest out),
// not a cryptographically vetted hash; the paper-scale statement uses the
// real SHA-256 gadget. x^5 is a permutation of Fr since gcd(5, r-1) == 1.
//
// The digest depends only on (bytes, length): exactly ceil(len/16) chunks
// are absorbed, so the same value hashes identically regardless of how much
// padding a circuit carries.
#ifndef SRC_R1CS_MIMC_GADGET_H_
#define SRC_R1CS_MIMC_GADGET_H_

#include <vector>

#include "src/base/bytes.h"
#include "src/r1cs/parse_gadgets.h"

namespace nope {

constexpr size_t kMimcDigestSize = 31;
constexpr size_t kMimcChunkSize = 16;

// Native hash of `data` (31-byte digest).
Bytes MimcHashBytes(const Bytes& data);

// In-circuit version over masked byte LCs (zero beyond len). Returns the
// 31 digest bytes. Cost: ~(max_len/16) * 70 constraints + 254 for the
// digest decomposition.
std::vector<LC> MimcDynamicGadget(ConstraintSystem* cs, const std::vector<LC>& masked_bytes,
                                  const LC& len);

}  // namespace nope

#endif  // SRC_R1CS_MIMC_GADGET_H_
