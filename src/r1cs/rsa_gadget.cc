#include <algorithm>
#include "src/r1cs/rsa_gadget.h"

#include <stdexcept>

#include "src/sig/rsa.h"

namespace nope {

void EnforceRsaVerify(ModularGadget* gadget, const ModularGadget::Num& sig,
                      const ModularGadget::Num& em, RsaTechnique technique) {
  GadgetScope scope(gadget->cs(), "RsaVerify");
  // 65537 = 2^16 + 1.
  ModularGadget::Num acc = sig;
  for (int i = 0; i < 16; ++i) {
    acc = technique == RsaTechnique::kNope ? gadget->MulMod(acc, acc)
                                           : gadget->NaiveMulMod(acc, acc);
  }
  if (technique == RsaTechnique::kNope) {
    // Final multiply-and-compare folded into one congruence.
    gadget->EnforceBilinearZero({{acc, sig}}, {}, {em});
  } else {
    ModularGadget::Num result = gadget->NaiveMulMod(acc, sig);
    gadget->EnforceEqualCanonical(result, gadget->Normalize(em));
  }
}

ModularGadget::Num BuildPkcs1Em(ModularGadget* gadget, const std::vector<LC>& digest_bytes) {
  if (digest_bytes.size() != 32) {
    throw std::invalid_argument("expected a 32-byte digest");
  }
  size_t em_len = (gadget->modulus().BitLength() + 7) / 8;
  // Template with a zero digest gives the constant bytes; the digest is then
  // spliced in as linear terms.
  Bytes zero_digest(32, 0);
  Bytes tmpl = Pkcs1V15EncodeSha256(zero_digest, em_len);
  std::vector<LC> em_bytes;
  em_bytes.reserve(em_len);
  for (size_t i = 0; i < em_len; ++i) {
    if (i + 32 >= em_len) {
      em_bytes.push_back(digest_bytes[i + 32 - em_len]);
    } else {
      em_bytes.push_back(LC::Constant(Fr::FromU64(tmpl[i])));
    }
  }
  return gadget->FromBytesBe(em_bytes);
}

}  // namespace nope
