#include <algorithm>
#include "src/r1cs/ec_gadget.h"

#include <stdexcept>

#include "src/r1cs/parse_gadgets.h"

namespace nope {

CurveSpec CurveSpec::P256() {
  CurveSpec spec;
  spec.p = BigUInt::FromHex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  spec.a = spec.p - BigUInt(3);
  spec.b = BigUInt::FromHex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  spec.n = BigUInt::FromHex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  spec.gx = BigUInt::FromHex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  spec.gy = BigUInt::FromHex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  return spec;
}

// --- NativeCurve -------------------------------------------------------------

bool NativeCurve::IsOnCurve(const Pt& p) const {
  if (p.infinity) {
    return true;
  }
  BigUInt lhs = p.y.MulMod(p.y, spec_.p);
  BigUInt rhs = p.x.MulMod(p.x, spec_.p).MulMod(p.x, spec_.p);
  rhs = rhs.AddMod(spec_.a.MulMod(p.x, spec_.p), spec_.p).AddMod(spec_.b, spec_.p);
  return lhs == rhs;
}

NativeCurve::Pt NativeCurve::Negate(const Pt& p) const {
  if (p.infinity) {
    return p;
  }
  return {p.x, (spec_.p - p.y) % spec_.p, false};
}

NativeCurve::Pt NativeCurve::Add(const Pt& p, const Pt& q) const {
  if (p.infinity) {
    return q;
  }
  if (q.infinity) {
    return p;
  }
  if (p.x == q.x) {
    if (p.y == q.y && !p.y.IsZero()) {
      return Double(p);
    }
    return Infinity();
  }
  BigUInt num = q.y.SubMod(p.y, spec_.p);
  BigUInt den = q.x.SubMod(p.x, spec_.p);
  BigUInt s = num.MulMod(den.InvMod(spec_.p), spec_.p);
  BigUInt x3 = s.MulMod(s, spec_.p).SubMod(p.x, spec_.p).SubMod(q.x, spec_.p);
  BigUInt y3 = s.MulMod(p.x.SubMod(x3, spec_.p), spec_.p).SubMod(p.y, spec_.p);
  return {x3, y3, false};
}

NativeCurve::Pt NativeCurve::Double(const Pt& p) const {
  if (p.infinity || p.y.IsZero()) {
    return Infinity();
  }
  BigUInt num = p.x.MulMod(p.x, spec_.p).MulMod(BigUInt(3), spec_.p).AddMod(spec_.a, spec_.p);
  BigUInt den = p.y.MulMod(BigUInt(2), spec_.p);
  BigUInt s = num.MulMod(den.InvMod(spec_.p), spec_.p);
  BigUInt x3 = s.MulMod(s, spec_.p).SubMod(p.x, spec_.p).SubMod(p.x, spec_.p);
  BigUInt y3 = s.MulMod(p.x.SubMod(x3, spec_.p), spec_.p).SubMod(p.y, spec_.p);
  return {x3, y3, false};
}

NativeCurve::Pt NativeCurve::ScalarMul(const BigUInt& k, const Pt& p) const {
  Pt acc = Infinity();
  for (size_t i = k.BitLength(); i-- > 0;) {
    acc = Double(acc);
    if (k.Bit(i)) {
      acc = Add(acc, p);
    }
  }
  return acc;
}

bool NativeCurve::Equal(const Pt& p, const Pt& q) const {
  if (p.infinity || q.infinity) {
    return p.infinity == q.infinity;
  }
  return p.x == q.x && p.y == q.y;
}

bool NativeCurve::AddIsDegenerate(const Pt& p, const Pt& q) const {
  if (p.infinity || q.infinity) {
    return true;
  }
  return p.x == q.x;
}

// --- EcGadget ----------------------------------------------------------------

EcGadget::EcGadget(ConstraintSystem* cs, const CurveSpec& spec, Technique technique,
                   uint64_t aux_seed)
    : cs_(cs),
      spec_(spec),
      native_(spec),
      field_(cs, spec.p, spec.limb_bits),
      scalar_field_(cs, spec.n, spec.limb_bits),
      technique_(technique),
      aux_seed_(aux_seed) {}

EcGadget::Point EcGadget::AllocPoint(const NativeCurve::Pt& value) {
  GadgetScope scope(cs_, "EcAllocPoint");
  if (value.infinity) {
    throw std::invalid_argument("cannot allocate the point at infinity");
  }
  Point out{field_.Alloc(value.x), field_.Alloc(value.y), value};
  EnforceOnCurve(out);
  return out;
}

EcGadget::Point EcGadget::ConstantPoint(const NativeCurve::Pt& value) const {
  if (value.infinity) {
    throw std::invalid_argument("cannot embed the point at infinity");
  }
  return Point{field_.Constant(value.x), field_.Constant(value.y), value};
}

void EcGadget::EnforceOnCurve(const Point& p) {
  // x^3 + a x + b - y^2 == 0 (mod p).
  ModularGadget::Num x2 = field_.MulMod(p.x, p.x);
  ModularGadget::Num neg_y = field_.Sub(field_.Constant(BigUInt()), p.y);
  field_.EnforceBilinearZero({{x2, p.x}, {field_.Constant(spec_.a), p.x}, {p.y, neg_y}},
                             {field_.Constant(spec_.b)}, {});
}

EcGadget::Point EcGadget::Negate(const Point& p) const {
  Point out{p.x, field_.Sub(field_.Constant(BigUInt()), p.y), native_.Negate(p.value)};
  return out;
}

EcGadget::Point EcGadget::Add(const Point& p, const Point& q) {
  return AddInternal(p, q, /*doubling=*/false);
}

EcGadget::Point EcGadget::Double(const Point& p) { return AddInternal(p, p, /*doubling=*/true); }

EcGadget::Point EcGadget::AddInternal(const Point& p, const Point& q, bool doubling) {
  if (!doubling && native_.AddIsDegenerate(p.value, q.value)) {
    throw std::logic_error("degenerate EC addition in circuit (retry with new aux)");
  }
  if (doubling && (p.value.infinity || p.value.y.IsZero())) {
    throw std::logic_error("degenerate EC doubling in circuit");
  }
  if (technique_ == Technique::kNopeHints) {
    return AddHint(p, q, doubling);
  }
  return AddNaive(p, q, doubling);
}

EcGadget::Point EcGadget::AddHint(const Point& p, const Point& q, bool doubling) {
  GadgetScope scope(cs_, "EcAddHint");
  NativeCurve::Pt r_val = doubling ? native_.Double(p.value) : native_.Add(p.value, q.value);
  // The prover supplies R; constraints check collinearity/tangency plus that
  // R lies on the curve (§5.2).
  Point r{field_.Alloc(r_val.x), field_.Alloc(r_val.y), r_val};
  if (!doubling) {
    // Rule out the degenerate xP == xQ case (adding inverses or doubling
    // through the addition law), which would otherwise let the prover pick R
    // freely: witness an inverse of (xQ - xP).
    ModularGadget::Num dx = field_.Sub(q.x, p.x);
    BigUInt dx_val = field_.ValueOfMod(dx);
    ModularGadget::Num dx_inv = field_.Alloc(dx_val.IsZero() ? BigUInt() : dx_val.InvMod(spec_.p));
    field_.EnforceBilinearZero({{dx, dx_inv}}, {}, {field_.Constant(BigUInt(1))});
    // (yQ - yP)(xR - xQ) + (yR + yQ)(xQ - xP) == 0 (mod p).
    field_.EnforceBilinearZero(
        {{field_.Sub(q.y, p.y), field_.Sub(r.x, q.x)},
         {field_.Add(r.y, q.y), field_.Sub(q.x, p.x)}},
        {}, {});
  } else {
    // Rule out yP == 0 (doubling a 2-torsion point).
    BigUInt y_val = field_.ValueOfMod(p.y);
    ModularGadget::Num y_inv = field_.Alloc(y_val.IsZero() ? BigUInt() : y_val.InvMod(spec_.p));
    field_.EnforceBilinearZero({{p.y, y_inv}}, {}, {field_.Constant(BigUInt(1))});
    // Tangency: (3 xP^2 + a)(xR - xP) + 2 yP (yR + yP) == 0 (mod p), from
    // yR = -(yP + lambda (xR - xP)). (The paper's §5.2 prints this with a
    // minus sign; the plus follows from the reflection convention.)
    ModularGadget::Num x2 = field_.MulMod(p.x, p.x);
    ModularGadget::Num slope_num = field_.Add(field_.ScaleSmall(x2, 3), field_.Constant(spec_.a));
    field_.EnforceBilinearZero(
        {{slope_num, field_.Sub(r.x, p.x)}, {field_.ScaleSmall(p.y, 2), field_.Add(r.y, p.y)}},
        {}, {});
  }
  EnforceOnCurve(r);
  return r;
}

EcGadget::Point EcGadget::AddNaive(const Point& p, const Point& q, bool doubling) {
  GadgetScope scope(cs_, "EcAddNaive");
  // Classic affine formulas with witnessed inverse and a full modular
  // reduction after every multiplication (the pre-NOPE baseline).
  const BigUInt& prime = spec_.p;
  BigUInt num_val, den_val;
  if (doubling) {
    num_val = p.value.x.MulMod(p.value.x, prime).MulMod(BigUInt(3), prime).AddMod(spec_.a, prime);
    den_val = p.value.y.MulMod(BigUInt(2), prime);
  } else {
    num_val = q.value.y.SubMod(p.value.y, prime);
    den_val = q.value.x.SubMod(p.value.x, prime);
  }
  BigUInt inv_val = den_val.InvMod(prime);

  ModularGadget::Num den;
  ModularGadget::Num num;
  if (doubling) {
    ModularGadget::Num x2 = field_.NaiveMulMod(p.x, p.x);
    num = field_.NaiveModReduce(
        field_.Add(field_.ScaleSmall(x2, 3), field_.Constant(spec_.a)));
    den = field_.NaiveModReduce(field_.ScaleSmall(p.y, 2));
  } else {
    num = field_.NaiveModReduce(field_.Sub(q.y, p.y));
    den = field_.NaiveModReduce(field_.Sub(q.x, p.x));
  }
  ModularGadget::Num inv = field_.Alloc(inv_val);
  ModularGadget::Num check_one = field_.NaiveMulMod(den, inv);
  field_.EnforceEqualCanonical(check_one, field_.Constant(BigUInt(1)));
  ModularGadget::Num lambda = field_.NaiveMulMod(num, inv);
  ModularGadget::Num l2 = field_.NaiveMulMod(lambda, lambda);
  ModularGadget::Num x3 = field_.NaiveModReduce(field_.Sub(field_.Sub(l2, p.x), q.x));
  ModularGadget::Num dx = field_.NaiveModReduce(field_.Sub(p.x, x3));
  ModularGadget::Num y3 = field_.NaiveModReduce(field_.Sub(field_.NaiveMulMod(lambda, dx), p.y));

  NativeCurve::Pt r_val = doubling ? native_.Double(p.value) : native_.Add(p.value, q.value);
  return Point{x3, y3, r_val};
}

EcGadget::Point EcGadget::SelectPoint(Var bit, const Point& if1, const Point& if0) {
  Point out{field_.SelectBit(bit, if1.x, if0.x), field_.SelectBit(bit, if1.y, if0.y),
            cs_->ValueOf(bit).IsZero() ? if0.value : if1.value};
  return out;
}

void EcGadget::EnforceEqualPoints(const Point& p, const Point& q) {
  field_.EnforceEqualMod(p.x, q.x);
  field_.EnforceEqualMod(p.y, q.y);
}

std::vector<Var> EcGadget::ScalarBitsMsb(const ModularGadget::Num& k, size_t max_bits) {
  size_t lb = scalar_field_.limb_bits();
  if (max_bits == 0) {
    max_bits = k.limbs.size() * lb;
  }
  std::vector<Var> bits_lsb;
  for (size_t i = 0; i < k.limbs.size(); ++i) {
    size_t width = i * lb >= max_bits ? 0 : std::min(lb, max_bits - i * lb);
    if (width == 0) {
      // Limbs beyond the bound must be exactly zero.
      cs_->EnforceEqual(k.limbs[i], LC());
      continue;
    }
    // Decompose to `width` bits; a wider value makes the system unsatisfiable,
    // which enforces the claimed bound.
    std::vector<Var> limb_bits = ToBits(cs_, k.limbs[i], width);
    bits_lsb.insert(bits_lsb.end(), limb_bits.begin(), limb_bits.end());
  }
  std::reverse(bits_lsb.begin(), bits_lsb.end());
  return bits_lsb;  // now MSB-first
}

NativeCurve::Pt EcGadget::PickAux(const std::vector<std::vector<bool>>& bit_values,
                                  const std::vector<NativeCurve::Pt>& point_values,
                                  size_t nbits) {
  // The aux point must be a deterministic function of the call site only:
  // Groth16 setup bakes it into constraint constants, so it cannot depend on
  // the witness. Degenerate hint chains therefore throw instead of retrying
  // (probability ~#ops/|group|: negligible at P-256 scale, rare on toy
  // curves).
  Rng rng(aux_seed_ ^ (0x9e3779b97f4a7c15ULL * (++aux_counter_)));
  BigUInt k = BigUInt::RandomBelow(&rng, spec_.n - BigUInt(2)) + BigUInt(1);
  NativeCurve::Pt aux = native_.ScalarMul(k, native_.Generator());

  // Dry-run to fail fast with a clear error (the circuit would otherwise
  // throw mid-construction).
  NativeCurve::Pt acc = aux;
  for (size_t i = 0; i < nbits; ++i) {
    if (acc.infinity || acc.y.IsZero()) {
      throw std::runtime_error("degenerate MSM accumulation (aux collision)");
    }
    acc = native_.Double(acc);
    for (size_t j = 0; j < point_values.size(); ++j) {
      if (native_.AddIsDegenerate(acc, point_values[j])) {
        throw std::runtime_error("degenerate MSM accumulation (point collision)");
      }
      if (bit_values[j][i]) {
        acc = native_.Add(acc, point_values[j]);
      }
    }
  }
  return aux;
}

EcGadget::Point EcGadget::MsmInternal(const std::vector<std::vector<Var>>& bits_msb,
                                      const std::vector<Point>& points,
                                      const NativeCurve::Pt& aux) {
  size_t nbits = bits_msb.empty() ? 0 : bits_msb[0].size();
  Point acc = ConstantPoint(aux);
  for (size_t i = 0; i < nbits; ++i) {
    acc = Double(acc);
    for (size_t j = 0; j < points.size(); ++j) {
      // Unconditionally compute acc + P_j, then select; PickAux guaranteed
      // the addition is well-defined whether or not the bit is taken.
      Point sum = Add(acc, points[j]);
      acc = SelectPoint(bits_msb[j][i], sum, acc);
    }
  }
  return acc;
}

EcGadget::Point EcGadget::Msm(const std::vector<std::vector<Var>>& bits_msb,
                              const std::vector<Point>& points) {
  if (bits_msb.size() != points.size() || points.empty()) {
    throw std::invalid_argument("Msm shape mismatch");
  }
  size_t nbits = bits_msb[0].size();
  std::vector<std::vector<bool>> bit_values(points.size());
  std::vector<NativeCurve::Pt> point_values;
  for (size_t j = 0; j < points.size(); ++j) {
    if (bits_msb[j].size() != nbits) {
      throw std::invalid_argument("all scalars must have the same bit width");
    }
    for (Var b : bits_msb[j]) {
      bit_values[j].push_back(!cs_->ValueOf(b).IsZero());
    }
    point_values.push_back(points[j].value);
  }
  NativeCurve::Pt aux = PickAux(bit_values, point_values, nbits);
  Point acc = MsmInternal(bits_msb, points, aux);

  // Remove the aux offset: result = acc - 2^nbits * aux.
  NativeCurve::Pt shift = native_.ScalarMul((BigUInt(1) << nbits) % spec_.n, aux);
  if (native_.AddIsDegenerate(acc.value, native_.Negate(shift))) {
    throw std::logic_error("degenerate aux removal; retry with different aux seed");
  }
  Point result = Add(acc, ConstantPoint(native_.Negate(shift)));
  return result;
}

void EcGadget::EnforceMsmZero(const std::vector<std::vector<Var>>& bits_msb,
                              const std::vector<Point>& points) {
  if (bits_msb.size() != points.size() || points.empty() || points.size() > 6) {
    throw std::invalid_argument("Msm shape mismatch");
  }
  GadgetScope scope(cs_, "EcMsmZero");
  size_t m = points.size();
  size_t nbits = bits_msb[0].size();
  for (const auto& b : bits_msb) {
    if (b.size() != nbits) {
      throw std::invalid_argument("all scalars must have the same bit width");
    }
  }
  std::vector<std::vector<bool>> bit_values(m);
  std::vector<NativeCurve::Pt> point_values;
  for (size_t j = 0; j < m; ++j) {
    for (Var b : bits_msb[j]) {
      bit_values[j].push_back(!cs_->ValueOf(b).IsZero());
    }
    point_values.push_back(points[j].value);
  }

  // Native subset-sum table; fall back to per-point accumulation if it is
  // degenerate (possible on toy curves, negligible at P-256 scale).
  size_t table_size = size_t{1} << m;
  std::vector<NativeCurve::Pt> table_values(table_size);
  bool table_ok = true;
  for (size_t mask = 1; mask < table_size && table_ok; ++mask) {
    size_t low = mask & (mask - 1);       // mask without its lowest set bit
    size_t bit = mask ^ low;              // the lowest set bit
    size_t j = 0;
    while ((size_t{1} << j) != bit) {
      ++j;
    }
    if (low == 0) {
      table_values[mask] = point_values[j];
    } else {
      if (native_.AddIsDegenerate(table_values[low], point_values[j])) {
        table_ok = false;
        break;
      }
      table_values[mask] = native_.Add(table_values[low], point_values[j]);
    }
  }

  if (!table_ok) {
    throw std::runtime_error("degenerate MSM subset table (point collision)");
  }

  // Deterministic per-call-site aux (see PickAux); dry-run the table path.
  Rng rng(aux_seed_ ^ (0x9e3779b97f4a7c15ULL * (++aux_counter_)));
  BigUInt k = BigUInt::RandomBelow(&rng, spec_.n - BigUInt(2)) + BigUInt(1);
  NativeCurve::Pt aux = native_.ScalarMul(k, native_.Generator());
  {
    NativeCurve::Pt acc = aux;
    for (size_t i = 0; i < nbits; ++i) {
      if (acc.infinity || acc.y.IsZero()) {
        throw std::runtime_error("degenerate MSM accumulation (aux collision)");
      }
      acc = native_.Double(acc);
      size_t mask = 0;
      for (size_t j = 0; j < m; ++j) {
        mask |= static_cast<size_t>(bit_values[j][i]) << j;
      }
      const NativeCurve::Pt& sel = table_values[mask == 0 ? 1 : mask];
      if (native_.AddIsDegenerate(acc, sel)) {
        throw std::runtime_error("degenerate MSM accumulation (table collision)");
      }
      if (mask != 0) {
        acc = native_.Add(acc, sel);
      }
    }
  }

  // In-circuit table (hint additions).
  std::vector<Point> table(table_size);
  for (size_t mask = 1; mask < table_size; ++mask) {
    size_t low = mask & (mask - 1);
    size_t bit = mask ^ low;
    size_t j = 0;
    while ((size_t{1} << j) != bit) {
      ++j;
    }
    table[mask] = low == 0 ? points[j] : Add(table[low], points[j]);
  }

  // Shared-table accumulation: one double and one table-add per bit position.
  Point acc = ConstantPoint(aux);
  for (size_t i = 0; i < nbits; ++i) {
    acc = Double(acc);
    // mask = sum_j bit_j * 2^j, one-hot selected via Indicator.
    LC mask_lc;
    for (size_t j = 0; j < m; ++j) {
      mask_lc = mask_lc + LC(bits_msb[j][i]) * Fr::FromU64(uint64_t{1} << j);
    }
    std::vector<Var> sel_ind = Indicator(cs_, mask_lc, table_size);

    // Selected point coordinates (mask 0 selects table[1] as a dummy).
    auto select_coord = [&](auto coord_of) {
      size_t limbs = 0;
      size_t mb = field_.limb_bits();
      for (size_t mask = 1; mask < table_size; ++mask) {
        limbs = std::max(limbs, coord_of(table[mask]).limbs.size());
        mb = std::max(mb, coord_of(table[mask]).max_bits);
      }
      ModularGadget::Num out;
      out.limbs.assign(limbs, LC());
      for (size_t mask = 0; mask < table_size; ++mask) {
        const Point& entry = table[mask == 0 ? 1 : mask];
        const ModularGadget::Num& coord = coord_of(entry);
        for (size_t l = 0; l < coord.limbs.size(); ++l) {
          Fr pv = cs_->ValueOf(sel_ind[mask]) * cs_->Eval(coord.limbs[l]);
          Var p = cs_->AddWitness(pv);
          cs_->Enforce(LC(sel_ind[mask]), coord.limbs[l], LC(p));
          out.limbs[l] = out.limbs[l] + LC(p);
        }
      }
      out.max_bits = mb + 1;
      return out;
    };
    size_t mask_val = 0;
    for (size_t j = 0; j < m; ++j) {
      mask_val |= static_cast<size_t>(bit_values[j][i]) << j;
    }
    Point selected;
    selected.x = select_coord([](const Point& p) -> const ModularGadget::Num& { return p.x; });
    selected.y = select_coord([](const Point& p) -> const ModularGadget::Num& { return p.y; });
    selected.value = table_values[mask_val == 0 ? 1 : mask_val];

    Point sum = Add(acc, selected);
    Var zero_flag = sel_ind[0];
    acc = SelectPoint(zero_flag, acc, sum);
  }

  // If the MSM is zero, the accumulator equals 2^nbits * aux exactly.
  NativeCurve::Pt expected = native_.ScalarMul((BigUInt(1) << nbits) % spec_.n, aux);
  field_.EnforceEqualMod(acc.x, field_.Constant(expected.x));
  field_.EnforceEqualMod(acc.y, field_.Constant(expected.y));
}

}  // namespace nope
