// Non-native big-integer modular arithmetic in R1CS (paper §5.1).
//
// Numbers are little-endian vectors of limb linear-combinations with a
// tracked per-limb magnitude bound (max_bits). The central NOPE ideas all
// appear here:
//   * Linear combinations are free, so additions, subtractions (via
//     offset-by-a-multiple-of-q), and the matrix-M reduction
//     (ReduceViaMatrix) cost zero constraints.
//   * Products and congruences are proven with a single carry-polynomial
//     identity (EnforceBilinearZero) evaluated at fixed points: one R1CS
//     constraint per evaluation point per product, instead of one modular
//     reduction per multiplication.
//   * The "naive" baseline (NaiveMulMod) is the pre-NOPE best-known recipe:
//     schoolbook limb products plus an explicit quotient/remainder carry
//     chain per multiplication, whose cost scales with the bit-length of the
//     modulus. The Figure 6 ablation toggles between the two.
#ifndef SRC_R1CS_BIGNUM_GADGET_H_
#define SRC_R1CS_BIGNUM_GADGET_H_

#include <vector>

#include "src/base/biguint.h"
#include "src/r1cs/constraint_system.h"

namespace nope {

class ModularGadget {
 public:
  struct Num {
    std::vector<LC> limbs;  // little-endian, weight 2^(limb_bits * i)
    size_t max_bits = 0;    // bound: each limb value < 2^max_bits
  };

  ModularGadget(ConstraintSystem* cs, const BigUInt& modulus, size_t limb_bits = 32);

  const BigUInt& modulus() const { return modulus_; }
  size_t limb_bits() const { return limb_bits_; }
  size_t num_limbs() const { return num_limbs_; }
  ConstraintSystem* cs() const { return cs_; }

  // Constant embedding; no constraints.
  Num Constant(const BigUInt& v) const;
  // Witness allocation in canonical form (reduced mod q, range-checked limbs).
  Num Alloc(const BigUInt& v);
  // Witness allocation of a value known to fit in `bits` bits (not reduced);
  // uses ceil(bits/limb_bits) limbs. Used for half-size GLV scalars.
  Num AllocNarrow(const BigUInt& v, size_t bits);
  // Builds a Num view over existing byte variables (big-endian bytes, e.g.
  // output of a hash gadget); free (packing is linear). Bytes must already be
  // range-checked by the caller.
  Num FromBytesBe(const std::vector<LC>& bytes) const;

  // Integer (unreduced) and reduced value of the current assignment.
  BigUInt ValueOf(const Num& x) const;
  BigUInt ValueOfMod(const Num& x) const { return ValueOf(x) % modulus_; }

  // Free linear operations.
  Num Add(const Num& x, const Num& y) const;
  // x - y, kept non-negative by adding a constant multiple of q (free).
  Num Sub(const Num& x, const Num& y) const;
  // Multiply by a small constant; free.
  Num ScaleSmall(const Num& x, uint64_t k) const;
  // Multiply by 2^bits (free; limbs shift and scale).
  Num ShiftLeftBits(const Num& x, size_t bits) const;

  // NOPE matrix-M reduction (§5.1): reshapes any-width x into num_limbs()
  // limbs preserving the residue class. Zero constraints; max_bits grows by
  // limb_bits + lg(width).
  Num ReduceViaMatrix(const Num& x) const;

  // Carry-polynomial congruence (the workhorse):
  //   sum_i products[i].first * products[i].second
  //     + sum_j plus[j] - sum_k minus[k]  ==  0 (mod q).
  // Cost: (#points)*(#products+1) + range checks on the quotient and carries.
  void EnforceBilinearZero(const std::vector<std::pair<Num, Num>>& products,
                           const std::vector<Num>& plus, const std::vector<Num>& minus);

  // val(x) == val(y) (mod q); works for lazy (wide/large-limb) operands.
  void EnforceEqualMod(const Num& x, const Num& y);
  void EnforceZeroMod(const Num& x);

  // z = x*y mod q in canonical form, via one bilinear congruence.
  Num MulMod(const Num& x, const Num& y);
  // Pre-NOPE baseline: schoolbook products + explicit mod (quotient + carry
  // chain). Same result, many more constraints.
  Num NaiveMulMod(const Num& x, const Num& y);
  // The explicit long-division reduction on its own (baseline "mod" whose
  // cost scales with the modulus bit width).
  Num NaiveModReduce(const Num& z);

  // Canonical re-randomized form of a lazy value ("clean" in §5.1).
  Num Normalize(const Num& x);

  // bit ? if1 : if0, limb-wise (operands padded to a common shape).
  Num SelectBit(Var bit, const Num& if1, const Num& if0);

  // For canonical operands (both < q with range-checked limbs), cheap
  // limb-wise equality.
  void EnforceEqualCanonical(const Num& x, const Num& y);
  // Boolean: 1 iff canonical x == canonical y.
  Var IsEqualCanonical(const Num& x, const Num& y);

 private:
  Num AllocWithValue(const BigUInt& v, size_t limbs, size_t bits_per_limb);
  std::vector<BigUInt> ToLimbValues(const BigUInt& v, size_t count) const;
  // Constant vector with each limb >= 2^floor_bits and value == 0 mod q.
  std::vector<BigUInt> ZeroPadConstant(size_t count, size_t floor_bits) const;

  ConstraintSystem* cs_;
  BigUInt modulus_;
  size_t limb_bits_;
  size_t num_limbs_;
};

}  // namespace nope

#endif  // SRC_R1CS_BIGNUM_GADGET_H_
