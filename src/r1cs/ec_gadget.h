// Elliptic-curve operations in R1CS over a non-native field (paper §5.2-§5.3).
//
// NOPE's representation: the prover supplies the result point as a hint and
// the constraints check (a) collinearity of the three points involved and
// (b) that the result is on the curve — 5-6 non-native multiplications and 2
// modular checks, versus ~23 multiplications for the best prior algebraic
// formulas. The naive variant (kNaive) implements the classic
// inversion-based affine formulas with an explicit modular reduction per
// multiplication, serving as the Figure 6 baseline.
//
// The curve is runtime-parameterized so the same gadget runs both at P-256
// scale (for constraint counting) and on small "toy" curves (for fast
// end-to-end proving in tests and the demo pipeline).
#ifndef SRC_R1CS_EC_GADGET_H_
#define SRC_R1CS_EC_GADGET_H_

#include <optional>
#include <vector>

#include "src/r1cs/bignum_gadget.h"

namespace nope {

// Short-Weierstrass curve parameters over prime field p with group order n.
struct CurveSpec {
  BigUInt p;
  BigUInt a;
  BigUInt b;
  BigUInt n;   // order of the generator
  BigUInt gx;
  BigUInt gy;
  size_t limb_bits = 32;

  static CurveSpec P256();
};

// Plain affine point arithmetic over BigUInt, used for hints, dry runs, and
// the toy-suite native signer. Infinity is represented by nullopt in the API.
class NativeCurve {
 public:
  struct Pt {
    BigUInt x;
    BigUInt y;
    bool infinity = false;
  };

  explicit NativeCurve(const CurveSpec& spec) : spec_(spec) {}

  const CurveSpec& spec() const { return spec_; }
  Pt Generator() const { return {spec_.gx, spec_.gy, false}; }
  Pt Infinity() const { return {BigUInt(), BigUInt(), true}; }

  bool IsOnCurve(const Pt& p) const;
  Pt Negate(const Pt& p) const;
  Pt Add(const Pt& p, const Pt& q) const;
  Pt Double(const Pt& p) const;
  Pt ScalarMul(const BigUInt& k, const Pt& p) const;
  bool Equal(const Pt& p, const Pt& q) const;

  // True when Add(p, q) would be a degenerate case for the incomplete
  // in-circuit addition (equal or inverse x-coordinates, or infinity).
  bool AddIsDegenerate(const Pt& p, const Pt& q) const;

 private:
  CurveSpec spec_;
};

class EcGadget {
 public:
  enum class Technique { kNaive, kNopeHints };

  struct Point {
    ModularGadget::Num x;
    ModularGadget::Num y;
    NativeCurve::Pt value;  // native shadow for hint computation
  };

  EcGadget(ConstraintSystem* cs, const CurveSpec& spec, Technique technique,
           uint64_t aux_seed = 1);

  ModularGadget& field() { return field_; }
  ModularGadget& scalar_field() { return scalar_field_; }
  const NativeCurve& native() const { return native_; }
  Technique technique() const { return technique_; }

  // Witnessed point, on-curve enforced.
  Point AllocPoint(const NativeCurve::Pt& value);
  // Constant (publicly known) point; no constraints.
  Point ConstantPoint(const NativeCurve::Pt& value) const;

  void EnforceOnCurve(const Point& p);
  Point Negate(const Point& p) const;  // free (p - y via constant offset)
  Point Add(const Point& p, const Point& q);     // incomplete; p != +-q
  Point Double(const Point& p);
  Point SelectPoint(Var bit, const Point& if1, const Point& if0);
  void EnforceEqualPoints(const Point& p, const Point& q);

  // result == sum_i scalar_i * point_i where scalar bits are MSB-first vectors
  // of boolean vars (all the same length). Avoids the point at infinity with
  // a constant auxiliary offset; retries aux seeds on degenerate hint chains
  // via native dry runs.
  Point Msm(const std::vector<std::vector<Var>>& bits_msb, const std::vector<Point>& points);

  // Enforces sum_i scalar_i * point_i == 0 (identity) without materializing
  // infinity: the accumulator must return exactly to its auxiliary offset.
  // Uses the Straus/Shamir shared-table form (one table-select + one addition
  // per bit position regardless of the number of points), which is what makes
  // the half-width GLV transform's ~2x saving real (Appendix C). Points must
  // be pairwise distinct (the subset table throws on same-x collisions, which
  // would otherwise be unsound for the incomplete addition law).
  void EnforceMsmZero(const std::vector<std::vector<Var>>& bits_msb,
                      const std::vector<Point>& points);

  // Decomposes a canonical scalar-field Num into MSB-first bits. If max_bits
  // is non-zero, only that many low bits are returned; the decomposition
  // enforces that all higher bits are zero.
  std::vector<Var> ScalarBitsMsb(const ModularGadget::Num& k, size_t max_bits = 0);

 private:
  Point AddInternal(const Point& p, const Point& q, bool doubling);
  Point AddNaive(const Point& p, const Point& q, bool doubling);
  Point AddHint(const Point& p, const Point& q, bool doubling);
  // Picks an aux point whose whole accumulation dry-runs without degeneracy.
  NativeCurve::Pt PickAux(const std::vector<std::vector<bool>>& bit_values,
                          const std::vector<NativeCurve::Pt>& point_values, size_t nbits);
  Point MsmInternal(const std::vector<std::vector<Var>>& bits_msb,
                    const std::vector<Point>& points, const NativeCurve::Pt& aux);

  ConstraintSystem* cs_;
  CurveSpec spec_;
  NativeCurve native_;
  ModularGadget field_;
  ModularGadget scalar_field_;
  Technique technique_;
  uint64_t aux_seed_;
  uint64_t aux_counter_ = 0;
};

}  // namespace nope

#endif  // SRC_R1CS_EC_GADGET_H_
