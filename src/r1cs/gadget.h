// Uniform gadget interface (ROADMAP item 3; shaped after zkinterface's
// num_inputs/num_outputs + constraints-vs-witness split).
//
// A Gadget wraps one family from the library (mask/slice/bignum/EC/ECDSA/
// RSA/SHA-256/MiMC/...) behind three things the optimizer and audit harness
// need uniformly:
//   * Synthesize: build one seeded instance into a ConstraintSystem, drawing
//     spec-valid inputs from the Rng, and declare the input/output wires;
//   * SpecHolds: the gadget's semantics as a predicate over an arbitrary
//     assignment (not just the honest one);
//   * name: stable identifier used in reports, bench JSON and findings.
//
// Spec convention: SpecHolds is an implication precondition => guarantee.
// Inputs outside the gadget's documented domain (e.g. a "length" that is not
// a small integer, when the gadget's contract says the caller range-checks
// it) make the spec vacuously true; inside the domain the spec states
// exactly what the constraints are supposed to force. The audit harness
// searches for assignments where the constraints hold but SpecHolds fails
// (soundness hole) and for drawn inputs whose honest witness the
// constraints reject (completeness hole).
#ifndef SRC_R1CS_GADGET_H_
#define SRC_R1CS_GADGET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/bytes.h"
#include "src/r1cs/constraint_system.h"

namespace nope {

// Declared wires of one synthesized instance. Inputs are the wires the
// enclosing circuit would drive; outputs are the wires it would consume.
// Both are linear combinations over the instance's variables.
struct GadgetIo {
  std::vector<LC> inputs;
  std::vector<LC> outputs;
};

class Gadget {
 public:
  virtual ~Gadget() = default;

  virtual std::string name() const = 0;

  // Builds one instance into *cs (annotated with a GadgetScope carrying
  // name()) and returns its declared wires. Drawing different seeds yields
  // different spec-valid instances. May throw on degenerate draws (e.g. EC
  // hint collisions); callers retry with a fresh seed.
  virtual GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const = 0;

  // The gadget's declared semantics under an explicit assignment (same
  // indexing as cs; values[0] == 1). See the spec convention above.
  virtual bool SpecHolds(const ConstraintSystem& cs, const GadgetIo& io,
                         const std::vector<Fr>& values) const = 0;

  // Expensive gadgets (full hash compressions, signature verifications) get
  // fewer audit instances; the per-gadget assignment budget is unchanged.
  virtual bool IsExpensive() const { return false; }
};

// Every shipped gadget family wrapped in the interface. Pointers are owned
// by the registry and live for the process lifetime.
const std::vector<const Gadget*>& StandardGadgets();

}  // namespace nope

#endif  // SRC_R1CS_GADGET_H_
