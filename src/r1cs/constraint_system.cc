#include "src/r1cs/constraint_system.h"

#include <stdexcept>

namespace nope {

LinearCombination LinearCombination::Constant(const Fr& c) {
  LinearCombination lc;
  if (!c.IsZero()) {
    lc.terms_.emplace_back(kOneVar, c);
  }
  return lc;
}

LinearCombination& LinearCombination::Add(Var v, const Fr& coeff) {
  if (!coeff.IsZero()) {
    terms_.emplace_back(v, coeff);
  }
  return *this;
}

LinearCombination LinearCombination::operator+(const LinearCombination& o) const {
  LinearCombination out = *this;
  out.terms_.insert(out.terms_.end(), o.terms_.begin(), o.terms_.end());
  return out;
}

LinearCombination LinearCombination::operator-(const LinearCombination& o) const {
  LinearCombination out = *this;
  for (const auto& [v, c] : o.terms_) {
    out.terms_.emplace_back(v, -c);
  }
  return out;
}

LinearCombination LinearCombination::operator*(const Fr& s) const {
  LinearCombination out;
  if (s.IsZero()) {
    return out;
  }
  out.terms_.reserve(terms_.size());
  for (const auto& [v, c] : terms_) {
    out.terms_.emplace_back(v, c * s);
  }
  return out;
}

ConstraintSystem::ConstraintSystem(Mode mode) : mode_(mode) {
  values_.push_back(Fr::One());  // variable 0 == 1
  num_public_ = 1;
}

Var ConstraintSystem::AddPublicInput(const Fr& value) {
  if (witness_started_) {
    throw std::logic_error("public inputs must be allocated before witnesses");
  }
  values_.push_back(value);
  ++num_public_;
  return static_cast<Var>(values_.size() - 1);
}

Var ConstraintSystem::AddWitness(const Fr& value) {
  witness_started_ = true;
  values_.push_back(value);
  return static_cast<Var>(values_.size() - 1);
}

void ConstraintSystem::Enforce(const LC& a, const LC& b, const LC& c) {
  ++num_constraints_;
  if (mode_ == Mode::kProve) {
    constraints_.push_back(Constraint{a, b, c});
  }
}

void ConstraintSystem::EnforceEqual(const LC& lhs, const LC& rhs) {
  Enforce(lhs - rhs, LC(kOneVar), LC());
}

void ConstraintSystem::EnforceBoolean(Var v) {
  // v * (v - 1) == 0.
  Enforce(LC(v), LC(v) - LC(kOneVar), LC());
}

Fr ConstraintSystem::Eval(const LC& lc) const {
  Fr acc = Fr::Zero();
  for (const auto& [v, c] : lc.terms()) {
    acc = acc + values_[v] * c;
  }
  return acc;
}

bool ConstraintSystem::IsSatisfied(size_t* bad) const {
  if (mode_ != Mode::kProve) {
    throw std::logic_error("IsSatisfied requires kProve mode");
  }
  for (size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    if (Eval(c.a) * Eval(c.b) != Eval(c.c)) {
      if (bad != nullptr) {
        *bad = i;
      }
      return false;
    }
  }
  return true;
}

}  // namespace nope
