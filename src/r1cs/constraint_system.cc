#include "src/r1cs/constraint_system.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nope {

LinearCombination LinearCombination::Constant(const Fr& c) {
  LinearCombination lc;
  if (!c.IsZero()) {
    lc.terms_.emplace_back(kOneVar, c);
  }
  return lc;
}

LinearCombination& LinearCombination::Add(Var v, const Fr& coeff) {
  if (!coeff.IsZero()) {
    terms_.emplace_back(v, coeff);
  }
  return *this;
}

LinearCombination LinearCombination::operator+(const LinearCombination& o) const {
  LinearCombination out = *this;
  out.terms_.insert(out.terms_.end(), o.terms_.begin(), o.terms_.end());
  return out;
}

LinearCombination LinearCombination::operator-(const LinearCombination& o) const {
  LinearCombination out = *this;
  for (const auto& [v, c] : o.terms_) {
    out.terms_.emplace_back(v, -c);
  }
  return out;
}

LinearCombination LinearCombination::operator*(const Fr& s) const {
  LinearCombination out;
  if (s.IsZero()) {
    return out;
  }
  out.terms_.reserve(terms_.size());
  for (const auto& [v, c] : terms_) {
    out.terms_.emplace_back(v, c * s);
  }
  return out;
}

LinearCombination& LinearCombination::Canonicalize() {
  if (terms_.empty()) {
    return *this;
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  size_t out = 0;
  for (size_t i = 0; i < terms_.size();) {
    Var v = terms_[i].first;
    Fr sum = terms_[i].second;
    for (++i; i < terms_.size() && terms_[i].first == v; ++i) {
      sum = sum + terms_[i].second;
    }
    if (!sum.IsZero()) {
      terms_[out++] = {v, sum};
    }
  }
  terms_.resize(out);
  return *this;
}

bool LinearCombination::IsConstant() const {
  for (const auto& [v, c] : terms_) {
    if (v != kOneVar) {
      return false;
    }
  }
  return true;
}

Fr LinearCombination::ConstantValue() const {
  Fr sum = Fr::Zero();
  for (const auto& [v, c] : terms_) {
    if (v == kOneVar) {
      sum = sum + c;
    }
  }
  return sum;
}

Fr EvalLc(const LC& lc, const std::vector<Fr>& values) {
  Fr acc = Fr::Zero();
  for (const auto& [v, c] : lc.terms()) {
    acc = acc + values[v] * c;
  }
  return acc;
}

ConstraintSystem::ConstraintSystem(Mode mode) : mode_(mode) {
  values_.push_back(Fr::One());  // variable 0 == 1
  num_public_ = 1;
}

Var ConstraintSystem::AddPublicInput(const Fr& value) {
  if (witness_started_) {
    throw std::logic_error("public inputs must be allocated before witnesses");
  }
  values_.push_back(value);
  ++num_public_;
  return static_cast<Var>(values_.size() - 1);
}

Var ConstraintSystem::AddWitness(const Fr& value) {
  witness_started_ = true;
  values_.push_back(value);
  return static_cast<Var>(values_.size() - 1);
}

void ConstraintSystem::Enforce(const LC& a, const LC& b, const LC& c) {
  ++num_constraints_;
  if (mode_ == Mode::kProve) {
    constraints_.push_back(Constraint{a, b, c});
  }
}

void ConstraintSystem::EnforceEqual(const LC& lhs, const LC& rhs) {
  Enforce(lhs - rhs, LC(kOneVar), LC());
}

void ConstraintSystem::EnforceBoolean(Var v) {
  // v * (v - 1) == 0.
  Enforce(LC(v), LC(v) - LC(kOneVar), LC());
}

Fr ConstraintSystem::Eval(const LC& lc) const {
  Fr acc = Fr::Zero();
  for (const auto& [v, c] : lc.terms()) {
    acc = acc + values_[v] * c;
  }
  return acc;
}

bool ConstraintSystem::IsSatisfied(size_t* bad) const {
  if (mode_ != Mode::kProve) {
    throw std::logic_error("IsSatisfied requires kProve mode");
  }
  return SatisfiedBy(values_, bad);
}

bool ConstraintSystem::SatisfiedBy(const std::vector<Fr>& values, size_t* bad) const {
  if (mode_ != Mode::kProve) {
    throw std::logic_error("SatisfiedBy requires kProve mode");
  }
  if (values.size() != values_.size()) {
    throw std::invalid_argument("SatisfiedBy: assignment has the wrong arity");
  }
  for (size_t i = 0; i < constraints_.size(); ++i) {
    const Constraint& c = constraints_[i];
    if (EvalLc(c.a, values) * EvalLc(c.b, values) != EvalLc(c.c, values)) {
      if (bad != nullptr) {
        *bad = i;
      }
      return false;
    }
  }
  return true;
}

void ConstraintSystem::BeginScope(std::string name) {
  ScopeSpan span;
  span.name = std::move(name);
  span.depth = open_scopes_.size();
  span.first_constraint = num_constraints_;
  span.first_var = values_.size();
  open_scopes_.push_back(scopes_.size());
  scopes_.push_back(std::move(span));
}

void ConstraintSystem::EndScope() {
  if (open_scopes_.empty()) {
    throw std::logic_error("EndScope without a matching BeginScope");
  }
  ScopeSpan& span = scopes_[open_scopes_.back()];
  span.num_constraints = num_constraints_ - span.first_constraint;
  span.num_vars = values_.size() - span.first_var;
  open_scopes_.pop_back();
}

}  // namespace nope
