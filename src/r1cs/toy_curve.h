// Small prime-order short-Weierstrass curves for fast end-to-end proving.
//
// The EC/ECDSA gadgets are generic over CurveSpec; unit tests and the demo
// crypto suite instantiate them over a ~2^20 curve found by exhaustive point
// counting, so a whole ECDSA verification proves in seconds while the exact
// same gadget code is counted at P-256 scale for the paper's Figure 6.
#ifndef SRC_R1CS_TOY_CURVE_H_
#define SRC_R1CS_TOY_CURVE_H_

#include "src/r1cs/ec_gadget.h"

namespace nope {

// Deterministically finds a curve y^2 = x^3 - 3x + b over a prime p near
// 2^bits (p == 3 mod 4) whose point count is prime. bits must be <= 28.
CurveSpec FindToyCurve(uint64_t seed, size_t bits = 20);

// Deterministic Miller-Rabin for 64-bit integers.
bool IsProbablePrimeU64(uint64_t n);

// Generic ECDSA over any CurveSpec with an externally supplied digest.
struct ToyEcdsaSignature {
  BigUInt r;
  BigUInt s;
};
ToyEcdsaSignature ToyEcdsaSign(const CurveSpec& spec, const BigUInt& private_key,
                               const Bytes& digest, Rng* rng);
bool ToyEcdsaVerify(const CurveSpec& spec, const NativeCurve::Pt& public_key,
                    const Bytes& digest, const ToyEcdsaSignature& sig);

}  // namespace nope

#endif  // SRC_R1CS_TOY_CURVE_H_
