#include <algorithm>
#include "src/r1cs/mimc_gadget.h"

#include <stdexcept>

namespace nope {

namespace {

constexpr size_t kRounds = 20;

// Round constants derived from a fixed seed; identical for native and
// in-circuit evaluation.
const std::vector<Fr>& RoundConstants() {
  static const std::vector<Fr> constants = [] {
    std::vector<Fr> out;
    Rng rng(0x4d694d43);  // "MiMC"
    for (size_t i = 0; i < kRounds; ++i) {
      out.push_back(Fr::Random(&rng));
    }
    return out;
  }();
  return constants;
}

Fr PermuteNative(Fr x) {
  for (size_t i = 0; i < kRounds; ++i) {
    Fr t = x + RoundConstants()[i];
    Fr t2 = t.Square();
    x = t2.Square() * t;  // t^5
  }
  return x;
}

LC PermuteGadget(ConstraintSystem* cs, LC x) {
  for (size_t i = 0; i < kRounds; ++i) {
    LC t = x + LC::Constant(RoundConstants()[i]);
    Fr tv = cs->Eval(t);
    Var t2 = cs->AddWitness(tv.Square());
    cs->Enforce(t, t, LC(t2));
    Var t4 = cs->AddWitness(tv.Square().Square());
    cs->Enforce(LC(t2), LC(t2), LC(t4));
    Var t5 = cs->AddWitness(tv.Square().Square() * tv);
    cs->Enforce(LC(t4), t, LC(t5));
    x = LC(t5);
  }
  return x;
}

Bytes DigestFromFr(const Fr& state) {
  // Low 248 bits, big-endian.
  BigUInt v = state.ToBigUInt() % (BigUInt(1) << (8 * kMimcDigestSize));
  return v.ToBytes(kMimcDigestSize);
}

}  // namespace

Bytes MimcHashBytes(const Bytes& data) {
  Bytes padded = data;
  while (padded.size() % kMimcChunkSize != 0) {
    padded.push_back(0);
  }
  std::vector<Fr> chunks = PackBytesValues(padded, kMimcChunkSize);
  Fr state = Fr::Zero();
  for (const Fr& c : chunks) {
    state = PermuteNative(state + c);
  }
  state = PermuteNative(state + Fr::FromU64(data.size()));
  return DigestFromFr(state);
}

std::vector<LC> MimcDynamicGadget(ConstraintSystem* cs, const std::vector<LC>& masked_bytes,
                                  const LC& len) {
  GadgetScope scope(cs, "MimcDynamic");
  // Pack masked bytes into 16-byte chunks (free).
  std::vector<LC> padded = masked_bytes;
  while (padded.size() % kMimcChunkSize != 0) {
    padded.push_back(LC());
  }
  size_t max_chunks = padded.size() / kMimcChunkSize;

  // nchunks = ceil(len / 16): witness with a 4-bit slack, then an indicator
  // plus suffix sums give per-chunk "active" flags (same machinery as mask).
  uint64_t len_val = cs->Eval(len).ToBigUInt().LowU64();
  uint64_t nchunks_val = (len_val + kMimcChunkSize - 1) / kMimcChunkSize;
  Var nchunks = cs->AddWitness(Fr::FromU64(nchunks_val));
  Var slack = cs->AddWitness(Fr::FromU64(nchunks_val * kMimcChunkSize - len_val));
  ToBits(cs, LC(slack), 4);  // slack in [0, 16)
  size_t nbits = 1;
  while ((size_t{1} << nbits) < max_chunks + 1) {
    ++nbits;
  }
  ToBits(cs, LC(nchunks), nbits);
  cs->EnforceEqual(LC(nchunks) * Fr::FromU64(kMimcChunkSize), len + LC(slack));
  // slack < 16 alone allows (nchunks, slack) ambiguity only when len % 16 ==
  // 0, where slack 0/16 collide; 4-bit slack excludes 16, so nchunks is
  // uniquely ceil(len/16) except len==0 (slack 0, nchunks 0).
  std::vector<Var> ind = Indicator(cs, LC(nchunks), max_chunks + 1);
  std::vector<LC> ind_lc;
  for (Var v : ind) {
    ind_lc.emplace_back(v);
  }
  std::vector<LC> suffix = SuffixSum(ind_lc);  // active_i = suffix[i+1]

  LC state;
  for (size_t i = 0; i < max_chunks; ++i) {
    LC chunk;
    Fr power = Fr::One();
    for (size_t j = (i + 1) * kMimcChunkSize; j-- > i * kMimcChunkSize;) {
      chunk = chunk + padded[j] * power;
      power = power * Fr::FromU64(256);
    }
    LC permuted = PermuteGadget(cs, state + chunk);
    // state' = active ? permuted : state.
    LC active = suffix[i + 1];
    LC diff = permuted - state;
    Fr tv = cs->Eval(active) * cs->Eval(diff);
    Var t = cs->AddWitness(tv);
    cs->Enforce(active, diff, LC(t));
    state = state + LC(t);
  }
  state = PermuteGadget(cs, state + len);

  // Digest = low 248 bits of the state, as 31 big-endian bytes.
  std::vector<Var> bits = ToBits(cs, state, 254);
  std::vector<LC> digest(kMimcDigestSize);
  for (size_t byte = 0; byte < kMimcDigestSize; ++byte) {
    LC acc;
    Fr power = Fr::One();
    // digest[0] is the most significant of the 31 bytes.
    size_t low_bit = 8 * (kMimcDigestSize - 1 - byte);
    for (size_t b = 0; b < 8; ++b) {
      acc = acc + LC(bits[low_bit + b]) * power;
      power = power.Double();
    }
    digest[byte] = acc;
  }
  return digest;
}

}  // namespace nope
