// Deliberately broken gadgets used to prove the audit harness has teeth.
// Both are negative fixtures for tests and CI only — never registered in
// StandardGadgets().
#ifndef SRC_R1CS_AUDIT_FIXTURES_H_
#define SRC_R1CS_AUDIT_FIXTURES_H_

#include "src/r1cs/gadget.h"

namespace nope {

// Soundness hole (under-constrained): claims out == (x != 0), but only
// enforces that `out` is boolean — nothing ties it to x. A one-variable
// mutation flipping `out` satisfies the constraints and violates the spec;
// the harness must report kSoundnessHole.
const Gadget& BrokenIsNonZeroGadget();

// Completeness hole (over-constrained): claims to range-check any byte in
// [0, 256) but decomposes into only 7 bits, so every honest instance with a
// value >= 128 has no satisfying witness; the harness must report
// kHonestUnsatisfied.
const Gadget& BrokenRangeCheckGadget();

}  // namespace nope

#endif  // SRC_R1CS_AUDIT_FIXTURES_H_
