// Per-gadget soundness/completeness audit harness (ROADMAP item 3).
//
// For every registered gadget the harness synthesizes seeded instances and
// then searches near the honest witness for two kinds of holes:
//   * soundness: an assignment that satisfies the constraints but violates
//     the gadget's declared spec (the constraints are too weak);
//   * completeness: a spec-valid drawn instance whose honest witness the
//     constraints reject (the constraints are too strong).
// When an optimizer configuration is supplied, every instance is additionally
// optimized and a differential oracle asserts satisfiability-equivalence:
// each pre-system assignment that satisfies the original constraints must map
// to a satisfying post-system assignment, and each post-system assignment
// that satisfies the optimized constraints must lift to a satisfying (and
// spec-conforming) pre-system assignment.
//
// The search is a seeded mutation walk (the same spirit as the byte-level
// mutators in src/base/mutator.*, lifted to field elements): mutants differ
// from the honest witness in 1..4 variables, with value edits drawn from a
// fixed op table. Satisfaction of a mutant is decided incrementally — only
// constraints touching mutated variables are re-evaluated — so thousands of
// assignments per gadget stay cheap even on hash-sized systems.
#ifndef SRC_R1CS_AUDIT_AUDIT_H_
#define SRC_R1CS_AUDIT_AUDIT_H_

#include <string>
#include <vector>

#include "src/r1cs/gadget.h"
#include "src/r1cs/opt/optimizer.h"

namespace nope {

struct AuditOptions {
  uint64_t seed = 1;
  size_t instances = 4;            // seeded instances per gadget
  size_t expensive_instances = 2;  // for Gadget::IsExpensive() gadgets
  // Total mutated assignments per gadget (split across instances and across
  // the pre-/post-optimization search streams). The acceptance bar is 10^3.
  size_t min_assignments = 1000;
  bool with_optimizer = true;
  OptimizeOptions optimize;
};

struct AuditFinding {
  enum class Kind {
    kSynthesisFailed,    // every synthesis attempt threw
    kHonestUnsatisfied,  // completeness: honest witness rejected
    kHonestSpecFails,    // spec/synthesis disagreement on the honest witness
    kSoundnessHole,      // constraints accept a spec-violating assignment
    kCountModeMismatch,  // kCount and kProve disagree on counts
    kOptLostWitness,     // pre-satisfying assignment rejected post-opt
    kOptAddedWitness,    // post-satisfying assignment rejected pre-opt
    kOptSoundnessHole,   // post-only witness whose lift violates the spec
  };
  Kind kind;
  std::string gadget;
  uint64_t instance_seed = 0;
  std::string detail;
};

const char* AuditFindingKindName(AuditFinding::Kind kind);

struct GadgetAuditResult {
  std::string name;
  size_t instances = 0;
  size_t assignments_checked = 0;  // honest + mutants, both streams
  size_t accepted_pre = 0;         // mutants satisfying the original system
  size_t accepted_post = 0;        // mutants satisfying the optimized system
  size_t constraints_pre = 0;      // of the first instance
  size_t constraints_post = 0;
  std::vector<AuditFinding> findings;

  bool Clean() const { return findings.empty(); }
};

GadgetAuditResult AuditGadget(const Gadget& gadget, const AuditOptions& options);

// Audits every gadget in `gadgets` (defaults to StandardGadgets() when empty).
std::vector<GadgetAuditResult> AuditAll(const AuditOptions& options,
                                        const std::vector<const Gadget*>& gadgets = {});

// One line per gadget plus one line per finding; for logs and test output.
std::string AuditSummary(const std::vector<GadgetAuditResult>& results);

}  // namespace nope

#endif  // SRC_R1CS_AUDIT_AUDIT_H_
