#include "src/r1cs/audit/audit.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace nope {
namespace {

constexpr size_t kMaxSynthesisAttempts = 10;
constexpr size_t kMaxFindingsPerKind = 3;
constexpr size_t kMaxDirtyVars = 4;

uint64_t HashName(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a, for per-gadget seed diversity
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  }
  return h;
}

// Incremental satisfaction: re-evaluates only the constraints that mention a
// mutated variable, against a base assignment known to satisfy everything.
class DeltaChecker {
 public:
  explicit DeltaChecker(const ConstraintSystem& cs) : cs_(cs) {
    occ_.resize(cs.NumVariables());
    const std::vector<Constraint>& cons = cs.constraints();
    for (size_t i = 0; i < cons.size(); ++i) {
      for (const LC* lc : {&cons[i].a, &cons[i].b, &cons[i].c}) {
        for (const auto& [v, coeff] : lc->terms()) {
          occ_[v].push_back(i);
        }
      }
    }
    for (std::vector<size_t>& list : occ_) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    stamp_.assign(cs.NumConstraints(), 0);
  }

  // `values` must equal the base satisfying assignment except at `dirty`.
  bool Satisfied(const std::vector<Fr>& values, const std::vector<Var>& dirty) {
    ++epoch_;
    const std::vector<Constraint>& cons = cs_.constraints();
    for (Var v : dirty) {
      for (size_t ci : occ_[v]) {
        if (stamp_[ci] == epoch_) {
          continue;
        }
        stamp_[ci] = epoch_;
        const Constraint& con = cons[ci];
        if (EvalLc(con.a, values) * EvalLc(con.b, values) != EvalLc(con.c, values)) {
          return false;
        }
      }
    }
    return true;
  }

 private:
  const ConstraintSystem& cs_;
  std::vector<std::vector<size_t>> occ_;
  std::vector<uint64_t> stamp_;
  uint64_t epoch_ = 0;
};

// One witness-variable edit drawn from a fixed op table. Returns a
// description for findings.
std::string MutateVar(std::vector<Fr>* values, Var v, Rng* rng) {
  char buf[96];
  switch (rng->NextBelow(8)) {
    case 0:
      (*values)[v] = Fr::Zero();
      std::snprintf(buf, sizeof(buf), "v%u=0", v);
      break;
    case 1:
      (*values)[v] = Fr::One();
      std::snprintf(buf, sizeof(buf), "v%u=1", v);
      break;
    case 2:
      (*values)[v] = (*values)[v] + Fr::One();
      std::snprintf(buf, sizeof(buf), "v%u+=1", v);
      break;
    case 3:
      (*values)[v] = (*values)[v] - Fr::One();
      std::snprintf(buf, sizeof(buf), "v%u-=1", v);
      break;
    case 4:
      (*values)[v] = Fr::Random(rng);
      std::snprintf(buf, sizeof(buf), "v%u=random", v);
      break;
    case 5: {
      Var src = static_cast<Var>(1 + rng->NextBelow(values->size() - 1));
      (*values)[v] = (*values)[src];
      std::snprintf(buf, sizeof(buf), "v%u=v%u", v, src);
      break;
    }
    case 6:
      (*values)[v] = -(*values)[v];
      std::snprintf(buf, sizeof(buf), "v%u=-v%u", v, v);
      break;
    default: {
      uint64_t shift = 1 + rng->NextBelow(16);
      (*values)[v] = (*values)[v] * Fr::FromU64(uint64_t{1} << shift);
      std::snprintf(buf, sizeof(buf), "v%u<<=%llu", v, static_cast<unsigned long long>(shift));
      break;
    }
  }
  return buf;
}

struct Mutant {
  std::vector<Var> dirty;
  std::string desc;
};

// Applies 1..kMaxDirtyVars edits to *values (restores are the caller's job
// via the returned dirty list and the base assignment).
Mutant DrawMutant(std::vector<Fr>* values, Rng* rng) {
  Mutant m;
  size_t k = 1 + rng->NextBelow(kMaxDirtyVars);
  for (size_t i = 0; i < k; ++i) {
    if (values->size() <= 1) {
      break;
    }
    Var v = static_cast<Var>(1 + rng->NextBelow(values->size() - 1));
    std::string desc = MutateVar(values, v, rng);
    m.dirty.push_back(v);
    m.desc += m.desc.empty() ? desc : "," + desc;
  }
  return m;
}

class FindingSink {
 public:
  FindingSink(GadgetAuditResult* result, const std::string& gadget)
      : result_(result), gadget_(gadget) {}

  void Add(AuditFinding::Kind kind, uint64_t seed, std::string detail) {
    size_t count = 0;
    for (const AuditFinding& f : result_->findings) {
      if (f.kind == kind) {
        ++count;
      }
    }
    if (count >= kMaxFindingsPerKind) {
      return;
    }
    result_->findings.push_back(AuditFinding{kind, gadget_, seed, std::move(detail)});
  }

 private:
  GadgetAuditResult* result_;
  std::string gadget_;
};

}  // namespace

const char* AuditFindingKindName(AuditFinding::Kind kind) {
  switch (kind) {
    case AuditFinding::Kind::kSynthesisFailed:
      return "synthesis_failed";
    case AuditFinding::Kind::kHonestUnsatisfied:
      return "honest_unsatisfied";
    case AuditFinding::Kind::kHonestSpecFails:
      return "honest_spec_fails";
    case AuditFinding::Kind::kSoundnessHole:
      return "soundness_hole";
    case AuditFinding::Kind::kCountModeMismatch:
      return "count_mode_mismatch";
    case AuditFinding::Kind::kOptLostWitness:
      return "opt_lost_witness";
    case AuditFinding::Kind::kOptAddedWitness:
      return "opt_added_witness";
    case AuditFinding::Kind::kOptSoundnessHole:
      return "opt_soundness_hole";
  }
  return "unknown";
}

GadgetAuditResult AuditGadget(const Gadget& gadget, const AuditOptions& options) {
  GadgetAuditResult result;
  result.name = gadget.name();
  size_t instances =
      gadget.IsExpensive() ? options.expensive_instances : options.instances;
  instances = std::max<size_t>(instances, 1);
  size_t per_instance = (options.min_assignments + instances - 1) / instances;
  FindingSink sink(&result, result.name);
  Rng seeder(options.seed ^ HashName(result.name));

  for (size_t inst = 0; inst < instances; ++inst) {
    uint64_t inst_seed = seeder.NextU64();

    // Synthesize with retry: gadgets may throw on degenerate draws.
    ConstraintSystem cs(ConstraintSystem::Mode::kProve);
    GadgetIo io;
    uint64_t used_seed = inst_seed;
    bool synthesized = false;
    std::string last_error = "unknown";
    for (size_t attempt = 0; attempt < kMaxSynthesisAttempts; ++attempt) {
      used_seed = inst_seed + attempt * 0x9e3779b97f4a7c15ull;
      cs = ConstraintSystem(ConstraintSystem::Mode::kProve);
      Rng rng(used_seed);
      try {
        io = gadget.Synthesize(&cs, &rng);
        synthesized = true;
        break;
      } catch (const std::exception& e) {
        last_error = e.what();
      }
    }
    if (!synthesized) {
      sink.Add(AuditFinding::Kind::kSynthesisFailed, inst_seed, last_error);
      continue;
    }
    ++result.instances;

    // kCount must report the identical shape for the identical draw.
    {
      ConstraintSystem counter(ConstraintSystem::Mode::kCount);
      Rng rng(used_seed);
      try {
        gadget.Synthesize(&counter, &rng);
        if (counter.NumConstraints() != cs.NumConstraints() ||
            counter.NumVariables() != cs.NumVariables()) {
          char buf[128];
          std::snprintf(buf, sizeof(buf), "kCount %zu/%zu vs kProve %zu/%zu (cons/vars)",
                        counter.NumConstraints(), counter.NumVariables(), cs.NumConstraints(),
                        cs.NumVariables());
          sink.Add(AuditFinding::Kind::kCountModeMismatch, used_seed, buf);
        }
      } catch (const std::exception& e) {
        sink.Add(AuditFinding::Kind::kCountModeMismatch, used_seed,
                 std::string("kCount synthesis threw: ") + e.what());
      }
    }

    // Honest-witness checks: completeness, then spec/synthesis agreement.
    const std::vector<Fr> honest = cs.values();
    ++result.assignments_checked;
    size_t bad = 0;
    if (!cs.SatisfiedBy(honest, &bad)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "constraint %zu violated by honest witness", bad);
      sink.Add(AuditFinding::Kind::kHonestUnsatisfied, used_seed, buf);
      continue;  // the mutation walk needs a satisfying base
    }
    if (!gadget.SpecHolds(cs, io, honest)) {
      sink.Add(AuditFinding::Kind::kHonestSpecFails, used_seed, "spec rejects honest witness");
    }
    if (inst == 0) {
      result.constraints_pre = cs.NumConstraints();
    }

    // Optimized twin (differential oracle).
    OptimizeResult opt;
    std::vector<Fr> honest_post;
    bool have_opt = false;
    if (options.with_optimizer) {
      opt = Optimize(cs, options.optimize);
      honest_post = opt.MapAssignment(honest);
      have_opt = true;
      if (inst == 0) {
        result.constraints_post = opt.cs.NumConstraints();
      }
      ++result.assignments_checked;
      if (!opt.cs.SatisfiedBy(honest_post, &bad)) {
        char buf[80];
        std::snprintf(buf, sizeof(buf), "optimized constraint %zu rejects mapped honest witness",
                      bad);
        sink.Add(AuditFinding::Kind::kOptLostWitness, used_seed, buf);
        have_opt = false;  // the post-stream needs a satisfying base too
      }
    }

    // Pre-system stream: soundness search + pre->post direction.
    DeltaChecker pre_checker(cs);
    size_t pre_budget = have_opt ? per_instance / 2 : per_instance;
    {
      Rng mrng(used_seed ^ 0xa5a5a5a5a5a5a5a5ull);
      std::vector<Fr> work = honest;
      for (size_t i = 0; i < pre_budget; ++i) {
        Mutant m = DrawMutant(&work, &mrng);
        ++result.assignments_checked;
        if (pre_checker.Satisfied(work, m.dirty)) {
          ++result.accepted_pre;
          if (!gadget.SpecHolds(cs, io, work)) {
            sink.Add(AuditFinding::Kind::kSoundnessHole, used_seed,
                     "accepted assignment violates spec: " + m.desc);
          }
          if (have_opt) {
            std::vector<Fr> mapped = opt.MapAssignment(work);
            if (!opt.cs.SatisfiedBy(mapped)) {
              sink.Add(AuditFinding::Kind::kOptLostWitness, used_seed,
                       "pre-satisfying mutant rejected post-opt: " + m.desc);
            }
          }
        }
        for (Var v : m.dirty) {
          work[v] = honest[v];
        }
      }
    }

    // Post-system stream: post->pre direction (lift must satisfy and obey
    // the spec; otherwise the optimizer manufactured witnesses).
    if (have_opt) {
      DeltaChecker post_checker(opt.cs);
      Rng mrng(used_seed ^ 0x5a5a5a5a5a5a5a5aull);
      std::vector<Fr> work = honest_post;
      size_t post_budget = per_instance - pre_budget;
      for (size_t i = 0; i < post_budget; ++i) {
        Mutant m = DrawMutant(&work, &mrng);
        ++result.assignments_checked;
        if (post_checker.Satisfied(work, m.dirty)) {
          ++result.accepted_post;
          std::vector<Fr> lifted = opt.LiftAssignment(work);
          if (!cs.SatisfiedBy(lifted)) {
            sink.Add(AuditFinding::Kind::kOptAddedWitness, used_seed,
                     "post-satisfying mutant has non-satisfying lift: " + m.desc);
            if (!gadget.SpecHolds(cs, io, lifted)) {
              sink.Add(AuditFinding::Kind::kOptSoundnessHole, used_seed,
                       "and the lift violates the spec: " + m.desc);
            }
          } else if (!gadget.SpecHolds(cs, io, lifted)) {
            // Reachable pre-opt too: a genuine soundness hole.
            sink.Add(AuditFinding::Kind::kSoundnessHole, used_seed,
                     "post-stream lift violates spec: " + m.desc);
          }
        }
        for (Var v : m.dirty) {
          work[v] = honest_post[v];
        }
      }
    }
  }
  return result;
}

std::vector<GadgetAuditResult> AuditAll(const AuditOptions& options,
                                        const std::vector<const Gadget*>& gadgets) {
  const std::vector<const Gadget*>& list =
      gadgets.empty() ? StandardGadgets() : gadgets;
  std::vector<GadgetAuditResult> results;
  for (const Gadget* g : list) {
    results.push_back(AuditGadget(*g, options));
  }
  return results;
}

std::string AuditSummary(const std::vector<GadgetAuditResult>& results) {
  std::string out;
  char line[256];
  for (const GadgetAuditResult& r : results) {
    std::snprintf(line, sizeof(line),
                  "%-24s inst=%zu asn=%zu acc_pre=%zu acc_post=%zu cons=%zu->%zu %s\n",
                  r.name.c_str(), r.instances, r.assignments_checked, r.accepted_pre,
                  r.accepted_post, r.constraints_pre, r.constraints_post,
                  r.Clean() ? "clean" : "FINDINGS");
    out += line;
    for (const AuditFinding& f : r.findings) {
      std::snprintf(line, sizeof(line), "  [%s] seed=%llu %s\n", AuditFindingKindName(f.kind),
                    static_cast<unsigned long long>(f.instance_seed), f.detail.c_str());
      out += line;
    }
  }
  return out;
}

}  // namespace nope
