#include "src/r1cs/audit/fixtures.h"

#include "src/r1cs/parse_gadgets.h"

namespace nope {
namespace {

class BrokenIsNonZero : public Gadget {
 public:
  std::string name() const override { return "broken_is_nonzero"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    Fr xv = rng->NextBelow(2) == 0 ? Fr::Zero() : Fr::FromU64(1 + rng->NextBelow(1000));
    Var x = cs->AddWitness(xv);
    Var out = cs->AddWitness(xv.IsZero() ? Fr::Zero() : Fr::One());
    // BUG (intentional): booleanity alone; the x*(out-1)==0 / MapNonZeroToZero
    // linkage a real is-nonzero gadget needs is missing.
    cs->EnforceBoolean(out);
    return GadgetIo{{LC(x)}, {LC(out)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    Fr x = EvalLc(io.inputs[0], values);
    Fr out = EvalLc(io.outputs[0], values);
    return out == (x.IsZero() ? Fr::Zero() : Fr::One());
  }
};

class BrokenRangeCheck : public Gadget {
 public:
  std::string name() const override { return "broken_range_check"; }
  GadgetIo Synthesize(ConstraintSystem* cs, Rng* rng) const override {
    GadgetScope scope(cs, name());
    // Spec-valid domain is any byte; draw from the top half, which is where
    // the bug bites, so the fixture reproduces on every seed.
    uint64_t v = 128 + rng->NextBelow(128);
    Var x = cs->AddWitness(Fr::FromU64(v));
    // BUG (intentional): one bit short — the recomposition equality rejects
    // every honest value >= 128.
    ToBits(cs, LC(x), 7);
    return GadgetIo{{}, {LC(x)}};
  }
  bool SpecHolds(const ConstraintSystem&, const GadgetIo& io,
                 const std::vector<Fr>& values) const override {
    return EvalLc(io.outputs[0], values).ToBigUInt() <= BigUInt(255);
  }
};

}  // namespace

const Gadget& BrokenIsNonZeroGadget() {
  static const BrokenIsNonZero g;
  return g;
}

const Gadget& BrokenRangeCheckGadget() {
  static const BrokenRangeCheck g;
  return g;
}

}  // namespace nope
