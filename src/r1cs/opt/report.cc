#include "src/r1cs/opt/report.h"

#include <cstdio>
#include <map>
#include <stdexcept>

namespace nope {
namespace {

constexpr const char* kUnscoped = "(unscoped)";

// Name owning a given innermost-scope index (kNoScope -> "(unscoped)").
const std::string& ScopeName(const std::vector<ScopeSpan>& spans, uint32_t scope) {
  static const std::string unscoped = kUnscoped;
  return scope == OptimizeResult::kNoScope ? unscoped : spans[scope].name;
}

}  // namespace

DensityReport BuildDensityReport(const ConstraintSystem& cs, const OptimizeResult* opt) {
  if (cs.mode() != ConstraintSystem::Mode::kProve) {
    throw std::logic_error("BuildDensityReport requires a kProve-mode system");
  }
  const std::vector<ScopeSpan>& spans = cs.scopes();
  std::vector<uint32_t> con_scope = InnermostConstraintScopes(cs);
  std::vector<uint32_t> var_scope = InnermostVarScopes(cs);

  std::map<std::string, GadgetDensityRow> rows;
  for (const ScopeSpan& span : spans) {
    if (!span.name.empty() && span.name[0] == '~') {
      continue;  // shared primitive; attributed to the enclosing gadget
    }
    GadgetDensityRow& row = rows[span.name];
    row.name = span.name;
    ++row.instances;
  }

  const std::vector<Constraint>& cons = cs.constraints();
  for (size_t i = 0; i < cons.size(); ++i) {
    GadgetDensityRow& row = rows[ScopeName(spans, con_scope[i])];
    if (row.name.empty()) {
      row.name = kUnscoped;
    }
    ++row.constraints_pre;
    row.lc_terms_pre +=
        cons[i].a.terms().size() + cons[i].b.terms().size() + cons[i].c.terms().size();
  }
  for (size_t v = 1; v < cs.NumVariables(); ++v) {
    GadgetDensityRow& row = rows[ScopeName(spans, var_scope[v])];
    if (row.name.empty()) {
      row.name = kUnscoped;
    }
    ++row.aux_wires_pre;
    if (opt != nullptr && opt->var_map[v] != OptimizeResult::kEliminatedVar) {
      ++row.aux_wires_post;
    }
  }
  if (opt != nullptr) {
    if (opt->var_map.size() != cs.NumVariables() ||
        opt->stats.constraints_before != cs.NumConstraints()) {
      throw std::invalid_argument("BuildDensityReport: OptimizeResult is not for this system");
    }
    for (uint32_t scope : opt->constraint_scope) {
      GadgetDensityRow& row = rows[ScopeName(spans, scope)];
      if (row.name.empty()) {
        row.name = kUnscoped;
      }
      ++row.constraints_post;
    }
  }

  DensityReport report;
  report.total_constraints_pre = cs.NumConstraints();
  report.total_vars_pre = cs.NumVariables();
  if (opt != nullptr) {
    report.total_constraints_post = opt->stats.constraints_after;
    report.total_vars_post = opt->stats.vars_after;
  }
  for (auto& [name, row] : rows) {
    report.rows.push_back(row);
  }
  return report;
}

std::string DensityReportTable(const DensityReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %6s %10s %10s %9s %8s\n", "gadget", "inst",
                "cons_pre", "cons_post", "wires", "avg_lc");
  out += line;
  for (const GadgetDensityRow& row : report.rows) {
    std::snprintf(line, sizeof(line), "%-28s %6zu %10zu %10zu %9zu %8.2f\n", row.name.c_str(),
                  row.instances, row.constraints_pre, row.constraints_post, row.aux_wires_pre,
                  row.AvgLcTerms());
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-28s %6s %10zu %10zu %9zu\n", "total", "",
                report.total_constraints_pre, report.total_constraints_post,
                report.total_vars_pre);
  out += line;
  return out;
}

}  // namespace nope
