// R1CS optimization pipeline (ROADMAP item 3).
//
// Runs between gadget synthesis and Groth16 Setup/Prove. Passes:
//   (a) linear-combination canonicalization + constant folding: every LC is
//       sorted/merged/zero-free, and a*b = c with a constant side is folded
//       to the linear form L * 1 = 0;
//   (b) dead-wire elimination: witness variables used by no constraint are
//       dropped, and a single-use "defining product" a*b = k*v (v nowhere
//       else) is projected out together with its constraint;
//   (c) common-subexpression sharing: exact duplicate constraints collapse
//       to one, and two products with identical (a, b) sides that each
//       define a fresh variable share one definition;
//   plus linear substitution: a linear constraint L = 0 defines one of its
//   variables, which is folded into its uses when the fill-in is small.
//
// Two structural passes extend (c) across gadget instances:
//   (e) span unification: two scope spans with the same name whose constraint
//       ranges are identical under the positional variable correspondence
//       (span-local wire i <-> span-local wire i, external wires equal) are
//       the same sub-circuit applied to the same inputs. The duplicate's
//       local wires are aliased onto the original's and its constraints decay
//       into exact duplicates that (c) removes. The Map direction of the
//       equivalence contract below then relies on spans being *functional*:
//       local wires uniquely determined by the external inputs, which holds
//       for every gadget in this library (bit decompositions, inverse hints,
//       carry/quotient witnesses are all unique). Disable unify_spans for
//       circuits with free non-deterministic wires that escape their span.
//   (f) affine product sharing: products S * (V + k1) = c1 and
//       S * (V + k2) = c2 differ by the identity c2 - c1 = (k2 - k1) * S, so
//       the second is replaced by that linear constraint.
//
// Determinism contract: the optimized matrices are a pure function of the
// input matrices (never of the witness values), all passes run serially in
// constraint order, and the result is identical across NOPE_THREADS. Setup
// (sample witness) and Prove (real witness) therefore agree on the optimized
// system as long as they agree on the input system, which the repo already
// guarantees.
//
// Assignment mapping: because variables are eliminated, the optimized and
// original systems index different witness vectors. MapAssignment compresses
// an original assignment (dropping eliminated variables); LiftAssignment
// recomputes eliminated variables from the recorded elimination expressions.
// Satisfiability equivalence, checked exhaustively by the audit harness:
//   * w satisfies the original  =>  MapAssignment(w) satisfies the optimized
//   * w' satisfies the optimized => LiftAssignment(w') satisfies the original
#ifndef SRC_R1CS_OPT_OPTIMIZER_H_
#define SRC_R1CS_OPT_OPTIMIZER_H_

#include <cstdint>
#include <vector>

#include "src/r1cs/constraint_system.h"

namespace nope {

struct OptimizeOptions {
  bool canonicalize = true;       // pass (a): fold + canonical LCs
  bool substitute_linear = true;  // fold linear definitions into their uses
  bool share_products = true;     // pass (c): CSE across gadget instances
  bool eliminate_dead = true;     // pass (b): dead wires + defining products
  bool unify_spans = true;        // pass (e): duplicate scope-span aliasing
  bool share_affine = true;       // pass (f): affine-related product rewrite
  size_t max_rounds = 8;
  // Substitution budget: a variable is only folded out when
  // (uses outside its defining constraint) * (expression terms) stays within
  // this bound, so eliminations cannot blow up matrix density.
  size_t max_fill = 64;
};

struct OptStats {
  size_t rounds = 0;
  size_t constraints_before = 0;
  size_t constraints_after = 0;
  size_t vars_before = 0;
  size_t vars_after = 0;
  size_t folded_constant = 0;      // products rewritten to linear form
  size_t dropped_trivial = 0;      // 0 == 0 constraints removed
  size_t substituted_vars = 0;     // linear definitions folded out
  size_t shared_products = 0;      // duplicate defining products merged
  size_t deduped_constraints = 0;  // exact duplicate constraints removed
  size_t dead_vars = 0;            // variables with no remaining use
  size_t projected_products = 0;   // single-use defining products dropped
  size_t unified_spans = 0;        // duplicate gadget spans aliased away
  size_t unified_vars = 0;         // local wires merged by span unification
  size_t affine_rewrites = 0;      // products rewritten via the affine identity
};

// How an eliminated original variable's value is recovered from an optimized
// assignment. Expressions reference original variable ids that were still
// alive when the elimination was recorded, so LiftAssignment replays the
// list in reverse order.
struct Elimination {
  enum class Kind {
    kDead,     // unconstrained: lifts to zero
    kLinear,   // var = constant + sum_i coeff_i * old_var_i
    kProduct,  // var = scale * Eval(a) * Eval(b)
  };
  Kind kind = Kind::kDead;
  Var var = 0;  // original id
  Fr constant;
  std::vector<std::pair<Var, Fr>> terms;
  LC a, b;
  Fr scale;
};

struct OptimizeResult {
  static constexpr Var kEliminatedVar = 0xffffffffu;
  static constexpr uint32_t kNoScope = 0xffffffffu;

  // The optimized system (kProve mode), seeded with the mapped assignment of
  // the input system's values.
  ConstraintSystem cs;
  // Original var id -> optimized var id (kEliminatedVar if eliminated).
  // Public inputs are never eliminated and keep their ids.
  std::vector<Var> var_map;
  // Optimized var id -> original var id.
  std::vector<Var> inverse_map;
  // In elimination order (LiftAssignment replays it in reverse).
  std::vector<Elimination> eliminations;
  // Per optimized constraint: index into the ORIGINAL system's scopes() of
  // the innermost scope that emitted it (kNoScope if unscoped), so density
  // reports can attribute post-optimization counts to gadget instances.
  std::vector<uint32_t> constraint_scope;
  OptStats stats;

  // Compresses an original-indexed assignment to the optimized indexing.
  std::vector<Fr> MapAssignment(const std::vector<Fr>& old_values) const;
  // Expands an optimized-indexed assignment back to the original indexing,
  // recomputing eliminated variables from their recorded expressions.
  std::vector<Fr> LiftAssignment(const std::vector<Fr>& new_values) const;
};

// Optimizes a kProve-mode system. The input is not modified.
OptimizeResult Optimize(const ConstraintSystem& cs, const OptimizeOptions& options = {});

// Innermost-scope attribution for the ORIGINAL system: element i names the
// scopes() index owning constraint i (kNoScope when outside every scope).
// Scopes whose name starts with '~' mark shared primitives (ToBits,
// Indicator, ...) for span unification; they are transparent here so density
// reports keep gadget-level granularity.
std::vector<uint32_t> InnermostConstraintScopes(const ConstraintSystem& cs);
// Same attribution for variables.
std::vector<uint32_t> InnermostVarScopes(const ConstraintSystem& cs);

}  // namespace nope

#endif  // SRC_R1CS_OPT_OPTIMIZER_H_
