// Pass (d): per-gadget constraint/density/wire report.
//
// Aggregates scope-annotated synthesis (GadgetScope / BeginScope) by scope
// name: how many instances of each gadget a circuit contains, how many
// constraints and aux wires they emit, and how dense their linear
// combinations are. When an OptimizeResult is supplied the report also
// attributes post-optimization constraint and wire counts back to the
// original gadget instances, which is what the bench JSON emits as
// r1cs.<gadget>.constraints_{pre,post}.
#ifndef SRC_R1CS_OPT_REPORT_H_
#define SRC_R1CS_OPT_REPORT_H_

#include <string>
#include <vector>

#include "src/r1cs/constraint_system.h"
#include "src/r1cs/opt/optimizer.h"

namespace nope {

struct GadgetDensityRow {
  std::string name;              // scope name ("(unscoped)" for the remainder)
  size_t instances = 0;          // scope spans carrying this name
  size_t constraints_pre = 0;    // innermost attribution, before optimization
  size_t constraints_post = 0;   // after optimization (0 when no result given)
  size_t aux_wires_pre = 0;      // variables allocated inside the spans
  size_t aux_wires_post = 0;     // of those, surviving optimization
  size_t lc_terms_pre = 0;       // total terms across a/b/c, pre-optimization

  double AvgLcTerms() const {
    return constraints_pre == 0 ? 0.0
                                : static_cast<double>(lc_terms_pre) /
                                      static_cast<double>(constraints_pre);
  }
};

struct DensityReport {
  std::vector<GadgetDensityRow> rows;  // sorted by name
  size_t total_constraints_pre = 0;
  size_t total_constraints_post = 0;
  size_t total_vars_pre = 0;
  size_t total_vars_post = 0;
};

// `opt`, when non-null, must be the result of optimizing exactly `cs`.
DensityReport BuildDensityReport(const ConstraintSystem& cs, const OptimizeResult* opt = nullptr);

// Human-readable table for logs and debugging.
std::string DensityReportTable(const DensityReport& report);

}  // namespace nope

#endif  // SRC_R1CS_OPT_REPORT_H_
