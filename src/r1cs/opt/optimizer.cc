#include "src/r1cs/opt/optimizer.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace nope {
namespace {

constexpr Var kGone = OptimizeResult::kEliminatedVar;

// Deterministic total order on canonical LCs: term count, then variable ids,
// then coefficient values. Only used for map keys, never exposed.
int CompareLc(const LC& x, const LC& y) {
  const auto& xt = x.terms();
  const auto& yt = y.terms();
  if (xt.size() != yt.size()) {
    return xt.size() < yt.size() ? -1 : 1;
  }
  for (size_t i = 0; i < xt.size(); ++i) {
    if (xt[i].first != yt[i].first) {
      return xt[i].first < yt[i].first ? -1 : 1;
    }
  }
  for (size_t i = 0; i < xt.size(); ++i) {
    int c = xt[i].second.ToBigUInt().Compare(yt[i].second.ToBigUInt());
    if (c != 0) {
      return c;
    }
  }
  return 0;
}

bool SameLc(const LC& x, const LC& y) { return CompareLc(x, y) == 0; }

// a*b is commutative, so constraints are keyed with the smaller side first.
struct ConstraintKey {
  LC a, b, c;

  static ConstraintKey Of(const Constraint& con) {
    ConstraintKey k;
    if (CompareLc(con.b, con.a) < 0) {
      k.a = con.b;
      k.b = con.a;
    } else {
      k.a = con.a;
      k.b = con.b;
    }
    k.c = con.c;
    return k;
  }
  bool Matches(const Constraint& con) const {
    ConstraintKey other = Of(con);
    return SameLc(a, other.a) && SameLc(b, other.b) && SameLc(c, other.c);
  }
};

struct ConstraintKeyLess {
  bool operator()(const ConstraintKey& x, const ConstraintKey& y) const {
    int c = CompareLc(x.a, y.a);
    if (c != 0) {
      return c < 0;
    }
    c = CompareLc(x.b, y.b);
    if (c != 0) {
      return c < 0;
    }
    return CompareLc(x.c, y.c) < 0;
  }
};

struct ProductKey {
  LC a, b;

  static ProductKey Of(const Constraint& con) {
    ProductKey k;
    if (CompareLc(con.b, con.a) < 0) {
      k.a = con.b;
      k.b = con.a;
    } else {
      k.a = con.a;
      k.b = con.b;
    }
    return k;
  }
  bool Matches(const Constraint& con) const {
    ProductKey other = Of(con);
    return SameLc(a, other.a) && SameLc(b, other.b);
  }
};

struct ProductKeyLess {
  bool operator()(const ProductKey& x, const ProductKey& y) const {
    int c = CompareLc(x.a, y.a);
    if (c != 0) {
      return c < 0;
    }
    return CompareLc(x.b, y.b) < 0;
  }
};

// The normal form of a folded/linear constraint: L * 1 = 0.
bool IsLinearForm(const Constraint& con) {
  return con.c.IsEmpty() && con.b.terms().size() == 1 &&
         con.b.terms()[0].first == kOneVar && con.b.terms()[0].second == Fr::One();
}

bool ContainsVar(const LC& lc, Var v) {
  for (const auto& [u, c] : lc.terms()) {
    if (u == v) {
      return true;
    }
  }
  return false;
}

bool ContainsVar(const Constraint& con, Var v) {
  return ContainsVar(con.a, v) || ContainsVar(con.b, v) || ContainsVar(con.c, v);
}

// Mutable working state for the pass loop. `occ` may contain stale or
// duplicate entries; every consumer re-verifies membership against the
// current constraint before acting.
struct Work {
  std::vector<Constraint> cons;
  std::vector<uint32_t> scope;  // per constraint, original innermost scope
  std::vector<char> dead;       // constraint tombstones
  std::vector<char> gone;      // per variable
  std::vector<std::vector<uint32_t>> occ;
  size_t num_public = 0;
};

void IndexConstraint(Work* w, uint32_t ci) {
  for (const LC* side : {&w->cons[ci].a, &w->cons[ci].b, &w->cons[ci].c}) {
    for (const auto& [v, c] : side->terms()) {
      if (v != kOneVar) {
        w->occ[v].push_back(ci);
      }
    }
  }
}

void BuildOcc(Work* w, size_t num_vars) {
  w->occ.assign(num_vars, {});
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (!w->dead[ci]) {
      IndexConstraint(w, ci);
    }
  }
}

// Distinct live constraints (other than `exclude`) that currently mention v.
size_t LiveUses(const Work& w, Var v, uint32_t exclude, std::vector<uint32_t>* out = nullptr) {
  std::vector<uint32_t> cands = w.occ[v];
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  size_t n = 0;
  for (uint32_t ci : cands) {
    if (ci == exclude || w.dead[ci]) {
      continue;
    }
    if (ContainsVar(w.cons[ci], v)) {
      ++n;
      if (out != nullptr) {
        out->push_back(ci);
      }
    }
  }
  return n;
}

// Replaces v by (cst + sum terms) inside lc. Returns whether v occurred.
bool SubstVarLc(LC* lc, Var v, const std::vector<std::pair<Var, Fr>>& terms, const Fr& cst) {
  bool hit = false;
  for (const auto& [u, k] : lc->terms()) {
    if (u == v) {
      hit = true;
      break;
    }
  }
  if (!hit) {
    return false;
  }
  LC out;
  for (const auto& [u, k] : lc->terms()) {
    if (u != v) {
      out.Add(u, k);
      continue;
    }
    if (!cst.IsZero()) {
      out.Add(kOneVar, k * cst);
    }
    for (const auto& [tv, tc] : terms) {
      out.Add(tv, k * tc);
    }
  }
  out.Canonicalize();
  *lc = out;
  return true;
}

// Rewrites every remaining use of v with its linear definition and keeps the
// occurrence index complete (new mentions are appended).
void ApplySubst(Work* w, Var v, const std::vector<std::pair<Var, Fr>>& terms, const Fr& cst,
                uint32_t exclude) {
  std::vector<uint32_t> uses;
  LiveUses(*w, v, exclude, &uses);
  for (uint32_t ci : uses) {
    Constraint& con = w->cons[ci];
    SubstVarLc(&con.a, v, terms, cst);
    SubstVarLc(&con.b, v, terms, cst);
    SubstVarLc(&con.c, v, terms, cst);
    for (const auto& [u, c] : terms) {
      if (u != kOneVar) {
        w->occ[u].push_back(ci);
      }
    }
  }
}

// Pass (a): constant folding. a*b = c with a constant side becomes the
// linear form L * 1 = 0; trivially-true constraints are tombstoned.
bool FoldPass(Work* w, OptStats* st) {
  bool changed = false;
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (w->dead[ci]) {
      continue;
    }
    Constraint& con = w->cons[ci];
    if (IsLinearForm(con)) {
      if (con.a.IsEmpty()) {
        w->dead[ci] = 1;
        ++st->dropped_trivial;
        changed = true;
      }
      // A nonzero-constant L is an unsatisfiable marker: keep it so the
      // optimized system rejects exactly when the original does.
      continue;
    }
    bool ac = con.a.IsConstant();
    bool bc = con.b.IsConstant();
    if (!ac && !bc) {
      continue;
    }
    LC l;
    if (ac && bc) {
      l = LC::Constant(con.a.ConstantValue() * con.b.ConstantValue()) - con.c;
    } else if (ac) {
      l = con.b * con.a.ConstantValue() - con.c;
    } else {
      l = con.a * con.b.ConstantValue() - con.c;
    }
    l.Canonicalize();
    if (l.IsEmpty()) {
      w->dead[ci] = 1;
      ++st->dropped_trivial;
      changed = true;
      continue;
    }
    con = Constraint{l, LC(kOneVar), LC()};
    ++st->folded_constant;
    changed = true;
  }
  return changed;
}

// Linear substitution: a constraint L * 1 = 0 defines one of its variables;
// fold the definition into every use when the fill-in stays within budget.
// The defined variable is chosen deterministically (fewest uses, then lowest
// id) so matrices stay a pure function of the input system.
bool SubstLinearPass(Work* w, OptStats* st, std::vector<Elimination>* elims, size_t max_fill) {
  bool changed = false;
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (w->dead[ci]) {
      continue;
    }
    Constraint& con = w->cons[ci];
    if (!IsLinearForm(con) || con.a.IsConstant()) {
      continue;
    }
    Var best = kGone;
    Fr best_coeff;
    size_t best_uses = 0;
    for (const auto& [v, cv] : con.a.terms()) {
      if (v == kOneVar || v < w->num_public || w->gone[v]) {
        continue;
      }
      size_t uses = LiveUses(*w, v, ci);
      if (best == kGone || uses < best_uses) {
        best = v;
        best_coeff = cv;
        best_uses = uses;
      }
    }
    if (best == kGone) {
      continue;
    }
    size_t expr_terms = con.a.terms().size() - 1;
    if (best_uses * expr_terms > max_fill) {
      continue;
    }
    // cv * v + rest = 0  =>  v = rest * (-cv)^-1.
    Fr inv = (-best_coeff).Inverse();
    Elimination e;
    e.kind = Elimination::Kind::kLinear;
    e.var = best;
    e.constant = Fr::Zero();
    for (const auto& [u, k] : con.a.terms()) {
      if (u == best) {
        continue;
      }
      if (u == kOneVar) {
        e.constant = k * inv;
      } else {
        e.terms.emplace_back(u, k * inv);
      }
    }
    w->dead[ci] = 1;
    w->gone[best] = 1;
    ApplySubst(w, best, e.terms, e.constant, ci);
    elims->push_back(std::move(e));
    ++st->substituted_vars;
    changed = true;
  }
  return changed;
}

// Pass (c): exact duplicate constraints collapse to one, and two products
// with identical (a, b) sides that each define a fresh variable share one
// definition (the second variable becomes a scaling of the first).
bool SharePass(Work* w, OptStats* st, std::vector<Elimination>* elims) {
  bool changed = false;
  struct Def {
    uint32_t ci;
    Var v;
    Fr k;
  };
  std::map<ConstraintKey, uint32_t, ConstraintKeyLess> exact;
  std::map<ProductKey, Def, ProductKeyLess> defs;
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (w->dead[ci]) {
      continue;
    }
    Constraint& con = w->cons[ci];
    auto [it, inserted] = exact.try_emplace(ConstraintKey::Of(con), ci);
    if (!inserted) {
      uint32_t first = it->second;
      // Guard against stale keys: a substitution after insertion may have
      // rewritten the stored constraint.
      if (!w->dead[first] && it->first.Matches(w->cons[first])) {
        w->dead[ci] = 1;
        ++st->deduped_constraints;
        changed = true;
        continue;
      }
    }
    if (IsLinearForm(con) || con.a.IsConstant() || con.b.IsConstant()) {
      continue;
    }
    if (con.c.terms().size() != 1) {
      continue;
    }
    auto [v, k] = con.c.terms()[0];
    if (v == kOneVar || v < w->num_public || w->gone[v]) {
      continue;
    }
    if (ContainsVar(con.a, v) || ContainsVar(con.b, v)) {
      continue;
    }
    auto [dit, dins] = defs.try_emplace(ProductKey::Of(con), Def{ci, v, k});
    if (dins) {
      continue;
    }
    Def& d = dit->second;
    if (w->dead[d.ci] || w->gone[d.v] || !dit->first.Matches(w->cons[d.ci])) {
      continue;  // stale entry; the next round rebuilds the map
    }
    if (d.v == v) {
      if (d.k == k) {
        w->dead[ci] = 1;
        ++st->deduped_constraints;
        changed = true;
      }
      continue;
    }
    // a*b = d.k * d.v and a*b = k * v  =>  v = (d.k / k) * d.v.
    Elimination e;
    e.kind = Elimination::Kind::kLinear;
    e.var = v;
    e.constant = Fr::Zero();
    e.terms.emplace_back(d.v, d.k * k.Inverse());
    w->dead[ci] = 1;
    w->gone[v] = 1;
    ApplySubst(w, v, e.terms, e.constant, ci);
    elims->push_back(std::move(e));
    ++st->shared_products;
    changed = true;
  }
  return changed;
}

// Pass (b): variables used by no live constraint are dropped, and a
// single-use defining product a*b = k*v is projected out with its
// constraint (v's value is recomputable from a and b).
bool DeadPass(Work* w, OptStats* st, std::vector<Elimination>* elims, size_t num_vars) {
  bool changed = false;
  std::vector<uint32_t> count(num_vars, 0);
  std::vector<uint32_t> last_ci(num_vars, 0);
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (w->dead[ci]) {
      continue;
    }
    for (const LC* side : {&w->cons[ci].a, &w->cons[ci].b, &w->cons[ci].c}) {
      for (const auto& [v, c] : side->terms()) {
        if (v != kOneVar) {
          ++count[v];
          last_ci[v] = ci;
        }
      }
    }
  }
  for (Var v = static_cast<Var>(w->num_public); v < num_vars; ++v) {
    if (w->gone[v]) {
      continue;
    }
    if (count[v] == 0) {
      Elimination e;
      e.kind = Elimination::Kind::kDead;
      e.var = v;
      w->gone[v] = 1;
      elims->push_back(std::move(e));
      ++st->dead_vars;
      changed = true;
      continue;
    }
    if (count[v] != 1) {
      continue;
    }
    uint32_t ci = last_ci[v];
    if (w->dead[ci]) {
      continue;  // became stale within this pass; next round reclassifies
    }
    const Constraint& con = w->cons[ci];
    if (con.c.terms().size() != 1 || con.c.terms()[0].first != v) {
      continue;
    }
    if (con.a.IsConstant() || con.b.IsConstant()) {
      continue;  // FoldPass turns these into linear form first
    }
    Elimination e;
    e.kind = Elimination::Kind::kProduct;
    e.var = v;
    e.a = con.a;
    e.b = con.b;
    e.scale = con.c.terms()[0].second.Inverse();
    w->dead[ci] = 1;
    w->gone[v] = 1;
    elims->push_back(std::move(e));
    ++st->projected_products;
    changed = true;
  }
  return changed;
}

// Splits a canonical LC into its kOneVar coefficient and its variable part.
void SplitConstant(const LC& lc, Fr* cst, LC* vars) {
  *cst = Fr::Zero();
  *vars = LC();
  for (const auto& [v, k] : lc.terms()) {
    if (v == kOneVar) {
      *cst = k;
    } else {
      vars->Add(v, k);
    }
  }
}

// Pass (f): affine product sharing. Two products that share one exact side S
// and whose other sides have the same variable part V satisfy the identity
//   S*(V + k1) = c1  and  S*(V + k2) = c2   =>   c2 - c1 - (k2 - k1)*S = 0,
// so the later product is replaced by that linear constraint (k2 == k1 covers
// products with identical sides but different output combinations). Nothing
// is eliminated here; SubstLinearPass folds the linear form on a later round.
bool AffineSharePass(Work* w, OptStats* st) {
  struct AffineKey {
    LC shared;  // one full side, constant included
    LC other_vars;
  };
  struct AffineKeyLess {
    bool operator()(const AffineKey& x, const AffineKey& y) const {
      int c = CompareLc(x.shared, y.shared);
      if (c != 0) {
        return c < 0;
      }
      return CompareLc(x.other_vars, y.other_vars) < 0;
    }
  };
  bool changed = false;
  std::map<AffineKey, uint32_t, AffineKeyLess> reps;
  for (uint32_t ci = 0; ci < w->cons.size(); ++ci) {
    if (w->dead[ci]) {
      continue;
    }
    Constraint& con = w->cons[ci];
    if (IsLinearForm(con) || con.a.IsConstant() || con.b.IsConstant()) {
      continue;
    }
    for (int ori = 0; ori < 2; ++ori) {
      const LC& shared = ori == 0 ? con.a : con.b;
      const LC& other = ori == 0 ? con.b : con.a;
      Fr other_cst;
      LC other_vars;
      SplitConstant(other, &other_cst, &other_vars);
      auto [it, inserted] = reps.try_emplace(AffineKey{shared, other_vars}, ci);
      if (inserted) {
        continue;
      }
      uint32_t pi = it->second;
      if (pi == ci || w->dead[pi]) {
        continue;
      }
      // Re-derive the stored constraint's decomposition: a substitution after
      // insertion may have rewritten it, in which case the key is stale.
      const Constraint& pcon = w->cons[pi];
      if (IsLinearForm(pcon) || pcon.a.IsConstant() || pcon.b.IsConstant()) {
        continue;
      }
      bool matched = false;
      Fr rep_cst;
      for (int pori = 0; pori < 2 && !matched; ++pori) {
        const LC& pshared = pori == 0 ? pcon.a : pcon.b;
        const LC& pother = pori == 0 ? pcon.b : pcon.a;
        if (!SameLc(pshared, it->first.shared)) {
          continue;
        }
        Fr pcst;
        LC pvars;
        SplitConstant(pother, &pcst, &pvars);
        if (SameLc(pvars, it->first.other_vars)) {
          matched = true;
          rep_cst = pcst;
        }
      }
      if (!matched) {
        continue;
      }
      LC l = con.c - pcon.c - it->first.shared * (other_cst - rep_cst);
      l.Canonicalize();
      if (l.IsEmpty()) {
        w->dead[ci] = 1;
        ++st->dropped_trivial;
      } else {
        con = Constraint{l, LC(kOneVar), LC()};
        for (const auto& [v, k] : l.terms()) {
          if (v != kOneVar) {
            w->occ[v].push_back(ci);
          }
        }
        ++st->affine_rewrites;
      }
      changed = true;
      break;
    }
  }
  return changed;
}

// FNV-1a over 64-bit words.
uint64_t HashWord(uint64_t h, uint64_t v) { return (h ^ v) * 0x100000001b3ull; }

uint64_t HashFr(uint64_t h, const Fr& k) {
  BigUInt b = k.ToBigUInt();
  h = HashWord(h, b.limbs().size());
  for (uint64_t limb : b.limbs()) {
    h = HashWord(h, limb);
  }
  return h;
}

bool InSpanVarRange(const ScopeSpan& s, Var v) {
  return v >= s.first_var && v < s.first_var + s.num_vars;
}

// Normalized stream hash of a span: local variables by position, external
// variables by id. All externals referenced by a span predate its first local
// (constraints only mention already-allocated wires), so the canonical raw
// ordering "externals ascending, then locals ascending" is stable across
// structurally identical spans. `num_external` counts references to wires
// outside the span: a span with none is a pure allocation (it range-checks
// witness data that only later constraints bind), and two such spans match
// structurally while carrying different data, so they must never unify.
uint64_t HashSpanStream(const Work& w, const ScopeSpan& s, size_t* num_external) {
  *num_external = 0;
  uint64_t h = 1469598103934665603ull;
  for (char c : s.name) {
    h = HashWord(h, static_cast<uint64_t>(c));
  }
  h = HashWord(h, s.num_constraints);
  h = HashWord(h, s.num_vars);
  for (size_t ci = s.first_constraint; ci < s.first_constraint + s.num_constraints; ++ci) {
    const Constraint& con = w.cons[ci];
    for (const LC* side : {&con.a, &con.b, &con.c}) {
      h = HashWord(h, side->terms().size());
      for (const auto& [v, k] : side->terms()) {
        if (v == kOneVar) {
          h = HashWord(h, 1);
        } else if (InSpanVarRange(s, v)) {
          h = HashWord(h, 2);
          h = HashWord(h, v - s.first_var);
        } else {
          h = HashWord(h, 3);
          h = HashWord(h, v);
          ++*num_external;
        }
        h = HashFr(h, k);
      }
    }
  }
  return h;
}

// Attempts to unify span q onto rep span p: every constraint of q must equal
// the corresponding constraint of p once q's locals are renamed positionally
// onto p's. On success the referenced locals are aliased (kLinear
// eliminations) and every live use is rewritten, which turns q's constraint
// range into exact duplicates of p's for SharePass to collapse.
bool TryUnifySpans(Work* w, const ScopeSpan& p, const ScopeSpan& q, OptStats* st,
                   std::vector<Elimination>* elims) {
  if (p.num_constraints != q.num_constraints || p.num_vars != q.num_vars) {
    return false;
  }
  if (p.first_constraint + p.num_constraints > q.first_constraint) {
    return false;  // overlapping (e.g. nested same-name) spans
  }
  if (p.first_var + p.num_vars > q.first_var && q.first_var + q.num_vars > p.first_var) {
    return false;
  }
  std::vector<char> referenced(q.num_vars, 0);
  for (size_t i = 0; i < q.num_constraints; ++i) {
    const Constraint& pc = w->cons[p.first_constraint + i];
    const Constraint& qc = w->cons[q.first_constraint + i];
    if (w->dead[p.first_constraint + i] != w->dead[q.first_constraint + i]) {
      return false;
    }
    const LC* psides[3] = {&pc.a, &pc.b, &pc.c};
    const LC* qsides[3] = {&qc.a, &qc.b, &qc.c};
    for (int side = 0; side < 3; ++side) {
      LC remapped;
      for (const auto& [v, k] : qsides[side]->terms()) {
        if (v != kOneVar && InSpanVarRange(q, v)) {
          remapped.Add(p.first_var + (v - q.first_var), k);
        } else {
          remapped.Add(v, k);
        }
      }
      remapped.Canonicalize();
      if (!SameLc(*psides[side], remapped)) {
        return false;
      }
      for (const auto& [v, k] : qsides[side]->terms()) {
        if (v != kOneVar && InSpanVarRange(q, v)) {
          referenced[v - q.first_var] = 1;
        }
      }
    }
  }
  // Validate before mutating: every alias source and target must be live.
  size_t aliases = 0;
  for (size_t o = 0; o < q.num_vars; ++o) {
    if (!referenced[o]) {
      continue;
    }
    if (w->gone[q.first_var + o] || w->gone[p.first_var + o]) {
      return false;
    }
    ++aliases;
  }
  if (aliases == 0) {
    return false;  // already identical; plain dedupe handles it
  }
  const uint32_t no_exclude = static_cast<uint32_t>(w->cons.size());
  for (size_t o = 0; o < q.num_vars; ++o) {
    if (!referenced[o]) {
      continue;
    }
    Elimination e;
    e.kind = Elimination::Kind::kLinear;
    e.var = q.first_var + o;
    e.constant = Fr::Zero();
    e.terms.emplace_back(p.first_var + o, Fr::One());
    w->gone[e.var] = 1;
    ApplySubst(w, e.var, e.terms, e.constant, no_exclude);
    elims->push_back(std::move(e));
    ++st->unified_vars;
  }
  ++st->unified_spans;
  return true;
}

// Pass (e): span unification. Runs once, before any constraint is moved or
// tombstoned, so scope spans still line up with constraint indices. Spans are
// processed outermost-first in emission order: a unified producer span
// rewrites its consumers' constraints before those consumers are hashed, so
// chains of duplicated gadgets (slice feeding mask feeding hash) collapse in
// one sweep.
bool UnifySpansPass(Work* w, const ConstraintSystem& cs, OptStats* st,
                    std::vector<Elimination>* elims) {
  const std::vector<ScopeSpan>& spans = cs.scopes();
  if (spans.empty()) {
    return false;
  }
  std::vector<uint32_t> order(spans.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    if (spans[x].first_constraint != spans[y].first_constraint) {
      return spans[x].first_constraint < spans[y].first_constraint;
    }
    return spans[x].depth < spans[y].depth;
  });
  bool changed = false;
  std::map<uint64_t, std::vector<uint32_t>> reps;
  for (uint32_t si : order) {
    const ScopeSpan& s = spans[si];
    if (s.num_constraints == 0 || s.num_vars == 0 || s.first_var < w->num_public) {
      continue;
    }
    if (s.first_constraint + s.num_constraints > w->cons.size()) {
      continue;
    }
    size_t num_external = 0;
    uint64_t h = HashSpanStream(*w, s, &num_external);
    if (num_external == 0) {
      continue;  // pure allocation span; see HashSpanStream
    }
    std::vector<uint32_t>& bucket = reps[h];
    bool unified = false;
    for (uint32_t pi : bucket) {
      if (spans[pi].name == s.name && TryUnifySpans(w, spans[pi], s, st, elims)) {
        unified = true;
        changed = true;
        break;
      }
    }
    if (!unified) {
      bucket.push_back(si);
    }
  }
  return changed;
}

LC RemapLc(const LC& lc, const std::vector<Var>& var_map) {
  LC out;
  for (const auto& [v, c] : lc.terms()) {
    Var nv = v == kOneVar ? kOneVar : var_map[v];
    if (nv == kGone) {
      throw std::logic_error("optimizer invariant violated: live constraint references "
                             "an eliminated variable");
    }
    out.Add(nv, c);
  }
  return out;
}

}  // namespace

std::vector<uint32_t> InnermostConstraintScopes(const ConstraintSystem& cs) {
  std::vector<uint32_t> out(cs.NumConstraints(), OptimizeResult::kNoScope);
  const std::vector<ScopeSpan>& spans = cs.scopes();
  // scopes() is in BeginScope (pre-)order, so children follow their parent
  // and overwrite its attribution over their subrange. '~'-prefixed primitive
  // spans are transparent: their constraints stay attributed to the nearest
  // enclosing gadget.
  for (size_t s = 0; s < spans.size(); ++s) {
    if (!spans[s].name.empty() && spans[s].name[0] == '~') {
      continue;
    }
    size_t end = std::min(spans[s].first_constraint + spans[s].num_constraints, out.size());
    for (size_t i = spans[s].first_constraint; i < end; ++i) {
      out[i] = static_cast<uint32_t>(s);
    }
  }
  return out;
}

std::vector<uint32_t> InnermostVarScopes(const ConstraintSystem& cs) {
  std::vector<uint32_t> out(cs.NumVariables(), OptimizeResult::kNoScope);
  const std::vector<ScopeSpan>& spans = cs.scopes();
  for (size_t s = 0; s < spans.size(); ++s) {
    if (!spans[s].name.empty() && spans[s].name[0] == '~') {
      continue;
    }
    size_t end = std::min(spans[s].first_var + spans[s].num_vars, out.size());
    for (size_t i = spans[s].first_var; i < end; ++i) {
      out[i] = static_cast<uint32_t>(s);
    }
  }
  return out;
}

std::vector<Fr> OptimizeResult::MapAssignment(const std::vector<Fr>& old_values) const {
  if (old_values.size() != var_map.size()) {
    throw std::invalid_argument("MapAssignment: assignment has the wrong arity");
  }
  std::vector<Fr> out(inverse_map.size());
  for (size_t i = 0; i < inverse_map.size(); ++i) {
    out[i] = old_values[inverse_map[i]];
  }
  return out;
}

std::vector<Fr> OptimizeResult::LiftAssignment(const std::vector<Fr>& new_values) const {
  if (new_values.size() != inverse_map.size()) {
    throw std::invalid_argument("LiftAssignment: assignment has the wrong arity");
  }
  std::vector<Fr> out(var_map.size(), Fr::Zero());
  for (size_t i = 0; i < inverse_map.size(); ++i) {
    out[inverse_map[i]] = new_values[i];
  }
  // Later eliminations only reference variables that survived longer, so the
  // reverse replay sees every referenced value already computed.
  for (auto it = eliminations.rbegin(); it != eliminations.rend(); ++it) {
    switch (it->kind) {
      case Elimination::Kind::kDead:
        out[it->var] = Fr::Zero();
        break;
      case Elimination::Kind::kLinear: {
        Fr acc = it->constant;
        for (const auto& [u, k] : it->terms) {
          acc = acc + out[u] * k;
        }
        out[it->var] = acc;
        break;
      }
      case Elimination::Kind::kProduct:
        out[it->var] = it->scale * EvalLc(it->a, out) * EvalLc(it->b, out);
        break;
    }
  }
  return out;
}

OptimizeResult Optimize(const ConstraintSystem& cs, const OptimizeOptions& options) {
  if (cs.mode() != ConstraintSystem::Mode::kProve) {
    throw std::logic_error("Optimize requires a kProve-mode system");
  }
  const size_t num_vars = cs.NumVariables();
  Work w;
  w.num_public = cs.NumPublic();
  w.cons = cs.constraints();
  for (Constraint& con : w.cons) {
    con.a.Canonicalize();
    con.b.Canonicalize();
    con.c.Canonicalize();
  }
  w.scope = InnermostConstraintScopes(cs);
  w.dead.assign(w.cons.size(), 0);
  w.gone.assign(num_vars, 0);

  OptimizeResult res;
  res.stats.constraints_before = w.cons.size();
  res.stats.vars_before = num_vars;

  if (options.unify_spans) {
    // Must run before any pass reorders or tombstones constraints: scope
    // spans index into the original constraint layout.
    BuildOcc(&w, num_vars);
    UnifySpansPass(&w, cs, &res.stats, &res.eliminations);
  }

  bool changed = true;
  while (changed && res.stats.rounds < options.max_rounds) {
    ++res.stats.rounds;
    changed = false;
    BuildOcc(&w, num_vars);
    if (options.canonicalize) {
      changed = FoldPass(&w, &res.stats) || changed;
    }
    if (options.substitute_linear) {
      changed = SubstLinearPass(&w, &res.stats, &res.eliminations, options.max_fill) || changed;
    }
    if (options.share_products) {
      changed = SharePass(&w, &res.stats, &res.eliminations) || changed;
    }
    if (options.share_affine) {
      changed = AffineSharePass(&w, &res.stats) || changed;
    }
    if (options.eliminate_dead) {
      changed = DeadPass(&w, &res.stats, &res.eliminations, num_vars) || changed;
    }
  }

  // Compact: public inputs keep their ids, surviving witnesses keep their
  // relative order, live constraints keep their original order.
  const std::vector<Fr>& values = cs.values();
  res.var_map.assign(num_vars, OptimizeResult::kEliminatedVar);
  res.inverse_map.clear();
  ConstraintSystem out(ConstraintSystem::Mode::kProve);
  res.var_map[kOneVar] = kOneVar;
  res.inverse_map.push_back(kOneVar);
  for (Var v = 1; v < w.num_public; ++v) {
    res.var_map[v] = out.AddPublicInput(values[v]);
    res.inverse_map.push_back(v);
  }
  for (Var v = static_cast<Var>(w.num_public); v < num_vars; ++v) {
    if (!w.gone[v]) {
      res.var_map[v] = out.AddWitness(values[v]);
      res.inverse_map.push_back(v);
    }
  }
  for (uint32_t ci = 0; ci < w.cons.size(); ++ci) {
    if (w.dead[ci]) {
      continue;
    }
    const Constraint& con = w.cons[ci];
    out.Enforce(RemapLc(con.a, res.var_map), RemapLc(con.b, res.var_map),
                RemapLc(con.c, res.var_map));
    res.constraint_scope.push_back(w.scope[ci]);
  }
  res.stats.constraints_after = out.NumConstraints();
  res.stats.vars_after = out.NumVariables();
  res.cs = std::move(out);
  return res;
}

}  // namespace nope
