// In-circuit RSASSA-PKCS1-v1_5 verification (e = 65537): sixteen modular
// squarings and one multiplication, compared against the padded digest.
// DNSSEC's root ZSK is RSA, so this sits at the top of every NOPE chain.
#ifndef SRC_R1CS_RSA_GADGET_H_
#define SRC_R1CS_RSA_GADGET_H_

#include "src/r1cs/bignum_gadget.h"

namespace nope {

enum class RsaTechnique { kNaive, kNope };

// Enforces sig^65537 == em (mod n), where `gadget` is a ModularGadget over
// the RSA modulus n, `sig` the witnessed signature, and `em` the expected
// EMSA-PKCS1-v1_5 encoded message (built by the caller from the in-circuit
// digest bytes plus constant padding).
void EnforceRsaVerify(ModularGadget* gadget, const ModularGadget::Num& sig,
                      const ModularGadget::Num& em, RsaTechnique technique);

// Builds the PKCS#1 v1.5 encoded message as a Num: constant padding and
// DigestInfo, with the 32 digest bytes spliced in. Free (linear).
ModularGadget::Num BuildPkcs1Em(ModularGadget* gadget, const std::vector<LC>& digest_bytes);

}  // namespace nope

#endif  // SRC_R1CS_RSA_GADGET_H_
