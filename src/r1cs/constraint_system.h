// Rank-1 constraint system (R1CS) front-end over BN254's scalar field.
//
// This plays the role Circom plays in the paper's implementation (§7): gadget
// code builds the constraint matrices and simultaneously computes the witness
// assignment. Two modes exist:
//   * kProve: constraints are materialized for Groth16 setup/proving.
//   * kCount: only the constraint count is tracked, allowing the Figure 6
//     ablation to size multi-million-constraint circuit variants without
//     holding their matrices in memory (the paper does the same; §8.3).
//
// A convention throughout: variable 0 is the constant 1, public inputs are
// allocated before any witness variable, and each variable carries its value
// so gadgets can compute prover hints inline (the "prover supplies R, the
// constraints check collinearity" pattern of §5.2).
#ifndef SRC_R1CS_CONSTRAINT_SYSTEM_H_
#define SRC_R1CS_CONSTRAINT_SYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ff/fp.h"

namespace nope {

using Var = uint32_t;
constexpr Var kOneVar = 0;

// Sparse linear combination sum_i coeff_i * var_i. Kept unsorted; duplicate
// variables are allowed (they add). Canonicalize() produces the sorted,
// merged, zero-free form the optimizer passes operate on.
class LinearCombination {
 public:
  LinearCombination() = default;
  LinearCombination(Var v) { terms_.emplace_back(v, Fr::One()); }  // NOLINT(runtime/explicit)
  static LinearCombination Constant(const Fr& c);

  LinearCombination& Add(Var v, const Fr& coeff);
  LinearCombination operator+(const LinearCombination& o) const;
  LinearCombination operator-(const LinearCombination& o) const;
  LinearCombination operator*(const Fr& s) const;

  // Sorts terms by variable id, merges duplicates, drops zero coefficients.
  // Evaluation under any assignment is unchanged.
  LinearCombination& Canonicalize();

  // True when every term is on the constant-one variable (vacuously for the
  // empty combination); such a combination evaluates to ConstantValue()
  // under every assignment.
  bool IsConstant() const;
  Fr ConstantValue() const;

  const std::vector<std::pair<Var, Fr>>& terms() const { return terms_; }
  bool IsEmpty() const { return terms_.empty(); }

 private:
  std::vector<std::pair<Var, Fr>> terms_;
};

using LC = LinearCombination;

struct Constraint {
  LC a;
  LC b;
  LC c;
};

// Evaluates a linear combination under an explicit assignment (values[v] for
// every variable the combination mentions; values[0] must be 1).
Fr EvalLc(const LC& lc, const std::vector<Fr>& values);

// A named half-open region of constraints and variables, recorded by
// BeginScope/EndScope. Gadgets annotate their synthesis with scopes so the
// optimizer's density report (and the audit harness) can attribute
// constraints and aux wires to the gadget instance that emitted them.
// Spans nest properly; `depth` is 0 for top-level scopes.
struct ScopeSpan {
  std::string name;
  size_t depth = 0;
  size_t first_constraint = 0;
  size_t num_constraints = 0;
  size_t first_var = 0;
  size_t num_vars = 0;
};

class ConstraintSystem {
 public:
  enum class Mode { kProve, kCount };

  explicit ConstraintSystem(Mode mode = Mode::kProve);

  Mode mode() const { return mode_; }

  // Public inputs must all be allocated before the first witness variable.
  Var AddPublicInput(const Fr& value);
  Var AddWitness(const Fr& value);

  // Enforces a * b = c. In kCount mode only the counter advances.
  void Enforce(const LC& a, const LC& b, const LC& c);

  // Convenience: enforce lc == value (as constants * 1).
  void EnforceEqual(const LC& lhs, const LC& rhs);
  // Enforce that v is 0 or 1.
  void EnforceBoolean(Var v);

  Fr ValueOf(Var v) const { return values_[v]; }
  Fr Eval(const LC& lc) const;

  size_t NumConstraints() const { return num_constraints_; }
  size_t NumVariables() const { return values_.size(); }
  // Count includes the constant-one variable.
  size_t NumPublic() const { return num_public_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  const std::vector<Fr>& values() const { return values_; }

  // Full satisfaction check (kProve mode only); returns the index of the
  // first violated constraint in *bad if non-null.
  bool IsSatisfied(size_t* bad = nullptr) const;

  // Like IsSatisfied but against an externally supplied assignment using the
  // same variable indexing (values.size() == NumVariables(), values[0] == 1).
  // The audit harness uses this to test mutated assignments without touching
  // the system's own witness.
  bool SatisfiedBy(const std::vector<Fr>& values, size_t* bad = nullptr) const;

  // Scope annotations: cheap bookkeeping in both modes. Every BeginScope
  // must be matched by an EndScope; unbalanced calls throw.
  void BeginScope(std::string name);
  void EndScope();
  const std::vector<ScopeSpan>& scopes() const { return scopes_; }

  // Overwrites the value of a variable. Used by negative tests to corrupt a
  // witness and check that proofs over it are rejected.
  void SetValueForTest(Var v, const Fr& value) { values_[v] = value; }

 private:
  Mode mode_;
  size_t num_public_ = 0;
  bool witness_started_ = false;
  size_t num_constraints_ = 0;
  std::vector<Fr> values_;
  std::vector<Constraint> constraints_;
  std::vector<ScopeSpan> scopes_;
  std::vector<size_t> open_scopes_;  // indices into scopes_, innermost last
};

// RAII scope annotation: `GadgetScope scope(cs, "ToBits");` marks every
// constraint and variable emitted until the end of the block.
class GadgetScope {
 public:
  GadgetScope(ConstraintSystem* cs, std::string name) : cs_(cs) {
    cs_->BeginScope(std::move(name));
  }
  ~GadgetScope() { cs_->EndScope(); }
  GadgetScope(const GadgetScope&) = delete;
  GadgetScope& operator=(const GadgetScope&) = delete;

 private:
  ConstraintSystem* cs_;
};

}  // namespace nope

#endif  // SRC_R1CS_CONSTRAINT_SYSTEM_H_
