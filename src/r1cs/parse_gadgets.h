// String/parsing primitives in R1CS (paper §4.2-§4.3 and Appendix B).
//
// Each primitive exists in a "naive" (pre-NOPE best known technique) and a
// "NOPE" form so the Figure 6 ablation can toggle them:
//   mask:  naive L*(2+ceil(lg L))  vs  NOPE 2L+1
//   slice: naive M*L (scan technique) vs NOPE ~M lg M worst case, ~O(M) for
//          small L, built from condshift; plus a packed variant
//   scan:  linear pass over a length-prefixed record stream validating a
//          prover-supplied field start (no prior primitive exists)
//
// Arrays are vectors of LCs; callers that need hard range guarantees on array
// contents range-check them at allocation (AllocateBytes).
#ifndef SRC_R1CS_PARSE_GADGETS_H_
#define SRC_R1CS_PARSE_GADGETS_H_

#include <vector>

#include "src/base/bytes.h"
#include "src/r1cs/constraint_system.h"

namespace nope {

// --- Allocation / bit helpers ----------------------------------------------

// Allocates witness booleans b_0..b_{n-1} with value == sum b_i 2^i; enforces
// booleanity and the recomposition. Cost: nbits + 1.
std::vector<Var> ToBits(ConstraintSystem* cs, const LC& value, size_t nbits);

// Allocates one witness byte per input byte and range-checks it to 8 bits.
// Cost: 9 per byte.
std::vector<Var> AllocateBytes(ConstraintSystem* cs, const Bytes& data);

// Allocates without range checks (for arrays whose bytes are later
// constrained through packing equalities against checked data).
std::vector<Var> AllocateBytesUnchecked(ConstraintSystem* cs, const Bytes& data);

// Packs bytes big-endian into field elements of chunk_size bytes each
// (chunk_size <= 31). Zero constraints: the packing is a linear form.
std::vector<LC> PackBytes(const std::vector<Var>& bytes, size_t chunk_size);
std::vector<Fr> PackBytesValues(const Bytes& data, size_t chunk_size);

// z with constraint x*z == 0 (paper's mapNonZeroToZero). The witness value is
// 1 when x == 0 so that indicator() works; soundness does not rely on this.
Var MapNonZeroToZero(ConstraintSystem* cs, const LC& x);

// res[j] == (j == i) for j in [0, len); enforces exactly one 1. Cost: len+1.
std::vector<Var> Indicator(ConstraintSystem* cs, const LC& index, size_t len);

// Suffix sums as linear forms: res[i] = sum_{j >= i} arr[j]. Zero constraints.
std::vector<LC> SuffixSum(const std::vector<LC>& arr);
std::vector<LC> SuffixSum(ConstraintSystem* cs, const std::vector<Var>& arr);

// Boolean equality/comparison helpers.
// b == 1 iff Eval(x) == Eval(y). Cost: 3.
Var IsEqual(ConstraintSystem* cs, const LC& x, const LC& y);
// b == 1 iff a <= b_value, both known to fit in `bits` bits. Cost: bits+3.
Var IsLessOrEqual(ConstraintSystem* cs, const LC& a, const LC& b, size_t bits);

// --- mask -------------------------------------------------------------------

// Returns arr with entries at index >= len zeroed.
// Naive per-element comparison form: ~L*(3+ceil(lg L)) constraints.
std::vector<LC> MaskNaive(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& len);
// NOPE form (indicator + suffix sums + products): 2L+1 constraints.
std::vector<LC> MaskNope(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& len);

// --- condshift / slice ------------------------------------------------------

// res[i] = flag ? arr[i+shift] : arr[i] (flag boolean). Cost: len(arr).
std::vector<LC> CondShift(ConstraintSystem* cs, const std::vector<LC>& arr, size_t shift,
                          Var flag);
// res[i] = flag ? arr[i-shift] : arr[i] (zeros shift in). Cost: len(arr).
std::vector<LC> CondShiftRight(ConstraintSystem* cs, const std::vector<LC>& arr, size_t shift,
                               Var flag);
// Places `arr` at dynamic offset into a zero buffer of length out_len:
// res[offset + k] = arr[k]. Built from a CondShiftRight chain (~out_len lg).
std::vector<LC> PlaceAt(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& offset,
                        size_t out_len);

// Extracts out_len entries of arr starting at dynamic index `start`.
// Naive (scan/inner-product technique): M*L constraints.
std::vector<LC> SliceNaive(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& start,
                           size_t out_len);
// NOPE condshift chain: <= M lg M + lg M + 2, effectively O(M) for small L.
std::vector<LC> SliceNope(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& start,
                          size_t out_len);
// NOPE packed variant (Appendix B.1): ~2M constraints; output is packed pairs.
std::vector<LC> SliceNopePacked(ConstraintSystem* cs, const std::vector<LC>& arr,
                                const LC& start, size_t out_len);

// --- scan -------------------------------------------------------------------

// Record stream layout handled by ScanRecords (the toy RRset of Appendix B.2,
// which also matches the simplified record framing used by our canonical
// DNSSEC buffers): a `header_len`-byte header, then records of the form
//   [1-byte total record length, including this byte][1-byte type][data...].
// Validates that `start` (witness) is the start of some record and returns
// the record's length entry as an LC. Cost: ~6 per byte.
struct ScanResult {
  LC length;                 // length field of the record at `start`
  std::vector<Var> at_start; // indicator array over msg positions
};
ScanResult ScanRecords(ConstraintSystem* cs, const std::vector<LC>& msg, const LC& start,
                       const LC& header_len);

// Gadget cost formulas from the paper, used by tests/benches to compare
// measured counts with the published complexity.
size_t MaskNaiveCostFormula(size_t len);
size_t MaskNopeCostFormula(size_t len);

}  // namespace nope

#endif  // SRC_R1CS_PARSE_GADGETS_H_
