#include <algorithm>
#include "src/r1cs/parse_gadgets.h"

#include <stdexcept>

namespace nope {

namespace {

size_t CeilLog2(size_t v) {
  size_t bits = 0;
  size_t n = 1;
  while (n < v) {
    n <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

std::vector<Var> ToBits(ConstraintSystem* cs, const LC& value, size_t nbits) {
  // '~' marks a shared-primitive span: transparent to density reports but
  // visible to the optimizer's span-unification pass, which merges repeated
  // decompositions of the same value.
  GadgetScope scope(cs, "~ToBits");
  BigUInt v = cs->Eval(value).ToBigUInt();
  std::vector<Var> bits;
  bits.reserve(nbits);
  LC recomposed;
  Fr power = Fr::One();
  for (size_t i = 0; i < nbits; ++i) {
    Var b = cs->AddWitness(v.Bit(i) ? Fr::One() : Fr::Zero());
    cs->EnforceBoolean(b);
    recomposed.Add(b, power);
    power = power.Double();
    bits.push_back(b);
  }
  cs->EnforceEqual(recomposed, value);
  return bits;
}

std::vector<Var> AllocateBytes(ConstraintSystem* cs, const Bytes& data) {
  std::vector<Var> out;
  out.reserve(data.size());
  for (uint8_t b : data) {
    Var v = cs->AddWitness(Fr::FromU64(b));
    ToBits(cs, LC(v), 8);
    out.push_back(v);
  }
  return out;
}

std::vector<Var> AllocateBytesUnchecked(ConstraintSystem* cs, const Bytes& data) {
  std::vector<Var> out;
  out.reserve(data.size());
  for (uint8_t b : data) {
    out.push_back(cs->AddWitness(Fr::FromU64(b)));
  }
  return out;
}

std::vector<LC> PackBytes(const std::vector<Var>& bytes, size_t chunk_size) {
  if (chunk_size == 0 || chunk_size > 31) {
    throw std::invalid_argument("chunk_size must be in [1, 31]");
  }
  std::vector<LC> out;
  for (size_t i = 0; i < bytes.size(); i += chunk_size) {
    LC chunk;
    Fr coeff = Fr::One();
    size_t end = std::min(i + chunk_size, bytes.size());
    // Big-endian: first byte has the highest weight.
    for (size_t j = end; j-- > i;) {
      chunk.Add(bytes[j], coeff);
      coeff = coeff * Fr::FromU64(256);
    }
    out.push_back(chunk);
  }
  return out;
}

std::vector<Fr> PackBytesValues(const Bytes& data, size_t chunk_size) {
  std::vector<Fr> out;
  for (size_t i = 0; i < data.size(); i += chunk_size) {
    Fr acc = Fr::Zero();
    size_t end = std::min(i + chunk_size, data.size());
    for (size_t j = i; j < end; ++j) {
      acc = acc * Fr::FromU64(256) + Fr::FromU64(data[j]);
    }
    out.push_back(acc);
  }
  return out;
}

Var MapNonZeroToZero(ConstraintSystem* cs, const LC& x) {
  GadgetScope scope(cs, "~MapNonZeroToZero");
  Fr xv = cs->Eval(x);
  Var z = cs->AddWitness(xv.IsZero() ? Fr::One() : Fr::Zero());
  cs->Enforce(x, LC(z), LC());
  return z;
}

std::vector<Var> Indicator(ConstraintSystem* cs, const LC& index, size_t len) {
  GadgetScope scope(cs, "~Indicator");
  std::vector<Var> res;
  res.reserve(len);
  LC sum;
  for (size_t j = 0; j < len; ++j) {
    Var z = MapNonZeroToZero(cs, LC::Constant(Fr::FromU64(j)) - index);
    res.push_back(z);
    sum.Add(z, Fr::One());
  }
  cs->EnforceEqual(sum, LC::Constant(Fr::One()));
  return res;
}

std::vector<LC> SuffixSum(const std::vector<LC>& arr) {
  std::vector<LC> res(arr.size());
  LC sum;
  for (size_t i = arr.size(); i-- > 0;) {
    sum = sum + arr[i];
    res[i] = sum;
  }
  return res;
}

std::vector<LC> SuffixSum(ConstraintSystem* cs, const std::vector<Var>& arr) {
  std::vector<LC> lcs;
  lcs.reserve(arr.size());
  for (Var v : arr) {
    lcs.emplace_back(v);
  }
  (void)cs;
  return SuffixSum(lcs);
}

Var IsEqual(ConstraintSystem* cs, const LC& x, const LC& y) {
  GadgetScope scope(cs, "~IsEqual");
  LC d = x - y;
  Fr dv = cs->Eval(d);
  Var z = cs->AddWitness(dv.IsZero() ? Fr::One() : Fr::Zero());
  Var w = cs->AddWitness(dv.IsZero() ? Fr::Zero() : dv.Inverse());
  cs->Enforce(d, LC(z), LC());
  cs->Enforce(d, LC(w), LC::Constant(Fr::One()) - LC(z));
  return z;
}

Var IsLessOrEqual(ConstraintSystem* cs, const LC& a, const LC& b, size_t bits) {
  GadgetScope scope(cs, "~IsLessOrEqual");
  // c = b - a + 2^bits; the top bit of c is 1 iff a <= b.
  Fr offset = Fr::FromBigUInt(BigUInt(1) << bits);
  LC c = b - a + LC::Constant(offset);
  std::vector<Var> cbits = ToBits(cs, c, bits + 1);
  return cbits[bits];
}

std::vector<LC> MaskNaive(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& len) {
  GadgetScope scope(cs, "MaskNaive");
  size_t bits = CeilLog2(arr.size() + 1) + 1;
  std::vector<LC> res;
  res.reserve(arr.size());
  for (size_t i = 0; i < arr.size(); ++i) {
    // keep iff i < len, i.e. i+1 <= len.
    Var keep = IsLessOrEqual(cs, LC::Constant(Fr::FromU64(i + 1)), len, bits);
    Fr prod = cs->Eval(arr[i]) * cs->ValueOf(keep);
    Var out = cs->AddWitness(prod);
    cs->Enforce(arr[i], LC(keep), LC(out));
    res.emplace_back(out);
  }
  return res;
}

std::vector<LC> MaskNope(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& len) {
  GadgetScope scope(cs, "MaskNope");
  // indicator over [0, L] of `len`, suffix-summed shifted by one: keep[i] = 1
  // iff len > i. The suffix sums are free linear forms (§4.3).
  std::vector<Var> ind = Indicator(cs, len, arr.size() + 1);
  std::vector<LC> ind_lc;
  ind_lc.reserve(ind.size());
  for (Var v : ind) {
    ind_lc.emplace_back(v);
  }
  std::vector<LC> suffix = SuffixSum(ind_lc);
  std::vector<LC> res;
  res.reserve(arr.size());
  for (size_t i = 0; i < arr.size(); ++i) {
    LC keep = suffix[i + 1];
    Fr prod = cs->Eval(arr[i]) * cs->Eval(keep);
    Var out = cs->AddWitness(prod);
    cs->Enforce(arr[i], keep, LC(out));
    res.emplace_back(out);
  }
  return res;
}

std::vector<LC> CondShift(ConstraintSystem* cs, const std::vector<LC>& arr, size_t shift,
                          Var flag) {
  GadgetScope scope(cs, "~CondShift");
  size_t n = arr.size();
  Fr flag_val = cs->ValueOf(flag);
  std::vector<LC> res;
  res.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LC shifted_minus_cur = (i + shift < n ? arr[i + shift] : LC()) - arr[i];
    Fr tv = flag_val * cs->Eval(shifted_minus_cur);
    Var t = cs->AddWitness(tv);
    cs->Enforce(LC(flag), shifted_minus_cur, LC(t));
    res.push_back(arr[i] + LC(t));
  }
  return res;
}

std::vector<LC> CondShiftRight(ConstraintSystem* cs, const std::vector<LC>& arr, size_t shift,
                               Var flag) {
  GadgetScope scope(cs, "~CondShift");
  size_t n = arr.size();
  Fr flag_val = cs->ValueOf(flag);
  std::vector<LC> res;
  res.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LC shifted_minus_cur = (i >= shift ? arr[i - shift] : LC()) - arr[i];
    Fr tv = flag_val * cs->Eval(shifted_minus_cur);
    Var t = cs->AddWitness(tv);
    cs->Enforce(LC(flag), shifted_minus_cur, LC(t));
    res.push_back(arr[i] + LC(t));
  }
  return res;
}

std::vector<LC> PlaceAt(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& offset,
                        size_t out_len) {
  GadgetScope scope(cs, "PlaceAt");
  size_t nbits = CeilLog2(out_len) + 1;
  std::vector<Var> bits = ToBits(cs, offset, nbits);
  std::vector<LC> cur = arr;
  cur.resize(out_len);
  for (size_t j = 0; j < nbits; ++j) {
    cur = CondShiftRight(cs, cur, size_t{1} << j, bits[j]);
  }
  return cur;
}

std::vector<LC> SliceNaive(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& start,
                           size_t out_len) {
  GadgetScope scope(cs, "SliceNaive");
  size_t m = arr.size();
  std::vector<Var> ind = Indicator(cs, start, m);
  std::vector<LC> res;
  res.reserve(out_len);
  for (size_t j = 0; j < out_len; ++j) {
    LC acc;
    for (size_t k = 0; k + j < m; ++k) {
      Fr pv = cs->ValueOf(ind[k]) * cs->Eval(arr[k + j]);
      Var p = cs->AddWitness(pv);
      cs->Enforce(LC(ind[k]), arr[k + j], LC(p));
      acc = acc + LC(p);
    }
    res.push_back(acc);
  }
  return res;
}

std::vector<LC> SliceNope(ConstraintSystem* cs, const std::vector<LC>& arr, const LC& start,
                          size_t out_len) {
  GadgetScope scope(cs, "SliceNope");
  size_t m = arr.size();
  size_t nbits = CeilLog2(m) + 1;
  std::vector<Var> bits = ToBits(cs, start, nbits);
  std::vector<LC> cur = arr;
  for (size_t j = nbits; j-- > 0;) {
    // After clearing bits above j, the residual shift is < 2^(j+1); entries
    // past out_len + 2^(j+1) - 1 can never be reached.
    size_t reach = out_len + (size_t{1} << (j + 1)) - 1;
    if (cur.size() > reach) {
      cur.resize(reach);
    }
    cur = CondShift(cs, cur, size_t{1} << j, bits[j]);
  }
  cur.resize(out_len);
  return cur;
}

std::vector<LC> SliceNopePacked(ConstraintSystem* cs, const std::vector<LC>& arr,
                                const LC& start, size_t out_len) {
  constexpr size_t kPackLevels = 4;  // pack up to 16 bytes per field element
  if (out_len % (size_t{1} << kPackLevels) != 0) {
    throw std::invalid_argument("packed slice output must be a multiple of 16");
  }
  GadgetScope scope(cs, "SliceNopePacked");
  size_t m = arr.size();
  size_t nbits = CeilLog2(m) + 1;
  std::vector<Var> bits = ToBits(cs, start, nbits);

  std::vector<LC> cur = arr;
  size_t bytes_per_elem = 1;
  for (size_t j = 0; j < nbits; ++j) {
    // Shift by one element at the current packing granularity (== 2^j bytes).
    cur = CondShift(cs, cur, 1, bits[j]);
    if (j < kPackLevels) {
      // Merge adjacent elements: elem[k] = elem[2k] * 2^(8*bpe) + elem[2k+1]
      // (big-endian packing). Pure linear form, zero constraints.
      Fr weight = Fr::FromBigUInt(BigUInt(1) << (8 * bytes_per_elem));
      std::vector<LC> merged;
      merged.reserve((cur.size() + 1) / 2);
      for (size_t k = 0; k + 1 < cur.size(); k += 2) {
        merged.push_back(cur[k] * weight + cur[k + 1]);
      }
      if (cur.size() % 2 == 1) {
        merged.push_back(cur.back() * weight);
      }
      cur = std::move(merged);
      bytes_per_elem *= 2;
    }
  }
  cur.resize(out_len / bytes_per_elem);
  return cur;
}

ScanResult ScanRecords(ConstraintSystem* cs, const std::vector<LC>& msg, const LC& start,
                       const LC& header_len) {
  GadgetScope scope(cs, "ScanRecords");
  size_t m = msg.size();
  std::vector<Var> loc = Indicator(cs, start, m);

  LC counter = header_len;
  Fr counter_val = cs->Eval(header_len);
  LC len_acc;

  for (size_t i = 0; i < m; ++i) {
    Fr msg_val = cs->Eval(msg[i]);
    // z == 0 whenever counter != 0; at record starts the honest prover sets 1.
    Var z = cs->AddWitness(counter_val.IsZero() ? Fr::One() : Fr::Zero());
    cs->EnforceBoolean(z);
    cs->Enforce(counter, LC(z), LC());
    // start must be the start of a record.
    cs->Enforce(counter, LC(loc[i]), LC());
    // len += msg[i] * loc[i].
    Fr pv = msg_val * cs->ValueOf(loc[i]);
    Var p = cs->AddWitness(pv);
    cs->Enforce(msg[i], LC(loc[i]), LC(p));
    len_acc = len_acc + LC(p);
    // counter' = counter + z*(msg[i] - counter) - 1.
    Fr tv = cs->ValueOf(z) * (msg_val - counter_val);
    Var t = cs->AddWitness(tv);
    cs->Enforce(LC(z), msg[i] - counter, LC(t));
    counter = counter + LC(t) - LC::Constant(Fr::One());
    counter_val = counter_val + tv - Fr::One();
  }

  ScanResult out;
  out.length = len_acc;
  out.at_start = std::move(loc);
  return out;
}

size_t MaskNaiveCostFormula(size_t len) { return len * (2 + CeilLog2(len)); }
size_t MaskNopeCostFormula(size_t len) { return 2 * len + 1; }

}  // namespace nope
