#include <algorithm>
#include "src/r1cs/sha256_gadget.h"

#include <array>
#include <stdexcept>

namespace nope {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

constexpr uint32_t kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                               0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

// A 32-bit word as big-endian-agnostic little-endian bit LCs (bit 0 = LSB).
struct W32 {
  std::array<LC, 32> bits;
};

W32 ConstantW32(uint32_t v) {
  W32 w;
  for (int i = 0; i < 32; ++i) {
    w.bits[i] = (v >> i) & 1 ? LC::Constant(Fr::One()) : LC();
  }
  return w;
}

LC PackW32(const W32& w) {
  LC out;
  Fr power = Fr::One();
  for (int i = 0; i < 32; ++i) {
    out = out + w.bits[i] * power;
    power = power.Double();
  }
  return out;
}

// XOR of two bit LCs: x + y - 2xy. One constraint.
LC XorBit(ConstraintSystem* cs, const LC& x, const LC& y) {
  Fr pv = cs->Eval(x) * cs->Eval(y);
  Var p = cs->AddWitness(pv);
  cs->Enforce(x, y, LC(p));
  return x + y - LC(p) * Fr::FromU64(2);
}

W32 Xor(ConstraintSystem* cs, const W32& a, const W32& b) {
  W32 out;
  for (int i = 0; i < 32; ++i) {
    out.bits[i] = XorBit(cs, a.bits[i], b.bits[i]);
  }
  return out;
}

W32 Rotr(const W32& a, int n) {
  W32 out;
  for (int i = 0; i < 32; ++i) {
    out.bits[i] = a.bits[(i + n) % 32];
  }
  return out;
}

W32 Shr(const W32& a, int n) {
  W32 out;
  for (int i = 0; i < 32; ++i) {
    out.bits[i] = i + n < 32 ? a.bits[i + n] : LC();
  }
  return out;
}

// Sum of word values, reduced mod 2^32 by dropping decomposed carry bits.
// total_addends bounds the number of 2^32-bounded terms across all packed
// inputs (packed LCs may themselves be unreduced multi-word sums).
W32 AddWords(ConstraintSystem* cs, const std::vector<LC>& packed_words, size_t total_addends) {
  LC sum;
  for (const LC& w : packed_words) {
    sum = sum + w;
  }
  size_t extra = 0;
  while ((size_t{1} << extra) < total_addends) {
    ++extra;
  }
  std::vector<Var> bits = ToBits(cs, sum, 32 + extra);
  W32 out;
  for (int i = 0; i < 32; ++i) {
    out.bits[i] = LC(bits[i]);
  }
  return out;
}

// Ch(e, f, g) = e ? f : g, bitwise: e*(f-g) + g. One constraint per bit.
W32 Choose(ConstraintSystem* cs, const W32& e, const W32& f, const W32& g) {
  W32 out;
  for (int i = 0; i < 32; ++i) {
    LC diff = f.bits[i] - g.bits[i];
    Fr pv = cs->Eval(e.bits[i]) * cs->Eval(diff);
    Var p = cs->AddWitness(pv);
    cs->Enforce(e.bits[i], diff, LC(p));
    out.bits[i] = LC(p) + g.bits[i];
  }
  return out;
}

// Maj(a, b, c) = ab + ac + bc - 2abc: two constraints per bit.
W32 Majority(ConstraintSystem* cs, const W32& a, const W32& b, const W32& c) {
  W32 out;
  for (int i = 0; i < 32; ++i) {
    Fr bc = cs->Eval(b.bits[i]) * cs->Eval(c.bits[i]);
    Var t = cs->AddWitness(bc);
    cs->Enforce(b.bits[i], c.bits[i], LC(t));
    LC inner = b.bits[i] + c.bits[i] - LC(t) * Fr::FromU64(2);
    Fr mv = cs->Eval(a.bits[i]) * cs->Eval(inner);
    Var m = cs->AddWitness(mv);
    cs->Enforce(a.bits[i], inner, LC(m));
    out.bits[i] = LC(m) + LC(t);
  }
  return out;
}

std::array<W32, 8> CompressGadget(ConstraintSystem* cs, const std::array<W32, 8>& state,
                                  const std::array<W32, 16>& block) {
  std::array<W32, 64> w;
  for (int i = 0; i < 16; ++i) {
    w[i] = block[i];
  }
  for (int i = 16; i < 64; ++i) {
    W32 s0 = Xor(cs, Xor(cs, Rotr(w[i - 15], 7), Rotr(w[i - 15], 18)), Shr(w[i - 15], 3));
    W32 s1 = Xor(cs, Xor(cs, Rotr(w[i - 2], 17), Rotr(w[i - 2], 19)), Shr(w[i - 2], 10));
    w[i] = AddWords(cs, {PackW32(w[i - 16]), PackW32(s0), PackW32(w[i - 7]), PackW32(s1)}, 4);
  }

  W32 a = state[0], b = state[1], c = state[2], d = state[3];
  W32 e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    W32 s1 = Xor(cs, Xor(cs, Rotr(e, 6), Rotr(e, 11)), Rotr(e, 25));
    W32 ch = Choose(cs, e, f, g);
    LC temp1 = PackW32(h) + PackW32(s1) + PackW32(ch) + LC::Constant(Fr::FromU64(kK[i])) +
               PackW32(w[i]);
    W32 s0 = Xor(cs, Xor(cs, Rotr(a, 2), Rotr(a, 13)), Rotr(a, 22));
    W32 maj = Majority(cs, a, b, c);
    LC temp2 = PackW32(s0) + PackW32(maj);
    h = g;
    g = f;
    f = e;
    // temp1 is a sum of 5 words and temp2 of 2, so bound the carry widths
    // accordingly.
    e = AddWords(cs, {PackW32(d), temp1}, 6);
    d = c;
    c = b;
    b = a;
    a = AddWords(cs, {temp1, temp2}, 7);
  }

  std::array<W32, 8> out;
  const W32* in[8] = {&a, &b, &c, &d, &e, &f, &g, &h};
  for (int i = 0; i < 8; ++i) {
    out[i] = AddWords(cs, {PackW32(state[i]), PackW32(*in[i])}, 2);
  }
  return out;
}

// Converts 4 big-endian byte LCs into a word's bit LCs (costs 32+...: one
// decomposition of the packed value).
W32 WordFromBytes(ConstraintSystem* cs, const LC& b0, const LC& b1, const LC& b2, const LC& b3) {
  LC packed = b0 * Fr::FromU64(1 << 24) + b1 * Fr::FromU64(1 << 16) + b2 * Fr::FromU64(1 << 8) +
              b3;
  std::vector<Var> bits = ToBits(cs, packed, 32);
  W32 out;
  for (int i = 0; i < 32; ++i) {
    out.bits[i] = LC(bits[i]);
  }
  return out;
}

std::vector<LC> DigestBytes(const std::array<W32, 8>& state) {
  std::vector<LC> out;
  out.reserve(32);
  for (int wi = 0; wi < 8; ++wi) {
    for (int byte = 3; byte >= 0; --byte) {
      LC acc;
      Fr power = Fr::One();
      for (int bit = 0; bit < 8; ++bit) {
        acc = acc + state[wi].bits[8 * byte + bit] * power;
        power = power.Double();
      }
      out.push_back(acc);
    }
  }
  return out;
}

std::array<W32, 8> InitialState() {
  std::array<W32, 8> st;
  for (int i = 0; i < 8; ++i) {
    st[i] = ConstantW32(kInit[i]);
  }
  return st;
}

}  // namespace

std::vector<LC> Sha256FixedGadget(ConstraintSystem* cs, const std::vector<LC>& msg_bytes) {
  GadgetScope scope(cs, "Sha256Fixed");
  // Classic padding, all positions known at build time.
  size_t len = msg_bytes.size();
  size_t total = ((len + 8) / 64 + 1) * 64;
  std::vector<LC> padded = msg_bytes;
  padded.resize(total);
  padded[len] = LC::Constant(Fr::FromU64(0x80));
  uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    padded[total - 8 + i] = LC::Constant(Fr::FromU64((bit_len >> (56 - 8 * i)) & 0xff));
  }

  std::array<W32, 8> state = InitialState();
  for (size_t block = 0; block < total / 64; ++block) {
    std::array<W32, 16> words;
    for (int i = 0; i < 16; ++i) {
      size_t base = block * 64 + 4 * i;
      words[i] = WordFromBytes(cs, padded[base], padded[base + 1], padded[base + 2],
                               padded[base + 3]);
    }
    state = CompressGadget(cs, state, words);
  }
  return DigestBytes(state);
}

std::vector<LC> Sha256DynamicGadget(ConstraintSystem* cs, const std::vector<LC>& masked_bytes,
                                    const LC& len) {
  GadgetScope scope(cs, "Sha256Dynamic");
  size_t max_len = masked_bytes.size();
  size_t max_blocks = (max_len + 8) / 64 + 1;
  size_t total = max_blocks * 64;

  // Padding skeleton: 0x80 at position len (indicator), zeros elsewhere, and
  // the 64-bit message bit length at the tail of the selected final block.
  std::vector<LC> padded = masked_bytes;
  padded.resize(total);

  std::vector<Var> end_marker = Indicator(cs, len, max_len + 1);
  for (size_t i = 0; i <= max_len && i < total; ++i) {
    padded[i] = padded[i] + LC(end_marker[i]) * Fr::FromU64(0x80);
  }

  // nblocks - 1 = (len + 8) / 64, witnessed with its remainder.
  BigUInt len_val = cs->Eval(len).ToBigUInt();
  uint64_t len_u = len_val.LowU64();
  if (len_u > max_len) {
    throw std::invalid_argument("len exceeds buffer");
  }
  uint64_t nb_minus1 = (len_u + 8) / 64;
  Var nb_var = cs->AddWitness(Fr::FromU64(nb_minus1));
  {
    uint64_t rem = (len_u + 8) % 64;
    Var rem_var = cs->AddWitness(Fr::FromU64(rem));
    ToBits(cs, LC(rem_var), 6);
    size_t nb_bits = 1;
    while ((size_t{1} << nb_bits) < max_blocks + 1) {
      ++nb_bits;
    }
    ToBits(cs, LC(nb_var), nb_bits);
    cs->EnforceEqual(len + LC::Constant(Fr::FromU64(8)),
                     LC(nb_var) * Fr::FromU64(64) + LC(rem_var));
  }
  std::vector<Var> block_sel = Indicator(cs, LC(nb_var), max_blocks);

  // Bit length bytes: len*8 fits in 3 bytes for max_len < 2^21.
  std::vector<Var> len_bytes;  // big-endian, 3 bytes
  {
    uint64_t bits_total = len_u * 8;
    for (int i = 2; i >= 0; --i) {
      len_bytes.push_back(cs->AddWitness(Fr::FromU64((bits_total >> (8 * i)) & 0xff)));
    }
    LC recompose = LC(len_bytes[0]) * Fr::FromU64(1 << 16) + LC(len_bytes[1]) * Fr::FromU64(1 << 8) +
                   LC(len_bytes[2]);
    for (Var b : len_bytes) {
      ToBits(cs, LC(b), 8);
    }
    cs->EnforceEqual(recompose, len * Fr::FromU64(8));
  }
  for (size_t k = 0; k < max_blocks; ++k) {
    size_t tail = (k + 1) * 64 - 3;
    for (int j = 0; j < 3; ++j) {
      Fr pv = cs->ValueOf(block_sel[k]) * cs->ValueOf(len_bytes[j]);
      Var p = cs->AddWitness(pv);
      cs->Enforce(LC(block_sel[k]), LC(len_bytes[j]), LC(p));
      padded[tail + j] = padded[tail + j] + LC(p);
    }
  }

  // Compress every block, remembering each intermediate state.
  std::array<W32, 8> state = InitialState();
  std::vector<std::array<LC, 8>> packed_states;  // after block k, packed words
  for (size_t block = 0; block < max_blocks; ++block) {
    std::array<W32, 16> words;
    for (int i = 0; i < 16; ++i) {
      size_t base = block * 64 + 4 * i;
      words[i] =
          WordFromBytes(cs, padded[base], padded[base + 1], padded[base + 2], padded[base + 3]);
    }
    state = CompressGadget(cs, state, words);
    std::array<LC, 8> packed;
    for (int i = 0; i < 8; ++i) {
      packed[i] = PackW32(state[i]);
    }
    packed_states.push_back(packed);
  }

  // Select the state after the final block: word = sum_k sel[k] *
  // state_k[word].
  std::array<W32, 8> final_state;
  for (int wi = 0; wi < 8; ++wi) {
    LC selected;
    for (size_t k = 0; k < max_blocks; ++k) {
      Fr pv = cs->ValueOf(block_sel[k]) * cs->Eval(packed_states[k][wi]);
      Var p = cs->AddWitness(pv);
      cs->Enforce(LC(block_sel[k]), packed_states[k][wi], LC(p));
      selected = selected + LC(p);
    }
    std::vector<Var> bits = ToBits(cs, selected, 32);
    for (int b = 0; b < 32; ++b) {
      final_state[wi].bits[b] = LC(bits[b]);
    }
  }
  return DigestBytes(final_state);
}

}  // namespace nope
